// Package haystack is a fast analytical model of fully associative caches
// with least-recently-used replacement, reproducing "A Fast Analytical Model
// of Fully Associative Caches" (Gysi, Grosser, Brandner, Hoefler; PLDI 2019).
//
// The model analyzes static control programs — affine loop nests declared
// with the Program builder — and predicts their compulsory and capacity
// misses on a hierarchy of fully associative LRU caches without enumerating
// the memory trace: the backward stack distance of every access is derived
// symbolically as a piecewise quasi-polynomial and the misses are obtained by
// symbolic counting. The analysis is split into a cache-independent phase
// (ComputeDistances) and a cheap per-hierarchy counting phase
// (DistanceModel.CountMisses), so design-space sweeps over many cache
// hierarchies pay the expensive phase once — see Analyze for the one-shot
// composition. The package also bundles a trace-driven cache simulator
// (a Dinero IV stand-in), an exact reuse-distance profiler, and the thirty
// PolyBench kernels used in the paper's evaluation.
//
// # Quick start
//
//	p := haystack.NewProgram("example")
//	a := p.NewArray("A", haystack.ElemFloat64, 1024)
//	i := haystack.V("i")
//	p.Add(haystack.For(i, haystack.C(0), haystack.C(1024),
//		haystack.Stmt("S0", haystack.Read(a, haystack.X(i)))))
//
//	res, err := haystack.Analyze(p, haystack.DefaultConfig(), haystack.DefaultOptions())
//	if err != nil { ... }
//	fmt.Println(res.CompulsoryMisses, res.Levels[0].TotalMisses)
package haystack

import (
	"context"

	"haystack/internal/cachesim"
	"haystack/internal/core"
	"haystack/internal/counting"
	"haystack/internal/polybench"
	"haystack/internal/scop"
)

// Program construction -------------------------------------------------------

// Program is a static control program: the input of the model.
type Program = scop.Program

// Array is a multi-dimensional array accessed by the program.
type Array = scop.Array

// Var is a loop variable.
type Var = scop.Var

// Expr is an affine expression over loop variables.
type Expr = scop.Expr

// Access is one array reference of a statement.
type Access = scop.Access

// Node is a loop or statement of the program tree.
type Node = scop.Node

// Element sizes of the common data types.
const (
	ElemFloat32 = scop.ElemFloat32
	ElemFloat64 = scop.ElemFloat64
	ElemInt32   = scop.ElemInt32
)

// NewProgram returns an empty program with the given name.
func NewProgram(name string) *Program { return scop.NewProgram(name) }

// V returns the loop variable with the given name.
func V(name string) Var { return scop.V(name) }

// C returns the constant affine expression n.
func C(n int64) Expr { return scop.C(n) }

// X returns the affine expression consisting of the loop variable v.
func X(v Var) Expr { return scop.X(v) }

// For builds a loop over [lower, upper) with unit stride.
func For(v Var, lower, upper Expr, body ...Node) Node { return scop.For(v, lower, upper, body...) }

// Stmt builds a statement with the given array accesses (in program order).
func Stmt(name string, accesses ...Access) Node { return scop.Stmt(name, accesses...) }

// Read builds a read access of an array element.
func Read(a *Array, index ...Expr) Access { return scop.Read(a, index...) }

// Write builds a write access of an array element.
func Write(a *Array, index ...Expr) Access { return scop.Write(a, index...) }

// Cache model -----------------------------------------------------------------

// Config describes the modeled cache hierarchy (line size and per-level
// capacities in bytes); every level is a fully associative LRU cache.
type Config = core.Config

// Options configures the analysis: it toggles the optimizations of the miss
// counting stage (equalization, rasterization, partial enumeration), the
// exact trace-profiling fallback for programs outside the symbolic fragment,
// and the number of worker goroutines via Parallelism (zero uses all cores;
// results are bit-identical at every parallelism level).
type Options = core.Options

// Result is the outcome of analyzing a program.
type Result = core.Result

// LevelResult holds the modeled misses of one cache level.
type LevelResult = core.LevelResult

// Stats describes where the model spent its time and how many pieces it
// counted.
type Stats = core.Stats

// Mode selects the rung of the graceful degradation ladder an analysis runs
// on: ModeExact (the default) fails or trace-falls-back when the symbolic
// pipeline degrades, ModeBounded answers with certified interval bounds
// instead, and ModeSim skips the symbolic pipeline entirely.
type Mode = core.Mode

const (
	// ModeExact demands exact symbolic results (the default zero value).
	ModeExact = core.ModeExact
	// ModeBounded degrades failed operations to certified interval bounds.
	ModeBounded = core.ModeBounded
	// ModeSim answers from exact trace profiling without symbolic analysis.
	ModeSim = core.ModeSim
)

// ParseMode parses a -mode flag value ("exact", "bounded", "sim").
func ParseMode(s string) (Mode, error) { return core.ParseMode(s) }

// Tier reports which rung of the degradation ladder produced a Result.
type Tier = core.Tier

const (
	// TierExact marks fully exact results (width-zero bounds).
	TierExact = core.TierExact
	// TierBounded marks results carrying certified interval bounds.
	TierBounded = core.TierBounded
	// TierSimulated marks results answered from a trace profile.
	TierSimulated = core.TierSimulated
)

// Interval is a certified inclusive bound [Lo, Hi] on an exact count; exact
// results carry width-zero intervals.
type Interval = counting.Interval

// Reference holds exact trace-based miss counts used for validation.
type Reference = core.Reference

// DefaultConfig returns the cache configuration of the paper's test system
// (64-byte lines, 32 KiB L1, 1 MiB L2).
func DefaultConfig() Config { return core.DefaultConfig() }

// DefaultOptions enables every optimization of the model.
func DefaultOptions() Options { return core.DefaultOptions() }

// Analyze runs the analytical cache model on a program: it composes the two
// analysis phases, ComputeDistances and DistanceModel.CountMisses, for a
// single cache hierarchy.
func Analyze(p *Program, cfg Config, opts Options) (*Result, error) {
	return core.Analyze(p, cfg, opts)
}

// AnalyzeContext is Analyze observing ctx (and Options.Deadline): workers
// stop claiming work promptly after cancellation and the context error is
// returned. Combined with Options.Mode and Options.Budget it is the
// entry point of the graceful degradation ladder.
func AnalyzeContext(ctx context.Context, p *Program, cfg Config, opts Options) (*Result, error) {
	return core.AnalyzeContext(ctx, p, cfg, opts)
}

// DistanceModel is the reusable, cache-capacity-independent half of the
// analysis: the symbolic stack distances of one program at a fixed cache
// line size. One model answers CountMisses queries for arbitrarily many
// cache hierarchies, so design-space sweeps pay the expensive distance
// phase exactly once per program variant. It is safe for concurrent
// CountMisses calls.
type DistanceModel = core.DistanceModel

// ComputeDistances runs the cache-independent phase of the analysis for the
// given cache line size. Use the returned model's CountMisses to evaluate
// cache hierarchies (their LineSize must match); each call returns a Result
// identical to Analyze with the same options.
func ComputeDistances(p *Program, lineSize int64, opts Options) (*DistanceModel, error) {
	return core.ComputeDistances(p, lineSize, opts)
}

// ComputeDistancesContext is ComputeDistances observing ctx (and
// Options.Deadline).
func ComputeDistancesContext(ctx context.Context, p *Program, lineSize int64, opts Options) (*DistanceModel, error) {
	return core.ComputeDistancesContext(ctx, p, lineSize, opts)
}

// ComputeDistancesByProfiling builds a DistanceModel from an exact stack
// distance profile of the program trace instead of the symbolic pipeline.
// The results are equally exact and equally reusable across hierarchies,
// but the construction cost is proportional to the trace length rather
// than problem-size independent. Use it for programs the symbolic pipeline
// handles slowly — most notably the deep loop nests produced by tiling;
// results carry UsedTraceFallback to keep the provenance visible.
func ComputeDistancesByProfiling(p *Program, lineSize int64) (*DistanceModel, error) {
	return core.ComputeDistancesByProfiling(p, lineSize)
}

// SimulateReference computes exact miss counts by replaying the program
// trace through a stack distance profiler with the padded array layout the
// model assumes; it is the ground truth the model is validated against.
func SimulateReference(p *Program, cfg Config) (Reference, error) {
	return core.SimulateReference(p, cfg)
}

// Parametric analysis ---------------------------------------------------------

// ParametricModel is the fully problem-size-independent form of the
// analysis: a program with symbolic size parameters (Program.NewParam,
// Program.NewArrayP) is analyzed once, and every concrete size is an
// instantiation — Eval returns the Result a concrete Analyze of the
// instantiated program would produce, Bind yields a concrete DistanceModel.
// It is safe for concurrent Eval and Bind calls.
type ParametricModel = core.ParametricModel

// ErrNonParametric reports that a pipeline stage cannot handle a piece of a
// parametric analysis symbolically in the program parameters; errors from
// ComputeParametricModel wrap it.
var ErrNonParametric = core.ErrNonParametric

// ComputeParametricModel analyzes a parametric program once for all problem
// sizes at the given cache line size.
func ComputeParametricModel(p *Program, lineSize int64, opts Options) (*ParametricModel, error) {
	return core.ComputeParametricModel(p, lineSize, opts)
}

// ParametricKernel is a PolyBench kernel with symbolic problem-size
// parameters and per-Size standard bindings.
type ParametricKernel = polybench.ParametricKernel

// ParametricKernels returns the PolyBench kernels available in parametric
// form.
func ParametricKernels() []ParametricKernel { return polybench.ParametricKernels() }

// ParametricByName returns the named parametric kernel.
func ParametricByName(name string) (ParametricKernel, bool) { return polybench.ParametricByName(name) }

// Simulation ------------------------------------------------------------------

// SimConfig describes a cache hierarchy for the trace-driven simulator,
// which also supports set-associative caches, pseudo-LRU replacement, and a
// next-line prefetcher.
type SimConfig = cachesim.Config

// SimLevel describes one simulated cache level.
type SimLevel = cachesim.LevelConfig

// SimResult holds per-level simulation counters.
type SimResult = cachesim.Result

// Replacement policies of the simulator.
const (
	LRU  = cachesim.LRU
	PLRU = cachesim.PLRU
)

// Simulate replays the exact memory trace of the program (natural row-major
// array layout) through the given cache hierarchy, like the Dinero IV
// simulator the paper compares against.
func Simulate(p *Program, cfg SimConfig) (SimResult, error) {
	return core.DetailedSimulation(p, cfg)
}

// PolyBench --------------------------------------------------------------------

// PolyBenchSize selects a PolyBench problem size.
type PolyBenchSize = polybench.Size

// PolyBench problem sizes.
const (
	Mini       = polybench.Mini
	Small      = polybench.Small
	Medium     = polybench.Medium
	Large      = polybench.Large
	ExtraLarge = polybench.ExtraLarge
)

// PolyBenchKernel is one of the thirty kernels of the paper's evaluation.
type PolyBenchKernel = polybench.Kernel

// PolyBenchKernels returns all PolyBench kernels.
func PolyBenchKernels() []PolyBenchKernel { return polybench.Kernels() }

// PolyBenchKernel returns the named kernel.
func PolyBenchByName(name string) (PolyBenchKernel, bool) { return polybench.ByName(name) }
