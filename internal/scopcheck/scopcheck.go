// Package scopcheck statically verifies static control programs before the
// symbolic cache model runs on them. It is the validation layer between a
// program source — the builder DSL today, user-submitted or fuzzer-generated
// SCoPs tomorrow — and the Presburger machinery, which silently computes
// garbage on malformed input.
//
// The checker runs two passes. The structural pass walks the program tree
// and reports well-formedness violations (undeclared arrays, subscript arity
// mismatches, dangling variables, duplicate names) without any polyhedral
// machinery. The semantic pass builds the polyhedral description and uses
// the Presburger engine itself to prove, per statement:
//
//   - every array access stays inside the declared extents; a violation is
//     reported with a concrete counterexample point obtained by
//     lexicographic minimization (the first failing instance in execution
//     order of the loop nest),
//   - the schedule is total (every domain point has a time stamp), single
//     valued, and injective across all statements (no two instances share a
//     time stamp),
//   - iteration domains are non-empty,
//   - the context set is satisfiable and bounds every parameter from below.
//
// Diagnostics are structured ([]Diagnostic with kind, severity, statement,
// and witness point), so callers can render, filter, or assert on them. The
// cache model (internal/core) runs Check as an opt-out pre-flight; the
// cmd/scopcheck CLI and the -check flag of cmd/haystack expose it directly.
package scopcheck

import (
	"fmt"
	"sort"
	"strings"

	"haystack/internal/scop"
)

// Kind classifies a diagnostic.
type Kind string

// The diagnostic kinds. Structural kinds come from the program tree walk,
// semantic kinds from the Presburger pass.
const (
	// KindOutOfBounds reports an array access that leaves the declared
	// extent of the array for some reachable statement instance.
	KindOutOfBounds Kind = "out-of-bounds"
	// KindScheduleNotTotal reports a statement instance without a schedule
	// time stamp.
	KindScheduleNotTotal Kind = "schedule-not-total"
	// KindScheduleNotSingleValued reports a statement instance with more
	// than one schedule time stamp.
	KindScheduleNotSingleValued Kind = "schedule-not-single-valued"
	// KindScheduleNotInjective reports two distinct statement instances
	// sharing one schedule time stamp.
	KindScheduleNotInjective Kind = "schedule-not-injective"
	// KindEmptyDomain reports a statement whose iteration domain has no
	// integer points: the statement never executes.
	KindEmptyDomain Kind = "empty-domain"
	// KindInfeasibleContext reports a context set without integer points:
	// no parameter values satisfy the declared constraints.
	KindInfeasibleContext Kind = "infeasible-context"
	// KindUnboundedParameter reports a parameter the context set does not
	// bound from below (the parametric counting machinery needs a least
	// value per parameter).
	KindUnboundedParameter Kind = "unbounded-parameter"
	// KindUnverifiable reports a property the engine could neither prove
	// nor refute (an operation left the supported fragment).
	KindUnverifiable Kind = "unverifiable"

	// KindUndeclaredArray reports an access to an array the program does
	// not declare.
	KindUndeclaredArray Kind = "undeclared-array"
	// KindSubscriptArity reports an access whose subscript count differs
	// from the rank of the array.
	KindSubscriptArity Kind = "subscript-arity"
	// KindDanglingVariable reports a subscript or bound referencing a name
	// that is neither an enclosing loop variable nor a program parameter.
	KindDanglingVariable Kind = "dangling-variable"
	// KindDuplicateStatement reports two statements sharing a name.
	KindDuplicateStatement Kind = "duplicate-statement"
	// KindDuplicateParameter reports a parameter declared twice.
	KindDuplicateParameter Kind = "duplicate-parameter"
	// KindShadowedParameter reports a loop variable shadowing a parameter.
	KindShadowedParameter Kind = "shadowed-parameter"
	// KindNoAccesses reports a statement without memory accesses.
	KindNoAccesses Kind = "no-accesses"
	// KindBadArray reports a malformed array declaration (zero rank,
	// non-positive element size, or an extent referencing a non-parameter).
	KindBadArray Kind = "bad-array"
	// KindBadContext reports a context constraint referencing a
	// non-parameter.
	KindBadContext Kind = "bad-context"
)

// Severity grades a diagnostic.
type Severity int

const (
	// Warning marks findings that do not make the analysis wrong but are
	// almost certainly not intended (an empty domain) or that the checker
	// could not decide (unverifiable properties).
	Warning Severity = iota
	// Error marks violations that make the program meaningless or the
	// analysis unsound.
	Error
)

func (s Severity) String() string {
	if s == Error {
		return "error"
	}
	return "warning"
}

// Diagnostic is one structured finding of the checker.
type Diagnostic struct {
	Kind     Kind
	Severity Severity
	// Statement names the statement the finding concerns ("" for
	// program-level findings).
	Statement string
	// Array names the accessed array for access findings.
	Array string
	// AccessIndex is the position of the offending access within its
	// statement, -1 when not applicable.
	AccessIndex int
	// Message is the human-readable description.
	Message string
	// Witness is a concrete counterexample point when the engine found one
	// (for out-of-bounds: the lexicographically first failing instance).
	// WitnessDims names its coordinates.
	Witness     []int64
	WitnessDims []string
}

// String renders the diagnostic on one line.
func (d Diagnostic) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s", d.Severity, d.Kind)
	if d.Statement != "" {
		fmt.Fprintf(&b, ": statement %s", d.Statement)
	}
	fmt.Fprintf(&b, ": %s", d.Message)
	if len(d.Witness) > 0 {
		b.WriteString(" at ")
		b.WriteString(renderWitness(d.Witness, d.WitnessDims))
	}
	return b.String()
}

// renderWitness formats a witness point as "(i=4, j=0)".
func renderWitness(point []int64, dims []string) string {
	parts := make([]string, len(point))
	for i, v := range point {
		if i < len(dims) && dims[i] != "" {
			parts[i] = fmt.Sprintf("%s=%d", dims[i], v)
		} else {
			parts[i] = fmt.Sprintf("%d", v)
		}
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// HasErrors reports whether any diagnostic has Error severity.
func HasErrors(diags []Diagnostic) bool {
	for _, d := range diags {
		if d.Severity == Error {
			return true
		}
	}
	return false
}

// Check validates a program: the structural pass first, then — when the
// structure is sound — the semantic Presburger pass over the polyhedral
// description. A nil or empty result means the program verified clean.
func Check(prog *scop.Program) []Diagnostic {
	diags := checkStructure(prog)
	if HasErrors(diags) {
		// BuildPoly would reject the program (or panic on arity mismatches);
		// the structural findings are the actionable report.
		return sortDiags(diags)
	}
	info, err := scop.BuildPoly(prog)
	if err != nil {
		// Validate() and the structural pass agree on well-formedness, so
		// this is unreachable in practice; degrade into a diagnostic rather
		// than losing the finding.
		diags = append(diags, Diagnostic{
			Kind: KindDanglingVariable, Severity: Error, AccessIndex: -1,
			Message: fmt.Sprintf("building the polyhedral description failed: %v", err),
		})
		return sortDiags(diags)
	}
	return sortDiags(append(diags, CheckPoly(info)...))
}

// sortDiags orders diagnostics deterministically: errors before warnings,
// then by statement, kind, and message.
func sortDiags(diags []Diagnostic) []Diagnostic {
	sort.SliceStable(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Severity != b.Severity {
			return a.Severity > b.Severity
		}
		if a.Statement != b.Statement {
			return a.Statement < b.Statement
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return a.Message < b.Message
	})
	return diags
}
