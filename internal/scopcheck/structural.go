package scopcheck

import (
	"fmt"

	"haystack/internal/scop"
)

// checkStructure walks the program tree and collects every well-formedness
// violation as a typed diagnostic. It mirrors the conditions of
// scop.Program.Validate but keeps going after the first finding so a broken
// program gets one complete report instead of an error chain.
func checkStructure(prog *scop.Program) []Diagnostic {
	var diags []Diagnostic
	report := func(d Diagnostic) {
		diags = append(diags, d)
	}

	params := map[string]bool{}
	for _, n := range prog.Params {
		if params[n] {
			report(Diagnostic{
				Kind: KindDuplicateParameter, Severity: Error, AccessIndex: -1,
				Message: fmt.Sprintf("parameter %s is declared twice", n),
			})
			continue
		}
		params[n] = true
	}
	for _, ctx := range prog.Context {
		for v, c := range ctx.Coeffs {
			if c != 0 && !params[v] {
				report(Diagnostic{
					Kind: KindBadContext, Severity: Error, AccessIndex: -1,
					Message: fmt.Sprintf("context constraint %s >= 0 references non-parameter %s", ctx, v),
				})
			}
		}
	}

	declared := map[*scop.Array]bool{}
	for _, a := range prog.Arrays {
		declared[a] = true
		if a.Rank() == 0 {
			report(Diagnostic{
				Kind: KindBadArray, Severity: Error, Array: a.Name, AccessIndex: -1,
				Message: fmt.Sprintf("array %s has no dimensions", a.Name),
			})
		}
		if a.Elem <= 0 {
			report(Diagnostic{
				Kind: KindBadArray, Severity: Error, Array: a.Name, AccessIndex: -1,
				Message: fmt.Sprintf("array %s has non-positive element size %d", a.Name, a.Elem),
			})
		}
		for i, de := range a.DimExprs {
			for v, c := range de.Coeffs {
				if c != 0 && !params[v] {
					report(Diagnostic{
						Kind: KindBadArray, Severity: Error, Array: a.Name, AccessIndex: -1,
						Message: fmt.Sprintf("extent %d of array %s references non-parameter %s", i, a.Name, v),
					})
				}
			}
		}
	}

	names := map[string]bool{}
	for _, si := range prog.Statements() {
		stmt := si.Statement
		if names[stmt.Name] {
			report(Diagnostic{
				Kind: KindDuplicateStatement, Severity: Error, Statement: stmt.Name, AccessIndex: -1,
				Message: fmt.Sprintf("statement name %s is used twice", stmt.Name),
			})
		}
		names[stmt.Name] = true
		if len(stmt.Accesses) == 0 {
			report(Diagnostic{
				Kind: KindNoAccesses, Severity: Error, Statement: stmt.Name, AccessIndex: -1,
				Message: "statement performs no memory accesses",
			})
		}

		vars := map[string]bool{}
		for _, v := range si.LoopVars() {
			if params[v] {
				report(Diagnostic{
					Kind: KindShadowedParameter, Severity: Error, Statement: stmt.Name, AccessIndex: -1,
					Message: fmt.Sprintf("loop variable %s shadows a program parameter", v),
				})
			}
			vars[v] = true
		}
		// Dangling names in loop bounds: a bound may reference parameters and
		// outer loop variables only. Validate() defers this to BuildPoly's
		// exprToVec failure; the checker reports it directly.
		for depth, loop := range si.Loops {
			outer := map[string]bool{}
			for _, l := range si.Loops[:depth] {
				outer[l.Var.Name] = true
			}
			bounds := append([]scop.Expr{loop.Lower, loop.Upper}, loop.ExtraLower...)
			bounds = append(bounds, loop.ExtraUpper...)
			for _, e := range bounds {
				for v, c := range e.Coeffs {
					if c != 0 && !outer[v] && !params[v] && v != loop.Var.Name {
						report(Diagnostic{
							Kind: KindDanglingVariable, Severity: Error, Statement: stmt.Name, AccessIndex: -1,
							Message: fmt.Sprintf("bound of loop %s references %s, which is neither a parameter nor an outer loop variable", loop.Var.Name, v),
						})
					}
				}
			}
		}

		for accIdx, acc := range stmt.Accesses {
			if !declared[acc.Array] {
				report(Diagnostic{
					Kind: KindUndeclaredArray, Severity: Error, Statement: stmt.Name,
					Array: acc.Array.Name, AccessIndex: accIdx,
					Message: fmt.Sprintf("access to array %s, which the program does not declare", acc.Array.Name),
				})
				continue
			}
			if len(acc.Index) != acc.Array.Rank() {
				report(Diagnostic{
					Kind: KindSubscriptArity, Severity: Error, Statement: stmt.Name,
					Array: acc.Array.Name, AccessIndex: accIdx,
					Message: fmt.Sprintf("access to %s has %d subscripts, array has %d dimensions",
						acc.Array.Name, len(acc.Index), acc.Array.Rank()),
				})
			}
			for _, idx := range acc.Index {
				for v, c := range idx.Coeffs {
					if c != 0 && !vars[v] && !params[v] {
						report(Diagnostic{
							Kind: KindDanglingVariable, Severity: Error, Statement: stmt.Name,
							Array: acc.Array.Name, AccessIndex: accIdx,
							Message: fmt.Sprintf("subscript references %s, which is neither a parameter nor an enclosing loop variable", v),
						})
					}
				}
			}
		}
	}
	return diags
}
