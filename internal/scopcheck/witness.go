package scopcheck

import (
	"errors"

	"haystack/internal/lexmin"
	"haystack/internal/presburger"
)

// witnessStatus is the three-valued outcome of a point search: the engine
// found a point, proved there is none, or could decide neither.
type witnessStatus int

const (
	witnessFound witnessStatus = iota
	witnessEmpty
	witnessUndecided
)

// firstPoint returns the lexicographically smallest integer point of the set
// (all dimensions ordered as in the space, parameters included), or reports
// that the set is empty or undecidable. It is the counterexample generator:
// for a violation set over a statement instance space, the returned point is
// the first failing instance in execution order of the loop nest.
//
// The set is wrapped as a relation with zero input dimensions, so the
// parametric lexmin machinery — which minimizes output dimensions per input
// point — computes one global minimum. The column layouts of a basic set and
// a 0-input basic map coincide, so divs and constraints transfer verbatim.
func firstPoint(s presburger.Set) ([]int64, witnessStatus) {
	var bms []presburger.BasicMap
	in := presburger.NewSpace("Witness")
	out := presburger.NewSpace(s.Space().Name, s.Space().Dims...)
	allEmpty := true
	for _, bs := range s.Basics() {
		if bs.DefinitelyEmpty() {
			continue
		}
		allEmpty = false
		bms = append(bms, presburger.NewBasicMap(in, out, bs.Divs(), bs.Constraints()))
	}
	if allEmpty {
		return nil, witnessEmpty
	}
	mn, err := lexmin.MapLexmin(presburger.MapFromBasics(bms...))
	if err == nil {
		if p, ok := scanOne(mn.Scan); ok {
			return p, witnessFound
		}
		// Lexmin succeeded but its pieces have no integer point: the set has
		// rational points only. That is a proof of (integer) emptiness when
		// enumeration succeeded, but Scan can also fail on unbounded pieces,
		// so fall through to the sampling path instead of concluding empty.
	}
	return anyPoint(s)
}

// anyPoint returns some integer point of the set (no minimality guarantee),
// or reports emptiness/undecidability. Cheaper than firstPoint; used where
// existence is the question, e.g. confirming a domain is non-empty.
func anyPoint(s presburger.Set) ([]int64, witnessStatus) {
	undecided := false
	for _, bs := range s.Basics() {
		if bs.DefinitelyEmpty() {
			continue
		}
		if p, ok := bs.Sample(); ok {
			return p, witnessFound
		}
		// Sample failed on a basic set the rational test could not refute:
		// either unbounded (enumeration cannot run) or integer-empty in a way
		// only enumeration over an unbounded range would reveal.
		undecided = true
	}
	if undecided {
		return nil, witnessUndecided
	}
	return nil, witnessEmpty
}

// scanOne runs a Scan-style enumerator and returns its first point.
func scanOne(scan func(fn func([]int64) error) error) ([]int64, bool) {
	var found []int64
	err := scan(func(p []int64) error {
		found = append([]int64(nil), p...)
		return presburger.ErrStopScan
	})
	if err != nil && !errors.Is(err, presburger.ErrStopScan) {
		return nil, false
	}
	return found, found != nil
}
