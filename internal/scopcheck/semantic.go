package scopcheck

import (
	"fmt"
	"strings"

	"haystack/internal/presburger"
	"haystack/internal/scop"
)

// CheckPoly runs the semantic (Presburger) pass over a polyhedral program
// description: access bounds, schedule totality/single-valuedness/injectivity,
// domain and context non-emptiness. It assumes the program is structurally
// well-formed (BuildPoly succeeded).
func CheckPoly(info *scop.PolyInfo) []Diagnostic {
	var diags []Diagnostic
	diags = append(diags, checkContext(info)...)
	diags = append(diags, checkDomains(info)...)
	diags = append(diags, checkBounds(info)...)
	diags = append(diags, checkSchedules(info)...)
	return diags
}

// checkContext verifies the context set of a parametric program: it must
// have integer points (otherwise no parameter values exist and every
// derived cardinality is vacuous) and must bound every parameter from
// below (the parametric counting machinery minimizes over it).
func checkContext(info *scop.PolyInfo) []Diagnostic {
	nP := info.NParam()
	if nP == 0 {
		return nil
	}
	sp := info.ParamSpace()
	bs := presburger.UniverseBasicSet(sp)
	w := bs.NCols()
	for _, e := range info.Program.Context {
		c := presburger.Constraint{C: presburger.NewVec(w)}
		c.C[0] = e.Const
		for i, name := range info.Params {
			c.C[1+i] += e.Coeffs[name]
		}
		bs = bs.AddConstraint(c)
	}
	ctx := presburger.SetFromBasic(bs)
	point, status := firstPoint(ctx)
	switch status {
	case witnessEmpty:
		return []Diagnostic{{
			Kind: KindInfeasibleContext, Severity: Error, AccessIndex: -1,
			Message: "no parameter values satisfy the context constraints",
		}}
	case witnessUndecided:
		return []Diagnostic{{
			Kind: KindUnboundedParameter, Severity: Warning, AccessIndex: -1,
			Message: fmt.Sprintf("the context set does not bound the parameters (%s) from below", strings.Join(info.Params, ", ")),
		}}
	}
	// The lexicographic minimum of the context set doubles as proof that
	// every parameter is bounded from below.
	_ = point
	return nil
}

// checkDomains verifies that every statement executes at least once. An
// empty domain is not unsound — the statement simply contributes nothing —
// but it is almost always a bug in the loop bounds, so it warns.
func checkDomains(info *scop.PolyInfo) []Diagnostic {
	var diags []Diagnostic
	for _, ps := range info.Statements {
		// Cheap existence check first (works for all concrete programs);
		// fall back to the lexmin-based search for parametric domains, whose
		// unbounded parameter dimensions defeat enumeration.
		_, status := anyPoint(ps.Domain)
		if status == witnessUndecided {
			_, status = firstPoint(ps.Domain)
		}
		switch status {
		case witnessEmpty:
			diags = append(diags, Diagnostic{
				Kind: KindEmptyDomain, Severity: Warning, Statement: ps.Name, AccessIndex: -1,
				Message: "iteration domain has no integer points: the statement never executes",
			})
		case witnessUndecided:
			diags = append(diags, Diagnostic{
				Kind: KindUnverifiable, Severity: Warning, Statement: ps.Name, AccessIndex: -1,
				Message: "could not decide whether the iteration domain is empty",
			})
		}
	}
	return diags
}

// checkBounds proves, per array reference and array dimension, that the
// subscript stays inside [0, extent) on the whole iteration domain. A
// violation is reported with the lexicographically first failing statement
// instance and the array element it touches.
func checkBounds(info *scop.PolyInfo) []Diagnostic {
	var diags []Diagnostic
	nP := info.NParam()
	for _, ar := range info.AccessRelations(0) {
		ps := ar.Statement
		arr := ar.Access.Array
		rank := arr.Rank()
		nIn := ps.Space.Dim()
		for d := 0; d < rank; d++ {
			outCol := 1 + nIn + nP + d
			// Violating sets: the access relation restricted to subscript
			// values outside the extent, one direction at a time.
			var lowViol, highViol []presburger.BasicSet
			for _, bm := range ar.Map.Basics() {
				w := bm.NCols()
				low := presburger.Constraint{C: presburger.NewVec(w)}
				low.C[0] = -1
				low.C[outCol] = -1 // out_d <= -1
				lowViol = append(lowViol, bm.AddConstraint(low).AsSet())

				high := presburger.Constraint{C: presburger.NewVec(w)}
				high.C[outCol] = 1 // out_d >= extent
				if arr.IsParametric() {
					e := arr.DimExprs[d]
					high.C[0] = -e.Const
					for i, name := range info.Params {
						high.C[1+nIn+i] -= e.Coeffs[name]
					}
				} else {
					high.C[0] = -arr.Dims[d]
				}
				highViol = append(highViol, bm.AddConstraint(high).AsSet())
			}
			extent := extentString(arr, d)
			diags = appendBoundsDiag(diags, info, ar, lowViol, d,
				fmt.Sprintf("subscript %d of %s drops below 0 (extent %s)", d, arr.Name, extent))
			diags = appendBoundsDiag(diags, info, ar, highViol, d,
				fmt.Sprintf("subscript %d of %s reaches the extent %s", d, arr.Name, extent))
		}
	}
	return diags
}

// extentString renders the declared extent of one array dimension.
func extentString(arr *scop.Array, d int) string {
	if arr.IsParametric() {
		return arr.DimExprs[d].String()
	}
	return fmt.Sprintf("%d", arr.Dims[d])
}

// appendBoundsDiag decides one violation set (the basics of one access, one
// dimension, one direction) and appends the resulting diagnostic, if any.
// The witness point is reported over the statement instance dimensions
// followed by the accessed array element.
func appendBoundsDiag(diags []Diagnostic, info *scop.PolyInfo, ar scop.AccessRelation,
	viol []presburger.BasicSet, dim int, msg string) []Diagnostic {
	if len(viol) == 0 {
		return diags
	}
	set := presburger.SetFromBasics(viol...)
	point, status := firstPoint(set)
	ps := ar.Statement
	switch status {
	case witnessEmpty:
		return diags
	case witnessUndecided:
		return append(diags, Diagnostic{
			Kind: KindUnverifiable, Severity: Warning, Statement: ps.Name,
			Array: ar.Access.Array.Name, AccessIndex: ar.AccessIndex,
			Message: fmt.Sprintf("could not prove bounds: %s", msg),
		})
	}
	// The point lives in the wrapped product space [instance, array]; slice
	// off the duplicated parameter prefix of the array tuple.
	nIn := ps.Space.Dim()
	nP := info.NParam()
	rank := ar.Access.Array.Rank()
	witness := append(append([]int64(nil), point[:nIn]...), point[nIn+nP:nIn+nP+rank]...)
	dims := append(append([]string(nil), ps.Space.Dims...), ar.Map.OutSpace().Dims[nP:]...)
	return append(diags, Diagnostic{
		Kind: KindOutOfBounds, Severity: Error, Statement: ps.Name,
		Array: ar.Access.Array.Name, AccessIndex: ar.AccessIndex,
		Message: msg, Witness: witness, WitnessDims: dims,
	})
}

// checkSchedules proves the schedule well-formed: total (every domain point
// has a time stamp), single-valued (at most one stamp per instance), and
// injective across all statements (no stamp shared by two instances).
func checkSchedules(info *scop.PolyInfo) []Diagnostic {
	var diags []Diagnostic
	schedSpace := info.ScheduleSpace()
	schedLT := presburger.LexLT(schedSpace)

	for _, ps := range info.Statements {
		// Totality: domain points without a schedule image.
		sd, err := ps.Schedule.Domain()
		if err != nil {
			diags = append(diags, Diagnostic{
				Kind: KindUnverifiable, Severity: Warning, Statement: ps.Name, AccessIndex: -1,
				Message: fmt.Sprintf("could not compute the schedule domain: %v", err),
			})
		} else {
			missing := ps.Domain.Subtract(sd)
			diags = decideViolation(diags, missing, ps.Space.Dims, Diagnostic{
				Kind: KindScheduleNotTotal, Severity: Error, Statement: ps.Name, AccessIndex: -1,
				Message: "statement instance has no schedule time stamp",
			})
		}

		// Single-valuedness: instances related to two lexicographically
		// ordered stamps. S ∘ LexLT ∩ S relates x to a stamp t' for which a
		// smaller stamp t with S(x) = t also exists.
		multi, err := ps.Schedule.ApplyRange(schedLT)
		if err != nil {
			diags = append(diags, Diagnostic{
				Kind: KindUnverifiable, Severity: Warning, Statement: ps.Name, AccessIndex: -1,
				Message: fmt.Sprintf("could not prove the schedule single-valued: %v", err),
			})
		} else {
			viol := multi.Intersect(ps.Schedule)
			dims := append(append([]string(nil), ps.Space.Dims...), schedSpace.Dims...)
			diags = decideViolation(diags, mapAsSet(viol), dims, Diagnostic{
				Kind: KindScheduleNotSingleValued, Severity: Error, Statement: ps.Name, AccessIndex: -1,
				Message: "statement instance has more than one schedule time stamp",
			})
		}
	}

	// Injectivity: for every statement pair (p, q), instances of p and q
	// sharing a time stamp. Within one statement the shared-stamp relation
	// Sp ∘ Sp⁻¹ always contains the identity, so only lexicographically
	// ordered pairs count; across statements any shared stamp is a
	// violation.
	for i, p := range info.Statements {
		for j := i; j < len(info.Statements); j++ {
			q := info.Statements[j]
			shared, err := p.Schedule.ApplyRange(q.Schedule.Reverse())
			if err != nil {
				diags = append(diags, Diagnostic{
					Kind: KindUnverifiable, Severity: Warning, Statement: p.Name, AccessIndex: -1,
					Message: fmt.Sprintf("could not prove the schedule injective against %s: %v", q.Name, err),
				})
				continue
			}
			if i == j {
				shared = shared.Intersect(presburger.LexLT(p.Space))
			}
			dims := append(append([]string(nil), p.Space.Dims...), q.Space.Dims...)
			diags = decideViolation(diags, mapAsSet(shared), dims, Diagnostic{
				Kind: KindScheduleNotInjective, Severity: Error, Statement: p.Name, AccessIndex: -1,
				Message: fmt.Sprintf("instances of %s and %s share a schedule time stamp", p.Name, q.Name),
			})
		}
	}
	return diags
}

// mapAsSet wraps the basics of a map into a set over the product space.
func mapAsSet(m presburger.Map) presburger.Set {
	var sets []presburger.BasicSet
	for _, bm := range m.Basics() {
		sets = append(sets, bm.AsSet())
	}
	if len(sets) == 0 {
		sp := presburger.NewSpace("In->Out", append(append([]string(nil), m.InSpace().Dims...), m.OutSpace().Dims...)...)
		return presburger.EmptySet(sp)
	}
	return presburger.SetFromBasics(sets...)
}

// decideViolation proves the violation set empty or appends the template
// diagnostic, with a witness point when one was found.
func decideViolation(diags []Diagnostic, viol presburger.Set, dims []string, template Diagnostic) []Diagnostic {
	point, status := firstPoint(viol)
	switch status {
	case witnessEmpty:
		return diags
	case witnessUndecided:
		template.Kind = KindUnverifiable
		template.Severity = Warning
		template.Message = fmt.Sprintf("could not decide: %s", template.Message)
		return append(diags, template)
	}
	template.Witness = point
	template.WitnessDims = dims
	return append(diags, template)
}
