package scopcheck_test

import (
	"testing"

	"haystack/internal/polybench"
	"haystack/internal/presburger"
	"haystack/internal/scop"
	"haystack/internal/scopcheck"
)

// TestPolyBenchClean asserts that every PolyBench kernel — concrete at Mini
// and the parametric builders — verifies with zero diagnostics, warnings
// included. This is the positive half of the checker's contract: the 30
// kernels are the known-good corpus, so any finding on them is a checker
// bug (or a kernel bug, which has happened).
func TestPolyBenchClean(t *testing.T) {
	for _, k := range polybench.Kernels() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			diags := scopcheck.Check(k.Build(polybench.Mini))
			for _, d := range diags {
				t.Errorf("unexpected diagnostic: %s", d)
			}
		})
	}
	for _, k := range polybench.ParametricKernels() {
		k := k
		t.Run("parametric/"+k.Name, func(t *testing.T) {
			diags := scopcheck.Check(k.Build())
			for _, d := range diags {
				t.Errorf("unexpected diagnostic: %s", d)
			}
		})
	}
}

// oobProgram builds a program reading A[i] for i in [0, 5) over an array of
// extent 4: the canonical out-of-bounds victim. The first failing instance
// is i=4 reading element 4.
func oobProgram() *scop.Program {
	p := scop.NewProgram("oob")
	A := p.NewArray("A", scop.ElemFloat64, 4)
	i := scop.V("i")
	p.Add(scop.For(i, scop.C(0), scop.C(5),
		scop.Stmt("S0", scop.Read(A, scop.X(i)))))
	return p
}

func TestCheckOutOfBounds(t *testing.T) {
	diags := scopcheck.Check(oobProgram())
	if len(diags) != 1 {
		t.Fatalf("want exactly one diagnostic, got %d: %v", len(diags), diags)
	}
	d := diags[0]
	if d.Kind != scopcheck.KindOutOfBounds || d.Severity != scopcheck.Error {
		t.Fatalf("want out-of-bounds error, got %s", d)
	}
	if d.Statement != "S0" || d.Array != "A" || d.AccessIndex != 0 {
		t.Fatalf("wrong attribution: %s", d)
	}
	// Witness: instance (i=4, a=0) touching element d0=4 — the first
	// failing instance in execution order.
	wantPoint := []int64{4, 0, 4}
	wantDims := []string{"i", "a", "d0"}
	if len(d.Witness) != len(wantPoint) {
		t.Fatalf("witness %v, want %v", d.Witness, wantPoint)
	}
	for k := range wantPoint {
		if d.Witness[k] != wantPoint[k] || d.WitnessDims[k] != wantDims[k] {
			t.Fatalf("witness %v over %v, want %v over %v", d.Witness, d.WitnessDims, wantPoint, wantDims)
		}
	}
}

// TestCheckNegativeSubscript exercises the lower-bound direction: B[j-1]
// for j starting at 0.
func TestCheckNegativeSubscript(t *testing.T) {
	p := scop.NewProgram("neg")
	B := p.NewArray("B", scop.ElemFloat64, 8)
	j := scop.V("j")
	p.Add(scop.For(j, scop.C(0), scop.C(8),
		scop.Stmt("S0", scop.Write(B, scop.X(j).Minus(scop.C(1))))))
	diags := scopcheck.Check(p)
	if len(diags) != 1 {
		t.Fatalf("want exactly one diagnostic, got %d: %v", len(diags), diags)
	}
	d := diags[0]
	if d.Kind != scopcheck.KindOutOfBounds || d.Severity != scopcheck.Error {
		t.Fatalf("want out-of-bounds error, got %s", d)
	}
	// First failing instance: j=0 writing element -1.
	want := []int64{0, 0, -1}
	for k := range want {
		if d.Witness[k] != want[k] {
			t.Fatalf("witness %v, want %v", d.Witness, want)
		}
	}
}

// TestCheckParametricOutOfBounds verifies the bounds proof works symbolically:
// A has extent N but the loop runs to N+1, which overflows for every N.
func TestCheckParametricOutOfBounds(t *testing.T) {
	p := scop.NewProgram("paramoob")
	N := p.NewParam("N")
	A := p.NewArrayP("A", scop.ElemFloat64, scop.X(N))
	i := scop.V("i")
	p.Add(scop.For(i, scop.C(0), scop.X(N).Plus(scop.C(1)),
		scop.Stmt("S0", scop.Read(A, scop.X(i)))))
	diags := scopcheck.Check(p)
	if len(diags) != 1 {
		t.Fatalf("want exactly one diagnostic, got %d: %v", len(diags), diags)
	}
	d := diags[0]
	if d.Kind != scopcheck.KindOutOfBounds || d.Severity != scopcheck.Error {
		t.Fatalf("want out-of-bounds error, got %s", d)
	}
	// The lexicographically first violation minimizes the parameter too:
	// N=1 (the context lower bound), instance i=1 reading element 1.
	want := []int64{1, 1, 0, 1}
	wantDims := []string{"N", "i", "a", "d0"}
	if len(d.Witness) != len(want) {
		t.Fatalf("witness %v over %v, want %v", d.Witness, d.WitnessDims, want)
	}
	for k := range want {
		if d.Witness[k] != want[k] || d.WitnessDims[k] != wantDims[k] {
			t.Fatalf("witness %v over %v, want %v over %v", d.Witness, d.WitnessDims, want, wantDims)
		}
	}
}

// TestCheckBrokenPrograms is the table-driven negative suite: each case is
// one intentionally broken program with the exact expected diagnostic.
func TestCheckBrokenPrograms(t *testing.T) {
	i, j := scop.V("i"), scop.V("j")
	cases := []struct {
		name      string
		build     func() *scop.Program
		kind      scopcheck.Kind
		severity  scopcheck.Severity
		statement string
		witness   []int64 // nil: don't check the point
	}{
		{
			name: "empty-domain",
			build: func() *scop.Program {
				p := scop.NewProgram("empty")
				A := p.NewArray("A", scop.ElemFloat64, 4)
				p.Add(scop.For(i, scop.C(2), scop.C(2),
					scop.Stmt("S0", scop.Read(A, scop.X(i)))))
				return p
			},
			kind: scopcheck.KindEmptyDomain, severity: scopcheck.Warning, statement: "S0",
		},
		{
			name: "dangling-parameter",
			build: func() *scop.Program {
				p := scop.NewProgram("dangling")
				A := p.NewArray("A", scop.ElemFloat64, 4)
				// Subscript references q, which is neither a loop variable
				// nor a declared parameter.
				p.Add(scop.For(i, scop.C(0), scop.C(4),
					scop.Stmt("S0", scop.Read(A, scop.X(scop.V("q"))))))
				return p
			},
			kind: scopcheck.KindDanglingVariable, severity: scopcheck.Error, statement: "S0",
		},
		{
			name: "undeclared-array",
			build: func() *scop.Program {
				p := scop.NewProgram("undeclared")
				ghost := &scop.Array{Name: "G", Elem: 8, Dims: []int64{4}}
				p.Add(scop.For(i, scop.C(0), scop.C(4),
					scop.Stmt("S0", scop.Read(ghost, scop.X(i)))))
				return p
			},
			kind: scopcheck.KindUndeclaredArray, severity: scopcheck.Error, statement: "S0",
		},
		{
			name: "subscript-arity",
			build: func() *scop.Program {
				p := scop.NewProgram("arity")
				A := p.NewArray("A", scop.ElemFloat64, 4, 4)
				p.Add(scop.For(i, scop.C(0), scop.C(4),
					scop.Stmt("S0", scop.Read(A, scop.X(i)))))
				return p
			},
			kind: scopcheck.KindSubscriptArity, severity: scopcheck.Error, statement: "S0",
		},
		{
			name: "duplicate-statement",
			build: func() *scop.Program {
				p := scop.NewProgram("dup")
				A := p.NewArray("A", scop.ElemFloat64, 4)
				p.Add(
					scop.For(i, scop.C(0), scop.C(4), scop.Stmt("S0", scop.Read(A, scop.X(i)))),
					scop.For(j, scop.C(0), scop.C(4), scop.Stmt("S0", scop.Read(A, scop.X(j)))),
				)
				return p
			},
			kind: scopcheck.KindDuplicateStatement, severity: scopcheck.Error, statement: "S0",
		},
		{
			name: "infeasible-context",
			build: func() *scop.Program {
				p := scop.NewProgram("infeasible")
				N := p.NewParam("N")
				// N >= 1 (implicit) and N <= -1: no value satisfies both.
				p.Require(scop.C(-1).Minus(scop.X(N)))
				A := p.NewArrayP("A", scop.ElemFloat64, scop.X(N))
				p.Add(scop.For(i, scop.C(0), scop.X(N),
					scop.Stmt("S0", scop.Read(A, scop.X(i)))))
				return p
			},
			kind: scopcheck.KindInfeasibleContext, severity: scopcheck.Error,
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			diags := scopcheck.Check(tc.build())
			if len(diags) == 0 {
				t.Fatalf("want a %s diagnostic, got none", tc.kind)
			}
			var found *scopcheck.Diagnostic
			for k := range diags {
				if diags[k].Kind == tc.kind {
					found = &diags[k]
					break
				}
			}
			if found == nil {
				t.Fatalf("want a %s diagnostic, got %v", tc.kind, diags)
			}
			if found.Severity != tc.severity {
				t.Errorf("severity %s, want %s", found.Severity, tc.severity)
			}
			if found.Statement != tc.statement {
				t.Errorf("statement %q, want %q", found.Statement, tc.statement)
			}
			if tc.witness != nil {
				if len(found.Witness) != len(tc.witness) {
					t.Fatalf("witness %v, want %v", found.Witness, tc.witness)
				}
				for k := range tc.witness {
					if found.Witness[k] != tc.witness[k] {
						t.Fatalf("witness %v, want %v", found.Witness, tc.witness)
					}
				}
			}
		})
	}
}

// TestCheckNonInjectiveSchedule hand-mutates a schedule so two statements
// land on identical time stamps, and asserts the injectivity proof refutes
// it with a concrete instance pair. BuildPoly's schedules are injective by
// construction, so the breakage is injected at the polyhedral layer.
func TestCheckNonInjectiveSchedule(t *testing.T) {
	p := scop.NewProgram("noninj")
	A := p.NewArray("A", scop.ElemFloat64, 4)
	i, j := scop.V("i"), scop.V("j")
	p.Add(
		scop.For(i, scop.C(0), scop.C(4), scop.Stmt("S0", scop.Read(A, scop.X(i)))),
		scop.For(j, scop.C(0), scop.C(4), scop.Stmt("S1", scop.Read(A, scop.X(j)))),
	)
	info, err := scop.BuildPoly(p)
	if err != nil {
		t.Fatal(err)
	}
	// Graft S0's schedule shape onto S1: rebuild S0's basic map over S1's
	// instance space (same arity, so divs and constraints transfer
	// verbatim). Both statements now occupy time stamps (0, v, 0, a).
	s0, _ := info.StatementByName("S0")
	s1, _ := info.StatementByName("S1")
	var grafted []presburger.BasicMap
	for _, bm := range s0.Schedule.Basics() {
		grafted = append(grafted,
			presburger.NewBasicMap(s1.Space, bm.OutSpace(), bm.Divs(), bm.Constraints()))
	}
	s1.Schedule = presburger.MapFromBasics(grafted...)
	diags := scopcheck.CheckPoly(info)
	var found *scopcheck.Diagnostic
	for k := range diags {
		if diags[k].Kind == scopcheck.KindScheduleNotInjective {
			found = &diags[k]
			break
		}
	}
	if found == nil {
		t.Fatalf("want schedule-not-injective, got %v", diags)
	}
	if found.Severity != scopcheck.Error {
		t.Errorf("severity %s, want error", found.Severity)
	}
	// Witness: the lexicographically first clashing pair (i=0,a=0)/(j=0,a=0).
	want := []int64{0, 0, 0, 0}
	if len(found.Witness) != len(want) {
		t.Fatalf("witness %v, want %v", found.Witness, want)
	}
	for k := range want {
		if found.Witness[k] != want[k] {
			t.Fatalf("witness %v, want %v", found.Witness, want)
		}
	}
}

// TestCheckScheduleNotTotal removes part of a schedule's domain and asserts
// the totality proof reports the uncovered instance.
func TestCheckScheduleNotTotal(t *testing.T) {
	p := scop.NewProgram("nontotal")
	A := p.NewArray("A", scop.ElemFloat64, 4)
	i := scop.V("i")
	p.Add(scop.For(i, scop.C(0), scop.C(4), scop.Stmt("S0", scop.Read(A, scop.X(i)))))
	info, err := scop.BuildPoly(p)
	if err != nil {
		t.Fatal(err)
	}
	s0 := info.Statements[0]
	// Restrict the schedule to i <= 2: instance i=3 loses its time stamp.
	var restricted []presburger.BasicMap
	for _, bm := range s0.Schedule.Basics() {
		c := presburger.Constraint{C: presburger.NewVec(bm.NCols())}
		c.C[0] = 2
		c.C[1] = -1 // first input dim is i: 2 - i >= 0
		restricted = append(restricted, bm.AddConstraint(c))
	}
	s0.Schedule = presburger.MapFromBasics(restricted...)
	diags := scopcheck.CheckPoly(info)
	var found *scopcheck.Diagnostic
	for k := range diags {
		if diags[k].Kind == scopcheck.KindScheduleNotTotal {
			found = &diags[k]
			break
		}
	}
	if found == nil {
		t.Fatalf("want schedule-not-total, got %v", diags)
	}
	if len(found.Witness) != 2 || found.Witness[0] != 3 || found.Witness[1] != 0 {
		t.Fatalf("witness %v, want (i=3, a=0)", found.Witness)
	}
}
