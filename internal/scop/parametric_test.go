package scop

import (
	"strings"
	"testing"
)

func parametricVec() *Program {
	p := NewProgram("vec")
	n := p.NewParam("N")
	A := p.NewArrayP("A", ElemFloat64, X(n))
	i := V("i")
	p.Add(For(i, C(0), X(n), Stmt("S0", Read(A, X(i)))))
	return p
}

func TestInstantiateSubstitutesEverywhere(t *testing.T) {
	p := NewProgram("ex")
	n := p.NewParam("N")
	A := p.NewArrayP("A", ElemFloat64, X(n), X(n).Plus(C(2)))
	i, j := V("i"), V("j")
	p.Add(For(i, C(0), X(n),
		For(j, X(i), X(n).Plus(C(2)),
			Stmt("S0", Read(A, X(i), X(n).Minus(C(1)).Minus(X(j).Minus(X(j))))))))
	inst, err := p.Instantiate(map[string]int64{"N": 5})
	if err != nil {
		t.Fatalf("Instantiate: %v", err)
	}
	if inst.IsParametric() {
		t.Fatal("instantiated program still parametric")
	}
	if got := inst.Arrays[0].Dims; got[0] != 5 || got[1] != 7 {
		t.Fatalf("array dims %v, want [5 7]", got)
	}
	if err := inst.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	counts := DynamicStatementInstances(inst)
	if counts["S0"] != 5*7-(0+1+2+3+4) {
		t.Fatalf("S0 instances %d", counts["S0"])
	}
	// The original program is untouched.
	if !p.IsParametric() || p.Arrays[0].Dims != nil {
		t.Fatal("Instantiate mutated the original program")
	}
}

func TestInstantiateErrors(t *testing.T) {
	p := parametricVec()
	if _, err := p.Instantiate(nil); err == nil || !strings.Contains(err.Error(), "unbound") {
		t.Errorf("missing binding: err=%v", err)
	}
	if _, err := p.Instantiate(map[string]int64{"N": 4, "M": 2}); err == nil || !strings.Contains(err.Error(), "unknown") {
		t.Errorf("unknown binding: err=%v", err)
	}
	if _, err := p.Instantiate(map[string]int64{"N": 0}); err == nil || !strings.Contains(err.Error(), "context") {
		t.Errorf("context violation (implicit N >= 1): err=%v", err)
	}
	p.Require(X(V("N")).Minus(C(10))) // N >= 10
	if _, err := p.Instantiate(map[string]int64{"N": 5}); err == nil {
		t.Error("explicit context constraint not enforced")
	}
	if _, err := p.Instantiate(map[string]int64{"N": 10}); err != nil {
		t.Errorf("N=10 satisfies the context: %v", err)
	}
	concrete := NewProgram("c")
	concrete.NewArray("A", ElemFloat64, 4)
	if _, err := concrete.Instantiate(map[string]int64{"N": 1}); err == nil {
		t.Error("binding a non-parametric program must fail")
	}
	if q, err := concrete.Instantiate(nil); err != nil || q != concrete {
		t.Errorf("identity instantiation: %v", err)
	}
}

func TestValidateParametric(t *testing.T) {
	p := parametricVec()
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// A loop variable shadowing a parameter is rejected.
	bad := NewProgram("bad")
	n := bad.NewParam("N")
	A := bad.NewArrayP("A", ElemFloat64, X(n))
	bad.Add(For(V("N"), C(0), X(n), Stmt("S0", Read(A, X(V("N"))))))
	if err := bad.Validate(); err == nil {
		t.Error("loop variable shadowing a parameter accepted")
	}
	// Extents over undeclared names are rejected.
	bad2 := NewProgram("bad2")
	B := bad2.NewArrayP("B", ElemFloat64, X(V("M")))
	bad2.Add(For(V("i"), C(0), C(4), Stmt("S0", Read(B, X(V("i"))))))
	if err := bad2.Validate(); err == nil {
		t.Error("extent over undeclared parameter accepted")
	}
	// Duplicate parameters are rejected.
	dup := NewProgram("dup")
	dup.NewParam("N")
	dup.NewParam("N")
	a := dup.NewArray("A", ElemFloat64, 4)
	dup.Add(For(V("i"), C(0), C(4), Stmt("S0", Read(a, X(V("i"))))))
	if err := dup.Validate(); err == nil {
		t.Error("duplicate parameter accepted")
	}
}

func TestCompileRejectsParametric(t *testing.T) {
	p := parametricVec()
	layout := NewLayout(p, LayoutPadded, 64)
	if _, err := Compile(p, layout); err == nil {
		t.Fatal("Compile accepted a parametric program")
	}
}

func TestBuildPolyParametricSpaces(t *testing.T) {
	p := parametricVec()
	info, err := BuildPoly(p)
	if err != nil {
		t.Fatalf("BuildPoly: %v", err)
	}
	if info.NParam() != 1 || info.Params[0] != "N" {
		t.Fatalf("params %v", info.Params)
	}
	ps := info.Statements[0]
	if ps.Space.NParam != 1 || ps.Space.Dims[0] != "N" {
		t.Fatalf("statement space %v", ps.Space)
	}
	if got := info.ScheduleSpace(); got.NParam != 1 || got.Dims[0] != "N" {
		t.Fatalf("schedule space %v", got)
	}
	// The domain is the parametric triangle {(N, i, a) : 1 <= N, 0 <= i < N,
	// a = 0}: spot-check membership at a few points.
	dom := ps.Domain
	for _, tc := range []struct {
		point []int64
		in    bool
	}{
		{[]int64{4, 0, 0}, true},
		{[]int64{4, 3, 0}, true},
		{[]int64{4, 4, 0}, false},
		{[]int64{0, 0, 0}, false},
	} {
		if got := dom.Contains(tc.point); got != tc.in {
			t.Errorf("domain contains %v = %v, want %v", tc.point, got, tc.in)
		}
	}
}

func TestExprBind(t *testing.T) {
	e := X(V("N")).Scale(3).Plus(X(V("i"))).Plus(C(2))
	b := e.Bind(map[string]int64{"N": 4})
	if v, ok := b.IsConstant(); ok || v != 0 {
		if b.Coeffs["i"] != 1 || b.Const != 14 {
			t.Fatalf("bound expr %v", b)
		}
	}
	full := b.Bind(map[string]int64{"i": 1})
	if v, ok := full.IsConstant(); !ok || v != 15 {
		t.Fatalf("fully bound expr %v", full)
	}
}
