package scop

import (
	"testing"

	"haystack/internal/presburger"
)

// setIndexProgram is a small two-array program with a 2-D and a 1-D array,
// enough to exercise base offsets, padded outer strides, and multiple
// accesses per statement.
func setIndexProgram() *Program {
	p := NewProgram("setindex")
	a := p.NewArray("A", ElemFloat64, 6, 10)
	x := p.NewArray("x", ElemFloat64, 10)
	i, j := V("i"), V("j")
	p.Add(
		For(i, C(0), C(6),
			For(j, C(0), C(10),
				Stmt("S0", Read(a, X(i), X(j)), Read(x, X(j)), Write(x, X(i))))))
	return p
}

// TestArrayResiduePartition validates the residue sets against the padded
// layout directly: for every line of every array, exactly the residue set of
// gline mod numSets contains it.
func TestArrayResiduePartition(t *testing.T) {
	const lineSize, numSets = 64, 4
	prog := setIndexProgram()
	info, err := BuildPoly(prog)
	if err != nil {
		t.Fatal(err)
	}
	part, err := info.SetPartition(lineSize, numSets)
	if err != nil {
		t.Fatal(err)
	}
	layout := NewLayout(prog, LayoutPadded, lineSize)
	for _, a := range prog.Arrays {
		// Build the line-granularity array space the way AccessRelations does.
		dims := make([]string, a.Rank())
		for d := range dims {
			dims[d] = "d"
		}
		dims[len(dims)-1] = "line"
		space := presburger.NewSpace(a.Name, dims...)
		residues := make([]presburger.Set, numSets)
		for s := int64(0); s < numSets; s++ {
			residues[s], err = part.ArrayResidue(space, s)
			if err != nil {
				t.Fatalf("%s residue %d: %v", a.Name, s, err)
			}
		}
		base := layout.Base(a)
		strides := layout.Strides(a)
		linesPerRow := (a.Dims[a.Rank()-1]*a.Elem + lineSize - 1) / lineSize
		var outer int64 = 1
		if a.Rank() > 1 {
			outer = a.Dims[0]
		}
		for o := int64(0); o < outer; o++ {
			for line := int64(0); line < linesPerRow; line++ {
				addr := base + line*lineSize
				point := []int64{line}
				if a.Rank() > 1 {
					addr = base + o*strides[0] + line*lineSize
					point = []int64{o, line}
				}
				wantSet := (addr / lineSize) % numSets
				for s := int64(0); s < numSets; s++ {
					if got := residues[s].Contains(point); got != (s == wantSet) {
						t.Errorf("%s point %v (addr %d): residue %d Contains=%v, want set %d",
							a.Name, point, addr, s, got, wantSet)
					}
				}
			}
		}
	}
}

// TestStatementSetDomainPartition checks that the per-set statement domains
// partition every statement's iteration domain and agree with the addresses
// the compiled trace actually touches.
func TestStatementSetDomainPartition(t *testing.T) {
	const lineSize, numSets = 64, 4
	prog := setIndexProgram()
	info, err := BuildPoly(prog)
	if err != nil {
		t.Fatal(err)
	}
	part, err := info.SetPartition(lineSize, numSets)
	if err != nil {
		t.Fatal(err)
	}
	layout := NewLayout(prog, LayoutPadded, lineSize)
	ps := info.Statements[0]
	stmt := ps.Instance.Statement
	doms := make([]presburger.Set, numSets)
	for s := int64(0); s < numSets; s++ {
		doms[s], err = part.StatementSetDomain("S0", s)
		if err != nil {
			t.Fatalf("set %d: %v", s, err)
		}
	}
	var total, covered int64
	for i := int64(0); i < 6; i++ {
		for j := int64(0); j < 10; j++ {
			env := map[string]int64{"i": i, "j": j}
			for a, acc := range stmt.Accesses {
				total++
				addr := layout.Base(acc.Array)
				strides := layout.Strides(acc.Array)
				for d, idx := range acc.Index {
					addr += strides[d] * idx.Eval(env)
				}
				wantSet := (addr / lineSize) % numSets
				point := []int64{i, j, int64(a)}
				for s := int64(0); s < numSets; s++ {
					in := doms[s].Contains(point)
					if in != (s == wantSet) {
						t.Errorf("instance %v: set %d Contains=%v, want set %d", point, s, in, wantSet)
					}
					if in {
						covered++
					}
				}
			}
		}
	}
	if covered != total {
		t.Errorf("set domains cover %d of %d instances (must partition)", covered, total)
	}
}

// TestSetPartitionRejectsParametric pins the concrete-program requirement.
func TestSetPartitionRejectsParametric(t *testing.T) {
	p := NewProgram("param")
	n := p.NewParam("N")
	a := p.NewArrayP("A", ElemFloat64, X(n))
	i := V("i")
	p.Add(For(i, C(0), X(n), Stmt("S0", Read(a, X(i)))))
	info, err := BuildPoly(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := info.SetPartition(64, 4); err == nil {
		t.Fatal("parametric program must be rejected")
	}
}
