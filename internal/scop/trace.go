package scop

import (
	"fmt"

	"haystack/internal/ints"
)

// LayoutKind selects how arrays are laid out in the simulated address space.
type LayoutKind int

const (
	// LayoutNatural packs rows back to back (ordinary row-major C layout).
	LayoutNatural LayoutKind = iota
	// LayoutPadded pads every innermost row to a multiple of the cache line
	// size, matching the alignment assumption of the analytical model.
	LayoutPadded
)

// Layout assigns base addresses and strides to the arrays of a program.
type Layout struct {
	Kind     LayoutKind
	LineSize int64
	bases    map[string]int64
	strides  map[string][]int64 // per array: stride (in bytes) of every dimension
}

// NewLayout computes a layout for the program. Arrays are placed back to
// back, each aligned to the cache line size.
func NewLayout(p *Program, kind LayoutKind, lineSize int64) *Layout {
	l := &Layout{Kind: kind, LineSize: lineSize, bases: map[string]int64{}, strides: map[string][]int64{}}
	next := int64(0)
	align := func(v, a int64) int64 { return ints.CeilDiv(v, a) * a }
	for _, a := range p.Arrays {
		if a.IsParametric() {
			// Parametric arrays have no concrete footprint; Compile rejects
			// the program before the layout is consulted.
			continue
		}
		strides := make([]int64, len(a.Dims))
		rowBytes := a.Elem * a.Dims[len(a.Dims)-1]
		if kind == LayoutPadded {
			rowBytes = align(rowBytes, lineSize)
		}
		// Innermost dimension has element stride; outer dimensions use the
		// (possibly padded) row size.
		strides[len(a.Dims)-1] = a.Elem
		size := rowBytes
		for d := len(a.Dims) - 2; d >= 0; d-- {
			strides[d] = size
			size *= a.Dims[d]
		}
		if len(a.Dims) == 1 {
			size = rowBytes
		}
		l.bases[a.Name] = align(next, lineSize)
		l.strides[a.Name] = strides
		next = l.bases[a.Name] + size
	}
	return l
}

// Base returns the base address of an array.
func (l *Layout) Base(a *Array) int64 { return l.bases[a.Name] }

// Strides returns the byte stride of every dimension of an array.
func (l *Layout) Strides(a *Array) []int64 { return l.strides[a.Name] }

// TotalBytes returns the footprint of the layout.
func (l *Layout) TotalBytes(p *Program) int64 {
	var end int64
	for _, a := range p.Arrays {
		strides := l.strides[a.Name]
		size := strides[0] * a.Dims[0]
		if len(a.Dims) == 1 {
			size = a.Dims[0] * a.Elem
			if l.Kind == LayoutPadded {
				size = ints.CeilDiv(size, l.LineSize) * l.LineSize
			}
		}
		if l.bases[a.Name]+size > end {
			end = l.bases[a.Name] + size
		}
	}
	return end
}

// MemRef is one dynamic memory access of the program trace.
type MemRef struct {
	Addr  int64
	Size  int64
	Write bool
}

// compiledAccess is an access whose address is a precomputed affine function
// of the loop variable slots.
type compiledAccess struct {
	constant int64
	coeffs   []int64 // one per loop variable slot
	size     int64
	write    bool
}

type compiledNode interface{ isCompiled() }

type compiledBound struct {
	constant int64
	coeffs   []int64
}

type compiledLoop struct {
	slot   int
	lowers []compiledBound // effective lower bound: maximum
	uppers []compiledBound // effective upper bound (exclusive): minimum
	body   []compiledNode
}

func (*compiledLoop) isCompiled() {}

type compiledStmt struct {
	accesses []compiledAccess
}

func (*compiledStmt) isCompiled() {}

// CompiledProgram is a program lowered to a fast trace generator.
type CompiledProgram struct {
	prog  *Program
	slots map[string]int
	root  []compiledNode
}

// Compile lowers the program and a layout into a fast trace generator. Every
// access address is an affine function of the loop variables, so the walk
// performs only integer multiply-adds.
func Compile(p *Program, layout *Layout) (*CompiledProgram, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if p.IsParametric() {
		return nil, fmt.Errorf("scop: cannot replay parametric program %s (instantiate it first)", p.Name)
	}
	cp := &CompiledProgram{prog: p, slots: map[string]int{}}
	// Assign slots to loop variables in order of first appearance.
	var assign func(nodes []Node)
	assign = func(nodes []Node) {
		for _, n := range nodes {
			if l, ok := n.(*Loop); ok {
				if _, seen := cp.slots[l.Var.Name]; !seen {
					cp.slots[l.Var.Name] = len(cp.slots)
				}
				assign(l.Body)
			}
		}
	}
	assign(p.Root)

	exprTo := func(e Expr) (int64, []int64) {
		coeffs := make([]int64, len(cp.slots))
		for name, c := range e.Coeffs {
			if c == 0 {
				continue
			}
			slot, ok := cp.slots[name]
			if !ok {
				panic(fmt.Sprintf("scop: unbound variable %s", name))
			}
			coeffs[slot] = c
		}
		return e.Const, coeffs
	}

	var compile func(nodes []Node) []compiledNode
	compile = func(nodes []Node) []compiledNode {
		var out []compiledNode
		for _, n := range nodes {
			switch n := n.(type) {
			case *Loop:
				cl := &compiledLoop{slot: cp.slots[n.Var.Name], body: compile(n.Body)}
				for _, le := range append([]Expr{n.Lower}, n.ExtraLower...) {
					lc, lco := exprTo(le)
					cl.lowers = append(cl.lowers, compiledBound{lc, lco})
				}
				for _, ue := range append([]Expr{n.Upper}, n.ExtraUpper...) {
					uc, uco := exprTo(ue)
					cl.uppers = append(cl.uppers, compiledBound{uc, uco})
				}
				out = append(out, cl)
			case *Statement:
				cs := &compiledStmt{}
				for _, acc := range n.Accesses {
					strides := layout.Strides(acc.Array)
					constant := layout.Base(acc.Array)
					coeffs := make([]int64, len(cp.slots))
					for d, idx := range acc.Index {
						c, co := exprTo(idx)
						constant += c * strides[d]
						for s := range co {
							coeffs[s] += co[s] * strides[d]
						}
					}
					cs.accesses = append(cs.accesses, compiledAccess{
						constant: constant, coeffs: coeffs, size: acc.Array.Elem, write: acc.Write,
					})
				}
				out = append(out, cs)
			}
		}
		return out
	}
	cp.root = compile(p.Root)
	return cp, nil
}

// ForEachAccess replays the memory trace of the program in execution order,
// calling fn for every access. fn returning false stops the walk early.
func (cp *CompiledProgram) ForEachAccess(fn func(ref MemRef) bool) {
	env := make([]int64, len(cp.slots))
	cp.walk(cp.root, env, fn)
}

func (cp *CompiledProgram) walk(nodes []compiledNode, env []int64, fn func(ref MemRef) bool) bool {
	for _, n := range nodes {
		switch n := n.(type) {
		case *compiledLoop:
			eval := func(b compiledBound) int64 {
				v := b.constant
				for s, c := range b.coeffs {
					if c != 0 {
						v += c * env[s]
					}
				}
				return v
			}
			lo := eval(n.lowers[0])
			for _, b := range n.lowers[1:] {
				if v := eval(b); v > lo {
					lo = v
				}
			}
			hi := eval(n.uppers[0])
			for _, b := range n.uppers[1:] {
				if v := eval(b); v < hi {
					hi = v
				}
			}
			for v := lo; v < hi; v++ {
				env[n.slot] = v
				if !cp.walk(n.body, env, fn) {
					return false
				}
			}
		case *compiledStmt:
			for i := range n.accesses {
				a := &n.accesses[i]
				addr := a.constant
				for s, c := range a.coeffs {
					if c != 0 {
						addr += c * env[s]
					}
				}
				if !fn(MemRef{Addr: addr, Size: a.size, Write: a.write}) {
					return false
				}
			}
		}
	}
	return true
}

// CountAccesses walks the program and returns the number of dynamic memory
// accesses (the trace length).
func (cp *CompiledProgram) CountAccesses() int64 {
	var n int64
	cp.ForEachAccess(func(MemRef) bool { n++; return true })
	return n
}

// DynamicStatementInstances walks the program and returns the number of
// dynamic statement instances per statement name (useful for tests).
func DynamicStatementInstances(p *Program) map[string]int64 {
	out := map[string]int64{}
	var walk func(nodes []Node, env map[string]int64)
	walk = func(nodes []Node, env map[string]int64) {
		for _, n := range nodes {
			switch n := n.(type) {
			case *Loop:
				lo := n.Lower.Eval(env)
				hi := n.Upper.Eval(env)
				for v := lo; v < hi; v++ {
					env[n.Var.Name] = v
					walk(n.Body, env)
				}
				delete(env, n.Var.Name)
			case *Statement:
				out[n.Name]++
			}
		}
	}
	walk(p.Root, map[string]int64{})
	return out
}
