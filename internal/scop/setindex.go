package scop

import (
	"fmt"

	"haystack/internal/presburger"
)

// This file derives the set-index structure of a set-associative cache over
// the padded array layout the analytical model assumes: the cache set of a
// line is set(line) = gline mod numSets, where gline is the global line
// address of the padded layout. Under LayoutPadded every outer stride and
// every array base is a multiple of the line size, so
//
//	gline = base/L + sum_{d<rank-1} (stride_d/L)·idx_d + floor(elem·idx_last/L)
//
// is an affine function of the array coordinates (the trailing term is the
// "line" dimension of the line-granularity array space), and the residue
// constraint gline ≡ s (mod numSets) is expressible with one local div.

// lineAddress is the padded-layout line addressing of one array: the base
// address and the outer-dimension strides, both in units of cache lines.
type lineAddress struct {
	baseLine int64
	// lineStrides has one entry per non-innermost array dimension.
	lineStrides []int64
}

// SetPartition partitions the cache lines of a concrete program among the
// numSets sets of a set-associative cache, exposing each set's lines as a
// residue Set over the line-granularity array spaces and each statement's
// instances by the set their own access falls into. It is the bridge between
// the fully-associative stack-distance machinery and set-associative
// counting: restricted to one set's lines, the distance polynomial counts
// exactly the within-set stack distance.
type SetPartition struct {
	info     *PolyInfo
	lineSize int64
	numSets  int64
	addr     map[string]lineAddress
}

// SetPartition builds the set-index structure for a cache with numSets sets
// at the given line size. The program must be concrete (a parametric program
// has no fixed layout, hence no set-index map).
func (info *PolyInfo) SetPartition(lineSize, numSets int64) (*SetPartition, error) {
	if lineSize <= 0 {
		return nil, fmt.Errorf("scop: set partition needs a positive line size, got %d", lineSize)
	}
	if numSets <= 0 {
		return nil, fmt.Errorf("scop: set partition needs a positive set count, got %d", numSets)
	}
	if info.Program.IsParametric() {
		return nil, fmt.Errorf("scop: program %s is parametric; the set-index map needs a concrete layout", info.Program.Name)
	}
	layout := NewLayout(info.Program, LayoutPadded, lineSize)
	sp := &SetPartition{info: info, lineSize: lineSize, numSets: numSets, addr: map[string]lineAddress{}}
	for _, a := range info.Program.Arrays {
		base := layout.Base(a)
		strides := layout.Strides(a)
		if base%lineSize != 0 {
			return nil, fmt.Errorf("scop: array %s base %d not line aligned", a.Name, base)
		}
		la := lineAddress{baseLine: base / lineSize}
		for d := 0; d < a.Rank()-1; d++ {
			if strides[d]%lineSize != 0 {
				return nil, fmt.Errorf("scop: array %s stride %d of dim %d not line aligned (padded layout expected)", a.Name, strides[d], d)
			}
			la.lineStrides = append(la.lineStrides, strides[d]/lineSize)
		}
		sp.addr[a.Name] = la
	}
	return sp, nil
}

// NumSets returns the number of cache sets of the partition.
func (sp *SetPartition) NumSets() int64 { return sp.numSets }

// ArrayResidue returns the subset of the given line-granularity array space
// (outer dimensions plus the trailing "line" dimension, as produced by
// LineAccessMap) whose lines map to cache set s. The numSets residues
// partition every array.
func (sp *SetPartition) ArrayResidue(space presburger.Space, s int64) (presburger.Set, error) {
	la, ok := sp.addr[space.Name]
	if !ok {
		return presburger.Set{}, fmt.Errorf("scop: space %s is not an array of the program", space.Name)
	}
	if space.Dim() != len(la.lineStrides)+1 {
		return presburger.Set{}, fmt.Errorf("scop: array space %v has %d dims, line addressing expects %d",
			space, space.Dim(), len(la.lineStrides)+1)
	}
	// gline = baseLine + lineStrides·outer + 1·line over [const, dims...].
	expr := presburger.NewVec(1 + space.Dim())
	expr[0] = la.baseLine
	for d, stride := range la.lineStrides {
		expr[1+d] = stride
	}
	expr[space.Dim()] = 1
	return presburger.ResidueSet(space, expr, sp.numSets, s), nil
}

// StatementSetDomain returns the instances of the statement (points of its
// instance space, including the trailing access dimension) whose own access
// touches a line of cache set s. Restricting a statement's touched-line maps
// to this domain classifies exactly the accesses the set-s partition is
// responsible for.
//
// The set membership is phrased with a single local div over the affine byte
// address F of the access: floor(F/L) ≡ s (mod numSets) iff
// s·L ≤ F − numSets·L·u < (s+1)·L for u = floor(F/(numSets·L)). The interval
// form keeps the divs flat (no div-of-div) and avoids modulo equalities,
// which the piecewise merges downstream handle far better.
func (sp *SetPartition) StatementSetDomain(stmt string, s int64) (presburger.Set, error) {
	ps, ok := sp.info.StatementByName(stmt)
	if !ok {
		return presburger.Set{}, fmt.Errorf("scop: unknown statement %s", stmt)
	}
	loopVars := ps.Instance.LoopVars()
	aCol := 1 + len(loopVars)
	dom := presburger.EmptySet(ps.Space)
	for accIdx, acc := range ps.Instance.Statement.Accesses {
		la := sp.addr[acc.Array.Name]
		bs := presburger.UniverseBasicSet(ps.Space)
		w := bs.NCols()
		// a == accIdx
		ca := presburger.Constraint{C: presburger.NewVec(w), Eq: true}
		ca.C[aCol] = 1
		ca.C[0] = -int64(accIdx)
		bs = bs.AddConstraint(ca)
		// F = byte address of the access: an affine expression of the loop
		// variables under the padded layout.
		rank := acc.Array.Rank()
		f := presburger.NewVec(w)
		f[0] = la.baseLine * sp.lineSize
		for d := 0; d < rank-1; d++ {
			idxVec, err := exprToVec(acc.Index[d], nil, loopVars, w)
			if err != nil {
				return presburger.Set{}, err
			}
			for j := range idxVec {
				f[j] += la.lineStrides[d] * sp.lineSize * idxVec[j]
			}
		}
		lastVec, err := exprToVec(acc.Index[rank-1], nil, loopVars, w)
		if err != nil {
			return presburger.Set{}, err
		}
		for j := range lastVec {
			f[j] += acc.Array.Elem * lastVec[j]
		}
		bs, u := bs.AddDiv(f, sp.numSets*sp.lineSize)
		wu := bs.NCols()
		// s·L ≤ F − numSets·L·u  and  F − numSets·L·u ≤ (s+1)·L − 1.
		lo := presburger.Constraint{C: presburger.NewVec(wu)}
		hi := presburger.Constraint{C: presburger.NewVec(wu)}
		for j := range f {
			lo.C[j] = f[j]
			hi.C[j] = -f[j]
		}
		lo.C[u] -= sp.numSets * sp.lineSize
		hi.C[u] += sp.numSets * sp.lineSize
		lo.C[0] -= s * sp.lineSize
		hi.C[0] += (s+1)*sp.lineSize - 1
		dom = dom.Union(presburger.SetFromBasic(bs.AddConstraint(lo).AddConstraint(hi)))
	}
	return dom.Intersect(ps.Domain), nil
}
