package scop

import (
	"fmt"

	"haystack/internal/presburger"
)

// ScheduleSpaceName is the name of the common schedule space all statements
// are mapped into.
const ScheduleSpaceName = "Sched"

// ParamSpaceName is the name of the parameter space of a parametric program:
// the space the parametric cardinalities (total accesses, compulsory and
// capacity misses) live in.
const ParamSpaceName = "Params"

// PolyInfo is the polyhedral description of a program: the iteration domain,
// the schedule, and the access maps of every statement, in the form consumed
// by the cache model (section 2.4 of the paper).
//
// Statement instance spaces carry the loop variables plus a trailing access
// dimension "a" that orders the memory accesses within one statement
// execution, as described in section 3.1 ("multiple memory accesses per
// statement").
//
// For a parametric program, every space of the description (statement
// instance spaces, the schedule space, and the array spaces) additionally
// carries the program parameters as leading dimensions marked with
// presburger.Space.NParam. Every map of the description relates only tuples
// with equal parameter values, so compositions and lexicographic optima
// treat the parameters as fixed-but-unknown and the derived cardinalities
// stay symbolic in them.
type PolyInfo struct {
	Program    *Program
	Statements []*PolyStatement
	// ScheduleDim is the dimensionality of the common schedule space
	// excluding parameter dimensions: 2*maxdepth+1 position/loop dimensions
	// plus one access dimension.
	ScheduleDim int
	// Params are the program parameters, in the order they appear as leading
	// dimensions of every space of the description.
	Params []string
}

// NParam returns the number of program parameters.
func (info *PolyInfo) NParam() int { return len(info.Params) }

// ParamSpace returns the parameter space of the program: one dimension per
// program parameter, all of them marked parametric.
func (info *PolyInfo) ParamSpace() presburger.Space {
	return presburger.NewParamSpace(ParamSpaceName, len(info.Params), info.Params...)
}

// PolyStatement is the polyhedral description of one statement.
type PolyStatement struct {
	Name     string
	Instance *StatementInstance
	Space    presburger.Space // statement instance space: params + loop vars + "a"
	Domain   presburger.Set
	Schedule presburger.Map // instance space -> schedule space
	// Position is the sibling index path of the statement in the loop tree
	// (outermost first), defining the interleaving constants of the
	// schedule.
	Position []int
}

// statementsWithPositions walks the program and returns statements together
// with their position paths.
func statementsWithPositions(p *Program) []*PolyStatement {
	var out []*PolyStatement
	var walk func(nodes []Node, loops []*Loop, path []int)
	walk = func(nodes []Node, loops []*Loop, path []int) {
		for i, n := range nodes {
			childPath := append(append([]int(nil), path...), i)
			switch n := n.(type) {
			case *Loop:
				walk(n.Body, append(append([]*Loop(nil), loops...), n), childPath)
			case *Statement:
				out = append(out, &PolyStatement{
					Name:     n.Name,
					Instance: &StatementInstance{Statement: n, Loops: append([]*Loop(nil), loops...)},
					Position: childPath,
				})
			}
		}
	}
	walk(p.Root, nil, nil)
	return out
}

// BuildPoly derives the polyhedral description of the program.
func BuildPoly(p *Program) (*PolyInfo, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	stmts := statementsWithPositions(p)
	maxDepth := 0
	for _, s := range stmts {
		if d := s.Instance.Depth(); d > maxDepth {
			maxDepth = d
		}
	}
	schedDim := 2*maxDepth + 1 + 1 // interleaving/loop dims + access dim
	info := &PolyInfo{Program: p, Statements: stmts, ScheduleDim: schedDim,
		Params: append([]string(nil), p.Params...)}
	for _, ps := range stmts {
		if err := buildStatement(ps, schedDim, info.Params, p.Context); err != nil {
			return nil, err
		}
	}
	return info, nil
}

// exprToVec converts an affine expression over the program parameters and
// the statement's loop variables into a column vector over the statement
// space columns [const, params..., loopvars..., a] with the given total
// width.
func exprToVec(e Expr, params, loopVars []string, width int) (presburger.Vec, error) {
	v := presburger.NewVec(width)
	v[0] = e.Const
	for name, c := range e.Coeffs {
		if c == 0 {
			continue
		}
		found := false
		for i, pn := range params {
			if pn == name {
				v[1+i] += c
				found = true
				break
			}
		}
		if found {
			continue
		}
		for i, lv := range loopVars {
			if lv == name {
				v[1+len(params)+i] += c
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("scop: expression references unbound variable %s", name)
		}
	}
	return v, nil
}

// paramEqualities adds out-param == in-param constraints for every parameter
// dimension of a universe basic map whose input space has nIn total
// dimensions.
func paramEqualities(bm presburger.BasicMap, nParam, nIn int) presburger.BasicMap {
	w := bm.NCols()
	for i := 0; i < nParam; i++ {
		c := presburger.Constraint{C: presburger.NewVec(w), Eq: true}
		c.C[1+i] = -1
		c.C[1+nIn+i] = 1
		bm = bm.AddConstraint(c)
	}
	return bm
}

func buildStatement(ps *PolyStatement, schedDim int, params []string, context []Expr) error {
	inst := ps.Instance
	loopVars := inst.LoopVars()
	nP := len(params)
	dims := append(append(append([]string(nil), params...), loopVars...), "a")
	ps.Space = presburger.NewParamSpace(ps.Name, nP, dims...)

	// Iteration domain: context constraints over the parameters, loop bounds,
	// and the access dimension range.
	bs := presburger.UniverseBasicSet(ps.Space)
	width := bs.NCols()
	for _, ctx := range context {
		cv, err := exprToVec(ctx, params, loopVars, width)
		if err != nil {
			return err
		}
		bs = bs.AddConstraint(presburger.Constraint{C: cv})
	}
	for i, loop := range inst.Loops {
		lowers := append([]Expr{loop.Lower}, loop.ExtraLower...)
		uppers := append([]Expr{loop.Upper}, loop.ExtraUpper...)
		for _, le := range lowers {
			lower, err := exprToVec(le, params, loopVars, width)
			if err != nil {
				return err
			}
			// v_i - lower >= 0
			lo := presburger.NewVec(width)
			for j := range lo {
				lo[j] = -lower[j]
			}
			lo[1+nP+i]++
			bs = bs.AddConstraint(presburger.Constraint{C: lo})
		}
		for _, ue := range uppers {
			upper, err := exprToVec(ue, params, loopVars, width)
			if err != nil {
				return err
			}
			// upper - 1 - v_i >= 0
			hi := presburger.NewVec(width)
			copy(hi, upper)
			hi[0]--
			hi[1+nP+i]--
			bs = bs.AddConstraint(presburger.Constraint{C: hi})
		}
	}
	nAcc := int64(len(inst.Statement.Accesses))
	aCol := 1 + nP + len(loopVars)
	loA := presburger.NewVec(width)
	loA[aCol] = 1
	bs = bs.AddConstraint(presburger.Constraint{C: loA})
	hiA := presburger.NewVec(width)
	hiA[aCol] = -1
	hiA[0] = nAcc - 1
	bs = bs.AddConstraint(presburger.Constraint{C: hiA})
	ps.Domain = presburger.SetFromBasic(bs)

	// Schedule: params are forwarded unchanged, the real schedule tuple is
	// (pos0, v1, pos1, v2, ..., vd, posd, 0..., a).
	schedSpace := scheduleSpace(schedDim, params)
	bm := presburger.UniverseBasicMap(ps.Space, schedSpace)
	nIn := len(dims)
	bm = paramEqualities(bm, nP, nIn)
	w := bm.NCols()
	eqConst := func(outDim int, value int64) {
		c := presburger.Constraint{C: presburger.NewVec(w), Eq: true}
		c.C[0] = -value
		c.C[1+nIn+nP+outDim] = 1
		bm = bm.AddConstraint(c)
	}
	eqInDim := func(outDim, inDim int) {
		c := presburger.Constraint{C: presburger.NewVec(w), Eq: true}
		c.C[1+nIn+nP+outDim] = 1
		c.C[1+nP+inDim] = -1
		bm = bm.AddConstraint(c)
	}
	depth := inst.Depth()
	for k := 0; k <= depth; k++ {
		eqConst(2*k, int64(ps.Position[k]))
		if k < depth {
			eqInDim(2*k+1, k)
		}
	}
	for t := 2*depth + 1; t < schedDim-1; t++ {
		eqConst(t, 0)
	}
	eqInDim(schedDim-1, len(loopVars)) // acc = a
	ps.Schedule = presburger.MapFromBasic(bm).IntersectDomain(ps.Domain)
	return nil
}

// IterationDomain returns the union of the statement iteration domains.
func (info *PolyInfo) IterationDomain() presburger.UnionSet {
	u := presburger.NewUnionSet()
	for _, s := range info.Statements {
		u = u.Add(s.Domain)
	}
	return u
}

// Schedule returns the union schedule map of the program.
func (info *PolyInfo) Schedule() presburger.UnionMap {
	u := presburger.NewUnionMap()
	for _, s := range info.Statements {
		u = u.Add(s.Schedule)
	}
	return u
}

// AccessMap returns the union access map at array element granularity:
// statement instances (with their access dimension) to array elements.
func (info *PolyInfo) AccessMap() presburger.UnionMap {
	return info.accessMap(0)
}

// LineAccessMap returns the union access map at cache line granularity for
// the given line size in bytes: the innermost array dimension is replaced by
// the cache line index floor(index*elem/lineSize), assuming every innermost
// row is cache-line aligned and padded (section 3.1 of the paper).
func (info *PolyInfo) LineAccessMap(lineSize int64) presburger.UnionMap {
	return info.accessMap(lineSize)
}

// accessMap builds the access union map; lineSize == 0 selects element
// granularity.
func (info *PolyInfo) accessMap(lineSize int64) presburger.UnionMap {
	u := presburger.NewUnionMap()
	for _, ar := range info.AccessRelations(lineSize) {
		if len(ar.Map.Basics()) > 0 {
			u = u.Add(ar.Map)
		}
	}
	return u
}

// AccessRelation pairs one array reference of one statement with its
// polyhedral access relation: the statement instances (restricted to the
// iteration domain) mapped to the array elements (or cache lines) the
// reference touches. It is the per-access granularity the static verifier
// (internal/scopcheck) works at; AccessMap and LineAccessMap are the unions
// of these relations.
type AccessRelation struct {
	Statement *PolyStatement
	// AccessIndex is the position of the access within the statement (the
	// value of the trailing "a" dimension of the instance space).
	AccessIndex int
	Access      Access
	// Map relates the statement instance space to the array space. The array
	// space carries the program parameters as leading dimensions followed by
	// one dimension per array rank (the innermost replaced by the cache line
	// index when built at line granularity).
	Map presburger.Map
}

// AccessRelations returns the access relation of every array reference of
// every statement, in program order. lineSize == 0 selects element
// granularity; a positive lineSize replaces the innermost array dimension by
// the cache line index (see LineAccessMap).
func (info *PolyInfo) AccessRelations(lineSize int64) []AccessRelation {
	nP := info.NParam()
	var out []AccessRelation
	for _, ps := range info.Statements {
		loopVars := ps.Instance.LoopVars()
		nIn := nP + len(loopVars) + 1
		aCol := 1 + nP + len(loopVars)
		for accIdx, acc := range ps.Instance.Statement.Accesses {
			rank := acc.Array.Rank()
			outDims := make([]string, 0, nP+rank)
			outDims = append(outDims, info.Params...)
			for i := 0; i < rank; i++ {
				outDims = append(outDims, fmt.Sprintf("d%d", i))
			}
			if lineSize > 0 {
				outDims[len(outDims)-1] = "line"
			}
			arrSpace := presburger.NewParamSpace(acc.Array.Name, nP, outDims...)
			bm := presburger.UniverseBasicMap(ps.Space, arrSpace)
			bm = paramEqualities(bm, nP, nIn)
			w := bm.NCols()
			// a == accIdx
			ceq := presburger.Constraint{C: presburger.NewVec(w), Eq: true}
			ceq.C[aCol] = 1
			ceq.C[0] = -int64(accIdx)
			bm = bm.AddConstraint(ceq)
			for d := 0; d < rank; d++ {
				idxVec, err := exprToVec(acc.Index[d], info.Params, loopVars, w)
				if err != nil {
					// Validate() has already been run; this cannot happen.
					panic(err)
				}
				outCol := 1 + nIn + nP + d
				if lineSize == 0 || d < rank-1 {
					// out_d == subscript_d
					c := presburger.Constraint{C: presburger.NewVec(w), Eq: true}
					for j := range idxVec {
						c.C[j] = idxVec[j]
					}
					c.C[outCol] -= 1
					bm = bm.AddConstraint(c)
					continue
				}
				// Cache line dimension: L*line <= elem*subscript <= L*line + L - 1.
				lower := presburger.NewVec(w)
				for j := range idxVec {
					lower[j] = acc.Array.Elem * idxVec[j]
				}
				lower[outCol] -= lineSize
				bm = bm.AddConstraint(presburger.Constraint{C: lower})
				upper := presburger.NewVec(w)
				for j := range idxVec {
					upper[j] = -acc.Array.Elem * idxVec[j]
				}
				upper[outCol] += lineSize
				upper[0] += lineSize - 1
				bm = bm.AddConstraint(presburger.Constraint{C: upper})
			}
			out = append(out, AccessRelation{
				Statement:   ps,
				AccessIndex: accIdx,
				Access:      acc,
				Map:         presburger.MapFromBasic(bm).IntersectDomain(ps.Domain),
			})
		}
	}
	return out
}

// scheduleSpace builds the common schedule space: the program parameters
// followed by schedDim real schedule dimensions.
func scheduleSpace(schedDim int, params []string) presburger.Space {
	dims := make([]string, 0, len(params)+schedDim)
	dims = append(dims, params...)
	for i := 0; i < schedDim; i++ {
		dims = append(dims, fmt.Sprintf("t%d", i))
	}
	dims[len(dims)-1] = "acc"
	return presburger.NewParamSpace(ScheduleSpaceName, len(params), dims...)
}

// ScheduleSpace returns the common schedule space of the program.
func (info *PolyInfo) ScheduleSpace() presburger.Space {
	return scheduleSpace(info.ScheduleDim, info.Params)
}

// StatementByName returns the polyhedral statement with the given name.
func (info *PolyInfo) StatementByName(name string) (*PolyStatement, bool) {
	for _, s := range info.Statements {
		if s.Name == name {
			return s, true
		}
	}
	return nil, false
}
