package scop

import (
	"testing"
)

// paperExample builds the example program of Figure 2 of the paper:
//
//	for(i=0..3) S0: M[i] = i
//	for(j=0..3) S1: sum += M[3-j]
func paperExample() (*Program, *Array) {
	p := NewProgram("example")
	m := p.NewArray("M", ElemFloat64, 4)
	i := V("i")
	j := V("j")
	p.Add(
		For(i, C(0), C(4), Stmt("S0", Write(m, X(i)))),
		For(j, C(0), C(4), Stmt("S1", Read(m, C(3).Minus(X(j))))),
	)
	return p, m
}

func gemmLike(n int64) *Program {
	p := NewProgram("gemm")
	a := p.NewArray("A", ElemFloat64, n, n)
	b := p.NewArray("B", ElemFloat64, n, n)
	c := p.NewArray("C", ElemFloat64, n, n)
	i, j, k := V("i"), V("j"), V("k")
	p.Add(
		For(i, C(0), C(n),
			For(j, C(0), C(n),
				Stmt("S0", Read(c, X(i), X(j)), Write(c, X(i), X(j))),
				For(k, C(0), C(n),
					Stmt("S1", Read(a, X(i), X(k)), Read(b, X(k), X(j)), Read(c, X(i), X(j)), Write(c, X(i), X(j)))))))
	return p
}

func TestValidate(t *testing.T) {
	p, _ := paperExample()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// Wrong arity must be rejected.
	bad := NewProgram("bad")
	m := bad.NewArray("M", ElemFloat64, 4, 4)
	bad.Add(For(V("i"), C(0), C(4), Stmt("S0", Read(m, X(V("i"))))))
	if err := bad.Validate(); err == nil {
		t.Fatal("expected arity error")
	}
	// Unbound variable must be rejected.
	bad2 := NewProgram("bad2")
	m2 := bad2.NewArray("M", ElemFloat64, 4)
	bad2.Add(For(V("i"), C(0), C(4), Stmt("S0", Read(m2, X(V("z"))))))
	if err := bad2.Validate(); err == nil {
		t.Fatal("expected unbound variable error")
	}
	// Duplicate statement names must be rejected.
	bad3 := NewProgram("bad3")
	m3 := bad3.NewArray("M", ElemFloat64, 4)
	bad3.Add(
		For(V("i"), C(0), C(4), Stmt("S0", Read(m3, X(V("i"))))),
		For(V("j"), C(0), C(4), Stmt("S0", Read(m3, X(V("j"))))),
	)
	if err := bad3.Validate(); err == nil {
		t.Fatal("expected duplicate name error")
	}
}

func TestExprArithmetic(t *testing.T) {
	i, j := V("i"), V("j")
	e := X(i).Scale(2).Plus(X(j)).Minus(C(3))
	env := map[string]int64{"i": 5, "j": 1}
	if got := e.Eval(env); got != 8 {
		t.Fatalf("eval = %d, want 8", got)
	}
	if e.String() == "" {
		t.Fatal("empty expression rendering")
	}
}

func TestStatementsAndDepth(t *testing.T) {
	p := gemmLike(8)
	stmts := p.Statements()
	if len(stmts) != 2 {
		t.Fatalf("statements = %d, want 2", len(stmts))
	}
	if stmts[0].Depth() != 2 || stmts[1].Depth() != 3 {
		t.Fatalf("depths = %d, %d", stmts[0].Depth(), stmts[1].Depth())
	}
	if p.MaxDepth() != 3 {
		t.Fatalf("max depth = %d", p.MaxDepth())
	}
}

func TestBuildPolyExample(t *testing.T) {
	p, _ := paperExample()
	info, err := BuildPoly(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Statements) != 2 {
		t.Fatalf("statements = %d", len(info.Statements))
	}
	// Domain sizes: 4 iterations x 1 access each.
	for _, ps := range info.Statements {
		n, err := ps.Domain.CountByScan()
		if err != nil {
			t.Fatal(err)
		}
		if n != 4 {
			t.Fatalf("%s domain size = %d, want 4", ps.Name, n)
		}
	}
	// The schedule must totally order the 8 accesses: S0 instances first.
	sched := info.Schedule()
	s0, ok := sched.Get("S0", ScheduleSpaceName)
	if !ok {
		t.Fatal("missing S0 schedule")
	}
	s1, ok := sched.Get("S1", ScheduleSpaceName)
	if !ok {
		t.Fatal("missing S1 schedule")
	}
	// S0(i=2,a=0) -> (0, 2, 0, 0) ; S1(j=1,a=0) -> (1, 1, 0, 0).
	if !s0.Contains([]int64{2, 0, 0, 2, 0, 0}) {
		t.Fatalf("S0 schedule wrong: %v", s0)
	}
	if !s1.Contains([]int64{1, 0, 1, 1, 0, 0}) {
		t.Fatalf("S1 schedule wrong: %v", s1)
	}
	// Access map: S1(j=1,a=0) accesses M(2).
	acc := info.AccessMap()
	am, ok := acc.Get("S1", "M")
	if !ok {
		t.Fatal("missing S1->M access map")
	}
	if !am.Contains([]int64{1, 0, 2}) || am.Contains([]int64{1, 0, 1}) {
		t.Fatalf("access map wrong: %v", am)
	}
}

func TestLineAccessMap(t *testing.T) {
	p, _ := paperExample()
	info, err := BuildPoly(p)
	if err != nil {
		t.Fatal(err)
	}
	// 64-byte lines and 8-byte elements: elements 0..3 share line 0.
	acc := info.LineAccessMap(64)
	am, ok := acc.Get("S0", "M")
	if !ok {
		t.Fatal("missing S0->M line access map")
	}
	for i := int64(0); i < 4; i++ {
		if !am.Contains([]int64{i, 0, 0}) {
			t.Fatalf("element %d should map to line 0", i)
		}
		if am.Contains([]int64{i, 0, 1}) {
			t.Fatalf("element %d should not map to line 1", i)
		}
	}
	// 16-byte lines: elements 0,1 -> line 0; elements 2,3 -> line 1.
	acc16 := info.LineAccessMap(16)
	am16, _ := acc16.Get("S0", "M")
	if !am16.Contains([]int64{0, 0, 0}) || !am16.Contains([]int64{2, 0, 1}) || am16.Contains([]int64{2, 0, 0}) {
		t.Fatalf("16-byte line map wrong: %v", am16)
	}
}

func TestLayoutNaturalVsPadded(t *testing.T) {
	p := NewProgram("layout")
	a := p.NewArray("A", ElemFloat64, 3, 5) // 40-byte rows
	b := p.NewArray("B", ElemFloat64, 7)
	natural := NewLayout(p, LayoutNatural, 64)
	padded := NewLayout(p, LayoutPadded, 64)
	if natural.Strides(a)[0] != 40 {
		t.Fatalf("natural row stride = %d, want 40", natural.Strides(a)[0])
	}
	if padded.Strides(a)[0] != 64 {
		t.Fatalf("padded row stride = %d, want 64", padded.Strides(a)[0])
	}
	if natural.Base(a)%64 != 0 || natural.Base(b)%64 != 0 {
		t.Fatal("array bases must be line aligned")
	}
	if natural.Base(b) <= natural.Base(a) {
		t.Fatal("arrays must not overlap")
	}
	if padded.TotalBytes(p) < natural.TotalBytes(p) {
		t.Fatal("padded layout cannot be smaller than natural layout")
	}
}

func TestCompileAndTrace(t *testing.T) {
	p, m := paperExample()
	layout := NewLayout(p, LayoutNatural, 64)
	cp, err := Compile(p, layout)
	if err != nil {
		t.Fatal(err)
	}
	var refs []MemRef
	cp.ForEachAccess(func(r MemRef) bool {
		refs = append(refs, r)
		return true
	})
	if len(refs) != 8 {
		t.Fatalf("trace length = %d, want 8", len(refs))
	}
	base := layout.Base(m)
	// First four accesses: M[0..3] writes; last four: M[3..0] reads.
	for i := 0; i < 4; i++ {
		if refs[i].Addr != base+int64(i)*8 || !refs[i].Write {
			t.Fatalf("ref %d = %+v", i, refs[i])
		}
	}
	for j := 0; j < 4; j++ {
		if refs[4+j].Addr != base+int64(3-j)*8 || refs[4+j].Write {
			t.Fatalf("ref %d = %+v", 4+j, refs[4+j])
		}
	}
	if cp.CountAccesses() != 8 {
		t.Fatalf("access count = %d", cp.CountAccesses())
	}
}

func TestTraceCountMatchesDomainSize(t *testing.T) {
	p := gemmLike(6)
	layout := NewLayout(p, LayoutNatural, 64)
	cp, err := Compile(p, layout)
	if err != nil {
		t.Fatal(err)
	}
	info, err := BuildPoly(p)
	if err != nil {
		t.Fatal(err)
	}
	var domainTotal int64
	for _, ps := range info.Statements {
		n, err := ps.Domain.CountByScan()
		if err != nil {
			t.Fatal(err)
		}
		domainTotal += n
	}
	if got := cp.CountAccesses(); got != domainTotal {
		t.Fatalf("trace length %d != domain size %d", got, domainTotal)
	}
	inst := DynamicStatementInstances(p)
	if inst["S0"] != 36 || inst["S1"] != 216 {
		t.Fatalf("instances = %v", inst)
	}
}

func TestTriangularLoopTrace(t *testing.T) {
	// for i in [0,5): for j in [0, i+1): S reads A[i][j]
	p := NewProgram("tri")
	a := p.NewArray("A", ElemFloat64, 5, 5)
	i, j := V("i"), V("j")
	p.Add(For(i, C(0), C(5), For(j, C(0), X(i).Plus(C(1)), Stmt("S0", Read(a, X(i), X(j))))))
	layout := NewLayout(p, LayoutNatural, 64)
	cp, err := Compile(p, layout)
	if err != nil {
		t.Fatal(err)
	}
	if got := cp.CountAccesses(); got != 15 {
		t.Fatalf("triangular trace length = %d, want 15", got)
	}
	info, err := BuildPoly(p)
	if err != nil {
		t.Fatal(err)
	}
	n, err := info.Statements[0].Domain.CountByScan()
	if err != nil {
		t.Fatal(err)
	}
	if n != 15 {
		t.Fatalf("triangular domain = %d, want 15", n)
	}
}
