// Package scop represents static control programs (SCoPs): perfectly or
// imperfectly nested affine loop nests with array accesses whose subscripts
// are affine functions of the loop variables. A SCoP is the input of the
// cache model and of the trace-driven simulator.
//
// Programs are written with a small builder DSL:
//
//	p := scop.NewProgram("example")
//	M := p.NewArray("M", scop.ElemFloat64, 4)
//	i := scop.V("i")
//	j := scop.V("j")
//	p.Add(
//		scop.For(i, scop.C(0), scop.C(4),
//			scop.Stmt("S0", scop.Write(M, scop.X(i)))),
//		scop.For(j, scop.C(0), scop.C(4),
//			scop.Stmt("S1", scop.Read(M, scop.C(3).Minus(scop.X(j))))),
//	)
//
// From the program, the package derives the polyhedral description used by
// the model (iteration domain, schedule, access maps) and can also replay
// the exact memory trace for the simulator.
package scop

import (
	"fmt"
	"sort"
	"strings"
)

// Element sizes in bytes for the common PolyBench data types.
const (
	ElemFloat32 int64 = 4
	ElemFloat64 int64 = 8
	ElemInt32   int64 = 4
)

// Array describes a (multi-dimensional) array of fixed element size.
type Array struct {
	Name string
	Elem int64   // element size in bytes
	Dims []int64 // extent of every dimension
}

// NumElements returns the total number of elements of the array.
func (a *Array) NumElements() int64 {
	n := int64(1)
	for _, d := range a.Dims {
		n *= d
	}
	return n
}

// SizeBytes returns the unpadded size of the array in bytes.
func (a *Array) SizeBytes() int64 { return a.NumElements() * a.Elem }

// Var is a loop variable. Variables are identified by name within a program.
type Var struct{ Name string }

// V returns a loop variable with the given name.
func V(name string) Var { return Var{Name: name} }

// Expr is an affine expression over loop variables: Const + sum Coeff[v]*v.
type Expr struct {
	Const  int64
	Coeffs map[string]int64
}

// C returns the constant expression n.
func C(n int64) Expr { return Expr{Const: n} }

// X returns the expression consisting of the loop variable v.
func X(v Var) Expr { return Expr{Coeffs: map[string]int64{v.Name: 1}} }

func (e Expr) clone() Expr {
	out := Expr{Const: e.Const, Coeffs: map[string]int64{}}
	for k, v := range e.Coeffs {
		out.Coeffs[k] = v
	}
	return out
}

// Plus returns e + o.
func (e Expr) Plus(o Expr) Expr {
	out := e.clone()
	out.Const += o.Const
	for k, v := range o.Coeffs {
		out.Coeffs[k] += v
	}
	return out
}

// Minus returns e - o.
func (e Expr) Minus(o Expr) Expr { return e.Plus(o.Scale(-1)) }

// Scale returns f*e.
func (e Expr) Scale(f int64) Expr {
	out := e.clone()
	out.Const *= f
	for k := range out.Coeffs {
		out.Coeffs[k] *= f
	}
	return out
}

// Eval evaluates the expression with the given loop variable values.
func (e Expr) Eval(env map[string]int64) int64 {
	v := e.Const
	for k, c := range e.Coeffs {
		v += c * env[k]
	}
	return v
}

// String renders the expression.
func (e Expr) String() string {
	var parts []string
	names := make([]string, 0, len(e.Coeffs))
	for k, c := range e.Coeffs {
		if c != 0 {
			names = append(names, k)
		}
	}
	sort.Strings(names)
	for _, k := range names {
		c := e.Coeffs[k]
		switch c {
		case 1:
			parts = append(parts, k)
		case -1:
			parts = append(parts, "-"+k)
		default:
			parts = append(parts, fmt.Sprintf("%d*%s", c, k))
		}
	}
	if e.Const != 0 || len(parts) == 0 {
		parts = append(parts, fmt.Sprintf("%d", e.Const))
	}
	return strings.Join(parts, "+")
}

// Access is one array reference of a statement.
type Access struct {
	Array *Array
	Index []Expr // one affine subscript per array dimension
	Write bool
}

// Read builds a read access.
func Read(a *Array, index ...Expr) Access { return Access{Array: a, Index: index} }

// Write builds a write access.
func Write(a *Array, index ...Expr) Access { return Access{Array: a, Index: index, Write: true} }

// Node is a loop or a statement in the program tree.
type Node interface{ isNode() }

// Loop is a for loop over [Lower, Upper) with unit stride. Additional lower
// bounds (combined with max) and upper bounds (combined with min) support
// tiled loop nests, whose point loops are bounded both by the tile and by
// the original loop extent.
type Loop struct {
	Var   Var
	Lower Expr
	Upper Expr // exclusive
	// ExtraLower are additional inclusive lower bounds (the effective lower
	// bound is the maximum of all lower bounds).
	ExtraLower []Expr
	// ExtraUpper are additional exclusive upper bounds (the effective upper
	// bound is the minimum of all upper bounds).
	ExtraUpper []Expr
	Body       []Node
}

func (*Loop) isNode() {}

// For builds a loop node.
func For(v Var, lower, upper Expr, body ...Node) *Loop {
	return &Loop{Var: v, Lower: lower, Upper: upper, Body: body}
}

// ForBounded builds a loop node with several lower and upper bounds: the
// loop iterates over [max(lowers), min(uppers)).
func ForBounded(v Var, lowers, uppers []Expr, body ...Node) *Loop {
	if len(lowers) == 0 || len(uppers) == 0 {
		panic("scop: ForBounded requires at least one lower and one upper bound")
	}
	return &Loop{Var: v, Lower: lowers[0], Upper: uppers[0],
		ExtraLower: append([]Expr(nil), lowers[1:]...),
		ExtraUpper: append([]Expr(nil), uppers[1:]...),
		Body:       body}
}

// Statement is a straight-line statement performing a list of array
// accesses in order (reads of the right-hand side followed by the write, in
// the order provided by the kernel author, mirroring the order a compiler
// front end would emit).
type Statement struct {
	Name     string
	Accesses []Access
}

func (*Statement) isNode() {}

// Stmt builds a statement node.
func Stmt(name string, accesses ...Access) *Statement {
	return &Statement{Name: name, Accesses: accesses}
}

// Program is a full static control program.
type Program struct {
	Name   string
	Arrays []*Array
	Root   []Node
}

// NewProgram returns an empty program.
func NewProgram(name string) *Program { return &Program{Name: name} }

// NewArray declares an array in the program.
func (p *Program) NewArray(name string, elem int64, dims ...int64) *Array {
	a := &Array{Name: name, Elem: elem, Dims: append([]int64(nil), dims...)}
	p.Arrays = append(p.Arrays, a)
	return a
}

// Add appends top-level nodes to the program.
func (p *Program) Add(nodes ...Node) *Program {
	p.Root = append(p.Root, nodes...)
	return p
}

// Statements returns the statements of the program in textual order,
// together with their enclosing loops (outermost first).
func (p *Program) Statements() []*StatementInstance {
	var out []*StatementInstance
	var walk func(nodes []Node, loops []*Loop)
	walk = func(nodes []Node, loops []*Loop) {
		for _, n := range nodes {
			switch n := n.(type) {
			case *Loop:
				walk(n.Body, append(append([]*Loop(nil), loops...), n))
			case *Statement:
				out = append(out, &StatementInstance{Statement: n, Loops: append([]*Loop(nil), loops...)})
			default:
				panic(fmt.Sprintf("scop: unknown node type %T", n))
			}
		}
	}
	walk(p.Root, nil)
	return out
}

// StatementInstance pairs a statement with its enclosing loops.
type StatementInstance struct {
	Statement *Statement
	Loops     []*Loop
}

// Depth returns the nesting depth of the statement.
func (s *StatementInstance) Depth() int { return len(s.Loops) }

// LoopVars returns the names of the enclosing loop variables, outermost
// first.
func (s *StatementInstance) LoopVars() []string {
	out := make([]string, len(s.Loops))
	for i, l := range s.Loops {
		out[i] = l.Var.Name
	}
	return out
}

// MaxDepth returns the maximum statement nesting depth of the program.
func (p *Program) MaxDepth() int {
	d := 0
	for _, s := range p.Statements() {
		if s.Depth() > d {
			d = s.Depth()
		}
	}
	return d
}

// Validate checks structural invariants of the program: unique statement
// names, subscript arities matching array ranks, and accesses referencing
// declared arrays.
func (p *Program) Validate() error {
	declared := map[*Array]bool{}
	names := map[string]bool{}
	for _, a := range p.Arrays {
		declared[a] = true
		if len(a.Dims) == 0 {
			return fmt.Errorf("scop: array %s has no dimensions", a.Name)
		}
		if a.Elem <= 0 {
			return fmt.Errorf("scop: array %s has non-positive element size", a.Name)
		}
	}
	for _, si := range p.Statements() {
		if names[si.Statement.Name] {
			return fmt.Errorf("scop: duplicate statement name %s", si.Statement.Name)
		}
		names[si.Statement.Name] = true
		if len(si.Statement.Accesses) == 0 {
			return fmt.Errorf("scop: statement %s has no accesses", si.Statement.Name)
		}
		vars := map[string]bool{}
		for _, v := range si.LoopVars() {
			vars[v] = true
		}
		for _, acc := range si.Statement.Accesses {
			if !declared[acc.Array] {
				return fmt.Errorf("scop: statement %s accesses undeclared array %s", si.Statement.Name, acc.Array.Name)
			}
			if len(acc.Index) != len(acc.Array.Dims) {
				return fmt.Errorf("scop: statement %s access to %s has %d subscripts, array has %d dimensions",
					si.Statement.Name, acc.Array.Name, len(acc.Index), len(acc.Array.Dims))
			}
			for _, idx := range acc.Index {
				for v := range idx.Coeffs {
					if idx.Coeffs[v] != 0 && !vars[v] {
						return fmt.Errorf("scop: statement %s subscript uses variable %s not bound by an enclosing loop",
							si.Statement.Name, v)
					}
				}
			}
		}
	}
	return nil
}
