// Package scop represents static control programs (SCoPs): perfectly or
// imperfectly nested affine loop nests with array accesses whose subscripts
// are affine functions of the loop variables. A SCoP is the input of the
// cache model and of the trace-driven simulator.
//
// Programs are written with a small builder DSL:
//
//	p := scop.NewProgram("example")
//	M := p.NewArray("M", scop.ElemFloat64, 4)
//	i := scop.V("i")
//	j := scop.V("j")
//	p.Add(
//		scop.For(i, scop.C(0), scop.C(4),
//			scop.Stmt("S0", scop.Write(M, scop.X(i)))),
//		scop.For(j, scop.C(0), scop.C(4),
//			scop.Stmt("S1", scop.Read(M, scop.C(3).Minus(scop.X(j))))),
//	)
//
// From the program, the package derives the polyhedral description used by
// the model (iteration domain, schedule, access maps) and can also replay
// the exact memory trace for the simulator.
package scop

import (
	"fmt"
	"sort"
	"strings"
)

// Element sizes in bytes for the common PolyBench data types.
const (
	ElemFloat32 int64 = 4
	ElemFloat64 int64 = 8
	ElemInt32   int64 = 4
)

// Array describes a (multi-dimensional) array of fixed element size. Extents
// are either concrete (Dims) or affine expressions over the program
// parameters (DimExprs, for arrays declared with NewArrayP); exactly one of
// the two is set.
type Array struct {
	Name string
	Elem int64   // element size in bytes
	Dims []int64 // concrete extent of every dimension (nil when parametric)
	// DimExprs are parametric extents over the program parameters; non-nil
	// exactly when the array was declared with NewArrayP. Instantiate
	// evaluates them into concrete Dims.
	DimExprs []Expr
}

// Rank returns the number of dimensions of the array.
func (a *Array) Rank() int {
	if a.DimExprs != nil {
		return len(a.DimExprs)
	}
	return len(a.Dims)
}

// IsParametric reports whether the array has symbolic extents.
func (a *Array) IsParametric() bool { return a.DimExprs != nil }

// NumElements returns the total number of elements of the array.
func (a *Array) NumElements() int64 {
	if a.IsParametric() {
		panic(fmt.Sprintf("scop: NumElements of parametric array %s (instantiate the program first)", a.Name))
	}
	n := int64(1)
	for _, d := range a.Dims {
		n *= d
	}
	return n
}

// SizeBytes returns the unpadded size of the array in bytes.
func (a *Array) SizeBytes() int64 { return a.NumElements() * a.Elem }

// Var is a loop variable. Variables are identified by name within a program.
type Var struct{ Name string }

// V returns a loop variable with the given name.
func V(name string) Var { return Var{Name: name} }

// Expr is an affine expression over loop variables: Const + sum Coeff[v]*v.
type Expr struct {
	Const  int64
	Coeffs map[string]int64
}

// C returns the constant expression n.
func C(n int64) Expr { return Expr{Const: n} }

// X returns the expression consisting of the loop variable v.
func X(v Var) Expr { return Expr{Coeffs: map[string]int64{v.Name: 1}} }

func (e Expr) clone() Expr {
	out := Expr{Const: e.Const, Coeffs: map[string]int64{}}
	for k, v := range e.Coeffs {
		out.Coeffs[k] = v
	}
	return out
}

// Plus returns e + o.
func (e Expr) Plus(o Expr) Expr {
	out := e.clone()
	out.Const += o.Const
	for k, v := range o.Coeffs {
		out.Coeffs[k] += v
	}
	return out
}

// Minus returns e - o.
func (e Expr) Minus(o Expr) Expr { return e.Plus(o.Scale(-1)) }

// Scale returns f*e.
func (e Expr) Scale(f int64) Expr {
	out := e.clone()
	out.Const *= f
	for k := range out.Coeffs {
		out.Coeffs[k] *= f
	}
	return out
}

// Eval evaluates the expression with the given loop variable values.
func (e Expr) Eval(env map[string]int64) int64 {
	v := e.Const
	for k, c := range e.Coeffs {
		v += c * env[k]
	}
	return v
}

// Bind substitutes the given variable values into the expression, folding
// their contributions into the constant term; variables without a binding
// stay symbolic.
func (e Expr) Bind(vals map[string]int64) Expr {
	out := Expr{Const: e.Const, Coeffs: map[string]int64{}}
	for k, c := range e.Coeffs {
		if v, ok := vals[k]; ok {
			out.Const += c * v
		} else if c != 0 {
			out.Coeffs[k] = c
		}
	}
	return out
}

// IsConstant reports whether the expression has no symbolic part, returning
// its value.
func (e Expr) IsConstant() (int64, bool) {
	for _, c := range e.Coeffs {
		if c != 0 {
			return 0, false
		}
	}
	return e.Const, true
}

// String renders the expression.
func (e Expr) String() string {
	var parts []string
	names := make([]string, 0, len(e.Coeffs))
	for k, c := range e.Coeffs {
		if c != 0 {
			names = append(names, k)
		}
	}
	sort.Strings(names)
	for _, k := range names {
		c := e.Coeffs[k]
		switch c {
		case 1:
			parts = append(parts, k)
		case -1:
			parts = append(parts, "-"+k)
		default:
			parts = append(parts, fmt.Sprintf("%d*%s", c, k))
		}
	}
	if e.Const != 0 || len(parts) == 0 {
		parts = append(parts, fmt.Sprintf("%d", e.Const))
	}
	return strings.Join(parts, "+")
}

// Access is one array reference of a statement.
type Access struct {
	Array *Array
	Index []Expr // one affine subscript per array dimension
	Write bool
}

// Read builds a read access.
func Read(a *Array, index ...Expr) Access { return Access{Array: a, Index: index} }

// Write builds a write access.
func Write(a *Array, index ...Expr) Access { return Access{Array: a, Index: index, Write: true} }

// Node is a loop or a statement in the program tree.
type Node interface{ isNode() }

// Loop is a for loop over [Lower, Upper) with unit stride. Additional lower
// bounds (combined with max) and upper bounds (combined with min) support
// tiled loop nests, whose point loops are bounded both by the tile and by
// the original loop extent.
type Loop struct {
	Var   Var
	Lower Expr
	Upper Expr // exclusive
	// ExtraLower are additional inclusive lower bounds (the effective lower
	// bound is the maximum of all lower bounds).
	ExtraLower []Expr
	// ExtraUpper are additional exclusive upper bounds (the effective upper
	// bound is the minimum of all upper bounds).
	ExtraUpper []Expr
	Body       []Node
}

func (*Loop) isNode() {}

// For builds a loop node.
func For(v Var, lower, upper Expr, body ...Node) *Loop {
	return &Loop{Var: v, Lower: lower, Upper: upper, Body: body}
}

// ForBounded builds a loop node with several lower and upper bounds: the
// loop iterates over [max(lowers), min(uppers)).
func ForBounded(v Var, lowers, uppers []Expr, body ...Node) *Loop {
	if len(lowers) == 0 || len(uppers) == 0 {
		panic("scop: ForBounded requires at least one lower and one upper bound")
	}
	return &Loop{Var: v, Lower: lowers[0], Upper: uppers[0],
		ExtraLower: append([]Expr(nil), lowers[1:]...),
		ExtraUpper: append([]Expr(nil), uppers[1:]...),
		Body:       body}
}

// Statement is a straight-line statement performing a list of array
// accesses in order (reads of the right-hand side followed by the write, in
// the order provided by the kernel author, mirroring the order a compiler
// front end would emit).
type Statement struct {
	Name     string
	Accesses []Access
}

func (*Statement) isNode() {}

// Stmt builds a statement node.
func Stmt(name string, accesses ...Access) *Statement {
	return &Statement{Name: name, Accesses: accesses}
}

// Program is a full static control program, optionally parametric in a set
// of symbolic problem-size parameters (section "parametric analysis" of
// ARCHITECTURE.md): parameters may appear in loop bounds, array subscripts,
// and array extents, and the analytical model can analyze the program once
// for all parameter values.
type Program struct {
	Name   string
	Arrays []*Array
	Root   []Node
	// Params are the symbolic problem-size parameters in declaration order.
	Params []string
	// Context are affine expressions over the parameters that are known to
	// be non-negative (the context set of the program, e.g. N-1 >= 0 for a
	// parameter declared with NewParam).
	Context []Expr
}

// NewProgram returns an empty program.
func NewProgram(name string) *Program { return &Program{Name: name} }

// NewParam declares a symbolic problem-size parameter and returns a variable
// usable in loop bounds, subscripts, and array extents. The context set
// implicitly gains name >= 1 (problem sizes are positive); additional
// constraints can be added with Require.
func (p *Program) NewParam(name string) Var {
	p.Params = append(p.Params, name)
	p.Context = append(p.Context, Expr{Const: -1, Coeffs: map[string]int64{name: 1}})
	return Var{Name: name}
}

// Require adds the context constraint e >= 0 over the program parameters.
func (p *Program) Require(e Expr) *Program {
	p.Context = append(p.Context, e)
	return p
}

// IsParametric reports whether the program has symbolic parameters.
func (p *Program) IsParametric() bool { return len(p.Params) > 0 }

// paramSet returns the parameter names as a set.
func (p *Program) paramSet() map[string]bool {
	out := make(map[string]bool, len(p.Params))
	for _, n := range p.Params {
		out[n] = true
	}
	return out
}

// NewArray declares an array in the program.
func (p *Program) NewArray(name string, elem int64, dims ...int64) *Array {
	a := &Array{Name: name, Elem: elem, Dims: append([]int64(nil), dims...)}
	p.Arrays = append(p.Arrays, a)
	return a
}

// NewArrayP declares an array whose extents are affine expressions over the
// program parameters (constant expressions are allowed too). The array stays
// symbolic until the program is instantiated.
func (p *Program) NewArrayP(name string, elem int64, dims ...Expr) *Array {
	exprs := make([]Expr, len(dims))
	for i, d := range dims {
		exprs[i] = d.clone()
	}
	a := &Array{Name: name, Elem: elem, DimExprs: exprs}
	p.Arrays = append(p.Arrays, a)
	return a
}

// Add appends top-level nodes to the program.
func (p *Program) Add(nodes ...Node) *Program {
	p.Root = append(p.Root, nodes...)
	return p
}

// Statements returns the statements of the program in textual order,
// together with their enclosing loops (outermost first).
func (p *Program) Statements() []*StatementInstance {
	var out []*StatementInstance
	var walk func(nodes []Node, loops []*Loop)
	walk = func(nodes []Node, loops []*Loop) {
		for _, n := range nodes {
			switch n := n.(type) {
			case *Loop:
				walk(n.Body, append(append([]*Loop(nil), loops...), n))
			case *Statement:
				out = append(out, &StatementInstance{Statement: n, Loops: append([]*Loop(nil), loops...)})
			default:
				panic(fmt.Sprintf("scop: unknown node type %T", n))
			}
		}
	}
	walk(p.Root, nil)
	return out
}

// StatementInstance pairs a statement with its enclosing loops.
type StatementInstance struct {
	Statement *Statement
	Loops     []*Loop
}

// Depth returns the nesting depth of the statement.
func (s *StatementInstance) Depth() int { return len(s.Loops) }

// LoopVars returns the names of the enclosing loop variables, outermost
// first.
func (s *StatementInstance) LoopVars() []string {
	out := make([]string, len(s.Loops))
	for i, l := range s.Loops {
		out[i] = l.Var.Name
	}
	return out
}

// MaxDepth returns the maximum statement nesting depth of the program.
func (p *Program) MaxDepth() int {
	d := 0
	for _, s := range p.Statements() {
		if s.Depth() > d {
			d = s.Depth()
		}
	}
	return d
}

// Validate checks structural invariants of the program: unique statement
// names, subscript arities matching array ranks, and accesses referencing
// declared arrays.
func (p *Program) Validate() error {
	params := map[string]bool{}
	for _, n := range p.Params {
		if params[n] {
			return fmt.Errorf("scop: duplicate parameter %s", n)
		}
		params[n] = true
	}
	for _, ctx := range p.Context {
		for v, c := range ctx.Coeffs {
			if c != 0 && !params[v] {
				return fmt.Errorf("scop: context constraint references non-parameter %s", v)
			}
		}
	}
	declared := map[*Array]bool{}
	names := map[string]bool{}
	for _, a := range p.Arrays {
		declared[a] = true
		if a.Rank() == 0 {
			return fmt.Errorf("scop: array %s has no dimensions", a.Name)
		}
		if a.Elem <= 0 {
			return fmt.Errorf("scop: array %s has non-positive element size", a.Name)
		}
		for _, de := range a.DimExprs {
			for v, c := range de.Coeffs {
				if c != 0 && !params[v] {
					return fmt.Errorf("scop: extent of array %s references non-parameter %s", a.Name, v)
				}
			}
		}
	}
	for _, si := range p.Statements() {
		if names[si.Statement.Name] {
			return fmt.Errorf("scop: duplicate statement name %s", si.Statement.Name)
		}
		names[si.Statement.Name] = true
		if len(si.Statement.Accesses) == 0 {
			return fmt.Errorf("scop: statement %s has no accesses", si.Statement.Name)
		}
		vars := map[string]bool{}
		for _, v := range si.LoopVars() {
			if params[v] {
				return fmt.Errorf("scop: loop variable %s shadows a program parameter", v)
			}
			vars[v] = true
		}
		for _, acc := range si.Statement.Accesses {
			if !declared[acc.Array] {
				return fmt.Errorf("scop: statement %s accesses undeclared array %s", si.Statement.Name, acc.Array.Name)
			}
			if len(acc.Index) != acc.Array.Rank() {
				return fmt.Errorf("scop: statement %s access to %s has %d subscripts, array has %d dimensions",
					si.Statement.Name, acc.Array.Name, len(acc.Index), acc.Array.Rank())
			}
			for _, idx := range acc.Index {
				for v := range idx.Coeffs {
					if idx.Coeffs[v] != 0 && !vars[v] && !params[v] {
						return fmt.Errorf("scop: statement %s subscript uses variable %s not bound by an enclosing loop",
							si.Statement.Name, v)
					}
				}
			}
		}
	}
	return nil
}

// CheckBindings validates a parameter binding against the program: every
// parameter must be bound, no unknown names may appear, and the context
// constraints must hold at the values. It is the single binding validator
// shared by Instantiate and the parametric model's evaluation paths.
func (p *Program) CheckBindings(bindings map[string]int64) error {
	params := p.paramSet()
	for name := range bindings {
		if !params[name] {
			return fmt.Errorf("scop: binding for unknown parameter %s", name)
		}
	}
	for _, name := range p.Params {
		if _, ok := bindings[name]; !ok {
			return fmt.Errorf("scop: parameter %s is unbound", name)
		}
	}
	for _, ctx := range p.Context {
		v, ok := ctx.Bind(bindings).IsConstant()
		if !ok || v < 0 {
			return fmt.Errorf("scop: bindings violate context constraint %s >= 0", ctx)
		}
	}
	return nil
}

// Instantiate substitutes concrete values for every program parameter and
// returns the resulting non-parametric program: array extents are evaluated,
// parameter occurrences in loop bounds and subscripts fold into constants,
// and the context constraints are checked against the values. Programs
// without parameters are returned unchanged.
func (p *Program) Instantiate(bindings map[string]int64) (*Program, error) {
	if !p.IsParametric() {
		if len(bindings) > 0 {
			return nil, fmt.Errorf("scop: program %s has no parameters to bind", p.Name)
		}
		return p, nil
	}
	if err := p.CheckBindings(bindings); err != nil {
		return nil, err
	}
	out := NewProgram(p.Name)
	arrayMap := make(map[*Array]*Array, len(p.Arrays))
	for _, a := range p.Arrays {
		dims := a.Dims
		if a.IsParametric() {
			dims = make([]int64, len(a.DimExprs))
			for i, de := range a.DimExprs {
				v, ok := de.Bind(bindings).IsConstant()
				if !ok {
					return nil, fmt.Errorf("scop: extent %d of array %s stays symbolic after binding", i, a.Name)
				}
				if v <= 0 {
					return nil, fmt.Errorf("scop: extent %d of array %s evaluates to %d", i, a.Name, v)
				}
				dims[i] = v
			}
		}
		arrayMap[a] = out.NewArray(a.Name, a.Elem, dims...)
	}
	var instNodes func(nodes []Node) []Node
	instNodes = func(nodes []Node) []Node {
		res := make([]Node, 0, len(nodes))
		for _, n := range nodes {
			switch n := n.(type) {
			case *Loop:
				nl := &Loop{Var: n.Var, Lower: n.Lower.Bind(bindings), Upper: n.Upper.Bind(bindings)}
				for _, e := range n.ExtraLower {
					nl.ExtraLower = append(nl.ExtraLower, e.Bind(bindings))
				}
				for _, e := range n.ExtraUpper {
					nl.ExtraUpper = append(nl.ExtraUpper, e.Bind(bindings))
				}
				nl.Body = instNodes(n.Body)
				res = append(res, nl)
			case *Statement:
				ns := &Statement{Name: n.Name}
				for _, acc := range n.Accesses {
					na := Access{Array: arrayMap[acc.Array], Write: acc.Write}
					for _, idx := range acc.Index {
						na.Index = append(na.Index, idx.Bind(bindings))
					}
					ns.Accesses = append(ns.Accesses, na)
				}
				res = append(res, ns)
			default:
				panic(fmt.Sprintf("scop: unknown node type %T", n))
			}
		}
		return res
	}
	out.Root = instNodes(p.Root)
	return out, nil
}
