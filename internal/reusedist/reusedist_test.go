package reusedist

import (
	"math/rand"
	"testing"
	"testing/quick"

	"haystack/internal/cachesim"
	"haystack/internal/scop"
)

func TestPaperExampleDistances(t *testing.T) {
	// Trace of Figure 4 (element-sized lines): M0 M1 M2 M3 M3 M2 M1 M0.
	p := NewProfiler()
	for _, l := range []int64{0, 1, 2, 3, 3, 2, 1, 0} {
		p.Access(l)
	}
	pr := p.Profile()
	if pr.Compulsory != 4 {
		t.Fatalf("compulsory = %d, want 4", pr.Compulsory)
	}
	// Distances of the second accesses: M3 -> 1, M2 -> 2, M1 -> 3, M0 -> 4.
	want := map[int64]int64{1: 1, 2: 1, 3: 1, 4: 1}
	for d, n := range want {
		if pr.Histogram[d] != n {
			t.Fatalf("histogram[%d] = %d, want %d (full histogram %v)", d, pr.Histogram[d], n, pr.Histogram)
		}
	}
	// With cache capacity 2 lines, the accesses with distance 3 and 4 miss.
	if got := pr.MissesForCapacity(2); got != 4+2 {
		t.Fatalf("misses for capacity 2 = %d, want 6", got)
	}
	if got := pr.CapacityMissesFor(2); got != 2 {
		t.Fatalf("capacity misses = %d, want 2", got)
	}
	if pr.DistinctLines() != 4 {
		t.Fatalf("distinct lines = %d", pr.DistinctLines())
	}
}

func TestAgainstFullyAssociativeSimulator(t *testing.T) {
	// The profile must predict exactly the misses of a fully associative LRU
	// cache of any capacity, for random traces.
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		numLines := 1 + rng.Intn(40)
		trace := make([]int64, 3000)
		for i := range trace {
			// Mix sequential and random reuse.
			if rng.Intn(2) == 0 {
				trace[i] = int64(i % numLines)
			} else {
				trace[i] = int64(rng.Intn(numLines))
			}
		}
		prof := NewProfiler()
		for _, l := range trace {
			prof.Access(l)
		}
		pr := prof.Profile()
		for _, capLines := range []int64{1, 2, 3, 5, 8, 13, 21, 34} {
			h, err := cachesim.NewHierarchy(cachesim.Config{LineSize: 64, Levels: []cachesim.LevelConfig{
				{Name: "L1", SizeBytes: capLines * 64, Ways: 0, Policy: cachesim.LRU},
			}})
			if err != nil {
				t.Fatal(err)
			}
			for _, l := range trace {
				h.Access(l*64, false)
			}
			sim := h.Results().Levels[0]
			if got := pr.MissesForCapacity(capLines); got != sim.Misses {
				t.Fatalf("trial %d capacity %d: profile predicts %d misses, simulator %d",
					trial, capLines, got, sim.Misses)
			}
			if pr.Compulsory != sim.Compulsory {
				t.Fatalf("trial %d: compulsory mismatch %d vs %d", trial, pr.Compulsory, sim.Compulsory)
			}
		}
	}
}

func TestCompactionKeepsDistancesExact(t *testing.T) {
	// Force many compactions by using a tiny initial tree indirectly: long
	// trace with few distinct lines.
	p := NewProfiler()
	const lines = 7
	const n = 100000
	for i := 0; i < n; i++ {
		p.Access(int64(i % lines))
	}
	pr := p.Profile()
	if pr.Compulsory != lines {
		t.Fatalf("compulsory = %d", pr.Compulsory)
	}
	// Every non-cold access has distance exactly `lines`.
	if pr.Histogram[lines] != n-lines {
		t.Fatalf("histogram = %v", pr.Histogram)
	}
}

func TestMonotonicityProperty(t *testing.T) {
	// Misses are monotonically non-increasing in the capacity (inclusion
	// property of LRU).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := NewProfiler()
		for i := 0; i < 2000; i++ {
			p.Access(int64(rng.Intn(50)))
		}
		pr := p.Profile()
		prev := pr.MissesForCapacity(1)
		for c := int64(2); c <= 60; c++ {
			cur := pr.MissesForCapacity(c)
			if cur > prev {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestProfileProgram(t *testing.T) {
	p := scop.NewProgram("sweep")
	a := p.NewArray("A", scop.ElemFloat64, 256)
	i := scop.V("i")
	r := scop.V("r")
	p.Add(scop.For(r, scop.C(0), scop.C(3),
		scop.For(i, scop.C(0), scop.C(256), scop.Stmt("S0", scop.Read(a, scop.X(i))))))
	layout := scop.NewLayout(p, scop.LayoutNatural, 64)
	cp, err := scop.Compile(p, layout)
	if err != nil {
		t.Fatal(err)
	}
	pr := ProfileProgram(cp, 64)
	if pr.Accesses != 3*256 {
		t.Fatalf("accesses = %d", pr.Accesses)
	}
	if pr.Compulsory != 32 {
		t.Fatalf("compulsory = %d, want 32 lines", pr.Compulsory)
	}
	// The array spans 32 lines; with capacity >= 32 only the cold misses
	// remain, below that every repeated sweep misses again.
	if pr.MissesForCapacity(32) != 32 {
		t.Fatalf("misses at capacity 32 = %d", pr.MissesForCapacity(32))
	}
	if pr.MissesForCapacity(16) != 32*3 {
		t.Fatalf("misses at capacity 16 = %d, want 96", pr.MissesForCapacity(16))
	}
}
