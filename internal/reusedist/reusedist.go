// Package reusedist computes exact LRU stack distances (reuse distances) of
// a memory trace with the classic last-access-time + order-statistics
// approach (Mattson et al., Bennett/Kruskal, Olken). It is the profiling
// baseline of the related work section and the ground truth used to validate
// the analytical model: for a fully associative LRU cache of capacity C
// lines, an access misses exactly when its backward stack distance exceeds C
// (or the line was never accessed before).
//
// The stack distance of an access follows the paper's convention: it is the
// number of distinct cache lines accessed between the previous access to the
// same line and the current access, including the reused line itself, so the
// smallest possible distance is one.
package reusedist

import (
	"sort"

	"haystack/internal/scop"
)

// Profiler computes the stack distance histogram of a trace fed one cache
// line at a time.
type Profiler struct {
	time     int64
	lastTime map[int64]int64 // line -> last access time (1-based Fenwick rank)
	fenwick  []int64         // Fenwick tree over access times holding last-access markers
	hist     map[int64]int64 // stack distance -> number of accesses
	cold     int64           // first accesses (compulsory misses)
	accesses int64
}

// NewProfiler returns an empty profiler.
func NewProfiler() *Profiler {
	return &Profiler{
		lastTime: map[int64]int64{},
		fenwick:  make([]int64, 1024),
		hist:     map[int64]int64{},
	}
}

func (p *Profiler) add(pos int64, delta int64) {
	for i := pos; i < int64(len(p.fenwick)); i += i & (-i) {
		p.fenwick[i] += delta
	}
}

// prefix returns the sum of markers at positions 1..pos.
func (p *Profiler) prefix(pos int64) int64 {
	var s int64
	for i := pos; i > 0; i -= i & (-i) {
		s += p.fenwick[i]
	}
	return s
}

// compact rebuilds the Fenwick tree when the time counter outgrows it,
// remapping the active last-access times onto consecutive ranks.
func (p *Profiler) compact() {
	type entry struct {
		line int64
		t    int64
	}
	entries := make([]entry, 0, len(p.lastTime))
	for line, t := range p.lastTime {
		entries = append(entries, entry{line, t})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].t < entries[j].t })
	size := int64(2 * (len(entries) + 1024))
	p.fenwick = make([]int64, size)
	for rank, e := range entries {
		p.lastTime[e.line] = int64(rank + 1)
		p.add(int64(rank+1), 1)
	}
	p.time = int64(len(entries))
}

// Access records an access to the given cache line.
func (p *Profiler) Access(line int64) {
	p.accesses++
	p.time++
	if p.time >= int64(len(p.fenwick)) {
		p.compact()
		p.time++
	}
	prev, seen := p.lastTime[line]
	if seen {
		// Distinct other lines accessed strictly after prev, plus the line
		// itself.
		others := p.prefix(int64(len(p.fenwick))-1) - p.prefix(prev)
		p.hist[others+1]++
		p.add(prev, -1)
	} else {
		p.cold++
	}
	p.lastTime[line] = p.time
	p.add(p.time, 1)
}

// Profile is the immutable result of a profiling run.
type Profile struct {
	Accesses   int64
	Compulsory int64
	// Histogram maps a stack distance (in distinct cache lines, >= 1) to the
	// number of accesses with exactly that distance.
	Histogram map[int64]int64
}

// Profile returns the histogram collected so far.
func (p *Profiler) Profile() Profile {
	hist := make(map[int64]int64, len(p.hist))
	for k, v := range p.hist {
		hist[k] = v
	}
	return Profile{Accesses: p.accesses, Compulsory: p.cold, Histogram: hist}
}

// MissesForCapacity returns the number of misses of a fully associative LRU
// cache with the given capacity in lines: the compulsory misses plus every
// access whose stack distance exceeds the capacity.
func (pr Profile) MissesForCapacity(lines int64) int64 {
	misses := pr.Compulsory
	for d, n := range pr.Histogram {
		if d > lines {
			misses += n
		}
	}
	return misses
}

// CapacityMissesFor returns only the capacity misses for the given capacity.
func (pr Profile) CapacityMissesFor(lines int64) int64 {
	return pr.MissesForCapacity(lines) - pr.Compulsory
}

// DistinctLines returns the number of distinct lines in the trace (equal to
// the number of compulsory misses).
func (pr Profile) DistinctLines() int64 { return pr.Compulsory }

// ProfileProgram replays the trace of a compiled program at the given cache
// line size and returns its stack distance profile.
func ProfileProgram(cp *scop.CompiledProgram, lineSize int64) Profile {
	p := NewProfiler()
	cp.ForEachAccess(func(ref scop.MemRef) bool {
		p.Access(ref.Addr / lineSize)
		return true
	})
	return p.Profile()
}
