package polybench

import (
	"testing"

	"haystack/internal/scop"
)

// TestParametricKernelsInstantiateLikeConcrete checks that instantiating a
// parametric kernel at the standard bindings reproduces the registry's
// concrete kernel: same arrays (names, element sizes, extents), same
// statement names, and the same dynamic statement instance counts at MINI
// (the trace-level fingerprint of the loop structure).
func TestParametricKernelsInstantiateLikeConcrete(t *testing.T) {
	for _, pk := range ParametricKernels() {
		pk := pk
		t.Run(pk.Name, func(t *testing.T) {
			ck, ok := ByName(pk.Name)
			if !ok {
				t.Fatalf("parametric kernel %s has no concrete counterpart", pk.Name)
			}
			prog := pk.Build()
			if !prog.IsParametric() {
				t.Fatal("parametric kernel built a non-parametric program")
			}
			if err := prog.Validate(); err != nil {
				t.Fatalf("Validate: %v", err)
			}
			for _, sz := range []Size{Mini, Small} {
				inst, err := prog.Instantiate(pk.Bindings(sz))
				if err != nil {
					t.Fatalf("Instantiate %v: %v", sz, err)
				}
				want := ck.Build(sz)
				if len(inst.Arrays) != len(want.Arrays) {
					t.Fatalf("%v: %d arrays, want %d", sz, len(inst.Arrays), len(want.Arrays))
				}
				for i, a := range inst.Arrays {
					w := want.Arrays[i]
					if a.Name != w.Name || a.Elem != w.Elem {
						t.Errorf("%v: array %d is %s/%d, want %s/%d", sz, i, a.Name, a.Elem, w.Name, w.Elem)
					}
					if len(a.Dims) != len(w.Dims) {
						t.Errorf("%v: array %s rank %d, want %d", sz, a.Name, len(a.Dims), len(w.Dims))
						continue
					}
					for d := range a.Dims {
						if a.Dims[d] != w.Dims[d] {
							t.Errorf("%v: array %s dim %d is %d, want %d", sz, a.Name, d, a.Dims[d], w.Dims[d])
						}
					}
				}
			}
			got := scop.DynamicStatementInstances(mustInstantiate(t, prog, pk.Bindings(Mini)))
			want := scop.DynamicStatementInstances(ck.Build(Mini))
			if len(got) != len(want) {
				t.Fatalf("statement sets differ: %v vs %v", got, want)
			}
			for stmt, n := range want {
				if got[stmt] != n {
					t.Errorf("MINI: statement %s runs %d times, want %d", stmt, got[stmt], n)
				}
			}
		})
	}
}

func mustInstantiate(t *testing.T, p *scop.Program, bindings map[string]int64) *scop.Program {
	t.Helper()
	inst, err := p.Instantiate(bindings)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

// TestParametricRegistryLookups covers the registry helpers.
func TestParametricRegistryLookups(t *testing.T) {
	names := ParametricNames()
	if len(names) == 0 {
		t.Fatal("no parametric kernels registered")
	}
	for _, want := range []string{"gemm", "trmm", "jacobi-2d"} {
		if _, ok := ParametricByName(want); !ok {
			t.Errorf("parametric kernel %s not registered", want)
		}
	}
	if _, ok := ParametricByName("no-such-kernel"); ok {
		t.Error("lookup of unknown kernel succeeded")
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("names not sorted: %v", names)
		}
	}
}
