package polybench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"haystack/internal/core"
)

// goldenEntry is the checked-in expected result of one kernel at MINI under
// the default configuration (64-byte lines, 32 KiB and 1 MiB levels).
type goldenEntry struct {
	TotalAccesses    int64   `json:"total_accesses"`
	CompulsoryMisses int64   `json:"compulsory_misses"`
	TotalMisses      []int64 `json:"total_misses"`
}

const goldenPath = "testdata/golden_mini.json"

func loadGolden(t *testing.T) map[string]goldenEntry {
	t.Helper()
	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden fixture (regenerate with UPDATE_GOLDEN=1 go test ./internal/polybench -run TestGoldenConformance): %v", err)
	}
	var golden map[string]goldenEntry
	if err := json.Unmarshal(data, &golden); err != nil {
		t.Fatalf("parsing %s: %v", goldenPath, err)
	}
	return golden
}

// TestGoldenConformance asserts the exact reference engine against the
// checked-in per-kernel miss counts for all 30 kernels at MINI. The tier
// costs milliseconds per kernel (trace replay, no symbolic analysis and no
// cache simulator), so it runs on every push and pins the expected numbers
// independently of the engines: the symbolic tier asserts Analyze against
// SimulateReference, this tier asserts SimulateReference against the
// fixture, so a drift in either engine is caught and attributable.
//
// Set UPDATE_GOLDEN=1 to regenerate the fixture after an intentional change
// (new kernel, changed default configuration).
func TestGoldenConformance(t *testing.T) {
	cfg := core.DefaultConfig()
	if os.Getenv("UPDATE_GOLDEN") != "" {
		golden := map[string]goldenEntry{}
		for _, k := range Kernels() {
			ref, err := core.SimulateReference(k.Build(Mini), cfg)
			if err != nil {
				t.Fatalf("%s: %v", k.Name, err)
			}
			golden[k.Name] = goldenEntry{
				TotalAccesses:    ref.TotalAccesses,
				CompulsoryMisses: ref.CompulsoryMisses,
				TotalMisses:      ref.TotalMisses,
			}
		}
		data, err := json.MarshalIndent(golden, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s with %d kernels", goldenPath, len(golden))
		return
	}
	golden := loadGolden(t)
	names := make([]string, 0, len(golden))
	for name := range golden {
		names = append(names, name)
	}
	sort.Strings(names)
	if got, want := len(Kernels()), len(golden); got != want {
		t.Errorf("fixture covers %d kernels, registry has %d (regenerate with UPDATE_GOLDEN=1)", want, got)
	}
	for _, k := range Kernels() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			want, ok := golden[k.Name]
			if !ok {
				t.Fatalf("kernel %s missing from %s (regenerate with UPDATE_GOLDEN=1)", k.Name, goldenPath)
			}
			ref, err := core.SimulateReference(k.Build(Mini), cfg)
			if err != nil {
				t.Fatalf("SimulateReference: %v", err)
			}
			if ref.TotalAccesses != want.TotalAccesses {
				t.Errorf("total accesses: got %d, golden %d", ref.TotalAccesses, want.TotalAccesses)
			}
			if ref.CompulsoryMisses != want.CompulsoryMisses {
				t.Errorf("compulsory misses: got %d, golden %d", ref.CompulsoryMisses, want.CompulsoryMisses)
			}
			if len(ref.TotalMisses) != len(want.TotalMisses) {
				t.Fatalf("level count: got %d, golden %d", len(ref.TotalMisses), len(want.TotalMisses))
			}
			for l, m := range ref.TotalMisses {
				if m != want.TotalMisses[l] {
					t.Errorf("L%d total misses: got %d, golden %d", l+1, m, want.TotalMisses[l])
				}
			}
		})
	}
}
