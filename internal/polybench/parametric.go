package polybench

import (
	"sort"

	"haystack/internal/scop"
)

// ParametricKernel is a kernel whose problem sizes are symbolic program
// parameters: Build constructs the program once with scop parameters in its
// loop bounds and array extents, and Bindings maps every standard PolyBench
// size onto concrete parameter values. Instantiating the parametric program
// at Bindings(s) yields the same program the concrete registry builds at
// size s, so one parametric analysis (core.ComputeParametricModel) answers
// every size.
type ParametricKernel struct {
	Name     string
	Category string
	// Build constructs the parametric program.
	Build func() *scop.Program
	// Bindings returns the parameter values of the standard problem size.
	Bindings func(Size) map[string]int64
}

var parametricRegistry []ParametricKernel

func registerParametric(name, category string, build func() *scop.Program, bindings func(Size) map[string]int64) {
	parametricRegistry = append(parametricRegistry, ParametricKernel{
		Name: name, Category: category, Build: build, Bindings: bindings,
	})
}

// ParametricKernels returns all parametric kernels sorted by name.
func ParametricKernels() []ParametricKernel {
	out := append([]ParametricKernel(nil), parametricRegistry...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ParametricByName returns the parametric kernel with the given name.
func ParametricByName(name string) (ParametricKernel, bool) {
	for _, k := range parametricRegistry {
		if k.Name == name {
			return k, true
		}
	}
	return ParametricKernel{}, false
}

// ParametricNames returns the parametric kernel names in alphabetical order.
func ParametricNames() []string {
	ks := ParametricKernels()
	out := make([]string, len(ks))
	for i, k := range ks {
		out[i] = k.Name
	}
	return out
}

func init() {
	// gemm: C = alpha*A*B + beta*C, parametric in NI, NJ, NK.
	registerParametric("gemm", "blas", func() *scop.Program {
		p := scop.NewProgram("gemm")
		ni, nj, nk := p.NewParam("NI"), p.NewParam("NJ"), p.NewParam("NK")
		A := p.NewArrayP("A", elem, x(ni), x(nk))
		B := p.NewArrayP("B", elem, x(nk), x(nj))
		C := p.NewArrayP("C", elem, x(ni), x(nj))
		i, j, k := v("i"), v("j"), v("k")
		p.Add(f(i, c(0), x(ni),
			f(j, c(0), x(nj),
				st("S0", rd(C, x(i), x(j)), wr(C, x(i), x(j))),
				f(k, c(0), x(nk),
					st("S1", rd(A, x(i), x(k)), rd(B, x(k), x(j)), rd(C, x(i), x(j)), wr(C, x(i), x(j)))))))
		return p
	}, func(s Size) map[string]int64 {
		d := gemmDims.at(s)
		return map[string]int64{"NI": d[0], "NJ": d[1], "NK": d[2]}
	})

	// trmm: triangular matrix multiply, parametric in M and N.
	registerParametric("trmm", "blas", func() *scop.Program {
		p := scop.NewProgram("trmm")
		m, n := p.NewParam("M"), p.NewParam("N")
		A := p.NewArrayP("A", elem, x(m), x(m))
		B := p.NewArrayP("B", elem, x(m), x(n))
		i, j, k := v("i"), v("j"), v("k")
		p.Add(
			f(i, c(0), x(m), f(j, c(0), x(n),
				f(k, x(i).Plus(c(1)), x(m),
					st("S0", rd(A, x(k), x(i)), rd(B, x(k), x(j)), rd(B, x(i), x(j)), wr(B, x(i), x(j)))),
				st("S1", rd(B, x(i), x(j)), wr(B, x(i), x(j))))),
		)
		return p
	}, func(s Size) map[string]int64 {
		d := trmmDims.at(s)
		return map[string]int64{"M": d[0], "N": d[1]}
	})

	// jacobi-2d: two 5-point sweeps per time step, parametric in N and
	// TSTEPS. The interior loops run over 1..N-1, so N >= 2 joins the
	// context to keep the piece domains honest for degenerate sizes.
	registerParametric("jacobi-2d", "stencil", func() *scop.Program {
		p := scop.NewProgram("jacobi-2d")
		n, tsteps := p.NewParam("N"), p.NewParam("TSTEPS")
		p.Require(x(n).Minus(c(2)))
		A := p.NewArrayP("A", elem, x(n), x(n))
		B := p.NewArrayP("B", elem, x(n), x(n))
		t, i, j, i2, j2 := v("t"), v("i"), v("j"), v("i2"), v("j2")
		p.Add(
			f(t, c(0), x(tsteps),
				f(i, c(1), x(n).Minus(c(1)), f(j, c(1), x(n).Minus(c(1)),
					st("S0", rd(A, x(i), x(j)), rd(A, x(i), x(j).Minus(c(1))), rd(A, x(i), x(j).Plus(c(1))),
						rd(A, x(i).Plus(c(1)), x(j)), rd(A, x(i).Minus(c(1)), x(j)), wr(B, x(i), x(j))))),
				f(i2, c(1), x(n).Minus(c(1)), f(j2, c(1), x(n).Minus(c(1)),
					st("S1", rd(B, x(i2), x(j2)), rd(B, x(i2), x(j2).Minus(c(1))), rd(B, x(i2), x(j2).Plus(c(1))),
						rd(B, x(i2).Plus(c(1)), x(j2)), rd(B, x(i2).Minus(c(1)), x(j2)), wr(A, x(i2), x(j2)))))),
		)
		return p
	}, func(s Size) map[string]int64 {
		d := jacobi2dDims.at(s)
		return map[string]int64{"N": d[0], "TSTEPS": d[1]}
	})
}
