package polybench

import (
	"testing"

	"haystack/internal/cachesim"
	"haystack/internal/core"
	"haystack/internal/reusedist"
	"haystack/internal/scop"
)

func TestThirtyKernelsRegistered(t *testing.T) {
	ks := Kernels()
	if len(ks) != 30 {
		t.Fatalf("expected the 30 kernels of the paper, got %d: %v", len(ks), Names())
	}
	want := []string{
		"2mm", "3mm", "adi", "atax", "bicg", "cholesky", "correlation", "covariance",
		"deriche", "doitgen", "durbin", "fdtd-2d", "floyd-warshall", "gemm", "gemver",
		"gesummv", "gramschmidt", "heat-3d", "jacobi-1d", "jacobi-2d", "lu", "ludcmp",
		"mvt", "nussinov", "seidel-2d", "symm", "syr2k", "syrk", "trisolv", "trmm",
	}
	names := Names()
	for i, w := range want {
		if names[i] != w {
			t.Fatalf("kernel %d: got %s, want %s (all: %v)", i, names[i], w, names)
		}
	}
}

func TestAllKernelsValidateAndBuild(t *testing.T) {
	for _, k := range Kernels() {
		for _, size := range []Size{Mini, Medium, Large} {
			p := k.Build(size)
			if err := p.Validate(); err != nil {
				t.Errorf("%s/%s: validate: %v", k.Name, size, err)
				continue
			}
			if _, err := scop.BuildPoly(p); err != nil {
				t.Errorf("%s/%s: polyhedral extraction: %v", k.Name, size, err)
			}
		}
	}
}

func TestKernelsProduceTraces(t *testing.T) {
	// Every kernel must produce a non-empty trace at MINI size, and larger
	// sizes must produce strictly longer traces.
	for _, k := range Kernels() {
		var prev int64
		for _, size := range []Size{Mini, Small} {
			p := k.Build(size)
			layout := scop.NewLayout(p, scop.LayoutNatural, 64)
			cp, err := scop.Compile(p, layout)
			if err != nil {
				t.Fatalf("%s/%s: compile: %v", k.Name, size, err)
			}
			n := cp.CountAccesses()
			if n == 0 {
				t.Errorf("%s/%s: empty trace", k.Name, size)
			}
			if size == Small && n <= prev {
				t.Errorf("%s: SMALL trace (%d) not longer than MINI trace (%d)", k.Name, n, prev)
			}
			prev = n
		}
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("gemm"); !ok {
		t.Fatal("gemm not found")
	}
	if _, ok := ByName("does-not-exist"); ok {
		t.Fatal("unexpected kernel")
	}
	if Mini.String() != "MINI" || Large.String() != "LARGE" || ExtraLarge.String() != "EXTRALARGE" {
		t.Fatal("size names wrong")
	}
	if len(Sizes()) != 5 {
		t.Fatal("expected 5 sizes")
	}
}

func TestKernelsSimulateAtMini(t *testing.T) {
	// The simulator and the profiler must agree on every kernel (fully
	// associative LRU, same layout), which exercises every kernel's trace.
	cfg := cachesim.Config{LineSize: 64, Levels: []cachesim.LevelConfig{
		{Name: "L1", SizeBytes: 4 * 1024, Ways: 0, Policy: cachesim.LRU},
	}}
	for _, k := range Kernels() {
		p := k.Build(Mini)
		layout := scop.NewLayout(p, scop.LayoutNatural, 64)
		cp, err := scop.Compile(p, layout)
		if err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		res, err := cachesim.Simulate(cp, cfg)
		if err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		prof := reusedist.ProfileProgram(cp, 64)
		if got, want := res.Levels[0].Misses, prof.MissesForCapacity(4*1024/64); got != want {
			t.Errorf("%s: simulator (%d) and profiler (%d) disagree", k.Name, got, want)
		}
	}
}

// TestModelMatchesSimulationOnSelectedKernels validates the analytical model
// end to end on a representative subset of kernels at MINI size (the full
// sweep is exercised by the experiment harness; keeping the unit test to a
// subset bounds its runtime).
func TestModelMatchesSimulationOnSelectedKernels(t *testing.T) {
	if testing.Short() {
		t.Skip("model validation is expensive")
	}
	cfg := core.Config{LineSize: 64, CacheSizes: []int64{1024, 8 * 1024}}
	opts := core.DefaultOptions()
	for _, name := range []string{"gemm", "atax", "mvt", "trisolv", "jacobi-1d"} {
		k, ok := ByName(name)
		if !ok {
			t.Fatalf("missing kernel %s", name)
		}
		p := k.Build(Mini)
		res, err := core.Analyze(p, cfg, opts)
		if err != nil {
			t.Fatalf("%s: analyze: %v", name, err)
		}
		ref, err := core.SimulateReference(p, cfg)
		if err != nil {
			t.Fatalf("%s: reference: %v", name, err)
		}
		for i := range cfg.CacheSizes {
			if res.Levels[i].TotalMisses != ref.TotalMisses[i] {
				t.Errorf("%s level %d: model %d misses, reference %d (fallback=%v)",
					name, i, res.Levels[i].TotalMisses, ref.TotalMisses[i], res.UsedTraceFallback)
			}
		}
	}
}
