package polybench

import "haystack/internal/scop"

// registerSolvers adds the linear system solvers and factorizations.
func registerSolvers() {
	// cholesky: in-place Cholesky factorization.
	choleskyDims := dims{
		Mini: {40}, Small: {120}, Medium: {400}, Large: {2000}, ExtraLarge: {4000},
	}
	register("cholesky", "solver", func(s Size) *scop.Program {
		n := choleskyDims.at(s)[0]
		p := scop.NewProgram("cholesky")
		A := p.NewArray("A", elem, n, n)
		i, j, k, k2 := v("i"), v("j"), v("k"), v("k2")
		p.Add(
			f(i, c(0), c(n),
				f(j, c(0), x(i),
					f(k, c(0), x(j),
						st("S0", rd(A, x(i), x(k)), rd(A, x(j), x(k)), rd(A, x(i), x(j)), wr(A, x(i), x(j)))),
					st("S1", rd(A, x(i), x(j)), rd(A, x(j), x(j)), wr(A, x(i), x(j)))),
				f(k2, c(0), x(i),
					st("S2", rd(A, x(i), x(k2)), rd(A, x(i), x(i)), wr(A, x(i), x(i)))),
				st("S3", rd(A, x(i), x(i)), wr(A, x(i), x(i)))),
		)
		return p
	})

	// lu: LU decomposition without pivoting.
	luDims := dims{
		Mini: {40}, Small: {120}, Medium: {400}, Large: {2000}, ExtraLarge: {4000},
	}
	register("lu", "solver", func(s Size) *scop.Program {
		n := luDims.at(s)[0]
		p := scop.NewProgram("lu")
		A := p.NewArray("A", elem, n, n)
		i, j, k, j2, k2 := v("i"), v("j"), v("k"), v("j2"), v("k2")
		p.Add(
			f(i, c(0), c(n),
				f(j, c(0), x(i),
					f(k, c(0), x(j),
						st("S0", rd(A, x(i), x(k)), rd(A, x(k), x(j)), rd(A, x(i), x(j)), wr(A, x(i), x(j)))),
					st("S1", rd(A, x(i), x(j)), rd(A, x(j), x(j)), wr(A, x(i), x(j)))),
				f(j2, x(i), c(n),
					f(k2, c(0), x(i),
						st("S2", rd(A, x(i), x(k2)), rd(A, x(k2), x(j2)), rd(A, x(i), x(j2)), wr(A, x(i), x(j2)))))),
		)
		return p
	})

	// ludcmp: LU decomposition plus forward and backward substitution.
	register("ludcmp", "solver", func(s Size) *scop.Program {
		n := luDims.at(s)[0]
		p := scop.NewProgram("ludcmp")
		A := p.NewArray("A", elem, n, n)
		b := p.NewArray("b", elem, n)
		ya := p.NewArray("y", elem, n)
		xa := p.NewArray("x", elem, n)
		i, j, k, j2, k2 := v("i"), v("j"), v("k"), v("j2"), v("k2")
		fi, fj := v("fi"), v("fj")
		bi, bj := v("bi"), v("bj")
		p.Add(
			// Factorization (same access pattern as lu).
			f(i, c(0), c(n),
				f(j, c(0), x(i),
					f(k, c(0), x(j),
						st("S0", rd(A, x(i), x(k)), rd(A, x(k), x(j)), rd(A, x(i), x(j)), wr(A, x(i), x(j)))),
					st("S1", rd(A, x(i), x(j)), rd(A, x(j), x(j)), wr(A, x(i), x(j)))),
				f(j2, x(i), c(n),
					f(k2, c(0), x(i),
						st("S2", rd(A, x(i), x(k2)), rd(A, x(k2), x(j2)), rd(A, x(i), x(j2)), wr(A, x(i), x(j2)))))),
			// Forward substitution: y[fi] = b[fi] - sum_j A[fi][fj]*y[fj].
			f(fi, c(0), c(n),
				st("S3", rd(b, x(fi)), wr(ya, x(fi))),
				f(fj, c(0), x(fi),
					st("S4", rd(A, x(fi), x(fj)), rd(ya, x(fj)), rd(ya, x(fi)), wr(ya, x(fi)))),
				st("S5", rd(ya, x(fi)), rd(A, x(fi), x(fi)), wr(ya, x(fi)))),
			// Backward substitution, expressed with an ascending variable:
			// the original loop runs i = N-1 .. 0, so i = N-1-bi.
			f(bi, c(0), c(n),
				st("S6", rd(ya, c(n-1).Minus(x(bi))), wr(xa, c(n-1).Minus(x(bi)))),
				f(bj, c(n).Minus(x(bi)), c(n),
					st("S7", rd(A, c(n-1).Minus(x(bi)), x(bj)), rd(xa, x(bj)),
						rd(xa, c(n-1).Minus(x(bi))), wr(xa, c(n-1).Minus(x(bi))))),
				st("S8", rd(xa, c(n-1).Minus(x(bi))), rd(A, c(n-1).Minus(x(bi)), c(n-1).Minus(x(bi))), wr(xa, c(n-1).Minus(x(bi))))),
		)
		return p
	})

	// trisolv: forward substitution with a lower triangular matrix.
	register("trisolv", "solver", func(s Size) *scop.Program {
		n := luDims.at(s)[0]
		p := scop.NewProgram("trisolv")
		L := p.NewArray("L", elem, n, n)
		xa := p.NewArray("x", elem, n)
		b := p.NewArray("b", elem, n)
		i, j := v("i"), v("j")
		p.Add(
			f(i, c(0), c(n),
				st("S0", rd(b, x(i)), wr(xa, x(i))),
				f(j, c(0), x(i),
					st("S1", rd(L, x(i), x(j)), rd(xa, x(j)), rd(xa, x(i)), wr(xa, x(i)))),
				st("S2", rd(xa, x(i)), rd(L, x(i), x(i)), wr(xa, x(i)))),
		)
		return p
	})

	// durbin: Toeplitz system solver (Levinson-Durbin recursion).
	durbinDims := dims{
		Mini: {40}, Small: {120}, Medium: {400}, Large: {2000}, ExtraLarge: {4000},
	}
	register("durbin", "solver", func(s Size) *scop.Program {
		n := durbinDims.at(s)[0]
		p := scop.NewProgram("durbin")
		r := p.NewArray("r", elem, n)
		ya := p.NewArray("y", elem, n)
		z := p.NewArray("z", elem, n)
		k, i, i2, i3 := v("k"), v("i"), v("i2"), v("i3")
		p.Add(
			st("Sinit", rd(r, c(0)), wr(ya, c(0))),
			f(k, c(1), c(n),
				// sum += r[k-i-1]*y[i]
				f(i, c(0), x(k),
					st("S0", rd(r, x(k).Minus(x(i)).Minus(c(1))), rd(ya, x(i)))),
				// alpha = -(r[k]+sum)/beta
				st("S1", rd(r, x(k))),
				// z[i] = y[i] + alpha*y[k-i-1]
				f(i2, c(0), x(k),
					st("S2", rd(ya, x(i2)), rd(ya, x(k).Minus(x(i2)).Minus(c(1))), wr(z, x(i2)))),
				// y[i] = z[i]
				f(i3, c(0), x(k),
					st("S3", rd(z, x(i3)), wr(ya, x(i3)))),
				// y[k] = alpha
				st("S4", wr(ya, x(k)))),
		)
		return p
	})

	// gramschmidt: modified Gram-Schmidt QR decomposition.
	gramDims := dims{
		Mini: {20, 30}, Small: {60, 80}, Medium: {200, 240}, Large: {1000, 1200}, ExtraLarge: {2000, 2600},
	}
	register("gramschmidt", "solver", func(s Size) *scop.Program {
		d := gramDims.at(s)
		m, n := d[0], d[1]
		p := scop.NewProgram("gramschmidt")
		A := p.NewArray("A", elem, m, n)
		R := p.NewArray("R", elem, n, n)
		Q := p.NewArray("Q", elem, m, n)
		k, i, i2, j, i3, i4 := v("k"), v("i"), v("i2"), v("j"), v("i3"), v("i4")
		p.Add(
			f(k, c(0), c(n),
				// nrm += A[i][k]*A[i][k]
				f(i, c(0), c(m),
					st("S0", rd(A, x(i), x(k)))),
				// R[k][k] = sqrt(nrm)
				st("S1", wr(R, x(k), x(k))),
				// Q[i][k] = A[i][k]/R[k][k]
				f(i2, c(0), c(m),
					st("S2", rd(A, x(i2), x(k)), rd(R, x(k), x(k)), wr(Q, x(i2), x(k)))),
				f(j, x(k).Plus(c(1)), c(n),
					st("S3", wr(R, x(k), x(j))),
					f(i3, c(0), c(m),
						st("S4", rd(Q, x(i3), x(k)), rd(A, x(i3), x(j)), rd(R, x(k), x(j)), wr(R, x(k), x(j)))),
					f(i4, c(0), c(m),
						st("S5", rd(A, x(i4), x(j)), rd(Q, x(i4), x(k)), rd(R, x(k), x(j)), wr(A, x(i4), x(j)))))),
		)
		return p
	})
}

// registerDataMining adds the data mining kernels.
func registerDataMining() {
	dmDims := dims{
		Mini: {28, 32}, Small: {80, 100}, Medium: {240, 260}, Large: {1200, 1400}, ExtraLarge: {2600, 3000},
	}
	// covariance: M attributes, N observations.
	register("covariance", "datamining", func(s Size) *scop.Program {
		d := dmDims.at(s)
		m, n := d[0], d[1]
		p := scop.NewProgram("covariance")
		data := p.NewArray("data", elem, n, m)
		cov := p.NewArray("cov", elem, m, m)
		mean := p.NewArray("mean", elem, m)
		j, i, i2, j2, i3, j3, k := v("j"), v("i"), v("i2"), v("j2"), v("i3"), v("j3"), v("k")
		p.Add(
			f(j, c(0), c(m),
				st("S0", wr(mean, x(j))),
				f(i, c(0), c(n),
					st("S1", rd(data, x(i), x(j)), rd(mean, x(j)), wr(mean, x(j)))),
				st("S2", rd(mean, x(j)), wr(mean, x(j)))),
			f(i2, c(0), c(n), f(j2, c(0), c(m),
				st("S3", rd(data, x(i2), x(j2)), rd(mean, x(j2)), wr(data, x(i2), x(j2))))),
			f(i3, c(0), c(m), f(j3, x(i3), c(m),
				st("S4", wr(cov, x(i3), x(j3))),
				f(k, c(0), c(n),
					st("S5", rd(data, x(k), x(i3)), rd(data, x(k), x(j3)), rd(cov, x(i3), x(j3)), wr(cov, x(i3), x(j3)))),
				st("S6", rd(cov, x(i3), x(j3)), wr(cov, x(i3), x(j3))),
				st("S7", rd(cov, x(i3), x(j3)), wr(cov, x(j3), x(i3))))),
		)
		return p
	})

	// correlation: covariance plus standard deviation normalization.
	register("correlation", "datamining", func(s Size) *scop.Program {
		d := dmDims.at(s)
		m, n := d[0], d[1]
		p := scop.NewProgram("correlation")
		data := p.NewArray("data", elem, n, m)
		corr := p.NewArray("corr", elem, m, m)
		mean := p.NewArray("mean", elem, m)
		stddev := p.NewArray("stddev", elem, m)
		j, i, j1, i1, i2, j2, i3, i4, j4, k := v("j"), v("i"), v("j1"), v("i1"), v("i2"), v("j2"), v("i3"), v("i4"), v("j4"), v("k")
		p.Add(
			f(j, c(0), c(m),
				st("S0", wr(mean, x(j))),
				f(i, c(0), c(n),
					st("S1", rd(data, x(i), x(j)), rd(mean, x(j)), wr(mean, x(j)))),
				st("S2", rd(mean, x(j)), wr(mean, x(j)))),
			f(j1, c(0), c(m),
				st("S3", wr(stddev, x(j1))),
				f(i1, c(0), c(n),
					st("S4", rd(data, x(i1), x(j1)), rd(mean, x(j1)), rd(stddev, x(j1)), wr(stddev, x(j1)))),
				st("S5", rd(stddev, x(j1)), wr(stddev, x(j1)))),
			f(i2, c(0), c(n), f(j2, c(0), c(m),
				st("S6", rd(data, x(i2), x(j2)), rd(mean, x(j2)), rd(stddev, x(j2)), wr(data, x(i2), x(j2))))),
			f(i3, c(0), c(m),
				st("S7", wr(corr, x(i3), x(i3)))),
			f(i4, c(0), c(m).Minus(c(1)), f(j4, x(i4).Plus(c(1)), c(m),
				st("S8", wr(corr, x(i4), x(j4))),
				f(k, c(0), c(n),
					st("S9", rd(data, x(k), x(i4)), rd(data, x(k), x(j4)), rd(corr, x(i4), x(j4)), wr(corr, x(i4), x(j4)))),
				st("S10", rd(corr, x(i4), x(j4)), wr(corr, x(j4), x(i4))))),
		)
		return p
	})
}
