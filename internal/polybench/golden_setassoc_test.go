package polybench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"haystack/internal/core"
)

const goldenSetAssocPath = "testdata/golden_setassoc_mini.json"

// goldenSetAssocConfig is the realistic set-associative hierarchy the fixture
// pins: the default 32 KiB + 1 MiB levels at 8 and 16 ways (64 and 1024
// sets) — the geometry of a typical desktop L1/L2 pair.
func goldenSetAssocConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.Ways = []int{8, 16}
	return cfg
}

// TestGoldenSetAssocConformance asserts the set-associative reference engine
// against checked-in per-kernel miss counts for all 30 kernels at MINI under
// a realistic 8-way L1 / 16-way L2 geometry. Like the fully associative
// golden tier it costs milliseconds per kernel (trace replay into the LRU
// cache simulator), pinning the set-associative numbers independently of the
// analytical tier: TestSetAssocConformance asserts Analyze against
// SimulateSetAssocReference, this tier asserts SimulateSetAssocReference
// against the fixture.
//
// Set UPDATE_GOLDEN=1 to regenerate the fixture after an intentional change.
func TestGoldenSetAssocConformance(t *testing.T) {
	cfg := goldenSetAssocConfig()
	if os.Getenv("UPDATE_GOLDEN") != "" {
		golden := map[string]goldenEntry{}
		for _, k := range Kernels() {
			ref, err := core.SimulateSetAssocReference(k.Build(Mini), cfg)
			if err != nil {
				t.Fatalf("%s: %v", k.Name, err)
			}
			golden[k.Name] = goldenEntry{
				TotalAccesses:    ref.TotalAccesses,
				CompulsoryMisses: ref.CompulsoryMisses,
				TotalMisses:      ref.TotalMisses,
			}
		}
		data, err := json.MarshalIndent(golden, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenSetAssocPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenSetAssocPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s with %d kernels", goldenSetAssocPath, len(golden))
		return
	}
	data, err := os.ReadFile(goldenSetAssocPath)
	if err != nil {
		t.Fatalf("reading golden fixture (regenerate with UPDATE_GOLDEN=1 go test ./internal/polybench -run TestGoldenSetAssocConformance): %v", err)
	}
	var golden map[string]goldenEntry
	if err := json.Unmarshal(data, &golden); err != nil {
		t.Fatalf("parsing %s: %v", goldenSetAssocPath, err)
	}
	if got, want := len(Kernels()), len(golden); got != want {
		t.Errorf("fixture covers %d kernels, registry has %d (regenerate with UPDATE_GOLDEN=1)", want, got)
	}
	for _, k := range Kernels() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			want, ok := golden[k.Name]
			if !ok {
				t.Fatalf("kernel %s missing from %s (regenerate with UPDATE_GOLDEN=1)", k.Name, goldenSetAssocPath)
			}
			ref, err := core.SimulateSetAssocReference(k.Build(Mini), cfg)
			if err != nil {
				t.Fatalf("SimulateSetAssocReference: %v", err)
			}
			if ref.TotalAccesses != want.TotalAccesses {
				t.Errorf("total accesses: got %d, golden %d", ref.TotalAccesses, want.TotalAccesses)
			}
			if ref.CompulsoryMisses != want.CompulsoryMisses {
				t.Errorf("compulsory misses: got %d, golden %d", ref.CompulsoryMisses, want.CompulsoryMisses)
			}
			if len(ref.TotalMisses) != len(want.TotalMisses) {
				t.Fatalf("level count: got %d, golden %d", len(ref.TotalMisses), len(want.TotalMisses))
			}
			for l, m := range ref.TotalMisses {
				if m != want.TotalMisses[l] {
					t.Errorf("L%d total misses: got %d, golden %d", l+1, m, want.TotalMisses[l])
				}
			}
		})
	}
}
