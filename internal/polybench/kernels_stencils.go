package polybench

import "haystack/internal/scop"

// registerStencils adds the stencil kernels.
func registerStencils() {
	// jacobi-1d: two 3-point sweeps per time step.
	j1Dims := dims{
		Mini: {30, 20}, Small: {120, 40}, Medium: {400, 100}, Large: {2000, 500}, ExtraLarge: {4000, 1000},
	}
	register("jacobi-1d", "stencil", func(s Size) *scop.Program {
		d := j1Dims.at(s)
		n, tsteps := d[0], d[1]
		p := scop.NewProgram("jacobi-1d")
		A := p.NewArray("A", elem, n)
		B := p.NewArray("B", elem, n)
		t, i, j := v("t"), v("i"), v("j")
		p.Add(
			f(t, c(0), c(tsteps),
				f(i, c(1), c(n-1),
					st("S0", rd(A, x(i).Minus(c(1))), rd(A, x(i)), rd(A, x(i).Plus(c(1))), wr(B, x(i)))),
				f(j, c(1), c(n-1),
					st("S1", rd(B, x(j).Minus(c(1))), rd(B, x(j)), rd(B, x(j).Plus(c(1))), wr(A, x(j))))),
		)
		return p
	})

	// jacobi-2d: two 5-point sweeps per time step.
	register("jacobi-2d", "stencil", func(s Size) *scop.Program {
		d := jacobi2dDims.at(s)
		n, tsteps := d[0], d[1]
		p := scop.NewProgram("jacobi-2d")
		A := p.NewArray("A", elem, n, n)
		B := p.NewArray("B", elem, n, n)
		t, i, j, i2, j2 := v("t"), v("i"), v("j"), v("i2"), v("j2")
		p.Add(
			f(t, c(0), c(tsteps),
				f(i, c(1), c(n-1), f(j, c(1), c(n-1),
					st("S0", rd(A, x(i), x(j)), rd(A, x(i), x(j).Minus(c(1))), rd(A, x(i), x(j).Plus(c(1))),
						rd(A, x(i).Plus(c(1)), x(j)), rd(A, x(i).Minus(c(1)), x(j)), wr(B, x(i), x(j))))),
				f(i2, c(1), c(n-1), f(j2, c(1), c(n-1),
					st("S1", rd(B, x(i2), x(j2)), rd(B, x(i2), x(j2).Minus(c(1))), rd(B, x(i2), x(j2).Plus(c(1))),
						rd(B, x(i2).Plus(c(1)), x(j2)), rd(B, x(i2).Minus(c(1)), x(j2)), wr(A, x(i2), x(j2)))))),
		)
		return p
	})

	// seidel-2d: in-place 9-point Gauss-Seidel sweep.
	seidelDims := dims{
		Mini: {40, 20}, Small: {120, 40}, Medium: {400, 100}, Large: {2000, 500}, ExtraLarge: {4000, 1000},
	}
	register("seidel-2d", "stencil", func(s Size) *scop.Program {
		d := seidelDims.at(s)
		n, tsteps := d[0], d[1]
		p := scop.NewProgram("seidel-2d")
		A := p.NewArray("A", elem, n, n)
		t, i, j := v("t"), v("i"), v("j")
		p.Add(
			f(t, c(0), c(tsteps),
				f(i, c(1), c(n-1), f(j, c(1), c(n-1),
					st("S0",
						rd(A, x(i).Minus(c(1)), x(j).Minus(c(1))), rd(A, x(i).Minus(c(1)), x(j)), rd(A, x(i).Minus(c(1)), x(j).Plus(c(1))),
						rd(A, x(i), x(j).Minus(c(1))), rd(A, x(i), x(j)), rd(A, x(i), x(j).Plus(c(1))),
						rd(A, x(i).Plus(c(1)), x(j).Minus(c(1))), rd(A, x(i).Plus(c(1)), x(j)), rd(A, x(i).Plus(c(1)), x(j).Plus(c(1))),
						wr(A, x(i), x(j)))))),
		)
		return p
	})

	// fdtd-2d: 2-D finite different time domain kernel.
	fdtdDims := dims{
		Mini: {20, 30, 20}, Small: {60, 80, 40}, Medium: {200, 240, 100}, Large: {1000, 1200, 500}, ExtraLarge: {2000, 2600, 1000},
	}
	register("fdtd-2d", "stencil", func(s Size) *scop.Program {
		d := fdtdDims.at(s)
		nx, ny, tmax := d[0], d[1], d[2]
		p := scop.NewProgram("fdtd-2d")
		ex := p.NewArray("ex", elem, nx, ny)
		ey := p.NewArray("ey", elem, nx, ny)
		hz := p.NewArray("hz", elem, nx, ny)
		fict := p.NewArray("fict", elem, tmax)
		t, j0, i1, j1, i2, j2, i3, j3 := v("t"), v("j0"), v("i1"), v("j1"), v("i2"), v("j2"), v("i3"), v("j3")
		p.Add(
			f(t, c(0), c(tmax),
				f(j0, c(0), c(ny),
					st("S0", rd(fict, x(t)), wr(ey, c(0), x(j0)))),
				f(i1, c(1), c(nx), f(j1, c(0), c(ny),
					st("S1", rd(ey, x(i1), x(j1)), rd(hz, x(i1), x(j1)), rd(hz, x(i1).Minus(c(1)), x(j1)), wr(ey, x(i1), x(j1))))),
				f(i2, c(0), c(nx), f(j2, c(1), c(ny),
					st("S2", rd(ex, x(i2), x(j2)), rd(hz, x(i2), x(j2)), rd(hz, x(i2), x(j2).Minus(c(1))), wr(ex, x(i2), x(j2))))),
				f(i3, c(0), c(nx-1), f(j3, c(0), c(ny-1),
					st("S3", rd(hz, x(i3), x(j3)), rd(ex, x(i3), x(j3).Plus(c(1))), rd(ex, x(i3), x(j3)),
						rd(ey, x(i3).Plus(c(1)), x(j3)), rd(ey, x(i3), x(j3)), wr(hz, x(i3), x(j3)))))),
		)
		return p
	})

	// heat-3d: 3-D heat equation, two 7-point sweeps per time step.
	heatDims := dims{
		Mini: {10, 20}, Small: {20, 40}, Medium: {40, 100}, Large: {120, 500}, ExtraLarge: {200, 1000},
	}
	register("heat-3d", "stencil", func(s Size) *scop.Program {
		d := heatDims.at(s)
		n, tsteps := d[0], d[1]
		p := scop.NewProgram("heat-3d")
		A := p.NewArray("A", elem, n, n, n)
		B := p.NewArray("B", elem, n, n, n)
		t, i, j, k, i2, j2, k2 := v("t"), v("i"), v("j"), v("k"), v("i2"), v("j2"), v("k2")
		stencil := func(name string, src, dst *scop.Array, a, b2, c2 scop.Var) scop.Node {
			return f(a, c(1), c(n-1), f(b2, c(1), c(n-1), f(c2, c(1), c(n-1),
				st(name,
					rd(src, x(a).Plus(c(1)), x(b2), x(c2)), rd(src, x(a), x(b2), x(c2)), rd(src, x(a).Minus(c(1)), x(b2), x(c2)),
					rd(src, x(a), x(b2).Plus(c(1)), x(c2)), rd(src, x(a), x(b2).Minus(c(1)), x(c2)),
					rd(src, x(a), x(b2), x(c2).Plus(c(1))), rd(src, x(a), x(b2), x(c2).Minus(c(1))),
					wr(dst, x(a), x(b2), x(c2))))))
		}
		p.Add(
			f(t, c(0), c(tsteps),
				stencil("S0", A, B, i, j, k),
				stencil("S1", B, A, i2, j2, k2)),
		)
		return p
	})

	// adi: alternating direction implicit solver. The backward sweeps of the
	// reference implementation are expressed with ascending loop variables.
	adiDims := dims{
		Mini: {20, 20}, Small: {60, 40}, Medium: {200, 100}, Large: {1000, 500}, ExtraLarge: {2000, 1000},
	}
	register("adi", "stencil", func(s Size) *scop.Program {
		d := adiDims.at(s)
		n, tsteps := d[0], d[1]
		p := scop.NewProgram("adi")
		u := p.NewArray("u", elem, n, n)
		vv := p.NewArray("v", elem, n, n)
		pa := p.NewArray("p", elem, n, n)
		q := p.NewArray("q", elem, n, n)
		t, i1, j1, j1b, i2, j2, j2b := v("t"), v("i1"), v("j1"), v("j1b"), v("i2"), v("j2"), v("j2b")
		p.Add(
			f(t, c(1), c(tsteps+1),
				// Column sweep.
				f(i1, c(1), c(n-1),
					st("S0", wr(vv, c(0), x(i1)), wr(pa, x(i1), c(0)), rd(vv, c(0), x(i1)), wr(q, x(i1), c(0))),
					f(j1, c(1), c(n-1),
						st("S1", rd(pa, x(i1), x(j1).Minus(c(1))), wr(pa, x(i1), x(j1)),
							rd(u, x(j1), x(i1).Minus(c(1))), rd(u, x(j1), x(i1)), rd(u, x(j1), x(i1).Plus(c(1))),
							rd(q, x(i1), x(j1).Minus(c(1))), rd(pa, x(i1), x(j1).Minus(c(1))), wr(q, x(i1), x(j1)))),
					st("S2", wr(vv, c(n-1), x(i1))),
					// Backward: original j = n-2 .. 1, so j = n-2-j1b with j1b = 0 .. n-3.
					f(j1b, c(0), c(n-2),
						st("S3", rd(pa, x(i1), c(n-2).Minus(x(j1b))), rd(vv, c(n-1).Minus(x(j1b)), x(i1)),
							rd(q, x(i1), c(n-2).Minus(x(j1b))), wr(vv, c(n-2).Minus(x(j1b)), x(i1))))),
				// Row sweep.
				f(i2, c(1), c(n-1),
					st("S4", wr(u, x(i2), c(0)), wr(pa, x(i2), c(0)), rd(u, x(i2), c(0)), wr(q, x(i2), c(0))),
					f(j2, c(1), c(n-1),
						st("S5", rd(pa, x(i2), x(j2).Minus(c(1))), wr(pa, x(i2), x(j2)),
							rd(vv, x(i2).Minus(c(1)), x(j2)), rd(vv, x(i2), x(j2)), rd(vv, x(i2).Plus(c(1)), x(j2)),
							rd(q, x(i2), x(j2).Minus(c(1))), rd(pa, x(i2), x(j2).Minus(c(1))), wr(q, x(i2), x(j2)))),
					st("S6", wr(u, x(i2), c(n-1))),
					f(j2b, c(0), c(n-2),
						st("S7", rd(pa, x(i2), c(n-2).Minus(x(j2b))), rd(u, x(i2), c(n-1).Minus(x(j2b))),
							rd(q, x(i2), c(n-2).Minus(x(j2b))), wr(u, x(i2), c(n-2).Minus(x(j2b))))))),
		)
		return p
	})
}
