// Package polybench defines the thirty PolyBench/C 4.2.1 kernels used in the
// paper's evaluation as static control programs, together with the standard
// problem sizes (MINI, SMALL, MEDIUM, LARGE, EXTRALARGE).
//
// The kernels follow the reference C implementations: one statement per
// assignment in the loop body, with the array references of each statement
// listed in the order a compiler front end would emit them (right-hand side
// reads first, the written reference last). Scalar variables are assumed to
// live in registers and are not modeled, matching section 2.2 of the paper.
// Loops that iterate downwards in the reference implementation are expressed
// with an ascending loop variable substituted as i -> N-1-i, which preserves
// both the execution order and the access functions.
package polybench

import (
	"fmt"
	"sort"
	"strings"

	"haystack/internal/scop"
)

// Size selects one of the PolyBench problem sizes.
type Size int

const (
	Mini Size = iota
	Small
	Medium
	Large
	ExtraLarge
)

// String returns the PolyBench name of the size.
func (s Size) String() string {
	switch s {
	case Mini:
		return "MINI"
	case Small:
		return "SMALL"
	case Medium:
		return "MEDIUM"
	case Large:
		return "LARGE"
	case ExtraLarge:
		return "EXTRALARGE"
	default:
		return fmt.Sprintf("Size(%d)", int(s))
	}
}

// Sizes lists all problem sizes from small to large.
func Sizes() []Size { return []Size{Mini, Small, Medium, Large, ExtraLarge} }

// ParseSize parses a problem size by its PolyBench name (case insensitive);
// it is the shared flag parser of the command line tools.
func ParseSize(s string) (Size, error) {
	for _, sz := range Sizes() {
		if strings.EqualFold(sz.String(), s) {
			return sz, nil
		}
	}
	return 0, fmt.Errorf("unknown problem size %q", s)
}

// Kernel is one benchmark kernel.
type Kernel struct {
	Name string
	// Category groups kernels like the PolyBench distribution does.
	Category string
	// Build constructs the kernel at the given problem size.
	Build func(Size) *scop.Program
}

var registry []Kernel

func register(name, category string, build func(Size) *scop.Program) {
	registry = append(registry, Kernel{Name: name, Category: category, Build: build})
}

// Kernels returns all kernels sorted by name.
func Kernels() []Kernel {
	out := append([]Kernel(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ByName returns the kernel with the given name.
func ByName(name string) (Kernel, bool) {
	for _, k := range registry {
		if k.Name == name {
			return k, true
		}
	}
	return Kernel{}, false
}

// Names returns the kernel names in alphabetical order.
func Names() []string {
	ks := Kernels()
	out := make([]string, len(ks))
	for i, k := range ks {
		out[i] = k.Name
	}
	return out
}

// dims is a small helper for per-size problem dimensions.
type dims map[Size][]int64

func (d dims) at(s Size) []int64 { return d[s] }

// Convenience aliases to keep kernel definitions readable.
var (
	c  = scop.C
	x  = scop.X
	v  = scop.V
	f  = scop.For
	st = scop.Stmt
	rd = scop.Read
	wr = scop.Write
)

const elem = scop.ElemFloat64

func init() {
	registerLinearAlgebra()
	registerSolvers()
	registerDataMining()
	registerStencils()
	registerMedley()
}

// ---------------------------------------------------------------------------
// Linear algebra: BLAS-like kernels and multi-matrix products.
// ---------------------------------------------------------------------------

// gemmDims, trmmDims, and jacobi2dDims are shared between the concrete
// kernel builders below and the parametric builders in parametric.go, so the
// standard problem sizes cannot drift apart.
var gemmDims = dims{
	Mini: {20, 25, 30}, Small: {60, 70, 80}, Medium: {200, 220, 240},
	Large: {1000, 1100, 1200}, ExtraLarge: {2000, 2300, 2600},
}

var trmmDims = dims{
	Mini: {20, 30}, Small: {60, 80}, Medium: {200, 240}, Large: {1000, 1200}, ExtraLarge: {2000, 2600},
}

var jacobi2dDims = dims{
	Mini: {30, 20}, Small: {90, 40}, Medium: {250, 100}, Large: {1300, 500}, ExtraLarge: {2800, 1000},
}

func registerLinearAlgebra() {
	// gemm: C = alpha*A*B + beta*C.
	register("gemm", "blas", func(s Size) *scop.Program {
		d := gemmDims.at(s)
		ni, nj, nk := d[0], d[1], d[2]
		p := scop.NewProgram("gemm")
		A := p.NewArray("A", elem, ni, nk)
		B := p.NewArray("B", elem, nk, nj)
		C := p.NewArray("C", elem, ni, nj)
		i, j, k := v("i"), v("j"), v("k")
		p.Add(f(i, c(0), c(ni),
			f(j, c(0), c(nj),
				st("S0", rd(C, x(i), x(j)), wr(C, x(i), x(j))),
				f(k, c(0), c(nk),
					st("S1", rd(A, x(i), x(k)), rd(B, x(k), x(j)), rd(C, x(i), x(j)), wr(C, x(i), x(j)))))))
		return p
	})

	// 2mm: tmp = alpha*A*B; D = beta*D + tmp*C.
	mm2Dims := dims{
		Mini: {16, 18, 22, 24}, Small: {40, 50, 70, 80}, Medium: {180, 190, 210, 220},
		Large: {800, 900, 1100, 1200}, ExtraLarge: {1600, 1800, 2200, 2400},
	}
	register("2mm", "blas", func(s Size) *scop.Program {
		d := mm2Dims.at(s)
		ni, nj, nk, nl := d[0], d[1], d[2], d[3]
		p := scop.NewProgram("2mm")
		A := p.NewArray("A", elem, ni, nk)
		B := p.NewArray("B", elem, nk, nj)
		C := p.NewArray("C", elem, nj, nl)
		D := p.NewArray("D", elem, ni, nl)
		tmp := p.NewArray("tmp", elem, ni, nj)
		i, j, k := v("i"), v("j"), v("k")
		i2, j2, k2 := v("i2"), v("j2"), v("k2")
		p.Add(
			f(i, c(0), c(ni), f(j, c(0), c(nj),
				st("S0", wr(tmp, x(i), x(j))),
				f(k, c(0), c(nk),
					st("S1", rd(A, x(i), x(k)), rd(B, x(k), x(j)), rd(tmp, x(i), x(j)), wr(tmp, x(i), x(j)))))),
			f(i2, c(0), c(ni), f(j2, c(0), c(nl),
				st("S2", rd(D, x(i2), x(j2)), wr(D, x(i2), x(j2))),
				f(k2, c(0), c(nj),
					st("S3", rd(tmp, x(i2), x(k2)), rd(C, x(k2), x(j2)), rd(D, x(i2), x(j2)), wr(D, x(i2), x(j2)))))),
		)
		return p
	})

	// 3mm: E=A*B, F=C*D, G=E*F.
	mm3Dims := dims{
		Mini: {16, 18, 20, 22, 24}, Small: {40, 50, 60, 70, 80}, Medium: {180, 190, 200, 210, 220},
		Large: {800, 900, 1000, 1100, 1200}, ExtraLarge: {1600, 1800, 2000, 2200, 2400},
	}
	register("3mm", "blas", func(s Size) *scop.Program {
		d := mm3Dims.at(s)
		ni, nj, nk, nl, nm := d[0], d[1], d[2], d[3], d[4]
		p := scop.NewProgram("3mm")
		A := p.NewArray("A", elem, ni, nk)
		B := p.NewArray("B", elem, nk, nj)
		C := p.NewArray("C", elem, nj, nm)
		D := p.NewArray("D", elem, nm, nl)
		E := p.NewArray("E", elem, ni, nj)
		F := p.NewArray("F", elem, nj, nl)
		G := p.NewArray("G", elem, ni, nl)
		i1, j1, k1 := v("i1"), v("j1"), v("k1")
		i2, j2, k2 := v("i2"), v("j2"), v("k2")
		i3, j3, k3 := v("i3"), v("j3"), v("k3")
		p.Add(
			f(i1, c(0), c(ni), f(j1, c(0), c(nj),
				st("S0", wr(E, x(i1), x(j1))),
				f(k1, c(0), c(nk),
					st("S1", rd(A, x(i1), x(k1)), rd(B, x(k1), x(j1)), rd(E, x(i1), x(j1)), wr(E, x(i1), x(j1)))))),
			f(i2, c(0), c(nj), f(j2, c(0), c(nl),
				st("S2", wr(F, x(i2), x(j2))),
				f(k2, c(0), c(nm),
					st("S3", rd(C, x(i2), x(k2)), rd(D, x(k2), x(j2)), rd(F, x(i2), x(j2)), wr(F, x(i2), x(j2)))))),
			f(i3, c(0), c(ni), f(j3, c(0), c(nl),
				st("S4", wr(G, x(i3), x(j3))),
				f(k3, c(0), c(nj),
					st("S5", rd(E, x(i3), x(k3)), rd(F, x(k3), x(j3)), rd(G, x(i3), x(j3)), wr(G, x(i3), x(j3)))))),
		)
		return p
	})

	// atax: y = A^T (A x).
	ataxDims := dims{
		Mini: {38, 42}, Small: {116, 124}, Medium: {390, 410},
		Large: {1900, 2100}, ExtraLarge: {1800 * 2, 2200},
	}
	register("atax", "blas", func(s Size) *scop.Program {
		d := ataxDims.at(s)
		m, n := d[0], d[1]
		p := scop.NewProgram("atax")
		A := p.NewArray("A", elem, m, n)
		xv := p.NewArray("x", elem, n)
		y := p.NewArray("y", elem, n)
		tmp := p.NewArray("tmp", elem, m)
		i, j := v("i"), v("j")
		i2, j2, j3 := v("i2"), v("j2"), v("j3")
		p.Add(
			f(i, c(0), c(n), st("S0", wr(y, x(i)))),
			f(i2, c(0), c(m),
				st("S1", wr(tmp, x(i2))),
				f(j2, c(0), c(n),
					st("S2", rd(A, x(i2), x(j2)), rd(xv, x(j2)), rd(tmp, x(i2)), wr(tmp, x(i2)))),
				f(j3, c(0), c(n),
					st("S3", rd(A, x(i2), x(j3)), rd(tmp, x(i2)), rd(y, x(j3)), wr(y, x(j3))))),
		)
		_ = j
		return p
	})

	// bicg: s = A^T r ; q = A p.
	bicgDims := dims{
		Mini: {38, 42}, Small: {116, 124}, Medium: {390, 410},
		Large: {1900, 2100}, ExtraLarge: {3600, 4200},
	}
	register("bicg", "blas", func(s Size) *scop.Program {
		d := bicgDims.at(s)
		m, n := d[0], d[1]
		p := scop.NewProgram("bicg")
		A := p.NewArray("A", elem, n, m)
		sArr := p.NewArray("s", elem, m)
		q := p.NewArray("q", elem, n)
		pv := p.NewArray("p", elem, m)
		r := p.NewArray("r", elem, n)
		i0, i, j := v("i0"), v("i"), v("j")
		p.Add(
			f(i0, c(0), c(m), st("S0", wr(sArr, x(i0)))),
			f(i, c(0), c(n),
				st("S1", wr(q, x(i))),
				f(j, c(0), c(m),
					st("S2", rd(r, x(i)), rd(A, x(i), x(j)), rd(sArr, x(j)), wr(sArr, x(j)),
						rd(A, x(i), x(j)), rd(pv, x(j)), rd(q, x(i)), wr(q, x(i))))),
		)
		return p
	})

	// mvt: x1 = x1 + A y1 ; x2 = x2 + A^T y2.
	mvtDims := dims{
		Mini: {40}, Small: {120}, Medium: {400}, Large: {2000}, ExtraLarge: {4000},
	}
	register("mvt", "blas", func(s Size) *scop.Program {
		n := mvtDims.at(s)[0]
		p := scop.NewProgram("mvt")
		A := p.NewArray("A", elem, n, n)
		x1 := p.NewArray("x1", elem, n)
		x2 := p.NewArray("x2", elem, n)
		y1 := p.NewArray("y1", elem, n)
		y2 := p.NewArray("y2", elem, n)
		i, j, i2, j2 := v("i"), v("j"), v("i2"), v("j2")
		p.Add(
			f(i, c(0), c(n), f(j, c(0), c(n),
				st("S0", rd(A, x(i), x(j)), rd(y1, x(j)), rd(x1, x(i)), wr(x1, x(i))))),
			f(i2, c(0), c(n), f(j2, c(0), c(n),
				st("S1", rd(A, x(j2), x(i2)), rd(y2, x(j2)), rd(x2, x(i2)), wr(x2, x(i2))))),
		)
		return p
	})

	// gemver: multiple BLAS-1/2 operations.
	gemverDims := dims{
		Mini: {40}, Small: {120}, Medium: {400}, Large: {2000}, ExtraLarge: {4000},
	}
	register("gemver", "blas", func(s Size) *scop.Program {
		n := gemverDims.at(s)[0]
		p := scop.NewProgram("gemver")
		A := p.NewArray("A", elem, n, n)
		u1 := p.NewArray("u1", elem, n)
		v1 := p.NewArray("v1", elem, n)
		u2 := p.NewArray("u2", elem, n)
		v2 := p.NewArray("v2", elem, n)
		w := p.NewArray("w", elem, n)
		xa := p.NewArray("x", elem, n)
		y := p.NewArray("y", elem, n)
		z := p.NewArray("z", elem, n)
		i, j, i2, j2, i3, i4, j4 := v("i"), v("j"), v("i2"), v("j2"), v("i3"), v("i4"), v("j4")
		p.Add(
			f(i, c(0), c(n), f(j, c(0), c(n),
				st("S0", rd(A, x(i), x(j)), rd(u1, x(i)), rd(v1, x(j)), rd(u2, x(i)), rd(v2, x(j)), wr(A, x(i), x(j))))),
			f(i2, c(0), c(n), f(j2, c(0), c(n),
				st("S1", rd(A, x(j2), x(i2)), rd(y, x(j2)), rd(xa, x(i2)), wr(xa, x(i2))))),
			f(i3, c(0), c(n),
				st("S2", rd(xa, x(i3)), rd(z, x(i3)), wr(xa, x(i3)))),
			f(i4, c(0), c(n), f(j4, c(0), c(n),
				st("S3", rd(A, x(i4), x(j4)), rd(xa, x(j4)), rd(w, x(i4)), wr(w, x(i4))))),
		)
		return p
	})

	// gesummv: y = alpha*A*x + beta*B*x.
	gesummvDims := dims{
		Mini: {30}, Small: {90}, Medium: {250}, Large: {1300}, ExtraLarge: {2800},
	}
	register("gesummv", "blas", func(s Size) *scop.Program {
		n := gesummvDims.at(s)[0]
		p := scop.NewProgram("gesummv")
		A := p.NewArray("A", elem, n, n)
		B := p.NewArray("B", elem, n, n)
		tmp := p.NewArray("tmp", elem, n)
		xa := p.NewArray("x", elem, n)
		y := p.NewArray("y", elem, n)
		i, j := v("i"), v("j")
		p.Add(
			f(i, c(0), c(n),
				st("S0", wr(tmp, x(i)), wr(y, x(i))),
				f(j, c(0), c(n),
					st("S1", rd(A, x(i), x(j)), rd(xa, x(j)), rd(tmp, x(i)), wr(tmp, x(i)),
						rd(B, x(i), x(j)), rd(xa, x(j)), rd(y, x(i)), wr(y, x(i)))),
				st("S2", rd(tmp, x(i)), rd(y, x(i)), wr(y, x(i)))),
		)
		return p
	})

	// symm: symmetric matrix multiply.
	symmDims := dims{
		Mini: {20, 30}, Small: {60, 80}, Medium: {200, 240}, Large: {1000, 1200}, ExtraLarge: {2000, 2600},
	}
	register("symm", "blas", func(s Size) *scop.Program {
		d := symmDims.at(s)
		m, n := d[0], d[1]
		p := scop.NewProgram("symm")
		A := p.NewArray("A", elem, m, m)
		B := p.NewArray("B", elem, m, n)
		C := p.NewArray("C", elem, m, n)
		i, j, k := v("i"), v("j"), v("k")
		p.Add(
			f(i, c(0), c(m), f(j, c(0), c(n),
				f(k, c(0), x(i),
					st("S0", rd(B, x(i), x(j)), rd(A, x(i), x(k)), rd(C, x(k), x(j)), wr(C, x(k), x(j)),
						rd(B, x(k), x(j)), rd(A, x(i), x(k)))),
				st("S1", rd(C, x(i), x(j)), rd(B, x(i), x(j)), rd(A, x(i), x(i)), wr(C, x(i), x(j))))),
		)
		return p
	})

	// syrk: C = alpha*A*A^T + beta*C (lower triangle).
	syrkDims := dims{
		Mini: {20, 30}, Small: {60, 80}, Medium: {200, 240}, Large: {1000, 1200}, ExtraLarge: {2000, 2600},
	}
	register("syrk", "blas", func(s Size) *scop.Program {
		d := syrkDims.at(s)
		m, n := d[0], d[1]
		p := scop.NewProgram("syrk")
		A := p.NewArray("A", elem, n, m)
		C := p.NewArray("C", elem, n, n)
		i, j, k, j2 := v("i"), v("j"), v("k"), v("j2")
		p.Add(
			f(i, c(0), c(n),
				f(j, c(0), x(i).Plus(c(1)),
					st("S0", rd(C, x(i), x(j)), wr(C, x(i), x(j)))),
				f(k, c(0), c(m),
					f(j2, c(0), x(i).Plus(c(1)),
						st("S1", rd(A, x(i), x(k)), rd(A, x(j2), x(k)), rd(C, x(i), x(j2)), wr(C, x(i), x(j2)))))),
		)
		return p
	})

	// syr2k: C = alpha*A*B^T + alpha*B*A^T + beta*C.
	register("syr2k", "blas", func(s Size) *scop.Program {
		d := syrkDims.at(s)
		m, n := d[0], d[1]
		p := scop.NewProgram("syr2k")
		A := p.NewArray("A", elem, n, m)
		B := p.NewArray("B", elem, n, m)
		C := p.NewArray("C", elem, n, n)
		i, j, k, j2 := v("i"), v("j"), v("k"), v("j2")
		p.Add(
			f(i, c(0), c(n),
				f(j, c(0), x(i).Plus(c(1)),
					st("S0", rd(C, x(i), x(j)), wr(C, x(i), x(j)))),
				f(k, c(0), c(m),
					f(j2, c(0), x(i).Plus(c(1)),
						st("S1", rd(A, x(j2), x(k)), rd(B, x(i), x(k)), rd(B, x(j2), x(k)), rd(A, x(i), x(k)),
							rd(C, x(i), x(j2)), wr(C, x(i), x(j2)))))),
		)
		return p
	})

	// trmm: triangular matrix multiply.
	register("trmm", "blas", func(s Size) *scop.Program {
		d := trmmDims.at(s)
		m, n := d[0], d[1]
		p := scop.NewProgram("trmm")
		A := p.NewArray("A", elem, m, m)
		B := p.NewArray("B", elem, m, n)
		i, j, k := v("i"), v("j"), v("k")
		p.Add(
			f(i, c(0), c(m), f(j, c(0), c(n),
				f(k, x(i).Plus(c(1)), c(m),
					st("S0", rd(A, x(k), x(i)), rd(B, x(k), x(j)), rd(B, x(i), x(j)), wr(B, x(i), x(j)))),
				st("S1", rd(B, x(i), x(j)), wr(B, x(i), x(j))))),
		)
		return p
	})

	// doitgen: multi-resolution analysis kernel.
	doitgenDims := dims{
		Mini: {8, 10, 12}, Small: {20, 25, 30}, Medium: {40, 50, 60}, Large: {140, 150, 160}, ExtraLarge: {220, 250, 270},
	}
	register("doitgen", "blas", func(s Size) *scop.Program {
		d := doitgenDims.at(s)
		nq, nr, np := d[0], d[1], d[2]
		p := scop.NewProgram("doitgen")
		A := p.NewArray("A", elem, nr, nq, np)
		C4 := p.NewArray("C4", elem, np, np)
		sum := p.NewArray("sum", elem, np)
		r, q, pp, ss, p2 := v("r"), v("q"), v("p"), v("s"), v("p2")
		p.Add(
			f(r, c(0), c(nr), f(q, c(0), c(nq),
				f(pp, c(0), c(np),
					st("S0", wr(sum, x(pp))),
					f(ss, c(0), c(np),
						st("S1", rd(A, x(r), x(q), x(ss)), rd(C4, x(ss), x(pp)), rd(sum, x(pp)), wr(sum, x(pp))))),
				f(p2, c(0), c(np),
					st("S2", rd(sum, x(p2)), wr(A, x(r), x(q), x(p2)))))),
		)
		return p
	})
}
