package polybench

import "haystack/internal/scop"

// registerMedley adds the dynamic-programming and image-processing kernels.
func registerMedley() {
	// floyd-warshall: all-pairs shortest paths.
	fwDims := dims{
		Mini: {60}, Small: {180}, Medium: {500}, Large: {2800}, ExtraLarge: {5600},
	}
	register("floyd-warshall", "medley", func(s Size) *scop.Program {
		n := fwDims.at(s)[0]
		p := scop.NewProgram("floyd-warshall")
		path := p.NewArray("path", elem, n, n)
		k, i, j := v("k"), v("i"), v("j")
		p.Add(
			f(k, c(0), c(n), f(i, c(0), c(n), f(j, c(0), c(n),
				st("S0", rd(path, x(i), x(j)), rd(path, x(i), x(k)), rd(path, x(k), x(j)), wr(path, x(i), x(j)))))),
		)
		return p
	})

	// nussinov: RNA secondary structure prediction (dynamic programming over
	// an upper triangular table). The reference loop runs i = N-1 .. 0; it is
	// expressed here with i = N-1-ii.
	nussDims := dims{
		Mini: {60}, Small: {180}, Medium: {500}, Large: {2500}, ExtraLarge: {5500},
	}
	register("nussinov", "medley", func(s Size) *scop.Program {
		n := nussDims.at(s)[0]
		p := scop.NewProgram("nussinov")
		table := p.NewArray("table", elem, n, n)
		seq := p.NewArray("seq", elem, n)
		ii, j, k := v("ii"), v("j"), v("k")
		// i = n-1-ii
		i := c(n - 1).Minus(x(ii))
		p.Add(
			f(ii, c(0), c(n), f(j, c(n).Minus(x(ii)), c(n),
				// if j-1 >= 0:     table[i][j] = max(table[i][j], table[i][j-1])
				st("S0", rd(table, i, x(j)), rd(table, i, x(j).Minus(c(1))), wr(table, i, x(j))),
				// if i+1 < N:      table[i][j] = max(table[i][j], table[i+1][j])
				st("S1", rd(table, i, x(j)), rd(table, i.Plus(c(1)), x(j)), wr(table, i, x(j))),
				// pairing with sequence elements.
				st("S2", rd(table, i, x(j)), rd(table, i.Plus(c(1)), x(j).Minus(c(1))), rd(seq, i), rd(seq, x(j)), wr(table, i, x(j))),
				// for k in (i, j): table[i][j] = max(table[i][j], table[i][k]+table[k+1][j])
				f(k, c(n).Minus(x(ii)), x(j),
					st("S3", rd(table, i, x(j)), rd(table, i, x(k)), rd(table, x(k).Plus(c(1)), x(j)), wr(table, i, x(j)))))),
		)
		return p
	})

	// deriche: recursive Gaussian edge detection filter. The backward passes
	// of the reference implementation are expressed with ascending loop
	// variables (j = W-1-jb, i = H-1-ib).
	dericheDims := dims{
		Mini: {64, 64}, Small: {192, 128}, Medium: {720, 480}, Large: {4096, 2160}, ExtraLarge: {7680, 4320},
	}
	register("deriche", "medley", func(s Size) *scop.Program {
		d := dericheDims.at(s)
		w, h := d[0], d[1]
		p := scop.NewProgram("deriche")
		imgIn := p.NewArray("imgIn", elem, w, h)
		imgOut := p.NewArray("imgOut", elem, w, h)
		y1 := p.NewArray("y1", elem, w, h)
		y2 := p.NewArray("y2", elem, w, h)
		i1, j1, i2, j2b, i3, j3, i4b, j4, i5, j5 := v("i1"), v("j1"), v("i2"), v("j2b"), v("i3"), v("j3"), v("i4b"), v("j4"), v("i5"), v("j5")
		p.Add(
			// Horizontal forward pass: y1[i][j] from imgIn[i][j] and y1[i][j-1..2]
			// (the scalar carried state ym1/ym2 is kept in registers, so only
			// the array accesses appear).
			f(i1, c(0), c(w), f(j1, c(0), c(h),
				st("S0", rd(imgIn, x(i1), x(j1)), wr(y1, x(i1), x(j1))))),
			// Horizontal backward pass: j = H-1-j2b.
			f(i2, c(0), c(w), f(j2b, c(0), c(h),
				st("S1", rd(imgIn, x(i2), c(h-1).Minus(x(j2b))), wr(y2, x(i2), c(h-1).Minus(x(j2b)))))),
			// Combine the two passes.
			f(i3, c(0), c(w), f(j3, c(0), c(h),
				st("S2", rd(y1, x(i3), x(j3)), rd(y2, x(i3), x(j3)), wr(imgOut, x(i3), x(j3))))),
			// Vertical forward pass: i = i4 ascending over rows of imgOut.
			f(i4b, c(0), c(w), f(j4, c(0), c(h),
				st("S3", rd(imgOut, x(i4b), x(j4)), wr(y1, x(i4b), x(j4))))),
			// Vertical backward pass and final combination.
			f(i5, c(0), c(w), f(j5, c(0), c(h),
				st("S4", rd(imgOut, c(w-1).Minus(x(i5)), x(j5)), wr(y2, c(w-1).Minus(x(i5)), x(j5)),
					rd(y1, c(w-1).Minus(x(i5)), x(j5)), rd(y2, c(w-1).Minus(x(i5)), x(j5)), wr(imgOut, c(w-1).Minus(x(i5)), x(j5))))),
		)
		return p
	})
}
