package qpoly

import (
	"fmt"
	"strings"

	"haystack/internal/ints"
	"haystack/internal/presburger"
)

// Piece pairs a quasi-polynomial with the sub-domain on which it is valid.
// The polynomial's variables are the dimensions of the domain's space.
type Piece struct {
	Domain presburger.BasicSet
	Poly   QPoly
}

// PwQPoly is a piecewise quasi-polynomial: a list of pieces with pairwise
// disjoint domains. Outside every piece the value is zero.
type PwQPoly struct {
	Space  presburger.Space
	Pieces []Piece
}

// ZeroPw returns the zero piecewise quasi-polynomial on the space.
func ZeroPw(sp presburger.Space) PwQPoly { return PwQPoly{Space: sp} }

// SinglePiece returns the piecewise quasi-polynomial with one piece.
func SinglePiece(domain presburger.BasicSet, p QPoly) PwQPoly {
	return PwQPoly{Space: domain.Space(), Pieces: []Piece{{Domain: domain, Poly: p}}}
}

// NumPieces returns the number of pieces.
func (pw PwQPoly) NumPieces() int { return len(pw.Pieces) }

// Eval evaluates the piecewise quasi-polynomial at a point: the value of the
// piece containing the point, or zero when no piece contains it.
func (pw PwQPoly) Eval(point []int64) ints.Rat {
	for _, p := range pw.Pieces {
		if p.Domain.Contains(point) {
			return p.Poly.Eval(point)
		}
	}
	return ints.Rat{}
}

// EvalInt evaluates the piecewise quasi-polynomial and requires an integer
// result.
func (pw PwQPoly) EvalInt(point []int64) int64 { return pw.Eval(point).Int() }

// AddPiece appends a piece (the caller is responsible for disjointness from
// the existing pieces).
func (pw PwQPoly) AddPiece(domain presburger.BasicSet, p QPoly) PwQPoly {
	out := pw
	out.Pieces = append(append([]Piece(nil), pw.Pieces...), Piece{Domain: domain, Poly: p})
	return out
}

// Add returns the pointwise sum of two piecewise quasi-polynomials over the
// same space. Piece domains are intersected and the non-overlapping parts of
// either operand are kept as is, so the result remains a disjoint piecewise
// cover of the union of both domains.
func (pw PwQPoly) Add(o PwQPoly) PwQPoly {
	if !pw.Space.Equal(o.Space) {
		panic(fmt.Sprintf("qpoly: adding piecewise polynomials over %v and %v", pw.Space, o.Space))
	}
	if len(pw.Pieces) == 0 {
		return o
	}
	if len(o.Pieces) == 0 {
		return pw
	}
	out := ZeroPw(pw.Space)
	// Overlaps.
	for _, a := range pw.Pieces {
		for _, b := range o.Pieces {
			dom := a.Domain.Intersect(b.Domain)
			if dom.DefinitelyEmpty() {
				continue
			}
			out.Pieces = append(out.Pieces, Piece{Domain: dom, Poly: a.Poly.Add(b.Poly)})
		}
	}
	// Parts of a not covered by o, and vice versa.
	out.Pieces = append(out.Pieces, subtractPieces(pw.Pieces, o.Pieces)...)
	out.Pieces = append(out.Pieces, subtractPieces(o.Pieces, pw.Pieces)...)
	return out
}

// subtractPieces returns pieces covering the parts of the domains of `a`
// that no domain of `b` covers, keeping the polynomials of `a`.
func subtractPieces(a, b []Piece) []Piece {
	var out []Piece
	for _, pa := range a {
		rest := presburger.SetFromBasic(pa.Domain)
		for _, pb := range b {
			rest = rest.Subtract(presburger.SetFromBasic(pb.Domain))
			if rest.DefinitelyEmpty() {
				break
			}
		}
		for _, bs := range rest.Basics() {
			if bs.DefinitelyEmpty() {
				continue
			}
			out = append(out, Piece{Domain: bs, Poly: pa.Poly})
		}
	}
	return out
}

// PwSum is a sum of piecewise quasi-polynomials: the value at a point is the
// sum of the member values. Unlike PwQPoly.Add, which keeps pieces pairwise
// disjoint by intersecting and subtracting domains (quadratic subtraction
// work that explodes when many pieces overlap), a sum needs no domain
// algebra at all — summands are just collected, and evaluation stays linear
// in the total piece count. It is the representation of choice for large
// accumulated counts, e.g. the parametric capacity miss counts of the cache
// model. Add and AddSum have value semantics (they copy the term list);
// hot accumulation loops that uniquely own the sum may append to Terms
// directly.
type PwSum struct {
	Space presburger.Space
	Terms []PwQPoly
}

// ZeroSum returns the empty sum on the space.
func ZeroSum(sp presburger.Space) PwSum { return PwSum{Space: sp} }

// Add appends a summand.
func (s PwSum) Add(p PwQPoly) PwSum {
	if !s.Space.Equal(p.Space) {
		panic(fmt.Sprintf("qpoly: summing piecewise polynomials over %v and %v", s.Space, p.Space))
	}
	out := s
	out.Terms = append(append([]PwQPoly(nil), s.Terms...), p)
	return out
}

// AddSum appends all summands of another sum.
func (s PwSum) AddSum(o PwSum) PwSum {
	out := s
	out.Terms = append(append([]PwQPoly(nil), s.Terms...), o.Terms...)
	return out
}

// Eval evaluates the sum at a point.
func (s PwSum) Eval(point []int64) ints.Rat {
	total := ints.Rat{}
	for _, t := range s.Terms {
		total = total.Add(t.Eval(point))
	}
	return total
}

// EvalInt evaluates the sum and requires an integer result.
func (s PwSum) EvalInt(point []int64) int64 { return s.Eval(point).Int() }

// NumPieces returns the total piece count across all summands.
func (s PwSum) NumPieces() int {
	n := 0
	for _, t := range s.Terms {
		n += t.NumPieces()
	}
	return n
}

// String renders the sum as its summands joined by " + ".
func (s PwSum) String() string {
	if len(s.Terms) == 0 {
		return fmt.Sprintf("{ %s -> 0 }", s.Space)
	}
	parts := make([]string, len(s.Terms))
	for i, t := range s.Terms {
		parts[i] = t.String()
	}
	return strings.Join(parts, " + ")
}

// Scale multiplies every piece by a constant.
func (pw PwQPoly) Scale(c ints.Rat) PwQPoly {
	out := PwQPoly{Space: pw.Space}
	for _, p := range pw.Pieces {
		out.Pieces = append(out.Pieces, Piece{Domain: p.Domain, Poly: p.Poly.Scale(c)})
	}
	return out
}

// MaxDegree returns the maximum degree over all pieces.
func (pw PwQPoly) MaxDegree() int {
	deg := 0
	for _, p := range pw.Pieces {
		if d := p.Poly.Degree(); d > deg {
			deg = d
		}
	}
	return deg
}

// String renders the piecewise quasi-polynomial.
func (pw PwQPoly) String() string {
	if len(pw.Pieces) == 0 {
		return fmt.Sprintf("{ %s -> 0 }", pw.Space)
	}
	parts := make([]string, len(pw.Pieces))
	for i, p := range pw.Pieces {
		parts[i] = fmt.Sprintf("[%s on %s]", p.Poly.StringWithNames(pw.Space.Dims), p.Domain)
	}
	return strings.Join(parts, "; ")
}
