package qpoly

import (
	"fmt"
	"strings"

	"haystack/internal/ints"
	"haystack/internal/presburger"
)

// Piece pairs a quasi-polynomial with the sub-domain on which it is valid.
// The polynomial's variables are the dimensions of the domain's space.
type Piece struct {
	Domain presburger.BasicSet
	Poly   QPoly
}

// PwQPoly is a piecewise quasi-polynomial: a list of pieces with pairwise
// disjoint domains. Outside every piece the value is zero.
type PwQPoly struct {
	Space  presburger.Space
	Pieces []Piece
}

// ZeroPw returns the zero piecewise quasi-polynomial on the space.
func ZeroPw(sp presburger.Space) PwQPoly { return PwQPoly{Space: sp} }

// SinglePiece returns the piecewise quasi-polynomial with one piece.
func SinglePiece(domain presburger.BasicSet, p QPoly) PwQPoly {
	return PwQPoly{Space: domain.Space(), Pieces: []Piece{{Domain: domain, Poly: p}}}
}

// NumPieces returns the number of pieces.
func (pw PwQPoly) NumPieces() int { return len(pw.Pieces) }

// Eval evaluates the piecewise quasi-polynomial at a point: the value of the
// piece containing the point, or zero when no piece contains it.
func (pw PwQPoly) Eval(point []int64) ints.Rat {
	for _, p := range pw.Pieces {
		if p.Domain.Contains(point) {
			return p.Poly.Eval(point)
		}
	}
	return ints.Rat{}
}

// EvalInt evaluates the piecewise quasi-polynomial and requires an integer
// result.
func (pw PwQPoly) EvalInt(point []int64) int64 { return pw.Eval(point).Int() }

// AddPiece appends a piece (the caller is responsible for disjointness from
// the existing pieces).
func (pw PwQPoly) AddPiece(domain presburger.BasicSet, p QPoly) PwQPoly {
	out := pw
	out.Pieces = append(append([]Piece(nil), pw.Pieces...), Piece{Domain: domain, Poly: p})
	return out
}

// Add returns the pointwise sum of two piecewise quasi-polynomials over the
// same space. Piece domains are intersected and the non-overlapping parts of
// either operand are kept as is, so the result remains a disjoint piecewise
// cover of the union of both domains.
func (pw PwQPoly) Add(o PwQPoly) PwQPoly {
	if !pw.Space.Equal(o.Space) {
		panic(fmt.Sprintf("qpoly: adding piecewise polynomials over %v and %v", pw.Space, o.Space))
	}
	if len(pw.Pieces) == 0 {
		return o
	}
	if len(o.Pieces) == 0 {
		return pw
	}
	out := ZeroPw(pw.Space)
	sigA := boxSignatures(pw.Pieces)
	sigB := boxSignatures(o.Pieces)
	// Overlaps. Pieces whose constant bounding boxes do not intersect are
	// skipped outright; structurally identical domains (the dominant case
	// when summing cards of maps derived from the same iteration domain)
	// take the fast path: the overlap is the domain itself and the
	// subtractions below are skipped entirely.
	for i, a := range pw.Pieces {
		for j, b := range o.Pieces {
			if sigA[i].disjoint(sigB[j]) {
				continue
			}
			if a.Domain.StructurallyEqual(b.Domain) {
				out.Pieces = append(out.Pieces, Piece{Domain: a.Domain, Poly: a.Poly.Add(b.Poly)})
				continue
			}
			dom := a.Domain.Intersect(b.Domain)
			if dom.DefinitelyEmpty() {
				continue
			}
			out.Pieces = append(out.Pieces, Piece{Domain: dom, Poly: a.Poly.Add(b.Poly)})
		}
	}
	// Parts of a not covered by o, and vice versa.
	out.Pieces = append(out.Pieces, subtractPieces(pw.Pieces, sigA, o.Pieces, sigB)...)
	out.Pieces = append(out.Pieces, subtractPieces(o.Pieces, sigB, pw.Pieces, sigA)...)
	return out.CoalescePieces()
}

// boxSig is the constant bounding box of a piece domain together with its
// residue-class signature, used as a free pairwise separation test in the
// piecewise folds. The box separates pieces living in different regions;
// the residue classes separate interleaved stripes (residue splits of the
// counting engine, cache-set partitions) whose boxes fully overlap.
type boxSig struct {
	lo, hi       []int64
	hasLo, hasHi []bool
	res          []presburger.ResidueClass
}

func boxSignatures(pieces []Piece) []boxSig {
	out := make([]boxSig, len(pieces))
	for i, p := range pieces {
		lo, hi, hasLo, hasHi := p.Domain.ConstBounds()
		out[i] = boxSig{lo, hi, hasLo, hasHi, p.Domain.ResidueClasses()}
	}
	return out
}

func (a boxSig) disjoint(b boxSig) bool {
	n := len(a.lo)
	if len(b.lo) < n {
		n = len(b.lo)
	}
	for d := 0; d < n; d++ {
		if a.hasLo[d] && b.hasHi[d] && a.lo[d] > b.hi[d] {
			return true
		}
		if a.hasHi[d] && b.hasLo[d] && a.hi[d] < b.lo[d] {
			return true
		}
	}
	return presburger.ResiduesSeparate(a.res, b.res)
}

// subtractPieces returns pieces covering the parts of the domains of `a`
// that no domain of `b` covers, keeping the polynomials of `a`.
func subtractPieces(a []Piece, sigA []boxSig, b []Piece, sigB []boxSig) []Piece {
	var out []Piece
	for i, pa := range a {
		rest := presburger.SetFromBasic(pa.Domain)
		for j, pb := range b {
			if sigA[i].disjoint(sigB[j]) {
				continue
			}
			if pa.Domain.StructurallyEqual(pb.Domain) {
				rest = presburger.EmptySet(rest.Space())
				break
			}
			rest = rest.Subtract(presburger.SetFromBasic(pb.Domain))
			if rest.DefinitelyEmpty() {
				break
			}
		}
		for _, bs := range rest.Basics() {
			if bs.DefinitelyEmpty() {
				continue
			}
			out = append(out, Piece{Domain: bs, Poly: pa.Poly})
		}
	}
	return out
}

// MergeDisjointSum folds many piecewise quasi-polynomials into one by
// pointwise addition, exploiting that summands whose piece domains pin some
// dimension to different constants can never overlap: such summands are
// placed in different chambers, chamber results are concatenated without any
// domain algebra, and only the summands within a chamber pay the quadratic
// disjointness fold of Add (run as a balanced tree so intermediates stay
// small). The result is identical, as a function, to folding the summands
// with Add in any order.
func MergeDisjointSum(sp presburger.Space, cards []PwQPoly) PwQPoly {
	if len(cards) == 0 {
		return ZeroPw(sp)
	}
	if len(cards) == 1 {
		return cards[0]
	}
	type sig struct {
		pinned []bool
		vals   []int64
		res    []presburger.ResidueClass
	}
	sigs := make([][]sig, len(cards))
	for i, c := range cards {
		for _, p := range c.Pieces {
			pinned, vals := p.Domain.PinnedDims()
			sigs[i] = append(sigs[i], sig{pinned, vals, p.Domain.ResidueClasses()})
		}
	}
	mayOverlap := func(i, j int) bool {
		for _, sa := range sigs[i] {
			for _, sb := range sigs[j] {
				if !presburger.PinsSeparate(sa.pinned, sa.vals, sb.pinned, sb.vals) &&
					!presburger.ResiduesSeparate(sa.res, sb.res) {
					return true
				}
			}
		}
		return false
	}
	idxGroups := presburger.GroupDisjoint(len(cards), mayOverlap)
	groups := make([][]PwQPoly, len(idxGroups))
	for gi, idxs := range idxGroups {
		for _, i := range idxs {
			groups[gi] = append(groups[gi], cards[i])
		}
	}
	out := ZeroPw(sp)
	for _, group := range groups {
		// Balanced fold: pairwise merge rounds keep both operands of every
		// Add comparably small.
		for len(group) > 1 {
			var next []PwQPoly
			for i := 0; i+1 < len(group); i += 2 {
				next = append(next, group[i].Add(group[i+1]))
			}
			if len(group)%2 == 1 {
				next = append(next, group[len(group)-1])
			}
			group = next
		}
		out.Pieces = append(out.Pieces, group[0].Pieces...)
	}
	return out
}

// CoalescePieces merges pieces that carry the same polynomial by coalescing
// the union of their domains. The slabs piecewise addition produces share
// their polynomial with many siblings, so without this pass piece counts
// grow multiplicatively along a chain of Adds. Pieces with distinct
// polynomials are untouched; coalescing covers exactly the same points, so
// pairwise disjointness of the piece cover is preserved.
func (pw PwQPoly) CoalescePieces() PwQPoly {
	if len(pw.Pieces) <= 1 {
		return pw
	}
	groups := map[string][]int{}
	var order []string
	for i, p := range pw.Pieces {
		k := p.Poly.String()
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], i)
	}
	if len(order) == len(pw.Pieces) {
		return pw
	}
	out := ZeroPw(pw.Space)
	for _, k := range order {
		idxs := groups[k]
		if len(idxs) == 1 {
			out.Pieces = append(out.Pieces, pw.Pieces[idxs[0]])
			continue
		}
		basics := make([]presburger.BasicSet, 0, len(idxs))
		for _, i := range idxs {
			basics = append(basics, pw.Pieces[i].Domain)
		}
		merged := presburger.SetFromBasics(basics...).Coalesce()
		for _, bs := range merged.Basics() {
			if bs.DefinitelyEmpty() {
				continue
			}
			presburger.DebugAssertBasicSet(bs, "qpoly piece coalesce")
			out.Pieces = append(out.Pieces, Piece{Domain: bs, Poly: pw.Pieces[idxs[0]].Poly})
		}
	}
	return out
}

// PwSum is a sum of piecewise quasi-polynomials: the value at a point is the
// sum of the member values. Unlike PwQPoly.Add, which keeps pieces pairwise
// disjoint by intersecting and subtracting domains (quadratic subtraction
// work that explodes when many pieces overlap), a sum needs no domain
// algebra at all — summands are just collected, and evaluation stays linear
// in the total piece count. It is the representation of choice for large
// accumulated counts, e.g. the parametric capacity miss counts of the cache
// model. Add and AddSum have value semantics (they copy the term list);
// hot accumulation loops that uniquely own the sum may append to Terms
// directly.
type PwSum struct {
	Space presburger.Space
	Terms []PwQPoly
}

// ZeroSum returns the empty sum on the space.
func ZeroSum(sp presburger.Space) PwSum { return PwSum{Space: sp} }

// Add appends a summand.
func (s PwSum) Add(p PwQPoly) PwSum {
	if !s.Space.Equal(p.Space) {
		panic(fmt.Sprintf("qpoly: summing piecewise polynomials over %v and %v", s.Space, p.Space))
	}
	out := s
	out.Terms = append(append([]PwQPoly(nil), s.Terms...), p)
	return out
}

// AddSum appends all summands of another sum.
func (s PwSum) AddSum(o PwSum) PwSum {
	out := s
	out.Terms = append(append([]PwQPoly(nil), s.Terms...), o.Terms...)
	return out
}

// Eval evaluates the sum at a point.
func (s PwSum) Eval(point []int64) ints.Rat {
	total := ints.Rat{}
	for _, t := range s.Terms {
		total = total.Add(t.Eval(point))
	}
	return total
}

// EvalInt evaluates the sum and requires an integer result.
func (s PwSum) EvalInt(point []int64) int64 { return s.Eval(point).Int() }

// NumPieces returns the total piece count across all summands.
func (s PwSum) NumPieces() int {
	n := 0
	for _, t := range s.Terms {
		n += t.NumPieces()
	}
	return n
}

// String renders the sum as its summands joined by " + ".
func (s PwSum) String() string {
	if len(s.Terms) == 0 {
		return fmt.Sprintf("{ %s -> 0 }", s.Space)
	}
	parts := make([]string, len(s.Terms))
	for i, t := range s.Terms {
		parts[i] = t.String()
	}
	return strings.Join(parts, " + ")
}

// Scale multiplies every piece by a constant.
func (pw PwQPoly) Scale(c ints.Rat) PwQPoly {
	out := PwQPoly{Space: pw.Space}
	for _, p := range pw.Pieces {
		out.Pieces = append(out.Pieces, Piece{Domain: p.Domain, Poly: p.Poly.Scale(c)})
	}
	return out
}

// MaxDegree returns the maximum degree over all pieces.
func (pw PwQPoly) MaxDegree() int {
	deg := 0
	for _, p := range pw.Pieces {
		if d := p.Poly.Degree(); d > deg {
			deg = d
		}
	}
	return deg
}

// String renders the piecewise quasi-polynomial.
func (pw PwQPoly) String() string {
	if len(pw.Pieces) == 0 {
		return fmt.Sprintf("{ %s -> 0 }", pw.Space)
	}
	parts := make([]string, len(pw.Pieces))
	for i, p := range pw.Pieces {
		parts[i] = fmt.Sprintf("[%s on %s]", p.Poly.StringWithNames(pw.Space.Dims), p.Domain)
	}
	return strings.Join(parts, "; ")
}
