package qpoly

import (
	"math/rand"
	"testing"

	"haystack/internal/ints"
)

// randomQPoly builds a random quasi-polynomial with nVar variables, up to
// two floor atoms (each may reference variables and earlier atoms), and a
// handful of terms with small rational coefficients.
func randomQPoly(rng *rand.Rand, nVar int) QPoly {
	p := Zero(nVar)
	nAtoms := rng.Intn(3)
	for a := 0; a < nAtoms; a++ {
		num := make([]int64, 1+nVar+a)
		for j := range num {
			num[j] = int64(rng.Intn(7) - 3)
		}
		den := int64(rng.Intn(3) + 2)
		p.Atoms = append(p.Atoms, Atom{Num: num, Den: den})
	}
	ncols := p.ncols()
	nTerms := rng.Intn(4) + 1
	for t := 0; t < nTerms; t++ {
		pow := make([]int, ncols)
		for budgetLeft := rng.Intn(4); budgetLeft > 0; budgetLeft-- {
			pow[rng.Intn(ncols)]++
		}
		coef := ints.NewRat(int64(rng.Intn(9)-4), int64(rng.Intn(3)+1))
		p.Terms = append(p.Terms, Term{Coef: coef, Pow: pow})
	}
	return p
}

// TestRangeOnBoxSound checks the certified range against brute-force
// enumeration: every point of the box must evaluate within [min, max].
func TestRangeOnBoxSound(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		nVar := rng.Intn(3) + 1
		p := randomQPoly(rng, nVar)
		lo := make([]int64, nVar)
		hi := make([]int64, nVar)
		for i := range lo {
			lo[i] = int64(rng.Intn(7) - 4)
			hi[i] = lo[i] + int64(rng.Intn(5))
		}
		min, max, ok := p.RangeOnBox(lo, hi)
		if !ok {
			continue // overflow bail-out is allowed, never unsound
		}
		point := make([]int64, nVar)
		var walk func(d int)
		walk = func(d int) {
			if d == nVar {
				v := p.Eval(point)
				if min.Cmp(v) > 0 || v.Cmp(max) > 0 {
					t.Fatalf("trial %d: value %v at %v outside certified range [%v, %v]\npoly: %v",
						trial, v, point, min, max, p)
				}
				return
			}
			for x := lo[d]; x <= hi[d]; x++ {
				point[d] = x
				walk(d + 1)
			}
		}
		walk(0)
	}
}

func TestRangeOnBoxEmptyBox(t *testing.T) {
	p := Var(1, 0)
	if _, _, ok := p.RangeOnBox([]int64{2}, []int64{1}); ok {
		t.Fatal("empty box must not yield a certified range")
	}
}

func TestRangeOnBoxConstant(t *testing.T) {
	p := ConstInt(2, 42)
	min, max, ok := p.RangeOnBox([]int64{0, 0}, []int64{10, 10})
	if !ok || min.Cmp(ints.RatInt(42)) != 0 || max.Cmp(ints.RatInt(42)) != 0 {
		t.Fatalf("constant range = [%v, %v] ok=%v, want [42, 42]", min, max, ok)
	}
}
