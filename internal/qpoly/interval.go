package qpoly

import (
	"haystack/internal/ints"
)

// iv is a closed int64 interval used by the certified range analysis.
type iv struct{ lo, hi int64 }

// addIv returns a+b, failing on overflow (no saturation: a saturated bound
// multiplied later would silently wrap inside Rat arithmetic). Overflow
// checks route through ints.TryAdd/TryMul — the shared non-panicking
// helpers of the degradation paths.
func addIv(a, b iv) (iv, bool) {
	lo, ok1 := ints.TryAdd(a.lo, b.lo)
	hi, ok2 := ints.TryAdd(a.hi, b.hi)
	return iv{lo, hi}, ok1 && ok2
}

// scaleIv returns c*a (interval endpoints swap for negative c).
func scaleIv(c int64, a iv) (iv, bool) {
	l, ok1 := ints.TryMul(c, a.lo)
	h, ok2 := ints.TryMul(c, a.hi)
	if !ok1 || !ok2 {
		return iv{}, false
	}
	if c < 0 {
		l, h = h, l
	}
	return iv{l, h}, true
}

// mulIv returns the product interval: the min/max over the four endpoint
// products encloses x*y for all x in a, y in b.
func mulIv(a, b iv) (iv, bool) {
	cands := [4][2]int64{{a.lo, b.lo}, {a.lo, b.hi}, {a.hi, b.lo}, {a.hi, b.hi}}
	var out iv
	for i, c := range cands {
		p, ok := ints.TryMul(c[0], c[1])
		if !ok {
			return iv{}, false
		}
		if i == 0 || p < out.lo {
			out.lo = p
		}
		if i == 0 || p > out.hi {
			out.hi = p
		}
	}
	return out, true
}

// powIv returns an interval enclosing x^e for x in a. Even powers of an
// interval spanning zero are tightened to a zero lower bound; otherwise
// repeated interval multiplication is sound (possibly wider than the true
// range, never narrower).
func powIv(a iv, e int) (iv, bool) {
	out := iv{1, 1}
	ok := true
	for i := 0; i < e; i++ {
		out, ok = mulIv(out, a)
		if !ok {
			return iv{}, false
		}
	}
	if e%2 == 0 && a.lo < 0 && a.hi > 0 && out.lo < 0 {
		out.lo = 0
	}
	return out, true
}

// RangeOnBox returns certified bounds on the value of p over the integer
// box lo[i] <= x_i <= hi[i] (both slices of length p.NVar): every point of
// the box evaluates within [min, max]. The bounds come from interval
// arithmetic over the terms and floor atoms of the quasi-polynomial — they
// are sound but not necessarily tight. ok is false when the box is empty
// or an intermediate value overflows int64 (no certified range available).
//
// The bounded tier uses this to decide a whole piece without enumerating
// it: if max never exceeds the cache capacity the piece contributes zero
// misses; if min always exceeds it every point of the piece misses.
func (p QPoly) RangeOnBox(lo, hi []int64) (min, max ints.Rat, ok bool) {
	if len(lo) != p.NVar || len(hi) != p.NVar {
		panic("qpoly: RangeOnBox bounds arity mismatch")
	}
	cols := make([]iv, p.ncols())
	for i := 0; i < p.NVar; i++ {
		if lo[i] > hi[i] {
			return ints.Rat{}, ints.Rat{}, false // empty box
		}
		cols[i] = iv{lo[i], hi[i]}
	}
	// Atoms reference only variables and earlier atoms, so a single forward
	// pass resolves every column interval. Floor division by the positive
	// denominator is monotone, so dividing the numerator endpoints is sound.
	for i, a := range p.Atoms {
		if a.Den <= 0 {
			return ints.Rat{}, ints.Rat{}, false
		}
		num := iv{a.Num[0], a.Num[0]}
		valid := true
		for j := 1; j < len(a.Num); j++ {
			c := a.Num[j]
			if c == 0 {
				continue
			}
			// Numerator layout is [const, vars..., atoms...]: entry j>0
			// references column j-1 (variable or earlier atom alike).
			scaled, ok1 := scaleIv(c, cols[j-1])
			if !ok1 {
				valid = false
				break
			}
			num, ok1 = addIv(num, scaled)
			if !ok1 {
				valid = false
				break
			}
		}
		if !valid {
			return ints.Rat{}, ints.Rat{}, false
		}
		cols[p.NVar+i] = iv{ints.FloorDiv(num.lo, a.Den), ints.FloorDiv(num.hi, a.Den)}
	}
	total := struct{ lo, hi ints.Rat }{ints.Rat{}, ints.Rat{}}
	for _, t := range p.Terms {
		prod := iv{1, 1}
		for j, e := range t.Pow {
			if e == 0 {
				continue
			}
			pw, ok1 := powIv(cols[j], e)
			if !ok1 {
				return ints.Rat{}, ints.Rat{}, false
			}
			prod, ok1 = mulIv(prod, pw)
			if !ok1 {
				return ints.Rat{}, ints.Rat{}, false
			}
		}
		tlo := t.Coef.Mul(ints.RatInt(prod.lo))
		thi := t.Coef.Mul(ints.RatInt(prod.hi))
		if t.Coef.Cmp(ints.Rat{}) < 0 {
			tlo, thi = thi, tlo
		}
		total.lo = total.lo.Add(tlo)
		total.hi = total.hi.Add(thi)
	}
	return total.lo, total.hi, true
}
