package qpoly

import (
	"testing"
	"testing/quick"

	"haystack/internal/ints"
)

func TestAffineEval(t *testing.T) {
	// p = 3 + 2*x - y
	p := FromAffine(2, 3, []int64{2, -1})
	if got := p.EvalInt([]int64{4, 5}); got != 6 {
		t.Fatalf("eval = %d, want 6", got)
	}
	if p.Degree() != 1 {
		t.Fatalf("degree = %d", p.Degree())
	}
}

func TestAddMulEvalProperty(t *testing.T) {
	f := func(a0, a1, b0, b1 int8, x, y int8) bool {
		p := FromAffine(2, int64(a0), []int64{int64(a1), 2})
		q := FromAffine(2, int64(b0), []int64{int64(b1), -1})
		pt := []int64{int64(x), int64(y)}
		sum := p.Add(q).Eval(pt)
		if sum.Cmp(p.Eval(pt).Add(q.Eval(pt))) != 0 {
			return false
		}
		prod := p.Mul(q).Eval(pt)
		return prod.Cmp(p.Eval(pt).Mul(q.Eval(pt))) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFloorAtomEval(t *testing.T) {
	// p = x - 8*floor(x/8)  (i.e. x mod 8)
	p := Var(1, 0).AddFloorTerm(ints.RatInt(-8), 0, []int64{1}, 8)
	for x := int64(-10); x <= 20; x++ {
		want := ints.Mod(x, 8)
		if got := p.EvalInt([]int64{x}); got != want {
			t.Fatalf("x=%d: got %d want %d", x, got, want)
		}
	}
	if p.Degree() != 1 {
		t.Fatalf("degree of quasi-affine expr = %d, want 1", p.Degree())
	}
}

func TestNestedFloor(t *testing.T) {
	// q = floor((floor(x/4) + 1) / 2)
	p := Zero(1)
	p, inner := p.WithAtom([]int64{0, 1}, 4)
	innerPoly := p.AtomPoly(inner).Add(ConstInt(1, 1))
	q, ok := FloorOf(innerPoly, 2)
	if !ok {
		t.Fatal("FloorOf failed")
	}
	for x := int64(0); x < 40; x++ {
		want := ints.FloorDiv(ints.FloorDiv(x, 4)+1, 2)
		if got := q.EvalInt([]int64{x}); got != want {
			t.Fatalf("x=%d: got %d want %d", x, got, want)
		}
	}
}

func TestSubstituteVar(t *testing.T) {
	// p = x^2 + y, substitute x := y + 1  ->  y^2 + 3y + 1 at y.
	p := Var(2, 0).Mul(Var(2, 0)).Add(Var(2, 1))
	sub, ok := p.SubstituteVar(0, Var(2, 1).Add(ConstInt(2, 1)))
	if !ok {
		t.Fatal("substitute failed")
	}
	for y := int64(-3); y <= 3; y++ {
		want := (y+1)*(y+1) + y
		if got := sub.EvalInt([]int64{0, y}); got != want {
			t.Fatalf("y=%d: got %d want %d", y, got, want)
		}
	}
}

func TestSubstituteAtom(t *testing.T) {
	// p = 2*floor(x/8) + x ; substitute the atom by (x-3)/8 conceptually as a
	// polynomial 5 (constant) to check mechanics.
	p := Var(1, 0).AddFloorTerm(ints.RatInt(2), 0, []int64{1}, 8)
	got, ok := p.SubstituteAtom(0, ConstInt(1, 5))
	if !ok {
		t.Fatal("substitute atom failed")
	}
	if v := got.EvalInt([]int64{7}); v != 17 {
		t.Fatalf("eval = %d, want 17", v)
	}
}

func TestCoefficientsOfVar(t *testing.T) {
	// p = 3*x^2*y + 2*x + 7  in variable x.
	x, y := Var(2, 0), Var(2, 1)
	p := x.Pow(2).Mul(y).Scale(ints.RatInt(3)).Add(x.Scale(ints.RatInt(2))).Add(ConstInt(2, 7))
	coeffs, ok := p.CoefficientsOfVar(0)
	if !ok {
		t.Fatal("coefficients failed")
	}
	if len(coeffs) != 3 {
		t.Fatalf("len = %d", len(coeffs))
	}
	if got := coeffs[0].EvalInt([]int64{0, 5}); got != 7 {
		t.Fatalf("c0 = %d", got)
	}
	if got := coeffs[1].EvalInt([]int64{0, 5}); got != 2 {
		t.Fatalf("c1 = %d", got)
	}
	if got := coeffs[2].EvalInt([]int64{0, 5}); got != 15 {
		t.Fatalf("c2 = %d", got)
	}
}

func TestFaulhaber(t *testing.T) {
	for k := 0; k <= 5; k++ {
		coeffs := Faulhaber(k)
		evalP := func(n int64) ints.Rat {
			s := ints.Rat{}
			pow := ints.RatInt(1)
			for _, c := range coeffs {
				s = s.Add(c.Mul(pow))
				pow = pow.Mul(ints.RatInt(n))
			}
			return s
		}
		for n := int64(0); n <= 12; n++ {
			var want int64
			for y := int64(1); y <= n; y++ {
				p := int64(1)
				for i := 0; i < k; i++ {
					p *= y
				}
				want += p
			}
			if got := evalP(n); got.Cmp(ints.RatInt(want)) != 0 {
				t.Fatalf("k=%d n=%d: got %v want %d", k, n, got, want)
			}
		}
		// Polynomial telescoping identity at negative arguments.
		for n := int64(-6); n <= 6; n++ {
			diff := evalP(n).Sub(evalP(n - 1))
			var nk int64 = 1
			for i := 0; i < k; i++ {
				nk *= n
			}
			if diff.Cmp(ints.RatInt(nk)) != 0 {
				t.Fatalf("telescoping fails at k=%d n=%d: %v vs %d", k, n, diff, nk)
			}
		}
	}
}

func TestSumOverRange(t *testing.T) {
	// sum over y in [lo,hi] of (y^2 + x) where lo = 0, hi = x.
	nvar := 2 // x = var 0, y = var 1
	p := Var(nvar, 1).Pow(2).Add(Var(nvar, 0))
	lo := ConstInt(nvar, 0)
	hi := Var(nvar, 0)
	s, ok := SumOverRange(p, 1, lo, hi)
	if !ok {
		t.Fatal("sum failed")
	}
	for x := int64(0); x <= 10; x++ {
		var want int64
		for y := int64(0); y <= x; y++ {
			want += y*y + x
		}
		if got := s.EvalInt([]int64{x, 0}); got != want {
			t.Fatalf("x=%d: got %d want %d", x, got, want)
		}
	}
	if s.UsesVar(1) {
		t.Fatal("summed variable still referenced")
	}
}

func TestSumOverRangeWithFloorBounds(t *testing.T) {
	// sum over y in [8*floor(x/8), x] of 1  == x mod 8 + 1.
	nvar := 2
	one := ConstInt(nvar, 1)
	lo := Zero(nvar).AddFloorTerm(ints.RatInt(8), 0, []int64{1, 0}, 8)
	hi := Var(nvar, 0)
	s, ok := SumOverRange(one, 1, lo, hi)
	if !ok {
		t.Fatal("sum failed")
	}
	for x := int64(0); x < 40; x++ {
		want := ints.Mod(x, 8) + 1
		if got := s.EvalInt([]int64{x, 0}); got != want {
			t.Fatalf("x=%d: got %d want %d", x, got, want)
		}
	}
}

func TestMapVars(t *testing.T) {
	// p over (x,y) uses only x; remap to a 1-variable space.
	p := Var(2, 0).Pow(2).Add(ConstInt(2, 3))
	q, ok := p.MapVars(1, []int{0, -1})
	if !ok {
		t.Fatal("MapVars failed")
	}
	if got := q.EvalInt([]int64{5}); got != 28 {
		t.Fatalf("eval = %d", got)
	}
	if _, ok := Var(2, 1).MapVars(1, []int{0, -1}); ok {
		t.Fatal("MapVars should fail when a dropped variable is used")
	}
}

func TestDegreeInVar(t *testing.T) {
	// p = x*floor(y/4) has degree 1 in x and degree 2 in y-ish terms
	// (the atom depends on y so the product counts).
	p := Var(2, 0).Mul(Zero(2).AddFloorTerm(ints.RatInt(1), 0, []int64{0, 1}, 4))
	if p.DegreeInVar(0) != 1 {
		t.Fatalf("deg x = %d", p.DegreeInVar(0))
	}
	if p.DegreeInVar(1) != 1 {
		t.Fatalf("deg y = %d", p.DegreeInVar(1))
	}
	if p.Degree() != 2 {
		t.Fatalf("total degree = %d", p.Degree())
	}
	if !p.UsesVar(1) || !p.UsesVar(0) {
		t.Fatal("UsesVar wrong")
	}
}

func TestIsConstant(t *testing.T) {
	if _, ok := Var(1, 0).IsConstant(); ok {
		t.Fatal("variable reported constant")
	}
	c, ok := ConstInt(3, 42).IsConstant()
	if !ok || c.Int() != 42 {
		t.Fatal("constant not recognized")
	}
	z, ok := Zero(2).IsConstant()
	if !ok || !z.IsZero() {
		t.Fatal("zero not recognized")
	}
}
