// Package qpoly implements quasi-polynomials: polynomials over integer
// variables whose terms may also involve floor expressions of quasi-affine
// arguments. They are the result representation of the symbolic counting
// engine (the role barvinok's quasi-polynomials play for the original
// HayStack) and the representation of the per-access stack distance.
//
// A QPoly is a sum of terms; every term has an exact rational coefficient
// and a power for each variable and each floor atom. Floor atoms are
// floor(affine/den) expressions whose affine argument may reference the
// variables and earlier atoms, which allows nested floors such as
// floor((floor(n/8)+1)/2).
package qpoly

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"haystack/internal/ints"
)

// Atom is a floor expression floor(Num·[1, vars..., atoms...] / Den) with
// Den > 0. The numerator may reference earlier atoms only.
type Atom struct {
	Num []int64 // layout: [const, var_0..var_{n-1}, atom_0..atom_{k-1}]
	Den int64
}

func (a Atom) clone() Atom { return Atom{Num: append([]int64(nil), a.Num...), Den: a.Den} }

func (a Atom) key() string {
	// Trailing zero coefficients are not significant: the same atom may be
	// materialized with different numerator widths depending on how many
	// atoms the owning polynomial had at the time.
	num := a.Num
	for len(num) > 0 && num[len(num)-1] == 0 {
		num = num[:len(num)-1]
	}
	buf := make([]byte, 0, 8*len(num)+8)
	buf = append(buf, '/')
	buf = strconv.AppendInt(buf, a.Den, 10)
	buf = append(buf, ':')
	for _, c := range num {
		buf = strconv.AppendInt(buf, c, 10)
		buf = append(buf, ',')
	}
	return string(buf)
}

// Term is coef * prod(var_i^Pow[i]) * prod(atom_j^Pow[nvar+j]).
type Term struct {
	Coef ints.Rat
	Pow  []int
}

func (t Term) clone() Term { return Term{Coef: t.Coef, Pow: append([]int(nil), t.Pow...)} }

// QPoly is a quasi-polynomial over NVar integer variables.
type QPoly struct {
	NVar  int
	Atoms []Atom
	Terms []Term
}

// Zero returns the zero polynomial over nvar variables.
func Zero(nvar int) QPoly { return QPoly{NVar: nvar} }

// Constant returns the constant polynomial c over nvar variables.
func Constant(nvar int, c ints.Rat) QPoly {
	if c.IsZero() {
		return Zero(nvar)
	}
	return QPoly{NVar: nvar, Terms: []Term{{Coef: c, Pow: make([]int, nvar)}}}
}

// ConstInt returns the constant integer polynomial c over nvar variables.
func ConstInt(nvar int, c int64) QPoly { return Constant(nvar, ints.RatInt(c)) }

// Var returns the polynomial consisting of the single variable v.
func Var(nvar, v int) QPoly {
	t := Term{Coef: ints.RatInt(1), Pow: make([]int, nvar)}
	t.Pow[v] = 1
	return QPoly{NVar: nvar, Terms: []Term{t}}
}

// FromAffine builds the polynomial c0 + sum coeffs[i]*var_i.
func FromAffine(nvar int, c0 int64, coeffs []int64) QPoly {
	p := ConstInt(nvar, c0)
	for i, c := range coeffs {
		if c != 0 {
			p = p.Add(Var(nvar, i).Scale(ints.RatInt(c)))
		}
	}
	return p
}

// Clone returns a deep copy of p.
func (p QPoly) Clone() QPoly {
	out := QPoly{NVar: p.NVar}
	out.Atoms = make([]Atom, len(p.Atoms))
	for i, a := range p.Atoms {
		out.Atoms[i] = a.clone()
	}
	out.Terms = make([]Term, len(p.Terms))
	for i, t := range p.Terms {
		out.Terms[i] = t.clone()
	}
	return out
}

// IsZero reports whether p is the zero polynomial.
func (p QPoly) IsZero() bool { return len(p.Terms) == 0 }

// IsConstant reports whether p has no variable or atom dependence, returning
// the constant value when it does.
func (p QPoly) IsConstant() (ints.Rat, bool) {
	switch len(p.Terms) {
	case 0:
		return ints.Rat{}, true
	case 1:
		for _, e := range p.Terms[0].Pow {
			if e != 0 {
				return ints.Rat{}, false
			}
		}
		return p.Terms[0].Coef, true
	default:
		return ints.Rat{}, false
	}
}

// ncols returns the number of power columns (vars + atoms).
func (p QPoly) ncols() int { return p.NVar + len(p.Atoms) }

// atomIndex adds (or finds) an atom in p and returns its index. The atom's
// numerator must be expressed over p's columns (it is padded if shorter).
func (p *QPoly) atomIndex(a Atom) int {
	want := a.key()
	for i, e := range p.Atoms {
		if e.key() == want {
			return i
		}
	}
	p.Atoms = append(p.Atoms, a.clone())
	// Pad existing terms with a zero power for the new atom.
	for i := range p.Terms {
		p.Terms[i].Pow = append(p.Terms[i].Pow, 0)
	}
	return len(p.Atoms) - 1
}

// mergeAtomsFrom imports the atoms of o into p and returns a mapping from
// o's power columns to p's power columns.
func (p *QPoly) mergeAtomsFrom(o QPoly) []int {
	if p.NVar != o.NVar {
		panic("qpoly: mixing polynomials over different variable counts")
	}
	colMap := make([]int, o.ncols())
	for v := 0; v < o.NVar; v++ {
		colMap[v] = v
	}
	for i, a := range o.Atoms {
		// Remap the atom numerator: it is laid out as [const, vars, o-atoms].
		num := make([]int64, 1+p.ncols())
		for j, c := range a.Num {
			if c == 0 {
				continue
			}
			switch {
			case j == 0:
				num[0] += c
			case j <= o.NVar:
				num[j] += c
			default:
				// references o's atom j-1-o.NVar, already imported.
				col := colMap[j-1]
				num[1+col] += c
			}
		}
		idx := p.atomIndex(Atom{Num: num, Den: a.Den})
		colMap[o.NVar+i] = p.NVar + idx
	}
	return colMap
}

// canonicalizeAtoms rewrites the atom table into a canonical form: atoms
// whose argument is constant (possibly through references to other constant
// atoms) are folded into plain numbers, and atom numerators whose
// non-constant coefficients share a factor with the denominator are reduced
// (floor((8i-16)/64) becomes floor((i-2)/8), by the nested-floor identity
// floor((g*u+c)/(g*d)) == floor((u+floor(c/g))/d)). Identical atoms are
// merged. Without this pass, equal quasi-polynomials built along different
// summation paths keep distinct atom spellings, which defeats the piecewise
// layer's structural merging.
func (p QPoly) canonicalizeAtoms() QPoly {
	if len(p.Atoms) == 0 {
		return p
	}
	out := QPoly{NVar: p.NVar}
	// For each old atom: either a constant value or an index into out.Atoms.
	isConst := make([]bool, len(p.Atoms))
	constVal := make([]int64, len(p.Atoms))
	amap := make([]int, len(p.Atoms))
	changed := false
	for i, a := range p.Atoms {
		// Rewrite the numerator over [const, vars, out.Atoms...]: references
		// to folded atoms move into the constant term.
		num := make([]int64, 1+p.NVar+len(out.Atoms))
		for j := 0; j < len(a.Num) && j <= p.NVar; j++ {
			num[j] = a.Num[j]
		}
		for j := 1 + p.NVar; j < len(a.Num); j++ {
			c := a.Num[j]
			if c == 0 {
				continue
			}
			oi := j - 1 - p.NVar
			if isConst[oi] {
				num[0] += c * constVal[oi]
				changed = true
			} else {
				num[1+p.NVar+amap[oi]] += c
			}
		}
		den := a.Den
		// gcd-reduce the non-constant coefficients against the denominator.
		g := den
		for j := 1; j < len(num); j++ {
			g = ints.GCD(g, num[j])
		}
		if g > 1 {
			for j := 1; j < len(num); j++ {
				num[j] /= g
			}
			num[0] = ints.FloorDiv(num[0], g)
			den /= g
			changed = true
		}
		nonconst := false
		for j := 1; j < len(num); j++ {
			if num[j] != 0 {
				nonconst = true
				break
			}
		}
		if !nonconst {
			isConst[i] = true
			constVal[i] = ints.FloorDiv(num[0], den)
			changed = true
			continue
		}
		// A den of 1 after reduction (floor(e/1) == e) is kept as a literal
		// atom: the table remap below cannot express powers of an affine
		// form, and Eval and the structural key remain exact either way.
		// Dedupe against atoms already emitted.
		cand := Atom{Num: num, Den: den}
		idx := -1
		for k, e := range out.Atoms {
			if e.Den == cand.Den && e.key() == cand.key() {
				idx = k
				break
			}
		}
		if idx < 0 {
			out.Atoms = append(out.Atoms, cand)
			idx = len(out.Atoms) - 1
		} else {
			changed = true
		}
		amap[i] = idx
	}
	if !changed {
		return p
	}
	ncols := out.ncols()
	for _, t := range p.Terms {
		coef := t.Coef
		pow := make([]int, ncols)
		for j, e := range t.Pow {
			if e == 0 {
				continue
			}
			if j < p.NVar {
				pow[j] = e
				continue
			}
			oi := j - p.NVar
			if isConst[oi] {
				for k := 0; k < e; k++ {
					coef = coef.Mul(ints.RatInt(constVal[oi]))
				}
			} else {
				pow[p.NVar+amap[oi]] += e
			}
		}
		out.Terms = append(out.Terms, Term{Coef: coef, Pow: pow})
	}
	return out
}

func (p QPoly) normalize() QPoly {
	p = p.canonicalizeAtoms()
	// Combine terms with identical powers, drop zero terms and unused atoms.
	powKey := func(pow []int) string {
		for len(pow) > 0 && pow[len(pow)-1] == 0 {
			pow = pow[:len(pow)-1]
		}
		buf := make([]byte, 0, 4*len(pow))
		for _, e := range pow {
			buf = strconv.AppendInt(buf, int64(e), 10)
			buf = append(buf, ',')
		}
		return string(buf)
	}
	byPow := map[string]ints.Rat{}
	var order []string
	pows := map[string][]int{}
	for _, t := range p.Terms {
		k := powKey(t.Pow)
		if _, ok := byPow[k]; !ok {
			order = append(order, k)
			pows[k] = append([]int(nil), t.Pow...)
		}
		byPow[k] = byPow[k].Add(t.Coef)
	}
	out := QPoly{NVar: p.NVar, Atoms: append([]Atom(nil), p.Atoms...)}
	for _, k := range order {
		if byPow[k].IsZero() {
			continue
		}
		pw := pows[k]
		for len(pw) < out.ncols() {
			pw = append(pw, 0)
		}
		out.Terms = append(out.Terms, Term{Coef: byPow[k], Pow: pw})
	}
	return out.dropUnusedAtoms()
}

func (p QPoly) dropUnusedAtoms() QPoly {
	used := make([]bool, len(p.Atoms))
	for _, t := range p.Terms {
		for j := p.NVar; j < len(t.Pow); j++ {
			if t.Pow[j] != 0 {
				used[j-p.NVar] = true
			}
		}
	}
	// Atoms referenced by other used atoms stay as well.
	changed := true
	for changed {
		changed = false
		for i, a := range p.Atoms {
			if !used[i] {
				continue
			}
			for j := 1 + p.NVar; j < len(a.Num); j++ {
				if a.Num[j] != 0 && !used[j-1-p.NVar] {
					used[j-1-p.NVar] = true
					changed = true
				}
			}
		}
	}
	all := true
	for _, u := range used {
		if !u {
			all = false
			break
		}
	}
	if all {
		return p
	}
	// Rebuild with the used atoms only.
	newIdx := make([]int, len(p.Atoms))
	out := QPoly{NVar: p.NVar}
	for i, a := range p.Atoms {
		if !used[i] {
			newIdx[i] = -1
			continue
		}
		num := make([]int64, 1+p.NVar+len(out.Atoms))
		copy(num, a.Num[:min(len(a.Num), 1+p.NVar)])
		for j := 1 + p.NVar; j < len(a.Num); j++ {
			if a.Num[j] != 0 {
				num[1+p.NVar+newIdx[j-1-p.NVar]] += a.Num[j]
			}
		}
		out.Atoms = append(out.Atoms, Atom{Num: num, Den: a.Den})
		newIdx[i] = len(out.Atoms) - 1
	}
	for _, t := range p.Terms {
		pw := make([]int, out.ncols())
		copy(pw, t.Pow[:p.NVar])
		for j := p.NVar; j < len(t.Pow); j++ {
			if t.Pow[j] != 0 {
				pw[out.NVar+newIdx[j-p.NVar]] = t.Pow[j]
			}
		}
		out.Terms = append(out.Terms, Term{Coef: t.Coef, Pow: pw})
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Add returns p + o.
func (p QPoly) Add(o QPoly) QPoly {
	out := p.Clone()
	colMap := out.mergeAtomsFrom(o)
	for _, t := range o.Terms {
		pw := make([]int, out.ncols())
		for j, e := range t.Pow {
			if e != 0 {
				pw[colMap[j]] = e
			}
		}
		out.Terms = append(out.Terms, Term{Coef: t.Coef, Pow: pw})
	}
	return out.normalize()
}

// Sub returns p - o.
func (p QPoly) Sub(o QPoly) QPoly { return p.Add(o.Scale(ints.RatInt(-1))) }

// Scale returns c * p.
func (p QPoly) Scale(c ints.Rat) QPoly {
	if c.IsZero() {
		return Zero(p.NVar)
	}
	out := p.Clone()
	for i := range out.Terms {
		out.Terms[i].Coef = out.Terms[i].Coef.Mul(c)
	}
	return out
}

// Mul returns p * o.
func (p QPoly) Mul(o QPoly) QPoly {
	out := Zero(p.NVar)
	out.Atoms = append([]Atom(nil), p.Clone().Atoms...)
	colMapP := make([]int, p.ncols())
	for i := range colMapP {
		colMapP[i] = i
	}
	colMapO := out.mergeAtomsFrom(o)
	for _, tp := range p.Terms {
		for _, to := range o.Terms {
			pw := make([]int, out.ncols())
			for j, e := range tp.Pow {
				pw[colMapP[j]] += e
			}
			for j, e := range to.Pow {
				if e != 0 {
					pw[colMapO[j]] += e
				}
			}
			out.Terms = append(out.Terms, Term{Coef: tp.Coef.Mul(to.Coef), Pow: pw})
		}
	}
	return out.normalize()
}

// Pow returns p raised to the k-th power (k >= 0).
func (p QPoly) Pow(k int) QPoly {
	out := ConstInt(p.NVar, 1)
	for i := 0; i < k; i++ {
		out = out.Mul(p)
	}
	return out
}

// AddFloorTerm returns p + coef*floor(affArg/den) where affArg is an affine
// expression over the variables given as [const, coeffs...].
func (p QPoly) AddFloorTerm(coef ints.Rat, c0 int64, coeffs []int64, den int64) QPoly {
	out := p.Clone()
	num := make([]int64, 1+out.ncols())
	num[0] = c0
	for i, c := range coeffs {
		num[1+i] = c
	}
	idx := out.atomIndex(Atom{Num: num, Den: den})
	pw := make([]int, out.ncols())
	pw[out.NVar+idx] = 1
	out.Terms = append(out.Terms, Term{Coef: coef, Pow: pw})
	return out.normalize()
}

// FloorOf returns the quasi-polynomial floor(p / den) when p has integer
// coefficients and is affine over variables and atoms; ok is false otherwise.
func FloorOf(p QPoly, den int64) (QPoly, bool) {
	if den <= 0 {
		return QPoly{}, false
	}
	if p.Degree() > 1 {
		return QPoly{}, false
	}
	out := Zero(p.NVar)
	out.Atoms = append([]Atom(nil), p.Clone().Atoms...)
	num := make([]int64, 1+out.ncols())
	for _, t := range p.Terms {
		if !t.Coef.IsInt() {
			return QPoly{}, false
		}
		col := -1
		for j, e := range t.Pow {
			if e > 0 {
				col = j
			}
		}
		if col < 0 {
			num[0] += t.Coef.Int()
		} else {
			num[1+col] += t.Coef.Int()
		}
	}
	idx := out.atomIndex(Atom{Num: num, Den: den})
	pw := make([]int, out.ncols())
	pw[out.NVar+idx] = 1
	out.Terms = append(out.Terms, Term{Coef: ints.RatInt(1), Pow: pw})
	return out.normalize(), true
}

// Degree returns the total degree of p, counting every atom as degree one.
func (p QPoly) Degree() int {
	deg := 0
	for _, t := range p.Terms {
		d := 0
		for _, e := range t.Pow {
			d += e
		}
		if d > deg {
			deg = d
		}
	}
	return deg
}

// DegreeInVar returns the degree of p in variable v, counting atoms whose
// argument references v as contributing their power as well.
func (p QPoly) DegreeInVar(v int) int {
	dep := p.atomDependsOnVar(v)
	deg := 0
	for _, t := range p.Terms {
		d := t.Pow[v]
		for j := p.NVar; j < len(t.Pow); j++ {
			if dep[j-p.NVar] {
				d += t.Pow[j]
			}
		}
		if d > deg {
			deg = d
		}
	}
	return deg
}

// atomDependsOnVar reports, per atom, whether its (transitive) argument
// references variable v.
func (p QPoly) atomDependsOnVar(v int) []bool {
	dep := make([]bool, len(p.Atoms))
	for i, a := range p.Atoms {
		if 1+v < len(a.Num) && a.Num[1+v] != 0 {
			dep[i] = true
			continue
		}
		for j := 1 + p.NVar; j < len(a.Num); j++ {
			if a.Num[j] != 0 && dep[j-1-p.NVar] {
				dep[i] = true
				break
			}
		}
	}
	return dep
}

// UsesVar reports whether p references variable v directly or through an
// atom.
func (p QPoly) UsesVar(v int) bool {
	dep := p.atomDependsOnVar(v)
	for _, t := range p.Terms {
		if t.Pow[v] != 0 {
			return true
		}
		for j := p.NVar; j < len(t.Pow); j++ {
			if t.Pow[j] != 0 && dep[j-p.NVar] {
				return true
			}
		}
	}
	return false
}

// Eval evaluates p at the given integer point (one value per variable) and
// returns the exact rational value.
func (p QPoly) Eval(point []int64) ints.Rat {
	if len(point) != p.NVar {
		panic("qpoly: evaluation point arity mismatch")
	}
	atomVals := make([]int64, len(p.Atoms))
	for i, a := range p.Atoms {
		var s int64
		for j, c := range a.Num {
			if c == 0 {
				continue
			}
			switch {
			case j == 0:
				s += c
			case j <= p.NVar:
				s += c * point[j-1]
			default:
				s += c * atomVals[j-1-p.NVar]
			}
		}
		atomVals[i] = ints.FloorDiv(s, a.Den)
	}
	total := ints.Rat{}
	for _, t := range p.Terms {
		v := t.Coef
		for j, e := range t.Pow {
			var base int64
			if j < p.NVar {
				base = point[j]
			} else {
				base = atomVals[j-p.NVar]
			}
			for k := 0; k < e; k++ {
				v = v.Mul(ints.RatInt(base))
			}
		}
		total = total.Add(v)
	}
	return total
}

// EvalInt evaluates p and panics if the result is not an integer (counting
// results always are).
func (p QPoly) EvalInt(point []int64) int64 { return p.Eval(point).Int() }

// SubstituteVar substitutes variable v by the quasi-polynomial expr (over
// the same variable set). Substitution requires that no atom of p depends on
// v (callers split such atoms away first); ok is false otherwise.
func (p QPoly) SubstituteVar(v int, expr QPoly) (QPoly, bool) {
	dep := p.atomDependsOnVar(v)
	for i := range dep {
		if dep[i] {
			return QPoly{}, false
		}
	}
	out := Zero(p.NVar)
	for _, t := range p.Terms {
		factor := ConstInt(p.NVar, 1).Scale(t.Coef)
		for j, e := range t.Pow {
			if e == 0 {
				continue
			}
			var base QPoly
			switch {
			case j == v:
				base = expr
			case j < p.NVar:
				base = Var(p.NVar, j)
			default:
				single := Zero(p.NVar)
				single.Atoms = append([]Atom(nil), p.Atoms...)
				pw := make([]int, single.ncols())
				pw[j] = 1
				single.Terms = []Term{{Coef: ints.RatInt(1), Pow: pw}}
				base = single
			}
			factor = factor.Mul(base.Pow(e))
		}
		out = out.Add(factor)
	}
	return out, true
}

// String renders the polynomial with variables named v0..v{n-1}.
func (p QPoly) String() string { return p.StringWithNames(nil) }

// StringWithNames renders the polynomial using the provided variable names.
func (p QPoly) StringWithNames(names []string) string {
	if len(p.Terms) == 0 {
		return "0"
	}
	varName := func(i int) string {
		if i < len(names) {
			return names[i]
		}
		return fmt.Sprintf("v%d", i)
	}
	var atomStr func(i int) string
	atomStr = func(i int) string {
		a := p.Atoms[i]
		var parts []string
		for j, c := range a.Num {
			if c == 0 {
				continue
			}
			switch {
			case j == 0:
				parts = append(parts, fmt.Sprintf("%d", c))
			case j <= p.NVar:
				parts = append(parts, fmt.Sprintf("%d*%s", c, varName(j-1)))
			default:
				parts = append(parts, fmt.Sprintf("%d*%s", c, atomStr(j-1-p.NVar)))
			}
		}
		if len(parts) == 0 {
			parts = []string{"0"}
		}
		return fmt.Sprintf("floor((%s)/%d)", strings.Join(parts, "+"), a.Den)
	}
	var termStrs []string
	for _, t := range p.Terms {
		var factors []string
		if t.Coef.Cmp(ints.RatInt(1)) != 0 || allZero(t.Pow) {
			factors = append(factors, t.Coef.String())
		}
		for j, e := range t.Pow {
			if e == 0 {
				continue
			}
			var name string
			if j < p.NVar {
				name = varName(j)
			} else {
				name = atomStr(j - p.NVar)
			}
			if e == 1 {
				factors = append(factors, name)
			} else {
				factors = append(factors, fmt.Sprintf("%s^%d", name, e))
			}
		}
		termStrs = append(termStrs, strings.Join(factors, "*"))
	}
	sort.Strings(termStrs)
	return strings.Join(termStrs, " + ")
}

func allZero(p []int) bool {
	for _, e := range p {
		if e != 0 {
			return false
		}
	}
	return true
}
