package qpoly

import (
	"haystack/internal/ints"
	"haystack/internal/presburger"
)

// Bag evaluates the pointwise sum of a collection of summand pieces at many
// points — the inner loop of set-associative miss classification, where the
// pieces are the raw cardinality summands (counting.MapCardSummands) whose
// sum is the within-set stack distance. Sum semantics: every piece whose
// domain contains the point contributes; domains may overlap. Construction
// precomputes a constant bounding box per piece (BasicSet.ConstBounds), so
// the hot path rejects most pieces with a few integer comparisons instead
// of a full div-evaluating membership test.
type Bag struct {
	pieces []bagPiece
}

// bagPiece is one piece with its precomputed dimension box. A point outside
// the box is provably outside the domain; a point inside still needs the
// exact membership test (the box ignores coupling and div constraints).
type bagPiece struct {
	domain presburger.BasicSet
	poly   QPoly
	lo, hi []int64
	hasLo  []bool
	hasHi  []bool
}

// NewBag builds the box-filtered evaluator over the summand pieces.
func NewBag(pieces []Piece) *Bag {
	b := &Bag{pieces: make([]bagPiece, 0, len(pieces))}
	for _, p := range pieces {
		bp := bagPiece{domain: p.Domain, poly: p.Poly}
		bp.lo, bp.hi, bp.hasLo, bp.hasHi = p.Domain.ConstBounds()
		b.pieces = append(b.pieces, bp)
	}
	return b
}

// inBox reports whether the point can lie in the piece's domain.
func (p *bagPiece) inBox(point []int64) bool {
	for d, v := range point {
		if p.hasLo[d] && v < p.lo[d] {
			return false
		}
		if p.hasHi[d] && v > p.hi[d] {
			return false
		}
	}
	return true
}

// EvalSum returns the sum of every containing piece at the point.
func (b *Bag) EvalSum(point []int64) ints.Rat {
	var sum ints.Rat
	for i := range b.pieces {
		p := &b.pieces[i]
		if !p.inBox(point) || !p.domain.Contains(point) {
			continue
		}
		sum = sum.Add(p.poly.Eval(point))
	}
	return sum
}

// SumExceeds reports whether the sum at the point exceeds the limit,
// stopping as soon as the partial sum does. The early exit is sound only
// because every summand is a chamber cardinality — nonnegative at every
// point of its domain — so the partial sums are monotone; callers feeding
// pieces that can go negative must use EvalSum.
func (b *Bag) SumExceeds(point []int64, limit ints.Rat) bool {
	var sum ints.Rat
	for i := range b.pieces {
		p := &b.pieces[i]
		if !p.inBox(point) || !p.domain.Contains(point) {
			continue
		}
		sum = sum.Add(p.poly.Eval(point))
		if sum.Cmp(limit) > 0 {
			return true
		}
	}
	return false
}

// NumPieces returns the number of summand pieces in the bag.
func (b *Bag) NumPieces() int {
	return len(b.pieces)
}
