package qpoly

import (
	"haystack/internal/ints"
)

// WithAtom returns p extended with the floor atom floor(num/den), where num
// is laid out over [const, vars..., existing atoms of p...], together with
// the atom's index. An identical existing atom is reused.
func (p QPoly) WithAtom(num []int64, den int64) (QPoly, int) {
	out := p.Clone()
	padded := make([]int64, 1+out.ncols())
	copy(padded, num)
	idx := out.atomIndex(Atom{Num: padded, Den: den})
	return out, idx
}

// AtomPoly returns the polynomial consisting of the single atom with the
// given index (sharing p's atom table).
func (p QPoly) AtomPoly(idx int) QPoly {
	out := Zero(p.NVar)
	out.Atoms = append([]Atom(nil), p.Clone().Atoms...)
	pw := make([]int, out.ncols())
	pw[out.NVar+idx] = 1
	out.Terms = []Term{{Coef: ints.RatInt(1), Pow: pw}}
	return out
}

// VarPoly returns the polynomial consisting of variable v, sharing p's atom
// table so that atom indices remain stable under later operations.
func (p QPoly) VarPoly(v int) QPoly {
	out := Zero(p.NVar)
	out.Atoms = append([]Atom(nil), p.Clone().Atoms...)
	pw := make([]int, out.ncols())
	pw[v] = 1
	out.Terms = []Term{{Coef: ints.RatInt(1), Pow: pw}}
	return out
}

// CoefficientsOfVar writes p as sum_k coeff_k * v^k where no coeff_k
// references v directly. It requires that no atom of p depends on v (split
// such atoms first); ok is false otherwise. The returned slice is indexed by
// k and has length degree+1.
func (p QPoly) CoefficientsOfVar(v int) (coeffs []QPoly, ok bool) {
	dep := p.atomDependsOnVar(v)
	for _, d := range dep {
		if d {
			return nil, false
		}
	}
	deg := 0
	for _, t := range p.Terms {
		if t.Pow[v] > deg {
			deg = t.Pow[v]
		}
	}
	coeffs = make([]QPoly, deg+1)
	for k := range coeffs {
		coeffs[k] = Zero(p.NVar)
	}
	for _, t := range p.Terms {
		k := t.Pow[v]
		nt := t.clone()
		nt.Pow[v] = 0
		single := QPoly{NVar: p.NVar, Atoms: append([]Atom(nil), p.Atoms...), Terms: []Term{nt}}
		coeffs[k] = coeffs[k].Add(single)
	}
	return coeffs, true
}

// SubstituteAtom replaces atom idx by the polynomial expr (over the same
// variables). Other atoms must not reference atom idx; ok is false
// otherwise.
func (p QPoly) SubstituteAtom(idx int, expr QPoly) (QPoly, bool) {
	for j, a := range p.Atoms {
		if j == idx {
			continue
		}
		if 1+p.NVar+idx < len(a.Num) && a.Num[1+p.NVar+idx] != 0 {
			return QPoly{}, false
		}
	}
	out := Zero(p.NVar)
	for _, t := range p.Terms {
		factor := ConstInt(p.NVar, 1).Scale(t.Coef)
		for j, e := range t.Pow {
			if e == 0 {
				continue
			}
			var base QPoly
			switch {
			case j < p.NVar:
				base = Var(p.NVar, j)
			case j-p.NVar == idx:
				base = expr
			default:
				base = p.AtomPoly(j - p.NVar)
			}
			factor = factor.Mul(base.Pow(e))
		}
		out = out.Add(factor)
	}
	return out, true
}

// SubstitutePlainVar replaces only the explicit occurrences of variable v in
// the terms of p by expr, leaving atom arguments untouched. It is used by
// the counting engine when rewriting a dimension as an arithmetic
// progression: explicit occurrences and occurrences inside floor atoms are
// rewritten in two separate passes.
func (p QPoly) SubstitutePlainVar(v int, expr QPoly) QPoly {
	out := Zero(p.NVar)
	for _, t := range p.Terms {
		factor := ConstInt(p.NVar, 1).Scale(t.Coef)
		for j, e := range t.Pow {
			if e == 0 {
				continue
			}
			var base QPoly
			switch {
			case j == v:
				base = expr
			case j < p.NVar:
				base = Var(p.NVar, j)
			default:
				base = p.AtomPoly(j - p.NVar)
			}
			factor = factor.Mul(base.Pow(e))
		}
		out = out.Add(factor)
	}
	return out
}

// BindVar fixes variable v to a constant value everywhere, including inside
// floor atom arguments. Atoms whose argument becomes constant are folded
// into plain numbers.
func (p QPoly) BindVar(v int, value int64) QPoly {
	// Rewrite atom numerators first.
	rewritten := p.Clone()
	for i := range rewritten.Atoms {
		num := rewritten.Atoms[i].Num
		if 1+v < len(num) && num[1+v] != 0 {
			num[0] += num[1+v] * value
			num[1+v] = 0
		}
	}
	// Fold atoms that are now constant (no var or atom references). Process
	// in order so that references to folded atoms become constants too.
	constVal := make(map[int]int64)
	for i, a := range rewritten.Atoms {
		s := a.Num[0]
		isConst := true
		for j := 1; j < len(a.Num); j++ {
			if a.Num[j] == 0 {
				continue
			}
			if j > rewritten.NVar {
				if cv, ok := constVal[j-1-rewritten.NVar]; ok {
					s += a.Num[j] * cv
					continue
				}
			}
			isConst = false
			break
		}
		if isConst {
			constVal[i] = ints.FloorDiv(s, a.Den)
		}
	}
	out := Zero(p.NVar)
	for _, t := range rewritten.Terms {
		factor := ConstInt(p.NVar, 1).Scale(t.Coef)
		for j, e := range t.Pow {
			if e == 0 {
				continue
			}
			var base QPoly
			switch {
			case j == v:
				base = ConstInt(p.NVar, value)
			case j < p.NVar:
				base = Var(p.NVar, j)
			default:
				if cv, ok := constVal[j-p.NVar]; ok {
					base = ConstInt(p.NVar, cv)
				} else {
					base = rewritten.AtomPoly(j - p.NVar)
				}
			}
			factor = factor.Mul(base.Pow(e))
		}
		out = out.Add(factor)
	}
	return out
}

// BindLeadingVars fixes the first len(vals) variables to constants and
// renumbers the remaining variables down, returning a polynomial over
// NVar-len(vals) variables. It is the single-pass specialization of
// BindVar+MapVars for instantiating a parametric polynomial at a parameter
// point: atom numerators fold the bound variables into their constant term,
// atoms that become constant fold into plain numbers, and term coefficients
// absorb the bound variable powers.
func (p QPoly) BindLeadingVars(vals []int64) QPoly {
	n := len(vals)
	if n == 0 {
		return p
	}
	if n > p.NVar {
		panic("qpoly: binding more variables than the polynomial has")
	}
	newNVar := p.NVar - n
	// Rewrite atoms: fold bound vars into the constant, shift the remaining
	// variable columns down. Atom columns keep their relative positions.
	atoms := make([]Atom, len(p.Atoms))
	constVal := make(map[int]int64)
	for i, a := range p.Atoms {
		num := make([]int64, 0, len(a.Num))
		c0 := int64(0)
		if len(a.Num) > 0 {
			c0 = a.Num[0]
		}
		for v := 0; v < n && 1+v < len(a.Num); v++ {
			c0 += a.Num[1+v] * vals[v]
		}
		num = append(num, c0)
		for j := 1 + n; j < len(a.Num); j++ {
			num = append(num, a.Num[j])
		}
		atoms[i] = Atom{Num: num, Den: a.Den}
		// Constant if no variable and no non-constant atom reference remains.
		isConst := true
		s := c0
		for j := 1; j < len(num); j++ {
			if num[j] == 0 {
				continue
			}
			if j > newNVar {
				if cv, ok := constVal[j-1-newNVar]; ok {
					s += num[j] * cv
					continue
				}
			}
			isConst = false
			break
		}
		if isConst {
			constVal[i] = ints.FloorDiv(s, a.Den)
		}
	}
	out := QPoly{NVar: newNVar, Atoms: atoms}
	ncols := newNVar + len(atoms)
	for _, t := range p.Terms {
		coef := t.Coef
		pow := make([]int, ncols)
		for j, e := range t.Pow {
			if e == 0 {
				continue
			}
			switch {
			case j < n:
				for k := 0; k < e; k++ {
					coef = coef.Mul(ints.RatInt(vals[j]))
				}
			case j < p.NVar:
				pow[j-n] = e
			default:
				idx := j - p.NVar
				if cv, isC := constVal[idx]; isC {
					for k := 0; k < e; k++ {
						coef = coef.Mul(ints.RatInt(cv))
					}
				} else {
					pow[newNVar+idx] = e
				}
			}
		}
		out.Terms = append(out.Terms, Term{Coef: coef, Pow: pow})
	}
	return out.normalize()
}

// AtomsDependingOnVar returns the indices of atoms whose argument
// (transitively) references variable v.
func (p QPoly) AtomsDependingOnVar(v int) []int {
	dep := p.atomDependsOnVar(v)
	var out []int
	for i, d := range dep {
		if d {
			out = append(out, i)
		}
	}
	return out
}

// MapVars reinterprets p over a new variable set: variable i of p becomes
// variable varMap[i] of the result (which has newNVar variables). A mapping
// of -1 asserts that p does not use that variable; ok is false if it does.
func (p QPoly) MapVars(newNVar int, varMap []int) (QPoly, bool) {
	for v, m := range varMap {
		if m == -1 && p.UsesVar(v) {
			return QPoly{}, false
		}
	}
	out := Zero(newNVar)
	// Remap atoms in order.
	atomMap := make([]int, len(p.Atoms))
	for i, a := range p.Atoms {
		num := make([]int64, 1+newNVar+len(out.Atoms))
		for j, c := range a.Num {
			if c == 0 {
				continue
			}
			switch {
			case j == 0:
				num[0] += c
			case j <= p.NVar:
				nv := varMap[j-1]
				if nv == -1 {
					return QPoly{}, false
				}
				num[1+nv] += c
			default:
				num[1+newNVar+atomMap[j-1-p.NVar]] += c
			}
		}
		out.Atoms = append(out.Atoms, Atom{Num: num, Den: a.Den})
		atomMap[i] = len(out.Atoms) - 1
	}
	for _, t := range p.Terms {
		pw := make([]int, newNVar+len(out.Atoms))
		for j, e := range t.Pow {
			if e == 0 {
				continue
			}
			if j < p.NVar {
				nv := varMap[j]
				if nv == -1 {
					return QPoly{}, false
				}
				pw[nv] += e
			} else {
				pw[newNVar+atomMap[j-p.NVar]] += e
			}
		}
		out.Terms = append(out.Terms, Term{Coef: t.Coef, Pow: pw})
	}
	return out.normalize(), true
}

// Faulhaber returns the coefficients (index = power of n) of the polynomial
// P_k(n) = sum_{y=1}^{n} y^k, which has degree k+1. The polynomial identity
// P_k(n) - P_k(n-1) = n^k holds for all integers n, so the telescoping sum
// sum_{y=lo}^{hi} y^k = P_k(hi) - P_k(lo-1) is valid for negative bounds as
// well.
func Faulhaber(k int) []ints.Rat {
	// (k+1) P_k(n) = (n+1)^{k+1} - 1 - sum_{j=0}^{k-1} C(k+1, j) P_j(n)
	coeffs := make([][]ints.Rat, k+1)
	for kk := 0; kk <= k; kk++ {
		c := make([]ints.Rat, kk+2)
		// (n+1)^{kk+1} expanded.
		for j := 0; j <= kk+1; j++ {
			c[j] = ints.RatInt(binomial(kk+1, j))
		}
		c[0] = c[0].Sub(ints.RatInt(1))
		for j := 0; j < kk; j++ {
			b := ints.RatInt(binomial(kk+1, j))
			for d, pc := range coeffs[j] {
				c[d] = c[d].Sub(b.Mul(pc))
			}
		}
		inv := ints.NewRat(1, int64(kk+1))
		for d := range c {
			c[d] = c[d].Mul(inv)
		}
		coeffs[kk] = c
	}
	return coeffs[k]
}

func binomial(n, k int) int64 {
	if k < 0 || k > n {
		return 0
	}
	var r int64 = 1
	for i := 0; i < k; i++ {
		r = r * int64(n-i) / int64(i+1)
	}
	return r
}

// SumOverRange computes sum_{y=lo}^{hi} p(y) symbolically, where p is a
// polynomial in variable v (whose atoms must not depend on v) and lo, hi are
// quasi-polynomials over the same variables not referencing v. The result
// does not reference v. The caller must separately restrict the domain to
// lo <= hi; on the lo > hi part of the domain the returned expression is not
// meaningful.
func SumOverRange(p QPoly, v int, lo, hi QPoly) (QPoly, bool) {
	coeffs, ok := p.CoefficientsOfVar(v)
	if !ok {
		return QPoly{}, false
	}
	if lo.UsesVar(v) || hi.UsesVar(v) {
		return QPoly{}, false
	}
	total := Zero(p.NVar)
	loMinus1 := lo.Sub(ConstInt(p.NVar, 1))
	for k, ck := range coeffs {
		if ck.IsZero() {
			continue
		}
		f := Faulhaber(k)
		evalAt := func(arg QPoly) QPoly {
			s := Zero(p.NVar)
			for d, c := range f {
				if c.IsZero() {
					continue
				}
				s = s.Add(arg.Pow(d).Scale(c))
			}
			return s
		}
		total = total.Add(ck.Mul(evalAt(hi).Sub(evalAt(loMinus1))))
	}
	return total, true
}
