package counting

import (
	"errors"
	"testing"

	"haystack/internal/presburger"
)

// hugeCrossSet builds {x - m*y >= 0, 5x + y >= 10, x <= m+100, 0 <= y <= 4}
// with m = 2^61. Its true cardinality is m+200: one point (x,0) for each
// x in [2, m-1] and two points (x,0),(x,1) for each x in [m, m+100].
// Eliminating y by Fourier–Motzkin multiplies coefficients by m, which wraps
// int64; before the overflow-checked projection this produced contradictory
// scan bounds, a silent zero-point enumeration, and an unsound Exact(0)
// certificate from the interval tier.
func hugeCrossSet() presburger.BasicSet {
	const m = int64(1) << 61
	bs := presburger.UniverseBasicSet(presburger.NewSpace("S", "x", "y"))
	bs = bs.AddConstraint(ineq(bs.NCols(), 0, 1, -m))     // x - m*y >= 0
	bs = bs.AddConstraint(ineq(bs.NCols(), -10, 5, 1))    // 5x + y - 10 >= 0
	bs = bs.AddConstraint(ineq(bs.NCols(), m+100, -1, 0)) // x <= m + 100
	bs = bs.AddConstraint(ineq(bs.NCols(), 0, 0, 1))      // y >= 0
	bs = bs.AddConstraint(ineq(bs.NCols(), 4, 0, -1))     // y <= 4
	return bs
}

// TestHugeCoefficientCountNeverCertifiesWrong is the regression test for the
// elimination-overflow accounting bug: with coefficients near 2^61 every
// counting tier must either report the exact count, degrade to a typed
// error, or return a valid enclosing interval — never certify a wrong count.
func TestHugeCoefficientCountNeverCertifiesWrong(t *testing.T) {
	const m = int64(1) << 61
	const trueCount = m + 200
	bs := hugeCrossSet()

	n, err := CountBasicSet(bs)
	if err == nil {
		if n != trueCount {
			t.Errorf("CountBasicSet = %d, want %d or a typed error", n, trueCount)
		}
	} else if !errors.Is(err, ErrUnsupported) && !errors.Is(err, ErrUnbounded) {
		t.Errorf("CountBasicSet error is not typed: %v", err)
	}

	iv, err := CountBasicSetInterval(bs, nil, DefaultMaxEnum)
	if err == nil {
		if iv.Lo > trueCount || iv.Hi < trueCount {
			t.Errorf("interval [%d, %d] does not contain the true count %d",
				iv.Lo, iv.Hi, trueCount)
		}
		if iv.IsExact() && iv.Lo != trueCount {
			t.Errorf("interval certifies Exact(%d), true count is %d", iv.Lo, trueCount)
		}
	} else if !errors.Is(err, ErrUnsupported) && !errors.Is(err, ErrUnbounded) {
		t.Errorf("CountBasicSetInterval error is not typed: %v", err)
	}
}

// TestHugeCoefficientScanFindsPoints asserts the scanner enumerates real
// points of the huge-coefficient set (it used to return nil after zero
// points) and that every reported point actually satisfies the constraints.
func TestHugeCoefficientScanFindsPoints(t *testing.T) {
	bs := hugeCrossSet()
	stop := errors.New("stop")
	var got [][]int64
	err := bs.Scan(func(p []int64) error {
		got = append(got, append([]int64(nil), p...))
		if len(got) >= 5 {
			return stop
		}
		return nil
	})
	if err != nil && !errors.Is(err, stop) {
		if !errors.Is(err, presburger.ErrUnbounded) {
			t.Fatalf("scan failed with untyped error: %v", err)
		}
		t.Skipf("scan degraded to typed ErrUnbounded: %v", err)
	}
	if len(got) == 0 {
		t.Fatal("scan completed with zero points on a non-empty set")
	}
	for _, p := range got {
		if !bs.Contains(p) {
			t.Errorf("scan reported %v, but Contains rejects it", p)
		}
	}
}

// TestHugeCoefficientContains exercises the arbitrary-precision fallback of
// point validation: evaluating 5x with x ≈ 2^61 overflows int64, so a wrapped
// verdict would mis-classify both points.
func TestHugeCoefficientContains(t *testing.T) {
	const m = int64(1) << 61
	bs := hugeCrossSet()
	if !bs.Contains([]int64{m + 100, 1}) {
		t.Error("Contains rejects (m+100, 1), which satisfies every constraint")
	}
	if bs.Contains([]int64{m + 100, 2}) {
		t.Error("Contains accepts (m+100, 2), which violates x - m*y >= 0")
	}
}
