package counting

import (
	"fmt"
	"math/rand"
	"testing"

	"haystack/internal/presburger"
)

// randomParamSet builds a random basic set whose first nParam dimensions are
// symbolic parameters and whose remaining counted dimensions form boxes or
// wedges with parameter-dependent bounds: every counted dimension d gets
// 0 <= d and d < a*P + b (a box against a scaled parameter), and wedge
// variants additionally relate counted dimensions to each other
// (d_i <= d_{i-1}) or to a parameter offset. Parameters are constrained to
// be at least one, mirroring the context set of a parametric program.
func randomParamSet(rng *rand.Rand, nParam, nCount int) presburger.BasicSet {
	dims := make([]string, 0, nParam+nCount)
	for i := 0; i < nParam; i++ {
		dims = append(dims, fmt.Sprintf("P%d", i))
	}
	for i := 0; i < nCount; i++ {
		dims = append(dims, fmt.Sprintf("i%d", i))
	}
	sp := presburger.NewParamSpace("R", nParam, dims...)
	bs := presburger.UniverseBasicSet(sp)
	w := bs.NCols()
	// P_j >= 1.
	for j := 0; j < nParam; j++ {
		c := presburger.Constraint{C: presburger.NewVec(w)}
		c.C[1+j] = 1
		c.C[0] = -1
		bs = bs.AddConstraint(c)
	}
	for d := 0; d < nCount; d++ {
		col := 1 + nParam + d
		// Lower bound: i_d >= lo with a small constant lo.
		lo := presburger.Constraint{C: presburger.NewVec(w)}
		lo.C[col] = 1
		lo.C[0] = -rng.Int63n(3)
		bs = bs.AddConstraint(lo)
		// Upper bound: i_d < a*P_j + b (exclusive), i.e. a*P_j + b - 1 - i_d >= 0.
		hi := presburger.Constraint{C: presburger.NewVec(w)}
		hi.C[col] = -1
		pj := rng.Intn(nParam)
		hi.C[1+pj] = 1 + rng.Int63n(2) // coefficient 1 or 2
		hi.C[0] = rng.Int63n(4) - 1
		bs = bs.AddConstraint(hi)
		// Wedge: relate to the previous counted dimension half the time.
		if d > 0 && rng.Intn(2) == 0 {
			wc := presburger.Constraint{C: presburger.NewVec(w)}
			wc.C[1+nParam+d-1] = 1
			wc.C[col] = -1
			bs = bs.AddConstraint(wc) // i_d <= i_{d-1}
		}
	}
	return bs
}

// TestCardBasicSetParametricRandom cross-checks parametric counting against
// brute-force enumeration: for random boxes and wedges with one or two
// parameter dimensions, the piecewise quasi-polynomial returned by
// CardBasicSet, evaluated at sampled parameter values, must equal the point
// count of the set with the parameters fixed to those values.
func TestCardBasicSetParametricRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	cases := 60
	if testing.Short() {
		cases = 25
	}
	for ci := 0; ci < cases; ci++ {
		nParam := 1 + rng.Intn(2)
		nCount := 1 + rng.Intn(3)
		bs := randomParamSet(rng, nParam, nCount)
		paramDims := make([]string, nParam)
		for i := range paramDims {
			paramDims[i] = fmt.Sprintf("P%d", i)
		}
		paramSpace := presburger.NewParamSpace("Params", nParam, paramDims...)
		card, err := CardBasicSet(bs, nParam, paramSpace)
		if err != nil {
			t.Fatalf("case %d (%v): CardBasicSet: %v", ci, bs, err)
		}
		for trial := 0; trial < 6; trial++ {
			point := make([]int64, nParam)
			for i := range point {
				point[i] = 1 + rng.Int63n(9)
			}
			fixed := bs
			for i, v := range point {
				fixed = fixed.FixDim(i, v)
			}
			want, err := fixed.CountByScan()
			if err != nil {
				t.Fatalf("case %d: CountByScan at %v: %v", ci, point, err)
			}
			// The brute-force count includes the parameter dimensions as
			// single-valued columns, so it equals the count of the remaining
			// dimensions directly.
			got := card.EvalInt(point)
			if got != want {
				t.Errorf("case %d at %v: parametric count %d, brute force %d\nset: %v\ncard: %v",
					ci, point, got, want, bs, card)
			}
		}
	}
}

// TestCardSetParametricUnion checks union semantics of the parametric set
// counter: two overlapping parametric boxes must count every point once for
// every sampled parameter value.
func TestCardSetParametricUnion(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for ci := 0; ci < 20; ci++ {
		nParam := 1 + rng.Intn(2)
		nCount := 1 + rng.Intn(2)
		a := randomParamSet(rng, nParam, nCount)
		b := randomParamSet(rng, nParam, nCount)
		s := presburger.SetFromBasic(a).Union(presburger.SetFromBasic(b))
		paramDims := make([]string, nParam)
		for i := range paramDims {
			paramDims[i] = fmt.Sprintf("P%d", i)
		}
		paramSpace := presburger.NewParamSpace("Params", nParam, paramDims...)
		card, err := CardSet(s, nParam, paramSpace)
		if err != nil {
			t.Fatalf("case %d: CardSet: %v", ci, err)
		}
		for trial := 0; trial < 4; trial++ {
			point := make([]int64, nParam)
			for i := range point {
				point[i] = 1 + rng.Int63n(7)
			}
			fa := a
			fb := b
			for i, v := range point {
				fa = fa.FixDim(i, v)
				fb = fb.FixDim(i, v)
			}
			want, err := presburger.SetFromBasic(fa).Union(presburger.SetFromBasic(fb)).CountByScan()
			if err != nil {
				t.Fatalf("case %d: CountByScan: %v", ci, err)
			}
			if got := card.EvalInt(point); got != want {
				t.Errorf("case %d at %v: parametric union count %d, brute force %d", ci, point, got, want)
			}
		}
	}
}
