package counting

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"haystack/internal/budget"
	"haystack/internal/presburger"
)

func TestIntervalBasics(t *testing.T) {
	iv := Exact(7)
	if !iv.IsExact() || iv.Width() != 0 || !iv.Contains(7) || iv.Contains(8) {
		t.Fatalf("Exact(7) misbehaves: %+v", iv)
	}
	sum := Interval{Lo: 1, Hi: 5}.Add(Interval{Lo: 2, Hi: 3})
	if sum != (Interval{Lo: 3, Hi: 8}) {
		t.Fatalf("Add = %+v", sum)
	}
	clamped := Interval{Lo: 4, Hi: 100}.ClampHi(10)
	if clamped != (Interval{Lo: 4, Hi: 10}) {
		t.Fatalf("ClampHi = %+v", clamped)
	}
	if got := (Interval{Lo: 12, Hi: 100}).ClampHi(10); got != (Interval{Lo: 10, Hi: 10}) {
		t.Fatalf("ClampHi below Lo = %+v", got)
	}
	if s := (Interval{Lo: 2, Hi: 9}).String(); s != "[2, 9]" {
		t.Fatalf("String = %q", s)
	}
}

func TestBoxCountUpperIsUpperBound(t *testing.T) {
	// Triangle 0 <= j <= i < 20: 210 points, box bound 400.
	tri := boxSet("S", 20, 20).AddConstraint(ineq(boxSet("S", 20, 20).NCols(), 0, 1, -1))
	hi, ok := BoxCountUpper(tri)
	if !ok {
		t.Fatal("bounded triangle must have a box bound")
	}
	exact, _ := tri.CountByScan()
	if hi < exact {
		t.Fatalf("box bound %d below exact count %d", hi, exact)
	}
	if hi != 400 {
		t.Fatalf("triangle box bound = %d, want 400", hi)
	}
}

func TestBoxBoundsViaProjection(t *testing.T) {
	// { (i,j) : 0 <= i < 10, i <= j <= i+3 }: j has no single-dimension
	// constant bounds, but the approximate projection onto j yields them.
	sp := presburger.NewSpace("S", "i", "j")
	full := presburger.UniverseBasicSet(sp)
	full = full.AddConstraint(ineq(full.NCols(), 0, 1, 0))  // i >= 0
	full = full.AddConstraint(ineq(full.NCols(), 9, -1, 0)) // i <= 9
	full = full.AddConstraint(ineq(full.NCols(), 0, -1, 1)) // j >= i
	full = full.AddConstraint(ineq(full.NCols(), 3, 1, -1)) // j <= i+3
	lo, hi, ok := BoxBounds(full)
	if !ok {
		t.Fatal("projection must recover bounds for j")
	}
	if lo[1] > 0 || hi[1] < 12 {
		t.Fatalf("j bounds [%d, %d] do not enclose [0, 12]", lo[1], hi[1])
	}
	exact, _ := full.CountByScan()
	upper, ok := BoxCountUpper(full)
	if !ok || upper < exact {
		t.Fatalf("box bound %d (ok=%v) below exact %d", upper, ok, exact)
	}
}

// TestCountIntervalSandwich is the package-level bounds sandwich: on random
// boxed sets with coupling constraints, a forced tiny budget must yield
// Lo <= exact <= Hi, and an ample budget must yield width 0.
func TestCountIntervalSandwich(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	meterTiny := budget.New(context.Background(), 1)
	for trial := 0; trial < 60; trial++ {
		ndim := rng.Intn(3) + 1
		bounds := make([]int64, ndim)
		for i := range bounds {
			bounds[i] = int64(rng.Intn(8) + 2)
		}
		bs := boxSet("S", bounds...)
		// Couple dimensions so the box relaxation is not trivially exact.
		if ndim >= 2 && rng.Intn(2) == 0 {
			bs = bs.AddConstraint(ineq(bs.NCols(), 0, 1, -1))
		}
		exact, err := bs.CountByScan()
		if err != nil {
			t.Fatal(err)
		}

		// Tiny budget, tiny enumeration cap: must still sandwich the truth.
		iv, err := CountBasicSetInterval(bs, meterTiny.Op("test"), 3)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !iv.Contains(exact) {
			t.Fatalf("trial %d: interval %v does not contain exact %d", trial, iv, exact)
		}

		// Ample budget: exact, width 0.
		iv, err = CountBasicSetInterval(bs, nil, 0)
		if err != nil {
			t.Fatalf("trial %d ample: %v", trial, err)
		}
		if !iv.IsExact() || iv.Lo != exact {
			t.Fatalf("trial %d ample: got %v, want exact %d", trial, iv, exact)
		}
	}
}

func TestCountSetIntervalUnion(t *testing.T) {
	// Two overlapping boxes: [0,6)x[0,6) and [3,9)x[3,9), union = 63 points.
	a := boxSet("S", 6, 6)
	b := boxSet("S", 9, 9)
	b = b.AddConstraint(ineq(b.NCols(), -3, 1, 0))
	b = b.AddConstraint(ineq(b.NCols(), -3, 0, 1))
	s := presburger.SetFromBasic(a).Union(presburger.SetFromBasic(b))
	exact, err := s.CountByScan()
	if err != nil {
		t.Fatal(err)
	}

	m := budget.New(context.Background(), 1)
	iv, err := CountSetInterval(s, m.Op("test"), 5)
	if err != nil {
		t.Fatal(err)
	}
	if !iv.Contains(exact) {
		t.Fatalf("interval %v does not contain exact %d", iv, exact)
	}
	if iv.Lo < 5 {
		t.Fatalf("enumeration prefix must certify at least the cap: %v", iv)
	}

	iv, err = CountSetInterval(s, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !iv.IsExact() || iv.Lo != exact {
		t.Fatalf("ample budget: got %v, want exact %d", iv, exact)
	}
}

func TestCountIntervalCompleteScanIsExact(t *testing.T) {
	// Budget too small for the symbolic count, but the set is tiny: the
	// enumeration completes and the result must be exact despite degrading.
	bs := boxSet("S", 3, 3).AddConstraint(ineq(boxSet("S", 3, 3).NCols(), 0, 1, -1))
	exact, _ := bs.CountByScan()
	m := budget.New(context.Background(), 1)
	iv, err := CountBasicSetInterval(bs, m.Op("test"), DefaultMaxEnum)
	if err != nil {
		t.Fatal(err)
	}
	if !iv.IsExact() || iv.Lo != exact {
		t.Fatalf("got %v, want exact %d", iv, exact)
	}
}

func TestCountIntervalCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m := budget.New(ctx, 1)
	bs := boxSet("S", 50, 50, 50)
	op := m.Op("test")
	// Drain the op so charges hit the context check.
	for i := 0; i < 2; i++ {
		_ = op.Charge(256)
	}
	_, err := CountBasicSetInterval(bs, op, 1<<20)
	if err == nil || !budget.IsCancellation(err) {
		t.Fatalf("want cancellation error, got %v", err)
	}
}

func TestErrBudgetMatchesTypedExceeded(t *testing.T) {
	_, err := CardBasicSetBudgeted(boxSet("S", 100, 100, 100).
		AddConstraint(ineq(boxSet("S", 100, 100, 100).NCols(), 0, 1, -1, 0)),
		0, presburger.NewSpace("S"), 1)
	if err == nil {
		t.Fatal("budget 1 must trip")
	}
	if !errors.Is(err, ErrBudget) || !errors.Is(err, budget.ErrExceeded) {
		t.Fatalf("budget error %v must match ErrBudget and budget.ErrExceeded", err)
	}
	var ex *budget.Exceeded
	if !errors.As(err, &ex) || ex.Stage == "" {
		t.Fatalf("budget error must carry provenance: %v", err)
	}
}
