package counting

import (
	"fmt"

	"haystack/internal/budget"
	"haystack/internal/presburger"
	"haystack/internal/qpoly"
)

// CountBasicSet returns the exact number of integer points of the basic set,
// computed symbolically (no parameters). The summand form is used directly:
// the total is the sum over all zero-dimensional summand pieces, so the
// disjointness fold of CardBasicSet would be pure overhead here.
func CountBasicSet(bs presburger.BasicSet) (int64, error) {
	return CountBasicSetOp(bs, nil)
}

// CountBasicSetOp is CountBasicSet charging the given budget operation
// (one cost unit per intermediate elimination system; nil = unlimited).
func CountBasicSetOp(bs presburger.BasicSet, op *budget.Op) (int64, error) {
	sum, err := CardBasicSetSummands(bs, 0, presburger.NewSpace(bs.Space().Name), op)
	if err != nil {
		return 0, err
	}
	var total int64
	for _, term := range sum.Terms {
		for _, piece := range term.Pieces {
			if !piece.Domain.Contains(nil) {
				continue
			}
			v := piece.Poly.Eval(nil)
			if !v.IsInt() {
				return 0, fmt.Errorf("%w: non-integer count %v", ErrUnsupported, v)
			}
			total += v.Int()
		}
	}
	return total, nil
}

// CountSet returns the exact number of distinct integer points of the set.
// Overlapping basic sets are made disjoint by subtraction before counting.
func CountSet(s presburger.Set) (int64, error) {
	return CountSetOp(s, nil)
}

// CountSetOp is CountSet charging the given budget operation (nil =
// unlimited).
func CountSetOp(s presburger.Set, op *budget.Op) (int64, error) {
	disjoint, err := DisjointBasicSets(s)
	if err != nil {
		return 0, err
	}
	var total int64
	for _, bs := range disjoint {
		n, err := CountBasicSetOp(bs, op)
		if err != nil {
			return 0, err
		}
		total += n
	}
	return total, nil
}

// CardSet counts the distinct integer points of s parametrically in its
// first nParam dimensions: the result maps every value of the parameter
// dimensions to the number of points of the remaining dimensions.
// Overlapping basic sets are made disjoint by subtraction before counting,
// so union semantics hold for every parameter value.
func CardSet(s presburger.Set, nParam int, paramSpace presburger.Space) (qpoly.PwQPoly, error) {
	return CardSetOp(s, nParam, paramSpace, nil)
}

// CardSetOp is CardSet charging the given budget operation (nil =
// unlimited).
func CardSetOp(s presburger.Set, nParam int, paramSpace presburger.Space, op *budget.Op) (qpoly.PwQPoly, error) {
	disjoint, err := DisjointBasicSets(s)
	if err != nil {
		return qpoly.PwQPoly{}, err
	}
	total := qpoly.ZeroPw(paramSpace)
	for _, bs := range disjoint {
		card, err := CardBasicSetOp(bs, nParam, paramSpace, op)
		if err != nil {
			return qpoly.PwQPoly{}, err
		}
		total = total.Add(card)
	}
	return total, nil
}

// CardSetRanges counts the distinct points of the ranges of a union map
// parametrically in the first nParam dimensions of every output space,
// summed over the output spaces (the parametric analogue of
// CountSetRanges: for the cache line access map the result is the number of
// touched lines, i.e. the compulsory misses, as a piecewise
// quasi-polynomial in the program parameters).
func CardSetRanges(u presburger.UnionMap, nParam int, paramSpace presburger.Space) (qpoly.PwQPoly, error) {
	ranges, err := u.Range()
	if err != nil {
		return qpoly.PwQPoly{}, err
	}
	total := qpoly.ZeroPw(paramSpace)
	for _, s := range ranges.Sets() {
		card, err := CardSet(s, nParam, paramSpace)
		if err != nil {
			return qpoly.PwQPoly{}, err
		}
		total = total.Add(card)
	}
	return total, nil
}

// DisjointBasicSets rewrites the union of basic sets of s into a list of
// pairwise disjoint basic sets covering the same points. The input is
// coalesced first: fewer and simpler basic sets keep the quadratic
// subtraction chain below from fanning out.
func DisjointBasicSets(s presburger.Set) ([]presburger.BasicSet, error) {
	s = s.Coalesce()
	var out []presburger.BasicSet
	covered := presburger.EmptySet(s.Space())
	for _, bs := range s.Basics() {
		rest := presburger.SetFromBasic(bs)
		for _, c := range covered.Basics() {
			rest = rest.Subtract(presburger.SetFromBasic(c))
			if rest.DefinitelyEmpty() {
				break
			}
		}
		for _, r := range rest.Basics() {
			if !r.DefinitelyEmpty() {
				presburger.DebugAssertBasicSet(r, "disjoint decomposition")
				out = append(out, r)
			}
		}
		covered = covered.Union(presburger.SetFromBasic(bs))
	}
	return out, nil
}

// DisjointBasicMaps rewrites the union of basic maps of m into pairwise
// disjoint basic maps covering the same relation pairs. The input is
// coalesced first (see DisjointBasicSets).
func DisjointBasicMaps(m presburger.Map) ([]presburger.BasicMap, error) {
	m = m.Coalesce()
	var out []presburger.BasicMap
	covered := presburger.EmptyMap(m.InSpace(), m.OutSpace())
	for _, bm := range m.Basics() {
		rest := presburger.MapFromBasic(bm)
		for _, c := range covered.Basics() {
			rest = rest.Subtract(presburger.MapFromBasic(c))
			if rest.DefinitelyEmpty() {
				break
			}
		}
		for _, r := range rest.Basics() {
			if !r.DefinitelyEmpty() {
				presburger.DebugAssertBasicMap(r, "disjoint decomposition")
				out = append(out, r)
			}
		}
		covered = covered.Union(presburger.MapFromBasic(bm))
	}
	return out, nil
}

// CardBasicMap counts, for every point of the input space, the number of
// related output points of the basic map. The result is a piecewise
// quasi-polynomial over the input space.
func CardBasicMap(bm presburger.BasicMap) (qpoly.PwQPoly, error) {
	return CardBasicSet(bm.AsSet(), bm.NIn(), bm.InSpace())
}

// MapCard counts, for every point of the input space, the number of distinct
// related output points of the map (union semantics: an output point related
// through several basic maps is counted once).
func MapCard(m presburger.Map) (qpoly.PwQPoly, error) {
	return MapCardOp(m, nil)
}

// MapCardOp is MapCard charging the given budget operation (nil =
// unlimited).
func MapCardOp(m presburger.Map, op *budget.Op) (qpoly.PwQPoly, error) {
	cards, err := MapCardPieces(m, op)
	if err != nil {
		return qpoly.PwQPoly{}, err
	}
	// The per-basic-map cards overlap only where their domains can: the
	// partitioned fold concatenates provably disjoint chambers (different
	// access ids, different boundary wedges) and pays the quadratic
	// disjointness fold only within a chamber.
	return qpoly.MergeDisjointSum(m.InSpace(), cards), nil
}

// MapCardPieces is MapCardOp without the final disjoint merge: it returns
// one piecewise card per disjoint basic map of the union, and the pointwise
// sum of the returned polynomials equals the MapCardOp result. Callers that
// only evaluate the cardinality at concrete points keep the sum lazy and
// skip the merge entirely — the set-associative restriction stripes the
// card domains by residue classes, and the disjoint piecewise normal form
// of the merged sum grows quadratically with the stripe count.
func MapCardPieces(m presburger.Map, op *budget.Op) ([]qpoly.PwQPoly, error) {
	disjoint, err := DisjointBasicMaps(m)
	if err != nil {
		return nil, err
	}
	cards := make([]qpoly.PwQPoly, 0, len(disjoint))
	for _, bm := range disjoint {
		card, err := CardBasicSetOp(bm.AsSet(), bm.NIn(), bm.InSpace(), op)
		if err != nil {
			return nil, err
		}
		cards = append(cards, card)
	}
	return cards, nil
}

// MapCardSummands is the sum form of MapCardPieces: it returns the raw
// summand pieces of every disjoint basic map (overlapping domains, sum
// semantics — the cardinality at a point is the sum of every piece whose
// domain contains it), skipping the per-basic-map disjointness fold of
// CardBasicSet entirely. That fold is what explodes under set-associative
// residue restriction: fine residue stripes fan the summation out into many
// systems, and folding them into a disjoint piecewise normal form pays a
// quadratic chain of set subtractions for a shape the pointwise evaluator
// never needs. Every summand is a chamber count — nonnegative on its domain
// — so threshold evaluation may stop early (qpoly.Bag.SumExceeds).
func MapCardSummands(m presburger.Map, op *budget.Op) ([]qpoly.Piece, error) {
	disjoint, err := DisjointBasicMaps(m)
	if err != nil {
		return nil, err
	}
	var pieces []qpoly.Piece
	for _, bm := range disjoint {
		sum, err := CardBasicSetSummands(bm.AsSet(), bm.NIn(), bm.InSpace(), op)
		if err != nil {
			return nil, err
		}
		for _, term := range sum.Terms {
			pieces = append(pieces, term.Pieces...)
		}
	}
	return pieces, nil
}

// CountMapPairs returns the exact number of distinct relation pairs of the
// map.
func CountMapPairs(m presburger.Map) (int64, error) {
	disjoint, err := DisjointBasicMaps(m)
	if err != nil {
		return 0, err
	}
	var total int64
	for _, bm := range disjoint {
		n, err := CountBasicSet(bm.AsSet())
		if err != nil {
			return 0, err
		}
		total += n
	}
	return total, nil
}

// CountSetRanges counts the distinct points of the ranges of a union map per
// output space (used for compulsory miss counting, where the range of the
// cache line access map is the set of touched cache lines).
func CountSetRanges(u presburger.UnionMap) (int64, error) {
	ranges, err := u.Range()
	if err != nil {
		return 0, err
	}
	var total int64
	for _, s := range ranges.Sets() {
		n, err := CountSet(s)
		if err != nil {
			return 0, err
		}
		total += n
	}
	return total, nil
}

// CountSetRangesInterval is the bounded-tier form of CountSetRanges: it
// counts each range set with CountSetInterval and sums the per-set
// intervals. The result is exact (width 0) whenever every per-set count is.
func CountSetRangesInterval(u presburger.UnionMap, op *budget.Op, maxEnum int64) (Interval, error) {
	ranges, err := u.Range()
	if err != nil {
		return Interval{}, err
	}
	total := Exact(0)
	for _, s := range ranges.Sets() {
		iv, err := CountSetInterval(s, op, maxEnum)
		if err != nil {
			return Interval{}, err
		}
		total = total.Add(iv)
	}
	return total, nil
}
