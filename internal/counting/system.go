// Package counting implements symbolic cardinality computation for integer
// sets and maps: the role the Barvinok library plays for the original
// HayStack implementation.
//
// The engine counts by successive symbolic summation: the innermost counted
// dimension is summed out with Faulhaber formulas, splitting the domain on
// which lower/upper bound dominates and on residue classes whenever floor
// expressions (divs) depend on the summed dimension. The result is a
// piecewise quasi-polynomial in the parameter dimensions, exactly like the
// quasi-polynomials barvinok produces. Inputs outside the supported
// fragment report an error so that callers can fall back to enumeration,
// mirroring the hybrid strategy of the paper.
package counting

import (
	"errors"
	"fmt"

	"haystack/internal/ints"
	"haystack/internal/presburger"
	"haystack/internal/qpoly"
)

// ErrUnsupported reports that symbolic counting left the supported fragment.
var ErrUnsupported = errors.New("counting: outside supported fragment")

// ErrUnbounded reports an attempt to count an unbounded set.
var ErrUnbounded = errors.New("counting: unbounded set")

// system is the internal working state while summing out dimensions of one
// basic set. Column layout of all vectors: [const, dims..., divs...]. The
// first nParam dims are parameters (never summed); dims that have already
// been summed keep their column but are unreferenced.
type system struct {
	space  presburger.Space
	nParam int
	ndim   int
	divs   []presburger.Div
	cons   []presburger.Constraint
	poly   qpoly.QPoly // over ndim variables
}

func newSystem(bs presburger.BasicSet, nParam int) *system {
	s := &system{
		space:  bs.Space(),
		nParam: nParam,
		ndim:   bs.NDim(),
		divs:   bs.Divs(),
		cons:   bs.Constraints(),
		poly:   qpoly.ConstInt(bs.NDim(), 1),
	}
	s.resize()
	return s
}

func (s *system) ncols() int       { return 1 + s.ndim + len(s.divs) }
func (s *system) dimCol(i int) int { return 1 + i }
func (s *system) divCol(i int) int { return 1 + s.ndim + i }

func (s *system) clone() *system {
	out := &system{space: s.space, nParam: s.nParam, ndim: s.ndim, poly: s.poly}
	out.divs = make([]presburger.Div, len(s.divs))
	for i, d := range s.divs {
		out.divs[i] = presburger.Div{Num: d.Num.Clone(), Den: d.Den}
	}
	out.cons = make([]presburger.Constraint, len(s.cons))
	for i, c := range s.cons {
		out.cons[i] = presburger.Constraint{C: c.C.Clone(), Eq: c.Eq}
	}
	return out
}

// resize pads all vectors to the current column count.
func (s *system) resize() {
	n := s.ncols()
	for i := range s.cons {
		if len(s.cons[i].C) != n {
			s.cons[i].C = s.cons[i].C.Resized(n)
		}
	}
	for i := range s.divs {
		if len(s.divs[i].Num) != n {
			s.divs[i].Num = s.divs[i].Num.Resized(n)
		}
	}
}

// addDiv appends (or reuses) a div and returns its column index.
func (s *system) addDiv(num presburger.Vec, den int64) int {
	num = num.Resized(s.ncols())
	for i, d := range s.divs {
		if d.Den != den {
			continue
		}
		same := true
		dn := d.Num.Resized(s.ncols())
		for j := range num {
			if dn[j] != num[j] {
				same = false
				break
			}
		}
		if same {
			return s.divCol(i)
		}
	}
	s.divs = append(s.divs, presburger.Div{Num: num.Clone(), Den: den})
	s.resize()
	return s.divCol(len(s.divs) - 1)
}

// toBasicSet converts the system's constraints back into a basic set over the
// full space (used for emptiness pruning).
func (s *system) toBasicSet() presburger.BasicSet {
	return presburger.NewBasicSet(s.space, s.divs, s.cons)
}

// definitelyEmpty reports whether the constraint system is detectably empty.
func (s *system) definitelyEmpty() bool { return s.toBasicSet().DefinitelyEmpty() }

// usesDim reports whether any constraint or div references the dimension,
// directly or through a div.
func (s *system) usesDim(dim int) bool {
	col := s.dimCol(dim)
	dep := s.divDependsOnDim(dim)
	for _, c := range s.cons {
		if c.C[col] != 0 {
			return true
		}
		for i := range s.divs {
			if dep[i] && c.C[s.divCol(i)] != 0 {
				return true
			}
		}
	}
	return false
}

// fanOutEstimate scores how many sub-systems summing out dim is expected to
// produce: the residue period of the floors that depend on it times the
// number of (lower, upper) bound pairs. Dimensions eliminable through an
// equality (and free of floor dependence) score 1. The estimate steers the
// summation order; it never affects correctness.
func (s *system) fanOutEstimate(dim int) int64 {
	// The estimate multiplies residue periods by bound pairs by coupling
	// penalties; with adversarial coefficients the raw products (and the
	// checked LCM, which panics) overflow int64. Saturating keeps the
	// heuristic ordered — a saturated estimate just means "sum this last".
	satMul := func(a, b int64) int64 {
		p, ok := ints.TryMul(a, b)
		if !ok {
			return int64(^uint64(0) >> 1) // saturate at MaxInt64
		}
		return p
	}
	satLCM := func(a, b int64) int64 {
		if a == 0 || b == 0 {
			return 0
		}
		g := ints.GCD(a, b)
		return satMul(ints.Abs(a)/g, ints.Abs(b))
	}
	col := s.dimCol(dim)
	var period int64 = 1
	if s.hasDimDependentFloors(dim) {
		for _, d := range s.divs {
			if d.Num.Resized(s.ncols())[col] != 0 {
				period = satLCM(period, d.Den)
			}
		}
		for _, a := range s.poly.Atoms {
			if 1+dim < len(a.Num) && a.Num[1+dim] != 0 {
				period = satLCM(period, a.Den)
			}
		}
		if period == 1 {
			period = 8 // transitive floor dependence: several split rounds
		}
	}
	var lowers, uppers int64
	penalty := int64(1)
	hasEq := false
	for _, c := range s.cons {
		cc := c.C.Resized(s.ncols())
		a := cc[col]
		switch {
		case a == 0:
			continue
		case c.Eq:
			hasEq = true
		case a > 0:
			lowers++
		default:
			uppers++
		}
		if c.Eq || a == 1 || a == -1 {
			continue
		}
		// A non-unit bound becomes a floor expression of the surviving
		// dimensions when the sum telescopes. If the bound couples another
		// counted dimension, that dimension will residue-split by roughly
		// |a| classes when its own turn comes — weigh the full factor. A
		// floor over parameters only is harmless (parameters are never
		// summed), but still worth losing ties over.
		w := int64(2)
		for d := s.nParam; d < s.ndim; d++ {
			if d != dim && cc[s.dimCol(d)] != 0 {
				w = ints.Abs(a)
				break
			}
		}
		if penalty < 1<<20 {
			penalty = satMul(penalty, w)
		}
	}
	if hasEq && period == 1 {
		return 1
	}
	pairs := satMul(lowers, uppers)
	if hasEq || pairs == 0 {
		pairs = 1
	}
	return satMul(satMul(period, pairs), penalty)
}

// divDependsOnDim reports, per div, whether its numerator references the
// dimension directly or through another div.
func (s *system) divDependsOnDim(dim int) []bool {
	col := s.dimCol(dim)
	dep := make([]bool, len(s.divs))
	for i, d := range s.divs {
		num := d.Num.Resized(s.ncols())
		if num[col] != 0 {
			dep[i] = true
			continue
		}
		for j := 0; j < i; j++ {
			if dep[j] && num[s.divCol(j)] != 0 {
				dep[i] = true
				break
			}
		}
	}
	return dep
}

// vecToQPoly converts an affine column vector (over [const, dims, divs]) into
// a quasi-polynomial over the dims, turning div references into floor atoms.
// It returns the polynomial together with the (possibly extended) carrier
// polynomial whose atom table now holds the needed atoms; callers that want
// to combine the result with an existing polynomial simply Add them (atom
// tables merge by structural identity).
func (s *system) vecToQPoly(v presburger.Vec) qpoly.QPoly {
	v = v.Resized(s.ncols())
	p := qpoly.ConstInt(s.ndim, v[0])
	for i := 0; i < s.ndim; i++ {
		if c := v[s.dimCol(i)]; c != 0 {
			p = p.Add(qpoly.Var(s.ndim, i).Scale(ints.RatInt(c)))
		}
	}
	for i := range s.divs {
		if c := v[s.divCol(i)]; c != 0 {
			carrier, idx := s.ensureDivAtom(qpoly.Zero(s.ndim), i)
			p = p.Add(carrier.AtomPoly(idx).Scale(ints.RatInt(c)))
		}
	}
	return p
}

// ensureDivAtom extends poly with a floor atom mirroring div i (recursively
// creating atoms for the divs it references) and returns the updated
// polynomial and the atom index.
func (s *system) ensureDivAtom(poly qpoly.QPoly, i int) (qpoly.QPoly, int) {
	num := s.divs[i].Num.Resized(s.ncols())
	refIdx := map[int]int{}
	for j := 0; j < i; j++ {
		if num[s.divCol(j)] != 0 {
			poly, refIdx[j] = s.ensureDivAtom(poly, j)
		}
	}
	for j := i; j < len(s.divs); j++ {
		if num[s.divCol(j)] != 0 {
			panic("counting: div references later div")
		}
	}
	full := make([]int64, 1+s.ndim+len(poly.Atoms))
	full[0] = num[0]
	for v := 0; v < s.ndim; v++ {
		full[1+v] = num[s.dimCol(v)]
	}
	for j, idx := range refIdx {
		full[1+s.ndim+idx] += num[s.divCol(j)]
	}
	return poly.WithAtom(full, s.divs[i].Den)
}

// String renders the system for debugging.
func (s *system) String() string {
	return fmt.Sprintf("system{%v, poly=%s}", s.toBasicSet(), s.poly.StringWithNames(s.space.Dims))
}
