package counting

import (
	"testing"

	"haystack/internal/ints"
	"haystack/internal/presburger"
	"haystack/internal/qpoly"
)

// TestMapCardPiecesSumMatchesMerged pins the lazy-sum contract the
// set-associative classifier relies on: the pointwise sum of the per-basic
// cards returned by MapCardPieces equals the merged MapCardOp result at
// every domain point — including points where overlapping basic maps were
// made disjoint by subtraction.
func TestMapCardPiecesSumMatchesMerged(t *testing.T) {
	// Overlapping union {S(i)->T(j): 0<=j<=i} ∪ {S(i)->T(j): 0<=j<5} over
	// 0<=i<20, plus a stripe of even outputs {S(i)->T(j): j=2k, 0<=j<=i} to
	// put a div-carrying card in the bag.
	s := presburger.NewSpace("S", "i")
	o := presburger.NewSpace("T", "j")
	mk := func() presburger.BasicMap {
		bm := presburger.UniverseBasicMap(s, o)
		bm = bm.AddConstraint(ineq(bm.NCols(), 0, 1, 0))
		bm = bm.AddConstraint(ineq(bm.NCols(), 19, -1, 0))
		bm = bm.AddConstraint(ineq(bm.NCols(), 0, 0, 1))
		return bm
	}
	a := mk().AddConstraint(ineq(mk().NCols(), 0, 1, -1))
	b := mk().AddConstraint(ineq(mk().NCols(), 4, 0, -1))
	c := mk().AddConstraint(ineq(mk().NCols(), 0, 1, -1))
	cd, u := c.AddDiv(presburger.Vec{0, 0, 1}, 2)
	even := presburger.Constraint{C: presburger.NewVec(cd.NCols()), Eq: true}
	even.C[2] = 1
	even.C[u] = -2
	c = cd.AddConstraint(even)
	m := presburger.MapFromBasics(a, b, c)

	merged, err := MapCardOp(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	pieces, err := MapCardPieces(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(pieces) < 2 {
		t.Fatalf("expected multiple disjoint cards, got %d", len(pieces))
	}
	summands, err := MapCardSummands(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	bag := qpoly.NewBag(summands)
	for i := int64(0); i < 22; i++ {
		pt := []int64{i}
		var sum ints.Rat
		for _, card := range pieces {
			sum = sum.Add(card.Eval(pt))
		}
		if want := ints.NewRat(merged.EvalInt(pt), 1); sum.Cmp(want) != 0 {
			t.Errorf("i=%d: lazy sum %v, merged %v", i, sum, want)
		}
		// The raw summand form evaluated through the box-filtered bag must
		// agree with both, and its threshold form must bracket the sum
		// exactly.
		if got := bag.EvalSum(pt); got.Cmp(sum) != 0 {
			t.Errorf("i=%d: summand bag sum %v, card sum %v", i, got, sum)
		}
		for _, limit := range []int64{0, 1, 4, 9, 12, 40} {
			lr := ints.NewRat(limit, 1)
			if got, want := bag.SumExceeds(pt, lr), sum.Cmp(lr) > 0; got != want {
				t.Errorf("i=%d limit=%d: SumExceeds=%v, want %v", i, limit, got, want)
			}
		}
	}
}
