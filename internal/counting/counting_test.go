package counting

import (
	"fmt"
	"math/rand"
	"testing"

	"haystack/internal/presburger"
	"haystack/internal/qpoly"
)

// helpers ------------------------------------------------------------------

func boxSet(name string, bounds ...int64) presburger.BasicSet {
	dims := make([]string, len(bounds))
	for i := range dims {
		dims[i] = fmt.Sprintf("i%d", i)
	}
	bs := presburger.UniverseBasicSet(presburger.NewSpace(name, dims...))
	for i, b := range bounds {
		lo := presburger.Constraint{C: presburger.NewVec(bs.NCols())}
		lo.C[1+i] = 1
		bs = bs.AddConstraint(lo)
		hi := presburger.Constraint{C: presburger.NewVec(bs.NCols())}
		hi.C[1+i] = -1
		hi.C[0] = b - 1
		bs = bs.AddConstraint(hi)
	}
	return bs
}

func ineq(ncols int, c0 int64, coeffs ...int64) presburger.Constraint {
	c := presburger.Constraint{C: presburger.NewVec(ncols)}
	c.C[0] = c0
	for i, v := range coeffs {
		c.C[1+i] = v
	}
	return c
}

func eq(ncols int, c0 int64, coeffs ...int64) presburger.Constraint {
	c := ineq(ncols, c0, coeffs...)
	c.Eq = true
	return c
}

// tests ----------------------------------------------------------------------

func TestCountBox(t *testing.T) {
	for _, bounds := range [][]int64{{5}, {3, 4}, {2, 3, 4}, {7, 1, 2, 3}} {
		bs := boxSet("S", bounds...)
		want, err := bs.CountByScan()
		if err != nil {
			t.Fatal(err)
		}
		got, err := CountBasicSet(bs)
		if err != nil {
			t.Fatalf("bounds %v: %v", bounds, err)
		}
		if got != want {
			t.Fatalf("bounds %v: symbolic %d, scan %d", bounds, got, want)
		}
	}
}

func TestCountTriangleAndTetrahedron(t *testing.T) {
	// Triangle 0 <= j <= i < 20.
	tri := boxSet("S", 20, 20).AddConstraint(ineq(boxSet("S", 20, 20).NCols(), 0, 1, -1))
	got, err := CountBasicSet(tri)
	if err != nil {
		t.Fatal(err)
	}
	if got != 210 {
		t.Fatalf("triangle count = %d, want 210", got)
	}
	// Tetrahedron 0 <= k <= j <= i < 12.
	tet := boxSet("S", 12, 12, 12)
	tet = tet.AddConstraint(ineq(tet.NCols(), 0, 1, -1, 0))
	tet = tet.AddConstraint(ineq(tet.NCols(), 0, 0, 1, -1))
	got, err = CountBasicSet(tet)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := tet.CountByScan()
	if got != want {
		t.Fatalf("tetrahedron count = %d, want %d", got, want)
	}
}

func TestCountWithEqualityAndDivisibility(t *testing.T) {
	// { (i,j) : 0<=i<30, j == 2i, 0<=j<30 }  -> i in [0,14] -> 15 points.
	bs := boxSet("S", 30, 30).AddConstraint(eq(boxSet("S", 30, 30).NCols(), 0, 2, -1))
	got, err := CountBasicSet(bs)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := bs.CountByScan()
	if got != want {
		t.Fatalf("count = %d, want %d", got, want)
	}

	// { i : 0 <= i < 40, i == 4*floor(i/4) }  -> multiples of 4 -> 10 points.
	m4 := boxSet("S", 40)
	m4, col := m4.AddDiv(presburger.Vec{0, 1}, 4)
	c := presburger.Constraint{C: presburger.NewVec(m4.NCols()), Eq: true}
	c.C[1] = 1
	c.C[col] = -4
	m4 = m4.AddConstraint(c)
	got, err = CountBasicSet(m4)
	if err != nil {
		t.Fatal(err)
	}
	if got != 10 {
		t.Fatalf("multiples of 4 count = %d, want 10", got)
	}
}

func TestCardBasicMapTriangular(t *testing.T) {
	// { S(i) -> T(j) : 0 <= j <= i } restricted to 0 <= i < 50: card = i+1.
	s := presburger.NewSpace("S", "i")
	o := presburger.NewSpace("T", "j")
	bm := presburger.UniverseBasicMap(s, o)
	bm = bm.AddConstraint(ineq(bm.NCols(), 0, 1, 0))
	bm = bm.AddConstraint(ineq(bm.NCols(), 49, -1, 0))
	bm = bm.AddConstraint(ineq(bm.NCols(), 0, 0, 1))
	bm = bm.AddConstraint(ineq(bm.NCols(), 0, 1, -1))

	card, err := CardBasicMap(bm)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 50; i += 7 {
		if got := card.EvalInt([]int64{i}); got != i+1 {
			t.Fatalf("card(%d) = %d, want %d", i, got, i+1)
		}
	}
	if card.EvalInt([]int64{1000}) != 0 {
		t.Fatal("card outside the domain should be 0")
	}
}

func TestCardBasicMapWithCacheLines(t *testing.T) {
	// { S(i) -> L(c) : 4c <= j <= 4c+3, 0 <= j <= i, 0 <= i < 64 }:
	// the number of distinct 4-element lines touched by elements 0..i, which
	// is floor(i/4)+1.
	s := presburger.NewSpace("S", "i")
	l := presburger.NewSpace("L", "c")
	// Build via an intermediate j dimension: use a map S(i) -> (j) -> lines.
	// Simpler: directly express lines c such that exists j <= i in line c:
	// 4c <= i and c >= 0 (every line up to the one containing i).
	bm := presburger.UniverseBasicMap(s, l)
	bm = bm.AddConstraint(ineq(bm.NCols(), 0, 1, 0))
	bm = bm.AddConstraint(ineq(bm.NCols(), 63, -1, 0))
	bm = bm.AddConstraint(ineq(bm.NCols(), 0, 0, 1))
	bm = bm.AddConstraint(ineq(bm.NCols(), 0, 1, -4))

	card, err := CardBasicMap(bm)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 64; i++ {
		want := i/4 + 1
		if got := card.EvalInt([]int64{i}); got != want {
			t.Fatalf("card(%d) = %d, want %d", i, got, want)
		}
	}
}

func TestMapCardDeduplicatesUnion(t *testing.T) {
	// Two overlapping relations to the same range: {S(i)->T(j): 0<=j<=i} and
	// {S(i)->T(j): 0<=j<5}, for 0<=i<20. Distinct outputs = max(i+1, 5)... no:
	// union of [0,i] and [0,4] = [0, max(i,4)] -> max(i,4)+1.
	s := presburger.NewSpace("S", "i")
	o := presburger.NewSpace("T", "j")
	mk := func(f func(bm presburger.BasicMap) presburger.BasicMap) presburger.BasicMap {
		bm := presburger.UniverseBasicMap(s, o)
		bm = bm.AddConstraint(ineq(bm.NCols(), 0, 1, 0))
		bm = bm.AddConstraint(ineq(bm.NCols(), 19, -1, 0))
		bm = bm.AddConstraint(ineq(bm.NCols(), 0, 0, 1))
		return f(bm)
	}
	a := mk(func(bm presburger.BasicMap) presburger.BasicMap {
		return bm.AddConstraint(ineq(bm.NCols(), 0, 1, -1))
	})
	b := mk(func(bm presburger.BasicMap) presburger.BasicMap {
		return bm.AddConstraint(ineq(bm.NCols(), 4, 0, -1))
	})
	m := presburger.MapFromBasics(a, b)
	card, err := MapCard(m)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 20; i++ {
		want := i + 1
		if want < 5 {
			want = 5
		}
		if got := card.EvalInt([]int64{i}); got != want {
			t.Fatalf("card(%d) = %d, want %d", i, got, want)
		}
	}
}

func TestCountSetUnionDedup(t *testing.T) {
	a := boxSet("S", 10)
	b := boxSet("S", 10).AddConstraint(ineq(boxSet("S", 10).NCols(), -5, 1)) // i >= 5
	s := presburger.SetFromBasic(a).Union(presburger.SetFromBasic(b))
	got, err := CountSet(s)
	if err != nil {
		t.Fatal(err)
	}
	if got != 10 {
		t.Fatalf("union count = %d, want 10", got)
	}
}

func TestCountMapPairs(t *testing.T) {
	sp := presburger.NewSpace("S", "i", "j")
	lt := presburger.LexLT(sp)
	box := presburger.SetFromBasic(boxSet("S", 4, 4))
	restricted := lt.IntersectDomain(box).IntersectRange(box)
	got, err := CountMapPairs(restricted)
	if err != nil {
		t.Fatal(err)
	}
	// 16 points -> 16*15/2 strictly ordered pairs.
	if got != 120 {
		t.Fatalf("pairs = %d, want 120", got)
	}
}

func TestRandomCountsMatchScan(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 80; trial++ {
		nd := 1 + rng.Intn(3)
		bounds := make([]int64, nd)
		for i := range bounds {
			bounds[i] = int64(2 + rng.Intn(6))
		}
		bs := boxSet("S", bounds...)
		// A couple of random extra constraints with small coefficients.
		for k := 0; k < rng.Intn(3); k++ {
			coeffs := make([]int64, nd)
			for i := range coeffs {
				coeffs[i] = int64(rng.Intn(5) - 2)
			}
			bs = bs.AddConstraint(ineq(bs.NCols(), int64(rng.Intn(11)-3), coeffs...))
		}
		want, err := bs.CountByScan()
		if err != nil {
			t.Fatal(err)
		}
		got, err := CountBasicSet(bs)
		if err != nil {
			// The random constraints may fall outside the supported fragment
			// (e.g. produce unbounded relaxations); that is a legitimate
			// fallback path, not a failure.
			t.Logf("trial %d: fallback (%v)", trial, err)
			continue
		}
		if got != want {
			t.Fatalf("trial %d: symbolic %d, scan %d for %v", trial, got, want, bs)
		}
	}
}

func TestRandomParametricCardMatchesScan(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 60; trial++ {
		// Map S(i) -> T(j,k) with random constraints coupling i, j, k.
		s := presburger.NewSpace("S", "i")
		o := presburger.NewSpace("T", "j", "k")
		bm := presburger.UniverseBasicMap(s, o)
		bm = bm.AddConstraint(ineq(bm.NCols(), 0, 1, 0, 0))
		bm = bm.AddConstraint(ineq(bm.NCols(), 7, -1, 0, 0))
		bm = bm.AddConstraint(ineq(bm.NCols(), 0, 0, 1, 0))
		bm = bm.AddConstraint(ineq(bm.NCols(), int64(3+rng.Intn(5)), 0, -1, 0))
		bm = bm.AddConstraint(ineq(bm.NCols(), 0, 0, 0, 1))
		bm = bm.AddConstraint(ineq(bm.NCols(), int64(3+rng.Intn(5)), 0, 0, -1))
		for k := 0; k < 1+rng.Intn(2); k++ {
			bm = bm.AddConstraint(ineq(bm.NCols(), int64(rng.Intn(7)-1),
				int64(rng.Intn(3)-1), int64(rng.Intn(3)-1), int64(rng.Intn(3)-1)))
		}
		card, err := CardBasicMap(bm)
		if err != nil {
			t.Logf("trial %d: fallback (%v)", trial, err)
			continue
		}
		for i := int64(0); i < 8; i++ {
			fixed := bm.FixInputDim(0, i)
			want, err := fixed.CountByScan()
			if err != nil {
				t.Fatal(err)
			}
			if got := card.EvalInt([]int64{i}); got != want {
				t.Fatalf("trial %d i=%d: symbolic %d, scan %d\nmap=%v\ncard=%v",
					trial, i, got, want, bm, card)
			}
		}
	}
}

func TestPieceCountReported(t *testing.T) {
	bs := boxSet("S", 9, 9).AddConstraint(ineq(boxSet("S", 9, 9).NCols(), 0, 1, -1))
	pw, err := CardBasicSet(bs, 1, presburger.NewSpace("S", "i"))
	if err != nil {
		t.Fatal(err)
	}
	if pw.NumPieces() == 0 {
		t.Fatal("expected at least one piece")
	}
	if pw.MaxDegree() > 1 {
		t.Fatalf("triangular card should be affine, got degree %d (%v)", pw.MaxDegree(), pw)
	}
	_ = qpoly.ZeroPw(presburger.NewSpace("S", "i"))
}
