package counting

import (
	"fmt"

	"haystack/internal/budget"
	"haystack/internal/ints"
	"haystack/internal/presburger"
	"haystack/internal/qpoly"
)

// ErrBudget reports that a budgeted count exceeded its cost limit. It is an
// alias for budget.ErrExceeded, so errors.Is(err, ErrBudget) matches every
// budget.Exceeded regardless of the stage that produced it. The caller can
// fall back to a different counting strategy or to certified interval
// bounds; the result is never silently truncated.
var ErrBudget = budget.ErrExceeded

// CardBasicSet counts the integer points of bs parametrically in its first
// nParam dimensions: the result maps every value of the parameter dimensions
// to the number of points of the remaining dimensions. The piece domains of
// the result live in paramSpace (which must have nParam dimensions).
func CardBasicSet(bs presburger.BasicSet, nParam int, paramSpace presburger.Space) (qpoly.PwQPoly, error) {
	return CardBasicSetOp(bs, nParam, paramSpace, nil)
}

// CardBasicSetBudgeted is CardBasicSet with a deterministic cap on the
// number of intermediate systems the summation may fan out into (every
// (lower bound, upper bound) pair of an eliminated dimension and every
// residue class of a floor split produces one system). A budget of zero or
// below means unlimited; exceeding a positive budget returns a
// budget.Exceeded error matching ErrBudget. Callers with a cheaper exact
// fallback — like the parametric capacity counter, which can instantiate a
// piece per evaluation instead — use the budget to bound the one-time
// symbolic cost.
func CardBasicSetBudgeted(bs presburger.BasicSet, nParam int, paramSpace presburger.Space, cap int) (qpoly.PwQPoly, error) {
	return CardBasicSetOp(bs, nParam, paramSpace, budget.LimitOp("parametric count", int64(cap)))
}

// CardBasicSetOp is CardBasicSet charging the given budget operation: one
// cost unit per intermediate system of the summation. A nil op is
// unlimited.
func CardBasicSetOp(bs presburger.BasicSet, nParam int, paramSpace presburger.Space, op *budget.Op) (qpoly.PwQPoly, error) {
	summands, err := CardBasicSetSummands(bs, nParam, paramSpace, op)
	if err != nil {
		return qpoly.PwQPoly{}, err
	}
	// The summand domains may overlap (they were made disjoint only with
	// respect to the counted dimensions). Fold them into a disjoint piecewise
	// quasi-polynomial so that every parameter point is covered by exactly
	// one piece.
	result := qpoly.ZeroPw(paramSpace)
	for _, s := range summands.Terms {
		result = result.Add(s)
	}
	return result, nil
}

// CardBasicSetSummands is the sum form of CardBasicSetOp: it returns the
// per-system cardinalities as a qpoly.PwSum (overlapping domains, sum
// semantics) without the quadratic disjointness fold of CardBasicSet. For
// counts that are only evaluated — never compared piecewise — this is
// dramatically cheaper when the summation fans out into many systems. The
// budget operation is charged one cost unit per intermediate system; a nil
// op is unlimited.
func CardBasicSetSummands(bs presburger.BasicSet, nParam int, paramSpace presburger.Space, op *budget.Op) (qpoly.PwSum, error) {
	if paramSpace.Dim() != nParam {
		panic("counting: parameter space arity mismatch")
	}
	// Every surviving (lower, upper) bound pair of a summed dimension fans
	// out into its own system, and every div-referenced dimension residue
	// splits, so redundant bounds and orphaned divs multiply the work.
	// Dropping them first is exact and routinely an order of magnitude on
	// the subtraction-derived pieces of the cache model.
	trimmed, ok := bs.RemoveRedundancies()
	if !ok {
		return qpoly.ZeroSum(paramSpace), nil
	}
	presburger.DebugAssertBasicSet(trimmed, "redundancy elimination")
	sys := newSystem(trimmed, nParam)
	systems := []*system{sys}
	// Sum the counted dimensions in a fan-out-minimizing order: every
	// (lower, upper) bound pair and every residue class of a floor split
	// multiplies the system count, so dimensions that are pinned by an
	// equality or floor-free go first. Summation over integer points is
	// order independent, and the scoring is deterministic, so the result is
	// exact and reproducible. The fixed innermost-first order forced, e.g.,
	// the cache-line dimension of a triangular access to residue-split the
	// array dimension 8 ways before the cheap equality elimination could run.
	remaining := make([]int, 0, bs.NDim()-nParam)
	for dim := bs.NDim() - 1; dim >= nParam; dim-- {
		remaining = append(remaining, dim)
	}
	for len(remaining) > 0 {
		pick := 0
		best := int64(-1)
		for i, dim := range remaining {
			score := int64(0)
			for _, s := range systems {
				score += s.fanOutEstimate(dim)
			}
			if best < 0 || score < best {
				best, pick = score, i
			}
		}
		dim := remaining[pick]
		remaining = append(remaining[:pick], remaining[pick+1:]...)
		var next []*system
		for _, s := range systems {
			out, err := s.sumOutDim(dim)
			if err != nil {
				return qpoly.PwSum{}, err
			}
			for _, o := range out {
				if !o.definitelyEmpty() {
					next = append(next, o)
				}
			}
			// The fan-out compounds across elimination rounds, so the budget
			// is charged while a round accumulates, not after it: a single
			// round can otherwise burn minutes before the check runs.
			if err := op.Charge(int64(len(out))); err != nil {
				return qpoly.PwSum{}, err
			}
		}
		systems = next
	}
	result := qpoly.ZeroSum(paramSpace)
	for _, s := range systems {
		piece, err := s.toPiece(paramSpace)
		if err != nil {
			return qpoly.PwSum{}, err
		}
		if piece.Poly.IsZero() {
			continue // empty or zero-count piece
		}
		// The sum is uniquely owned here; append in place instead of paying
		// Add's defensive copy once per system.
		result.Terms = append(result.Terms, qpoly.SinglePiece(piece.Domain, piece.Poly))
	}
	return result, nil
}

// toPiece converts a fully summed system (no counted dimension referenced)
// into a result piece over the parameter space.
func (s *system) toPiece(paramSpace presburger.Space) (qpoly.Piece, error) {
	// Remap the polynomial onto the parameter variables.
	varMap := make([]int, s.ndim)
	for i := range varMap {
		if i < s.nParam {
			varMap[i] = i
		} else {
			varMap[i] = -1
		}
	}
	poly, ok := s.poly.MapVars(s.nParam, varMap)
	if !ok {
		return qpoly.Piece{}, fmt.Errorf("%w: polynomial still references a counted dimension", ErrUnsupported)
	}
	// Rebuild the domain over the parameter dimensions only: drop the counted
	// dimension columns (all unreferenced at this point).
	shift := func(v presburger.Vec) (presburger.Vec, error) {
		v = v.Resized(s.ncols())
		out := presburger.NewVec(1 + s.nParam + len(s.divs))
		out[0] = v[0]
		for i := 0; i < s.nParam; i++ {
			out[1+i] = v[s.dimCol(i)]
		}
		for i := s.nParam; i < s.ndim; i++ {
			if v[s.dimCol(i)] != 0 {
				return nil, fmt.Errorf("%w: counted dimension %d still referenced by the domain", ErrUnsupported, i)
			}
		}
		for i := range s.divs {
			out[1+s.nParam+i] = v[s.divCol(i)]
		}
		return out, nil
	}
	divs := make([]presburger.Div, len(s.divs))
	for i, d := range s.divs {
		num, err := shift(d.Num)
		if err != nil {
			return qpoly.Piece{}, err
		}
		divs[i] = presburger.Div{Num: num, Den: d.Den}
	}
	cons := make([]presburger.Constraint, len(s.cons))
	for i, c := range s.cons {
		cv, err := shift(c.C)
		if err != nil {
			return qpoly.Piece{}, err
		}
		cons[i] = presburger.Constraint{C: cv, Eq: c.Eq}
	}
	domain := presburger.NewBasicSet(paramSpace, divs, cons)
	// Normalize the domain: constant divs fold away, residue-split leftovers
	// like 63 >= 0 drop, and div numerators gcd-reduce — the canonical shape
	// the piecewise layer needs to recognize equal and disjoint domains. An
	// empty domain yields an explicit zero piece the caller skips.
	if simplified, ok := domain.Simplify(); ok {
		domain = simplified
	} else {
		return qpoly.Piece{Domain: domain, Poly: qpoly.Zero(poly.NVar)}, nil
	}
	return qpoly.Piece{Domain: domain, Poly: poly}, nil
}

// sumOutDim sums the system over dimension dim, returning the resulting
// sub-systems (one per generated piece). After the call none of the returned
// systems references dim.
func (s *system) sumOutDim(dim int) ([]*system, error) {
	// Step 1: remove dependence of divs and polynomial atoms on dim by
	// splitting dim into residue classes (rasterization at the counting
	// level). This may need several rounds for nested divs.
	systems := []*system{s}
	for round := 0; round < 8; round++ {
		var next []*system
		changed := false
		for _, sys := range systems {
			if sys.hasDimDependentFloors(dim) {
				changed = true
				split, err := sys.splitResidues(dim)
				if err != nil {
					return nil, err
				}
				next = append(next, split...)
			} else {
				next = append(next, sys)
			}
		}
		systems = next
		if !changed {
			break
		}
	}
	for _, sys := range systems {
		if sys.hasDimDependentFloors(dim) {
			return nil, fmt.Errorf("%w: could not remove floor dependence on dimension %d", ErrUnsupported, dim)
		}
	}
	// Step 2/3: eliminate via an equality or sum over the bounds.
	var out []*system
	for _, sys := range systems {
		res, err := sys.sumOutDimNoFloors(dim)
		if err != nil {
			return nil, err
		}
		out = append(out, res...)
	}
	return out, nil
}

// hasDimDependentFloors reports whether any div or polynomial atom depends on
// the dimension.
func (s *system) hasDimDependentFloors(dim int) bool {
	dep := s.divDependsOnDim(dim)
	for _, d := range dep {
		if d {
			return true
		}
	}
	return len(s.poly.AtomsDependingOnVar(dim)) > 0
}

// splitResidues splits dimension dim into residue classes modulo the least
// common multiple of the denominators of the floors that directly reference
// it, substituting dim := P*t + r (the dimension column is reused for t).
func (s *system) splitResidues(dim int) ([]*system, error) {
	col := s.dimCol(dim)
	var period int64 = 1
	for _, d := range s.divs {
		if d.Num.Resized(s.ncols())[col] != 0 {
			period = ints.LCM(period, d.Den)
		}
	}
	for _, a := range s.poly.Atoms {
		if 1+dim < len(a.Num) && a.Num[1+dim] != 0 {
			period = ints.LCM(period, a.Den)
		}
	}
	if period == 1 {
		// Only transitive dependence: substituting with period 1 makes no
		// progress; report unsupported (rare nesting case).
		return nil, fmt.Errorf("%w: nested floor dependence on dimension %d", ErrUnsupported, dim)
	}
	if period > 1024 {
		return nil, fmt.Errorf("%w: residue period %d too large", ErrUnsupported, period)
	}
	var out []*system
	for r := int64(0); r < period; r++ {
		if !s.residueFeasible(dim, period, r) {
			continue
		}
		sub, err := s.substituteProgression(dim, period, r)
		if err != nil {
			return nil, err
		}
		if !sub.definitelyEmpty() {
			out = append(out, sub)
		}
	}
	return out, nil
}

// residueFeasible is a clone-free pre-filter for residue classes: it applies
// the substitution dim := P*t + r to every equality constraint and rejects
// the class when the resulting coefficients share a factor that does not
// divide the constant (the integer-divisibility contradiction that kills
// most classes when an equality like j == 8*floor(j/8) pins the residue).
// Returning true makes no feasibility claim.
func (s *system) residueFeasible(dim int, period, r int64) bool {
	col := s.dimCol(dim)
	for _, c := range s.cons {
		if !c.Eq {
			continue
		}
		cc := c.C.Resized(s.ncols())
		a := cc[col]
		if a == 0 {
			continue
		}
		// All products are overflow-checked: this is a pre-filter, and a
		// wrapped product could silently reject a feasible residue class
		// (wrong counts), so on overflow we make no claim instead.
		g, ok := ints.TryMul(a, period)
		if !ok {
			return true
		}
		for j := 1; j < len(cc); j++ {
			if j == col {
				continue
			}
			g = ints.GCD(g, cc[j])
		}
		if g > 1 {
			ar, ok := ints.TryMul(a, r)
			if !ok {
				return true
			}
			k, ok := ints.TryAdd(cc[0], ar)
			if !ok {
				return true
			}
			if k%g != 0 {
				return false
			}
		}
	}
	return true
}

// substituteProgression substitutes dim := P*dim + r throughout the system
// (constraints, div numerators, polynomial) and simplifies divs that directly
// referenced dim into an affine part plus a new dim-free div.
func (s *system) substituteProgression(dim int, period, r int64) (*system, error) {
	out := s.clone()
	col := out.dimCol(dim)
	// The substituted coefficients a*period and constants c0 + a*r are
	// overflow-checked: a silent wrap here fabricates a different residue
	// system and corrupts counts, so overflow degrades to ErrUnsupported
	// (the caller falls back to enumeration or the bounded tier).
	subst := func(v presburger.Vec) (presburger.Vec, error) {
		a := v[col]
		if a == 0 {
			return v, nil
		}
		ar, ok1 := ints.TryMul(a, r)
		ap, ok2 := ints.TryMul(a, period)
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("%w: int64 overflow substituting progression with coefficient %d and period %d", ErrUnsupported, a, period)
		}
		k, ok := ints.TryAdd(v[0], ar)
		if !ok {
			return nil, fmt.Errorf("%w: int64 overflow substituting progression constant", ErrUnsupported)
		}
		v[0] = k
		v[col] = ap
		return v, nil
	}
	// Constraints.
	for i := range out.cons {
		c, err := subst(out.cons[i].C.Resized(out.ncols()))
		if err != nil {
			return nil, err
		}
		out.cons[i].C = c
	}
	// Div numerators.
	for i := range out.divs {
		num, err := subst(out.divs[i].Num.Resized(out.ncols()))
		if err != nil {
			return nil, err
		}
		out.divs[i].Num = num
	}
	// Now rewrite divs that reference dim directly: floor((a*P*t + rest)/den)
	// with den | a*P  ->  (a*P/den)*t + floor(rest/den).
	for i := 0; i < len(out.divs); i++ {
		num := out.divs[i].Num.Resized(out.ncols())
		a := num[col]
		if a == 0 {
			continue
		}
		den := out.divs[i].Den
		if a%den != 0 {
			return nil, fmt.Errorf("%w: residual coefficient %d not divisible by %d after progression substitution", ErrUnsupported, a, den)
		}
		rest := num.Clone()
		rest[col] = 0
		newCol := out.addDiv(rest, den)
		// Replace references to div i by (a/den)*t + newDiv.
		oldCol := out.divCol(i)
		factor := a / den
		overflow := false
		replace := func(v presburger.Vec) presburger.Vec {
			v = v.Resized(out.ncols())
			if k := v[oldCol]; k != 0 {
				kf, ok1 := ints.TryMul(k, factor)
				nc, ok2 := ints.TryAdd(v[col], kf)
				if !ok1 || !ok2 {
					overflow = true
					return v
				}
				v[col] = nc
				v[newCol] += k
				v[oldCol] = 0
			}
			return v
		}
		for j := range out.cons {
			out.cons[j].C = replace(out.cons[j].C)
		}
		for j := range out.divs {
			if j == i {
				continue
			}
			out.divs[j].Num = replace(out.divs[j].Num)
		}
		if overflow {
			return nil, fmt.Errorf("%w: int64 overflow rewriting div references under progression substitution", ErrUnsupported)
		}
		// Neutralize the old div so it no longer depends on dim (it is now
		// unreferenced).
		out.divs[i] = presburger.Div{Num: presburger.NewVec(out.ncols()), Den: 1}
	}
	// Polynomial. Two passes: first rewrite the explicit occurrences of dim
	// (which still denote the original variable) as P*t + r, then rewrite the
	// atoms that reference dim, whose replacement is already expressed in
	// terms of the new progression variable t.
	poly := out.poly
	progression := qpoly.Var(poly.NVar, dim).Scale(ints.RatInt(period)).Add(qpoly.ConstInt(poly.NVar, r))
	poly = poly.SubstitutePlainVar(dim, progression)
	for {
		idxs := directAtomRefs(poly, dim)
		if len(idxs) == 0 {
			break
		}
		idx := idxs[len(idxs)-1] // the highest dim-dependent atom is referenced by no other atom
		a := poly.Atoms[idx]
		coef := a.Num[1+dim]
		coefPeriod, ok1 := ints.TryMul(coef, period)
		coefR, ok2 := ints.TryMul(coef, r)
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("%w: int64 overflow in atom coefficient %d under period %d", ErrUnsupported, coef, period)
		}
		if coefPeriod%a.Den != 0 {
			return nil, fmt.Errorf("%w: polynomial atom coefficient %d not divisible by %d", ErrUnsupported, coefPeriod, a.Den)
		}
		// floor((coef*(P*t+r) + rest)/den) = (coef*P/den)*t + floor((coef*r + rest)/den).
		restNum := append([]int64(nil), a.Num...)
		restNum[1+dim] = 0
		rest0, ok := ints.TryAdd(restNum[0], coefR)
		if !ok {
			return nil, fmt.Errorf("%w: int64 overflow in atom constant under progression substitution", ErrUnsupported)
		}
		restNum[0] = rest0
		carrier, newIdx := poly.WithAtom(restNum, a.Den)
		repl := carrier.AtomPoly(newIdx).Add(qpoly.Var(poly.NVar, dim).Scale(ints.RatInt(coefPeriod / a.Den)))
		poly, ok = poly.SubstituteAtom(idx, repl)
		if !ok {
			return nil, fmt.Errorf("%w: atom substitution failed", ErrUnsupported)
		}
	}
	out.poly = poly
	return out, nil
}

// directAtomRefs returns the indices of atoms whose numerator directly
// references the variable.
func directAtomRefs(p qpoly.QPoly, v int) []int {
	var out []int
	for i, a := range p.Atoms {
		if 1+v < len(a.Num) && a.Num[1+v] != 0 {
			out = append(out, i)
		}
	}
	return out
}

// sumOutDimNoFloors eliminates dim under the precondition that no div or
// polynomial atom depends on it.
func (s *system) sumOutDimNoFloors(dim int) ([]*system, error) {
	col := s.dimCol(dim)
	// Equality strategy.
	for i, c := range s.cons {
		if c.Eq && c.C.Resized(s.ncols())[col] != 0 {
			return s.eliminateByEquality(dim, i)
		}
	}
	// Bound summation strategy.
	var lowers, uppers []presburger.Constraint
	var rest []presburger.Constraint
	for _, c := range s.cons {
		cc := c.C.Resized(s.ncols())
		a := cc[col]
		switch {
		case a == 0:
			rest = append(rest, presburger.Constraint{C: cc, Eq: c.Eq})
		case a > 0:
			lowers = append(lowers, presburger.Constraint{C: cc})
		default:
			uppers = append(uppers, presburger.Constraint{C: cc})
		}
	}
	if !s.poly.UsesVar(dim) && len(lowers) == 0 && len(uppers) == 0 {
		// Dimension is completely unconstrained and unused: it must have been
		// eliminated earlier (projection); treat as a single-valued
		// dimension would be wrong, so report unboundedness.
		return nil, fmt.Errorf("%w: dimension %d", ErrUnbounded, dim)
	}
	if len(lowers) == 0 || len(uppers) == 0 {
		return nil, fmt.Errorf("%w: dimension %d", ErrUnbounded, dim)
	}
	var out []*system
	for li := range lowers {
		for ui := range uppers {
			sub, err := s.sumBetweenBounds(dim, lowers, uppers, li, ui, rest)
			if err != nil {
				return nil, err
			}
			if sub != nil && !sub.definitelyEmpty() {
				out = append(out, sub)
			}
		}
	}
	return out, nil
}

// eliminateByEquality eliminates dim using the equality constraint at index
// consIdx (a*dim + e == 0).
func (s *system) eliminateByEquality(dim, consIdx int) ([]*system, error) {
	out := s.clone()
	col := out.dimCol(dim)
	c := out.cons[consIdx].C.Resized(out.ncols())
	a := c[col]
	out.cons = append(out.cons[:consIdx], out.cons[consIdx+1:]...)

	var exprVec presburger.Vec
	den := ints.Abs(a)
	// a*dim + e == 0  =>  dim = -e/a.
	exprVec = presburger.NewVec(out.ncols())
	for j := range c {
		if j == col {
			continue
		}
		if a > 0 {
			exprVec[j] = -c[j]
		} else {
			exprVec[j] = c[j]
		}
	}
	if den > 1 {
		// dim = exprVec/den: introduce the div d = floor(exprVec/den) plus a
		// divisibility constraint, and use d as the substitution expression.
		dcol := out.addDiv(exprVec, den)
		exprVec = exprVec.Resized(out.ncols())
		divisibility := exprVec.Clone()
		divisibility[dcol] -= den
		out.cons = append(out.cons, presburger.Constraint{C: divisibility, Eq: true})
		newExpr := presburger.NewVec(out.ncols())
		newExpr[dcol] = 1
		exprVec = newExpr
	}
	// Substitute in constraints and div numerators.
	substitute := func(v presburger.Vec) presburger.Vec {
		v = v.Resized(out.ncols())
		k := v[col]
		if k == 0 {
			return v
		}
		nv := v.Clone()
		for j := range nv {
			nv[j] += k * exprVec.Resized(out.ncols())[j]
		}
		nv[col] = 0
		return nv
	}
	for i := range out.cons {
		out.cons[i].C = substitute(out.cons[i].C)
	}
	for i := range out.divs {
		if out.divs[i].Num.Resized(out.ncols())[col] != 0 {
			return nil, fmt.Errorf("%w: div still depends on substituted dimension", ErrUnsupported)
		}
	}
	// Substitute in the polynomial.
	if out.poly.UsesVar(dim) {
		exprPoly := out.vecToQPoly(exprVec)
		p, ok := out.poly.SubstituteVar(dim, exprPoly)
		if !ok {
			return nil, fmt.Errorf("%w: polynomial substitution failed", ErrUnsupported)
		}
		out.poly = p
	}
	return []*system{out}, nil
}

// sumBetweenBounds produces the sub-system for the piece on which lower
// bound li and upper bound ui are the binding bounds, summing the polynomial
// over that range.
func (s *system) sumBetweenBounds(dim int, lowers, uppers []presburger.Constraint, li, ui int, rest []presburger.Constraint) (*system, error) {
	out := s.clone()
	col := out.dimCol(dim)
	out.cons = nil
	for _, c := range rest {
		out.cons = append(out.cons, presburger.Constraint{C: c.C.Clone(), Eq: c.Eq})
	}

	boundVal := func(c presburger.Constraint) (coef int64, e presburger.Vec) {
		cc := c.C.Resized(s.ncols())
		e = cc.Clone()
		coef = cc[col]
		e[col] = 0
		return coef, e
	}

	// crossDiff builds a*x - b*y per column with overflow-checked products:
	// the bound pair cross-multiplies are the largest intermediates of the
	// counting pipeline (coefficient × coefficient), and a wrapped value
	// here silently flips a dominance constraint.
	crossDiff := func(a int64, x presburger.Vec, b int64, y presburger.Vec) (presburger.Vec, error) {
		c := presburger.NewVec(out.ncols())
		xr := x.Resized(out.ncols())
		yr := y.Resized(out.ncols())
		for j := range c {
			ax, ok1 := ints.TryMul(a, xr[j])
			by, ok2 := ints.TryMul(b, yr[j])
			d, ok3 := ints.TrySub(ax, by)
			if !ok1 || !ok2 || !ok3 {
				return nil, fmt.Errorf("%w: int64 overflow in bound-pair cross product", ErrUnsupported)
			}
			c[j] = d
		}
		return c, nil
	}

	// Dominance constraints among lower bounds: chosen bound li is the
	// largest; ties are broken towards the smaller index to keep pieces
	// disjoint. lower bound value for constraint (a, e): -e/a.
	aStar, eStar := boundVal(lowers[li])
	for i := range lowers {
		if i == li {
			continue
		}
		ai, ei := boundVal(lowers[i])
		// (-eStar)/aStar >= (-ei)/ai  <=>  aStar*ei - ai*eStar >= 0
		c, err := crossDiff(aStar, ei, ai, eStar)
		if err != nil {
			return nil, err
		}
		if i < li {
			c[0]-- // strict to keep pieces disjoint
		}
		out.cons = append(out.cons, presburger.Constraint{C: c})
	}
	bStar, fStar := boundVal(uppers[ui])
	bStar = -bStar
	for j := range uppers {
		if j == ui {
			continue
		}
		bj, fj := boundVal(uppers[j])
		bj = -bj
		// fStar/bStar <= fj/bj  <=>  bStar*fj - bj*fStar >= 0
		c, err := crossDiff(bStar, fj, bj, fStar)
		if err != nil {
			return nil, err
		}
		if j < ui {
			c[0]--
		}
		out.cons = append(out.cons, presburger.Constraint{C: c})
	}

	// Bound expressions: lo = ceil(-eStar/aStar), hi = floor(fStar/bStar).
	loVec, loPoly, err := out.ceilExpr(eStar.Neg(), aStar)
	if err != nil {
		return nil, err
	}
	hiVec, hiPoly, err := out.floorExpr(fStar, bStar)
	if err != nil {
		return nil, err
	}
	// Piece requires lo <= hi: hi - lo >= 0.
	nonEmpty := presburger.NewVec(out.ncols())
	for j := range nonEmpty {
		nonEmpty[j] = hiVec.Resized(out.ncols())[j] - loVec.Resized(out.ncols())[j]
	}
	out.cons = append(out.cons, presburger.Constraint{C: nonEmpty})

	sum, ok := qpoly.SumOverRange(out.poly, dim, loPoly, hiPoly)
	if !ok {
		return nil, fmt.Errorf("%w: symbolic summation over dimension %d failed", ErrUnsupported, dim)
	}
	out.poly = sum
	return out, nil
}

// ceilExpr returns ceil(e/a) for a > 0 as a column vector (adding a div when
// a > 1) together with the equivalent quasi-polynomial.
func (s *system) ceilExpr(e presburger.Vec, a int64) (presburger.Vec, qpoly.QPoly, error) {
	if a <= 0 {
		return nil, qpoly.QPoly{}, fmt.Errorf("%w: non-positive bound coefficient", ErrUnsupported)
	}
	if a == 1 {
		v := e.Resized(s.ncols())
		return v, s.vecToQPoly(v), nil
	}
	// ceil(e/a) = floor((e + a - 1)/a)
	num := e.Resized(s.ncols()).Clone()
	num[0] += a - 1
	return s.floorExpr(num, a)
}

// floorExpr returns floor(e/a) for a > 0 as a column vector (adding a div
// when a > 1) together with the equivalent quasi-polynomial.
func (s *system) floorExpr(e presburger.Vec, a int64) (presburger.Vec, qpoly.QPoly, error) {
	if a <= 0 {
		return nil, qpoly.QPoly{}, fmt.Errorf("%w: non-positive bound coefficient", ErrUnsupported)
	}
	if a == 1 {
		v := e.Resized(s.ncols())
		return v, s.vecToQPoly(v), nil
	}
	dcol := s.addDiv(e.Resized(s.ncols()), a)
	v := presburger.NewVec(s.ncols())
	v[dcol] = 1
	return v, s.vecToQPoly(v), nil
}
