package counting

import (
	"errors"
	"fmt"
	"math"

	"haystack/internal/budget"
	"haystack/internal/presburger"
)

// Interval is a certified two-sided bound on an integer point count:
// the exact count is guaranteed to satisfy Lo <= count <= Hi. Exact counts
// are represented as width-0 intervals so every pipeline result carries
// coherent bounds.
type Interval struct {
	Lo, Hi int64
}

// Exact returns the width-0 interval [n, n].
func Exact(n int64) Interval { return Interval{Lo: n, Hi: n} }

// IsExact reports whether the interval pins a single value.
func (iv Interval) IsExact() bool { return iv.Lo == iv.Hi }

// Width returns Hi - Lo (0 for exact results), saturating on overflow.
func (iv Interval) Width() int64 { return satSub(iv.Hi, iv.Lo) }

// Contains reports whether n lies within the interval.
func (iv Interval) Contains(n int64) bool { return iv.Lo <= n && n <= iv.Hi }

// Add returns the interval sum (sound for sums of independent counts),
// saturating on overflow.
func (iv Interval) Add(o Interval) Interval {
	return Interval{Lo: satAdd(iv.Lo, o.Lo), Hi: satAdd(iv.Hi, o.Hi)}
}

// AddConst shifts both bounds by n.
func (iv Interval) AddConst(n int64) Interval { return iv.Add(Exact(n)) }

// ClampHi lowers Hi to hi if the current Hi exceeds it (used to intersect
// with an independently known upper bound; sound because the true count
// satisfies both).
func (iv Interval) ClampHi(hi int64) Interval {
	if iv.Hi > hi {
		iv.Hi = hi
	}
	if iv.Lo > iv.Hi {
		iv.Lo = iv.Hi
	}
	return iv
}

func (iv Interval) String() string {
	if iv.IsExact() {
		return fmt.Sprintf("%d", iv.Lo)
	}
	return fmt.Sprintf("[%d, %d]", iv.Lo, iv.Hi)
}

func satAdd(a, b int64) int64 {
	s := a + b
	if a > 0 && b > 0 && s < a {
		return math.MaxInt64
	}
	if a < 0 && b < 0 && s > a {
		return math.MinInt64
	}
	return s
}

func satSub(a, b int64) int64 { return satAdd(a, -b) }

func satMul(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	p := a * b
	if p/b != a {
		if (a > 0) == (b > 0) {
			return math.MaxInt64
		}
		return math.MinInt64
	}
	return p
}

// DefaultMaxEnum is the default cap on the number of points the certified
// lower bound may enumerate when a symbolic count degrades.
const DefaultMaxEnum = 4096

// errEnumCap aborts a bounded scan once the enumeration cap is reached.
var errEnumCap = errors.New("counting: enumeration cap reached")

// BoxBounds returns per-dimension constant bounds of a box enclosing bs.
// It first harvests the constant bounds implied by single-dimension
// constraints (ConstBounds); dimensions still unbounded on a side are
// retried on the approximate projection of bs onto that dimension alone —
// the projection is a superset, so its constant bounds are valid for bs.
// ok is false if any dimension remains unbounded on either side.
func BoxBounds(bs presburger.BasicSet) (lo, hi []int64, ok bool) {
	n := bs.NDim()
	clo, chi, hasLo, hasHi := bs.ConstBounds()
	for d := 0; d < n; d++ {
		if hasLo[d] && hasHi[d] {
			continue
		}
		p := bs
		if d+1 < n {
			p = p.ProjectOutApprox(d+1, n-d-1)
		}
		if d > 0 {
			p = p.ProjectOutApprox(0, d)
		}
		plo, phi, pHasLo, pHasHi := p.ConstBounds()
		if !hasLo[d] && pHasLo[0] {
			clo[d], hasLo[d] = plo[0], true
		}
		if !hasHi[d] && pHasHi[0] {
			chi[d], hasHi[d] = phi[0], true
		}
		if !hasLo[d] || !hasHi[d] {
			return nil, nil, false
		}
	}
	return clo, chi, true
}

// BoxCountUpper returns a certified upper bound on the number of integer
// points of bs: the volume of its bounding box. Dropping every constraint
// that couples dimensions is a relaxation, so bs is contained in the box
// and the box volume over-approximates the count. ok is false when the box
// is unbounded (no finite certified upper bound available).
func BoxCountUpper(bs presburger.BasicSet) (int64, bool) {
	if bs.DefinitelyEmpty() {
		return 0, true
	}
	lo, hi, ok := BoxBounds(bs)
	if !ok {
		return 0, false
	}
	total := int64(1)
	for d := range lo {
		w := satSub(hi[d], lo[d]) // box side length - 1
		if w < 0 {
			return 0, true // empty box: lo > hi on some dimension
		}
		total = satMul(total, satAdd(w, 1))
	}
	return total, true
}

// enumCheckStride bounds how many enumerated points pass between two
// cancellation checks during a bounded scan.
const enumCheckStride = 1024

// scanLower enumerates up to maxEnum distinct points of scan (a closure
// over BasicSet.Scan or Set.Scan). Every enumerated point is a member of
// the set, so the returned count is a certified lower bound; complete is
// true when enumeration finished without hitting the cap, in which case the
// count is exact. A scan failure (e.g. an unbounded direction) ends the
// enumeration early: the prefix already seen remains a valid lower bound.
func scanLower(scan func(fn func([]int64) error) error, op *budget.Op, maxEnum int64) (count int64, complete bool, err error) {
	if maxEnum <= 0 {
		maxEnum = DefaultMaxEnum
	}
	scanErr := scan(func([]int64) error {
		count++
		if count%enumCheckStride == 0 {
			if cerr := op.Err(); cerr != nil {
				return cerr
			}
		}
		if count >= maxEnum {
			return errEnumCap
		}
		return nil
	})
	switch {
	case scanErr == nil:
		return count, true, nil
	case errors.Is(scanErr, errEnumCap):
		return count, false, nil
	case budget.IsCancellation(scanErr):
		return count, false, scanErr
	default:
		// Enumeration itself failed (unbounded set, unsupported fragment):
		// the points seen so far are still certified members.
		return count, false, nil
	}
}

// CountBasicSetInterval counts the integer points of bs, degrading to a
// certified interval when the symbolic count exceeds the budget operation
// or leaves the supported fragment. The lower bound is an enumeration
// prefix (every enumerated point is a distinct member); the upper bound is
// the bounding-box volume. Cancellation errors abort instead of degrading.
func CountBasicSetInterval(bs presburger.BasicSet, op *budget.Op, maxEnum int64) (Interval, error) {
	n, serr := CountBasicSetOp(bs, op)
	if serr == nil {
		return Exact(n), nil
	}
	if budget.IsCancellation(serr) {
		return Interval{}, serr
	}
	lo, complete, err := scanLower(bs.Scan, op, maxEnum)
	if err != nil {
		return Interval{}, err
	}
	if complete {
		return Exact(lo), nil
	}
	hi, ok := BoxCountUpper(bs)
	if !ok {
		return Interval{}, fmt.Errorf("no certified upper bound (unbounded box): %w", serr)
	}
	return Interval{Lo: lo, Hi: hi}, nil
}

// CountSetInterval counts the distinct integer points of s, degrading to a
// certified interval on budget or fragment failure. The degraded upper
// bound sums the per-basic-set box volumes of the coalesced union —
// overlap between basic sets only over-counts upward, so the sum stays a
// sound upper bound. The lower bound enumerates distinct points of the
// union (deduplicated) up to the cap; if enumeration completes the result
// is exact even though the symbolic count failed.
func CountSetInterval(s presburger.Set, op *budget.Op, maxEnum int64) (Interval, error) {
	n, serr := CountSetOp(s, op)
	if serr == nil {
		return Exact(n), nil
	}
	if budget.IsCancellation(serr) {
		return Interval{}, serr
	}
	lo, complete, err := scanLower(s.Scan, op, maxEnum)
	if err != nil {
		return Interval{}, err
	}
	if complete {
		return Exact(lo), nil
	}
	coalesced := s.Coalesce()
	var hi int64
	for _, bs := range coalesced.Basics() {
		bhi, ok := BoxCountUpper(bs)
		if !ok {
			return Interval{}, fmt.Errorf("no certified upper bound (unbounded box): %w", serr)
		}
		hi = satAdd(hi, bhi)
	}
	return Interval{Lo: lo, Hi: hi}, nil
}
