package parwork

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestRunVisitsEveryItemOnce(t *testing.T) {
	for _, workers := range []int{1, 3, 16} {
		n := 100
		visits := make([]int32, n)
		err := Run(n, workers, func(item int) error {
			atomic.AddInt32(&visits[item], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range visits {
			if v != 1 {
				t.Fatalf("workers=%d: item %d visited %d times", workers, i, v)
			}
		}
	}
}

func TestRunReturnsLowestIndexedError(t *testing.T) {
	boom := errors.New("boom")
	err := Run(10, 1, func(item int) error {
		if item >= 4 {
			return fmt.Errorf("item %d: %w", item, boom)
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("error not propagated: %v", err)
	}
	if got, want := err.Error(), "item 4: boom"; got != want {
		t.Fatalf("sequential run must fail at the first failing item: got %q, want %q", got, want)
	}
}

func TestRunStopsClaimingAfterFailure(t *testing.T) {
	var ran atomic.Int32
	err := Run(1000, 2, func(item int) error {
		ran.Add(1)
		return errors.New("fail fast")
	})
	if err == nil {
		t.Fatal("expected an error")
	}
	if n := ran.Load(); n > 2 {
		t.Fatalf("pool kept claiming items after failure: %d ran", n)
	}
}

func TestRunTimedReportsPerWorkerTimes(t *testing.T) {
	workerSeen := make([]int32, 3)
	times, err := RunTimed(30, 3, func(worker, item int) error {
		atomic.AddInt32(&workerSeen[worker], 1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(times) != 3 {
		t.Fatalf("times = %v, want 3 entries", times)
	}
	var total int32
	for _, n := range workerSeen {
		total += n
	}
	if total != 30 {
		t.Fatalf("items processed = %d, want 30", total)
	}
}

func TestRunClampsWorkers(t *testing.T) {
	times, err := RunTimed(2, 16, func(worker, item int) error {
		if worker < 0 || worker >= 2 {
			return fmt.Errorf("worker id %d out of range", worker)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(times) != 2 {
		t.Fatalf("expected the pool to clamp to 2 workers, got %d", len(times))
	}
}

func TestRunZeroItems(t *testing.T) {
	if err := Run(0, 4, func(int) error { return errors.New("must not run") }); err != nil {
		t.Fatal(err)
	}
}

func TestPanicRecoveredAsTypedError(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var ran atomic.Int32
		err := Run(100, workers, func(item int) error {
			ran.Add(1)
			if item == 7 {
				panic("kaboom")
			}
			return nil
		})
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: want *PanicError, got %T: %v", workers, err, err)
		}
		if pe.Item != 7 || pe.Value != "kaboom" {
			t.Fatalf("workers=%d: bad panic identity: %+v", workers, pe)
		}
		if len(pe.Stack) == 0 {
			t.Fatalf("workers=%d: panic error must carry the stack", workers)
		}
		if workers > 1 && ran.Load() == 100 {
			t.Fatalf("workers=%d: siblings kept claiming after the panic", workers)
		}
	}
}

func TestPanicDoesNotMaskLowerIndexedError(t *testing.T) {
	boom := errors.New("boom")
	err := Run(10, 1, func(item int) error {
		if item == 3 {
			return boom
		}
		if item > 3 {
			panic("must not run past the failure")
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want the plain error", err)
	}
}

func TestRunCtxObservesCancellation(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var ran atomic.Int32
		err := RunCtx(ctx, 10000, workers, func(item int) error {
			if ran.Add(1) == 3 {
				cancel()
			}
			return nil
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: want context.Canceled, got %v", workers, err)
		}
		if n := ran.Load(); n > int32(3+workers) {
			t.Fatalf("workers=%d: pool claimed %d items after cancellation", workers, n)
		}
	}
}

func TestRunCtxNilSafeDefaults(t *testing.T) {
	if err := RunCtx(context.Background(), 5, 2, func(int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if _, err := RunTimedCtx(context.Background(), 5, 2, func(int, int) error { return nil }); err != nil {
		t.Fatal(err)
	}
}
