package parwork

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestRunVisitsEveryItemOnce(t *testing.T) {
	for _, workers := range []int{1, 3, 16} {
		n := 100
		visits := make([]int32, n)
		err := Run(n, workers, func(item int) error {
			atomic.AddInt32(&visits[item], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range visits {
			if v != 1 {
				t.Fatalf("workers=%d: item %d visited %d times", workers, i, v)
			}
		}
	}
}

func TestRunReturnsLowestIndexedError(t *testing.T) {
	boom := errors.New("boom")
	err := Run(10, 1, func(item int) error {
		if item >= 4 {
			return fmt.Errorf("item %d: %w", item, boom)
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("error not propagated: %v", err)
	}
	if got, want := err.Error(), "item 4: boom"; got != want {
		t.Fatalf("sequential run must fail at the first failing item: got %q, want %q", got, want)
	}
}

func TestRunStopsClaimingAfterFailure(t *testing.T) {
	var ran atomic.Int32
	err := Run(1000, 2, func(item int) error {
		ran.Add(1)
		return errors.New("fail fast")
	})
	if err == nil {
		t.Fatal("expected an error")
	}
	if n := ran.Load(); n > 2 {
		t.Fatalf("pool kept claiming items after failure: %d ran", n)
	}
}

func TestRunTimedReportsPerWorkerTimes(t *testing.T) {
	workerSeen := make([]int32, 3)
	times, err := RunTimed(30, 3, func(worker, item int) error {
		atomic.AddInt32(&workerSeen[worker], 1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(times) != 3 {
		t.Fatalf("times = %v, want 3 entries", times)
	}
	var total int32
	for _, n := range workerSeen {
		total += n
	}
	if total != 30 {
		t.Fatalf("items processed = %d, want 30", total)
	}
}

func TestRunClampsWorkers(t *testing.T) {
	times, err := RunTimed(2, 16, func(worker, item int) error {
		if worker < 0 || worker >= 2 {
			return fmt.Errorf("worker id %d out of range", worker)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(times) != 2 {
		t.Fatalf("expected the pool to clamp to 2 workers, got %d", len(times))
	}
}

func TestRunZeroItems(t *testing.T) {
	if err := Run(0, 4, func(int) error { return errors.New("must not run") }); err != nil {
		t.Fatal(err)
	}
}
