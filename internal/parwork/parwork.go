// Package parwork runs independent work items on a small pool of worker
// goroutines. It is the shared fan-out primitive of the analysis pipeline.
//
// The pool schedules *groups* of items through per-worker deques with work
// stealing: a worker pushes the groups it spawns onto its own deque and
// drains them newest-first (depth-first, cache-warm), while idle workers
// steal the oldest queued group of a victim (the largest unit of pending
// work). Items of a claimed group are handed out one at a time, so a single
// large group fans out across every idle worker instead of pinning one.
//
// Work is splittable: an item executing on a worker may call
// Worker.RunGroup to spawn a nested group of sub-items. The spawning worker
// helps drain the pool while it waits for its group (it never blocks a pool
// slot), so nesting is deadlock-free at any worker count, including one.
// Results are written to caller-owned, index-addressed slots (no channels,
// no locks on the result path), and callers keep determinism by folding
// their per-item results in item order afterwards.
//
// Fault containment: a panicking work item is recovered, stamped with its
// stack and work-item identity (which survives stealing), and surfaced as a
// typed *PanicError — a crashing item fails its group like an erroring item
// instead of killing the process. After a failure no further items of the
// group are claimed. Cancellation is observed between items: a runaway
// analysis stops claiming work promptly after its context fires.
//
// The legacy entry points (Run, RunCtx, RunTimed, RunTimedCtx) are thin
// wrappers creating a transient pool per call; long-lived callers (sweeps)
// share one Pool across phases so idle workers can steal chamber-level
// units from whichever analysis is still running.
package parwork

import (
	"context"
	"fmt"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// PanicError reports a panic recovered from a work item. The pool survives:
// sibling workers stop claiming items of the group and the error is
// returned like any other item failure. Item is the index within the
// group the item was spawned into, so identity is preserved even when the
// item was stolen by another worker.
type PanicError struct {
	Item   int    // work item that panicked (group-relative index)
	Worker int    // worker id that ran the item
	Value  any    // the recovered panic value
	Stack  []byte // stack of the panicking goroutine at recovery
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("parwork: panic on item %d (worker %d): %v\n%s", e.Item, e.Worker, e.Value, e.Stack)
}

// GroupFunc is the work function of a group: it receives the worker
// executing the item (usable as an Exec for spawning nested groups) and the
// item index 0..n-1.
type GroupFunc func(w *Worker, item int) error

// Exec runs groups of independent items. It is implemented by *Pool
// (submission from a coordinating goroutine that is not itself a pool
// worker) and by *Worker (submission from inside a running item, which
// helps drain the pool while waiting). An Exec with Workers() == 1 may run
// everything inline on the calling goroutine.
type Exec interface {
	// RunGroup executes fn(w, 0..n-1), stops claiming items after the first
	// failure or cancellation, and returns the error of the lowest-indexed
	// failed item (or the context error).
	RunGroup(ctx context.Context, n int, fn GroupFunc) error
	// RunGroupTimed is RunGroup additionally reporting every pool worker's
	// busy time: the sum of the wall-clock durations of the items of this
	// group the worker executed. A worker that claimed no item of the group
	// reports zero. The slice has Workers() entries and is returned even
	// alongside a non-nil error.
	RunGroupTimed(ctx context.Context, n int, fn GroupFunc) ([]time.Duration, error)
	// Workers returns the parallelism of the executor.
	Workers() int
	// PoolStats returns the scheduling counters of the underlying pool
	// (zeros for an inline executor).
	PoolStats() PoolStats
}

// PoolStats are the monotonic scheduling counters of a pool.
type PoolStats struct {
	// Steals counts items claimed from another worker's deque.
	Steals int64
	// Splits counts groups spawned from inside a running item
	// (Worker.RunGroup), i.e. work items that split into sub-items.
	Splits int64
}

// group is one RunGroup call: a block of n items claimed one at a time.
type group struct {
	ctx       context.Context
	fn        GroupFunc
	n         int
	next      int  // next unclaimed item (guarded by the pool mutex)
	pending   int  // items not yet finished or skipped
	home      int  // deque the group was pushed to; -1 for the inbox
	queued    bool // still sitting in a deque or the inbox
	failed    bool
	cancelled bool
	done      bool
	errs      []error
	times     []time.Duration
}

// err returns the group outcome: the error of the lowest-indexed failed
// item, the context error after a cancellation, or nil.
func (g *group) err() error {
	for _, e := range g.errs {
		if e != nil {
			return e
		}
	}
	if g.cancelled {
		return g.ctx.Err()
	}
	return nil
}

// Pool is a fixed set of worker goroutines sharing work through per-worker
// deques with stealing. Create with NewPool, release with Close. All
// methods are safe for concurrent use; groups submitted concurrently share
// the workers.
type Pool struct {
	mu     sync.Mutex
	cond   *sync.Cond
	deques [][]*group // per-worker queues of groups with unclaimed items
	inbox  []*group   // groups submitted by non-worker goroutines
	closed bool
	nw     int
	steals atomic.Int64
	splits atomic.Int64
	wg     sync.WaitGroup
}

// NewPool starts a pool with the given number of worker goroutines (values
// below one are clamped to one).
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	p := &Pool{nw: workers, deques: make([][]*group, workers)}
	p.cond = sync.NewCond(&p.mu)
	for i := 0; i < workers; i++ {
		w := &Worker{p: p, id: i}
		p.wg.Add(1)
		go p.workerLoop(w)
	}
	return p
}

// Close stops the workers after the queued work drains. It must be called
// after every RunGroup call on the pool has returned.
func (p *Pool) Close() {
	p.mu.Lock()
	p.closed = true
	p.cond.Broadcast()
	p.mu.Unlock()
	p.wg.Wait()
}

// Workers returns the number of worker goroutines of the pool.
func (p *Pool) Workers() int { return p.nw }

// PoolStats returns the monotonic scheduling counters of the pool.
func (p *Pool) PoolStats() PoolStats {
	return PoolStats{Steals: p.steals.Load(), Splits: p.splits.Load()}
}

// RunGroup submits a group from a coordinating goroutine and waits for it.
func (p *Pool) RunGroup(ctx context.Context, n int, fn GroupFunc) error {
	_, err := p.RunGroupTimed(ctx, n, fn)
	return err
}

// RunGroupTimed submits a group from a coordinating goroutine and waits for
// it, reporting per-worker busy time. The coordinator does not execute
// items itself; the pool workers claim them.
func (p *Pool) RunGroupTimed(ctx context.Context, n int, fn GroupFunc) ([]time.Duration, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	g := &group{ctx: ctx, fn: fn, n: n, pending: n, home: -1,
		errs: make([]error, n), times: make([]time.Duration, p.nw)}
	if n == 0 {
		return g.times, ctx.Err()
	}
	p.mu.Lock()
	p.inbox = append(p.inbox, g)
	g.queued = true
	p.cond.Broadcast()
	for !g.done {
		p.cond.Wait()
	}
	p.mu.Unlock()
	return g.times, g.err()
}

// workerLoop claims and executes items until the pool closes.
func (p *Pool) workerLoop(w *Worker) {
	defer p.wg.Done()
	p.mu.Lock()
	for {
		g, item := p.claimLocked(w.id)
		if g != nil {
			p.mu.Unlock()
			p.execute(w, g, item)
			p.mu.Lock()
			continue
		}
		if p.closed {
			break
		}
		p.cond.Wait()
	}
	p.mu.Unlock()
}

// claimLocked picks the next item for worker wid: its own deque newest
// group first (depth-first keeps a splitting worker on its own sub-tree),
// then the inbox oldest first, then stealing the oldest queued group of
// another worker — the unit with the most unclaimed work. A failed claim
// always dequeues the inspected group, so each queue is drained by
// re-inspecting the same end. Returns (nil, 0) when nothing is claimable.
func (p *Pool) claimLocked(wid int) (*group, int) {
	for len(p.deques[wid]) > 0 {
		g := p.deques[wid][len(p.deques[wid])-1]
		if item, ok := p.claimFromLocked(g); ok {
			return g, item
		}
	}
	for len(p.inbox) > 0 {
		g := p.inbox[0]
		if item, ok := p.claimFromLocked(g); ok {
			return g, item
		}
	}
	for off := 1; off < p.nw; off++ {
		v := (wid + off) % p.nw
		for len(p.deques[v]) > 0 {
			g := p.deques[v][0]
			if item, ok := p.claimFromLocked(g); ok {
				p.steals.Add(1)
				return g, item
			}
		}
	}
	return nil, 0
}

// claimFromLocked claims one item of g, dequeuing the group once it has no
// further claimable items. Cancellation and failure are checked per claim.
func (p *Pool) claimFromLocked(g *group) (int, bool) {
	if !g.failed && !g.cancelled && g.ctx.Err() != nil {
		g.cancelled = true
		p.skipRestLocked(g)
	}
	if g.failed || g.cancelled || g.next >= g.n {
		p.dequeueLocked(g)
		return 0, false
	}
	item := g.next
	g.next++
	if g.next >= g.n {
		p.dequeueLocked(g)
	}
	return item, true
}

// skipRestLocked accounts the unclaimed items of a failed or cancelled
// group as finished so the group can complete.
func (p *Pool) skipRestLocked(g *group) {
	skipped := g.n - g.next
	g.next = g.n
	g.pending -= skipped
	p.dequeueLocked(g)
	if g.pending <= 0 && !g.done {
		g.done = true
		p.cond.Broadcast()
	}
}

// dequeueLocked removes g from its queue (no-op if already removed).
func (p *Pool) dequeueLocked(g *group) {
	if !g.queued {
		return
	}
	g.queued = false
	q := &p.inbox
	if g.home >= 0 {
		q = &p.deques[g.home]
	}
	for i, x := range *q {
		if x == g {
			*q = append((*q)[:i], (*q)[i+1:]...)
			return
		}
	}
}

// execute runs one claimed item and accounts its outcome.
func (p *Pool) execute(w *Worker, g *group, item int) {
	t0 := time.Now()
	err := protectGroup(g.fn, w, item)
	dt := time.Since(t0)
	p.mu.Lock()
	g.times[w.id] += dt
	if err != nil {
		g.errs[item] = err
		if !g.failed {
			g.failed = true
			skipped := g.n - g.next
			g.next = g.n
			g.pending -= skipped
			p.dequeueLocked(g)
		}
	}
	g.pending--
	if g.pending <= 0 && !g.done {
		g.done = true
		p.cond.Broadcast()
	}
	p.mu.Unlock()
}

// Worker is the execution context of a running item. It implements Exec:
// a group spawned through it goes onto the worker's own deque (stealable by
// idle workers), and the worker helps drain the pool while waiting for the
// group instead of blocking a pool slot. The zero Worker (or InlineExec) is
// a valid single-threaded executor running everything inline.
type Worker struct {
	p  *Pool // nil for the inline executor
	id int
}

// InlineExec returns an executor that runs every group inline on the
// calling goroutine, with no pool and no extra goroutines.
func InlineExec() Exec { return &Worker{} }

// NewExec returns an executor with the given parallelism together with a
// release function: an inline executor for one worker (release is a no-op),
// a fresh pool otherwise (release closes it).
func NewExec(workers int) (Exec, func()) {
	if workers <= 1 {
		return InlineExec(), func() {}
	}
	p := NewPool(workers)
	return p, p.Close
}

// ID returns the pool worker id (0 for the inline executor). Callers use it
// to index per-worker accumulators.
func (w *Worker) ID() int { return w.id }

// Workers returns the parallelism of the pool the worker belongs to.
func (w *Worker) Workers() int {
	if w.p == nil {
		return 1
	}
	return w.p.nw
}

// PoolStats returns the scheduling counters of the worker's pool.
func (w *Worker) PoolStats() PoolStats {
	if w.p == nil {
		return PoolStats{}
	}
	return w.p.PoolStats()
}

// RunGroup spawns a nested group and helps the pool until it completes.
func (w *Worker) RunGroup(ctx context.Context, n int, fn GroupFunc) error {
	_, err := w.RunGroupTimed(ctx, n, fn)
	return err
}

// RunGroupTimed spawns a nested group onto the worker's own deque and
// executes pool work (its own items first, then anything stealable) until
// the group completes, reporting per-worker busy time for the group.
func (w *Worker) RunGroupTimed(ctx context.Context, n int, fn GroupFunc) ([]time.Duration, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if w.p == nil {
		return runInline(ctx, w, n, fn)
	}
	p := w.p
	g := &group{ctx: ctx, fn: fn, n: n, pending: n, home: w.id,
		errs: make([]error, n), times: make([]time.Duration, p.nw)}
	if n == 0 {
		return g.times, ctx.Err()
	}
	p.splits.Add(1)
	p.mu.Lock()
	p.deques[w.id] = append(p.deques[w.id], g)
	g.queued = true
	p.cond.Broadcast()
	for !g.done {
		g2, item := p.claimLocked(w.id)
		if g2 != nil {
			p.mu.Unlock()
			p.execute(w, g2, item)
			p.mu.Lock()
			continue
		}
		p.cond.Wait()
	}
	p.mu.Unlock()
	return g.times, g.err()
}

// runInline executes a group serially on the calling goroutine, reusing the
// inline worker as the execution context so nested spawns stay inline.
func runInline(ctx context.Context, w *Worker, n int, fn GroupFunc) ([]time.Duration, error) {
	times := make([]time.Duration, 1)
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return times, err
		}
		t0 := time.Now()
		err := protectGroup(fn, w, i)
		times[0] += time.Since(t0)
		if err != nil {
			return times, err
		}
	}
	return times, nil
}

// protectGroup invokes fn(w, item), converting a panic into a *PanicError
// so one crashing item cannot take down the process.
func protectGroup(fn GroupFunc, w *Worker, item int) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &PanicError{Item: item, Worker: w.id, Value: v, Stack: debug.Stack()}
		}
	}()
	return fn(w, item)
}

// Run executes fn(0..n-1) on up to workers goroutines (values below one, or
// above n, are clamped). When an item fails no further items are claimed and
// the error of the lowest-indexed failed item is returned. fn must write its
// result to a caller-owned slot at the item index; it is called exactly once
// per claimed item.
func Run(n, workers int, fn func(item int) error) error {
	_, err := run(context.Background(), n, workers, false, func(_, item int) error { return fn(item) })
	return err
}

// RunCtx is Run observing ctx: no new item is claimed after ctx is
// cancelled, and the context error is returned (items already running are
// completed — fn observes cancellation itself if it needs mid-item aborts).
func RunCtx(ctx context.Context, n, workers int, fn func(item int) error) error {
	_, err := run(ctx, n, workers, false, func(_, item int) error { return fn(item) })
	return err
}

// RunTimed is Run with per-worker bookkeeping: fn additionally receives the
// worker id (0 <= worker < len(times)) and the returned slice holds every
// worker's busy time — the accumulated wall-clock time of the items it
// executed, not the goroutine lifetime, so claim overhead and post-failure
// spin-down are excluded and a worker that claimed nothing reports zero.
func RunTimed(n, workers int, fn func(worker, item int) error) (times []time.Duration, err error) {
	return run(context.Background(), n, workers, true, fn)
}

// RunTimedCtx is RunTimed observing ctx between items.
func RunTimedCtx(ctx context.Context, n, workers int, fn func(worker, item int) error) (times []time.Duration, err error) {
	return run(ctx, n, workers, true, fn)
}

// HardestFirst returns the permutation of 0..len(weights)-1 that orders
// items by descending weight (stable, so equal weights keep item order).
// Pools whose items vary by orders of magnitude schedule through it —
// fn(order[scheduled]) — so a giant item claimed last cannot stall the pool
// while the other workers idle. The permutation affects execution order
// only; results stay index-addressed and deterministic.
func HardestFirst(weights []int) []int {
	order := make([]int, len(weights))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return weights[order[a]] > weights[order[b]] })
	return order
}

// run is the transient-pool implementation behind the legacy entry points.
func run(ctx context.Context, n, workers int, timed bool, fn func(worker, item int) error) ([]time.Duration, error) {
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	gf := func(w *Worker, item int) error { return fn(w.id, item) }
	if workers == 1 {
		// Degenerate pool: run inline so single-threaded callers pay no
		// goroutine or lock overhead. Panic containment and cancellation
		// semantics match the pooled path.
		times, err := runInline(ctx, &Worker{}, n, gf)
		if err != nil {
			return nil, err
		}
		if !timed {
			return nil, nil
		}
		return times, nil
	}
	p := NewPool(workers)
	defer p.Close()
	times, err := p.RunGroupTimed(ctx, n, gf)
	if err != nil {
		return nil, err
	}
	if !timed {
		return nil, nil
	}
	return times, nil
}
