// Package parwork runs a fixed number of independent work items on a small
// pool of worker goroutines. It is the shared fan-out primitive of the
// analysis pipeline: items are claimed from an atomic counter (cheap dynamic
// load balancing for very unevenly sized items), results are written to
// caller-owned, index-addressed slots (no channels, no locks on the result
// path), and after a failure the pool stops claiming new items. Callers keep
// determinism by folding their per-item results in item order afterwards.
package parwork

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Run executes fn(0..n-1) on up to workers goroutines (values below one, or
// above n, are clamped). When an item fails no further items are claimed and
// the error of the lowest-indexed failed item is returned. fn must write its
// result to a caller-owned slot at the item index; it is called exactly once
// per claimed item.
func Run(n, workers int, fn func(item int) error) error {
	_, err := run(n, workers, false, func(_, item int) error { return fn(item) })
	return err
}

// RunTimed is Run with per-worker bookkeeping: fn additionally receives the
// worker id (0 <= worker < len(times)) and the returned slice holds every
// worker's busy time. It is used where per-worker accumulators avoid
// contention and the coordinator merges them in worker order afterwards.
func RunTimed(n, workers int, fn func(worker, item int) error) (times []time.Duration, err error) {
	return run(n, workers, true, fn)
}

// HardestFirst returns the permutation of 0..len(weights)-1 that orders
// items by descending weight (stable, so equal weights keep item order).
// Pools whose items vary by orders of magnitude schedule through it —
// fn(order[scheduled]) — so a giant item claimed last cannot stall the pool
// while the other workers idle. The permutation affects execution order
// only; results stay index-addressed and deterministic.
func HardestFirst(weights []int) []int {
	order := make([]int, len(weights))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return weights[order[a]] > weights[order[b]] })
	return order
}

func run(n, workers int, timed bool, fn func(worker, item int) error) ([]time.Duration, error) {
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	if workers == 1 {
		// Degenerate pool: run inline so single-threaded callers pay no
		// goroutine or atomic overhead.
		var times []time.Duration
		start := time.Now()
		for i := 0; i < n; i++ {
			if err := fn(0, i); err != nil {
				return nil, err
			}
		}
		if timed {
			times = []time.Duration{time.Since(start)}
		}
		return times, nil
	}
	errs := make([]error, n)
	times := make([]time.Duration, workers)
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			start := time.Now()
			for !failed.Load() {
				item := int(next.Add(1)) - 1
				if item >= n {
					break
				}
				if err := fn(w, item); err != nil {
					errs[item] = err
					failed.Store(true)
					break
				}
			}
			times[w] = time.Since(start)
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if !timed {
		times = nil
	}
	return times, nil
}
