// Package parwork runs a fixed number of independent work items on a small
// pool of worker goroutines. It is the shared fan-out primitive of the
// analysis pipeline: items are claimed from an atomic counter (cheap dynamic
// load balancing for very unevenly sized items), results are written to
// caller-owned, index-addressed slots (no channels, no locks on the result
// path), and after a failure the pool stops claiming new items. Callers keep
// determinism by folding their per-item results in item order afterwards.
package parwork

import (
	"sync"
	"sync/atomic"
	"time"
)

// Run executes fn(0..n-1) on up to workers goroutines (values below one, or
// above n, are clamped). When an item fails no further items are claimed and
// the error of the lowest-indexed failed item is returned. fn must write its
// result to a caller-owned slot at the item index; it is called exactly once
// per claimed item.
func Run(n, workers int, fn func(item int) error) error {
	_, err := run(n, workers, false, func(_, item int) error { return fn(item) })
	return err
}

// RunTimed is Run with per-worker bookkeeping: fn additionally receives the
// worker id (0 <= worker < len(times)) and the returned slice holds every
// worker's busy time. It is used where per-worker accumulators avoid
// contention and the coordinator merges them in worker order afterwards.
func RunTimed(n, workers int, fn func(worker, item int) error) (times []time.Duration, err error) {
	return run(n, workers, true, fn)
}

func run(n, workers int, timed bool, fn func(worker, item int) error) ([]time.Duration, error) {
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	if workers == 1 {
		// Degenerate pool: run inline so single-threaded callers pay no
		// goroutine or atomic overhead.
		var times []time.Duration
		start := time.Now()
		for i := 0; i < n; i++ {
			if err := fn(0, i); err != nil {
				return nil, err
			}
		}
		if timed {
			times = []time.Duration{time.Since(start)}
		}
		return times, nil
	}
	errs := make([]error, n)
	times := make([]time.Duration, workers)
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			start := time.Now()
			for !failed.Load() {
				item := int(next.Add(1)) - 1
				if item >= n {
					break
				}
				if err := fn(w, item); err != nil {
					errs[item] = err
					failed.Store(true)
					break
				}
			}
			times[w] = time.Since(start)
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if !timed {
		times = nil
	}
	return times, nil
}
