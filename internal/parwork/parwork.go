// Package parwork runs a fixed number of independent work items on a small
// pool of worker goroutines. It is the shared fan-out primitive of the
// analysis pipeline: items are claimed from an atomic counter (cheap dynamic
// load balancing for very unevenly sized items), results are written to
// caller-owned, index-addressed slots (no channels, no locks on the result
// path), and after a failure the pool stops claiming new items. Callers keep
// determinism by folding their per-item results in item order afterwards.
//
// Fault containment: a panicking work item is recovered, stamped with its
// stack and work-item identity, and surfaced as a typed *PanicError — a
// crashing item fails the pool like an erroring item instead of killing the
// process. Cancellation: the Ctx variants observe a context between items,
// so a runaway analysis stops claiming work promptly after cancellation.
package parwork

import (
	"context"
	"fmt"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// PanicError reports a panic recovered from a work item. The pool survives:
// sibling workers stop claiming new items and the error is returned like
// any other item failure.
type PanicError struct {
	Item   int    // work item that panicked
	Worker int    // worker id that ran the item
	Value  any    // the recovered panic value
	Stack  []byte // stack of the panicking goroutine at recovery
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("parwork: panic on item %d (worker %d): %v\n%s", e.Item, e.Worker, e.Value, e.Stack)
}

// Run executes fn(0..n-1) on up to workers goroutines (values below one, or
// above n, are clamped). When an item fails no further items are claimed and
// the error of the lowest-indexed failed item is returned. fn must write its
// result to a caller-owned slot at the item index; it is called exactly once
// per claimed item.
func Run(n, workers int, fn func(item int) error) error {
	_, err := run(context.Background(), n, workers, false, func(_, item int) error { return fn(item) })
	return err
}

// RunCtx is Run observing ctx: no new item is claimed after ctx is
// cancelled, and the context error is returned (items already running are
// completed — fn observes cancellation itself if it needs mid-item aborts).
func RunCtx(ctx context.Context, n, workers int, fn func(item int) error) error {
	_, err := run(ctx, n, workers, false, func(_, item int) error { return fn(item) })
	return err
}

// RunTimed is Run with per-worker bookkeeping: fn additionally receives the
// worker id (0 <= worker < len(times)) and the returned slice holds every
// worker's busy time. It is used where per-worker accumulators avoid
// contention and the coordinator merges them in worker order afterwards.
func RunTimed(n, workers int, fn func(worker, item int) error) (times []time.Duration, err error) {
	return run(context.Background(), n, workers, true, fn)
}

// RunTimedCtx is RunTimed observing ctx between items.
func RunTimedCtx(ctx context.Context, n, workers int, fn func(worker, item int) error) (times []time.Duration, err error) {
	return run(ctx, n, workers, true, fn)
}

// HardestFirst returns the permutation of 0..len(weights)-1 that orders
// items by descending weight (stable, so equal weights keep item order).
// Pools whose items vary by orders of magnitude schedule through it —
// fn(order[scheduled]) — so a giant item claimed last cannot stall the pool
// while the other workers idle. The permutation affects execution order
// only; results stay index-addressed and deterministic.
func HardestFirst(weights []int) []int {
	order := make([]int, len(weights))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return weights[order[a]] > weights[order[b]] })
	return order
}

// protect invokes fn(worker, item), converting a panic into a *PanicError
// so one crashing item cannot take down the process.
func protect(fn func(worker, item int) error, worker, item int) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &PanicError{Item: item, Worker: worker, Value: v, Stack: debug.Stack()}
		}
	}()
	return fn(worker, item)
}

func run(ctx context.Context, n, workers int, timed bool, fn func(worker, item int) error) ([]time.Duration, error) {
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	if workers == 1 {
		// Degenerate pool: run inline so single-threaded callers pay no
		// goroutine or atomic overhead. Panic containment and cancellation
		// semantics match the pooled path.
		var times []time.Duration
		start := time.Now()
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if err := protect(fn, 0, i); err != nil {
				return nil, err
			}
		}
		if timed {
			times = []time.Duration{time.Since(start)}
		}
		return times, nil
	}
	errs := make([]error, n)
	times := make([]time.Duration, workers)
	var next atomic.Int64
	var failed atomic.Bool
	var cancelled atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			start := time.Now()
			for !failed.Load() {
				if ctx.Err() != nil {
					cancelled.Store(true)
					break
				}
				item := int(next.Add(1)) - 1
				if item >= n {
					break
				}
				if err := protect(fn, w, item); err != nil {
					errs[item] = err
					failed.Store(true)
					break
				}
			}
			times[w] = time.Since(start)
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if cancelled.Load() {
		return nil, ctx.Err()
	}
	if !timed {
		times = nil
	}
	return times, nil
}
