package parwork

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestIdleWorkerReportsZeroBusyTime is the regression test for the busy-time
// accounting bug: RunTimed used to report goroutine lifetime (claim overhead
// plus spin-down included), so a worker that claimed nothing still showed the
// full wall time. With per-item accumulation an idle worker reports ~0 even
// while a sibling holds the only item for a while.
func TestIdleWorkerReportsZeroBusyTime(t *testing.T) {
	const hold = 50 * time.Millisecond
	times, err := RunTimed(1, 4, func(worker, item int) error {
		time.Sleep(hold)
		return nil
	})
	if err != nil {
		t.Fatalf("RunTimed: %v", err)
	}
	// workers clamp to n=1, so a single worker slot exists and it was busy.
	if len(times) != 1 {
		t.Fatalf("expected 1 worker slot, got %d", len(times))
	}
	if times[0] < hold/2 {
		t.Errorf("busy worker reported %v, expected >= %v", times[0], hold/2)
	}

	// Unclamped case: more items than one, but one giant item and several
	// trivial ones across 4 workers. The workers that only ran trivial items
	// must report far less than the giant item's duration.
	times, err = RunTimed(4, 4, func(worker, item int) error {
		if item == 0 {
			time.Sleep(hold)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("RunTimed: %v", err)
	}
	small := 0
	for _, d := range times {
		if d < hold/4 {
			small++
		}
	}
	if small < 3 {
		t.Errorf("expected >=3 workers with busy time < %v (per-item accounting), got times=%v", hold/4, times)
	}
}

// TestPoolRunGroupVisitsEveryItemOnce exercises the pool API directly.
func TestPoolRunGroupVisitsEveryItemOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		p := NewPool(workers)
		const n = 200
		var counts [n]atomic.Int32
		err := p.RunGroup(context.Background(), n, func(w *Worker, item int) error {
			if w.ID() < 0 || w.ID() >= workers {
				t.Errorf("worker id %d out of range [0,%d)", w.ID(), workers)
			}
			counts[item].Add(1)
			return nil
		})
		p.Close()
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Fatalf("workers=%d: item %d ran %d times", workers, i, got)
			}
		}
	}
}

// TestNestedGroupsSplitAndSteal drives the splittable-item path: top-level
// items spawn nested groups from inside the pool, and with more workers than
// top-level items the nested items must fan out to otherwise-idle workers
// (observable as steals). Also asserts help-on-wait does not deadlock at any
// worker count, including workers=1.
func TestNestedGroupsSplitAndSteal(t *testing.T) {
	for _, workers := range []int{1, 2, 4} {
		p := NewPool(workers)
		const outer, inner = 2, 64
		var total atomic.Int64
		workerSeen := make([]atomic.Int32, workers)
		err := p.RunGroup(context.Background(), outer, func(w *Worker, oi int) error {
			return w.RunGroup(context.Background(), inner, func(sw *Worker, ii int) error {
				workerSeen[sw.ID()].Add(1)
				time.Sleep(100 * time.Microsecond)
				total.Add(int64(oi*inner + ii))
				return nil
			})
		})
		stats := p.PoolStats()
		p.Close()
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		want := int64(0)
		for oi := 0; oi < outer; oi++ {
			for ii := 0; ii < inner; ii++ {
				want += int64(oi*inner + ii)
			}
		}
		if got := total.Load(); got != want {
			t.Fatalf("workers=%d: sum %d, want %d", workers, got, want)
		}
		if stats.Splits != outer {
			t.Errorf("workers=%d: splits=%d, want %d", workers, stats.Splits, outer)
		}
		if workers > 2 {
			// 2 top-level items on >2 workers: nested items can only reach
			// the extra workers by stealing.
			if stats.Steals == 0 {
				t.Errorf("workers=%d: expected steals > 0 with %d top-level items", workers, outer)
			}
			busy := 0
			for i := range workerSeen {
				if workerSeen[i].Load() > 0 {
					busy++
				}
			}
			if busy <= outer {
				t.Errorf("workers=%d: only %d workers ran nested items; stealing should engage more than the %d spawners", workers, busy, outer)
			}
		}
	}
}

// TestPanicIdentitySurvivesSteal pins the panic contract on the steal path:
// a nested item that panics after being stolen by another worker must still
// surface as a *PanicError carrying the item's group-relative index.
func TestPanicIdentitySurvivesSteal(t *testing.T) {
	const badItem = 37
	for attempt := 0; attempt < 10; attempt++ {
		p := NewPool(4)
		var spawner atomic.Int32
		var runner atomic.Int32
		err := p.RunGroup(context.Background(), 1, func(w *Worker, _ int) error {
			spawner.Store(int32(w.ID()))
			return w.RunGroup(context.Background(), 64, func(sw *Worker, ii int) error {
				if ii == badItem {
					runner.Store(int32(sw.ID()))
					panic("stolen kaboom")
				}
				time.Sleep(50 * time.Microsecond)
				return nil
			})
		})
		stolen := runner.Load() != spawner.Load()
		p.Close()
		if err == nil {
			t.Fatal("expected error from panicking nested item")
		}
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("expected *PanicError, got %T: %v", err, err)
		}
		if pe.Item != badItem {
			t.Fatalf("PanicError.Item = %d, want %d (identity must survive steals)", pe.Item, badItem)
		}
		if pe.Value != "stolen kaboom" || len(pe.Stack) == 0 {
			t.Fatalf("PanicError payload wrong: value=%v stackLen=%d", pe.Value, len(pe.Stack))
		}
		if pe.Worker != int(runner.Load()) {
			t.Fatalf("PanicError.Worker = %d, want executing worker %d", pe.Worker, runner.Load())
		}
		if stolen {
			return // saw a genuine steal of the panicking item: contract proven
		}
	}
	t.Log("panicking item never stolen in 10 attempts (legal scheduling); identity contract still held on the home worker")
}

// TestStressRandomizedSplits hammers the pool under -race: concurrent
// top-level groups, random nested splits up to depth 2, random panics and
// errors, random cancellations. Asserts no deadlock, no lost items on
// clean groups, and typed errors on dirty ones.
func TestStressRandomizedSplits(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var wg sync.WaitGroup
	for round := 0; round < 8; round++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			mode := seed % 3 // 0: clean, 1: panic, 2: cancel
			ctx := context.Background()
			var cancel context.CancelFunc
			if mode == 2 {
				ctx, cancel = context.WithCancel(ctx)
				defer cancel()
			}
			n := 20 + rng.Intn(30)
			bad := rng.Intn(n)
			var ran atomic.Int64
			err := p.RunGroup(ctx, n, func(w *Worker, item int) error {
				ran.Add(1)
				if mode == 1 && item == bad {
					panic(item)
				}
				if mode == 2 && item == bad {
					cancel()
					return nil
				}
				if item%5 == 0 {
					// nested split; occasionally splits again one level down
					return w.RunGroup(ctx, 8, func(sw *Worker, ii int) error {
						if ii == 3 && item%10 == 0 {
							return sw.RunGroup(ctx, 4, func(*Worker, int) error { return nil })
						}
						return nil
					})
				}
				return nil
			})
			switch mode {
			case 0:
				if err != nil {
					t.Errorf("clean group: %v", err)
				}
				if got := ran.Load(); got != int64(n) {
					t.Errorf("clean group: ran %d of %d", got, n)
				}
			case 1:
				var pe *PanicError
				if err == nil {
					t.Error("panic group: no error")
				} else if errors.As(err, &pe) {
					if pe.Item != bad {
						t.Errorf("panic group: item %d, want %d", pe.Item, bad)
					}
				}
				// err may also be a nested group's error if scheduling made a
				// clean nested item fail first — impossible here since only
				// item `bad` fails; so any non-PanicError is a bug.
				if err != nil && pe == nil {
					t.Errorf("panic group: got %T, want *PanicError", err)
				}
			case 2:
				// the canceling item returns nil, so the only possible error
				// is the context's
				if err != nil && !errors.Is(err, context.Canceled) {
					t.Errorf("cancel group: %v", err)
				}
			}
		}(int64(round*7 + 1))
	}
	wg.Wait()
}

// TestCancellationLatencyNestedGroups mirrors core's
// TestCancellationMidAnalysis at the pool layer: cancelling while deeply
// nested groups are in flight must return promptly (workers observe ctx
// between items) and leave no stuck worker — Close returning proves drain.
func TestCancellationLatencyNestedGroups(t *testing.T) {
	p := NewPool(4)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	var started atomic.Bool
	go func() {
		done <- p.RunGroup(ctx, 1000, func(w *Worker, item int) error {
			started.Store(true)
			return w.RunGroup(ctx, 100, func(*Worker, int) error {
				time.Sleep(200 * time.Microsecond)
				return nil
			})
		})
	}()
	for !started.Load() {
		time.Sleep(time.Millisecond)
	}
	t0 := time.Now()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("expected context.Canceled, got %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancellation not observed within 2s")
	}
	if d := time.Since(t0); d > 2*time.Second {
		t.Fatalf("cancellation latency %v exceeds 2s", d)
	}
	closed := make(chan struct{})
	go func() { p.Close(); close(closed) }()
	select {
	case <-closed:
	case <-time.After(2 * time.Second):
		t.Fatal("pool workers did not drain after cancellation")
	}
}

// TestInlineExecNestedStaysInline checks the single-threaded executor: no
// goroutines, nested groups run inline, and timings land on worker 0.
func TestInlineExecNestedStaysInline(t *testing.T) {
	ex := InlineExec()
	if ex.Workers() != 1 {
		t.Fatalf("inline Workers() = %d", ex.Workers())
	}
	var order []int
	times, err := ex.RunGroupTimed(context.Background(), 3, func(w *Worker, i int) error {
		order = append(order, i) // safe: inline == same goroutine
		if i == 1 {
			return w.RunGroup(context.Background(), 2, func(_ *Worker, j int) error {
				order = append(order, 10+j)
				return nil
			})
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(times) != 1 {
		t.Fatalf("inline times len = %d", len(times))
	}
	want := []int{0, 1, 10, 11, 2}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if st := ex.PoolStats(); st.Steals != 0 || st.Splits != 0 {
		t.Fatalf("inline PoolStats = %+v, want zeros", st)
	}
}

// TestGroupErrorLowestIndexWins: with several failing items in one group the
// reported error is the lowest-indexed one, matching the legacy contract.
func TestGroupErrorLowestIndexWins(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	// All items fail; claims race, but whichever subset runs, the reported
	// error must be the smallest index among the items that actually ran —
	// and item claiming is in index order per group, so index 0 always runs.
	err := p.RunGroup(context.Background(), 50, func(_ *Worker, item int) error {
		return errors.New("fail")
	})
	if err == nil || err.Error() != "fail" {
		t.Fatalf("got %v", err)
	}
	// Deterministic variant through the inline path.
	errs := []error{nil, errors.New("b"), errors.New("a")}
	err = InlineExec().RunGroup(context.Background(), 3, func(_ *Worker, item int) error {
		return errs[item]
	})
	if err == nil || err.Error() != "b" {
		t.Fatalf("lowest-indexed error: got %v, want b", err)
	}
}
