package report

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func sampleTable() *Table {
	t := NewTable("sample", "kernel", "misses", "ratio")
	t.AddRow("gemm", 1234, 0.25)
	t.AddRow("atax", 56, 0.125)
	return t
}

func TestTableWriteAligned(t *testing.T) {
	var buf bytes.Buffer
	sampleTable().Write(&buf)
	out := buf.String()
	if !strings.HasPrefix(out, "# sample\n") {
		t.Fatalf("missing title: %q", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("expected title+header+separator+2 rows, got %d lines", len(lines))
	}
	if !strings.Contains(lines[1], "kernel") || !strings.Contains(lines[3], "gemm") {
		t.Fatalf("unexpected layout:\n%s", out)
	}
}

func TestTableWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	sampleTable().WriteCSV(&buf)
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if lines[0] != "kernel,misses,ratio" || lines[1] != "gemm,1234,0.25" {
		t.Fatalf("unexpected CSV:\n%s", buf.String())
	}
}

func TestTableWriteJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleTable().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Title string              `json:"title"`
		Rows  []map[string]string `json:"rows"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if doc.Title != "sample" || len(doc.Rows) != 2 {
		t.Fatalf("unexpected document: %+v", doc)
	}
	if doc.Rows[0]["kernel"] != "gemm" || doc.Rows[1]["misses"] != "56" {
		t.Fatalf("unexpected rows: %+v", doc.Rows)
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{2, 8}); math.Abs(g-4) > 1e-12 {
		t.Fatalf("GeoMean(2,8) = %v, want 4", g)
	}
	// Non-positive entries are ignored, matching the paper's speedup plots.
	if g := GeoMean([]float64{2, 8, 0, -1}); math.Abs(g-4) > 1e-12 {
		t.Fatalf("GeoMean with non-positive entries = %v, want 4", g)
	}
	if g := GeoMean(nil); g != 0 {
		t.Fatalf("GeoMean(nil) = %v, want 0", g)
	}
}
