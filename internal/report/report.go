// Package report provides small text-table and series formatting helpers
// for the experiment harness and the design-space exploration CLI, so that
// every figure and table of the paper — and every sweep of cmd/tune — can
// be rendered as aligned console output, CSV, or JSON.
package report

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(values ...interface{}) {
	row := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", x)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Write renders the table to w.
func (t *Table) Write(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "# %s\n", t.Title)
	}
	printRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.Join(parts, "  "))
	}
	printRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	printRow(sep)
	for _, row := range t.Rows {
		printRow(row)
	}
}

// WriteCSV renders the table as CSV.
func (t *Table) WriteCSV(w io.Writer) {
	fmt.Fprintln(w, strings.Join(t.Headers, ","))
	for _, row := range t.Rows {
		fmt.Fprintln(w, strings.Join(row, ","))
	}
}

// jsonTable is the JSON shape of a table: the title and one object per row
// keyed by the column headers.
type jsonTable struct {
	Title string              `json:"title,omitempty"`
	Rows  []map[string]string `json:"rows"`
}

// JSONValue returns the table as a JSON-marshalable value, so callers can
// embed several tables in one enclosing document. Cells keep the string
// formatting of the table so all output formats agree on the values.
func (t *Table) JSONValue() interface{} {
	d := jsonTable{Title: t.Title, Rows: make([]map[string]string, 0, len(t.Rows))}
	for _, row := range t.Rows {
		obj := make(map[string]string, len(t.Headers))
		for i, h := range t.Headers {
			if i < len(row) {
				obj[h] = row[i]
			}
		}
		d.Rows = append(d.Rows, obj)
	}
	return d
}

// WriteJSON renders the table as a single JSON document (see JSONValue).
func (t *Table) WriteJSON(w io.Writer) error {
	return WriteJSON(w, t.JSONValue())
}

// WriteJSON writes one value as an indented JSON document.
func WriteJSON(w io.Writer, v interface{}) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// GeoMean returns the geometric mean of the values, ignoring non-positive
// entries (the convention used for the speedup plots of the paper).
func GeoMean(values []float64) float64 {
	sum := 0.0
	n := 0
	for _, v := range values {
		if v > 0 {
			sum += math.Log(v)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}
