// Package budget provides the single cost-accounting mechanism behind the
// graceful degradation ladder. Every potentially super-linear operation of
// the symbolic pipeline (Fourier-Motzkin system fan-out, point enumeration)
// charges a cost meter; when an operation exceeds its deterministic limit it
// fails with a typed *Exceeded error carrying provenance, and bounded-mode
// callers degrade that one operation to certified interval bounds instead of
// failing the whole analysis.
//
// Determinism: limits are enforced per operation, not against the shared
// meter total. A shared limit consumed concurrently would make *which* piece
// degrades depend on goroutine scheduling; per-operation limits keep bounded
// results bit-identical across worker counts. The meter total is
// observability only (Stats.BudgetUsed).
package budget

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"
)

// ErrExceeded is the sentinel matched by errors.Is for every *Exceeded
// error, regardless of which stage produced it.
var ErrExceeded = errors.New("budget exceeded")

// Exceeded reports that one budgeted operation ran past its deterministic
// cost limit. Stage names the pipeline operation ("capacity piece count",
// "stack distance card", ...) so "why did this degrade" is answerable from
// the error alone.
type Exceeded struct {
	Stage string // pipeline operation that tripped the limit
	Cost  int64  // cost units consumed by the operation when it tripped
	Limit int64  // the deterministic per-operation limit
}

func (e *Exceeded) Error() string {
	return fmt.Sprintf("budget exceeded: %s spent %d of %d cost units", e.Stage, e.Cost, e.Limit)
}

// Is makes errors.Is(err, ErrExceeded) match any *Exceeded.
func (e *Exceeded) Is(target error) bool { return target == ErrExceeded }

// IsCancellation reports whether err stems from context cancellation or a
// deadline rather than a cost limit. Cancellation must abort the analysis;
// cost-limit errors merely degrade one operation.
func IsCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// ctxCheckStride bounds how many cost units may be charged between two
// context checks, so cancellation latency stays proportional to real work.
const ctxCheckStride = 256

// Meter is the per-analysis cost accountant: it carries the analysis
// context for cancellation and accumulates the monotonic total of cost
// units charged by all operations (concurrency-safe; operations themselves
// are single-goroutine). The zero limit means operations are unlimited and
// only cancellation is observed. A nil *Meter is valid and inert.
type Meter struct {
	ctx   context.Context
	limit int64
	total atomic.Int64
}

// New returns a meter whose operations are capped at perOpLimit cost units
// each (0 = unlimited) and observe ctx for cancellation.
func New(ctx context.Context, perOpLimit int64) *Meter {
	if ctx == nil {
		ctx = context.Background()
	}
	return &Meter{ctx: ctx, limit: perOpLimit}
}

// Total returns the monotonic number of cost units charged so far across
// all operations of the meter.
func (m *Meter) Total() int64 {
	if m == nil {
		return 0
	}
	return m.total.Load()
}

// Limit returns the per-operation cost limit (0 = unlimited).
func (m *Meter) Limit() int64 {
	if m == nil {
		return 0
	}
	return m.limit
}

// Context returns the analysis context carried by the meter.
func (m *Meter) Context() context.Context {
	if m == nil {
		return context.Background()
	}
	return m.ctx
}

// Err reports pending cancellation of the meter's context without charging
// any cost.
func (m *Meter) Err() error {
	if m == nil {
		return nil
	}
	return m.ctx.Err()
}

// Op starts a new budgeted operation at the meter's per-operation limit.
func (m *Meter) Op(stage string) *Op {
	if m == nil {
		return nil
	}
	return &Op{meter: m, stage: stage, limit: m.limit}
}

// OpLimited starts a new budgeted operation with an explicit limit,
// overriding the meter default (0 = unlimited).
func (m *Meter) OpLimited(stage string, limit int64) *Op {
	if m == nil {
		return LimitOp(stage, limit)
	}
	return &Op{meter: m, stage: stage, limit: limit}
}

// LimitOp returns a standalone operation with a deterministic limit and no
// meter (no cancellation, no shared total). Used where a cap is needed but
// no analysis meter is in scope, e.g. the parametric per-piece budget.
func LimitOp(stage string, limit int64) *Op {
	if limit <= 0 {
		return nil
	}
	return &Op{stage: stage, limit: limit}
}

// Op accounts for one budgeted operation. It is used from a single
// goroutine; only the flush into the shared meter total is synchronized. A
// nil *Op is valid: charges succeed and cost nothing.
type Op struct {
	meter      *Meter
	stage      string
	limit      int64
	used       int64
	sinceCheck int64
}

// Charge adds n cost units to the operation. It returns a *Exceeded error
// once the operation's limit is crossed, or the context error if the
// meter's context was cancelled. Callers must stop the operation on any
// non-nil return.
func (op *Op) Charge(n int64) error {
	if op == nil {
		return nil
	}
	op.used += n
	if op.meter != nil {
		op.meter.total.Add(n)
		op.sinceCheck += n
		if op.sinceCheck >= ctxCheckStride {
			op.sinceCheck = 0
			if err := op.meter.ctx.Err(); err != nil {
				return err
			}
		}
	}
	if op.limit > 0 && op.used > op.limit {
		return &Exceeded{Stage: op.stage, Cost: op.used, Limit: op.limit}
	}
	return nil
}

// Err reports pending cancellation without charging cost.
func (op *Op) Err() error {
	if op == nil || op.meter == nil {
		return nil
	}
	return op.meter.ctx.Err()
}

// Used returns the cost units charged to the operation so far.
func (op *Op) Used() int64 {
	if op == nil {
		return 0
	}
	return op.used
}

// TimeAllows decides whether a step estimated to need `need` wall time fits
// before a deadline, keeping `slack` in reserve for cleanup. It returns the
// remaining time after the step and whether the step fits. With no deadline
// every step fits. It is a pure function of its inputs so tests can cover
// the branches without real clocks (absorbed from the conformance suite's
// budgetAllows helper).
func TimeAllows(need time.Duration, deadline time.Time, hasDeadline bool, now time.Time, slack time.Duration) (time.Duration, bool) {
	if !hasDeadline {
		return 0, true
	}
	remaining := deadline.Sub(now) - slack
	return remaining - need, remaining >= need
}
