package budget

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestNilSafety(t *testing.T) {
	var m *Meter
	if m.Total() != 0 || m.Limit() != 0 || m.Err() != nil {
		t.Fatal("nil meter must be inert")
	}
	if m.Context() == nil {
		t.Fatal("nil meter must still yield a context")
	}
	op := m.Op("anything")
	if op != nil {
		t.Fatal("nil meter must yield nil ops")
	}
	if err := op.Charge(1 << 40); err != nil {
		t.Fatalf("nil op charge: %v", err)
	}
	if op.Err() != nil || op.Used() != 0 {
		t.Fatal("nil op must be inert")
	}
}

func TestOpLimit(t *testing.T) {
	m := New(context.Background(), 10)
	op := m.Op("test stage")
	if err := op.Charge(10); err != nil {
		t.Fatalf("charge at limit: %v", err)
	}
	err := op.Charge(1)
	if err == nil {
		t.Fatal("expected Exceeded past the limit")
	}
	var ex *Exceeded
	if !errors.As(err, &ex) {
		t.Fatalf("want *Exceeded, got %T: %v", err, err)
	}
	if !errors.Is(err, ErrExceeded) {
		t.Fatal("Exceeded must match ErrExceeded")
	}
	if ex.Stage != "test stage" || ex.Cost != 11 || ex.Limit != 10 {
		t.Fatalf("bad provenance: %+v", ex)
	}
	if IsCancellation(err) {
		t.Fatal("cost-limit error must not look like cancellation")
	}
}

func TestPerOpLimitsAreIndependent(t *testing.T) {
	m := New(context.Background(), 5)
	for i := 0; i < 3; i++ {
		if err := m.Op("op").Charge(5); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	if got := m.Total(); got != 15 {
		t.Fatalf("meter total = %d, want 15", got)
	}
}

func TestUnlimitedMeterStillObservesCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	m := New(ctx, 0)
	op := m.Op("scan")
	if err := op.Charge(ctxCheckStride); err != nil {
		t.Fatalf("pre-cancel charge: %v", err)
	}
	cancel()
	var err error
	for i := 0; i < 2; i++ { // at most one full stride before the check fires
		err = op.Charge(ctxCheckStride)
		if err != nil {
			break
		}
	}
	if !IsCancellation(err) {
		t.Fatalf("want cancellation, got %v", err)
	}
	if op.Err() == nil || m.Err() == nil {
		t.Fatal("Err must report pending cancellation")
	}
}

func TestLimitOp(t *testing.T) {
	if LimitOp("x", 0) != nil {
		t.Fatal("non-positive limit must yield a nil (unlimited) op")
	}
	op := LimitOp("standalone", 2)
	if err := op.Charge(2); err != nil {
		t.Fatalf("within limit: %v", err)
	}
	if err := op.Charge(1); !errors.Is(err, ErrExceeded) {
		t.Fatalf("want ErrExceeded, got %v", err)
	}
}

func TestOpLimited(t *testing.T) {
	m := New(context.Background(), 100)
	op := m.OpLimited("tight", 1)
	if err := op.Charge(2); !errors.Is(err, ErrExceeded) {
		t.Fatalf("explicit limit must override meter default: %v", err)
	}
	var nilMeter *Meter
	if err := nilMeter.OpLimited("tight", 1).Charge(2); !errors.Is(err, ErrExceeded) {
		t.Fatalf("OpLimited on nil meter must still enforce the limit: %v", err)
	}
}

func TestTimeAllows(t *testing.T) {
	now := time.Unix(1000, 0)
	if _, ok := TimeAllows(time.Hour, time.Time{}, false, now, time.Second); !ok {
		t.Fatal("no deadline must always fit")
	}
	deadline := now.Add(10 * time.Second)
	if left, ok := TimeAllows(5*time.Second, deadline, true, now, 2*time.Second); !ok || left != 3*time.Second {
		t.Fatalf("fit: left=%v ok=%v", left, ok)
	}
	if _, ok := TimeAllows(9*time.Second, deadline, true, now, 2*time.Second); ok {
		t.Fatal("step past the slack reserve must not fit")
	}
}
