// Package lexmin computes parametric lexicographic minima and maxima of
// integer maps: for every input point of a relation, the lexicographically
// smallest (or largest) related output point. This is the role the
// parametric integer programming component of isl plays for the original
// HayStack, where it is used to build the "next" map (the following access
// to the same cache line) and the "first" map (the first access to a line).
//
// The implementation pins output dimensions one at a time to their binding
// lower bound, splitting the domain on which bound dominates, and then
// combines the per-basic-map minima by comparing candidate solutions and
// subtracting domains. Relations outside the supported quasi-affine fragment
// report ErrUnsupported so callers can fall back to enumeration.
package lexmin

import (
	"context"
	"errors"
	"fmt"

	"haystack/internal/parwork"
	"haystack/internal/presburger"
)

// ErrUnsupported reports that the relation left the supported fragment.
var ErrUnsupported = errors.New("lexmin: outside supported fragment")

// MapLexmin returns the relation that maps every input point of m to the
// lexicographically smallest output point m relates it to. The result is
// single-valued and covers exactly the domain of m.
func MapLexmin(m presburger.Map) (presburger.Map, error) { return MapLexminWith(m, 1) }

// MapLexminWith is MapLexmin with the per-basic-map minima computed by the
// given number of worker goroutines (values below one mean one). The basic
// maps are independent; only their combination is order dependent (ties go
// to the earlier relation), so the combining fold stays sequential in the
// original order and the result is bit-identical for every worker count.
//
// The combination is domain partitioned: candidates whose domains provably
// never overlap (different statements of a schedule space pin different
// constant dimensions) are folded in independent chambers and the chamber
// results are concatenated. Cross-chamber combineMin calls would degenerate
// to plain unions, so skipping them changes nothing semantically while
// removing the all-pairs subtraction cascade that made triangular kernels
// intractable.
func MapLexminWith(m presburger.Map, workers int) (presburger.Map, error) {
	return MapLexminCtx(context.Background(), m, workers)
}

// MapLexminCtx is MapLexminWith observing ctx: the computation checks for
// cancellation between basic maps, between fold steps, and between the
// output dimensions of each per-basic-map minimum, and returns the context
// error promptly. The result is identical to MapLexminWith when the context
// never fires.
func MapLexminCtx(ctx context.Context, m presburger.Map, workers int) (presburger.Map, error) {
	ex, release := parwork.NewExec(workers)
	defer release()
	return mapLexmin(ctx, m, ex, true)
}

// MapLexminExec is MapLexminCtx scheduling the per-basic-map minima on the
// given executor. When ex is a Worker inside a running pool, the basic maps
// become splittable work units that idle workers steal; the combining fold
// stays sequential, so the result is bit-identical to every other entry
// point regardless of executor shape.
func MapLexminExec(ctx context.Context, m presburger.Map, ex parwork.Exec) (presburger.Map, error) {
	return mapLexmin(ctx, m, ex, true)
}

// mapLexminFlat is MapLexminWith without the domain partitioning: every
// candidate folds into one accumulated relation. Kept as the reference
// implementation for differential tests.
func mapLexminFlat(m presburger.Map, workers int) (presburger.Map, error) {
	ex, release := parwork.NewExec(workers)
	defer release()
	return mapLexmin(context.Background(), m, ex, false)
}

func mapLexmin(ctx context.Context, m presburger.Map, ex parwork.Exec, partition bool) (presburger.Map, error) {
	bms := m.Basics()
	perBasic := make([][]presburger.BasicMap, len(bms))
	err := ex.RunGroup(ctx, len(bms), func(_ *parwork.Worker, idx int) error {
		pieces, err := basicLexmin(ctx, bms[idx])
		if err != nil {
			return err
		}
		perBasic[idx] = pieces
		return nil
	})
	if err != nil {
		return presburger.Map{}, err
	}
	var candidates []presburger.Map
	for _, pieces := range perBasic {
		if len(pieces) == 0 {
			continue
		}
		candidate := presburger.MapFromBasics(pieces...).CoalesceQuick()
		if len(candidate.Basics()) == 0 {
			continue
		}
		candidates = append(candidates, candidate)
	}
	groups := [][]presburger.Map{candidates}
	if partition {
		groups = partitionByDomain(candidates)
	}
	result := presburger.EmptyMap(m.InSpace(), m.OutSpace())
	first := true
	for _, group := range groups {
		folded, err := foldMin(ctx, group)
		if err != nil {
			return presburger.Map{}, err
		}
		if len(folded.Basics()) == 0 {
			continue
		}
		if first {
			result = folded
			first = false
			continue
		}
		result = result.Union(folded)
	}
	presburger.DebugAssertMap(result, "lexmin")
	return result, nil
}

// foldMin combines the candidates of one chamber in their original order
// (ties go to the earlier relation).
func foldMin(ctx context.Context, group []presburger.Map) (presburger.Map, error) {
	var result presburger.Map
	for i, candidate := range group {
		if err := ctx.Err(); err != nil {
			return presburger.Map{}, err
		}
		if i == 0 {
			result = candidate
			continue
		}
		combined, err := combineMin(result, candidate)
		if err != nil {
			return presburger.Map{}, err
		}
		result = combined
	}
	return result, nil
}

// pinSig records, for one basic map of a candidate, which input dimensions
// are pinned to constants by its constraints (the form statement constants
// of a schedule space take).
type pinSig struct {
	pinned []bool
	pins   []int64
}

// partitionByDomain groups the candidates into chambers whose domains can
// overlap; candidates in different chambers are provably disjoint (every
// basic-map pair across them disagrees on an input dimension both pin).
// The partition is conservative (a pair that cannot cheaply be separated
// lands in the same chamber, which only costs combineMin work) and
// deterministic: chambers are ordered by their smallest candidate index and
// keep the original candidate order.
func partitionByDomain(candidates []presburger.Map) [][]presburger.Map {
	n := len(candidates)
	if n <= 1 {
		return [][]presburger.Map{candidates}
	}
	sigs := make([][]pinSig, n)
	for i, c := range candidates {
		for _, bm := range c.Basics() {
			pinned, pins := bm.PinnedInputDims()
			sigs[i] = append(sigs[i], pinSig{pinned, pins})
		}
	}
	mayOverlap := func(i, j int) bool {
		for _, sa := range sigs[i] {
			for _, sb := range sigs[j] {
				if !presburger.PinsSeparate(sa.pinned, sa.pins, sb.pinned, sb.pins) {
					return true
				}
			}
		}
		return false
	}
	idxGroups := presburger.GroupDisjoint(n, mayOverlap)
	groups := make([][]presburger.Map, len(idxGroups))
	for gi, idxs := range idxGroups {
		for _, i := range idxs {
			groups[gi] = append(groups[gi], candidates[i])
		}
	}
	return groups
}

// MapLexmax returns the relation mapping every input point to the
// lexicographically largest related output point.
func MapLexmax(m presburger.Map) (presburger.Map, error) { return MapLexmaxWith(m, 1) }

// MapLexmaxWith is MapLexmax computed by the given number of worker
// goroutines (see MapLexminWith).
func MapLexmaxWith(m presburger.Map, workers int) (presburger.Map, error) {
	return MapLexmaxCtx(context.Background(), m, workers)
}

// MapLexmaxCtx is MapLexmaxWith observing ctx (see MapLexminCtx).
func MapLexmaxCtx(ctx context.Context, m presburger.Map, workers int) (presburger.Map, error) {
	ex, release := parwork.NewExec(workers)
	defer release()
	return MapLexmaxExec(ctx, m, ex)
}

// MapLexmaxExec is MapLexmaxCtx scheduling the per-basic-map maxima on the
// given executor (see MapLexminExec).
func MapLexmaxExec(ctx context.Context, m presburger.Map, ex parwork.Exec) (presburger.Map, error) {
	neg := negateOutputs(m)
	mn, err := MapLexminExec(ctx, neg, ex)
	if err != nil {
		return presburger.Map{}, err
	}
	return negateOutputs(mn), nil
}

// negateOutputs composes m with the map y -> -y on its output space.
func negateOutputs(m presburger.Map) presburger.Map {
	sp := m.OutSpace()
	n := sp.Dim()
	bm := presburger.UniverseBasicMap(sp, sp)
	for i := 0; i < n; i++ {
		c := presburger.Constraint{C: presburger.NewVec(bm.NCols()), Eq: true}
		c.C[1+i] = 1
		c.C[1+n+i] = 1
		bm = bm.AddConstraint(c)
	}
	out, err := m.ApplyRange(presburger.MapFromBasic(bm))
	if err != nil {
		// The negation map is a bijection defined by unit-coefficient
		// equalities; composition with it cannot fail.
		panic(fmt.Sprintf("lexmin: negation composition failed: %v", err))
	}
	return out
}

// basicLexmin computes the lexicographic minimum of a single basic map as a
// union of single-valued basic maps with pairwise disjoint domains.
func basicLexmin(ctx context.Context, bm presburger.BasicMap) ([]presburger.BasicMap, error) {
	pieces := []presburger.BasicMap{bm}
	nIn, nOut := bm.NIn(), bm.NOut()
	for d := 0; d < nOut; d++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var next []presburger.BasicMap
		for _, piece := range pieces {
			split, err := pinDimension(piece, nIn, nOut, d)
			if err != nil {
				return nil, err
			}
			for _, s := range split {
				if !s.DefinitelyEmpty() {
					next = append(next, s)
				}
			}
		}
		pieces = next
	}
	return pieces, nil
}

// pinDimension pins output dimension d of the piece to its lexicographic
// minimum, splitting on which lower bound dominates.
func pinDimension(piece presburger.BasicMap, nIn, nOut, d int) ([]presburger.BasicMap, error) {
	// Work on the exact projection onto the input dims plus outputs 0..d so
	// the bounds on dimension d reflect the feasibility of the remaining
	// output dimensions.
	wrapped := piece.AsSet()
	keep := nIn + d + 1
	proj, err := wrapped.ProjectOut(keep, nIn+nOut-keep)
	if err != nil {
		return nil, fmt.Errorf("%w: projection failed: %v", ErrUnsupported, err)
	}
	proj, ok := proj.Simplify()
	if !ok {
		return nil, nil
	}
	col := 1 + nIn + d // column of y_d in the projection (and in the piece)
	ncols := proj.NCols()
	cons := proj.Constraints()
	divs := proj.Divs()

	// An equality already pins the dimension: nothing to do.
	for _, c := range cons {
		if c.Eq && col < len(c.C) && c.C[col] != 0 {
			return []presburger.BasicMap{piece}, nil
		}
	}
	type bound struct {
		a int64          // positive coefficient of y_d
		e presburger.Vec // remainder: constraint is a*y_d + e >= 0
	}
	var lowers []bound
	for _, c := range cons {
		cc := c.C.Resized(ncols)
		if cc[col] > 0 {
			e := cc.Clone()
			e[col] = 0
			lowers = append(lowers, bound{a: cc[col], e: e})
		}
	}
	if len(lowers) == 0 {
		return nil, fmt.Errorf("%w: output dimension %d has no lower bound", ErrUnsupported, d)
	}
	projDims := nIn + d + 1
	var out []presburger.BasicMap
	for li, lb := range lowers {
		p := piece
		// Import the divs of the projection so bound expressions can refer to
		// them; remap their columns onto the piece.
		divMap := make([]int, len(divs))
		for i, dv := range divs {
			num := remapProjVec(dv.Num.Resized(ncols), projDims, p.NCols(), divMap[:i])
			var dcol int
			p, dcol = p.AddDiv(num, dv.Den)
			divMap[i] = dcol
		}
		remap := func(v presburger.Vec) presburger.Vec {
			return remapProjVec(v.Resized(ncols), projDims, p.NCols(), divMap)
		}
		// Dominance constraints: the chosen bound is the maximum.
		for lj, other := range lowers {
			if lj == li {
				continue
			}
			// (-lb.e)/lb.a >= (-other.e)/other.a
			// <=> lb.a*other.e - other.a*lb.e >= 0
			c := presburger.NewVec(p.NCols())
			lbe := remap(lb.e)
			oe := remap(other.e)
			for k := range c {
				c[k] = lb.a*oe[k] - other.a*lbe[k]
			}
			if lj < li {
				c[0]--
			}
			p = p.AddConstraint(presburger.Constraint{C: c})
		}
		// Pin y_d to ceil(-e/a).
		if lb.a == 1 {
			c := remap(lb.e)
			c = c.Resized(p.NCols())
			c[1+nIn+d] = 1
			p = p.AddConstraint(presburger.Constraint{C: c, Eq: true})
		} else {
			// y_d == floor((-e + a - 1)/a)
			num := remap(lb.e).Neg()
			num[0] += lb.a - 1
			var dcol int
			p, dcol = p.AddDiv(num, lb.a)
			c := presburger.NewVec(p.NCols())
			c[1+nIn+d] = 1
			c[dcol] = -1
			p = p.AddConstraint(presburger.Constraint{C: c, Eq: true})
		}
		out = append(out, p)
	}
	return out, nil
}

// remapProjVec translates a vector over the projection's columns
// [const, keptDims..., projDivs...] into the piece's columns
// [const, in..., out..., pieceDivs...]. The kept dimensions are a prefix of
// the piece's dimensions, so dimension columns map identically; projection
// div columns are remapped via divMap (the already-imported divs).
func remapProjVec(v presburger.Vec, projDims, pieceNCols int, divMap []int) presburger.Vec {
	out := presburger.NewVec(pieceNCols)
	for j, x := range v {
		if x == 0 {
			continue
		}
		switch {
		case j == 0:
			out[0] += x
		case j <= projDims:
			out[j] += x
		default:
			out[divMap[j-1-projDims]] += x
		}
	}
	return out
}

// combineMin combines two single-valued relations into their pointwise
// lexicographic minimum: where only one is defined it is used, where both
// are defined the smaller output wins (ties go to the first relation).
//
// The expensive comparison machinery (composition with LexLT, intersection,
// domain subtraction) only runs on the overlap of the two domains: outside
// it each relation passes through unchanged. Triangular kernels overlap only
// in thin boundary wedges, so this keeps the case analysis proportional to
// the boundary instead of the whole domains.
func combineMin(f, g presburger.Map) (presburger.Map, error) {
	space := f.OutSpace()
	fDom, err := f.Domain()
	if err != nil {
		return presburger.Map{}, fmt.Errorf("%w: %v", ErrUnsupported, err)
	}
	gDom, err := g.Domain()
	if err != nil {
		return presburger.Map{}, fmt.Errorf("%w: %v", ErrUnsupported, err)
	}
	overlap := fDom.Intersect(gDom)
	if overlap.DefinitelyEmpty() {
		return pruneEmpty(f.Union(g)), nil
	}
	fOnly := f.IntersectDomain(fDom.Subtract(gDom))
	gOnly := g.IntersectDomain(gDom.Subtract(fDom))
	fOv := f.IntersectDomain(overlap)
	gOv := g.IntersectDomain(overlap)

	lexLT := presburger.LexLT(space)
	// f wins where f(x) < g(x): inputs for which some output of g is
	// lexicographically larger than f(x).
	fSmaller, err := fOv.ApplyRange(lexLT)
	if err != nil {
		return presburger.Map{}, fmt.Errorf("%w: %v", ErrUnsupported, err)
	}
	fWinsDom, err := fSmaller.Intersect(gOv).Domain()
	if err != nil {
		return presburger.Map{}, fmt.Errorf("%w: %v", ErrUnsupported, err)
	}
	gSmaller, err := gOv.ApplyRange(lexLT)
	if err != nil {
		return presburger.Map{}, fmt.Errorf("%w: %v", ErrUnsupported, err)
	}
	gWinsDom, err := gSmaller.Intersect(fOv).Domain()
	if err != nil {
		return presburger.Map{}, fmt.Errorf("%w: %v", ErrUnsupported, err)
	}
	// Ties: both defined and equal outputs; keep f there. The tie domain is
	// the overlap minus both win domains.
	tieDom := overlap.Subtract(fWinsDom).Subtract(gWinsDom)

	result := pruneEmpty(fOnly.Union(gOnly).Union(fOv.IntersectDomain(fWinsDom)).Union(gOv.IntersectDomain(gWinsDom)).Union(fOv.IntersectDomain(tieDom)))
	presburger.DebugAssertMap(result, "lexmin combine")
	return result, nil
}

// pruneEmpty coalesces the union (the subtraction-heavy combination above is
// the worst basic-map amplifier of the whole pipeline; the syntactic rules
// fold its slabs back together) and drops basic maps that are detectably
// empty.
func pruneEmpty(m presburger.Map) presburger.Map {
	var keep []presburger.BasicMap
	for _, bm := range m.Coalesce().Basics() {
		if bm.DefinitelyEmpty() {
			continue
		}
		keep = append(keep, bm)
	}
	if len(keep) == 0 {
		return presburger.EmptyMap(m.InSpace(), m.OutSpace())
	}
	return presburger.MapFromBasics(keep...)
}
