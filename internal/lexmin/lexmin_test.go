package lexmin

import (
	"fmt"
	"math/rand"
	"testing"

	"haystack/internal/presburger"
)

func ineq(ncols int, c0 int64, coeffs ...int64) presburger.Constraint {
	c := presburger.Constraint{C: presburger.NewVec(ncols)}
	c.C[0] = c0
	for i, v := range coeffs {
		c.C[1+i] = v
	}
	return c
}

func eq(ncols int, c0 int64, coeffs ...int64) presburger.Constraint {
	c := ineq(ncols, c0, coeffs...)
	c.Eq = true
	return c
}

// bruteLexmin computes the lexicographic minimum per input point by scanning
// the relation.
func bruteLexmin(t *testing.T, m presburger.Map, nIn int) map[string][]int64 {
	t.Helper()
	out := map[string][]int64{}
	err := m.Scan(func(p []int64) error {
		in := fmt.Sprint(p[:nIn])
		y := append([]int64(nil), p[nIn:]...)
		cur, ok := out[in]
		if !ok || lexLess(y, cur) {
			out[in] = y
		}
		return nil
	})
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	return out
}

func lexLess(a, b []int64) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// checkLexmin verifies that the computed lexmin matches the brute force
// result exactly (same domain, same values).
func checkLexmin(t *testing.T, m presburger.Map, nIn int) {
	t.Helper()
	got, err := MapLexmin(m)
	if err != nil {
		t.Fatalf("MapLexmin: %v", err)
	}
	want := bruteLexmin(t, m, nIn)
	gotPairs := map[string][]int64{}
	err = got.Scan(func(p []int64) error {
		in := fmt.Sprint(p[:nIn])
		y := append([]int64(nil), p[nIn:]...)
		if prev, ok := gotPairs[in]; ok && fmt.Sprint(prev) != fmt.Sprint(y) {
			return fmt.Errorf("lexmin not single-valued at %s: %v and %v", in, prev, y)
		}
		gotPairs[in] = y
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(gotPairs) != len(want) {
		t.Fatalf("domain size mismatch: got %d inputs, want %d\nmap=%v\nlexmin=%v", len(gotPairs), len(want), m, got)
	}
	for in, y := range want {
		gy, ok := gotPairs[in]
		if !ok {
			t.Fatalf("missing input %s\nlexmin=%v", in, got)
		}
		if fmt.Sprint(gy) != fmt.Sprint(y) {
			t.Fatalf("input %s: got %v want %v\nmap=%v\nlexmin=%v", in, gy, y, m, got)
		}
	}
}

func TestLexminPaperExampleNextMap(t *testing.T) {
	// Equal map restricted to forward relations of the Figure 2 example:
	// (0,i) -> (1,j) with j = 3-i. The lexmin is the relation itself.
	in := presburger.NewSpace("T", "t0", "t1")
	bm := presburger.UniverseBasicMap(in, in)
	w := bm.NCols()
	bm = bm.AddConstraint(eq(w, 0, 1, 0, 0, 0))    // t0 = 0
	bm = bm.AddConstraint(eq(w, -1, 0, 0, 1, 0))   // t0' = 1
	bm = bm.AddConstraint(eq(w, -3, 0, 1, 0, 1))   // t1 + t1' = 3
	bm = bm.AddConstraint(ineq(w, 0, 0, 1, 0, 0))  // t1 >= 0
	bm = bm.AddConstraint(ineq(w, 3, 0, -1, 0, 0)) // t1 <= 3
	checkLexmin(t, presburger.MapFromBasic(bm), 2)
}

func TestLexminTriangular(t *testing.T) {
	// { S(i) -> T(j) : i <= j < 8, 0 <= i < 8 }: lexmin is j = i.
	s := presburger.NewSpace("S", "i")
	o := presburger.NewSpace("T", "j")
	bm := presburger.UniverseBasicMap(s, o)
	w := bm.NCols()
	bm = bm.AddConstraint(ineq(w, 0, 1, 0))
	bm = bm.AddConstraint(ineq(w, 7, -1, 0))
	bm = bm.AddConstraint(ineq(w, 0, -1, 1)) // j >= i
	bm = bm.AddConstraint(ineq(w, 7, 0, -1))
	m := presburger.MapFromBasic(bm)
	checkLexmin(t, m, 1)

	// And the lexmax is j = 7.
	mx, err := MapLexmax(m)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 8; i++ {
		if !mx.Contains([]int64{i, 7}) {
			t.Fatalf("lexmax should be 7 for i=%d: %v", i, mx)
		}
		if mx.Contains([]int64{i, 6}) {
			t.Fatalf("lexmax not single valued: %v", mx)
		}
	}
}

func TestLexminUnionOfCandidates(t *testing.T) {
	// Union of two relations: the "same j, next k" candidate and the
	// "next j, first k" candidate, mimicking the next-access structure of a
	// cache line walk. For k < 7 the first candidate wins, at k == 7 only the
	// second exists.
	s := presburger.NewSpace("S", "j", "k")
	o := presburger.NewSpace("T", "j2", "k2")
	mk := func() (presburger.BasicMap, int) {
		bm := presburger.UniverseBasicMap(s, o)
		w := bm.NCols()
		for dim := 0; dim < 2; dim++ {
			lo := presburger.NewVec(w)
			lo[1+dim] = 1
			bm = bm.AddConstraint(presburger.Constraint{C: lo})
			hi := presburger.NewVec(w)
			hi[1+dim] = -1
			hi[0] = 7
			bm = bm.AddConstraint(presburger.Constraint{C: hi})
		}
		return bm, w
	}
	// Candidate 1: j2 = j, k2 = k+1 (requires k <= 6).
	c1, w := mk()
	c1 = c1.AddConstraint(eq(w, 0, 1, 0, -1, 0))
	c1 = c1.AddConstraint(eq(w, 1, 0, 1, 0, -1))
	c1 = c1.AddConstraint(ineq(w, 6, 0, -1, 0, 0))
	// Candidate 2: j2 = j+1, k2 = 0 (requires j <= 6).
	c2, _ := mk()
	c2 = c2.AddConstraint(eq(w, 1, 1, 0, -1, 0))
	c2 = c2.AddConstraint(eq(w, 0, 0, 0, 0, 1))
	c2 = c2.AddConstraint(ineq(w, 6, -1, 0, 0, 0))

	m := presburger.MapFromBasics(c1, c2)
	checkLexmin(t, m, 2)
}

func TestLexminWithCacheLineFloors(t *testing.T) {
	// Next access of the same 4-element cache line within a 1-d walk:
	// { (i) -> (i2) : floor(i/4) == floor(i2/4), i2 > i, 0 <= i,i2 < 16 }.
	// The lexmin is i2 = i+1 on i mod 4 != 3, undefined otherwise.
	s := presburger.NewSpace("S", "i")
	o := presburger.NewSpace("T", "i2")
	bm := presburger.UniverseBasicMap(s, o)
	w := bm.NCols()
	bm = bm.AddConstraint(ineq(w, 0, 1, 0))
	bm = bm.AddConstraint(ineq(w, 15, -1, 0))
	bm = bm.AddConstraint(ineq(w, 0, 0, 1))
	bm = bm.AddConstraint(ineq(w, 15, 0, -1))
	bm = bm.AddConstraint(ineq(w, -1, -1, 1)) // i2 >= i+1
	// Same line: introduce c = floor(i/4) as an output-style relation via
	// two-sided bounds on both i and i2 against a shared div.
	var col int
	bm, col = bm.AddDiv(presburger.Vec{0, 1, 0}, 4)
	// 4c <= i <= 4c+3
	lo := presburger.NewVec(bm.NCols())
	lo[1], lo[col] = 1, -4
	bm = bm.AddConstraint(presburger.Constraint{C: lo})
	hi := presburger.NewVec(bm.NCols())
	hi[1], hi[col], hi[0] = -1, 4, 3
	bm = bm.AddConstraint(presburger.Constraint{C: hi})
	// 4c <= i2 <= 4c+3
	lo2 := presburger.NewVec(bm.NCols())
	lo2[2], lo2[col] = 1, -4
	bm = bm.AddConstraint(presburger.Constraint{C: lo2})
	hi2 := presburger.NewVec(bm.NCols())
	hi2[2], hi2[col], hi2[0] = -1, 4, 3
	bm = bm.AddConstraint(presburger.Constraint{C: hi2})

	checkLexmin(t, presburger.MapFromBasic(bm), 1)
}

func TestLexminRandomRelations(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		s := presburger.NewSpace("S", "x")
		o := presburger.NewSpace("T", "y", "z")
		bm := presburger.UniverseBasicMap(s, o)
		w := bm.NCols()
		bm = bm.AddConstraint(ineq(w, 0, 1, 0, 0))
		bm = bm.AddConstraint(ineq(w, 5, -1, 0, 0))
		bm = bm.AddConstraint(ineq(w, 0, 0, 1, 0))
		bm = bm.AddConstraint(ineq(w, 5, 0, -1, 0))
		bm = bm.AddConstraint(ineq(w, 0, 0, 0, 1))
		bm = bm.AddConstraint(ineq(w, 5, 0, 0, -1))
		for k := 0; k < 1+rng.Intn(2); k++ {
			bm = bm.AddConstraint(ineq(w, int64(rng.Intn(9)-2),
				int64(rng.Intn(3)-1), int64(rng.Intn(3)-1), int64(rng.Intn(3)-1)))
		}
		m := presburger.MapFromBasic(bm)
		got, err := MapLexmin(m)
		if err != nil {
			t.Logf("trial %d: fallback (%v)", trial, err)
			continue
		}
		want := bruteLexmin(t, m, 1)
		for in, y := range want {
			var x int64
			fmt.Sscanf(in, "[%d]", &x)
			if !got.Contains(append([]int64{x}, y...)) {
				t.Fatalf("trial %d: lexmin misses %s -> %v\nmap=%v\nlexmin=%v", trial, in, y, m, got)
			}
		}
		// And no smaller output is claimed.
		err = got.Scan(func(p []int64) error {
			in := fmt.Sprint(p[:1])
			if w, ok := want[in]; !ok || fmt.Sprint(w) != fmt.Sprint(p[1:]) {
				return fmt.Errorf("claimed lexmin %v but brute force says %v", p, want[in])
			}
			return nil
		})
		if err != nil {
			t.Fatalf("trial %d: %v\nmap=%v", trial, err, m)
		}
	}
}

func TestLexminUnionRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 30; trial++ {
		s := presburger.NewSpace("S", "x")
		o := presburger.NewSpace("T", "y")
		mk := func() presburger.BasicMap {
			bm := presburger.UniverseBasicMap(s, o)
			w := bm.NCols()
			bm = bm.AddConstraint(ineq(w, 0, 1, 0))
			bm = bm.AddConstraint(ineq(w, 7, -1, 0))
			bm = bm.AddConstraint(ineq(w, int64(-rng.Intn(4)), 0, 1))
			bm = bm.AddConstraint(ineq(w, int64(4+rng.Intn(4)), 0, -1))
			bm = bm.AddConstraint(ineq(w, int64(rng.Intn(7)-3), int64(rng.Intn(3)-1), 1))
			return bm
		}
		m := presburger.MapFromBasics(mk(), mk())
		got, err := MapLexmin(m)
		if err != nil {
			t.Logf("trial %d: fallback (%v)", trial, err)
			continue
		}
		want := bruteLexmin(t, m, 1)
		gotPairs := map[string]string{}
		if err := got.Scan(func(p []int64) error {
			gotPairs[fmt.Sprint(p[:1])] = fmt.Sprint(p[1:])
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if len(gotPairs) != len(want) {
			t.Fatalf("trial %d: domain mismatch got %d want %d\nmap=%v", trial, len(gotPairs), len(want), m)
		}
		for in, y := range want {
			if gotPairs[in] != fmt.Sprint(y) {
				t.Fatalf("trial %d: at %s got %s want %v\nmap=%v", trial, in, gotPairs[in], y, m)
			}
		}
	}
}

// differentialCheck computes the lexmin of m along both the domain
// partitioned path and the flat all-pairs fold and requires both to agree
// with each other and with brute force, pair for pair.
func differentialCheck(t *testing.T, trial int, m presburger.Map, nIn int) {
	t.Helper()
	part, errP := MapLexmin(m)
	flat, errF := mapLexminFlat(m, 1)
	if (errP == nil) != (errF == nil) {
		t.Fatalf("trial %d: partitioned err=%v, flat err=%v\nmap=%v", trial, errP, errF, m)
	}
	if errP != nil {
		t.Logf("trial %d: fallback (%v)", trial, errP)
		return
	}
	want := bruteLexmin(t, m, nIn)
	for name, got := range map[string]presburger.Map{"partitioned": part, "flat": flat} {
		pairs := map[string]string{}
		err := got.Scan(func(p []int64) error {
			in := fmt.Sprint(p[:nIn])
			y := fmt.Sprint(p[nIn:])
			if prev, ok := pairs[in]; ok && prev != y {
				return fmt.Errorf("not single-valued at %s: %s and %s", in, prev, y)
			}
			pairs[in] = y
			return nil
		})
		if err != nil {
			t.Fatalf("trial %d (%s): %v\nmap=%v", trial, name, err, m)
		}
		if len(pairs) != len(want) {
			t.Fatalf("trial %d (%s): domain size %d, brute force %d\nmap=%v\nresult=%v", trial, name, len(pairs), len(want), m, got)
		}
		for in, y := range want {
			if pairs[in] != fmt.Sprint(y) {
				t.Fatalf("trial %d (%s): at %s got %s want %v\nmap=%v", trial, name, in, pairs[in], y, m)
			}
		}
	}
}

// TestLexminPartitionedDifferentialTriangular drives the partitioned and
// flat combination paths over randomized unions of triangular relations —
// the family (pinned chamber constants, i <= j wedges) whose all-pairs fold
// motivated the domain partitioning. Candidates deliberately mix disjoint
// chambers (different pinned constants) with overlapping wedges inside a
// chamber so both the partition and the overlap machinery are exercised.
func TestLexminPartitionedDifferentialTriangular(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	s := presburger.NewSpace("S", "c", "i")
	o := presburger.NewSpace("T", "j")
	for trial := 0; trial < 60; trial++ {
		var bms []presburger.BasicMap
		nCand := 2 + rng.Intn(3)
		for c := 0; c < nCand; c++ {
			bm := presburger.UniverseBasicMap(s, o)
			w := bm.NCols()
			// Pin the chamber dimension for roughly two thirds of the
			// candidates; unpinned candidates overlap every chamber.
			if rng.Intn(3) > 0 {
				bm = bm.AddConstraint(eq(w, int64(-rng.Intn(2)), 1, 0, 0))
			} else {
				bm = bm.AddConstraint(ineq(w, 0, 1, 0, 0))
				bm = bm.AddConstraint(ineq(w, 1, -1, 0, 0))
			}
			bm = bm.AddConstraint(ineq(w, 0, 0, 1, 0))
			bm = bm.AddConstraint(ineq(w, 6, 0, -1, 0))
			// Triangular wedge: j >= i + shift, j bounded above.
			shift := int64(rng.Intn(3) - 1)
			bm = bm.AddConstraint(ineq(w, -shift, 0, -1, 1))
			bm = bm.AddConstraint(ineq(w, int64(5+rng.Intn(4)), 0, 0, -1))
			if rng.Intn(2) == 0 {
				bm = bm.AddConstraint(ineq(w, int64(rng.Intn(5)-1), int64(rng.Intn(3)-1), int64(rng.Intn(3)-1), 1))
			}
			bms = append(bms, bm)
		}
		differentialCheck(t, trial, presburger.MapFromBasics(bms...), 2)
	}
}

// TestLexminPartitionedDifferentialDivs drives both combination paths over
// randomized div-bearing relations (cache-line style floors shared between
// input and output), the family the previous-access lexmax of the cache
// model produces.
func TestLexminPartitionedDifferentialDivs(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	s := presburger.NewSpace("S", "c", "i")
	o := presburger.NewSpace("T", "i2")
	for trial := 0; trial < 40; trial++ {
		var bms []presburger.BasicMap
		nCand := 1 + rng.Intn(3)
		for c := 0; c < nCand; c++ {
			bm := presburger.UniverseBasicMap(s, o)
			w := bm.NCols()
			bm = bm.AddConstraint(eq(w, int64(-rng.Intn(2)), 1, 0, 0))
			bm = bm.AddConstraint(ineq(w, 0, 0, 1, 0))
			bm = bm.AddConstraint(ineq(w, 11, 0, -1, 0))
			bm = bm.AddConstraint(ineq(w, 0, 0, 0, 1))
			bm = bm.AddConstraint(ineq(w, 11, 0, 0, -1))
			// Same cache line of den 2, 3, or 4: den*e <= i,i2 <= den*e+den-1.
			den := int64(2 + rng.Intn(3))
			var col int
			bm, col = bm.AddDiv(presburger.Vec{0, 0, 1, 0}, den)
			lo := presburger.NewVec(bm.NCols())
			lo[2], lo[col] = 1, -den
			bm = bm.AddConstraint(presburger.Constraint{C: lo})
			hi := presburger.NewVec(bm.NCols())
			hi[2], hi[col], hi[0] = -1, den, den-1
			bm = bm.AddConstraint(presburger.Constraint{C: hi})
			lo2 := presburger.NewVec(bm.NCols())
			lo2[3], lo2[col] = 1, -den
			bm = bm.AddConstraint(presburger.Constraint{C: lo2})
			hi2 := presburger.NewVec(bm.NCols())
			hi2[3], hi2[col], hi2[0] = -1, den, den-1
			bm = bm.AddConstraint(presburger.Constraint{C: hi2})
			// Forward or backward within the line.
			if rng.Intn(2) == 0 {
				bm = bm.AddConstraint(ineq(bm.NCols(), -1, 0, -1, 1))
			} else {
				bm = bm.AddConstraint(ineq(bm.NCols(), -1, 0, 1, -1))
			}
			bms = append(bms, bm)
		}
		differentialCheck(t, trial, presburger.MapFromBasics(bms...), 2)
	}
}

func TestLexminWorkerCountDoesNotChangeResult(t *testing.T) {
	// The parallel per-basic-map fan-out must be invisible: the combined
	// relation (including its piece structure) has to match the sequential
	// computation exactly for any worker count.
	s := presburger.NewSpace("S", "j", "k")
	o := presburger.NewSpace("T", "j2", "k2")
	mk := func() (presburger.BasicMap, int) {
		bm := presburger.UniverseBasicMap(s, o)
		w := bm.NCols()
		for dim := 0; dim < 2; dim++ {
			lo := presburger.NewVec(w)
			lo[1+dim] = 1
			bm = bm.AddConstraint(presburger.Constraint{C: lo})
			hi := presburger.NewVec(w)
			hi[1+dim] = -1
			hi[0] = 7
			bm = bm.AddConstraint(presburger.Constraint{C: hi})
		}
		return bm, w
	}
	c1, w := mk()
	c1 = c1.AddConstraint(eq(w, 0, 1, 0, -1, 0))
	c1 = c1.AddConstraint(eq(w, 1, 0, 1, 0, -1))
	c1 = c1.AddConstraint(ineq(w, 6, 0, -1, 0, 0))
	c2, _ := mk()
	c2 = c2.AddConstraint(eq(w, 1, 1, 0, -1, 0))
	c2 = c2.AddConstraint(eq(w, 0, 0, 0, 0, 1))
	c2 = c2.AddConstraint(ineq(w, 6, -1, 0, 0, 0))
	c3, _ := mk()
	c3 = c3.AddConstraint(eq(w, 2, 1, 0, -1, 0))
	c3 = c3.AddConstraint(eq(w, 0, 0, 1, 0, -1))
	m := presburger.MapFromBasics(c1, c2, c3)

	seq, err := MapLexmin(m)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		par, err := MapLexminWith(m, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got, want := par.String(), seq.String(); got != want {
			t.Fatalf("workers=%d: result differs\nparallel:   %s\nsequential: %s", workers, got, want)
		}
	}
	mx, err := MapLexmaxWith(m, 4)
	if err != nil {
		t.Fatal(err)
	}
	seqMax, err := MapLexmax(m)
	if err != nil {
		t.Fatal(err)
	}
	if mx.String() != seqMax.String() {
		t.Fatalf("lexmax differs between worker counts:\nparallel:   %s\nsequential: %s", mx.String(), seqMax.String())
	}
}
