package tiling

import (
	"testing"

	"haystack/internal/reusedist"
	"haystack/internal/scop"
)

func rectangularNest(n int64) *scop.Program {
	p := scop.NewProgram("nest")
	a := p.NewArray("A", scop.ElemFloat64, n, n)
	b := p.NewArray("B", scop.ElemFloat64, n, n)
	i, j := scop.V("i"), scop.V("j")
	p.Add(scop.For(i, scop.C(0), scop.C(n),
		scop.For(j, scop.C(0), scop.C(n),
			scop.Stmt("S0", scop.Read(a, scop.X(j), scop.X(i)), scop.Write(b, scop.X(i), scop.X(j))))))
	return p
}

func triangularNest(n int64) *scop.Program {
	p := scop.NewProgram("tri")
	a := p.NewArray("A", scop.ElemFloat64, n, n)
	i, j := scop.V("i"), scop.V("j")
	p.Add(scop.For(i, scop.C(0), scop.C(n),
		scop.For(j, scop.C(0), scop.X(i).Plus(scop.C(1)),
			scop.Stmt("S0", scop.Read(a, scop.X(i), scop.X(j))))))
	return p
}

func TestTilePreservesIterationCount(t *testing.T) {
	for _, n := range []int64{16, 20, 33} {
		orig := rectangularNest(n)
		tiled, ok := Tile(orig, 16)
		if !ok {
			t.Fatalf("n=%d: rectangular nest should be tiled", n)
		}
		if err := tiled.Validate(); err != nil {
			t.Fatalf("n=%d: tiled program invalid: %v", n, err)
		}
		layout := scop.NewLayout(orig, scop.LayoutNatural, 64)
		cpO, err := scop.Compile(orig, layout)
		if err != nil {
			t.Fatal(err)
		}
		cpT, err := scop.Compile(tiled, scop.NewLayout(tiled, scop.LayoutNatural, 64))
		if err != nil {
			t.Fatal(err)
		}
		if cpO.CountAccesses() != cpT.CountAccesses() {
			t.Fatalf("n=%d: tiling changed the number of accesses: %d vs %d",
				n, cpO.CountAccesses(), cpT.CountAccesses())
		}
	}
}

func TestTileTouchesSameMemory(t *testing.T) {
	orig := rectangularNest(24)
	tiled, _ := Tile(orig, 16)
	layout := scop.NewLayout(orig, scop.LayoutNatural, 64)
	profO := reusedist.ProfileProgram(mustCompile(t, orig, layout), 64)
	profT := reusedist.ProfileProgram(mustCompile(t, tiled, scop.NewLayout(tiled, scop.LayoutNatural, 64)), 64)
	// Same footprint (compulsory misses) and same trace length; the reuse
	// pattern may differ, which is the point of tiling.
	if profO.Compulsory != profT.Compulsory {
		t.Fatalf("footprint changed: %d vs %d lines", profO.Compulsory, profT.Compulsory)
	}
	if profO.Accesses != profT.Accesses {
		t.Fatalf("trace length changed: %d vs %d", profO.Accesses, profT.Accesses)
	}
}

func TestTileImprovesLocalityOfTransposedAccess(t *testing.T) {
	// Walking A column-wise while writing B row-wise has poor locality; a
	// 16x16 tiling must reduce misses in a small cache.
	n := int64(128)
	orig := rectangularNest(n)
	tiled, _ := Tile(orig, 16)
	layout := scop.NewLayout(orig, scop.LayoutNatural, 64)
	profO := reusedist.ProfileProgram(mustCompile(t, orig, layout), 64)
	profT := reusedist.ProfileProgram(mustCompile(t, tiled, scop.NewLayout(tiled, scop.LayoutNatural, 64)), 64)
	capLines := int64(8 * 1024 / 64)
	if mo, mt := profO.MissesForCapacity(capLines), profT.MissesForCapacity(capLines); mt >= mo {
		t.Fatalf("tiling should reduce misses: %d (original) vs %d (tiled)", mo, mt)
	}
}

func TestTriangularNestNotTiled(t *testing.T) {
	p := triangularNest(32)
	tiled, ok := Tile(p, 16)
	if ok {
		t.Fatal("triangular band must not be tiled by the rectangular tiler")
	}
	if tiled == p {
		t.Fatal("Tile must still return a (possibly identical) program")
	}
}

func TestTileSizeOneIsIdentity(t *testing.T) {
	p := rectangularNest(8)
	out, ok := Tile(p, 1)
	if ok || out != p {
		t.Fatal("tile size 1 must be the identity")
	}
}

// imperfectNest wraps a statement and a rectangular two-loop band in the
// same outer loop: the outer loop cannot join a band, but the inner band
// must still be tiled.
func imperfectNest(n int64) *scop.Program {
	p := scop.NewProgram("imperfect")
	a := p.NewArray("A", scop.ElemFloat64, n, n)
	d := p.NewArray("d", scop.ElemFloat64, n)
	t, i, j := scop.V("t"), scop.V("i"), scop.V("j")
	p.Add(scop.For(t, scop.C(0), scop.C(2),
		scop.Stmt("S0", scop.Write(d, scop.X(t))),
		scop.For(i, scop.C(0), scop.C(n),
			scop.For(j, scop.C(0), scop.C(n),
				scop.Stmt("S1", scop.Read(a, scop.X(j), scop.X(i)), scop.Write(a, scop.X(i), scop.X(j)))))))
	return p
}

// triangularOverRectangular nests a rectangular two-loop band below a
// triangular pair: only the inner band may be tiled, with bounds that
// reference the enclosing loop variables.
func triangularOverRectangular(n int64) *scop.Program {
	p := scop.NewProgram("tri-over-rect")
	a := p.NewArray("A", scop.ElemFloat64, n, n)
	i, j, k, l := scop.V("i"), scop.V("j"), scop.V("k"), scop.V("l")
	p.Add(scop.For(i, scop.C(0), scop.C(n),
		scop.For(j, scop.C(0), scop.X(i).Plus(scop.C(1)),
			scop.For(k, scop.C(0), scop.C(n),
				scop.For(l, scop.C(0), scop.C(n),
					scop.Stmt("S0", scop.Read(a, scop.X(k), scop.X(l)), scop.Read(a, scop.X(l), scop.X(k))))))))
	return p
}

func TestImperfectNestTilesInnerBand(t *testing.T) {
	for _, n := range []int64{16, 20} {
		orig := imperfectNest(n)
		tiled, ok := Tile(orig, 8)
		if !ok {
			t.Fatalf("n=%d: the inner rectangular band of the imperfect nest must be tiled", n)
		}
		if err := tiled.Validate(); err != nil {
			t.Fatalf("n=%d: tiled program invalid: %v", n, err)
		}
		cpO := mustCompile(t, orig, scop.NewLayout(orig, scop.LayoutNatural, 64))
		cpT := mustCompile(t, tiled, scop.NewLayout(tiled, scop.LayoutNatural, 64))
		if cpO.CountAccesses() != cpT.CountAccesses() {
			t.Fatalf("n=%d: access count changed: %d vs %d", n, cpO.CountAccesses(), cpT.CountAccesses())
		}
		profO := reusedist.ProfileProgram(cpO, 64)
		profT := reusedist.ProfileProgram(cpT, 64)
		if profO.Compulsory != profT.Compulsory {
			t.Fatalf("n=%d: footprint changed: %d vs %d lines", n, profO.Compulsory, profT.Compulsory)
		}
	}
}

func TestTriangularOverRectangularTilesInnerBandOnly(t *testing.T) {
	orig := triangularOverRectangular(6)
	tiled, ok := Tile(orig, 4)
	if !ok {
		t.Fatal("the rectangular inner band must be tiled even below a triangular pair")
	}
	if err := tiled.Validate(); err != nil {
		t.Fatalf("tiled program invalid: %v", err)
	}
	cpO := mustCompile(t, orig, scop.NewLayout(orig, scop.LayoutNatural, 64))
	cpT := mustCompile(t, tiled, scop.NewLayout(tiled, scop.LayoutNatural, 64))
	if cpO.CountAccesses() != cpT.CountAccesses() {
		t.Fatalf("access count changed: %d vs %d", cpO.CountAccesses(), cpT.CountAccesses())
	}
	if profO, profT := reusedist.ProfileProgram(cpO, 64), reusedist.ProfileProgram(cpT, 64); profO.Compulsory != profT.Compulsory {
		t.Fatalf("footprint changed: %d vs %d lines", profO.Compulsory, profT.Compulsory)
	}
}

// TestTileSizeAtLeastExtent: tiles covering the whole iteration space must
// keep the program semantically identical — a single tile executes the
// original order, so even the full reuse profile is unchanged.
func TestTileSizeAtLeastExtent(t *testing.T) {
	n := int64(16)
	for _, tile := range []int64{16, 32, 100} {
		orig := rectangularNest(n)
		tiled, ok := Tile(orig, tile)
		if !ok {
			t.Fatalf("tile=%d: the rectangular band must still be tiled", tile)
		}
		if err := tiled.Validate(); err != nil {
			t.Fatalf("tile=%d: tiled program invalid: %v", tile, err)
		}
		cpO := mustCompile(t, orig, scop.NewLayout(orig, scop.LayoutNatural, 64))
		cpT := mustCompile(t, tiled, scop.NewLayout(tiled, scop.LayoutNatural, 64))
		profO := reusedist.ProfileProgram(cpO, 64)
		profT := reusedist.ProfileProgram(cpT, 64)
		if profO.Accesses != profT.Accesses || profO.Compulsory != profT.Compulsory {
			t.Fatalf("tile=%d: trace changed: %d/%d vs %d/%d accesses/lines",
				tile, profO.Accesses, profO.Compulsory, profT.Accesses, profT.Compulsory)
		}
		for _, lines := range []int64{4, 16, 64, 256} {
			if mo, mt := profO.MissesForCapacity(lines), profT.MissesForCapacity(lines); mo != mt {
				t.Fatalf("tile=%d: single-tile tiling changed the reuse profile at %d lines: %d vs %d",
					tile, lines, mo, mt)
			}
		}
	}
}

func mustCompile(t *testing.T, p *scop.Program, layout *scop.Layout) *scop.CompiledProgram {
	t.Helper()
	cp, err := scop.Compile(p, layout)
	if err != nil {
		t.Fatal(err)
	}
	return cp
}
