// Package tiling implements rectangular loop tiling of static control
// programs, the transformation the paper applies with PPCG (tile size 16, no
// skewing, no fusion) to evaluate the cache model on more deeply nested
// codes (section 4.5).
//
// The transformation strip-mines every perfectly nested band of loops and
// hoists the tile loops of the band above the point loops:
//
//	for i in [0,N): for j in [0,M): S(i,j)
//
// becomes
//
//	for it in [0, ceil(N/T)): for jt in [0, ceil(M/T)):
//	  for i in [max(0, it*T), min(N, (it+1)*T)):
//	    for j in [max(0, jt*T), min(M, (jt+1)*T)): S(i,j)
//
// Only bands whose loop bounds do not depend on the band's own loop
// variables are tiled (a rectangular tiling in the sense of the paper);
// loops of triangular bands and imperfect nest parts are kept as they are.
// The transformation is purely syntactic: it preserves the execution order
// of rectangular bands up to the tile-by-tile reordering the paper studies.
package tiling

import (
	"haystack/internal/scop"
)

// Tile returns a tiled copy of the program using the given tile size for
// every tiled dimension. The original program is not modified. The second
// return value reports whether at least one band was tiled; the paper
// excludes kernels without a rectangular tiling from the tiled-code
// experiment.
func Tile(p *scop.Program, tileSize int64) (*scop.Program, bool) {
	if tileSize <= 1 {
		return p, false
	}
	out := scop.NewProgram(p.Name + "-tiled")
	out.Arrays = p.Arrays
	tiled := false
	for _, n := range p.Root {
		nn, t := tileNode(n, tileSize)
		tiled = tiled || t
		out.Add(nn)
	}
	return out, tiled
}

// tileNode recursively tiles maximal perfect rectangular bands.
func tileNode(n scop.Node, tileSize int64) (scop.Node, bool) {
	loop, ok := n.(*scop.Loop)
	if !ok {
		return n, false
	}
	band := collectBand(loop)
	if len(band) >= 1 && bandIsRectangular(band) {
		// Recurse into the body below the band first.
		inner := band[len(band)-1].Body
		var newInner []scop.Node
		innerTiled := false
		for _, child := range inner {
			c, t := tileNode(child, tileSize)
			innerTiled = innerTiled || t
			newInner = append(newInner, c)
		}
		if len(band) >= 2 {
			return buildTiledBand(band, newInner, tileSize), true
		}
		// A single rectangular loop is not worth tiling on its own; keep it
		// but use the possibly tiled body.
		cp := *band[0]
		cp.Body = newInner
		return &cp, innerTiled
	}
	// Not a rectangular band: keep the loop, recurse into its body.
	cp := *loop
	cp.Body = nil
	tiled := false
	for _, child := range loop.Body {
		c, t := tileNode(child, tileSize)
		tiled = tiled || t
		cp.Body = append(cp.Body, c)
	}
	return &cp, tiled
}

// collectBand returns the maximal chain of perfectly nested loops starting
// at l (each loop's body consists of exactly one loop).
func collectBand(l *scop.Loop) []*scop.Loop {
	band := []*scop.Loop{l}
	cur := l
	for len(cur.Body) == 1 {
		next, ok := cur.Body[0].(*scop.Loop)
		if !ok {
			break
		}
		band = append(band, next)
		cur = next
	}
	return band
}

// bandIsRectangular reports whether no loop bound of the band references a
// loop variable of the band itself (bounds may reference loop variables of
// enclosing loops outside the band).
func bandIsRectangular(band []*scop.Loop) bool {
	vars := map[string]bool{}
	for _, l := range band {
		vars[l.Var.Name] = true
	}
	usesBandVar := func(e scop.Expr) bool {
		for name, c := range e.Coeffs {
			if c != 0 && vars[name] {
				return true
			}
		}
		return false
	}
	for _, l := range band {
		for _, e := range append([]scop.Expr{l.Lower, l.Upper}, append(l.ExtraLower, l.ExtraUpper...)...) {
			if usesBandVar(e) {
				return false
			}
		}
		if len(l.ExtraLower) > 0 || len(l.ExtraUpper) > 0 {
			// Already tiled (or otherwise multi-bounded): leave untouched.
			return false
		}
	}
	return true
}

// buildTiledBand emits the tile loops followed by the point loops of the
// band, with the given body below the band.
func buildTiledBand(band []*scop.Loop, body []scop.Node, tileSize int64) scop.Node {
	// Point loops, innermost first.
	inner := body
	for i := len(band) - 1; i >= 0; i-- {
		l := band[i]
		tv := scop.V(l.Var.Name + "t")
		pointLower := []scop.Expr{l.Lower, scop.X(tv).Scale(tileSize)}
		pointUpper := []scop.Expr{l.Upper, scop.X(tv).Scale(tileSize).Plus(scop.C(tileSize))}
		point := scop.ForBounded(l.Var, pointLower, pointUpper, inner...)
		inner = []scop.Node{point}
	}
	// Tile loops, innermost first. The tile loop of dimension i ranges over
	// [floor(lower/T), ceil(upper/T)): a slight over-approximation of the
	// tile index range is harmless because the point loop bounds clamp the
	// iterations to the original domain; to keep the domain exact we bound
	// the tile index by the original bounds divided by the tile size, which
	// is exact for the constant bounds of rectangular bands.
	for i := len(band) - 1; i >= 0; i-- {
		l := band[i]
		tv := scop.V(l.Var.Name + "t")
		lower, upper := constDiv(l.Lower, tileSize, false), constDiv(l.Upper, tileSize, true)
		tile := scop.For(tv, lower, upper, inner...)
		inner = []scop.Node{tile}
	}
	return inner[0]
}

// constDiv divides a constant expression by the tile size (floor or ceil).
// Rectangular bands have constant bounds, so the expression has no variable
// terms; if it does, the bound is kept conservatively by not dividing the
// variable coefficients (this situation cannot arise for bands accepted by
// bandIsRectangular with constant bounds, but outer-variable bounds are kept
// correct by falling back to an over-approximation plus point-loop clamping).
func constDiv(e scop.Expr, t int64, ceil bool) scop.Expr {
	if len(e.Coeffs) == 0 || allZeroCoeffs(e) {
		v := e.Const / t
		if ceil && e.Const%t != 0 {
			v++
		}
		if !ceil && e.Const < 0 && e.Const%t != 0 {
			v--
		}
		return scop.C(v)
	}
	// Over-approximate: keep the expression as is (tile indices then range
	// further than necessary; the point loops clamp the excess iterations,
	// and empty tiles contribute no statement instances).
	return e
}

func allZeroCoeffs(e scop.Expr) bool {
	for _, c := range e.Coeffs {
		if c != 0 {
			return false
		}
	}
	return true
}
