// Package cachesim is a trace-driven cache simulator in the spirit of
// Dinero IV: it replays the exact memory trace of a static control program
// through a configurable cache hierarchy and counts hits and misses per
// level. It provides fully associative and set-associative caches with true
// LRU or tree-based pseudo-LRU replacement, write-allocate behaviour, an
// optional next-line prefetcher, and inclusive multi-level hierarchies.
//
// The simulator serves three roles in the reproduction: it is the Dinero IV
// stand-in for the performance comparisons, the ground truth for validating
// the analytical model (fully associative LRU configuration), and — in its
// detailed set-associative pseudo-LRU + prefetcher configuration — the
// substitute for the PAPI hardware-counter measurements of the paper.
package cachesim

import (
	"fmt"

	"haystack/internal/scop"
)

// Policy selects the replacement policy of a cache level.
type Policy int

const (
	// LRU is true least-recently-used replacement.
	LRU Policy = iota
	// PLRU is tree-based pseudo-LRU replacement (requires a power-of-two
	// associativity).
	PLRU
)

func (p Policy) String() string {
	switch p {
	case LRU:
		return "LRU"
	case PLRU:
		return "PLRU"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// LevelConfig describes one cache level.
type LevelConfig struct {
	Name      string
	SizeBytes int64
	// Ways is the associativity; 0 means fully associative.
	Ways   int
	Policy Policy
	// NextLinePrefetch enables a simple next-line prefetcher: every demand
	// miss also installs the following cache line.
	NextLinePrefetch bool
}

// Config describes a cache hierarchy (level 0 is closest to the core).
type Config struct {
	LineSize int64
	Levels   []LevelConfig
}

// LevelResult holds the counters of one simulated cache level.
type LevelResult struct {
	Name       string
	Accesses   int64
	Hits       int64
	Misses     int64
	Compulsory int64 // first access to a cache line (cold misses)
}

// Result holds the counters of a full simulation.
type Result struct {
	TotalAccesses int64
	Levels        []LevelResult
}

// level is the mutable state of one cache level during simulation.
type level struct {
	cfg      LevelConfig
	lineSize int64
	numSets  int64
	ways     int

	// Per set: the resident lines and their replacement state.
	sets []cacheSet

	// seen tracks which lines have ever been resident, to classify
	// compulsory misses.
	seen map[int64]bool

	res LevelResult
}

type cacheSet struct {
	// lines holds the resident line addresses in LRU order for the LRU
	// policy (index 0 = most recently used); for PLRU the order is the way
	// position and plru holds the tree bits.
	lines []int64
	valid []bool
	plru  uint64
}

// Hierarchy is a multi-level inclusive cache hierarchy fed one access at a
// time.
type Hierarchy struct {
	cfg    Config
	levels []*level
	total  int64
}

// Geometry derives the set/way geometry of one cache level exactly as the
// simulator builds its state: numLines = sizeBytes/lineSize lines total;
// ways of zero (or larger than the line count) selects full associativity;
// numSets = numLines/ways sets indexed by line mod numSets (integer
// division — a remainder smaller than one full set is unused, matching
// hardware that requires power-of-two friendly dimensioning). The analytical
// model calls the same function, so the two engines can never disagree on
// how a configuration partitions into sets.
func Geometry(sizeBytes, lineSize int64, ways int) (numSets, effWays int64, err error) {
	if lineSize <= 0 {
		return 0, 0, fmt.Errorf("cachesim: line size must be positive")
	}
	if sizeBytes <= 0 {
		return 0, 0, fmt.Errorf("cachesim: cache size must be positive")
	}
	if ways < 0 {
		return 0, 0, fmt.Errorf("cachesim: associativity must be non-negative, got %d", ways)
	}
	numLines := sizeBytes / lineSize
	if numLines == 0 {
		return 0, 0, fmt.Errorf("cachesim: cache of %d bytes smaller than one %d-byte line", sizeBytes, lineSize)
	}
	w := int64(ways)
	if w == 0 || w > numLines {
		w = numLines
	}
	numSets = numLines / w
	if numSets == 0 {
		numSets = 1
	}
	return numSets, w, nil
}

// NewHierarchy builds the simulation state for a configuration.
func NewHierarchy(cfg Config) (*Hierarchy, error) {
	if cfg.LineSize <= 0 {
		return nil, fmt.Errorf("cachesim: line size must be positive")
	}
	h := &Hierarchy{cfg: cfg}
	for _, lc := range cfg.Levels {
		if lc.SizeBytes <= 0 {
			return nil, fmt.Errorf("cachesim: level %q has non-positive size", lc.Name)
		}
		numSets64, ways64, err := Geometry(lc.SizeBytes, cfg.LineSize, lc.Ways)
		if err != nil {
			return nil, fmt.Errorf("cachesim: level %q: %w", lc.Name, err)
		}
		numSets, ways := numSets64, int(ways64)
		if lc.Policy == PLRU && ways&(ways-1) != 0 {
			return nil, fmt.Errorf("cachesim: PLRU requires power-of-two associativity, got %d", ways)
		}
		l := &level{cfg: lc, lineSize: cfg.LineSize, numSets: numSets, ways: ways, seen: map[int64]bool{}}
		l.res.Name = lc.Name
		l.sets = make([]cacheSet, numSets)
		for i := range l.sets {
			l.sets[i].lines = make([]int64, ways)
			l.sets[i].valid = make([]bool, ways)
		}
		h.levels = append(h.levels, l)
	}
	return h, nil
}

// Access simulates one memory access (the address is a byte address; write
// accesses are write-allocate, so they behave like reads for miss counting).
func (h *Hierarchy) Access(addr int64, write bool) {
	h.total++
	line := addr / h.cfg.LineSize
	h.accessLine(line, 0, true)
}

// accessLine performs a (demand or prefetch) access of a line starting at
// the given level, recursing into the next level on a miss.
func (h *Hierarchy) accessLine(line int64, levelIdx int, demand bool) {
	if levelIdx >= len(h.levels) {
		return
	}
	l := h.levels[levelIdx]
	if demand {
		l.res.Accesses++
	}
	hit := l.touch(line)
	if hit {
		if demand {
			l.res.Hits++
		}
		return
	}
	if demand {
		l.res.Misses++
		if !l.seen[line] {
			l.res.Compulsory++
		}
	}
	l.seen[line] = true
	l.install(line)
	// Miss: fetch from the next level.
	h.accessLine(line, levelIdx+1, demand)
	if demand && l.cfg.NextLinePrefetch {
		// Prefetch the next line into this and all farther levels without
		// counting it as a demand access.
		h.prefetchLine(line+1, levelIdx)
	}
}

func (h *Hierarchy) prefetchLine(line int64, levelIdx int) {
	if levelIdx >= len(h.levels) {
		return
	}
	l := h.levels[levelIdx]
	if l.touch(line) {
		return
	}
	l.seen[line] = true
	l.install(line)
	h.prefetchLine(line, levelIdx+1)
}

// touch looks a line up and updates the replacement state on a hit.
func (l *level) touch(line int64) bool {
	set := &l.sets[l.setIndex(line)]
	for w := 0; w < l.ways; w++ {
		if set.valid[w] && set.lines[w] == line {
			l.promote(set, w)
			return true
		}
	}
	return false
}

// install places a line in its set, evicting the replacement victim.
func (l *level) install(line int64) {
	set := &l.sets[l.setIndex(line)]
	// Prefer an invalid way.
	for w := 0; w < l.ways; w++ {
		if !set.valid[w] {
			set.valid[w] = true
			set.lines[w] = line
			l.promote(set, w)
			return
		}
	}
	w := l.victim(set)
	set.lines[w] = line
	l.promote(set, w)
}

func (l *level) setIndex(line int64) int64 {
	if l.numSets == 1 {
		return 0
	}
	idx := line % l.numSets
	if idx < 0 {
		idx += l.numSets
	}
	return idx
}

// promote updates the replacement metadata after way w was referenced.
func (l *level) promote(set *cacheSet, w int) {
	switch l.cfg.Policy {
	case LRU:
		// Move way w to the front (index 0) keeping the others in order.
		line := set.lines[w]
		valid := set.valid[w]
		copy(set.lines[1:w+1], set.lines[0:w])
		copy(set.valid[1:w+1], set.valid[0:w])
		set.lines[0] = line
		set.valid[0] = valid
	case PLRU:
		// Walk the tree (heap order: children of node n are 2n+1 and 2n+2)
		// towards way w and make every bit on the path point away from the
		// accessed half (bit set means "victim candidate is in the right
		// subtree").
		node, lo, hi := 0, 0, l.ways
		for hi-lo > 1 {
			mid := (lo + hi) / 2
			if w < mid {
				set.plru |= 1 << uint(node)
				node = 2*node + 1
				hi = mid
			} else {
				set.plru &^= 1 << uint(node)
				node = 2*node + 2
				lo = mid
			}
		}
	}
}

// victim selects the way to evict.
func (l *level) victim(set *cacheSet) int {
	switch l.cfg.Policy {
	case LRU:
		return l.ways - 1
	case PLRU:
		// Follow the tree bits towards the pseudo-least-recently-used way.
		node, lo, hi := 0, 0, l.ways
		for hi-lo > 1 {
			mid := (lo + hi) / 2
			if set.plru&(1<<uint(node)) != 0 {
				node = 2*node + 2
				lo = mid
			} else {
				node = 2*node + 1
				hi = mid
			}
		}
		return lo
	default:
		return 0
	}
}

// Results returns the per-level counters collected so far.
func (h *Hierarchy) Results() Result {
	res := Result{TotalAccesses: h.total}
	for _, l := range h.levels {
		res.Levels = append(res.Levels, l.res)
	}
	return res
}

// Simulate replays the full trace of a compiled program through the
// hierarchy described by cfg.
func Simulate(cp *scop.CompiledProgram, cfg Config) (Result, error) {
	h, err := NewHierarchy(cfg)
	if err != nil {
		return Result{}, err
	}
	cp.ForEachAccess(func(ref scop.MemRef) bool {
		h.Access(ref.Addr, ref.Write)
		return true
	})
	return h.Results(), nil
}
