package cachesim

import (
	"math/rand"
	"testing"

	"haystack/internal/scop"
)

func fullyAssoc(name string, size int64) LevelConfig {
	return LevelConfig{Name: name, SizeBytes: size, Ways: 0, Policy: LRU}
}

func TestFullyAssociativeLRUBasics(t *testing.T) {
	h, err := NewHierarchy(Config{LineSize: 64, Levels: []LevelConfig{fullyAssoc("L1", 2*64)}})
	if err != nil {
		t.Fatal(err)
	}
	// Two-line cache: A, B hit after touch; adding C evicts A (LRU).
	seq := []int64{0, 64, 0, 64, 128, 0}
	for _, a := range seq {
		h.Access(a, false)
	}
	res := h.Results()
	l1 := res.Levels[0]
	// Misses: A(comp), B(comp), C(comp), A(capacity) = 4; hits: 2.
	if l1.Misses != 4 || l1.Hits != 2 || l1.Compulsory != 3 {
		t.Fatalf("got %+v", l1)
	}
	if res.TotalAccesses != int64(len(seq)) {
		t.Fatalf("accesses = %d", res.TotalAccesses)
	}
}

func TestSetAssociativeConflictMisses(t *testing.T) {
	// Direct-mapped cache with 2 sets: lines 0 and 2 conflict.
	h, err := NewHierarchy(Config{LineSize: 64, Levels: []LevelConfig{
		{Name: "L1", SizeBytes: 2 * 64, Ways: 1, Policy: LRU},
	}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		h.Access(0, false)    // line 0 -> set 0
		h.Access(2*64, false) // line 2 -> set 0 (conflict)
	}
	res := h.Results().Levels[0]
	if res.Hits != 0 || res.Misses != 8 {
		t.Fatalf("direct-mapped conflicts: %+v", res)
	}
	// The same trace in a fully associative cache of the same size has no
	// conflicts.
	h2, _ := NewHierarchy(Config{LineSize: 64, Levels: []LevelConfig{fullyAssoc("L1", 2*64)}})
	for i := 0; i < 4; i++ {
		h2.Access(0, false)
		h2.Access(2*64, false)
	}
	res2 := h2.Results().Levels[0]
	if res2.Misses != 2 || res2.Hits != 6 {
		t.Fatalf("fully associative: %+v", res2)
	}
}

func TestPLRUMatchesLRUOnSequentialReuse(t *testing.T) {
	// For a working set that fits, PLRU and LRU both give pure hits after the
	// cold misses.
	mk := func(policy Policy) LevelResult {
		h, err := NewHierarchy(Config{LineSize: 64, Levels: []LevelConfig{
			{Name: "L1", SizeBytes: 8 * 64, Ways: 8, Policy: policy},
		}})
		if err != nil {
			t.Fatal(err)
		}
		for rep := 0; rep < 10; rep++ {
			for line := int64(0); line < 8; line++ {
				h.Access(line*64, false)
			}
		}
		return h.Results().Levels[0]
	}
	lru, plru := mk(LRU), mk(PLRU)
	if lru.Misses != 8 || plru.Misses != 8 {
		t.Fatalf("lru=%+v plru=%+v", lru, plru)
	}
}

func TestPLRURequiresPowerOfTwo(t *testing.T) {
	_, err := NewHierarchy(Config{LineSize: 64, Levels: []LevelConfig{
		{Name: "L1", SizeBytes: 6 * 64, Ways: 3, Policy: PLRU},
	}})
	if err == nil {
		t.Fatal("expected error for non power-of-two PLRU associativity")
	}
}

func TestPLRUDiffersFromLRUUnderThrashing(t *testing.T) {
	// A cyclic pattern over ways+1 lines mapping to one set: LRU misses every
	// access; tree PLRU keeps some lines and scores hits. This documents that
	// the two policies are genuinely different (an error source the paper
	// names for real hardware).
	mk := func(policy Policy) LevelResult {
		h, err := NewHierarchy(Config{LineSize: 64, Levels: []LevelConfig{
			{Name: "L1", SizeBytes: 4 * 64, Ways: 4, Policy: policy},
		}})
		if err != nil {
			t.Fatal(err)
		}
		for rep := 0; rep < 50; rep++ {
			for line := int64(0); line < 5; line++ {
				h.Access(line*64, false)
			}
		}
		return h.Results().Levels[0]
	}
	lru, plru := mk(LRU), mk(PLRU)
	if lru.Hits != 0 {
		t.Fatalf("true LRU should thrash: %+v", lru)
	}
	if plru.Hits == 0 {
		t.Fatalf("tree PLRU should retain some lines under thrashing: %+v", plru)
	}
}

func TestMultiLevelInclusive(t *testing.T) {
	h, err := NewHierarchy(Config{LineSize: 64, Levels: []LevelConfig{
		fullyAssoc("L1", 2*64),
		fullyAssoc("L2", 8*64),
	}})
	if err != nil {
		t.Fatal(err)
	}
	// Working set of 4 lines: fits L2 but not L1.
	for rep := 0; rep < 5; rep++ {
		for line := int64(0); line < 4; line++ {
			h.Access(line*64, false)
		}
	}
	res := h.Results()
	l1, l2 := res.Levels[0], res.Levels[1]
	if l1.Misses != 20 {
		t.Fatalf("L1 should miss every access with a cyclic pattern over 4 lines in 2-line LRU: %+v", l1)
	}
	if l2.Misses != 4 || l2.Hits != 16 {
		t.Fatalf("L2 should only take the cold misses: %+v", l2)
	}
	if l2.Accesses != l1.Misses {
		t.Fatalf("L2 accesses (%d) must equal L1 misses (%d)", l2.Accesses, l1.Misses)
	}
}

func TestPrefetcherReducesSequentialMisses(t *testing.T) {
	mk := func(prefetch bool) LevelResult {
		h, err := NewHierarchy(Config{LineSize: 64, Levels: []LevelConfig{
			{Name: "L1", SizeBytes: 64 * 64, Ways: 8, Policy: LRU, NextLinePrefetch: prefetch},
		}})
		if err != nil {
			t.Fatal(err)
		}
		for line := int64(0); line < 32; line++ {
			h.Access(line*64, false)
		}
		return h.Results().Levels[0]
	}
	plain, pf := mk(false), mk(true)
	if plain.Misses != 32 {
		t.Fatalf("plain sequential walk should miss every line: %+v", plain)
	}
	if pf.Misses >= plain.Misses {
		t.Fatalf("next-line prefetching should reduce demand misses: %+v vs %+v", pf, plain)
	}
}

func TestWriteAllocate(t *testing.T) {
	h, _ := NewHierarchy(Config{LineSize: 64, Levels: []LevelConfig{fullyAssoc("L1", 4*64)}})
	h.Access(0, true)  // write miss allocates
	h.Access(0, false) // read hits
	res := h.Results().Levels[0]
	if res.Misses != 1 || res.Hits != 1 {
		t.Fatalf("write-allocate broken: %+v", res)
	}
}

func TestSimulateProgram(t *testing.T) {
	p := scop.NewProgram("stream")
	a := p.NewArray("A", scop.ElemFloat64, 1024)
	i := scop.V("i")
	p.Add(scop.For(i, scop.C(0), scop.C(1024), scop.Stmt("S0", scop.Read(a, scop.X(i)))))
	layout := scop.NewLayout(p, scop.LayoutNatural, 64)
	cp, err := scop.Compile(p, layout)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(cp, Config{LineSize: 64, Levels: []LevelConfig{fullyAssoc("L1", 32*1024)}})
	if err != nil {
		t.Fatal(err)
	}
	l1 := res.Levels[0]
	// 1024 elements x 8 bytes / 64-byte lines = 128 cold misses, rest hits.
	if l1.Misses != 128 || l1.Compulsory != 128 || l1.Hits != 1024-128 {
		t.Fatalf("stream simulation: %+v", l1)
	}
}

func TestRandomTraceLevelInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	h, err := NewHierarchy(Config{LineSize: 64, Levels: []LevelConfig{
		{Name: "L1", SizeBytes: 8 * 64, Ways: 2, Policy: LRU},
		{Name: "L2", SizeBytes: 64 * 64, Ways: 4, Policy: LRU},
	}})
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < 20000; n++ {
		h.Access(int64(rng.Intn(256))*64, rng.Intn(4) == 0)
	}
	res := h.Results()
	l1, l2 := res.Levels[0], res.Levels[1]
	if l1.Hits+l1.Misses != l1.Accesses || l2.Hits+l2.Misses != l2.Accesses {
		t.Fatalf("hits+misses must equal accesses: %+v", res)
	}
	if l2.Accesses != l1.Misses {
		t.Fatalf("inclusive hierarchy: L2 accesses must equal L1 misses: %+v", res)
	}
	if l1.Compulsory > l1.Misses || l2.Compulsory > l2.Misses {
		t.Fatalf("compulsory misses cannot exceed misses: %+v", res)
	}
	if l2.Misses > l1.Misses {
		t.Fatalf("L2 misses cannot exceed L1 misses in an inclusive hierarchy: %+v", res)
	}
}

// TestGeometry pins the set/way derivation both engines share: clamping of
// oversized or zero ways to full associativity, integer set division, and
// the error cases.
func TestGeometry(t *testing.T) {
	cases := []struct {
		size, line int64
		ways       int
		sets, eff  int64
	}{
		{4096, 64, 0, 1, 64},   // fully associative: one set of all lines
		{4096, 64, 64, 1, 64},  // ways == numLines is the same single set
		{4096, 64, 128, 1, 64}, // oversized ways clamp to full associativity
		{4096, 64, 8, 8, 8},    // plain 8-way
		{4096, 64, 1, 64, 1},   // direct mapped
		{512, 64, 4, 2, 4},     // small cache, two sets
		{192, 64, 2, 1, 2},     // 3 lines, 2 ways: remainder line unused
		{64, 64, 4, 1, 1},      // single-line cache clamps to one way
		{1 << 20, 64, 16, 1024, 16},
	}
	for _, c := range cases {
		sets, eff, err := Geometry(c.size, c.line, c.ways)
		if err != nil {
			t.Errorf("Geometry(%d,%d,%d): %v", c.size, c.line, c.ways, err)
			continue
		}
		if sets != c.sets || eff != c.eff {
			t.Errorf("Geometry(%d,%d,%d) = (%d sets, %d ways), want (%d, %d)",
				c.size, c.line, c.ways, sets, eff, c.sets, c.eff)
		}
	}
	if _, _, err := Geometry(32, 64, 0); err == nil {
		t.Error("sub-line cache must fail")
	}
	if _, _, err := Geometry(4096, 0, 0); err == nil {
		t.Error("zero line size must fail")
	}
	if _, _, err := Geometry(4096, 64, -1); err == nil {
		t.Error("negative ways must fail")
	}
}
