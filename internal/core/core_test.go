package core

import (
	"testing"

	"haystack/internal/scop"
)

// Test kernels -----------------------------------------------------------

// paperExample is the program of Figure 2.
func paperExample() *scop.Program {
	p := scop.NewProgram("example")
	m := p.NewArray("M", scop.ElemFloat64, 4)
	i, j := scop.V("i"), scop.V("j")
	p.Add(
		scop.For(i, scop.C(0), scop.C(4), scop.Stmt("S0", scop.Write(m, scop.X(i)))),
		scop.For(j, scop.C(0), scop.C(4), scop.Stmt("S1", scop.Read(m, scop.C(3).Minus(scop.X(j))))),
	)
	return p
}

func gemm(n int64) *scop.Program {
	p := scop.NewProgram("gemm")
	a := p.NewArray("A", scop.ElemFloat64, n, n)
	b := p.NewArray("B", scop.ElemFloat64, n, n)
	c := p.NewArray("C", scop.ElemFloat64, n, n)
	i, j, k := scop.V("i"), scop.V("j"), scop.V("k")
	p.Add(
		scop.For(i, scop.C(0), scop.C(n),
			scop.For(j, scop.C(0), scop.C(n),
				scop.Stmt("S0", scop.Read(c, scop.X(i), scop.X(j)), scop.Write(c, scop.X(i), scop.X(j))),
				scop.For(k, scop.C(0), scop.C(n),
					scop.Stmt("S1",
						scop.Read(a, scop.X(i), scop.X(k)),
						scop.Read(b, scop.X(k), scop.X(j)),
						scop.Read(c, scop.X(i), scop.X(j)),
						scop.Write(c, scop.X(i), scop.X(j)))))))
	return p
}

func jacobi1d(n, tsteps int64) *scop.Program {
	p := scop.NewProgram("jacobi-1d")
	a := p.NewArray("A", scop.ElemFloat64, n)
	b := p.NewArray("B", scop.ElemFloat64, n)
	t, i, j := scop.V("t"), scop.V("i"), scop.V("j")
	p.Add(
		scop.For(t, scop.C(0), scop.C(tsteps),
			scop.For(i, scop.C(1), scop.C(n-1),
				scop.Stmt("S0",
					scop.Read(a, scop.X(i).Minus(scop.C(1))),
					scop.Read(a, scop.X(i)),
					scop.Read(a, scop.X(i).Plus(scop.C(1))),
					scop.Write(b, scop.X(i)))),
			scop.For(j, scop.C(1), scop.C(n-1),
				scop.Stmt("S1",
					scop.Read(b, scop.X(j).Minus(scop.C(1))),
					scop.Read(b, scop.X(j)),
					scop.Read(b, scop.X(j).Plus(scop.C(1))),
					scop.Write(a, scop.X(j))))))
	return p
}

func trisolvLike(n int64) *scop.Program {
	// Triangular loop nest: x[i] -= L[i][j]*x[j] for j<i, then x[i] /= L[i][i].
	p := scop.NewProgram("trisolv")
	l := p.NewArray("L", scop.ElemFloat64, n, n)
	x := p.NewArray("x", scop.ElemFloat64, n)
	b := p.NewArray("b", scop.ElemFloat64, n)
	i, j := scop.V("i"), scop.V("j")
	p.Add(
		scop.For(i, scop.C(0), scop.C(n),
			scop.Stmt("S0", scop.Read(b, scop.X(i)), scop.Write(x, scop.X(i))),
			scop.For(j, scop.C(0), scop.X(i),
				scop.Stmt("S1",
					scop.Read(l, scop.X(i), scop.X(j)),
					scop.Read(x, scop.X(j)),
					scop.Read(x, scop.X(i)),
					scop.Write(x, scop.X(i)))),
			scop.Stmt("S2",
				scop.Read(l, scop.X(i), scop.X(i)),
				scop.Read(x, scop.X(i)),
				scop.Write(x, scop.X(i)))))
	return p
}

func stencil2d(n int64) *scop.Program {
	p := scop.NewProgram("stencil2d")
	a := p.NewArray("A", scop.ElemFloat64, n, n)
	b := p.NewArray("B", scop.ElemFloat64, n, n)
	i, j := scop.V("i"), scop.V("j")
	p.Add(
		scop.For(i, scop.C(1), scop.C(n-1),
			scop.For(j, scop.C(1), scop.C(n-1),
				scop.Stmt("S0",
					scop.Read(a, scop.X(i), scop.X(j)),
					scop.Read(a, scop.X(i).Minus(scop.C(1)), scop.X(j)),
					scop.Read(a, scop.X(i).Plus(scop.C(1)), scop.X(j)),
					scop.Read(a, scop.X(i), scop.X(j).Minus(scop.C(1))),
					scop.Read(a, scop.X(i), scop.X(j).Plus(scop.C(1))),
					scop.Write(b, scop.X(i), scop.X(j))))))
	return p
}

// Helpers ------------------------------------------------------------------

// checkAgainstReference analyzes the program and compares every cache level
// against the exact trace-based reference.
func checkAgainstReference(t *testing.T, prog *scop.Program, cfg Config) *Result {
	t.Helper()
	opts := DefaultOptions()
	opts.TraceFallback = false
	res, err := Analyze(prog, cfg, opts)
	if err != nil {
		t.Fatalf("%s: Analyze failed: %v", prog.Name, err)
	}
	ref, err := SimulateReference(prog, cfg)
	if err != nil {
		t.Fatalf("%s: reference simulation failed: %v", prog.Name, err)
	}
	if res.TotalAccesses != ref.TotalAccesses {
		t.Errorf("%s: total accesses: model %d, reference %d", prog.Name, res.TotalAccesses, ref.TotalAccesses)
	}
	if res.CompulsoryMisses != ref.CompulsoryMisses {
		t.Errorf("%s: compulsory misses: model %d, reference %d", prog.Name, res.CompulsoryMisses, ref.CompulsoryMisses)
	}
	for i, lvl := range res.Levels {
		if lvl.TotalMisses != ref.TotalMisses[i] {
			t.Errorf("%s: cache %d bytes: model %d misses, reference %d",
				prog.Name, lvl.CacheBytes, lvl.TotalMisses, ref.TotalMisses[i])
		}
	}
	return res
}

// Tests ----------------------------------------------------------------------

func TestPaperExampleElementSizedLines(t *testing.T) {
	// Line size = element size: the example of the paper. With a capacity of
	// 2 lines the paper derives 2 capacity misses and 4 compulsory misses.
	cfg := Config{LineSize: 8, CacheSizes: []int64{2 * 8, 4 * 8}}
	res := checkAgainstReference(t, paperExample(), cfg)
	if res.CompulsoryMisses != 4 {
		t.Fatalf("compulsory = %d, want 4", res.CompulsoryMisses)
	}
	if res.Levels[0].CapacityMisses != 2 {
		t.Fatalf("capacity misses at 2 lines = %d, want 2", res.Levels[0].CapacityMisses)
	}
	if res.Levels[1].CapacityMisses != 0 {
		t.Fatalf("capacity misses at 4 lines = %d, want 0", res.Levels[1].CapacityMisses)
	}
	if res.UsedTraceFallback {
		t.Fatal("fallback must not trigger on the paper example")
	}
}

func TestPaperExampleWithCacheLines(t *testing.T) {
	// 16-byte lines group pairs of elements.
	cfg := Config{LineSize: 16, CacheSizes: []int64{16, 32}}
	checkAgainstReference(t, paperExample(), cfg)
}

func TestGEMMSmall(t *testing.T) {
	n := int64(12)
	if testing.Short() {
		n = 8
	}
	cfg := Config{LineSize: 64, CacheSizes: []int64{512, 2048, 16 * 1024}}
	res := checkAgainstReference(t, gemm(n), cfg)
	if res.UsedTraceFallback {
		t.Fatal("gemm must be handled symbolically")
	}
	if res.Stats.DistancePieces == 0 {
		t.Fatal("expected distance pieces")
	}
}

func TestGEMMProblemSizeIndependentCounts(t *testing.T) {
	// The same analysis at a larger size must still be exact; this exercises
	// the symbolic counting rather than any enumeration path.
	if testing.Short() {
		t.Skip("the large problem size is the point of this test; skipping in short mode")
	}
	cfg := Config{LineSize: 64, CacheSizes: []int64{1024}}
	checkAgainstReference(t, gemm(20), cfg)
}

func TestJacobi1D(t *testing.T) {
	n, tsteps := int64(40), int64(3)
	if testing.Short() {
		n, tsteps = 16, 2
	}
	cfg := Config{LineSize: 64, CacheSizes: []int64{256, 1024}}
	checkAgainstReference(t, jacobi1d(n, tsteps), cfg)
}

func TestTrisolvTriangular(t *testing.T) {
	cfg := Config{LineSize: 64, CacheSizes: []int64{512, 4096}}
	checkAgainstReference(t, trisolvLike(16), cfg)
}

func TestStencil2D(t *testing.T) {
	cfg := Config{LineSize: 64, CacheSizes: []int64{512, 8192}}
	checkAgainstReference(t, stencil2d(12), cfg)
}

func TestMultiLevelReusesDistances(t *testing.T) {
	// Modeling more levels must not change the per-level results.
	n := int64(10)
	if testing.Short() {
		n = 7
	}
	one := Config{LineSize: 64, CacheSizes: []int64{1024}}
	three := Config{LineSize: 64, CacheSizes: []int64{1024, 4096, 16384}}
	opts := DefaultOptions()
	opts.TraceFallback = false
	r1, err := Analyze(gemm(n), one, opts)
	if err != nil {
		t.Fatal(err)
	}
	r3, err := Analyze(gemm(n), three, opts)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Levels[0].TotalMisses != r3.Levels[0].TotalMisses {
		t.Fatalf("first level differs: %d vs %d", r1.Levels[0].TotalMisses, r3.Levels[0].TotalMisses)
	}
	if r3.Levels[1].TotalMisses > r3.Levels[0].TotalMisses {
		t.Fatal("a larger cache cannot miss more often")
	}
	if r3.Levels[2].TotalMisses > r3.Levels[1].TotalMisses {
		t.Fatal("a larger cache cannot miss more often")
	}
}

func TestOptionTogglesKeepExactness(t *testing.T) {
	// Disabling the optimizations changes performance, never results.
	size := int64(12)
	if testing.Short() {
		size = 8
	}
	cfg := Config{LineSize: 32, CacheSizes: []int64{256}}
	prog := trisolvLike(size)
	ref, err := SimulateReference(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	variants := []Options{
		{Equalization: true, Rasterization: true, PartialEnumeration: true},
		{Equalization: false, Rasterization: true, PartialEnumeration: true},
		{Equalization: true, Rasterization: false, PartialEnumeration: true},
		{Equalization: false, Rasterization: false, PartialEnumeration: true},
		{Equalization: false, Rasterization: false, PartialEnumeration: false},
	}
	for i, opt := range variants {
		res, err := Analyze(prog, cfg, opt)
		if err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
		if res.Levels[0].TotalMisses != ref.TotalMisses[0] {
			t.Fatalf("variant %d: misses %d, reference %d", i, res.Levels[0].TotalMisses, ref.TotalMisses[0])
		}
	}
}

func TestPerStatementBreakdown(t *testing.T) {
	cfg := Config{LineSize: 8, CacheSizes: []int64{16}}
	opts := DefaultOptions()
	opts.TraceFallback = false
	res, err := Analyze(paperExample(), cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	// All capacity misses of the example belong to S1; all compulsory misses
	// to S0.
	lvl := res.Levels[0]
	if lvl.PerStatementCapacity["S1"] != lvl.CapacityMisses || lvl.PerStatementCapacity["S0"] != 0 {
		t.Fatalf("capacity attribution wrong: %+v", lvl.PerStatementCapacity)
	}
	if res.PerStatementCompulsory != nil {
		if res.PerStatementCompulsory["S0"] != res.CompulsoryMisses {
			t.Fatalf("compulsory attribution wrong: %+v", res.PerStatementCompulsory)
		}
	}
}

func TestStatsPopulated(t *testing.T) {
	n := int64(16)
	if testing.Short() {
		n = 8
	}
	cfg := DefaultConfig()
	opts := DefaultOptions()
	opts.TraceFallback = false
	res, err := Analyze(gemm(n), cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	s := res.Stats
	if s.TotalTime <= 0 || s.StackDistanceTime <= 0 || s.CapacityTime <= 0 {
		t.Fatalf("timings not populated: %+v", s)
	}
	if s.CountedPieces == 0 {
		t.Fatalf("counted pieces not populated: %+v", s)
	}
	if s.AffinePieces+s.NonAffinePieces == 0 {
		t.Fatalf("piece classification not populated: %+v", s)
	}
}

func TestAnalyzeValidatesConfig(t *testing.T) {
	if _, err := Analyze(paperExample(), Config{LineSize: 0, CacheSizes: []int64{64}}, DefaultOptions()); err == nil {
		t.Fatal("expected error for zero line size")
	}
	if _, err := Analyze(paperExample(), Config{LineSize: 64}, DefaultOptions()); err == nil {
		t.Fatal("expected error for missing cache sizes")
	}
}
