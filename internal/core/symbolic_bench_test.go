package core

import (
	"testing"

	"haystack/internal/polybench"
)

// BenchmarkSymbolicPolyBench measures the full analysis pipeline (stack
// distances, compulsory misses, capacity counting) for every registered
// PolyBench kernel at MINI on one core, under the same options as the
// conformance tier. A kernel that leaves the symbolic fragment and answers
// from the exact trace profile instead (adi's lexmin does) reports a
// fallback metric of 1, so provenance stays visible in the numbers. CI runs
// the benchmark with -benchtime 1x and uploads the per-kernel wall times as
// a workflow artifact, so symbolic-tractability regressions show up as
// numbers on the run, not as a timed-out conformance tier three steps
// later.
func BenchmarkSymbolicPolyBench(b *testing.B) {
	cfg := DefaultConfig()
	opts := DefaultOptions()
	opts.Parallelism = 1
	for _, k := range polybench.Kernels() {
		k := k
		b.Run(k.Name, func(b *testing.B) {
			prog := k.Build(polybench.Mini)
			fallback := 0.0
			for i := 0; i < b.N; i++ {
				res, err := Analyze(prog, cfg, opts)
				if err != nil {
					b.Fatalf("Analyze: %v", err)
				}
				if res.UsedTraceFallback {
					fallback = 1
				}
			}
			b.ReportMetric(fallback, "fallback")
		})
	}
}
