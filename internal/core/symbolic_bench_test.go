package core

import (
	"fmt"
	"testing"

	"haystack/internal/polybench"
)

// BenchmarkSymbolicPolyBench measures the full analysis pipeline (stack
// distances, compulsory misses, capacity counting) for every registered
// PolyBench kernel at MINI on one core, under the same options as the
// conformance tier. A kernel that leaves the symbolic fragment and answers
// from the exact trace profile instead (adi's lexmin does) reports a
// fallback metric of 1, so provenance stays visible in the numbers. CI runs
// the benchmark with -benchtime 1x and uploads the per-kernel wall times as
// a workflow artifact, so symbolic-tractability regressions show up as
// numbers on the run, not as a timed-out conformance tier three steps
// later.
func BenchmarkSymbolicPolyBench(b *testing.B) {
	cfg := DefaultConfig()
	opts := DefaultOptions()
	opts.Parallelism = 1
	for _, k := range polybench.Kernels() {
		k := k
		b.Run(k.Name, func(b *testing.B) {
			prog := k.Build(polybench.Mini)
			fallback := 0.0
			for i := 0; i < b.N; i++ {
				res, err := Analyze(prog, cfg, opts)
				if err != nil {
					b.Fatalf("Analyze: %v", err)
				}
				if res.UsedTraceFallback {
					fallback = 1
				}
			}
			b.ReportMetric(fallback, "fallback")
		})
	}
}

// BenchmarkBoundedPolyBench runs every kernel at MINI on the bounded tier
// with a deliberately hostile one-unit per-operation budget and reports the
// certified bound width of every cache level as a metric (width 0 = the
// level stayed exact despite the budget). CI runs it with -benchtime 1x and
// keeps the numbers in the uploaded wall-time artifact: a width that jumps
// between runs means the degraded upper bound regressed (a box relaxation
// got coarser) — a quality regression the sandwich soundness test cannot
// see, since any wider interval still contains the exact count.
func BenchmarkBoundedPolyBench(b *testing.B) {
	cfg := DefaultConfig()
	opts := DefaultOptions()
	opts.Parallelism = 1
	opts.Mode = ModeBounded
	opts.Budget = 1
	for _, k := range polybench.Kernels() {
		k := k
		b.Run(k.Name, func(b *testing.B) {
			prog := k.Build(polybench.Mini)
			var widths []int64
			for i := 0; i < b.N; i++ {
				res, err := Analyze(prog, cfg, opts)
				if err != nil {
					b.Fatalf("bounded Analyze: %v", err)
				}
				widths = res.Stats.BoundWidth
			}
			for l, w := range widths {
				b.ReportMetric(float64(w), fmt.Sprintf("L%d-width", l+1))
			}
		})
	}
}
