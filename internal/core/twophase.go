package core

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"haystack/internal/budget"
	"haystack/internal/counting"
	"haystack/internal/parwork"
	"haystack/internal/presburger"
	"haystack/internal/reusedist"
	"haystack/internal/scop"
)

// DistanceModel is the reusable, cache-capacity-independent half of the
// analysis: the backward stack distance piecewise quasi-polynomials of one
// program at a fixed cache line size, together with the compulsory miss
// counts and the total access count. The stack distances do not depend on
// the cache capacities (section 3.1 of the paper), so one DistanceModel can
// classify its distances against arbitrarily many cache hierarchies via
// CountMisses — the expensive symbolic phase is paid exactly once per
// (program, line size) pair. This split is what makes design-space
// exploration sweeps (internal/explore, cmd/tune) cheap: only the
// comparatively fast counting phase runs per hierarchy.
//
// A DistanceModel is safe for concurrent CountMisses calls.
type DistanceModel struct {
	// Kernel is the name of the analyzed program.
	Kernel string
	// LineSize is the cache line size in bytes the distances were computed
	// for; CountMisses only accepts configurations with the same line size.
	LineSize int64
	// TotalAccesses is the number of dynamic memory accesses of the program.
	TotalAccesses int64
	// CompulsoryMisses is the number of distinct cache lines the program
	// touches (the first access of every line misses at every level).
	CompulsoryMisses int64

	opts              Options
	prog              *scop.Program
	distances         []StatementDistance
	perStmtCompulsory map[string]int64
	// baseStats holds the distance-phase statistics (stack distance and
	// compulsory timing, piece counts) copied into every CountMisses result.
	baseStats   Stats
	computeTime time.Duration

	// fallbackReason is non-empty when the symbolic distance phase failed
	// and the model operates on an exact trace profile instead. The profile
	// is also capacity independent, so fallback models amortize across
	// hierarchies exactly like symbolic ones.
	fallbackReason string
	profileOnce    sync.Once
	profile        reusedist.Profile
	profileErr     error

	// Bounded-tier state (ModeBounded only). stmtInstances holds the exact
	// per-statement instance counts — the anchor of every certified bound.
	// compulsoryBounds is the certified interval around CompulsoryMisses
	// (width 0 when exact). boundedStmts maps statements whose distance
	// polynomial could not be derived to the degradation reason; their
	// capacity misses are bounded by [0, instances]. boundedReason is set
	// when the whole distance phase degraded (no distances at all).
	stmtInstances    map[string]int64
	compulsoryBounds counting.Interval
	boundedStmts     map[string]string
	boundedReason    string

	// Set-associative state, retained by a successful symbolic distance
	// phase: the polyhedral description and the raw touched-line union map.
	// CountMisses re-counts the touched map restricted to each cache set
	// when the query's geometry has more than one set — the set partition
	// depends on the hierarchy, so it cannot be precomputed here. A nil
	// saInfo (trace-fallback or externally constructed models) answers
	// set-associative queries from the simulation tier instead.
	saInfo    *scop.PolyInfo
	saTouched presburger.UnionMap
}

// ComputeDistances runs the cache-independent phase of the analysis: it
// extracts the polyhedral description of the program and derives the stack
// distance quasi-polynomials and the compulsory misses for the given line
// size. The returned model answers CountMisses queries for any hierarchy
// sharing that line size without recomputing the distances.
//
// When the symbolic pipeline cannot handle the program and
// opts.TraceFallback is set, the model falls back to an exact stack distance
// profile of the trace; results stay exact (CountMisses marks them with
// UsedTraceFallback) and are still shared across hierarchies.
func ComputeDistances(prog *scop.Program, lineSize int64, opts Options) (*DistanceModel, error) {
	return ComputeDistancesContext(context.Background(), prog, lineSize, opts)
}

// ComputeDistancesContext is ComputeDistances observing ctx (and
// opts.Deadline, when set): workers stop claiming items promptly after
// cancellation and the context error is returned. Under ModeBounded,
// operations that exceed opts.Budget or leave the supported fragment
// degrade to certified bounds instead of failing the phase.
func ComputeDistancesContext(ctx context.Context, prog *scop.Program, lineSize int64, opts Options) (*DistanceModel, error) {
	start := time.Now()
	if lineSize <= 0 {
		return nil, fmt.Errorf("core: line size must be positive")
	}
	if prog.IsParametric() {
		return nil, fmt.Errorf("core: program %s is parametric; use ComputeParametricModel (or Instantiate it first)", prog.Name)
	}
	if err := preflight(prog, opts); err != nil {
		return nil, err
	}
	if opts.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.Deadline)
		defer cancel()
	}
	meter := budget.New(ctx, opts.Budget)
	dm := &DistanceModel{Kernel: prog.Name, LineSize: lineSize, opts: opts, prog: prog}
	// Options.Exec is call scoped; the model outlives this call and must not
	// retain the caller's executor (later CountMisses calls build their own).
	dm.opts.Exec = nil
	dm.baseStats.NonAffineByAffineDims = map[int]int{}
	ex, release := opts.executor()
	defer release()

	info, err := scop.BuildPoly(prog)
	if err != nil {
		return nil, err
	}
	dm.TotalAccesses, dm.stmtInstances, err = totalAccesses(info)
	if err != nil {
		return nil, err
	}

	if symErr := dm.computeSymbolic(ctx, info, meter, ex); symErr != nil {
		switch {
		case budget.IsCancellation(symErr):
			return nil, symErr
		case opts.Mode == ModeBounded:
			// Bounded tier, global degradation: no distance polynomials at
			// all, but the instance counts stay exact and the compulsory
			// misses are still attempted — every level's misses are then
			// certifiably between the compulsory lower bound and the total
			// access count.
			if err := dm.degradeGlobal(info, meter, symErr); err != nil {
				return nil, err
			}
		case opts.TraceFallback:
			if err := dm.ensureProfile(); err != nil {
				return nil, err
			}
			dm.fallbackReason = symErr.Error()
			dm.distances = nil
			dm.perStmtCompulsory = nil
			dm.saInfo = nil
			dm.saTouched = presburger.UnionMap{}
			// Discard any partial symbolic statistics (the stack distance
			// stage may have succeeded before a later stage failed):
			// fallback models answer from the profile, so their results
			// must not carry distance-phase stats.
			dm.baseStats = Stats{NonAffineByAffineDims: map[int]int{}}
			dm.CompulsoryMisses = dm.profile.Compulsory
		default:
			return nil, symErr
		}
	}
	dm.baseStats.BudgetUsed = meter.Total()
	dm.computeTime = time.Since(start)
	return dm, nil
}

// degradeGlobal switches the model to the bounded tier after a global
// distance-phase failure: the compulsory misses are counted independently
// of the failed stage (exactly if possible, as a certified interval
// otherwise; [0, TotalAccesses] is always sound), and every capacity query
// will answer with intervals anchored on the exact instance counts.
func (dm *DistanceModel) degradeGlobal(info *scop.PolyInfo, meter *budget.Meter, symErr error) error {
	dm.boundedReason = symErr.Error()
	dm.distances = nil
	A := info.LineAccessMap(dm.LineSize)
	iv, err := counting.CountSetRangesInterval(A, meter.Op("compulsory count"), counting.DefaultMaxEnum)
	if err != nil {
		if budget.IsCancellation(err) {
			return err
		}
		iv = counting.Interval{Lo: 0, Hi: dm.TotalAccesses}
	}
	iv = iv.ClampHi(dm.TotalAccesses)
	dm.compulsoryBounds = iv
	dm.CompulsoryMisses = iv.Hi
	if iv.IsExact() {
		if perStmt, err := attributeCompulsory(info, dm.LineSize); err == nil {
			dm.perStmtCompulsory = perStmt
		}
	}
	return nil
}

// ComputeDistancesByProfiling builds a DistanceModel from an exact stack
// distance profile of the trace without attempting the symbolic pipeline.
// The resulting model answers CountMisses queries for any hierarchy with
// the given line size, exactly like a symbolic model (the profile, too, is
// capacity independent), and its results are exact — but the construction
// cost is proportional to the trace length rather than problem-size
// independent. It is the strategy of choice for programs that are
// expensive to analyze symbolically, such as the deep loop nests tiling
// produces (explore.TiledProfile); results carry UsedTraceFallback so the
// provenance stays visible.
func ComputeDistancesByProfiling(prog *scop.Program, lineSize int64) (*DistanceModel, error) {
	start := time.Now()
	if lineSize <= 0 {
		return nil, fmt.Errorf("core: line size must be positive")
	}
	dm := &DistanceModel{Kernel: prog.Name, LineSize: lineSize, prog: prog}
	dm.baseStats.NonAffineByAffineDims = map[int]int{}
	dm.fallbackReason = "exact trace profiling requested"
	if err := dm.ensureProfile(); err != nil {
		return nil, err
	}
	dm.TotalAccesses = dm.profile.Accesses
	dm.CompulsoryMisses = dm.profile.Compulsory
	dm.computeTime = time.Since(start)
	return dm, nil
}

// computeSymbolic fills the model from the symbolic pipeline: stack
// distances (section 3.1) and compulsory misses (section 3.4), together
// with the coalescing statistics of the distance phase.
func (dm *DistanceModel) computeSymbolic(ctx context.Context, info *scop.PolyInfo, meter *budget.Meter, ex parwork.Exec) error {
	tStack := time.Now()
	// The presburger coalescing counters are process-wide; the deltas
	// around the distance phase attribute its hits to this model. Under
	// concurrent ComputeDistances calls (design-space sweeps) the snapshot
	// windows overlap, so each model's delta can include hits of the
	// others — treat the per-model counters as observability, not as an
	// exact partition (CoalesceCountersSnapshot itself stays exact
	// process-wide).
	coalesceBase := presburger.CoalesceCountersSnapshot()
	arenaBase := presburger.ArenaCountersSnapshot()
	poolBase := ex.PoolStats()
	var fs frontierStats
	bounded := dm.opts.Mode == ModeBounded
	distances, degraded, touched, err := computeStackDistances(ctx, info, dm.LineSize, ex, &fs, meter, bounded)
	if err != nil {
		return err
	}
	dm.saInfo = info
	dm.saTouched = touched
	dm.baseStats.StackDistanceTime = time.Since(tStack)
	dm.baseStats.PeakBasicMaps = int(fs.peak.Load())
	dm.baseStats.BasicMapsBeforeCoalesce = fs.before.Load()
	dm.baseStats.BasicMapsAfterCoalesce = fs.after.Load()
	hits := presburger.CoalesceCountersSnapshot().Sub(coalesceBase)
	dm.baseStats.CoalesceDedup = hits.Dedup
	dm.baseStats.CoalesceSubsumed = hits.Subsumed
	dm.baseStats.CoalesceAdjacent = hits.Adjacent
	dm.baseStats.CoalesceRedundantCons = hits.RedundantConstraints
	// Arena and scheduler counters are process-wide like the coalesce
	// counters; the deltas attribute this phase's activity to the model,
	// with the same overlap caveat under concurrent ComputeDistances calls.
	arena := presburger.ArenaCountersSnapshot().Sub(arenaBase)
	dm.baseStats.ArenaHits = arena.Hits
	dm.baseStats.ArenaMisses = arena.Misses
	pool := ex.PoolStats()
	dm.baseStats.Steals = pool.Steals - poolBase.Steals
	dm.baseStats.Splits = pool.Splits - poolBase.Splits
	for _, d := range distances {
		dm.baseStats.DistancePieces += d.Distance.NumPieces()
	}
	dm.distances = distances
	dm.boundedStmts = degraded

	tComp := time.Now()
	if bounded {
		A := info.LineAccessMap(dm.LineSize)
		iv, err := counting.CountSetRangesInterval(A, meter.Op("compulsory count"), counting.DefaultMaxEnum)
		if err != nil {
			if budget.IsCancellation(err) {
				return err
			}
			iv = counting.Interval{Lo: 0, Hi: dm.TotalAccesses}
		}
		iv = iv.ClampHi(dm.TotalAccesses)
		dm.compulsoryBounds = iv
		dm.CompulsoryMisses = iv.Hi
		if iv.IsExact() {
			if perStmt, aerr := attributeCompulsory(info, dm.LineSize); aerr == nil {
				dm.perStmtCompulsory = perStmt
			}
		}
	} else {
		compulsory, perStmt, err := CountCompulsoryMisses(info, dm.LineSize)
		if err != nil {
			return err
		}
		dm.CompulsoryMisses = compulsory
		dm.perStmtCompulsory = perStmt
		dm.compulsoryBounds = counting.Exact(compulsory)
	}
	dm.baseStats.CompulsoryTime = time.Since(tComp)
	return nil
}

// Degraded reports the bounded-tier degradations of the distance phase:
// the per-statement reasons (statements whose capacity misses are interval
// bounded) or, for a global degradation, the single phase-wide reason.
func (dm *DistanceModel) Degraded() map[string]string {
	if dm.boundedReason != "" {
		return map[string]string{"*": dm.boundedReason}
	}
	return dm.boundedStmts
}

// UsedTraceFallback reports whether the symbolic distance phase failed and
// the model answers queries from an exact trace profile instead.
func (dm *DistanceModel) UsedTraceFallback() bool { return dm.fallbackReason != "" }

// ComputeTime returns the wall-clock time ComputeDistances spent building
// the model (the cost amortized across CountMisses calls).
func (dm *DistanceModel) ComputeTime() time.Duration { return dm.computeTime }

// DistancePieces returns the number of pieces of the stack distance
// quasi-polynomials (zero for fallback models).
func (dm *DistanceModel) DistancePieces() int { return dm.baseStats.DistancePieces }

// Distances returns the per-statement stack distance quasi-polynomials (nil
// for fallback models). The slice is shared; callers must not modify it.
func (dm *DistanceModel) Distances() []StatementDistance { return dm.distances }

// CountMisses runs the capacity-dependent phase: it classifies the stack
// distances of the model against every capacity of the hierarchy and
// returns a Result identical to Analyze(prog, cfg, opts) — the distance
// phase is simply not paid again. cfg.LineSize must match the line size the
// distances were computed for. The counting engine uses the parallelism of
// the options the model was built with.
func (dm *DistanceModel) CountMisses(cfg Config) (*Result, error) {
	return dm.countMisses(context.Background(), cfg, dm.opts.Parallelism, nil)
}

// CountMissesContext is CountMisses observing ctx (and opts.Deadline):
// counting workers stop claiming pieces promptly after cancellation and the
// context error is returned.
func (dm *DistanceModel) CountMissesContext(ctx context.Context, cfg Config) (*Result, error) {
	return dm.countMisses(ctx, cfg, dm.opts.Parallelism, nil)
}

// CountMissesWith is CountMisses with an explicit worker count for the
// counting engine, overriding Options.Parallelism. Callers that already
// fan out over configurations (internal/explore) use it to keep the total
// goroutine count bounded; results are bit-identical for every worker
// count.
func (dm *DistanceModel) CountMissesWith(cfg Config, workers int) (*Result, error) {
	return dm.countMisses(context.Background(), cfg, workers, nil)
}

// CountMissesWithContext is CountMissesWith observing ctx.
func (dm *DistanceModel) CountMissesWithContext(ctx context.Context, cfg Config, workers int) (*Result, error) {
	return dm.countMisses(ctx, cfg, workers, nil)
}

// CountMissesExec is CountMissesContext scheduling the counting engine on
// the given executor instead of spinning up workers of its own. Callers
// that already run on a pool (internal/explore sweeps) pass their Worker so
// capacity pieces become stealable units of the shared pool. The executor
// is used only for the duration of the call and never retained; results are
// bit-identical for every executor shape.
func (dm *DistanceModel) CountMissesExec(ctx context.Context, cfg Config, ex parwork.Exec) (*Result, error) {
	return dm.countMisses(ctx, cfg, dm.opts.Parallelism, ex)
}

func (dm *DistanceModel) countMisses(ctx context.Context, cfg Config, workers int, ex parwork.Exec) (*Result, error) {
	start := time.Now()
	if cfg.LineSize != dm.LineSize {
		return nil, fmt.Errorf("core: distance model was computed for line size %d, not %d", dm.LineSize, cfg.LineSize)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if dm.opts.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, dm.opts.Deadline)
		defer cancel()
	}
	meter := budget.New(ctx, dm.opts.Budget)
	res := &Result{Kernel: dm.Kernel, TotalAccesses: dm.TotalAccesses, Stats: dm.baseStats.clone()}
	if dm.fallbackReason != "" {
		if err := dm.fillFromProfile(res, cfg); err != nil {
			return nil, err
		}
		res.UsedTraceFallback = true
		res.FallbackReason = dm.fallbackReason
		res.Tier = TierSimulated
		res.finalizeBounds()
		res.Stats.TotalTime = dm.computeTime + time.Since(start)
		return res, nil
	}
	res.CompulsoryMisses = dm.CompulsoryMisses
	res.CompulsoryBounds = dm.compulsoryBounds
	if res.CompulsoryBounds == (counting.Interval{}) && res.CompulsoryMisses != 0 {
		// Models built before the interval machinery (external constructors,
		// tests) carry a zero-valued bounds field; the exact count is the
		// width-zero interval.
		res.CompulsoryBounds = counting.Exact(res.CompulsoryMisses)
	}
	res.PerStatementCompulsory = cloneCounts(dm.perStmtCompulsory)
	if dm.boundedReason != "" {
		// Global bounded tier: no distance polynomials exist. Every level's
		// capacity misses lie between zero and the non-compulsory accesses,
		// certifiably — capacity misses are repeat accesses by definition.
		dm.fillFromInstanceBounds(res, cfg)
		res.Stats.BudgetUsed = meter.Total()
		res.Stats.TotalTime = dm.computeTime + time.Since(start)
		return res, nil
	}
	if countErr := dm.countSymbolic(ctx, cfg, workers, ex, res, meter); countErr != nil {
		if budget.IsCancellation(countErr) || !dm.opts.TraceFallback || dm.opts.Mode == ModeBounded {
			return nil, countErr
		}
		if err := dm.ensureProfile(); err != nil {
			return nil, err
		}
		if err := dm.fillFromProfile(res, cfg); err != nil {
			return nil, err
		}
		res.UsedTraceFallback = true
		res.FallbackReason = countErr.Error()
		res.Tier = TierSimulated
	}
	res.finalizeBounds()
	res.Stats.BudgetUsed += meter.Total()
	res.Stats.TotalTime = dm.computeTime + time.Since(start)
	return res, nil
}

// fillFromInstanceBounds answers a hierarchy query for a globally degraded
// bounded-tier model: per level, the capacity misses lie in
// [0, accesses - compulsory_lo] and the total misses in
// [compulsory_lo, accesses]. The point fields carry the conservative upper
// bounds.
func (dm *DistanceModel) fillFromInstanceBounds(res *Result, cfg Config) {
	capBounds := counting.Interval{Lo: 0, Hi: dm.TotalAccesses - dm.compulsoryBounds.Lo}
	res.Levels = res.Levels[:0]
	for _, size := range cfg.CacheSizes {
		total := capBounds.Add(res.CompulsoryBounds).ClampHi(dm.TotalAccesses)
		res.Levels = append(res.Levels, LevelResult{
			CacheBytes:         size,
			CapacityMisses:     capBounds.Hi,
			TotalMisses:        total.Hi,
			CapacityMissBounds: capBounds,
			TotalMissBounds:    total,
		})
	}
	res.Tier = TierBounded
	res.FallbackReason = dm.boundedReason
	res.finalizeBounds()
}

// countSymbolic counts the capacity misses of every level. Fully
// associative levels (single-set geometry) share one pass of the counting
// engine (Algorithm 1); set-associative levels are counted per cache set,
// with the set partitions fanned out over the executor. Under ModeBounded,
// pieces and statements that degraded contribute certified intervals
// instead of failing.
func (dm *DistanceModel) countSymbolic(ctx context.Context, cfg Config, workers int, ex parwork.Exec, res *Result, meter *budget.Meter) error {
	tCap := time.Now()
	countOpts := dm.opts
	countOpts.Parallelism = workers
	nLev := len(cfg.CacheSizes)
	// Split the levels by geometry: numSets == 1 is the classic fully
	// associative case (shared single counting pass over all such levels),
	// numSets > 1 is counted per set.
	type levelGeom struct{ sets, ways int64 }
	geoms := make([]levelGeom, nLev)
	var fullIdx, setIdx []int
	for i := range cfg.CacheSizes {
		numSets, ways, err := cfg.LevelGeometry(i)
		if err != nil {
			return fmt.Errorf("core: level %d: %w", i+1, err)
		}
		geoms[i] = levelGeom{numSets, ways}
		if numSets > 1 {
			if numSets > MaxAnalyticalSets {
				return fmt.Errorf("core: level %d partitions into %d sets, above the analytical limit of %d (raise the associativity or use the simulation tier)",
					i+1, numSets, MaxAnalyticalSets)
			}
			setIdx = append(setIdx, i)
		} else {
			fullIdx = append(fullIdx, i)
		}
	}
	if ex == nil {
		var release func()
		ex, release = countOpts.executor()
		defer release()
	}
	levelBounds := make([]counting.Interval, nLev)
	levelPerStmt := make([]map[string]int64, nLev)
	var degradedReasons []string
	if len(fullIdx) > 0 {
		lines := make([]int64, len(fullIdx))
		for j, i := range fullIdx {
			lines[j] = cfg.CacheSizes[i] / cfg.LineSize
		}
		counter := newCapacityCounter(countOpts, &res.Stats)
		counter.meter = meter
		counter.ctx = ctx
		counter.exec = ex
		arenaBase := presburger.ArenaCountersSnapshot()
		out, err := counter.Count(dm.distances, lines)
		arena := presburger.ArenaCountersSnapshot().Sub(arenaBase)
		res.Stats.ArenaHits += arena.Hits
		res.Stats.ArenaMisses += arena.Misses
		if err != nil {
			return err
		}
		for j, i := range fullIdx {
			levelBounds[i] = out.bounds[j]
			levelPerStmt[i] = out.perStmt[j]
		}
		degradedReasons = append(degradedReasons, out.degraded...)
	}
	for _, i := range setIdx {
		slc, err := dm.countSetAssocLevel(ctx, countOpts, ex, meter, i, geoms[i].sets, geoms[i].ways)
		if err != nil {
			return err
		}
		levelBounds[i] = slc.bounds
		levelPerStmt[i] = slc.perStmt
		degradedReasons = append(degradedReasons, slc.degraded...)
		res.Stats.merge(&slc.stats)
		res.Stats.SetAssoc = append(res.Stats.SetAssoc, SetAssocLevelStats{
			Level: i, Sets: geoms[i].sets, Ways: geoms[i].ways, SetPieces: slc.pieces,
		})
	}
	// Statements whose distance polynomial degraded in the distance phase:
	// their capacity misses are certifiably within [0, instances] at every
	// level. The set-associative pass skips those statements' touched maps,
	// so the bound is never double counted.
	for _, stmt := range sortedKeys(dm.boundedStmts) {
		n := dm.stmtInstances[stmt]
		for l := 0; l < nLev; l++ {
			levelBounds[l] = levelBounds[l].Add(counting.Interval{Lo: 0, Hi: n})
			if levelPerStmt[l] == nil {
				levelPerStmt[l] = map[string]int64{}
			}
			levelPerStmt[l][stmt] = n
		}
		degradedReasons = append(degradedReasons, fmt.Sprintf("%s: %s", stmt, dm.boundedStmts[stmt]))
	}
	// A degraded piece with no box bound reports a saturated per-statement
	// count; the statement's instance count is always a certified cap.
	for _, m := range levelPerStmt {
		for stmt, v := range m {
			if n, ok := dm.stmtInstances[stmt]; ok && v > n {
				m[stmt] = n
			}
		}
	}
	res.Levels = res.Levels[:0]
	for i, size := range cfg.CacheSizes {
		capBounds := levelBounds[i]
		if !capBounds.IsExact() {
			// Certified cap: capacity misses are repeat accesses, so they
			// cannot exceed the non-compulsory access count. Exact counts are
			// left untouched.
			capBounds = capBounds.ClampHi(dm.TotalAccesses - dm.compulsoryBounds.Lo)
		}
		total := capBounds.Add(res.CompulsoryBounds).ClampHi(dm.TotalAccesses)
		res.Levels = append(res.Levels, LevelResult{
			CacheBytes:           size,
			CapacityMisses:       capBounds.Hi,
			TotalMisses:          total.Hi,
			PerStatementCapacity: levelPerStmt[i],
			CapacityMissBounds:   capBounds,
			TotalMissBounds:      total,
		})
	}
	if len(degradedReasons) > 0 || !res.CompulsoryBounds.IsExact() {
		res.Tier = TierBounded
		res.FallbackReason = degradationSummary(degradedReasons, res.CompulsoryBounds)
	}
	res.Stats.CapacityTime = time.Since(tCap)
	return nil
}

// degradationSummary folds the per-operation degradation reasons into one
// provenance string (first reason plus a count; the full list would repeat
// near-identical messages per piece).
func degradationSummary(reasons []string, compulsory counting.Interval) string {
	if !compulsory.IsExact() {
		reasons = append([]string{fmt.Sprintf("compulsory misses bounded to %v", compulsory)}, reasons...)
	}
	if len(reasons) == 0 {
		return ""
	}
	if len(reasons) == 1 {
		return reasons[0]
	}
	return fmt.Sprintf("%s (and %d more degraded operations)", reasons[0], len(reasons)-1)
}

func sortedKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// ensureProfile lazily computes the exact stack distance profile of the
// trace (padded layout, like SimulateReference) exactly once, no matter how
// many CountMisses calls need it.
func (dm *DistanceModel) ensureProfile() error {
	dm.profileOnce.Do(func() {
		layout := scop.NewLayout(dm.prog, scop.LayoutPadded, dm.LineSize)
		cp, err := scop.Compile(dm.prog, layout)
		if err != nil {
			dm.profileErr = err
			return
		}
		dm.profile = reusedist.ProfileProgram(cp, dm.LineSize)
	})
	return dm.profileErr
}

// fillFromProfile fills the per-level miss counts of res from the exact
// trace profile; the profile answers any capacity, so this path shares the
// profile across hierarchies the same way the symbolic path shares the
// distances. The stack distance profile only answers fully associative
// geometries; a level with more than one cache set is answered by replaying
// the trace through a set-associative LRU simulation of just that geometry
// (still exact, still on the padded layout the model assumes).
func (dm *DistanceModel) fillFromProfile(res *Result, cfg Config) error {
	res.CompulsoryMisses = dm.profile.Compulsory
	var ref Reference
	haveRef := false
	setAssoc := make([]bool, len(cfg.CacheSizes))
	for i := range cfg.CacheSizes {
		numSets, _, err := cfg.LevelGeometry(i)
		if err != nil {
			return fmt.Errorf("core: level %d: %w", i+1, err)
		}
		setAssoc[i] = numSets > 1
		if setAssoc[i] && !haveRef {
			ref, err = SimulateSetAssocReference(dm.prog, cfg)
			if err != nil {
				return err
			}
			haveRef = true
		}
	}
	res.Levels = res.Levels[:0]
	for i, size := range cfg.CacheSizes {
		var capMisses int64
		if setAssoc[i] {
			capMisses = ref.TotalMisses[i] - res.CompulsoryMisses
		} else {
			capMisses = dm.profile.CapacityMissesFor(size / cfg.LineSize)
		}
		res.Levels = append(res.Levels, LevelResult{
			CacheBytes:     size,
			CapacityMisses: capMisses,
			TotalMisses:    capMisses + res.CompulsoryMisses,
		})
	}
	return nil
}

// clone deep-copies the stats so concurrent CountMisses calls never share
// the histogram map or the worker time slice.
func (s Stats) clone() Stats {
	out := s
	out.NonAffineByAffineDims = make(map[int]int, len(s.NonAffineByAffineDims))
	for k, v := range s.NonAffineByAffineDims {
		out.NonAffineByAffineDims[k] = v
	}
	out.CapacityWorkerTime = append([]time.Duration(nil), s.CapacityWorkerTime...)
	out.SetAssoc = make([]SetAssocLevelStats, len(s.SetAssoc))
	for i, sa := range s.SetAssoc {
		sa.SetPieces = append([]int(nil), sa.SetPieces...)
		out.SetAssoc[i] = sa
	}
	if len(out.SetAssoc) == 0 {
		out.SetAssoc = nil
	}
	return out
}

func cloneCounts(m map[string]int64) map[string]int64 {
	if m == nil {
		return nil
	}
	out := make(map[string]int64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
