package core

import (
	"haystack/internal/ints"
	"haystack/internal/presburger"
	"haystack/internal/qpoly"
)

// splitPiece is a sub-piece produced by the floor elimination techniques.
type splitPiece struct {
	domain presburger.BasicSet
	poly   qpoly.QPoly
}

// equalize implements the equalization technique of section 3.3: when the
// polynomial contains two floor atoms with the same denominator whose
// arguments differ only by a constant offset c (0 < c < d), their difference
// is 0 on the first d-c elements of every residue block and 1 on the last c
// elements. Splitting the domain on that boundary lets one atom be expressed
// through the other, which often lowers the polynomial degree. The rewrite
// is kept only if the degree actually decreases in at least one sub-piece.
func equalize(domain presburger.BasicSet, poly qpoly.QPoly) ([]splitPiece, bool) {
	for i := 0; i < len(poly.Atoms); i++ {
		for j := 0; j < len(poly.Atoms); j++ {
			if i == j {
				continue
			}
			a, b := poly.Atoms[i], poly.Atoms[j]
			if a.Den != b.Den {
				continue
			}
			offset, ok := constantOffset(a.Num, b.Num)
			if !ok || offset <= 0 || offset >= a.Den {
				continue
			}
			// b = a + offset elementwise on the argument:
			// floor((e+offset)/d) equals floor(e/d) when e mod d < d-offset
			// and floor(e/d)+1 otherwise.
			if !atomArgOverVars(poly, i) || !atomArgOverVars(poly, j) {
				continue
			}
			d := a.Den
			low, lowOK := substituteAtomWith(poly, j, poly.AtomPoly(i))
			high, highOK := substituteAtomWith(poly, j, poly.AtomPoly(i).Add(qpoly.ConstInt(poly.NVar, 1)))
			if !lowOK || !highOK {
				continue
			}
			if low.Degree() >= poly.Degree() && high.Degree() >= poly.Degree() {
				continue
			}
			// Residue constraint: r = e - d*floor(e/d) where e is atom i's
			// argument; low piece needs r <= d-offset-1, high piece r >= d-offset.
			lowDom, highDom, ok := splitDomainByResidue(domain, poly, i, d-offset)
			if !ok {
				continue
			}
			return []splitPiece{{lowDom, low}, {highDom, high}}, true
		}
	}
	return nil, false
}

// rasterize implements the rasterization technique of section 3.3: a floor
// atom floor(e/d) involved in a non-affine term is specialized per residue
// class of its argument, replacing the atom by the exact affine expression
// (e-r)/d on every class. The rewrite is kept only if the degree decreases.
func rasterize(domain presburger.BasicSet, poly qpoly.QPoly) ([]splitPiece, bool) {
	for i := range poly.Atoms {
		if !atomInNonAffineTerm(poly, i) || !atomArgOverVars(poly, i) {
			continue
		}
		d := poly.Atoms[i].Den
		if d <= 1 || d > 64 {
			continue
		}
		var pieces []splitPiece
		improved := false
		ok := true
		for r := int64(0); r < d; r++ {
			// atom = (e - r)/d on the class e ≡ r (mod d).
			expr := atomArgPoly(poly, i).Sub(qpoly.ConstInt(poly.NVar, r)).Scale(ints.NewRat(1, d))
			sub, subOK := substituteAtomWith(poly, i, expr)
			if !subOK {
				ok = false
				break
			}
			if sub.Degree() < poly.Degree() {
				improved = true
			}
			dom, domOK := residueClassDomain(domain, poly, i, r)
			if !domOK {
				ok = false
				break
			}
			pieces = append(pieces, splitPiece{dom, sub})
		}
		if ok && improved {
			return pieces, true
		}
	}
	return nil, false
}

// constantOffset reports whether two atom numerators differ only in their
// constant term, returning b[0]-a[0].
func constantOffset(a, b []int64) (int64, bool) {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	get := func(v []int64, i int) int64 {
		if i < len(v) {
			return v[i]
		}
		return 0
	}
	for i := 1; i < n; i++ {
		if get(a, i) != get(b, i) {
			return 0, false
		}
	}
	return get(b, 0) - get(a, 0), true
}

// atomArgOverVars reports whether the atom's argument references only
// variables (no nested atoms), which the domain splitting helpers require.
func atomArgOverVars(poly qpoly.QPoly, idx int) bool {
	a := poly.Atoms[idx]
	for j := 1 + poly.NVar; j < len(a.Num); j++ {
		if a.Num[j] != 0 {
			return false
		}
	}
	return true
}

// atomInNonAffineTerm reports whether the atom appears in a term of degree
// greater than one.
func atomInNonAffineTerm(poly qpoly.QPoly, idx int) bool {
	col := poly.NVar + idx
	for _, t := range poly.Terms {
		if t.Pow[col] == 0 {
			continue
		}
		deg := 0
		for _, e := range t.Pow {
			deg += e
		}
		if deg > 1 {
			return true
		}
	}
	return false
}

// atomArgPoly returns the atom's argument as a polynomial over the
// variables (the atom argument must not reference other atoms).
func atomArgPoly(poly qpoly.QPoly, idx int) qpoly.QPoly {
	a := poly.Atoms[idx]
	coeffs := make([]int64, poly.NVar)
	for v := 0; v < poly.NVar; v++ {
		if 1+v < len(a.Num) {
			coeffs[v] = a.Num[1+v]
		}
	}
	c0 := int64(0)
	if len(a.Num) > 0 {
		c0 = a.Num[0]
	}
	return qpoly.FromAffine(poly.NVar, c0, coeffs)
}

// substituteAtomWith substitutes the atom at idx by expr, tolerating
// references from other atoms by refusing (ok=false) in that case.
func substituteAtomWith(poly qpoly.QPoly, idx int, expr qpoly.QPoly) (qpoly.QPoly, bool) {
	return poly.SubstituteAtom(idx, expr)
}

// domainWithAtomDiv adds a div mirroring the atom's floor expression to the
// domain and returns the extended domain plus the div column.
func domainWithAtomDiv(domain presburger.BasicSet, poly qpoly.QPoly, idx int) (presburger.BasicSet, int, bool) {
	if !atomArgOverVars(poly, idx) {
		return presburger.BasicSet{}, 0, false
	}
	a := poly.Atoms[idx]
	num := presburger.NewVec(domain.NCols())
	if len(a.Num) > 0 {
		num[0] = a.Num[0]
	}
	for v := 0; v < poly.NVar && v < domain.NDim(); v++ {
		if 1+v < len(a.Num) {
			num[1+v] = a.Num[1+v]
		}
	}
	out, col := domain.AddDiv(num, a.Den)
	return out, col, true
}

// splitDomainByResidue splits the domain into the part where the atom's
// argument has residue < threshold and the part where it is >= threshold
// (both modulo the atom's denominator).
func splitDomainByResidue(domain presburger.BasicSet, poly qpoly.QPoly, idx int, threshold int64) (presburger.BasicSet, presburger.BasicSet, bool) {
	withDiv, col, ok := domainWithAtomDiv(domain, poly, idx)
	if !ok {
		return presburger.BasicSet{}, presburger.BasicSet{}, false
	}
	a := poly.Atoms[idx]
	// residue r = e - d*div  with 0 <= r < d.
	resVec := func(width int) presburger.Vec {
		v := presburger.NewVec(width)
		if len(a.Num) > 0 {
			v[0] = a.Num[0]
		}
		for varIdx := 0; varIdx < poly.NVar && 1+varIdx < width; varIdx++ {
			if 1+varIdx < len(a.Num) {
				v[1+varIdx] = a.Num[1+varIdx]
			}
		}
		v[col] -= a.Den
		return v
	}
	// low: threshold - 1 - r >= 0
	low := resVec(withDiv.NCols()).Neg()
	low[0] += threshold - 1
	lowDom := withDiv.AddConstraint(presburger.Constraint{C: low})
	// high: r - threshold >= 0
	high := resVec(withDiv.NCols())
	high[0] -= threshold
	highDom := withDiv.AddConstraint(presburger.Constraint{C: high})
	return lowDom, highDom, true
}

// residueClassDomain restricts the domain to the points where the atom's
// argument is congruent to r modulo the atom's denominator.
func residueClassDomain(domain presburger.BasicSet, poly qpoly.QPoly, idx int, r int64) (presburger.BasicSet, bool) {
	withDiv, col, ok := domainWithAtomDiv(domain, poly, idx)
	if !ok {
		return presburger.BasicSet{}, false
	}
	a := poly.Atoms[idx]
	v := presburger.NewVec(withDiv.NCols())
	if len(a.Num) > 0 {
		v[0] = a.Num[0]
	}
	for varIdx := 0; varIdx < poly.NVar && 1+varIdx < withDiv.NCols(); varIdx++ {
		if 1+varIdx < len(a.Num) {
			v[1+varIdx] = a.Num[1+varIdx]
		}
	}
	v[col] -= a.Den
	v[0] -= r
	return withDiv.AddConstraint(presburger.Constraint{C: v, Eq: true}), true
}
