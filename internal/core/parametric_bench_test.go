package core

import (
	"testing"

	"haystack/internal/polybench"
)

// BenchmarkParametricGemm_EvalVsReanalyze quantifies the headline claim of
// the parametric model: answering a new problem size from one shared
// parametric analysis (Eval) versus running a fresh concrete analysis at
// that size (ComputeDistances + CountMisses). The Eval sub-benchmark
// measures the steady state of the amortized workflow — the model and its
// per-capacity miss polynomials are built once outside the timer, exactly
// like one long-lived model serving many size queries — while Reanalyze pays
// the full symbolic distance phase per size, which is what every additional
// size costs without the parametric model.
func BenchmarkParametricGemm_EvalVsReanalyze(b *testing.B) {
	pk, ok := polybench.ParametricByName("gemm")
	if !ok {
		b.Fatal("no parametric gemm")
	}
	cfg := DefaultConfig()
	sizes := []map[string]int64{
		pk.Bindings(polybench.Mini),
		pk.Bindings(polybench.Small),
		pk.Bindings(polybench.Medium),
		{"NI": 300, "NJ": 350, "NK": 400},
	}

	b.Run("Eval", func(b *testing.B) {
		pm, err := ComputeParametricModel(pk.Build(), cfg.LineSize, DefaultOptions())
		if err != nil {
			b.Fatalf("ComputeParametricModel: %v", err)
		}
		// Warm the per-capacity parametric polynomials (a one-time cost per
		// hierarchy, shared by all sizes).
		if _, err := pm.Eval(cfg, sizes[0]); err != nil {
			b.Fatalf("warmup Eval: %v", err)
		}
		b.ReportMetric(float64(pm.ResidualPieces()), "residual-pieces")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := pm.Eval(cfg, sizes[i%len(sizes)]); err != nil {
				b.Fatalf("Eval: %v", err)
			}
		}
	})

	b.Run("Reanalyze", func(b *testing.B) {
		prog := pk.Build()
		for i := 0; i < b.N; i++ {
			inst, err := prog.Instantiate(sizes[i%len(sizes)])
			if err != nil {
				b.Fatalf("Instantiate: %v", err)
			}
			dm, err := ComputeDistances(inst, cfg.LineSize, DefaultOptions())
			if err != nil {
				b.Fatalf("ComputeDistances: %v", err)
			}
			if _, err := dm.CountMisses(cfg); err != nil {
				b.Fatalf("CountMisses: %v", err)
			}
		}
	})
}
