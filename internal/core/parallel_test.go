package core

import (
	"reflect"
	"testing"

	"haystack/internal/scop"
)

// counterStats strips the timing and worker-pool bookkeeping from the stats,
// leaving only the deterministic counters. Steal/split counts depend on
// scheduling and the arena counters on free-list state, so they are
// observability, not part of the bit-identity contract.
func counterStats(s Stats) Stats {
	s.StackDistanceTime = 0
	s.CapacityTime = 0
	s.CompulsoryTime = 0
	s.TotalTime = 0
	s.CapacityWorkers = 0
	s.CapacityWorkerTime = nil
	s.Steals = 0
	s.Splits = 0
	s.ArenaHits = 0
	s.ArenaMisses = 0
	return s
}

// TestParallelCountsMatchSequential asserts that the parallel counting
// engine is bit-identical to the sequential path: capacity and compulsory
// miss counts, the per-statement breakdowns, and every merged Stats counter
// must not depend on the parallelism level.
func TestParallelCountsMatchSequential(t *testing.T) {
	progs := []*scop.Program{gemm(8), trisolvLike(10), jacobi1d(20, 2)}
	pars := []int{4}
	if testing.Short() {
		progs = []*scop.Program{gemm(6), trisolvLike(8)}
	}
	cfg := Config{LineSize: 64, CacheSizes: []int64{512, 2048, 16 * 1024}}
	for _, prog := range progs {
		opts := DefaultOptions()
		opts.TraceFallback = false
		opts.Parallelism = 1
		seq, err := Analyze(prog, cfg, opts)
		if err != nil {
			t.Fatalf("%s: sequential analyze: %v", prog.Name, err)
		}
		for _, par := range pars {
			opts.Parallelism = par
			got, err := Analyze(prog, cfg, opts)
			if err != nil {
				t.Fatalf("%s: parallel analyze (%d workers): %v", prog.Name, par, err)
			}
			if got.CompulsoryMisses != seq.CompulsoryMisses {
				t.Errorf("%s: compulsory misses differ: %d parallel vs %d sequential",
					prog.Name, got.CompulsoryMisses, seq.CompulsoryMisses)
			}
			if len(got.Levels) != len(seq.Levels) {
				t.Fatalf("%s: level count differs", prog.Name)
			}
			for i := range got.Levels {
				if got.Levels[i].CapacityMisses != seq.Levels[i].CapacityMisses {
					t.Errorf("%s: level %d capacity misses differ: %d parallel vs %d sequential",
						prog.Name, i, got.Levels[i].CapacityMisses, seq.Levels[i].CapacityMisses)
				}
				if !reflect.DeepEqual(got.Levels[i].PerStatementCapacity, seq.Levels[i].PerStatementCapacity) {
					t.Errorf("%s: level %d per-statement capacity differs: %v parallel vs %v sequential",
						prog.Name, i, got.Levels[i].PerStatementCapacity, seq.Levels[i].PerStatementCapacity)
				}
			}
			if !reflect.DeepEqual(got.PerStatementCompulsory, seq.PerStatementCompulsory) {
				t.Errorf("%s: per-statement compulsory differs", prog.Name)
			}
			if !reflect.DeepEqual(counterStats(got.Stats), counterStats(seq.Stats)) {
				t.Errorf("%s: merged stats counters differ:\nparallel (%d workers): %+v\nsequential: %+v",
					prog.Name, par, counterStats(got.Stats), counterStats(seq.Stats))
			}
		}
	}
}

// TestParallelismKnobRecordedInStats asserts that the requested worker count
// is surfaced in the stats together with one busy-time entry per worker.
func TestParallelismKnobRecordedInStats(t *testing.T) {
	opts := DefaultOptions()
	opts.TraceFallback = false
	opts.Parallelism = 2
	res, err := Analyze(gemm(6), Config{LineSize: 64, CacheSizes: []int64{1024}}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.CapacityWorkers < 1 || res.Stats.CapacityWorkers > 2 {
		t.Fatalf("CapacityWorkers = %d, want 1..2", res.Stats.CapacityWorkers)
	}
	if len(res.Stats.CapacityWorkerTime) != res.Stats.CapacityWorkers {
		t.Fatalf("CapacityWorkerTime has %d entries, want %d",
			len(res.Stats.CapacityWorkerTime), res.Stats.CapacityWorkers)
	}
	// Busy time is per-item now, so a worker that never claims an item
	// legitimately reports zero; at least one worker must have been busy.
	var busy int
	for i, d := range res.Stats.CapacityWorkerTime {
		if d < 0 {
			t.Fatalf("worker %d busy time negative: %v", i, d)
		}
		if d > 0 {
			busy++
		}
	}
	if busy == 0 {
		t.Fatal("no worker recorded any busy time")
	}
}

// TestLevelsShareOneCountingPass asserts the multi-level work sharing: the
// number of counted pieces must not grow with the number of cache levels,
// because every piece is split once and classified against all capacities.
func TestLevelsShareOneCountingPass(t *testing.T) {
	opts := DefaultOptions()
	opts.TraceFallback = false
	one, err := Analyze(gemm(6), Config{LineSize: 64, CacheSizes: []int64{1024}}, opts)
	if err != nil {
		t.Fatal(err)
	}
	three, err := Analyze(gemm(6), Config{LineSize: 64, CacheSizes: []int64{1024, 4096, 16384}}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if one.Stats.CountedPieces != three.Stats.CountedPieces {
		t.Errorf("counted pieces grew with cache levels: %d for one level, %d for three",
			one.Stats.CountedPieces, three.Stats.CountedPieces)
	}
	if one.Levels[0].TotalMisses != three.Levels[0].TotalMisses {
		t.Errorf("first level misses differ between configs: %d vs %d",
			one.Levels[0].TotalMisses, three.Levels[0].TotalMisses)
	}
}
