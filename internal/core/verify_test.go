package core

import (
	"errors"
	"testing"

	"haystack/internal/polybench"
	"haystack/internal/scop"
	"haystack/internal/scopcheck"
)

// brokenProgram reads past the end of its only array: the pre-flight
// verifier must reject it before the model runs.
func brokenProgram() *scop.Program {
	p := scop.NewProgram("broken")
	A := p.NewArray("A", scop.ElemFloat64, 4)
	i := scop.V("i")
	p.Add(scop.For(i, scop.C(0), scop.C(5),
		scop.Stmt("S0", scop.Read(A, scop.X(i)))))
	return p
}

func TestAnalyzeRejectsInvalidProgram(t *testing.T) {
	_, err := Analyze(brokenProgram(), DefaultConfig(), DefaultOptions())
	if !errors.Is(err, ErrInvalidProgram) {
		t.Fatalf("want ErrInvalidProgram, got %v", err)
	}
	var ipe *InvalidProgramError
	if !errors.As(err, &ipe) {
		t.Fatalf("want *InvalidProgramError, got %T", err)
	}
	if len(ipe.Diagnostics) == 0 {
		t.Fatal("error carries no diagnostics")
	}
	d := ipe.Diagnostics[0]
	if d.Kind != scopcheck.KindOutOfBounds {
		t.Fatalf("want out-of-bounds diagnostic, got %s", d)
	}
	if len(d.Witness) == 0 {
		t.Fatal("diagnostic carries no witness point")
	}
}

func TestAnalyzeSkipVerify(t *testing.T) {
	// With SkipVerify the broken program reaches the model, which analyzes
	// it without complaint (the access map just covers an element outside
	// the declared extent; the symbolic pipeline does not care).
	opts := DefaultOptions()
	opts.SkipVerify = true
	if _, err := Analyze(brokenProgram(), DefaultConfig(), opts); err != nil {
		t.Fatalf("Analyze with SkipVerify: %v", err)
	}
}

func TestParametricModelRejectsInvalidProgram(t *testing.T) {
	p := scop.NewProgram("brokenparam")
	N := p.NewParam("N")
	A := p.NewArrayP("A", scop.ElemFloat64, scop.X(N))
	i := scop.V("i")
	p.Add(scop.For(i, scop.C(0), scop.X(N).Plus(scop.C(1)),
		scop.Stmt("S0", scop.Read(A, scop.X(i)))))
	_, err := ComputeParametricModel(p, 64, DefaultOptions())
	if !errors.Is(err, ErrInvalidProgram) {
		t.Fatalf("want ErrInvalidProgram, got %v", err)
	}
}

// TestGemmConformanceParallel4 pins the race-detector coverage of the
// parallel pipeline at a fixed worker count: gemm at MINI with four
// workers, bit-identical against the exact reference. The CI race job runs
// this test with -race.
func TestGemmConformanceParallel4(t *testing.T) {
	k, ok := polybench.ByName("gemm")
	if !ok {
		t.Fatal("gemm not registered")
	}
	prog := k.Build(polybench.Mini)
	cfg := DefaultConfig()
	opts := DefaultOptions()
	opts.Parallelism = 4
	res, err := Analyze(prog, cfg, opts)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	ref, err := SimulateReference(prog, cfg)
	if err != nil {
		t.Fatalf("SimulateReference: %v", err)
	}
	if res.UsedTraceFallback {
		t.Errorf("symbolic pipeline fell back to trace profiling: %s", res.FallbackReason)
	}
	if res.TotalAccesses != ref.TotalAccesses {
		t.Errorf("total accesses: model %d, reference %d", res.TotalAccesses, ref.TotalAccesses)
	}
	if res.CompulsoryMisses != ref.CompulsoryMisses {
		t.Errorf("compulsory misses: model %d, reference %d", res.CompulsoryMisses, ref.CompulsoryMisses)
	}
	for l, lvl := range res.Levels {
		if lvl.TotalMisses != ref.TotalMisses[l] {
			t.Errorf("L%d total misses: model %d, reference %d", l+1, lvl.TotalMisses, ref.TotalMisses[l])
		}
	}
}
