// Package core implements the HayStack cache model: a fast analytical model
// of fully associative LRU caches for static control programs (Gysi et al.,
// PLDI 2019).
//
// The model computes, for every memory access of the program, the backward
// stack distance as a piecewise quasi-polynomial (section 3.1 of the paper),
// counts the accesses whose distance exceeds the cache capacity to obtain
// the capacity misses (section 3.2, Algorithm 1), eliminates non-affine
// floor terms by equalization and rasterization (section 3.3), and counts
// the first accesses of every cache line as compulsory misses (section 3.4).
// All counting is symbolic; non-affine pieces fall back to partial or full
// enumeration exactly as the paper describes.
package core

import (
	"fmt"
	"runtime"
	"time"

	"haystack/internal/cachesim"
	"haystack/internal/counting"
	"haystack/internal/qpoly"
	"haystack/internal/reusedist"
	"haystack/internal/scop"
)

// Config describes the modeled cache hierarchy: fully associative LRU caches
// with the given capacities sharing one line size.
type Config struct {
	// LineSize is the cache line size in bytes.
	LineSize int64
	// CacheSizes holds the capacity in bytes of every modeled cache level,
	// ordered from the innermost level (L1) outwards.
	CacheSizes []int64
}

// DefaultConfig returns the cache configuration of the paper's test system:
// 64-byte lines, a 32 KiB L1 and a 1 MiB L2.
func DefaultConfig() Config {
	return Config{LineSize: 64, CacheSizes: []int64{32 * 1024, 1024 * 1024}}
}

// Options toggles the optimizations of the miss counting stage; all of them
// are enabled by default. Disabling them reproduces the ablation study of
// the evaluation (Figure 14).
type Options struct {
	// Equalization replaces pairs of floor expressions that differ by a
	// constant offset with per-region constants (section 3.3).
	Equalization bool
	// Rasterization specializes floor expressions per cache line offset
	// (section 3.3).
	Rasterization bool
	// PartialEnumeration enumerates only the non-affine dimensions of a
	// piece and counts the affine dimensions symbolically (section 3.2);
	// when disabled, non-affine pieces are enumerated point by point.
	PartialEnumeration bool
	// TraceFallback allows Analyze to fall back to exact trace-based
	// profiling when the symbolic pipeline cannot handle the program. The
	// result is still exact but the runtime becomes proportional to the
	// number of memory accesses.
	TraceFallback bool
	// Parallelism is the number of worker goroutines of the analysis: the
	// capacity miss counting engine fans the distance pieces out over the
	// pool, and the stack distance computation uses it for the per-basic-map
	// lexicographic maxima and the touched-line counting. Zero or negative
	// selects runtime.NumCPU(). Results are bit-identical for every
	// parallelism level.
	Parallelism int
	// SkipVerify disables the static pre-flight verification
	// (internal/scopcheck) that ComputeDistances and ComputeParametricModel
	// run on the input program. The verification is cheap and rejects
	// malformed programs (out-of-bounds accesses, broken schedules) with
	// structured diagnostics instead of letting the symbolic pipeline
	// compute garbage; disable it only for programs already verified.
	SkipVerify bool
}

// effectiveParallelism resolves the Parallelism knob: values below one
// select the number of CPUs.
func effectiveParallelism(p int) int {
	if p <= 0 {
		return runtime.NumCPU()
	}
	return p
}

// DefaultOptions enables every optimization.
func DefaultOptions() Options {
	return Options{Equalization: true, Rasterization: true, PartialEnumeration: true, TraceFallback: true}
}

// LevelResult holds the modeled miss counts of one cache level.
type LevelResult struct {
	CacheBytes     int64
	CapacityMisses int64
	// TotalMisses is the sum of compulsory and capacity misses.
	TotalMisses int64
	// PerStatementCapacity attributes the capacity misses to statements.
	PerStatementCapacity map[string]int64
}

// Stats records where the model spent its time and how many pieces it
// counted, mirroring the quantities reported in the evaluation section.
type Stats struct {
	StackDistanceTime time.Duration
	CapacityTime      time.Duration
	CompulsoryTime    time.Duration
	TotalTime         time.Duration

	// DistancePieces is the number of pieces of the stack distance
	// quasi-polynomials across all statements.
	DistancePieces int
	// CountedPieces is the number of pieces counted separately while
	// computing capacity misses (after equalization, rasterization, and
	// partial enumeration splits). Every piece is split once and classified
	// against all cache levels in a single pass, so the count is independent
	// of the number of modeled levels.
	CountedPieces int
	// AffinePieces and NonAffinePieces classify the distance pieces.
	AffinePieces    int
	NonAffinePieces int
	// NonAffineByAffineDims histograms the non-affine pieces by the number
	// of dimensions that could still be counted symbolically (Table 1).
	NonAffineByAffineDims map[int]int
	// EqualizationSplits and RasterizationSplits count applications of the
	// floor elimination techniques.
	EqualizationSplits  int
	RasterizationSplits int
	// PartialEnumerationPoints is the number of enumerated points of
	// non-affine dimensions; FullEnumerationPoints counts points that had to
	// be enumerated exhaustively.
	PartialEnumerationPoints int64
	FullEnumerationPoints    int64

	// CapacityWorkers is the number of worker goroutines the capacity miss
	// counting engine ran with; CapacityWorkerTime holds the busy time of
	// every worker (indexed by worker id). All other counters of Stats are
	// merged deterministically from the per-worker accumulators and do not
	// depend on the parallelism level.
	CapacityWorkers    int
	CapacityWorkerTime []time.Duration

	// Coalescing observability (distance phase). PeakBasicMaps is the
	// largest basic-map count entering any simplification frontier of the
	// stack-distance pipeline; BasicMapsBeforeCoalesce and
	// BasicMapsAfterCoalesce accumulate the counts entering and leaving
	// those frontiers, so their ratio is the average shrink factor. The
	// Coalesce* counters are the rule hit counts of the presburger layer
	// (including the coalescing that runs inside Subtract/Intersect/
	// ApplyRange and in lexmin and counting) over the whole distance phase.
	PeakBasicMaps           int
	BasicMapsBeforeCoalesce int64
	BasicMapsAfterCoalesce  int64
	CoalesceDedup           int64
	CoalesceSubsumed        int64
	CoalesceAdjacent        int64
	CoalesceRedundantCons   int64
}

// merge adds the additive counters of o into s. Timing fields and the
// worker-pool bookkeeping are not merged: they are owned by the coordinating
// goroutine.
func (s *Stats) merge(o *Stats) {
	s.CountedPieces += o.CountedPieces
	s.AffinePieces += o.AffinePieces
	s.NonAffinePieces += o.NonAffinePieces
	for k, v := range o.NonAffineByAffineDims {
		s.NonAffineByAffineDims[k] += v
	}
	s.EqualizationSplits += o.EqualizationSplits
	s.RasterizationSplits += o.RasterizationSplits
	s.PartialEnumerationPoints += o.PartialEnumerationPoints
	s.FullEnumerationPoints += o.FullEnumerationPoints
}

// Result is the outcome of analyzing one program.
type Result struct {
	Kernel           string
	TotalAccesses    int64
	CompulsoryMisses int64
	Levels           []LevelResult
	// PerStatementCompulsory attributes compulsory misses to the statement
	// performing the first access of each line (empty if attribution was
	// skipped).
	PerStatementCompulsory map[string]int64
	Stats                  Stats
	// UsedTraceFallback reports that the symbolic pipeline failed and the
	// result was obtained by exact trace profiling instead.
	UsedTraceFallback bool
	// FallbackReason carries the error that triggered the trace fallback.
	FallbackReason string
}

// Analyze runs the cache model on a program. It is the single-shot
// composition of the two analysis phases: ComputeDistances derives the
// cache-independent stack distance model and CountMisses classifies it
// against the hierarchy. Callers evaluating one program against several
// hierarchies (design-space exploration) should call the phases directly and
// reuse the DistanceModel, which amortizes the expensive distance phase.
func Analyze(prog *scop.Program, cfg Config, opts Options) (*Result, error) {
	start := time.Now()
	if cfg.LineSize <= 0 {
		return nil, fmt.Errorf("core: line size must be positive")
	}
	if len(cfg.CacheSizes) == 0 {
		return nil, fmt.Errorf("core: at least one cache size is required")
	}
	dm, err := ComputeDistances(prog, cfg.LineSize, opts)
	if err != nil {
		return nil, err
	}
	res, err := dm.CountMisses(cfg)
	if err != nil {
		return nil, err
	}
	res.Stats.TotalTime = time.Since(start)
	return res, nil
}

// totalAccesses counts the dynamic memory accesses of the program (the
// length of its trace) symbolically.
func totalAccesses(info *scop.PolyInfo) (int64, error) {
	var total int64
	for _, ps := range info.Statements {
		n, err := counting.CountSet(ps.Domain)
		if err != nil {
			// Fall back to enumeration of the iteration domain.
			n, err = ps.Domain.CountByScan()
			if err != nil {
				return 0, err
			}
		}
		total += n
	}
	return total, nil
}

// StatementDistance pairs a statement with the piecewise quasi-polynomial
// giving the backward stack distance of each of its accesses.
type StatementDistance struct {
	Statement string
	// Distance maps every point of the statement instance space (loop
	// variables plus the access dimension) that has a previous access to the
	// same cache line to its stack distance; instances without previous
	// access (compulsory misses) are outside all pieces.
	Distance qpoly.PwQPoly
}

// Reference holds the exact miss counts obtained by replaying the trace,
// with the same semantics the model uses: every level is a fully associative
// LRU cache observing the full access stream.
type Reference struct {
	TotalAccesses    int64
	CompulsoryMisses int64
	// TotalMisses[i] is the number of misses of a fully associative LRU
	// cache with capacity cfg.CacheSizes[i].
	TotalMisses []int64
}

// SimulateReference computes the exact reference counts for the model: the
// trace is replayed with the padded array layout the model assumes and the
// stack distance profile yields the misses of every configured cache size.
// It is the ground truth the model is validated against in the tests.
func SimulateReference(prog *scop.Program, cfg Config) (Reference, error) {
	layout := scop.NewLayout(prog, scop.LayoutPadded, cfg.LineSize)
	cp, err := scop.Compile(prog, layout)
	if err != nil {
		return Reference{}, err
	}
	profile := reusedist.ProfileProgram(cp, cfg.LineSize)
	ref := Reference{TotalAccesses: profile.Accesses, CompulsoryMisses: profile.Compulsory}
	for _, size := range cfg.CacheSizes {
		ref.TotalMisses = append(ref.TotalMisses, profile.MissesForCapacity(size/cfg.LineSize))
	}
	return ref, nil
}

// DetailedSimulation runs the trace-driven simulator (Dinero stand-in) on
// the natural (unpadded) array layout with the given hierarchy; it is used
// by the experiment harness for the set-associative and "measured"
// configurations.
func DetailedSimulation(prog *scop.Program, simCfg cachesim.Config) (cachesim.Result, error) {
	layout := scop.NewLayout(prog, scop.LayoutNatural, simCfg.LineSize)
	cp, err := scop.Compile(prog, layout)
	if err != nil {
		return cachesim.Result{}, err
	}
	return cachesim.Simulate(cp, simCfg)
}
