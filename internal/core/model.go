// Package core implements the HayStack cache model: a fast analytical model
// of fully associative LRU caches for static control programs (Gysi et al.,
// PLDI 2019).
//
// The model computes, for every memory access of the program, the backward
// stack distance as a piecewise quasi-polynomial (section 3.1 of the paper),
// counts the accesses whose distance exceeds the cache capacity to obtain
// the capacity misses (section 3.2, Algorithm 1), eliminates non-affine
// floor terms by equalization and rasterization (section 3.3), and counts
// the first accesses of every cache line as compulsory misses (section 3.4).
// All counting is symbolic; non-affine pieces fall back to partial or full
// enumeration exactly as the paper describes.
package core

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"haystack/internal/cachesim"
	"haystack/internal/counting"
	"haystack/internal/parwork"
	"haystack/internal/qpoly"
	"haystack/internal/reusedist"
	"haystack/internal/scop"
)

// Config describes the modeled cache hierarchy: LRU caches with the given
// capacities sharing one line size. Levels are fully associative by default;
// a per-level associativity in Ways selects set-associative modeling.
type Config struct {
	// LineSize is the cache line size in bytes.
	LineSize int64
	// CacheSizes holds the capacity in bytes of every modeled cache level,
	// ordered from the innermost level (L1) outwards.
	CacheSizes []int64
	// Ways holds the associativity of every level, parallel to CacheSizes:
	// entry i is the number of ways of level i, with 0 selecting full
	// associativity (the paper's model). A nil or short slice leaves the
	// remaining levels fully associative, so existing Config literals keep
	// their exact meaning. A set-associative level is modeled as numSets
	// independent fully associative LRU caches of Ways lines each, with
	// set(line) = line mod numSets over the padded layout — the identical
	// geometry derivation the simulator uses (cachesim.Geometry), so the
	// two engines can be compared bit for bit.
	Ways []int
}

// WaysOf returns the configured associativity of level i; zero means fully
// associative (levels beyond the Ways slice default to it).
func (cfg Config) WaysOf(i int) int {
	if i < len(cfg.Ways) {
		return cfg.Ways[i]
	}
	return 0
}

// LevelGeometry returns the set/way geometry of level i, derived by the
// exact rule the simulator applies (cachesim.Geometry): oversized or zero
// ways clamp to full associativity, and numSets is the integer quotient of
// the line count by the effective ways.
func (cfg Config) LevelGeometry(i int) (numSets, ways int64, err error) {
	return cachesim.Geometry(cfg.CacheSizes[i], cfg.LineSize, cfg.WaysOf(i))
}

// HasSetAssoc reports whether any level of the hierarchy is genuinely set
// associative (partitions into more than one set).
func (cfg Config) HasSetAssoc() bool {
	for i := range cfg.CacheSizes {
		if numSets, _, err := cfg.LevelGeometry(i); err == nil && numSets > 1 {
			return true
		}
	}
	return false
}

// Validate checks the hierarchy description: a positive line size, at least
// one cache level, a Ways slice no longer than the level list, and a
// derivable set/way geometry for every level.
func (cfg Config) Validate() error {
	if cfg.LineSize <= 0 {
		return fmt.Errorf("core: line size must be positive")
	}
	if len(cfg.CacheSizes) == 0 {
		return fmt.Errorf("core: at least one cache size is required")
	}
	if len(cfg.Ways) > len(cfg.CacheSizes) {
		return fmt.Errorf("core: %d ways entries for %d cache levels", len(cfg.Ways), len(cfg.CacheSizes))
	}
	for i := range cfg.CacheSizes {
		if _, _, err := cfg.LevelGeometry(i); err != nil {
			return fmt.Errorf("core: level %d: %w", i+1, err)
		}
	}
	return nil
}

// DefaultConfig returns the cache configuration of the paper's test system:
// 64-byte lines, a 32 KiB L1 and a 1 MiB L2.
func DefaultConfig() Config {
	return Config{LineSize: 64, CacheSizes: []int64{32 * 1024, 1024 * 1024}}
}

// Mode selects the rung of the degradation ladder the analysis runs on.
type Mode int

const (
	// ModeExact (the zero value) demands exact answers: a stage that
	// exceeds the budget or leaves the supported fragment fails the
	// analysis (or triggers the exact trace fallback when
	// Options.TraceFallback is set).
	ModeExact Mode = iota
	// ModeBounded degrades failing operations to certified interval bounds
	// (Lo <= exact <= Hi) instead of failing: the analysis always answers,
	// and exact sub-results keep width 0.
	ModeBounded
	// ModeSim skips the symbolic pipeline entirely and answers from an
	// exact trace profile (runtime proportional to the trace length).
	ModeSim
)

func (m Mode) String() string {
	switch m {
	case ModeExact:
		return "exact"
	case ModeBounded:
		return "bounded"
	case ModeSim:
		return "sim"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// ParseMode parses the -mode CLI flag values.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "exact", "":
		return ModeExact, nil
	case "bounded":
		return ModeBounded, nil
	case "sim":
		return ModeSim, nil
	}
	return ModeExact, fmt.Errorf("core: unknown mode %q (want exact, bounded, or sim)", s)
}

// Tier reports which rung of the degradation ladder produced a Result.
type Tier int

const (
	// TierExact: every count of the result is exact (all bound widths 0).
	TierExact Tier = iota
	// TierBounded: at least one count degraded to a certified interval;
	// the point values report the conservative upper bound of the
	// interval and the bounds fields carry the certified ranges.
	TierBounded
	// TierSimulated: the result was obtained by exact trace profiling
	// (the legacy trace fallback, or ModeSim).
	TierSimulated
)

func (t Tier) String() string {
	switch t {
	case TierExact:
		return "exact"
	case TierBounded:
		return "bounded"
	case TierSimulated:
		return "simulated"
	}
	return fmt.Sprintf("Tier(%d)", int(t))
}

// Options toggles the optimizations of the miss counting stage; all of them
// are enabled by default. Disabling them reproduces the ablation study of
// the evaluation (Figure 14).
type Options struct {
	// Equalization replaces pairs of floor expressions that differ by a
	// constant offset with per-region constants (section 3.3).
	Equalization bool
	// Rasterization specializes floor expressions per cache line offset
	// (section 3.3).
	Rasterization bool
	// PartialEnumeration enumerates only the non-affine dimensions of a
	// piece and counts the affine dimensions symbolically (section 3.2);
	// when disabled, non-affine pieces are enumerated point by point.
	PartialEnumeration bool
	// TraceFallback allows Analyze to fall back to exact trace-based
	// profiling when the symbolic pipeline cannot handle the program. The
	// result is still exact but the runtime becomes proportional to the
	// number of memory accesses.
	TraceFallback bool
	// Parallelism is the number of worker goroutines of the analysis: the
	// capacity miss counting engine fans the distance pieces out over the
	// pool, and the stack distance computation uses it for the per-basic-map
	// lexicographic maxima and the touched-line counting. Zero or negative
	// selects runtime.NumCPU(). Results are bit-identical for every
	// parallelism level.
	Parallelism int
	// SkipVerify disables the static pre-flight verification
	// (internal/scopcheck) that ComputeDistances and ComputeParametricModel
	// run on the input program. The verification is cheap and rejects
	// malformed programs (out-of-bounds accesses, broken schedules) with
	// structured diagnostics instead of letting the symbolic pipeline
	// compute garbage; disable it only for programs already verified.
	SkipVerify bool
	// Mode selects the degradation ladder rung (exact, bounded, sim); see
	// the Mode constants. The zero value is ModeExact, preserving the
	// legacy behavior.
	Mode Mode
	// Budget caps the cost units every counting operation of the analysis
	// may spend (Fourier-Motzkin system fan-out and enumerated points both
	// charge one unit). Zero means unlimited. The cap is enforced per
	// operation — not against a shared pool — so which operation degrades
	// is deterministic and independent of the worker count. In ModeExact
	// an exceeded budget fails the operation (or triggers the trace
	// fallback); in ModeBounded it degrades the operation to certified
	// interval bounds.
	Budget int64
	// Deadline bounds the wall-clock time of an Analyze/ComputeDistances/
	// CountMisses call: the call's context is cancelled after the duration
	// and the analysis returns context.DeadlineExceeded. Zero means no
	// deadline. Unlike Budget, a deadline is not deterministic — use it as
	// a safety net, not as the degradation trigger.
	Deadline time.Duration
	// Exec, when non-nil, supplies the work-stealing executor the analysis
	// schedules its chamber-level units on, overriding Parallelism. Callers
	// running several analyses concurrently (design-space sweeps) pass a
	// shared pool — or the *parwork.Worker executing the enclosing item —
	// so one long-pole analysis fans out across whatever workers the
	// others have freed. The executor is used only for the duration of the
	// call and never retained. Results remain bit-identical for every
	// executor shape.
	Exec parwork.Exec
}

// effectiveParallelism resolves the Parallelism knob: values below one
// select the number of CPUs.
func effectiveParallelism(p int) int {
	if p <= 0 {
		return runtime.NumCPU()
	}
	return p
}

// executor resolves the executor of one analysis call: the caller-supplied
// Exec when set (release is then a no-op — the caller owns it), otherwise a
// transient executor sized by the Parallelism knob that release tears down.
func (o Options) executor() (ex parwork.Exec, release func()) {
	if o.Exec != nil {
		return o.Exec, func() {}
	}
	return parwork.NewExec(effectiveParallelism(o.Parallelism))
}

// DefaultOptions enables every optimization.
func DefaultOptions() Options {
	return Options{Equalization: true, Rasterization: true, PartialEnumeration: true, TraceFallback: true}
}

// LevelResult holds the modeled miss counts of one cache level.
type LevelResult struct {
	CacheBytes     int64
	CapacityMisses int64
	// TotalMisses is the sum of compulsory and capacity misses.
	TotalMisses int64
	// PerStatementCapacity attributes the capacity misses to statements.
	PerStatementCapacity map[string]int64
	// CapacityMissBounds and TotalMissBounds are the certified intervals
	// around the corresponding counts. Exact results carry width-0
	// intervals; bounded-tier results report the interval, with the point
	// fields above pinned to the conservative upper bound.
	CapacityMissBounds counting.Interval
	TotalMissBounds    counting.Interval
}

// Stats records where the model spent its time and how many pieces it
// counted, mirroring the quantities reported in the evaluation section.
type Stats struct {
	StackDistanceTime time.Duration
	CapacityTime      time.Duration
	CompulsoryTime    time.Duration
	TotalTime         time.Duration

	// DistancePieces is the number of pieces of the stack distance
	// quasi-polynomials across all statements.
	DistancePieces int
	// CountedPieces is the number of pieces counted separately while
	// computing capacity misses (after equalization, rasterization, and
	// partial enumeration splits). Every piece is split once and classified
	// against all cache levels in a single pass, so the count is independent
	// of the number of modeled levels.
	CountedPieces int
	// AffinePieces and NonAffinePieces classify the distance pieces.
	AffinePieces    int
	NonAffinePieces int
	// NonAffineByAffineDims histograms the non-affine pieces by the number
	// of dimensions that could still be counted symbolically (Table 1).
	NonAffineByAffineDims map[int]int
	// EqualizationSplits and RasterizationSplits count applications of the
	// floor elimination techniques.
	EqualizationSplits  int
	RasterizationSplits int
	// PartialEnumerationPoints is the number of enumerated points of
	// non-affine dimensions; FullEnumerationPoints counts points that had to
	// be enumerated exhaustively.
	PartialEnumerationPoints int64
	FullEnumerationPoints    int64

	// CapacityWorkers is the number of worker goroutines the capacity miss
	// counting engine ran with; CapacityWorkerTime holds the busy time of
	// every worker (indexed by worker id): the accumulated wall-clock time
	// of the work items it executed, so an idle worker reports zero. All
	// other counters of Stats are merged deterministically from the
	// per-worker accumulators and do not depend on the parallelism level.
	CapacityWorkers    int
	CapacityWorkerTime []time.Duration

	// Scheduler and arena observability. Steals counts work items claimed
	// from another worker's deque and Splits counts work items that fanned
	// out into nested sub-groups during this call; ArenaHits/ArenaMisses
	// are the coefficient-scratch free-list counters of the presburger
	// layer over the call. All four are scheduling- or cache-state-
	// dependent (and, under a shared pool, attributed best-effort like the
	// Coalesce* counters): they never affect results and are excluded from
	// the bit-identity guarantees.
	Steals      int64
	Splits      int64
	ArenaHits   int64
	ArenaMisses int64

	// Coalescing observability (distance phase). PeakBasicMaps is the
	// largest basic-map count entering any simplification frontier of the
	// stack-distance pipeline; BasicMapsBeforeCoalesce and
	// BasicMapsAfterCoalesce accumulate the counts entering and leaving
	// those frontiers, so their ratio is the average shrink factor. The
	// Coalesce* counters are the rule hit counts of the presburger layer
	// (including the coalescing that runs inside Subtract/Intersect/
	// ApplyRange and in lexmin and counting) over the whole distance phase.
	PeakBasicMaps           int
	BasicMapsBeforeCoalesce int64
	BasicMapsAfterCoalesce  int64
	CoalesceDedup           int64
	CoalesceSubsumed        int64
	CoalesceAdjacent        int64
	CoalesceRedundantCons   int64

	// SetAssoc records, for every genuinely set-associative level of the
	// query (more than one set), how the distance pieces partitioned among
	// the cache sets. The counts are scheduling independent and part of the
	// bit-identity contract; the slice is empty for fully associative
	// hierarchies.
	SetAssoc []SetAssocLevelStats

	// BoundWidth holds, per cache level, the width of the certified total
	// miss interval (TotalMissBounds.Width()). Exact results report zeros,
	// so any nonzero entry is a visible tightness regression.
	BoundWidth []int64
	// BudgetUsed is the monotonic total of cost units charged by all
	// counting operations of the call (observability only; limits are
	// enforced per operation).
	BudgetUsed int64
}

// SetAssocLevelStats describes the per-set partition of one set-associative
// cache level of a CountMisses query.
type SetAssocLevelStats struct {
	// Level indexes the cache level in Config.CacheSizes.
	Level int
	// Sets and Ways are the derived geometry (cachesim.Geometry).
	Sets int64
	Ways int64
	// SetPieces[s] is the number of cardinality summand pieces of set s,
	// after restricting the touched-line maps to the set's lines. The
	// summands stay unmerged (their pointwise sum is the within-set
	// distance; see counting.MapCardSummands), so this counts the lazy
	// bag, not a merged piecewise normal form. The counts do not depend
	// on the worker count.
	SetPieces []int
}

// merge adds the additive counters of o into s. Timing fields and the
// worker-pool bookkeeping are not merged: they are owned by the coordinating
// goroutine.
func (s *Stats) merge(o *Stats) {
	s.CountedPieces += o.CountedPieces
	s.AffinePieces += o.AffinePieces
	s.NonAffinePieces += o.NonAffinePieces
	for k, v := range o.NonAffineByAffineDims {
		s.NonAffineByAffineDims[k] += v
	}
	s.EqualizationSplits += o.EqualizationSplits
	s.RasterizationSplits += o.RasterizationSplits
	s.PartialEnumerationPoints += o.PartialEnumerationPoints
	s.FullEnumerationPoints += o.FullEnumerationPoints
}

// Result is the outcome of analyzing one program.
type Result struct {
	Kernel           string
	TotalAccesses    int64
	CompulsoryMisses int64
	Levels           []LevelResult
	// PerStatementCompulsory attributes compulsory misses to the statement
	// performing the first access of each line (empty if attribution was
	// skipped).
	PerStatementCompulsory map[string]int64
	Stats                  Stats
	// UsedTraceFallback reports that the symbolic pipeline failed and the
	// result was obtained by exact trace profiling instead.
	UsedTraceFallback bool
	// FallbackReason carries the provenance of any degradation: the error
	// that triggered the trace fallback, or the reason the bounded tier
	// degraded an operation.
	FallbackReason string
	// Tier reports the degradation ladder rung that produced the result.
	Tier Tier
	// CompulsoryBounds is the certified interval around CompulsoryMisses
	// (width 0 when the compulsory count is exact).
	CompulsoryBounds counting.Interval
}

// finalizeBounds makes the bounds fields of every result coherent: any
// level whose interval was not filled by a bounded path gets the width-0
// interval of its exact counts, and Stats.BoundWidth is (re)derived from
// the per-level total miss intervals.
func (res *Result) finalizeBounds() {
	if res.CompulsoryBounds == (counting.Interval{}) && res.CompulsoryMisses != 0 {
		res.CompulsoryBounds = counting.Exact(res.CompulsoryMisses)
	}
	res.Stats.BoundWidth = make([]int64, len(res.Levels))
	for i := range res.Levels {
		lv := &res.Levels[i]
		if lv.CapacityMissBounds == (counting.Interval{}) && lv.CapacityMisses != 0 {
			lv.CapacityMissBounds = counting.Exact(lv.CapacityMisses)
		}
		if lv.TotalMissBounds == (counting.Interval{}) && lv.TotalMisses != 0 {
			lv.TotalMissBounds = lv.CapacityMissBounds.Add(res.CompulsoryBounds)
		}
		res.Stats.BoundWidth[i] = lv.TotalMissBounds.Width()
	}
}

// Analyze runs the cache model on a program. It is the single-shot
// composition of the two analysis phases: ComputeDistances derives the
// cache-independent stack distance model and CountMisses classifies it
// against the hierarchy. Callers evaluating one program against several
// hierarchies (design-space exploration) should call the phases directly and
// reuse the DistanceModel, which amortizes the expensive distance phase.
func Analyze(prog *scop.Program, cfg Config, opts Options) (*Result, error) {
	return AnalyzeContext(context.Background(), prog, cfg, opts)
}

// AnalyzeContext is Analyze observing ctx: the analysis stops claiming work
// promptly after cancellation and returns the context error. Options.
// Deadline, when set, additionally bounds the wall-clock time of the whole
// call (both phases share the deadline).
func AnalyzeContext(ctx context.Context, prog *scop.Program, cfg Config, opts Options) (*Result, error) {
	start := time.Now()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if opts.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.Deadline)
		defer cancel()
		// The per-phase calls below must not stack a second timeout.
		opts.Deadline = 0
	}
	var dm *DistanceModel
	var err error
	if opts.Mode == ModeSim {
		dm, err = ComputeDistancesByProfiling(prog, cfg.LineSize)
	} else {
		dm, err = ComputeDistancesContext(ctx, prog, cfg.LineSize, opts)
	}
	if err != nil {
		return nil, err
	}
	res, err := dm.CountMissesContext(ctx, cfg)
	if err != nil {
		return nil, err
	}
	res.Stats.TotalTime = time.Since(start)
	return res, nil
}

// totalAccesses counts the dynamic memory accesses of the program (the
// length of its trace) symbolically, together with the per-statement
// instance counts (the bounded tier caps a degraded statement's capacity
// misses by its instance count). The counts are deliberately unbudgeted:
// iteration domains are the cheap denominators of the analysis, and every
// certified bound of the bounded tier is anchored on them.
func totalAccesses(info *scop.PolyInfo) (int64, map[string]int64, error) {
	var total int64
	perStmt := make(map[string]int64, len(info.Statements))
	for _, ps := range info.Statements {
		n, err := counting.CountSet(ps.Domain)
		if err != nil {
			// Fall back to enumeration of the iteration domain.
			n, err = ps.Domain.CountByScan()
			if err != nil {
				return 0, nil, err
			}
		}
		perStmt[ps.Space.Name] += n
		total += n
	}
	return total, perStmt, nil
}

// StatementDistance pairs a statement with the piecewise quasi-polynomial
// giving the backward stack distance of each of its accesses.
type StatementDistance struct {
	Statement string
	// Distance maps every point of the statement instance space (loop
	// variables plus the access dimension) that has a previous access to the
	// same cache line to its stack distance; instances without previous
	// access (compulsory misses) are outside all pieces.
	Distance qpoly.PwQPoly
}

// Reference holds the exact miss counts obtained by replaying the trace,
// with the same semantics the model uses: every level is a fully associative
// LRU cache observing the full access stream.
type Reference struct {
	TotalAccesses    int64
	CompulsoryMisses int64
	// TotalMisses[i] is the number of misses of a fully associative LRU
	// cache with capacity cfg.CacheSizes[i].
	TotalMisses []int64
}

// SimulateReference computes the exact reference counts for the model: the
// trace is replayed with the padded array layout the model assumes and the
// stack distance profile yields the misses of every configured cache size.
// It is the ground truth the model is validated against in the tests.
func SimulateReference(prog *scop.Program, cfg Config) (Reference, error) {
	layout := scop.NewLayout(prog, scop.LayoutPadded, cfg.LineSize)
	cp, err := scop.Compile(prog, layout)
	if err != nil {
		return Reference{}, err
	}
	profile := reusedist.ProfileProgram(cp, cfg.LineSize)
	ref := Reference{TotalAccesses: profile.Accesses, CompulsoryMisses: profile.Compulsory}
	for _, size := range cfg.CacheSizes {
		ref.TotalMisses = append(ref.TotalMisses, profile.MissesForCapacity(size/cfg.LineSize))
	}
	return ref, nil
}

// DetailedSimulation runs the trace-driven simulator (Dinero stand-in) on
// the natural (unpadded) array layout with the given hierarchy; it is used
// by the experiment harness for the set-associative and "measured"
// configurations.
func DetailedSimulation(prog *scop.Program, simCfg cachesim.Config) (cachesim.Result, error) {
	layout := scop.NewLayout(prog, scop.LayoutNatural, simCfg.LineSize)
	cp, err := scop.Compile(prog, layout)
	if err != nil {
		return cachesim.Result{}, err
	}
	return cachesim.Simulate(cp, simCfg)
}
