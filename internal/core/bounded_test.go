package core

import (
	"context"
	"runtime"
	"testing"
	"time"

	"haystack/internal/budget"
	"haystack/internal/polybench"
)

// TestBoundedSandwichAllKernels forces the bounded tier on every registered
// PolyBench kernel with a one-cost-unit budget — small enough that every
// symbolic counting operation degrades — and checks the certified sandwich
// against the exact reference simulation: for every cache level the interval
// bounds must contain the exact counts (Lo <= exact <= Hi), and the reported
// per-level bound widths must match the intervals. This is the soundness
// guarantee of the degradation ladder: no budget, however hostile, may move
// the exact answer outside the certified bounds.
func TestBoundedSandwichAllKernels(t *testing.T) {
	cfg := DefaultConfig()
	opts := DefaultOptions()
	opts.Mode = ModeBounded
	opts.Budget = 1
	for _, k := range polybench.Kernels() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			// The lexmax half of the distance phase still runs at full cost
			// in bounded mode; only the counting side degrades. Budget like
			// the exact conformance tier.
			requireBudget(t, 2*miniEstimate(k.Name))
			prog := k.Build(polybench.Mini)
			res, err := Analyze(prog, cfg, opts)
			if err != nil {
				t.Fatalf("bounded Analyze: %v", err)
			}
			ref, err := SimulateReference(prog, cfg)
			if err != nil {
				t.Fatalf("SimulateReference: %v", err)
			}
			if res.UsedTraceFallback {
				t.Fatalf("bounded mode must not fall back to trace profiling (%s)", res.FallbackReason)
			}
			if res.TotalAccesses != ref.TotalAccesses {
				t.Errorf("total accesses: model %d, reference %d", res.TotalAccesses, ref.TotalAccesses)
			}
			if !res.CompulsoryBounds.Contains(ref.CompulsoryMisses) {
				t.Errorf("compulsory bounds %v do not contain exact %d", res.CompulsoryBounds, ref.CompulsoryMisses)
			}
			degraded := !res.CompulsoryBounds.IsExact()
			for l, lvl := range res.Levels {
				refCap := ref.TotalMisses[l] - ref.CompulsoryMisses
				if !lvl.CapacityMissBounds.Contains(refCap) {
					t.Errorf("L%d capacity bounds %v do not contain exact %d", l+1, lvl.CapacityMissBounds, refCap)
				}
				if !lvl.TotalMissBounds.Contains(ref.TotalMisses[l]) {
					t.Errorf("L%d total bounds %v do not contain exact %d", l+1, lvl.TotalMissBounds, ref.TotalMisses[l])
				}
				if got, want := res.Stats.BoundWidth[l], lvl.TotalMissBounds.Width(); got != want {
					t.Errorf("L%d Stats.BoundWidth %d, interval width %d", l+1, got, want)
				}
				if lvl.TotalMissBounds.Width() > 0 {
					degraded = true
				}
			}
			if degraded && res.Tier != TierBounded {
				t.Errorf("non-zero bound widths but tier %s (want %s)", res.Tier, TierBounded)
			}
			if degraded && res.FallbackReason == "" {
				t.Error("degraded result carries no provenance (FallbackReason empty)")
			}
		})
	}
}

// TestBoundedAmpleBudgetIsExact checks the other end of the ladder: in
// bounded mode with an ample (unlimited) budget nothing degrades, the tier
// stays exact, every bound width is zero, and the counts are bit-identical
// to a default exact-mode analysis.
func TestBoundedAmpleBudgetIsExact(t *testing.T) {
	cfg := DefaultConfig()
	for _, name := range []string{"gemm", "trmm"} {
		name := name
		t.Run(name, func(t *testing.T) {
			requireBudget(t, 3*miniEstimate(name))
			k, ok := polybench.ByName(name)
			if !ok {
				t.Fatalf("unknown kernel %q", name)
			}
			prog := k.Build(polybench.Mini)
			exact, err := Analyze(prog, cfg, DefaultOptions())
			if err != nil {
				t.Fatalf("exact Analyze: %v", err)
			}
			opts := DefaultOptions()
			opts.Mode = ModeBounded
			res, err := Analyze(prog, cfg, opts)
			if err != nil {
				t.Fatalf("bounded Analyze: %v", err)
			}
			if res.Tier != TierExact {
				t.Errorf("tier %s, want %s (ample budget must not degrade)", res.Tier, TierExact)
			}
			if !res.CompulsoryBounds.IsExact() || res.CompulsoryBounds.Lo != exact.CompulsoryMisses {
				t.Errorf("compulsory bounds %v, want exact %d", res.CompulsoryBounds, exact.CompulsoryMisses)
			}
			for l, lvl := range res.Levels {
				want := exact.Levels[l]
				if lvl.TotalMisses != want.TotalMisses || lvl.CapacityMisses != want.CapacityMisses {
					t.Errorf("L%d: bounded mode %d/%d misses, exact mode %d/%d",
						l+1, lvl.CapacityMisses, lvl.TotalMisses, want.CapacityMisses, want.TotalMisses)
				}
				if w := lvl.TotalMissBounds.Width(); w != 0 {
					t.Errorf("L%d: bound width %d under ample budget, want 0", l+1, w)
				}
				if res.Stats.BoundWidth[l] != 0 {
					t.Errorf("L%d: Stats.BoundWidth %d under ample budget, want 0", l+1, res.Stats.BoundWidth[l])
				}
			}
		})
	}
}

// TestBoundedAdiNoTraceFallback is the acceptance check for the kernel that
// motivated the bounded tier: adi's previous-access lexmax leaves the
// supported fragment, so exact mode answers it from the trace profile. In
// bounded mode the model must answer symbolically — no trace fallback — with
// a certified interval that contains the exact counts and an exact
// compulsory count (the compulsory phase is unaffected by the lexmax
// failure).
func TestBoundedAdiNoTraceFallback(t *testing.T) {
	requireBudget(t, 3*miniEstimate("adi"))
	k, ok := polybench.ByName("adi")
	if !ok {
		t.Fatal("adi kernel not registered")
	}
	cfg := DefaultConfig()
	prog := k.Build(polybench.Mini)
	opts := DefaultOptions()
	opts.Mode = ModeBounded
	res, err := Analyze(prog, cfg, opts)
	if err != nil {
		t.Fatalf("bounded Analyze: %v", err)
	}
	if res.UsedTraceFallback {
		t.Fatalf("bounded mode fell back to trace profiling (%s)", res.FallbackReason)
	}
	if res.Tier != TierBounded {
		t.Errorf("tier %s, want %s", res.Tier, TierBounded)
	}
	if res.FallbackReason == "" {
		t.Error("degradation provenance missing (FallbackReason empty)")
	}
	ref, err := SimulateReference(prog, cfg)
	if err != nil {
		t.Fatalf("SimulateReference: %v", err)
	}
	if !res.CompulsoryBounds.IsExact() || res.CompulsoryBounds.Lo != ref.CompulsoryMisses {
		t.Errorf("compulsory bounds %v, want exact %d", res.CompulsoryBounds, ref.CompulsoryMisses)
	}
	for l, lvl := range res.Levels {
		if !lvl.TotalMissBounds.Contains(ref.TotalMisses[l]) {
			t.Errorf("L%d total bounds %v do not contain exact %d", l+1, lvl.TotalMissBounds, ref.TotalMisses[l])
		}
	}
}

// TestBoundedHugeGemmNoOverflow pins the int64 overflow fixes of the
// counting layer: at a 2^20 problem size the distance polynomials carry
// coefficients around n^2, and the cross products of the symbolic counter
// (residue periods, bound-pair differences, RangeOnBox term products) leave
// int64. These used to wrap silently or panic; they must now degrade to the
// bounded tier via the checked-multiply helpers, so a huge-parameter gemm
// analysis completes with certified, sane intervals. The budget is
// unlimited on purpose — only the overflow path may degrade here.
func TestBoundedHugeGemmNoOverflow(t *testing.T) {
	const n = int64(1) << 20
	prog := gemm(n)
	opts := DefaultOptions()
	opts.Mode = ModeBounded
	opts.TraceFallback = false
	cfg := Config{LineSize: 64, CacheSizes: []int64{32 * 1024, 1 << 20}}
	res, err := Analyze(prog, cfg, opts)
	if err != nil {
		t.Fatalf("bounded Analyze of gemm(2^20): %v", err)
	}
	wantAccesses := 4*n*n*n + 2*n*n
	if res.TotalAccesses != wantAccesses {
		t.Errorf("total accesses %d, want %d", res.TotalAccesses, wantAccesses)
	}
	if res.UsedTraceFallback {
		t.Fatalf("huge gemm fell back to trace profiling (%s)", res.FallbackReason)
	}
	if !res.CompulsoryBounds.Contains(res.CompulsoryMisses) ||
		res.CompulsoryBounds.Lo < 0 || res.CompulsoryBounds.Hi > res.TotalAccesses {
		t.Errorf("compulsory bounds %v invalid (point %d, accesses %d)",
			res.CompulsoryBounds, res.CompulsoryMisses, res.TotalAccesses)
	}
	for l, lvl := range res.Levels {
		b := lvl.CapacityMissBounds
		if b.Lo < 0 || b.Hi < b.Lo || b.Hi > res.TotalAccesses {
			t.Errorf("L%d capacity bounds %v invalid (accesses %d)", l+1, b, res.TotalAccesses)
		}
		if lvl.CapacityMisses < 0 || lvl.CapacityMisses != b.Hi {
			t.Errorf("L%d capacity point %d does not match bound hi %v", l+1, lvl.CapacityMisses, b)
		}
		tb := lvl.TotalMissBounds
		if tb.Lo < res.CompulsoryBounds.Lo || tb.Hi > res.TotalAccesses || tb.Hi < tb.Lo {
			t.Errorf("L%d total bounds %v invalid (compulsory %v, accesses %d)",
				l+1, tb, res.CompulsoryBounds, res.TotalAccesses)
		}
		for stmt, v := range lvl.PerStatementCapacity {
			if v < 0 {
				t.Errorf("L%d per-statement capacity of %s negative: %d", l+1, stmt, v)
			}
		}
	}
}

// waitGoroutines polls until the goroutine count drops back to at most
// base+slack or the timeout elapses, returning the last observed count.
// Analysis workers exit asynchronously after a cancellation is returned, so
// the count needs a grace period before it is meaningful.
func waitGoroutines(base, slack int, timeout time.Duration) int {
	deadline := time.Now().Add(timeout)
	n := runtime.NumGoroutine()
	for n > base+slack && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
		n = runtime.NumGoroutine()
	}
	return n
}

// TestCancellationMidAnalysis cancels an expensive analysis shortly after it
// starts — once via an explicit context cancel, once via Options.Deadline —
// and requires a typed cancellation error well within two seconds and no
// leaked worker goroutines. This is the third rung of the robustness ladder:
// full cancellation, with panics in workers recovered as typed errors (see
// parwork) rather than tearing the process down.
func TestCancellationMidAnalysis(t *testing.T) {
	requireBudget(t, 15*time.Second)
	k, ok := polybench.ByName("heat-3d")
	if !ok {
		t.Fatal("heat-3d kernel not registered")
	}
	cfg := DefaultConfig()
	prog := k.Build(polybench.Mini)

	run := func(t *testing.T, ctx context.Context, opts Options) {
		t.Helper()
		base := runtime.NumGoroutine()
		start := time.Now()
		res, err := AnalyzeContext(ctx, prog, cfg, opts)
		elapsed := time.Since(start)
		if err == nil {
			t.Fatalf("analysis completed (tier %s) despite cancellation", res.Tier)
		}
		if !budget.IsCancellation(err) {
			t.Fatalf("error is not a typed cancellation: %v", err)
		}
		if elapsed > 2*time.Second {
			t.Errorf("cancellation took %v, want under 2s", elapsed)
		}
		if n := waitGoroutines(base, 2, 2*time.Second); n > base+2 {
			t.Errorf("goroutine leak after cancellation: %d running, baseline %d", n, base)
		}
	}

	t.Run("context-cancel", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(150 * time.Millisecond)
			cancel()
		}()
		defer cancel()
		run(t, ctx, DefaultOptions())
	})
	t.Run("options-deadline", func(t *testing.T) {
		opts := DefaultOptions()
		opts.Deadline = 150 * time.Millisecond
		run(t, context.Background(), opts)
	})
}
