package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"haystack/internal/budget"
	"haystack/internal/counting"
	"haystack/internal/lexmin"
	"haystack/internal/presburger"
	"haystack/internal/qpoly"
	"haystack/internal/scop"
)

// ErrNonParametric reports that a pipeline stage cannot handle a piece of a
// parametric analysis symbolically in the program parameters. Stages return
// it (wrapped with context) instead of silently instantiating the parameters
// at some concrete size — partial parametric coverage is acceptable, silent
// wrong or size-specific answers are not.
var ErrNonParametric = errors.New("core: outside the parametric fragment")

// nonParametric wraps an underlying error as ErrNonParametric with context.
func nonParametric(stage string, err error) error {
	return fmt.Errorf("%w: %s: %v", ErrNonParametric, stage, err)
}

// maxClassifyDepth bounds the floor-elimination recursion of the capacity
// piece classification (the concrete engine uses the same rewrites without an
// explicit bound; the parametric classifier prefers a residual piece over an
// unbounded rewrite chain).
const maxClassifyDepth = 64

// parametricCountBudget caps the system fan-out of the one-time parametric
// count of a single capacity piece (counting.CardBasicSetBudgeted). Pieces
// that exceed it are demoted to per-evaluation residual counting — exact
// either way, the budget only trades one-time symbolic cost against
// per-evaluation cost. The value is deterministic (no wall-clock), so the
// parametric/residual split is reproducible across machines.
const parametricCountBudget = 3000

// stmtPiece is one piece of a statement's stack distance quasi-polynomial,
// tagged with the owning statement for per-statement attribution.
type stmtPiece struct {
	stmt   string
	domain presburger.BasicSet
	poly   qpoly.QPoly
}

// missPolys holds the parametric capacity miss counts for one cache capacity
// (in lines): per-statement piecewise quasi-polynomial sums over the
// parameter space, plus the affine pieces whose parametric count failed at
// this capacity and therefore join the residual pieces at evaluation time.
// The counts are qpoly.PwSum rather than disjoint PwQPoly: the per-piece
// cardinalities overlap heavily in the parameter space, and keeping them as
// summands makes accumulation O(1) instead of quadratic.
type missPolys struct {
	perStmt map[string]qpoly.PwSum
	extra   []stmtPiece
}

// ParametricModel is the fully size-independent form of the analysis: the
// stack distance quasi-polynomials, the total access count, and the
// compulsory miss count of a parametric program, all symbolic in the program
// parameters. One model answers queries for every problem size:
//
//   - Eval instantiates the model at a parameter binding and returns the same
//     Result a concrete Analyze of the instantiated program would produce —
//     in microseconds-to-milliseconds instead of a fresh symbolic analysis.
//   - Bind produces a concrete DistanceModel (the two-phase API) for a
//     binding, sharing the already-computed distances.
//
// Capacity misses need one extra ingredient: the set of instances whose
// distance exceeds a capacity is a polyhedron only where the distance
// polynomial is affine. Affine pieces (the vast majority, Table 1 of the
// paper) are counted symbolically in the parameters once per capacity and
// memoized; the remaining residual pieces are counted per evaluation after
// instantiation (see ResidualPieces). Compulsory misses and total accesses
// are always fully parametric.
//
// A ParametricModel is safe for concurrent Eval and Bind calls.
type ParametricModel struct {
	// Kernel is the name of the analyzed program.
	Kernel string
	// LineSize is the cache line size in bytes the model was built for.
	LineSize int64
	// Params are the program parameters in binding order.
	Params []string
	// TotalAccesses maps every parameter value to the number of dynamic
	// memory accesses of the program.
	TotalAccesses qpoly.PwQPoly
	// CompulsoryMisses maps every parameter value to the number of distinct
	// cache lines the program touches.
	CompulsoryMisses qpoly.PwQPoly

	prog              *scop.Program
	opts              Options
	paramSpace        presburger.Space
	distances         []StatementDistance
	perStmtCompulsory map[string]qpoly.PwQPoly // nil when attribution failed
	baseStats         Stats
	computeTime       time.Duration

	// Capacity-independent classification of the distance pieces: affine
	// pieces are countable parametrically, residual pieces are instantiated
	// and counted per evaluation.
	affine   []stmtPiece
	residual []stmtPiece

	mu        sync.Mutex
	missCache map[int64]*missPolys // capacity in lines -> parametric counts
}

// ComputeParametricModel runs the analysis of a parametric program once for
// all problem sizes: the stack distances, the total access count, and the
// compulsory misses are derived symbolically in the program parameters
// (scop.Program.Params). The returned model instantiates results for
// arbitrary parameter bindings via Eval and Bind.
//
// Programs whose symbolic pipeline leaves the supported parametric fragment
// return an error wrapping ErrNonParametric; there is no trace fallback for
// parametric programs (a trace requires a concrete size).
func ComputeParametricModel(prog *scop.Program, lineSize int64, opts Options) (*ParametricModel, error) {
	return ComputeParametricModelContext(context.Background(), prog, lineSize, opts)
}

// ComputeParametricModelContext is ComputeParametricModel observing ctx (and
// Options.Deadline): the model construction aborts with the context error
// promptly after cancellation.
func ComputeParametricModelContext(ctx context.Context, prog *scop.Program, lineSize int64, opts Options) (*ParametricModel, error) {
	start := time.Now()
	if lineSize <= 0 {
		return nil, fmt.Errorf("core: line size must be positive")
	}
	if opts.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.Deadline)
		defer cancel()
		opts.Deadline = 0
	}
	meter := budget.New(ctx, 0)
	if !prog.IsParametric() {
		return nil, fmt.Errorf("core: program %s has no parameters; use ComputeDistances", prog.Name)
	}
	if err := preflight(prog, opts); err != nil {
		return nil, err
	}
	info, err := scop.BuildPoly(prog)
	if err != nil {
		return nil, err
	}
	nP := info.NParam()
	pm := &ParametricModel{
		Kernel:     prog.Name,
		LineSize:   lineSize,
		Params:     append([]string(nil), info.Params...),
		prog:       prog,
		opts:       opts,
		paramSpace: info.ParamSpace(),
		missCache:  map[int64]*missPolys{},
	}
	// Options.Exec is call scoped; the model outlives this call and must not
	// retain the caller's executor.
	pm.opts.Exec = nil
	pm.baseStats.NonAffineByAffineDims = map[int]int{}

	total := qpoly.ZeroPw(pm.paramSpace)
	for _, ps := range info.Statements {
		card, err := counting.CardSet(ps.Domain, nP, pm.paramSpace)
		if err != nil {
			return nil, nonParametric(fmt.Sprintf("counting accesses of %s", ps.Name), err)
		}
		total = total.Add(card)
	}
	pm.TotalAccesses = total

	tStack := time.Now()
	// Frontier and coalesce statistics mirror computeSymbolic (twophase.go):
	// the parametric distance phase runs the same coalescing-heavy pipeline,
	// so its Results should report the same observability counters. The
	// process-wide counter delta has the same caveat as there: under
	// concurrent model construction it can include hits of other models.
	coalesceBase := presburger.CoalesceCountersSnapshot()
	var fs frontierStats
	ex, release := opts.executor()
	distances, _, _, err := computeStackDistances(ctx, info, lineSize, ex, &fs, meter, false)
	release()
	if err != nil {
		if budget.IsCancellation(err) {
			return nil, err
		}
		return nil, nonParametric("stack distances", err)
	}
	pm.distances = distances
	pm.baseStats.StackDistanceTime = time.Since(tStack)
	pm.baseStats.PeakBasicMaps = int(fs.peak.Load())
	pm.baseStats.BasicMapsBeforeCoalesce = fs.before.Load()
	pm.baseStats.BasicMapsAfterCoalesce = fs.after.Load()
	hits := presburger.CoalesceCountersSnapshot().Sub(coalesceBase)
	pm.baseStats.CoalesceDedup = hits.Dedup
	pm.baseStats.CoalesceSubsumed = hits.Subsumed
	pm.baseStats.CoalesceAdjacent = hits.Adjacent
	pm.baseStats.CoalesceRedundantCons = hits.RedundantConstraints
	for _, d := range distances {
		pm.baseStats.DistancePieces += d.Distance.NumPieces()
	}

	tComp := time.Now()
	A := info.LineAccessMap(lineSize)
	compulsory, err := counting.CardSetRanges(A, nP, pm.paramSpace)
	if err != nil {
		return nil, nonParametric("counting compulsory misses", err)
	}
	pm.CompulsoryMisses = compulsory
	// Attribution is best effort, exactly like in the concrete pipeline:
	// totals stay exact even when the per-statement split is unavailable.
	if perStmt, err := attributeCompulsoryParametric(info, lineSize, nP, pm.paramSpace); err == nil {
		pm.perStmtCompulsory = perStmt
	}
	pm.baseStats.CompulsoryTime = time.Since(tComp)

	pm.classify()
	pm.computeTime = time.Since(start)
	return pm, nil
}

// classify splits the distance pieces into parametrically countable affine
// pieces and residual pieces, reusing the floor elimination rewrites of the
// concrete engine (equalization and rasterization are pure domain splits and
// carry parameter dimensions through unchanged). Partial and full
// enumeration are not available parametrically — their pieces become
// residual.
func (pm *ParametricModel) classify() {
	for _, sd := range pm.distances {
		for _, piece := range sd.Distance.Pieces {
			pm.classifyPiece(sd.Statement, piece.Domain, piece.Poly, 0)
		}
	}
}

func (pm *ParametricModel) classifyPiece(stmt string, domain presburger.BasicSet, poly qpoly.QPoly, depth int) {
	if poly.Degree() <= 1 {
		// Trim the domain once here rather than at every instantiation:
		// redundant parallel bounds and orphaned divs multiply the fan-out
		// of every later count (each lower/upper bound pair of a summed
		// dimension becomes a piece, and any div-referenced dimension is
		// residue-split).
		if dom, ok := domain.RemoveRedundancies(); ok {
			pm.affine = append(pm.affine, stmtPiece{stmt: stmt, domain: dom, poly: poly})
		}
		return
	}
	if depth < maxClassifyDepth {
		if pm.opts.Equalization {
			if pieces, ok := equalize(domain, poly); ok {
				for _, p := range pieces {
					pm.classifyPiece(stmt, p.domain, p.poly, depth+1)
				}
				return
			}
		}
		if pm.opts.Rasterization {
			if pieces, ok := rasterize(domain, poly); ok {
				for _, p := range pieces {
					pm.classifyPiece(stmt, p.domain, p.poly, depth+1)
				}
				return
			}
		}
	}
	if dom, ok := domain.RemoveRedundancies(); ok {
		pm.residual = append(pm.residual, stmtPiece{stmt: stmt, domain: dom, poly: poly})
	}
}

// ParametricPieces returns the number of distance pieces (after floor
// elimination splits) whose capacity misses are counted symbolically in the
// parameters.
func (pm *ParametricModel) ParametricPieces() int { return len(pm.affine) }

// ResidualPieces returns the number of distance pieces that must be
// instantiated and counted per evaluation (non-affine distance polynomials,
// e.g. products of a parameter and a loop variable, whose miss sets are not
// polyhedra in the parameters).
func (pm *ParametricModel) ResidualPieces() int { return len(pm.residual) }

// DistancePieces returns the number of pieces of the parametric stack
// distance quasi-polynomials.
func (pm *ParametricModel) DistancePieces() int { return pm.baseStats.DistancePieces }

// Distances returns the per-statement parametric stack distance
// quasi-polynomials. The slice is shared; callers must not modify it.
func (pm *ParametricModel) Distances() []StatementDistance { return pm.distances }

// ComputeTime returns the wall-clock time ComputeParametricModel spent
// building the model (the cost amortized across all evaluations).
func (pm *ParametricModel) ComputeTime() time.Duration { return pm.computeTime }

// CapacityMissPoly returns the parametric capacity miss count for one cache
// capacity in bytes, as a sum of piecewise quasi-polynomials over the
// parameter space, together with a flag reporting whether the polynomial is
// complete: when the model has residual pieces the polynomial covers only
// the parametric pieces and Eval adds the residual counts per size.
func (pm *ParametricModel) CapacityMissPoly(capacityBytes int64) (qpoly.PwSum, bool) {
	mp := pm.missPolysFor(capacityBytes / pm.LineSize)
	total := qpoly.ZeroSum(pm.paramSpace)
	names := make([]string, 0, len(mp.perStmt))
	for name := range mp.perStmt {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		total = total.AddSum(mp.perStmt[name])
	}
	return total, len(pm.residual) == 0 && len(mp.extra) == 0
}

// missPolysFor returns (computing and memoizing on first use) the parametric
// capacity miss counts for one capacity in lines.
func (pm *ParametricModel) missPolysFor(capacityLines int64) *missPolys {
	pm.mu.Lock()
	defer pm.mu.Unlock()
	if mp, ok := pm.missCache[capacityLines]; ok {
		return mp
	}
	mp := &missPolys{perStmt: map[string]qpoly.PwSum{}}
	for _, cp := range pm.affine {
		ms, err := affineMissSet(cp.domain, cp.poly, capacityLines)
		if err != nil {
			mp.extra = append(mp.extra, cp)
			continue
		}
		// Redundant bounds multiply the fan-out of the parametric count
		// (every lower/upper bound pair of an eliminated dimension becomes a
		// piece), so trim them first; a detectably empty miss set contributes
		// nothing.
		ms, ok := ms.RemoveRedundancies()
		if !ok {
			continue
		}
		card, err := counting.CardBasicSetSummands(ms, len(pm.Params), pm.paramSpace,
			budget.LimitOp("parametric piece count", parametricCountBudget))
		if err != nil {
			mp.extra = append(mp.extra, cp)
			continue
		}
		cur, ok := mp.perStmt[cp.stmt]
		if !ok {
			cur = qpoly.ZeroSum(pm.paramSpace)
		}
		// The accumulator is uniquely owned until it is published in the
		// cache, so append in place instead of paying AddSum's defensive
		// copy per piece.
		cur.Terms = append(cur.Terms, card.Terms...)
		mp.perStmt[cp.stmt] = cur
	}
	pm.missCache[capacityLines] = mp
	return mp
}

// paramPoint resolves a parameter binding into the parameter-space point, in
// parameter order. Validation (completeness, unknown names, the context
// constraints) is delegated to the program's shared binding checker.
func (pm *ParametricModel) paramPoint(bindings map[string]int64) ([]int64, error) {
	if err := pm.prog.CheckBindings(bindings); err != nil {
		return nil, err
	}
	point := make([]int64, len(pm.Params))
	for i, name := range pm.Params {
		point[i] = bindings[name]
	}
	return point, nil
}

// bindPiece instantiates a piece domain and polynomial at a parameter
// point, stripping the parameter dimensions entirely: the domain folds them
// by direct substitution (bounds that involved parameters become constant
// bounds, deduplicated to the tightest by simplification) and the
// polynomial binds-and-renumbers in one pass. Classification already
// redundancy-trimmed the stored pieces, so instantiation is a cheap linear
// rewrite. Returns ok=false when the bound domain is detectably empty.
func bindPiece(domain presburger.BasicSet, poly qpoly.QPoly, point []int64) (presburger.BasicSet, qpoly.QPoly, bool) {
	dom, ok := domain.SubstituteLeadingDims(point)
	if !ok {
		return dom, poly, false
	}
	return dom, poly.BindLeadingVars(point), true
}

// instantiatePiece is bindPiece for a classified capacity piece.
func instantiatePiece(p stmtPiece, point []int64) (presburger.BasicSet, qpoly.QPoly, bool) {
	return bindPiece(p.domain, p.poly, point)
}

// Eval instantiates the model at a parameter binding against a cache
// hierarchy and returns the Result a concrete Analyze of the instantiated
// program would produce (bit-identical counts; the Stats describe the
// parametric pipeline instead). Total accesses and compulsory misses are
// polynomial evaluations; capacity misses evaluate the per-capacity
// parametric polynomials (computed once per capacity across all Eval calls)
// plus a concrete count of the residual pieces.
func (pm *ParametricModel) Eval(cfg Config, bindings map[string]int64) (*Result, error) {
	start := time.Now()
	if cfg.LineSize != pm.LineSize {
		return nil, fmt.Errorf("core: parametric model was computed for line size %d, not %d", pm.LineSize, cfg.LineSize)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.HasSetAssoc() {
		// A parametric program has no fixed layout, so there is no set-index
		// map to partition the distances with. Bind the model first: the
		// instantiated DistanceModel answers set-associative queries.
		return nil, fmt.Errorf("core: parametric models answer fully associative hierarchies only; Bind the parameters and use the distance model for set-associative counting")
	}
	point, err := pm.paramPoint(bindings)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Kernel:           pm.Kernel,
		TotalAccesses:    pm.TotalAccesses.EvalInt(point),
		CompulsoryMisses: pm.CompulsoryMisses.EvalInt(point),
		Stats:            pm.baseStats.clone(),
	}
	if pm.perStmtCompulsory != nil {
		res.PerStatementCompulsory = evalCounts(pm.perStmtCompulsory, point)
	}

	tCap := time.Now()
	lines := make([]int64, len(cfg.CacheSizes))
	for i, size := range cfg.CacheSizes {
		lines[i] = size / cfg.LineSize
	}
	totals := make([]int64, len(lines))
	perStmt := make([]map[string]int64, len(lines))
	for l := range perStmt {
		perStmt[l] = map[string]int64{}
		for _, sd := range pm.distances {
			perStmt[l][sd.Statement] = 0
		}
	}
	// Parametric pieces: one polynomial evaluation per capacity.
	polys := make([]*missPolys, len(lines))
	for l, capacity := range lines {
		polys[l] = pm.missPolysFor(capacity)
		for stmt, poly := range polys[l].perStmt {
			n := poly.EvalInt(point)
			perStmt[l][stmt] += n
			totals[l] += n
		}
	}
	// The parametric polynomial evaluations above are exact; piece results
	// below accumulate onto these width-zero intervals (degraded pieces widen
	// them under ModeBounded).
	bounds := make([]counting.Interval, len(lines))
	for l := range bounds {
		bounds[l] = counting.Exact(totals[l])
	}
	var degradedReasons []string
	bounded := pm.opts.Mode == ModeBounded
	// Residual pieces: instantiate once, classify against all capacities in a
	// single pass with the concrete counting engine.
	countOpts := pm.opts
	counter := newCapacityCounter(countOpts, &res.Stats)
	counter.meter = budget.New(context.Background(), pm.opts.Budget)
	countConcrete := func(stmt string, dom presburger.BasicSet, poly qpoly.QPoly, caps []int64) ([]int64, []counting.Interval, error) {
		stage := "residual piece of " + stmt
		op := counter.meter.Op(stage)
		counts, err := counter.countPiece(dom, poly, caps, false, op, stage)
		if err == nil {
			return counts, nil, nil
		}
		if !bounded || budget.IsCancellation(err) {
			return nil, nil, fmt.Errorf("core: counting residual piece of %s: %w", stmt, err)
		}
		ivs, berr := counter.boundPiece(dom, poly, caps, op)
		if berr != nil {
			return nil, nil, fmt.Errorf("core: bounding residual piece of %s: %w", stmt, berr)
		}
		degradedReasons = append(degradedReasons, fmt.Sprintf("%s: residual piece bounded (%v)", stmt, err))
		return nil, ivs, nil
	}
	for _, rp := range pm.residual {
		dom, poly, ok := instantiatePiece(rp, point)
		if !ok || dom.DefinitelyEmpty() {
			continue
		}
		counts, ivs, err := countConcrete(rp.stmt, dom, poly, lines)
		if err != nil {
			return nil, err
		}
		if counts != nil {
			for l, n := range counts {
				perStmt[l][rp.stmt] += n
				totals[l] += n
				bounds[l] = bounds[l].Add(counting.Exact(n))
			}
			continue
		}
		for l, iv := range ivs {
			perStmt[l][rp.stmt] = satAddCount(perStmt[l][rp.stmt], iv.Hi)
			totals[l] = satAddCount(totals[l], iv.Hi)
			bounds[l] = bounds[l].Add(iv)
		}
	}
	// Affine pieces whose parametric count failed for a specific capacity.
	for l, mp := range polys {
		for _, rp := range mp.extra {
			dom, poly, ok := instantiatePiece(rp, point)
			if !ok || dom.DefinitelyEmpty() {
				continue
			}
			counts, ivs, err := countConcrete(rp.stmt, dom, poly, lines[l:l+1])
			if err != nil {
				return nil, err
			}
			if counts != nil {
				perStmt[l][rp.stmt] += counts[0]
				totals[l] += counts[0]
				bounds[l] = bounds[l].Add(counting.Exact(counts[0]))
				continue
			}
			perStmt[l][rp.stmt] = satAddCount(perStmt[l][rp.stmt], ivs[0].Hi)
			totals[l] = satAddCount(totals[l], ivs[0].Hi)
			bounds[l] = bounds[l].Add(ivs[0])
		}
	}
	for i, size := range cfg.CacheSizes {
		capBounds := bounds[i]
		if !capBounds.IsExact() {
			// Certified cap: capacity misses are repeat accesses, so they
			// cannot exceed the non-compulsory access count. Exact counts are
			// left untouched.
			capBounds = capBounds.ClampHi(res.TotalAccesses - res.CompulsoryMisses)
		}
		total := capBounds.AddConst(res.CompulsoryMisses)
		res.Levels = append(res.Levels, LevelResult{
			CacheBytes:           size,
			CapacityMisses:       capBounds.Hi,
			TotalMisses:          total.Hi,
			PerStatementCapacity: perStmt[i],
			CapacityMissBounds:   capBounds,
			TotalMissBounds:      total,
		})
	}
	if len(degradedReasons) > 0 {
		res.Tier = TierBounded
		res.FallbackReason = degradationSummary(degradedReasons, counting.Exact(res.CompulsoryMisses))
	}
	res.finalizeBounds()
	res.Stats.BudgetUsed += counter.meter.Total()
	res.Stats.CapacityTime = time.Since(tCap)
	res.Stats.TotalTime = time.Since(start)
	return res, nil
}

// Bind instantiates the model at a parameter binding into a concrete
// DistanceModel: the parametric distances are fixed at the binding (no
// symbolic recomputation), so the result answers CountMisses queries for any
// hierarchy with the model's line size exactly like
// ComputeDistances(prog.Instantiate(bindings), ...) — without paying the
// distance phase again.
func (pm *ParametricModel) Bind(bindings map[string]int64) (*DistanceModel, error) {
	start := time.Now()
	point, err := pm.paramPoint(bindings)
	if err != nil {
		return nil, err
	}
	inst, err := pm.prog.Instantiate(bindings)
	if err != nil {
		return nil, err
	}
	dm := &DistanceModel{Kernel: pm.Kernel, LineSize: pm.LineSize, opts: pm.opts, prog: inst}
	dm.baseStats.NonAffineByAffineDims = map[int]int{}
	dm.TotalAccesses = pm.TotalAccesses.EvalInt(point)
	dm.CompulsoryMisses = pm.CompulsoryMisses.EvalInt(point)
	dm.compulsoryBounds = counting.Exact(dm.CompulsoryMisses)
	if pm.perStmtCompulsory != nil {
		dm.perStmtCompulsory = evalCounts(pm.perStmtCompulsory, point)
	}
	for _, sd := range pm.distances {
		bound := bindPieces(sd.Distance, point)
		dm.baseStats.DistancePieces += bound.NumPieces()
		dm.distances = append(dm.distances, StatementDistance{Statement: sd.Statement, Distance: bound})
	}
	dm.computeTime = time.Since(start)
	return dm, nil
}

// bindPieces instantiates a parametric piecewise quasi-polynomial at a
// parameter point: every piece is bound and stripped of the parameter
// dimensions via bindPiece; detectably empty pieces are dropped. The result
// lives in the statement space without its leading parameter dimensions.
func bindPieces(pw qpoly.PwQPoly, point []int64) qpoly.PwQPoly {
	var out qpoly.PwQPoly
	spaceSet := false
	for _, p := range pw.Pieces {
		dom, poly, ok := bindPiece(p.Domain, p.Poly, point)
		if !ok || dom.DefinitelyEmpty() {
			continue
		}
		if !spaceSet {
			out.Space = dom.Space()
			spaceSet = true
		}
		out.Pieces = append(out.Pieces, qpoly.Piece{Domain: dom, Poly: poly})
	}
	if !spaceSet {
		// All pieces vanished at this size; keep a consistent space by
		// stripping the parameter dimensions from the parametric space.
		dims := pw.Space.Dims
		if len(point) <= len(dims) {
			dims = dims[len(point):]
		}
		out.Space = presburger.NewSpace(pw.Space.Name, dims...)
	}
	return out
}

// evalCounts evaluates a map of parametric counts at a parameter point.
func evalCounts(polys map[string]qpoly.PwQPoly, point []int64) map[string]int64 {
	out := make(map[string]int64, len(polys))
	for name, p := range polys {
		out[name] = p.EvalInt(point)
	}
	return out
}

// attributeCompulsoryParametric splits the compulsory misses by the
// statement performing the first access of every line, parametrically in the
// program parameters (the parametric analogue of attributeCompulsory).
func attributeCompulsoryParametric(info *scop.PolyInfo, lineSize int64, nParam int, paramSpace presburger.Space) (map[string]qpoly.PwQPoly, error) {
	S := info.Schedule()
	A := info.LineAccessMap(lineSize)
	lineToSched, err := A.Reverse().ApplyRange(S)
	if err != nil {
		return nil, err
	}
	out := map[string]qpoly.PwQPoly{}
	for _, m := range lineToSched.Maps() {
		first, err := lexmin.MapLexmin(simplifyMap(m, nil))
		if err != nil {
			return nil, err
		}
		firstInst, err := presburger.NewUnionMap().Add(first).ApplyRange(S.Reverse())
		if err != nil {
			return nil, err
		}
		for _, fm := range firstInst.Maps() {
			dom, err := fm.Domain()
			if err != nil {
				return nil, err
			}
			card, err := counting.CardSet(dom, nParam, paramSpace)
			if err != nil {
				return nil, err
			}
			name := fm.OutSpace().Name
			cur, ok := out[name]
			if !ok {
				cur = qpoly.ZeroPw(paramSpace)
			}
			out[name] = cur.Add(card)
		}
	}
	return out, nil
}
