package core

import (
	"context"
	"fmt"
	"sort"
	"sync/atomic"

	"haystack/internal/budget"
	"haystack/internal/counting"
	"haystack/internal/lexmin"
	"haystack/internal/parwork"
	"haystack/internal/presburger"
	"haystack/internal/qpoly"
	"haystack/internal/scop"
)

// frontierStats tracks the basic-map counts observed at the simplification
// frontiers of the stack-distance pipeline. The counters are atomics because
// the touched-line counting stage simplifies maps on the worker pool; the
// totals are deterministic for a fixed program because the set of frontier
// calls does not depend on scheduling. A nil tracker is valid and records
// nothing.
type frontierStats struct {
	peak, before, after atomic.Int64
}

func (f *frontierStats) observe(before, after int) {
	if f == nil {
		return
	}
	f.before.Add(int64(before))
	f.after.Add(int64(after))
	for {
		cur := f.peak.Load()
		if int64(before) <= cur || f.peak.CompareAndSwap(cur, int64(before)) {
			return
		}
	}
}

// ComputeStackDistances derives, for every statement of the program, the
// backward stack distance of each of its accesses as a piecewise
// quasi-polynomial over the statement instance space (section 3.1 of the
// paper).
//
// The construction follows the paper exactly:
//
//	E  = S ∘ A⁻¹ ∘ A ∘ S⁻¹            (accesses of the same cache line)
//	N  = S⁻¹ ∘ lexmin(L≺ ∩ E) ∘ S     (next access of the same line)
//	B  = S⁻¹ ∘ L⪯⁻¹ ∘ S               (instances executed before t)
//	F  = (S⁻¹ ∘ L⪯ ∘ S) ∘ N⁻¹         (instances executed after the previous access)
//	D  = |A ∘ (F ∩ B)|                (distinct lines touched in between)
func ComputeStackDistances(info *scop.PolyInfo, lineSize int64) ([]StatementDistance, error) {
	return ComputeStackDistancesWith(info, lineSize, 1)
}

// ComputeStackDistancesWith is ComputeStackDistances with the two dominant
// stages — the per-basic-map lexicographic maxima and the per-statement
// counting of touched lines — spread over the given number of worker
// goroutines. The result is bit-identical for every worker count.
func ComputeStackDistancesWith(info *scop.PolyInfo, lineSize int64, workers int) ([]StatementDistance, error) {
	ex, release := parwork.NewExec(workers)
	defer release()
	dists, _, _, err := computeStackDistances(context.Background(), info, lineSize, ex, nil, nil, false)
	return dists, err
}

// computeStackDistances is the implementation behind the public wrappers;
// the optional tracker records the basic-map counts at every simplification
// frontier for Stats reporting. The meter budgets the touched-line counts
// (nil = unlimited); ctx is observed between pipeline stages and between
// counted maps. Under bounded mode a statement whose touched-line count
// degrades is dropped from the returned distances and reported in the
// degraded map (statement -> reason) instead of failing the phase; exact
// mode keeps the legacy all-or-nothing contract and returns a nil map.
// The raw touched-line union map (instances of t to the lines accessed in
// t's reuse window) is returned alongside: restricted to one cache set's
// lines it is what the set-associative counting re-counts per set.
func computeStackDistances(ctx context.Context, info *scop.PolyInfo, lineSize int64, ex parwork.Exec, fs *frontierStats, meter *budget.Meter, bounded bool) ([]StatementDistance, map[string]string, presburger.UnionMap, error) {
	S := info.Schedule()
	A := info.LineAccessMap(lineSize)
	Sinv := S.Reverse()
	schedSpace := info.ScheduleSpace()

	// Schedule values to accessed cache lines and back.
	schedToLine, err := Sinv.ApplyRange(A)
	if err != nil {
		return nil, nil, presburger.UnionMap{}, fmt.Errorf("core: building schedule-to-line map: %w", err)
	}
	equal, err := schedToLine.ApplyRange(schedToLine.Reverse())
	if err != nil {
		return nil, nil, presburger.UnionMap{}, fmt.Errorf("core: building equal map: %w", err)
	}
	equalMap, ok := equal.Get(scop.ScheduleSpaceName, scop.ScheduleSpaceName)
	if !ok {
		return nil, nil, presburger.UnionMap{}, fmt.Errorf("core: program has no reuse at all (empty equal map)")
	}

	// Backward-in-time accesses of the same line; the lexicographically
	// largest of them is the previous access. (The paper computes the next
	// map N with a lexmin and inverts it; computing the previous map
	// N⁻¹ directly with a lexmax is equivalent — see section 3.1 — and keeps
	// every floor expression on the side of the target access, which is the
	// side that survives the following compositions.)
	if err := ctx.Err(); err != nil {
		return nil, nil, presburger.UnionMap{}, err
	}
	backwardEqual := equalMap.Intersect(presburger.LexGT(schedSpace))
	backwardEqual = simplifyMap(backwardEqual, fs)
	prevSched, err := lexmin.MapLexmaxExec(ctx, backwardEqual, ex)
	if err != nil {
		return nil, nil, presburger.UnionMap{}, fmt.Errorf("core: previous-access lexmax: %w", err)
	}
	prevSchedUnion := presburger.NewUnionMap().Add(simplifyMap(prevSched, fs))

	// Convert schedule-value relations to statement-instance relations.
	prev, err := composeAll(S, prevSchedUnion, Sinv, fs)
	if err != nil {
		return nil, nil, presburger.UnionMap{}, fmt.Errorf("core: previous map composition: %w", err)
	}
	lexLE := presburger.NewUnionMap().Add(presburger.LexLE(schedSpace))
	lexGE := presburger.NewUnionMap().Add(presburger.LexGE(schedSpace))

	backward, err := composeAll(S, lexGE, Sinv, fs)
	if err != nil {
		return nil, nil, presburger.UnionMap{}, fmt.Errorf("core: backward map: %w", err)
	}
	// forward = (S⁻¹ ∘ L⪯ ∘ S) ∘ N⁻¹: map to the previous access first, then
	// to every instance executed at or after it.
	afterPrev, err := composeAll(S, lexLE, Sinv, fs)
	if err != nil {
		return nil, nil, presburger.UnionMap{}, fmt.Errorf("core: forward map: %w", err)
	}
	forward, err := prev.ApplyRange(afterPrev)
	if err != nil {
		return nil, nil, presburger.UnionMap{}, fmt.Errorf("core: forward map composition: %w", err)
	}
	forward = simplifyUnion(forward, fs)

	if err := ctx.Err(); err != nil {
		return nil, nil, presburger.UnionMap{}, err
	}
	window := forward.Intersect(backward)
	touched, err := window.ApplyRange(A)
	if err != nil {
		return nil, nil, presburger.UnionMap{}, fmt.Errorf("core: touched lines composition: %w", err)
	}

	dists, degraded, err := countTouchedCards(ctx, info, touched, ex, fs, meter, bounded, "")
	if err != nil {
		return nil, nil, presburger.UnionMap{}, err
	}
	return dists, degraded, touched, nil
}

// countTouchedCards counts the distinct lines per statement instance of a
// touched-line union map: one piecewise quasi-polynomial per statement,
// summed over the accessed arrays. The per-map cardinalities are
// independent, so they are computed on the worker pool; the per-statement
// sums fold the results in map order so the outcome matches the sequential
// computation exactly. It is shared between the fully associative pipeline
// (the whole touched map, empty opPrefix) and the set-associative counting
// (the map restricted to one cache set, with the set named in opPrefix so
// budget provenance stays attributable).
func countTouchedCards(ctx context.Context, info *scop.PolyInfo, touched presburger.UnionMap, ex parwork.Exec, fs *frontierStats, meter *budget.Meter, bounded bool, opPrefix string) ([]StatementDistance, map[string]string, error) {
	byStatement := map[string][]presburger.Map{}
	for _, m := range touched.Maps() {
		byStatement[m.InSpace().Name] = append(byStatement[m.InSpace().Name], m)
	}
	names := make([]string, 0, len(byStatement))
	for name := range byStatement {
		names = append(names, name)
	}
	sort.Strings(names)
	type cardItem struct {
		name string
		m    presburger.Map
		card qpoly.PwQPoly
		err  error // bounded mode: why this map's count degraded
	}
	var items []*cardItem
	for _, name := range names {
		if _, ok := info.StatementByName(name); !ok {
			return nil, nil, fmt.Errorf("core: unknown statement %s in touched-line map", name)
		}
		for _, m := range byStatement[name] {
			items = append(items, &cardItem{name: name, m: m})
		}
	}
	// Schedule the counting hardest-first (most basic maps, then most
	// constraints): the giant triangular-update maps dominate the wall
	// clock, and a pool that picks them up last stalls on one worker while
	// the rest idle. The schedule only permutes execution order — items are
	// addressed through `order`, results land in their item, and the fold
	// below walks `items` in canonical order — so results are bit-identical
	// for every worker count.
	weight := func(m presburger.Map) int {
		w := 0
		for _, bm := range m.Basics() {
			w += 8 + len(bm.Constraints()) + 2*len(bm.Divs())
		}
		return w
	}
	weights := make([]int, len(items))
	for i, it := range items {
		weights[i] = weight(it.m)
	}
	order := parwork.HardestFirst(weights)
	// Structurally identical maps (symmetric accesses produce them) are
	// counted once: the first item of each identity class computes the card,
	// the rest copy it.
	leader := make([]int, len(items))
	byKey := map[string]int{}
	for _, idx := range order {
		key := items[idx].m.String()
		if first, ok := byKey[key]; ok {
			leader[idx] = first
		} else {
			byKey[key] = idx
			leader[idx] = idx
		}
	}
	err := ex.RunGroup(ctx, len(items), func(_ *parwork.Worker, scheduled int) error {
		idx := order[scheduled]
		it := items[idx]
		if leader[idx] != idx {
			return nil // copied after the pool drains
		}
		card, err := counting.MapCardOp(simplifyMap(it.m, fs), meter.Op(opPrefix+"touched-line count of "+it.name))
		if err != nil {
			if bounded && !budget.IsCancellation(err) {
				// Degrade the statement instead of the analysis; the caller
				// answers it with certified instance-count bounds.
				it.err = err
				return nil
			}
			return fmt.Errorf("core: counting touched lines for %s -> %s: %w", it.name, it.m.OutSpace().Name, err)
		}
		it.card = card
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	// Leaders are structurally identical to their followers — same statement
	// space, same map string — so copying a leader's failure only ever
	// degrades the leader's own statement.
	for idx, l := range leader {
		if l != idx {
			items[idx].card = items[l].card
			items[idx].err = items[l].err
		}
	}
	degraded := map[string]string{}
	for _, it := range items {
		if it.err != nil {
			if _, ok := degraded[it.name]; !ok {
				degraded[it.name] = it.err.Error()
			}
		}
	}
	totals := make(map[string]qpoly.PwQPoly, len(names))
	for _, name := range names {
		ps, _ := info.StatementByName(name)
		totals[name] = qpoly.ZeroPw(ps.Space)
	}
	// items is ordered by (statement, map index), so this single pass folds
	// every statement's cards in map order. A statement with any degraded
	// map has no complete distance polynomial, so all its cards are dropped.
	for _, it := range items {
		if _, bad := degraded[it.name]; bad {
			continue
		}
		totals[it.name] = totals[it.name].Add(it.card)
	}
	var result []StatementDistance
	for _, name := range names {
		if _, bad := degraded[name]; bad {
			continue
		}
		result = append(result, StatementDistance{Statement: name, Distance: totals[name]})
	}
	if len(degraded) == 0 {
		degraded = nil
	}
	return result, degraded, nil
}

// composeAll composes three union maps left to right (apply a, then b, then c).
func composeAll(a, b, c presburger.UnionMap, fs *frontierStats) (presburger.UnionMap, error) {
	ab, err := a.ApplyRange(b)
	if err != nil {
		return presburger.UnionMap{}, err
	}
	abc, err := ab.ApplyRange(c)
	if err != nil {
		return presburger.UnionMap{}, err
	}
	return simplifyUnion(abc, fs), nil
}

// simplifyMap runs the full coalescing stack on a map: basics are
// normalized, detectably empty ones and duplicates dropped, subsumed and
// adjacent siblings merged, and redundant constraints eliminated. It is the
// simplification frontier of the pipeline — every composition result passes
// through here, which is what keeps the basic-map counts small enough for
// tiled programs to stay tractable.
func simplifyMap(m presburger.Map, fs *frontierStats) presburger.Map {
	before := len(m.Basics())
	out := m.Coalesce()
	var keep []presburger.BasicMap
	for _, bm := range out.Basics() {
		if bm.DefinitelyEmpty() {
			continue
		}
		keep = append(keep, bm)
	}
	fs.observe(before, len(keep))
	if len(keep) == 0 {
		return presburger.EmptyMap(m.InSpace(), m.OutSpace())
	}
	return presburger.MapFromBasics(keep...)
}

func simplifyUnion(u presburger.UnionMap, fs *frontierStats) presburger.UnionMap {
	out := presburger.NewUnionMap()
	for _, m := range u.Maps() {
		s := simplifyMap(m, fs)
		if len(s.Basics()) > 0 {
			out = out.Add(s)
		}
	}
	return out
}

// CountCompulsoryMisses counts the first accesses of every cache line
// (section 3.4). The total is the number of distinct lines touched by the
// program; the per-statement attribution uses the first map
// F = S⁻¹ ∘ lexmin(S ∘ A⁻¹), which assigns every line to the statement whose
// access has the lexicographically smallest schedule value.
func CountCompulsoryMisses(info *scop.PolyInfo, lineSize int64) (int64, map[string]int64, error) {
	A := info.LineAccessMap(lineSize)
	total, err := counting.CountSetRanges(A)
	if err != nil {
		return 0, nil, fmt.Errorf("core: counting distinct lines: %w", err)
	}
	perStmt, err := attributeCompulsory(info, lineSize)
	if err != nil {
		// Attribution is best effort: totals stay exact.
		perStmt = nil
	}
	return total, perStmt, nil
}

// attributeCompulsory splits the compulsory misses by the statement that
// performs the first access of every line.
func attributeCompulsory(info *scop.PolyInfo, lineSize int64) (map[string]int64, error) {
	S := info.Schedule()
	A := info.LineAccessMap(lineSize)
	// lines -> schedule values of accesses to them.
	lineToSched, err := A.Reverse().ApplyRange(S)
	if err != nil {
		return nil, err
	}
	out := map[string]int64{}
	for _, m := range lineToSched.Maps() {
		first, err := lexmin.MapLexmin(simplifyMap(m, nil))
		if err != nil {
			return nil, err
		}
		// Back to statement instances: lines -> first-touching instance.
		firstInst, err := presburger.NewUnionMap().Add(first).ApplyRange(S.Reverse())
		if err != nil {
			return nil, err
		}
		for _, fm := range firstInst.Maps() {
			n, err := counting.CountSet(mustDomain(fm))
			if err != nil {
				n, err = mustDomain(fm).CountByScan()
				if err != nil {
					return nil, err
				}
			}
			out[fm.OutSpace().Name] += n
		}
	}
	return out, nil
}

func mustDomain(m presburger.Map) presburger.Set {
	d, err := m.Domain()
	if err != nil {
		// Fall back to an empty set; callers treat attribution as best
		// effort.
		return presburger.EmptySet(m.InSpace())
	}
	return d
}
