package core

import (
	"errors"
	"testing"

	"haystack/internal/polybench"
	"haystack/internal/presburger"
	"haystack/internal/scop"
	"haystack/internal/tiling"
)

// coalescePreserves asserts that full coalescing of a pipeline map is
// semantics-preserving: the coalesced and uncoalesced forms must be equal by
// double subtraction (both differences empty) and by sampled-point
// membership in both directions (Contains is evaluation-only and does not
// depend on the coalescing machinery).
func coalescePreserves(t *testing.T, name string, m presburger.Map) {
	t.Helper()
	c := m.Coalesce()
	if d := m.Subtract(c); !d.DefinitelyEmpty() {
		if n, err := d.CountByScan(); err == nil && n > 0 {
			t.Fatalf("%s: original \\ coalesced has %d pairs", name, n)
		}
	}
	if d := c.Subtract(m); !d.DefinitelyEmpty() {
		if n, err := d.CountByScan(); err == nil && n > 0 {
			t.Fatalf("%s: coalesced \\ original has %d pairs", name, n)
		}
	}
	const samples = 200
	checkMembers := func(from, into presburger.Map, dir string) {
		n := 0
		err := from.Scan(func(p []int64) error {
			if !into.Contains(p) {
				t.Fatalf("%s: point %v lost (%s)", name, p, dir)
			}
			n++
			if n >= samples {
				return presburger.ErrStopScan
			}
			return nil
		})
		if err != nil && !errors.Is(err, presburger.ErrStopScan) {
			// Unbounded maps (the lex-order pieces) cannot be scanned; the
			// double-subtraction check above still covers them.
			return
		}
	}
	checkMembers(m, c, "original->coalesced")
	checkMembers(c, m, "coalesced->original")
}

// TestCoalescePreservesPipelineMaps runs the coalescing property checks on
// the intermediate maps of the stack-distance pipeline — the access maps,
// the same-line equality relation, the backward restriction, and the
// previous-access map — for an untiled and a tiled PolyBench kernel.
func TestCoalescePreservesPipelineMaps(t *testing.T) {
	kernels := []struct {
		name string
		prog *scop.Program
	}{}
	gemm, ok := polybench.ByName("gemm")
	if !ok {
		t.Fatal("gemm kernel missing")
	}
	kernels = append(kernels, struct {
		name string
		prog *scop.Program
	}{"gemm-mini", gemm.Build(polybench.Mini)})
	if tiled, didTile := tiling.Tile(gemm.Build(polybench.Mini), 8); didTile {
		kernels = append(kernels, struct {
			name string
			prog *scop.Program
		}{"gemm-mini-tiled8", tiled})
	} else {
		t.Fatal("gemm should tile")
	}

	for _, k := range kernels {
		info, err := scop.BuildPoly(k.prog)
		if err != nil {
			t.Fatalf("%s: %v", k.name, err)
		}
		S := info.Schedule()
		A := info.LineAccessMap(64)
		for _, m := range A.Maps() {
			coalescePreserves(t, k.name+"/access", m)
		}
		Sinv := S.Reverse()
		schedToLine, err := Sinv.ApplyRange(A)
		if err != nil {
			t.Fatal(err)
		}
		equal, err := schedToLine.ApplyRange(schedToLine.Reverse())
		if err != nil {
			t.Fatal(err)
		}
		equalMap, ok := equal.Get(scop.ScheduleSpaceName, scop.ScheduleSpaceName)
		if !ok {
			t.Fatalf("%s: no equal map", k.name)
		}
		coalescePreserves(t, k.name+"/equal", equalMap)
		backwardEqual := equalMap.Intersect(presburger.LexGT(info.ScheduleSpace()))
		coalescePreserves(t, k.name+"/backwardEqual", backwardEqual)
		if testing.Short() && k.name != "gemm-mini" {
			continue
		}
	}
}
