package core

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"haystack/internal/polybench"
)

// setAssocBenchRun is one associativity measurement of the set-associative
// benchmark: the analytical wall time and the (simulator-verified) per-level
// miss counts for gemm MINI at that way count.
type setAssocBenchRun struct {
	Ways   int     `json:"ways"`
	Sets   []int64 `json:"sets"`
	WallMS float64 `json:"wall_ms"`
	Misses []int64 `json:"misses"`
}

// setAssocBenchReport is the BENCH_7.json schema: per-ways wall times of the
// set-associative analytical pipeline over a fixed two-level hierarchy, with
// the fully associative run as the zero-ways baseline.
type setAssocBenchReport struct {
	Bench      string             `json:"bench"`
	Date       string             `json:"date"`
	GoVersion  string             `json:"go"`
	CPUs       int                `json:"cpus"`
	Kernel     string             `json:"kernel"`
	Size       string             `json:"size"`
	LineSize   int64              `json:"line_size"`
	CacheSizes []int64            `json:"cache_sizes"`
	Runs       []setAssocBenchRun `json:"runs"`
}

// TestSetAssocBenchmark sweeps gemm MINI across associativities 1, 2, 4,
// and 8 (plus the fully associative baseline at ways 0) on a 512 B + 2 KiB
// hierarchy, verifying every run against the reference simulation and
// recording the per-ways analytical wall times. When HAYSTACK_BENCH_SETASSOC
// names a file the measurements are written there as JSON (the BENCH_7.json
// CI artifact); without the variable the test is skipped, keeping the
// default suite fast. Lower associativity means more sets (8/w in L1, 32/w
// in L2), so the sweep charts how the per-set fan-out scales.
func TestSetAssocBenchmark(t *testing.T) {
	out := os.Getenv("HAYSTACK_BENCH_SETASSOC")
	if out == "" {
		t.Skip("set HAYSTACK_BENCH_SETASSOC=<file> to run the set-associative benchmark")
	}

	k, ok := polybench.ByName("gemm")
	if !ok {
		t.Fatal("gemm kernel not registered")
	}
	prog := k.Build(polybench.Mini)
	report := setAssocBenchReport{
		Bench:      "polybench_gemm_mini_setassoc",
		Date:       time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		CPUs:       runtime.NumCPU(),
		Kernel:     "gemm",
		Size:       "MINI",
		LineSize:   64,
		CacheSizes: []int64{512, 2048},
	}
	opts := DefaultOptions()
	opts.TraceFallback = false
	for _, ways := range []int{0, 1, 2, 4, 8} {
		cfg := Config{LineSize: report.LineSize, CacheSizes: report.CacheSizes}
		if ways > 0 {
			cfg.Ways = []int{ways, ways}
		}
		start := time.Now()
		res, err := Analyze(prog, cfg, opts)
		wall := time.Since(start)
		if err != nil {
			t.Fatalf("ways %d: %v", ways, err)
		}
		ref, err := SimulateSetAssocReference(prog, cfg)
		if err != nil {
			t.Fatalf("ways %d reference: %v", ways, err)
		}
		run := setAssocBenchRun{Ways: ways, WallMS: float64(wall) / float64(time.Millisecond)}
		for i, lvl := range res.Levels {
			if lvl.TotalMisses != ref.TotalMisses[i] {
				t.Fatalf("ways %d L%d: model %d misses, reference %d", ways, i+1, lvl.TotalMisses, ref.TotalMisses[i])
			}
			run.Misses = append(run.Misses, lvl.TotalMisses)
			sets, _, err := cfg.LevelGeometry(i)
			if err != nil {
				t.Fatalf("ways %d L%d geometry: %v", ways, i+1, err)
			}
			run.Sets = append(run.Sets, sets)
		}
		report.Runs = append(report.Runs, run)
		t.Logf("ways %d: %v, sets %v, misses %v", ways, wall.Round(time.Millisecond), run.Sets, run.Misses)
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	fmt.Printf("wrote %s with %d runs\n", out, len(report.Runs))
}
