package core

import (
	"testing"
	"time"
)

// TestBudgetAllowsNoDeadline covers the branch for test binaries running
// without -timeout: no deadline means no budget to degrade against, so
// every request is granted and nothing is skipped.
func TestBudgetAllowsNoDeadline(t *testing.T) {
	_, allowed := budgetAllows(time.Hour, time.Time{}, false, time.Now())
	if !allowed {
		t.Fatal("no deadline must grant every budget request")
	}
}

// TestBudgetAllowsWithDeadline covers the deadline branch: requests within
// the remaining budget (minus the slack) are granted, larger ones are not.
func TestBudgetAllowsWithDeadline(t *testing.T) {
	now := time.Unix(1000, 0)
	deadline := now.Add(10 * time.Minute)

	remaining, allowed := budgetAllows(5*time.Minute, deadline, true, now)
	if !allowed {
		t.Fatalf("5m need against %v remaining must be allowed", remaining)
	}
	if want := 10*time.Minute - budgetSlack; remaining != want {
		t.Fatalf("remaining = %v, want %v", remaining, want)
	}

	if _, allowed := budgetAllows(10*time.Minute, deadline, true, now); allowed {
		t.Fatal("10m need against a 10m deadline must be rejected (slack)")
	}

	// Exactly at the boundary: remaining - slack == need is still allowed.
	if _, allowed := budgetAllows(10*time.Minute-budgetSlack, deadline, true, now); !allowed {
		t.Fatal("need equal to remaining-minus-slack must be allowed")
	}

	// Past the deadline nothing fits.
	if _, allowed := budgetAllows(time.Second, deadline, true, deadline.Add(time.Minute)); allowed {
		t.Fatal("requests past the deadline must be rejected")
	}
}
