package core

import (
	"errors"
	"fmt"
	"strings"

	"haystack/internal/scop"
	"haystack/internal/scopcheck"
)

// ErrInvalidProgram reports that the static verifier (internal/scopcheck)
// rejected the program before the analysis ran. Use errors.As with
// *InvalidProgramError to inspect the individual findings.
var ErrInvalidProgram = errors.New("core: program failed static verification")

// InvalidProgramError carries the scopcheck diagnostics that failed the
// pre-flight verification of a program.
type InvalidProgramError struct {
	Program     string
	Diagnostics []scopcheck.Diagnostic
}

func (e *InvalidProgramError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%v: %s:", ErrInvalidProgram, e.Program)
	for _, d := range e.Diagnostics {
		fmt.Fprintf(&b, "\n  %s", d)
	}
	return b.String()
}

// Unwrap makes errors.Is(err, ErrInvalidProgram) work.
func (e *InvalidProgramError) Unwrap() error { return ErrInvalidProgram }

// preflight runs the static verifier on the program unless opts.SkipVerify
// is set. Error-severity findings abort the analysis with an
// *InvalidProgramError; warnings (empty domains, undecidable properties) do
// not block — the analysis is still well-defined on such programs.
func preflight(prog *scop.Program, opts Options) error {
	if opts.SkipVerify {
		return nil
	}
	diags := scopcheck.Check(prog)
	if !scopcheck.HasErrors(diags) {
		return nil
	}
	var errs []scopcheck.Diagnostic
	for _, d := range diags {
		if d.Severity == scopcheck.Error {
			errs = append(errs, d)
		}
	}
	return &InvalidProgramError{Program: prog.Name, Diagnostics: errs}
}
