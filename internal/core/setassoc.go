package core

import (
	"context"
	"fmt"
	"sort"

	"haystack/internal/budget"
	"haystack/internal/cachesim"
	"haystack/internal/counting"
	"haystack/internal/ints"
	"haystack/internal/parwork"
	"haystack/internal/presburger"
	"haystack/internal/qpoly"
	"haystack/internal/scop"
)

// MaxAnalyticalSets caps the number of cache sets the analytical model is
// willing to partition a level into. Each set re-counts the touched-line
// maps restricted to its lines, so the symbolic cost grows linearly with
// the set count; beyond this limit the simulation tier is the better tool
// (an L1 with hundreds of sets is exactly the regime trace replay handles
// in milliseconds).
const MaxAnalyticalSets = 1024

// setAssocLevel is the outcome of counting one set-associative level: the
// fold of the per-set counts in set order, so the totals are bit-identical
// for every worker count and executor shape.
type setAssocLevel struct {
	perStmt  map[string]int64
	bounds   counting.Interval
	degraded []string
	// pieces[s] is the number of per-map distance-card pieces of set s.
	pieces []int
	stats  Stats
}

// countSetAssocLevel counts the capacity misses of one cache level with
// numSets > 1 sets. Per-set LRU is fully associative LRU over the set's
// lines, so an instance whose own access falls into set s misses iff its
// touched-line map, restricted to set-s lines, counts more than `ways`
// distinct lines (the within-set stack distance). The sets are independent
// and fan out as a group over the executor.
//
// Within a set the within-set distance stays a lazy sum of raw cardinality
// summands (counting.MapCardSummands): the residue restriction stripes
// every card domain by congruence classes, and any disjoint piecewise
// normal form — the merged sum the fully associative pipeline hands its
// capacity counter, or even the per-basic-map fold — grows quadratically
// with the stripes (the classic blow-up of piecewise quasi-polynomials
// under modulo constraints). The summands themselves stay small and
// symbolic; the miss classification then evaluates the sum pointwise over
// the set's instance domain, which is exact, deterministic, and linear in
// the instance count.
func (dm *DistanceModel) countSetAssocLevel(ctx context.Context, countOpts Options, ex parwork.Exec, meter *budget.Meter, level int, numSets, ways int64) (*setAssocLevel, error) {
	if dm.saInfo == nil {
		return nil, fmt.Errorf("core: distance model of %s has no polyhedral state for set-associative counting", dm.Kernel)
	}
	part, err := dm.saInfo.SetPartition(dm.LineSize, numSets)
	if err != nil {
		return nil, err
	}
	bounded := countOpts.Mode == ModeBounded
	waysRat := ints.NewRat(ways, 1)
	// The touched maps of statements that already degraded in the distance
	// phase are skipped: countSymbolic adds their [0, instances] bound per
	// level, and counting any of their sets here would double count.
	base := presburger.NewUnionMap()
	for _, m := range dm.saTouched.Maps() {
		if _, skip := dm.boundedStmts[m.InSpace().Name]; skip {
			continue
		}
		base = base.Add(m)
	}
	type setResult struct {
		perStmt  map[string]int64
		bounds   counting.Interval
		degraded []string
		pieces   int
		stats    Stats
	}
	results := make([]*setResult, numSets)
	err = ex.RunGroup(ctx, int(numSets), func(w *parwork.Worker, s int) error {
		set := int64(s)
		sr := &setResult{perStmt: map[string]int64{}, stats: Stats{NonAffineByAffineDims: map[int]int{}}}
		results[s] = sr
		opPrefix := fmt.Sprintf("L%d set %d ", level+1, set)
		// Restrict every touched map to the lines of this set. The instance
		// domain is NOT restricted here: threading the own-access residue
		// through the cards would stripe every chamber too, and the
		// classification below applies it at evaluation time for free.
		byStmt := map[string][]presburger.Map{}
		for _, m := range base.Maps() {
			rs, err := part.ArrayResidue(m.OutSpace(), set)
			if err != nil {
				return err
			}
			ms := simplifyMap(m.IntersectRange(rs), nil)
			if len(ms.Basics()) > 0 {
				byStmt[m.InSpace().Name] = append(byStmt[m.InSpace().Name], ms)
			}
		}
		stmts := make([]string, 0, len(byStmt))
		for stmt := range byStmt {
			stmts = append(stmts, stmt)
		}
		sort.Strings(stmts)
		degraded := map[string]string{}
		for _, stmt := range stmts {
			if err := ctx.Err(); err != nil {
				return err
			}
			// The within-set distance of every instance of stmt, as a bag of
			// raw cardinality summands whose pointwise sum is the distance.
			// The summand form skips the per-card disjointness fold — the
			// residue stripes fan the summation out, and folding the fan-out
			// back into a disjoint piecewise normal form is the quadratic
			// subtraction chain that dominated the direct-mapped profile.
			var bag []qpoly.Piece
			op := meter.Op(opPrefix + "touched-line count of " + stmt)
			bagErr := func() error {
				for _, m := range byStmt[stmt] {
					pieces, err := counting.MapCardSummands(m, op)
					if err != nil {
						return err
					}
					bag = append(bag, pieces...)
				}
				return nil
			}()
			if bagErr != nil {
				if bounded && !budget.IsCancellation(bagErr) {
					degraded[stmt] = bagErr.Error()
					continue
				}
				return fmt.Errorf("core: %scounting touched lines for %s: %w", opPrefix, stmt, bagErr)
			}
			sr.pieces += len(bag)
			// Classify the instances whose own access falls into this set:
			// miss iff the within-set distance exceeds the associativity.
			// The bag evaluator box-filters the summand pieces and stops as
			// soon as the partial sum clears the associativity (sound:
			// summands are chamber counts, so the sum is monotone).
			ev := qpoly.NewBag(bag)
			dom, err := part.StatementSetDomain(stmt, set)
			if err != nil {
				return err
			}
			cop := meter.Op(opPrefix + "miss classification of " + stmt)
			var misses, points int64
			scanErr := dom.Scan(func(pt []int64) error {
				if err := cop.Charge(1); err != nil {
					return err
				}
				points++
				if ev.SumExceeds(pt, waysRat) {
					misses++
				}
				return nil
			})
			if scanErr != nil {
				if bounded && !budget.IsCancellation(scanErr) {
					degraded[stmt] = scanErr.Error()
					continue
				}
				return fmt.Errorf("core: %sclassifying misses of %s: %w", opPrefix, stmt, scanErr)
			}
			sr.stats.FullEnumerationPoints += points
			sr.perStmt[stmt] = misses
			sr.bounds = sr.bounds.Add(counting.Interval{Lo: misses, Hi: misses})
		}
		// Statements that degraded for this set: their set-s capacity misses
		// are certifiably within [0, set-s instances].
		for _, stmt := range sortedKeys(degraded) {
			n, cerr := dm.setInstanceCount(part, stmt, set, meter, opPrefix)
			if cerr != nil {
				if budget.IsCancellation(cerr) {
					return cerr
				}
				n = dm.stmtInstances[stmt]
			}
			sr.bounds = sr.bounds.Add(counting.Interval{Lo: 0, Hi: n})
			sr.perStmt[stmt] = satAddCount(sr.perStmt[stmt], n)
			sr.degraded = append(sr.degraded, fmt.Sprintf("%s%s: %s", opPrefix, stmt, degraded[stmt]))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Fold the per-set results in set order: every counter is additive, so
	// the totals do not depend on how the pool scheduled the sets.
	lvl := &setAssocLevel{
		perStmt: map[string]int64{},
		pieces:  make([]int, numSets),
		stats:   Stats{NonAffineByAffineDims: map[int]int{}},
	}
	for s := int64(0); s < numSets; s++ {
		sr := results[s]
		lvl.pieces[s] = sr.pieces
		lvl.bounds = lvl.bounds.Add(sr.bounds)
		for stmt, n := range sr.perStmt {
			lvl.perStmt[stmt] = satAddCount(lvl.perStmt[stmt], n)
		}
		lvl.degraded = append(lvl.degraded, sr.degraded...)
		lvl.stats.merge(&sr.stats)
	}
	return lvl, nil
}

// setInstanceCount counts the instances of one statement whose own access
// falls into cache set s — the anchor of the certified bound a degraded
// per-set count falls back to.
func (dm *DistanceModel) setInstanceCount(part *scop.SetPartition, stmt string, set int64, meter *budget.Meter, opPrefix string) (int64, error) {
	dom, err := part.StatementSetDomain(stmt, set)
	if err != nil {
		return 0, err
	}
	return counting.CountSetOp(dom, meter.Op(opPrefix+"instance count of "+stmt))
}

// SimulateSetAssocReference computes the exact reference counts for a
// set-associative hierarchy: the trace is replayed with the padded array
// layout the model assumes, once, feeding one independent single-level LRU
// cache per configured level (the model's per-level semantics: every level
// observes the full access stream). It is the ground truth the analytical
// set-associative counts are validated against, and the simulation rung the
// trace-fallback tier answers set-associative queries from.
func SimulateSetAssocReference(prog *scop.Program, cfg Config) (Reference, error) {
	if err := cfg.Validate(); err != nil {
		return Reference{}, err
	}
	layout := scop.NewLayout(prog, scop.LayoutPadded, cfg.LineSize)
	cp, err := scop.Compile(prog, layout)
	if err != nil {
		return Reference{}, err
	}
	hierarchies := make([]*cachesim.Hierarchy, len(cfg.CacheSizes))
	for i, size := range cfg.CacheSizes {
		h, err := cachesim.NewHierarchy(cachesim.Config{
			LineSize: cfg.LineSize,
			Levels: []cachesim.LevelConfig{{
				Name: fmt.Sprintf("L%d", i+1), SizeBytes: size,
				Ways: cfg.WaysOf(i), Policy: cachesim.LRU,
			}},
		})
		if err != nil {
			return Reference{}, err
		}
		hierarchies[i] = h
	}
	cp.ForEachAccess(func(ref scop.MemRef) bool {
		for _, h := range hierarchies {
			h.Access(ref.Addr, ref.Write)
		}
		return true
	})
	var ref Reference
	for i, h := range hierarchies {
		res := h.Results()
		if i == 0 {
			ref.TotalAccesses = res.TotalAccesses
			ref.CompulsoryMisses = res.Levels[0].Compulsory
		}
		ref.TotalMisses = append(ref.TotalMisses, res.Levels[0].Misses)
	}
	return ref, nil
}
