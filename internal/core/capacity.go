package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"haystack/internal/budget"
	"haystack/internal/counting"
	"haystack/internal/ints"
	"haystack/internal/parwork"
	"haystack/internal/presburger"
	"haystack/internal/qpoly"
)

// capacityCounter implements Algorithm 1 of the paper: it counts, for every
// piece of the stack distance quasi-polynomials, the statement instances
// whose distance exceeds the cache capacity. Affine pieces are counted
// symbolically; non-affine pieces are first simplified by equalization and
// rasterization and finally handled by partial enumeration of their
// non-affine dimensions.
//
// The engine exploits two independent sources of structure. Pieces are
// mutually independent, so they are fanned out over a pool of worker
// goroutines (Options.Parallelism); every worker accumulates into its own
// Stats, merged deterministically after the pool drains. And the stack
// distance polynomial is cache-level independent, so every piece is split,
// equalized, rasterized, and enumerated exactly once and the resulting
// sub-pieces are classified against all cache capacities in a single pass
// (the paper evaluates one distance polynomial against multiple thresholds
// the same way, Figure 13).
type capacityCounter struct {
	opts  Options
	stats *Stats
	// meter and ctx wire the counter into the degradation ladder: every
	// piece is counted under its own budgeted operation (per-operation
	// limits keep bounded results bit-identical across worker counts) and
	// workers stop claiming pieces once ctx is cancelled. Both are optional;
	// nil means unlimited and uncancellable, matching the legacy behaviour.
	meter *budget.Meter
	ctx   context.Context
	// exec is the caller-supplied executor for the piece fan-out (nil means
	// Count builds a transient one from the options).
	exec parwork.Exec
	// The fields below exist only on the per-worker counters Count builds.
	// w is the pool worker currently driving this counter (each counter is
	// only ever used from its worker's goroutine); siblings is the full
	// per-worker counter array, so a spawned sub-group item can pick the
	// counter of whichever worker stole it; spawnOK gates chamber-level
	// sub-piece spawning (exact mode with an unlimited meter only — a
	// budgeted or bounded count keeps its strictly serial, deterministic
	// per-operation accounting).
	w        *parwork.Worker
	siblings []*capacityCounter
	spawnOK  bool
}

func newCapacityCounter(opts Options, stats *Stats) *capacityCounter {
	return &capacityCounter{opts: opts, stats: stats}
}

// capacityResult is the outcome of one hierarchy count: per cache level, the
// per-statement point counts (certified upper bounds wherever a piece
// degraded), the certified interval enclosing the level's capacity misses,
// and the provenance of every degraded piece (empty for fully exact runs,
// in which case each bounds entry has width zero).
type capacityResult struct {
	perStmt  []map[string]int64
	bounds   []counting.Interval
	degraded []string
}

// capacityWorkItem is one unit of parallel work: a single piece of one
// statement's distance polynomial, counted against every cache capacity.
type capacityWorkItem struct {
	stmt  int
	piece qpoly.Piece
}

// Count returns, for every capacity in cacheLines (in lines), the
// per-statement capacity miss counts together with a certified interval per
// level. In exact mode any failing piece fails the count; under ModeBounded
// a piece whose exact count degraded (budget or solver limits) contributes
// certified interval bounds instead and the count succeeds. Cancellation
// always aborts.
func (cc *capacityCounter) Count(distances []StatementDistance, cacheLines []int64) (capacityResult, error) {
	out := capacityResult{
		perStmt: make([]map[string]int64, len(cacheLines)),
		bounds:  make([]counting.Interval, len(cacheLines)),
	}
	for l := range out.perStmt {
		out.perStmt[l] = map[string]int64{}
		for _, sd := range distances {
			out.perStmt[l][sd.Statement] = 0
		}
	}
	var items []capacityWorkItem
	for si, sd := range distances {
		for _, piece := range sd.Distance.Pieces {
			items = append(items, capacityWorkItem{stmt: si, piece: piece})
		}
	}
	if len(items) == 0 || len(cacheLines) == 0 {
		// Nothing to count (or no capacities to classify against): skip the
		// pool entirely and report zero workers.
		return out, nil
	}
	ctx := cc.ctx
	if ctx == nil {
		ctx = context.Background()
	}
	bounded := cc.opts.Mode == ModeBounded
	ex := cc.exec
	release := func() {}
	if ex == nil {
		ex, release = cc.opts.executor()
	}
	defer release()
	workers := ex.Workers()
	results := make([][]int64, len(items))
	itemBounds := make([][]counting.Interval, len(items))
	itemReasons := make([]string, len(items))
	// Schedule the pieces hardest-first (non-affine polynomials and busy
	// domains cost orders of magnitude more than affine ones), so the pool
	// does not stall on one giant piece picked up last. The permutation only
	// affects execution order: results land at their item index and the
	// accumulation below walks items in canonical order, so totals are
	// bit-identical for every worker count.
	weights := make([]int, len(items))
	for i, it := range items {
		w := len(it.piece.Domain.Constraints()) + 2*len(it.piece.Domain.Divs())
		if it.piece.Poly.Degree() > 1 {
			w += 1000 * len(it.piece.Poly.Terms)
		}
		weights[i] = w
	}
	order := parwork.HardestFirst(weights)
	// Every worker counts through its own capacityCounter so the pool never
	// contends on statistics; the per-worker Stats are merged below. The
	// counters share the siblings array so a chamber-level sub-piece stolen
	// by another worker accumulates into the stealer's Stats (still additive
	// and order-independent, so the merged totals stay bit-identical).
	spawnOK := !bounded && cc.meter.Limit() == 0
	workerStats := make([]Stats, workers)
	counters := make([]*capacityCounter, workers)
	for w := range counters {
		workerStats[w].NonAffineByAffineDims = map[int]int{}
		counters[w] = &capacityCounter{opts: cc.opts, stats: &workerStats[w], meter: cc.meter,
			ctx: ctx, siblings: counters, spawnOK: spawnOK}
	}
	ps0 := ex.PoolStats()
	workerTimes, err := ex.RunGroupTimed(ctx, len(items), func(w *parwork.Worker, scheduled int) error {
		idx := order[scheduled]
		stmt := distances[items[idx].stmt].Statement
		stage := "capacity piece of " + stmt
		c := counters[w.ID()]
		c.w = w
		op := c.meter.Op(stage)
		counts, err := c.countPiece(items[idx].piece.Domain, items[idx].piece.Poly, cacheLines, true, op, stage)
		if err == nil {
			results[idx] = counts
			return nil
		}
		if !bounded || budget.IsCancellation(err) {
			return fmt.Errorf("core: counting capacity misses of %s: %w", stmt, err)
		}
		// Bounded tier: the exact count of this one piece degraded; answer
		// it with certified interval bounds instead of failing the analysis.
		ivs, berr := c.boundPiece(items[idx].piece.Domain, items[idx].piece.Poly, cacheLines, op)
		if berr != nil {
			return fmt.Errorf("core: bounding capacity misses of %s: %w", stmt, berr)
		}
		itemBounds[idx] = ivs
		itemReasons[idx] = fmt.Sprintf("%s: capacity piece bounded (%v)", stmt, err)
		return nil
	})
	ps1 := ex.PoolStats()
	cc.stats.Steals += ps1.Steals - ps0.Steals
	cc.stats.Splits += ps1.Splits - ps0.Splits

	if err != nil {
		// On failure the set of completed pieces depends on scheduling, so
		// the partial per-worker statistics are discarded: callers that fall
		// back to trace profiling keep deterministic stats.
		return capacityResult{}, err
	}

	// Merge the per-worker statistics in worker order; every counter is
	// additive, so the merged values do not depend on how the scheduler
	// distributed the pieces.
	for w := range workerStats {
		cc.stats.merge(&workerStats[w])
	}
	cc.stats.CapacityWorkers = len(workerTimes)
	cc.stats.CapacityWorkerTime = workerTimes

	// Fold the per-item results in canonical item order so totals and bounds
	// stay bit-identical for every worker count. Exact pieces contribute
	// width-zero intervals; degraded pieces contribute their certified
	// bounds, with the conservative upper bound as the point value.
	for idx := range items {
		stmt := distances[items[idx].stmt].Statement
		if counts := results[idx]; counts != nil {
			for l, n := range counts {
				out.perStmt[l][stmt] += n
				out.bounds[l] = out.bounds[l].Add(counting.Exact(n))
			}
			continue
		}
		for l, iv := range itemBounds[idx] {
			out.perStmt[l][stmt] = satAddCount(out.perStmt[l][stmt], iv.Hi)
			out.bounds[l] = out.bounds[l].Add(iv)
		}
		out.degraded = append(out.degraded, itemReasons[idx])
	}
	return out, nil
}

// satAddCount adds two non-negative counts, saturating at MaxInt64 (a
// degraded piece with no box bound reports MaxInt64 as its upper bound;
// callers clamp against the statement's instance count afterwards).
func satAddCount(a, b int64) int64 {
	if a > math.MaxInt64-b {
		return math.MaxInt64
	}
	return a + b
}

// boundPiece computes certified bounds on the capacity misses of a piece
// whose exact count degraded. The lower bound enumerates a prefix of the
// domain and evaluates the distance polynomial at each point (every counted
// point is a genuine miss); a complete enumeration makes the result exact.
// The upper bound is the bounding-box volume of the domain (the misses are a
// subset of the piece), refined by interval arithmetic on the polynomial
// over the box: a range maximum at or below the capacity certifies zero
// misses. Only cancellation can fail.
func (cc *capacityCounter) boundPiece(domain presburger.BasicSet, poly qpoly.QPoly, capacities []int64, op *budget.Op) ([]counting.Interval, error) {
	los := make([]int64, len(capacities))
	var seen int64
	complete := true
	errEnumStop := errors.New("enumeration cap reached")
	scanErr := domain.Scan(func(point []int64) error {
		if err := op.Err(); err != nil {
			return err
		}
		if seen >= counting.DefaultMaxEnum {
			return errEnumStop
		}
		seen++
		v := poly.Eval(point)
		for i, capacity := range capacities {
			if v.Cmp(ints.RatInt(capacity)) > 0 {
				los[i]++
			}
		}
		return nil
	})
	if scanErr != nil {
		if budget.IsCancellation(scanErr) {
			return nil, scanErr
		}
		// Enumeration cap hit, or the scanner cannot walk the domain: the
		// enumerated prefix still certifies the lower bounds.
		complete = false
	}
	if complete {
		ivs := make([]counting.Interval, len(capacities))
		for i, n := range los {
			ivs[i] = counting.Exact(n)
		}
		return ivs, nil
	}
	boxHi, boxOK := counting.BoxCountUpper(domain)
	var rmax ints.Rat
	rangeOK := false
	if blo, bhi, ok := counting.BoxBounds(domain); ok {
		_, rmax, rangeOK = poly.RangeOnBox(blo, bhi)
	}
	ivs := make([]counting.Interval, len(capacities))
	for i, capacity := range capacities {
		iv := counting.Interval{Lo: los[i], Hi: math.MaxInt64}
		switch {
		case rangeOK && rmax.Cmp(ints.RatInt(capacity)) <= 0:
			// No point of the piece can exceed this capacity.
			iv = counting.Exact(0)
		case boxOK:
			iv.Hi = boxHi
		}
		if iv.Hi < iv.Lo {
			iv.Hi = iv.Lo
		}
		ivs[i] = iv
	}
	return ivs, nil
}

// countPiece counts, per capacity, the points of the piece whose stack
// distance polynomial exceeds that capacity. The piece is split and
// enumerated once; only the final classification compares against the
// individual capacities. topLevel marks the pieces of the original distance
// set for the statistics (pieces created by the splitting strategies are not
// classified again).
func (cc *capacityCounter) countPiece(domain presburger.BasicSet, poly qpoly.QPoly, capacities []int64, topLevel bool, op *budget.Op, stage string) ([]int64, error) {
	if topLevel {
		if poly.Degree() <= 1 {
			cc.stats.AffinePieces++
		} else {
			cc.stats.NonAffinePieces++
			cc.stats.NonAffineByAffineDims[cc.affineDims(domain, poly)]++
		}
	}
	if poly.Degree() <= 1 {
		return cc.countAffinePiece(domain, poly, capacities, op)
	}
	// Floor elimination (section 3.3).
	if cc.opts.Equalization {
		if pieces, ok := equalize(domain, poly); ok {
			cc.stats.EqualizationSplits++
			return cc.countSubPieces(pieces, capacities, op, stage)
		}
	}
	if cc.opts.Rasterization {
		if pieces, ok := rasterize(domain, poly); ok {
			cc.stats.RasterizationSplits++
			return cc.countSubPieces(pieces, capacities, op, stage)
		}
	}
	// Partial enumeration (section 3.2).
	if cc.opts.PartialEnumeration {
		n, err := cc.partialEnumeration(domain, poly, capacities, op, stage)
		if err == nil {
			return n, nil
		}
		if errors.Is(err, budget.ErrExceeded) || budget.IsCancellation(err) {
			// A budget trip or cancellation must not fall through to full
			// enumeration — that would re-spend the already exhausted budget.
			return nil, err
		}
	}
	return cc.fullEnumeration(domain, poly, capacities, op)
}

// countSubPieces counts a split's sub-pieces and folds them in index order.
// In exact mode with an unlimited meter the sub-pieces become chamber-level
// work items on the analysis pool: equalization and rasterization routinely
// split one heavy non-affine piece (a 3-D stencil chamber) into dozens of
// residue pieces, and spawning them lets idle workers steal from what would
// otherwise be one worker's multi-second tail. Each spawned sub-piece runs
// on the counter (and Stats) of the worker that picked it up, under a fresh
// operation with the same stage label; counts land index-addressed and fold
// in order, so totals are bit-identical to the serial path.
func (cc *capacityCounter) countSubPieces(pieces []splitPiece, capacities []int64, op *budget.Op, stage string) ([]int64, error) {
	total := make([]int64, len(capacities))
	if cc.spawnOK && cc.w != nil && cc.siblings != nil && len(pieces) > 1 && cc.w.Workers() > 1 {
		results := make([][]int64, len(pieces))
		err := cc.w.RunGroup(cc.ctx, len(pieces), func(sw *parwork.Worker, i int) error {
			c := cc.siblings[sw.ID()]
			c.w = sw
			n, err := c.countPiece(pieces[i].domain, pieces[i].poly, capacities, false, c.meter.Op(stage), stage)
			if err != nil {
				return err
			}
			results[i] = n
			return nil
		})
		if err != nil {
			return nil, err
		}
		for _, n := range results {
			addCounts(total, n)
		}
		return total, nil
	}
	for _, p := range pieces {
		n, err := cc.countPiece(p.domain, p.poly, capacities, false, op, stage)
		if err != nil {
			return nil, err
		}
		addCounts(total, n)
	}
	return total, nil
}

func addCounts(dst, src []int64) {
	for i, n := range src {
		dst[i] += n
	}
}

// affineDims counts the dimensions of the piece that the polynomial depends
// on at most affinely (the dimensions partial enumeration can keep
// symbolic); used for the Table 1 statistic.
func (cc *capacityCounter) affineDims(domain presburger.BasicSet, poly qpoly.QPoly) int {
	enum := chooseEnumerationDims(poly)
	n := domain.NDim() - len(enum)
	if n < 0 {
		n = 0
	}
	return n
}

// countAffinePiece counts the points of the piece with distance > capacity
// symbolically (countAffinePiece of Algorithm 1), for every capacity.
func (cc *capacityCounter) countAffinePiece(domain presburger.BasicSet, poly qpoly.QPoly, capacities []int64, op *budget.Op) ([]int64, error) {
	cc.stats.CountedPieces++
	counts := make([]int64, len(capacities))
	if c, ok := poly.IsConstant(); ok {
		// Constant distance: either every point of the piece misses or none.
		// The piece is counted at most once, no matter how many capacities it
		// exceeds.
		var n int64
		counted := false
		for i, capacity := range capacities {
			if c.Cmp(ints.RatInt(capacity)) <= 0 {
				continue
			}
			if !counted {
				var err error
				n, err = counting.CountBasicSetOp(domain, op)
				if err != nil {
					if errors.Is(err, budget.ErrExceeded) || budget.IsCancellation(err) {
						return nil, err
					}
					n, err = cc.scanCount(domain, op)
					if err != nil {
						return nil, err
					}
				}
				counted = true
			}
			counts[i] = n
		}
		return counts, nil
	}
	// The miss sets are nested: a distance exceeding a capacity exceeds every
	// smaller one, so counts are non-increasing in the capacity. Counting in
	// ascending capacity order lets a zero count settle every larger capacity
	// at once — the dominant case for outer cache levels.
	order := make([]int, len(capacities))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return capacities[order[a]] < capacities[order[b]] })
	for oi, i := range order {
		capacity := capacities[i]
		if oi > 0 && counts[order[oi-1]] == 0 {
			break // counts for all remaining (larger) capacities are zero
		}
		missSet, err := affineMissSet(domain, poly, capacity)
		if err != nil {
			return nil, err
		}
		// Parallel and implied bounds multiply the fan-out of the symbolic
		// count (every lower/upper bound pair of a summed dimension becomes a
		// piece, and any div-referenced dimension is residue-split); trimming
		// them per miss set is routinely a 10x-plus on pieces whose domains
		// inherited constraints from the composition pipeline.
		trimmed, ok := missSet.RemoveRedundancies()
		if !ok || trimmed.DefinitelyEmpty() {
			// Routinely hit for the outer cache levels: the piece's distance
			// never exceeds the capacity, and rational infeasibility is far
			// cheaper to establish than running the symbolic summation.
			continue
		}
		n, err := counting.CountBasicSetOp(trimmed, op)
		if err != nil {
			if errors.Is(err, budget.ErrExceeded) || budget.IsCancellation(err) {
				return nil, err
			}
			// The symbolic counter could not handle the piece; enumeration of
			// the restricted set stays exact.
			n, err = cc.scanCount(trimmed, op)
			if err != nil {
				return nil, err
			}
		}
		counts[i] = n
	}
	return counts, nil
}

// affineMissSet intersects the domain with the constraint poly > capacity.
// The polynomial must be affine (degree <= 1); its floor atoms become div
// variables of the resulting basic set.
func affineMissSet(domain presburger.BasicSet, poly qpoly.QPoly, capacity int64) (presburger.BasicSet, error) {
	if poly.Degree() > 1 {
		return presburger.BasicSet{}, fmt.Errorf("core: affineMissSet called with degree %d", poly.Degree())
	}
	// Common denominator of the coefficients.
	lcm := int64(1)
	for _, t := range poly.Terms {
		lcm = ints.LCM(lcm, t.Coef.Den())
	}
	out := domain
	// Map atoms of the polynomial to div columns of the basic set.
	atomCol := make([]int, len(poly.Atoms))
	for i := range atomCol {
		atomCol[i] = -1
	}
	var ensureAtom func(idx int) (int, error)
	ensureAtom = func(idx int) (int, error) {
		if atomCol[idx] >= 0 {
			return atomCol[idx], nil
		}
		a := poly.Atoms[idx]
		num := presburger.NewVec(out.NCols())
		for j, c := range a.Num {
			if c == 0 {
				continue
			}
			switch {
			case j == 0:
				num[0] += c
			case j <= poly.NVar:
				num[j] += c
			default:
				col, err := ensureAtom(j - 1 - poly.NVar)
				if err != nil {
					return 0, err
				}
				num = num.Resized(out.NCols())
				num[col] += c
			}
		}
		var col int
		out, col = out.AddDiv(num, a.Den)
		atomCol[idx] = col
		return col, nil
	}
	// Build lcm*poly - lcm*(capacity+1) >= 0.
	vec := presburger.NewVec(out.NCols())
	for _, t := range poly.Terms {
		coef := t.Coef.Mul(ints.RatInt(lcm))
		if !coef.IsInt() {
			return presburger.BasicSet{}, fmt.Errorf("core: non-integer scaled coefficient %v", coef)
		}
		col := 0
		count := 0
		for j, e := range t.Pow {
			if e > 0 {
				col = j
				count += e
			}
		}
		switch count {
		case 0:
			vec[0] += coef.Int()
		case 1:
			if col < poly.NVar {
				vec = vec.Resized(out.NCols())
				vec[1+col] += coef.Int()
			} else {
				dcol, err := ensureAtom(col - poly.NVar)
				if err != nil {
					return presburger.BasicSet{}, err
				}
				vec = vec.Resized(out.NCols())
				vec[dcol] += coef.Int()
			}
		default:
			return presburger.BasicSet{}, fmt.Errorf("core: non-affine term in affineMissSet")
		}
	}
	vec = vec.Resized(out.NCols())
	vec[0] -= lcm * (capacity + 1)
	return out.AddConstraint(presburger.Constraint{C: vec}), nil
}

// partialEnumeration enumerates the values of the non-affine dimensions and
// counts the remaining affine dimensions symbolically. The enumeration and
// the per-point domain/polynomial specialization are shared by all
// capacities.
func (cc *capacityCounter) partialEnumeration(domain presburger.BasicSet, poly qpoly.QPoly, capacities []int64, op *budget.Op, stage string) ([]int64, error) {
	enumDims := chooseEnumerationDims(poly)
	if len(enumDims) == 0 || len(enumDims) >= domain.NDim() {
		return nil, fmt.Errorf("core: no profitable partial enumeration split")
	}
	enumDomain := projectOnto(domain, enumDims)
	total := make([]int64, len(capacities))
	err := enumDomain.Scan(func(point []int64) error {
		if err := op.Charge(1); err != nil {
			return err
		}
		cc.stats.PartialEnumerationPoints++
		boundDomain := domain
		boundPoly := poly
		for i, d := range enumDims {
			boundDomain = boundDomain.FixDim(d, point[i])
			boundPoly = boundPoly.BindVar(d, point[i])
		}
		n, err := cc.countPiece(boundDomain, boundPoly, capacities, false, op, stage)
		if err != nil {
			return err
		}
		addCounts(total, n)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return total, nil
}

// fullEnumeration walks every point of the piece and evaluates the
// polynomial (the last resort of Algorithm 1). Every point is evaluated once
// and the value classified against all capacities.
func (cc *capacityCounter) fullEnumeration(domain presburger.BasicSet, poly qpoly.QPoly, capacities []int64, op *budget.Op) ([]int64, error) {
	cc.stats.CountedPieces++
	total := make([]int64, len(capacities))
	err := domain.Scan(func(point []int64) error {
		if err := op.Charge(1); err != nil {
			return err
		}
		cc.stats.FullEnumerationPoints++
		v := poly.Eval(point)
		for i, capacity := range capacities {
			if v.Cmp(ints.RatInt(capacity)) > 0 {
				total[i]++
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return total, nil
}

// scanCount counts the points of a basic set by enumeration, charging the
// current operation one cost unit per point so an enumeration fallback
// cannot silently blow past the budget the symbolic count just tripped.
func (cc *capacityCounter) scanCount(bs presburger.BasicSet, op *budget.Op) (int64, error) {
	var n int64
	err := bs.Scan(func([]int64) error {
		if err := op.Charge(1); err != nil {
			return err
		}
		n++
		return nil
	})
	if err != nil {
		return 0, err
	}
	return n, nil
}

// chooseEnumerationDims greedily selects the dimensions to enumerate: while
// the polynomial restricted to the remaining dimensions is non-affine, the
// dimension involved in the largest number of non-affine terms is added to
// the enumeration set.
func chooseEnumerationDims(poly qpoly.QPoly) []int {
	chosen := map[int]bool{}
	for {
		counts := make(map[int]int)
		nonAffine := false
		for _, t := range poly.Terms {
			deg := 0
			var varsInTerm []int
			for j, e := range t.Pow {
				if e == 0 {
					continue
				}
				vars := columnVars(poly, j)
				free := false
				for _, v := range vars {
					if !chosen[v] {
						free = true
					}
				}
				if free {
					deg += e
					for _, v := range vars {
						if !chosen[v] {
							varsInTerm = append(varsInTerm, v)
						}
					}
				}
			}
			if deg > 1 {
				nonAffine = true
				for _, v := range varsInTerm {
					counts[v]++
				}
			}
		}
		if !nonAffine {
			break
		}
		best, bestCount := -1, -1
		for v, c := range counts {
			if c > bestCount || (c == bestCount && v < best) {
				best, bestCount = v, c
			}
		}
		if best < 0 {
			break
		}
		chosen[best] = true
	}
	out := make([]int, 0, len(chosen))
	for v := range chosen {
		out = append(out, v)
	}
	sortInts(out)
	return out
}

// columnVars returns the variables a power column of the polynomial depends
// on: the variable itself for a variable column, the (transitive) variables
// of the atom argument for an atom column.
func columnVars(poly qpoly.QPoly, col int) []int {
	if col < poly.NVar {
		return []int{col}
	}
	var out []int
	for v := 0; v < poly.NVar; v++ {
		for _, idx := range poly.AtomsDependingOnVar(v) {
			if idx == col-poly.NVar {
				out = append(out, v)
				break
			}
		}
	}
	return out
}

// projectOnto projects the domain onto the selected dimensions (in order) by
// eliminating every other dimension. Dimensions the exact projection cannot
// eliminate are over-approximated instead: the result is only used to
// generate candidate values that are validated against the exact domain, so
// a superset merely wastes a few empty iterations while keeping partial
// enumeration available (the alternative is full enumeration of the piece).
func projectOnto(domain presburger.BasicSet, dims []int) presburger.BasicSet {
	keep := map[int]bool{}
	for _, d := range dims {
		keep[d] = true
	}
	out := domain
	// Eliminate from the highest index so earlier indices stay valid.
	for d := domain.NDim() - 1; d >= 0; d-- {
		if keep[d] {
			continue
		}
		exact, err := out.ProjectOut(d, 1)
		if err != nil {
			exact = out.ProjectOutApprox(d, 1)
		}
		out = exact
	}
	return out
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
