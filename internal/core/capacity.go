package core

import (
	"fmt"
	"sort"

	"haystack/internal/counting"
	"haystack/internal/ints"
	"haystack/internal/parwork"
	"haystack/internal/presburger"
	"haystack/internal/qpoly"
)

// capacityCounter implements Algorithm 1 of the paper: it counts, for every
// piece of the stack distance quasi-polynomials, the statement instances
// whose distance exceeds the cache capacity. Affine pieces are counted
// symbolically; non-affine pieces are first simplified by equalization and
// rasterization and finally handled by partial enumeration of their
// non-affine dimensions.
//
// The engine exploits two independent sources of structure. Pieces are
// mutually independent, so they are fanned out over a pool of worker
// goroutines (Options.Parallelism); every worker accumulates into its own
// Stats, merged deterministically after the pool drains. And the stack
// distance polynomial is cache-level independent, so every piece is split,
// equalized, rasterized, and enumerated exactly once and the resulting
// sub-pieces are classified against all cache capacities in a single pass
// (the paper evaluates one distance polynomial against multiple thresholds
// the same way, Figure 13).
type capacityCounter struct {
	opts  Options
	stats *Stats
}

func newCapacityCounter(opts Options, stats *Stats) *capacityCounter {
	return &capacityCounter{opts: opts, stats: stats}
}

// capacityWorkItem is one unit of parallel work: a single piece of one
// statement's distance polynomial, counted against every cache capacity.
type capacityWorkItem struct {
	stmt  int
	piece qpoly.Piece
}

// Count returns, for every capacity in cacheLines (in lines), the total
// number of capacity misses together with the per-statement breakdown.
func (cc *capacityCounter) Count(distances []StatementDistance, cacheLines []int64) ([]int64, []map[string]int64, error) {
	totals := make([]int64, len(cacheLines))
	perStmt := make([]map[string]int64, len(cacheLines))
	for l := range perStmt {
		perStmt[l] = map[string]int64{}
		for _, sd := range distances {
			perStmt[l][sd.Statement] = 0
		}
	}
	var items []capacityWorkItem
	for si, sd := range distances {
		for _, piece := range sd.Distance.Pieces {
			items = append(items, capacityWorkItem{stmt: si, piece: piece})
		}
	}
	if len(items) == 0 || len(cacheLines) == 0 {
		// Nothing to count (or no capacities to classify against): skip the
		// pool entirely and report zero workers.
		return totals, perStmt, nil
	}
	workers := effectiveParallelism(cc.opts.Parallelism)
	results := make([][]int64, len(items))
	// Schedule the pieces hardest-first (non-affine polynomials and busy
	// domains cost orders of magnitude more than affine ones), so the pool
	// does not stall on one giant piece picked up last. The permutation only
	// affects execution order: results land at their item index and the
	// accumulation below walks items in canonical order, so totals are
	// bit-identical for every worker count.
	weights := make([]int, len(items))
	for i, it := range items {
		w := len(it.piece.Domain.Constraints()) + 2*len(it.piece.Domain.Divs())
		if it.piece.Poly.Degree() > 1 {
			w += 1000 * len(it.piece.Poly.Terms)
		}
		weights[i] = w
	}
	order := parwork.HardestFirst(weights)
	// Every worker counts through its own capacityCounter so the pool never
	// contends on statistics; the per-worker Stats are merged below.
	workerStats := make([]Stats, workers)
	counters := make([]*capacityCounter, workers)
	for w := range counters {
		workerStats[w].NonAffineByAffineDims = map[int]int{}
		counters[w] = &capacityCounter{opts: cc.opts, stats: &workerStats[w]}
	}
	workerTimes, err := parwork.RunTimed(len(items), workers, func(worker, scheduled int) error {
		idx := order[scheduled]
		counts, err := counters[worker].countPiece(items[idx].piece.Domain, items[idx].piece.Poly, cacheLines, true)
		if err != nil {
			return fmt.Errorf("core: counting capacity misses of %s: %w", distances[items[idx].stmt].Statement, err)
		}
		results[idx] = counts
		return nil
	})

	if err != nil {
		// On failure the set of completed pieces depends on scheduling, so
		// the partial per-worker statistics are discarded: callers that fall
		// back to trace profiling keep deterministic stats.
		return nil, nil, err
	}

	// Merge the per-worker statistics in worker order; every counter is
	// additive, so the merged values do not depend on how the scheduler
	// distributed the pieces.
	for w := range workerStats {
		cc.stats.merge(&workerStats[w])
	}
	cc.stats.CapacityWorkers = len(workerTimes)
	cc.stats.CapacityWorkerTime = workerTimes

	for idx, counts := range results {
		stmt := distances[items[idx].stmt].Statement
		for l, n := range counts {
			perStmt[l][stmt] += n
			totals[l] += n
		}
	}
	return totals, perStmt, nil
}

// countPiece counts, per capacity, the points of the piece whose stack
// distance polynomial exceeds that capacity. The piece is split and
// enumerated once; only the final classification compares against the
// individual capacities. topLevel marks the pieces of the original distance
// set for the statistics (pieces created by the splitting strategies are not
// classified again).
func (cc *capacityCounter) countPiece(domain presburger.BasicSet, poly qpoly.QPoly, capacities []int64, topLevel bool) ([]int64, error) {
	if topLevel {
		if poly.Degree() <= 1 {
			cc.stats.AffinePieces++
		} else {
			cc.stats.NonAffinePieces++
			cc.stats.NonAffineByAffineDims[cc.affineDims(domain, poly)]++
		}
	}
	if poly.Degree() <= 1 {
		return cc.countAffinePiece(domain, poly, capacities)
	}
	// Floor elimination (section 3.3).
	if cc.opts.Equalization {
		if pieces, ok := equalize(domain, poly); ok {
			cc.stats.EqualizationSplits++
			return cc.countSubPieces(pieces, capacities)
		}
	}
	if cc.opts.Rasterization {
		if pieces, ok := rasterize(domain, poly); ok {
			cc.stats.RasterizationSplits++
			return cc.countSubPieces(pieces, capacities)
		}
	}
	// Partial enumeration (section 3.2).
	if cc.opts.PartialEnumeration {
		n, err := cc.partialEnumeration(domain, poly, capacities)
		if err == nil {
			return n, nil
		}
	}
	return cc.fullEnumeration(domain, poly, capacities)
}

func (cc *capacityCounter) countSubPieces(pieces []splitPiece, capacities []int64) ([]int64, error) {
	total := make([]int64, len(capacities))
	for _, p := range pieces {
		n, err := cc.countPiece(p.domain, p.poly, capacities, false)
		if err != nil {
			return nil, err
		}
		addCounts(total, n)
	}
	return total, nil
}

func addCounts(dst, src []int64) {
	for i, n := range src {
		dst[i] += n
	}
}

// affineDims counts the dimensions of the piece that the polynomial depends
// on at most affinely (the dimensions partial enumeration can keep
// symbolic); used for the Table 1 statistic.
func (cc *capacityCounter) affineDims(domain presburger.BasicSet, poly qpoly.QPoly) int {
	enum := chooseEnumerationDims(poly)
	n := domain.NDim() - len(enum)
	if n < 0 {
		n = 0
	}
	return n
}

// countAffinePiece counts the points of the piece with distance > capacity
// symbolically (countAffinePiece of Algorithm 1), for every capacity.
func (cc *capacityCounter) countAffinePiece(domain presburger.BasicSet, poly qpoly.QPoly, capacities []int64) ([]int64, error) {
	cc.stats.CountedPieces++
	counts := make([]int64, len(capacities))
	if c, ok := poly.IsConstant(); ok {
		// Constant distance: either every point of the piece misses or none.
		// The piece is counted at most once, no matter how many capacities it
		// exceeds.
		var n int64
		counted := false
		for i, capacity := range capacities {
			if c.Cmp(ints.RatInt(capacity)) <= 0 {
				continue
			}
			if !counted {
				var err error
				n, err = counting.CountBasicSet(domain)
				if err != nil {
					n, err = domain.CountByScan()
					if err != nil {
						return nil, err
					}
				}
				counted = true
			}
			counts[i] = n
		}
		return counts, nil
	}
	// The miss sets are nested: a distance exceeding a capacity exceeds every
	// smaller one, so counts are non-increasing in the capacity. Counting in
	// ascending capacity order lets a zero count settle every larger capacity
	// at once — the dominant case for outer cache levels.
	order := make([]int, len(capacities))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return capacities[order[a]] < capacities[order[b]] })
	for oi, i := range order {
		capacity := capacities[i]
		if oi > 0 && counts[order[oi-1]] == 0 {
			break // counts for all remaining (larger) capacities are zero
		}
		missSet, err := affineMissSet(domain, poly, capacity)
		if err != nil {
			return nil, err
		}
		// Parallel and implied bounds multiply the fan-out of the symbolic
		// count (every lower/upper bound pair of a summed dimension becomes a
		// piece, and any div-referenced dimension is residue-split); trimming
		// them per miss set is routinely a 10x-plus on pieces whose domains
		// inherited constraints from the composition pipeline.
		trimmed, ok := missSet.RemoveRedundancies()
		if !ok || trimmed.DefinitelyEmpty() {
			// Routinely hit for the outer cache levels: the piece's distance
			// never exceeds the capacity, and rational infeasibility is far
			// cheaper to establish than running the symbolic summation.
			continue
		}
		n, err := counting.CountBasicSet(trimmed)
		if err != nil {
			// The symbolic counter could not handle the piece; enumeration of
			// the restricted set stays exact.
			n, err = trimmed.CountByScan()
			if err != nil {
				return nil, err
			}
		}
		counts[i] = n
	}
	return counts, nil
}

// affineMissSet intersects the domain with the constraint poly > capacity.
// The polynomial must be affine (degree <= 1); its floor atoms become div
// variables of the resulting basic set.
func affineMissSet(domain presburger.BasicSet, poly qpoly.QPoly, capacity int64) (presburger.BasicSet, error) {
	if poly.Degree() > 1 {
		return presburger.BasicSet{}, fmt.Errorf("core: affineMissSet called with degree %d", poly.Degree())
	}
	// Common denominator of the coefficients.
	lcm := int64(1)
	for _, t := range poly.Terms {
		lcm = ints.LCM(lcm, t.Coef.Den())
	}
	out := domain
	// Map atoms of the polynomial to div columns of the basic set.
	atomCol := make([]int, len(poly.Atoms))
	for i := range atomCol {
		atomCol[i] = -1
	}
	var ensureAtom func(idx int) (int, error)
	ensureAtom = func(idx int) (int, error) {
		if atomCol[idx] >= 0 {
			return atomCol[idx], nil
		}
		a := poly.Atoms[idx]
		num := presburger.NewVec(out.NCols())
		for j, c := range a.Num {
			if c == 0 {
				continue
			}
			switch {
			case j == 0:
				num[0] += c
			case j <= poly.NVar:
				num[j] += c
			default:
				col, err := ensureAtom(j - 1 - poly.NVar)
				if err != nil {
					return 0, err
				}
				num = num.Resized(out.NCols())
				num[col] += c
			}
		}
		var col int
		out, col = out.AddDiv(num, a.Den)
		atomCol[idx] = col
		return col, nil
	}
	// Build lcm*poly - lcm*(capacity+1) >= 0.
	vec := presburger.NewVec(out.NCols())
	for _, t := range poly.Terms {
		coef := t.Coef.Mul(ints.RatInt(lcm))
		if !coef.IsInt() {
			return presburger.BasicSet{}, fmt.Errorf("core: non-integer scaled coefficient %v", coef)
		}
		col := 0
		count := 0
		for j, e := range t.Pow {
			if e > 0 {
				col = j
				count += e
			}
		}
		switch count {
		case 0:
			vec[0] += coef.Int()
		case 1:
			if col < poly.NVar {
				vec = vec.Resized(out.NCols())
				vec[1+col] += coef.Int()
			} else {
				dcol, err := ensureAtom(col - poly.NVar)
				if err != nil {
					return presburger.BasicSet{}, err
				}
				vec = vec.Resized(out.NCols())
				vec[dcol] += coef.Int()
			}
		default:
			return presburger.BasicSet{}, fmt.Errorf("core: non-affine term in affineMissSet")
		}
	}
	vec = vec.Resized(out.NCols())
	vec[0] -= lcm * (capacity + 1)
	return out.AddConstraint(presburger.Constraint{C: vec}), nil
}

// partialEnumeration enumerates the values of the non-affine dimensions and
// counts the remaining affine dimensions symbolically. The enumeration and
// the per-point domain/polynomial specialization are shared by all
// capacities.
func (cc *capacityCounter) partialEnumeration(domain presburger.BasicSet, poly qpoly.QPoly, capacities []int64) ([]int64, error) {
	enumDims := chooseEnumerationDims(poly)
	if len(enumDims) == 0 || len(enumDims) >= domain.NDim() {
		return nil, fmt.Errorf("core: no profitable partial enumeration split")
	}
	enumDomain := projectOnto(domain, enumDims)
	total := make([]int64, len(capacities))
	err := enumDomain.Scan(func(point []int64) error {
		cc.stats.PartialEnumerationPoints++
		boundDomain := domain
		boundPoly := poly
		for i, d := range enumDims {
			boundDomain = boundDomain.FixDim(d, point[i])
			boundPoly = boundPoly.BindVar(d, point[i])
		}
		n, err := cc.countPiece(boundDomain, boundPoly, capacities, false)
		if err != nil {
			return err
		}
		addCounts(total, n)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return total, nil
}

// fullEnumeration walks every point of the piece and evaluates the
// polynomial (the last resort of Algorithm 1). Every point is evaluated once
// and the value classified against all capacities.
func (cc *capacityCounter) fullEnumeration(domain presburger.BasicSet, poly qpoly.QPoly, capacities []int64) ([]int64, error) {
	cc.stats.CountedPieces++
	total := make([]int64, len(capacities))
	err := domain.Scan(func(point []int64) error {
		cc.stats.FullEnumerationPoints++
		v := poly.Eval(point)
		for i, capacity := range capacities {
			if v.Cmp(ints.RatInt(capacity)) > 0 {
				total[i]++
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return total, nil
}

// chooseEnumerationDims greedily selects the dimensions to enumerate: while
// the polynomial restricted to the remaining dimensions is non-affine, the
// dimension involved in the largest number of non-affine terms is added to
// the enumeration set.
func chooseEnumerationDims(poly qpoly.QPoly) []int {
	chosen := map[int]bool{}
	for {
		counts := make(map[int]int)
		nonAffine := false
		for _, t := range poly.Terms {
			deg := 0
			var varsInTerm []int
			for j, e := range t.Pow {
				if e == 0 {
					continue
				}
				vars := columnVars(poly, j)
				free := false
				for _, v := range vars {
					if !chosen[v] {
						free = true
					}
				}
				if free {
					deg += e
					for _, v := range vars {
						if !chosen[v] {
							varsInTerm = append(varsInTerm, v)
						}
					}
				}
			}
			if deg > 1 {
				nonAffine = true
				for _, v := range varsInTerm {
					counts[v]++
				}
			}
		}
		if !nonAffine {
			break
		}
		best, bestCount := -1, -1
		for v, c := range counts {
			if c > bestCount || (c == bestCount && v < best) {
				best, bestCount = v, c
			}
		}
		if best < 0 {
			break
		}
		chosen[best] = true
	}
	out := make([]int, 0, len(chosen))
	for v := range chosen {
		out = append(out, v)
	}
	sortInts(out)
	return out
}

// columnVars returns the variables a power column of the polynomial depends
// on: the variable itself for a variable column, the (transitive) variables
// of the atom argument for an atom column.
func columnVars(poly qpoly.QPoly, col int) []int {
	if col < poly.NVar {
		return []int{col}
	}
	var out []int
	for v := 0; v < poly.NVar; v++ {
		for _, idx := range poly.AtomsDependingOnVar(v) {
			if idx == col-poly.NVar {
				out = append(out, v)
				break
			}
		}
	}
	return out
}

// projectOnto projects the domain onto the selected dimensions (in order) by
// eliminating every other dimension. Dimensions the exact projection cannot
// eliminate are over-approximated instead: the result is only used to
// generate candidate values that are validated against the exact domain, so
// a superset merely wastes a few empty iterations while keeping partial
// enumeration available (the alternative is full enumeration of the piece).
func projectOnto(domain presburger.BasicSet, dims []int) presburger.BasicSet {
	keep := map[int]bool{}
	for _, d := range dims {
		keep[d] = true
	}
	out := domain
	// Eliminate from the highest index so earlier indices stay valid.
	for d := domain.NDim() - 1; d >= 0; d-- {
		if keep[d] {
			continue
		}
		exact, err := out.ProjectOut(d, 1)
		if err != nil {
			exact = out.ProjectOutApprox(d, 1)
		}
		out = exact
	}
	return out
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
