package core

import (
	"fmt"

	"haystack/internal/counting"
	"haystack/internal/ints"
	"haystack/internal/presburger"
	"haystack/internal/qpoly"
)

// capacityCounter implements Algorithm 1 of the paper: it counts, for every
// piece of the stack distance quasi-polynomials, the statement instances
// whose distance exceeds the cache capacity. Affine pieces are counted
// symbolically; non-affine pieces are first simplified by equalization and
// rasterization and finally handled by partial enumeration of their
// non-affine dimensions.
type capacityCounter struct {
	opts  Options
	stats *Stats
}

func newCapacityCounter(opts Options, stats *Stats) *capacityCounter {
	return &capacityCounter{opts: opts, stats: stats}
}

// Count returns the total number of capacity misses for a cache of the given
// capacity (in lines) together with the per-statement breakdown.
func (cc *capacityCounter) Count(distances []StatementDistance, cacheLines int64) (int64, map[string]int64, error) {
	var total int64
	perStmt := map[string]int64{}
	for _, sd := range distances {
		var stmtTotal int64
		for _, piece := range sd.Distance.Pieces {
			n, err := cc.countPiece(piece.Domain, piece.Poly, cacheLines, true)
			if err != nil {
				return 0, nil, fmt.Errorf("core: counting capacity misses of %s: %w", sd.Statement, err)
			}
			stmtTotal += n
		}
		perStmt[sd.Statement] = stmtTotal
		total += stmtTotal
	}
	return total, perStmt, nil
}

// countPiece counts the points of the piece whose stack distance polynomial
// exceeds the capacity. topLevel marks the pieces of the original distance
// set for the statistics (pieces created by the splitting strategies are not
// classified again).
func (cc *capacityCounter) countPiece(domain presburger.BasicSet, poly qpoly.QPoly, capacity int64, topLevel bool) (int64, error) {
	if topLevel {
		if poly.Degree() <= 1 {
			cc.stats.AffinePieces++
		} else {
			cc.stats.NonAffinePieces++
			cc.stats.NonAffineByAffineDims[cc.affineDims(domain, poly)]++
		}
	}
	if poly.Degree() <= 1 {
		return cc.countAffinePiece(domain, poly, capacity)
	}
	// Floor elimination (section 3.3).
	if cc.opts.Equalization {
		if pieces, ok := equalize(domain, poly); ok {
			cc.stats.EqualizationSplits++
			return cc.countSubPieces(pieces, capacity)
		}
	}
	if cc.opts.Rasterization {
		if pieces, ok := rasterize(domain, poly); ok {
			cc.stats.RasterizationSplits++
			return cc.countSubPieces(pieces, capacity)
		}
	}
	// Partial enumeration (section 3.2).
	if cc.opts.PartialEnumeration {
		n, err := cc.partialEnumeration(domain, poly, capacity)
		if err == nil {
			return n, nil
		}
	}
	return cc.fullEnumeration(domain, poly, capacity)
}

func (cc *capacityCounter) countSubPieces(pieces []splitPiece, capacity int64) (int64, error) {
	var total int64
	for _, p := range pieces {
		n, err := cc.countPiece(p.domain, p.poly, capacity, false)
		if err != nil {
			return 0, err
		}
		total += n
	}
	return total, nil
}

// affineDims counts the dimensions of the piece that the polynomial depends
// on at most affinely (the dimensions partial enumeration can keep
// symbolic); used for the Table 1 statistic.
func (cc *capacityCounter) affineDims(domain presburger.BasicSet, poly qpoly.QPoly) int {
	enum := chooseEnumerationDims(poly)
	n := domain.NDim() - len(enum)
	if n < 0 {
		n = 0
	}
	return n
}

// countAffinePiece counts the points of the piece with distance > capacity
// symbolically (countAffinePiece of Algorithm 1).
func (cc *capacityCounter) countAffinePiece(domain presburger.BasicSet, poly qpoly.QPoly, capacity int64) (int64, error) {
	cc.stats.CountedPieces++
	if c, ok := poly.IsConstant(); ok {
		// Constant distance: either every point of the piece misses or none.
		if c.Cmp(ints.RatInt(capacity)) <= 0 {
			return 0, nil
		}
		n, err := counting.CountBasicSet(domain)
		if err != nil {
			return domain.CountByScan()
		}
		return n, nil
	}
	missSet, err := affineMissSet(domain, poly, capacity)
	if err != nil {
		return 0, err
	}
	n, err := counting.CountBasicSet(missSet)
	if err != nil {
		// The symbolic counter could not handle the piece; enumeration of
		// the restricted set stays exact.
		return missSet.CountByScan()
	}
	return n, nil
}

// affineMissSet intersects the domain with the constraint poly > capacity.
// The polynomial must be affine (degree <= 1); its floor atoms become div
// variables of the resulting basic set.
func affineMissSet(domain presburger.BasicSet, poly qpoly.QPoly, capacity int64) (presburger.BasicSet, error) {
	if poly.Degree() > 1 {
		return presburger.BasicSet{}, fmt.Errorf("core: affineMissSet called with degree %d", poly.Degree())
	}
	// Common denominator of the coefficients.
	lcm := int64(1)
	for _, t := range poly.Terms {
		lcm = ints.LCM(lcm, t.Coef.Den())
	}
	out := domain
	// Map atoms of the polynomial to div columns of the basic set.
	atomCol := make([]int, len(poly.Atoms))
	for i := range atomCol {
		atomCol[i] = -1
	}
	var ensureAtom func(idx int) (int, error)
	ensureAtom = func(idx int) (int, error) {
		if atomCol[idx] >= 0 {
			return atomCol[idx], nil
		}
		a := poly.Atoms[idx]
		num := presburger.NewVec(out.NCols())
		for j, c := range a.Num {
			if c == 0 {
				continue
			}
			switch {
			case j == 0:
				num[0] += c
			case j <= poly.NVar:
				num[j] += c
			default:
				col, err := ensureAtom(j - 1 - poly.NVar)
				if err != nil {
					return 0, err
				}
				num = num.Resized(out.NCols())
				num[col] += c
			}
		}
		var col int
		out, col = out.AddDiv(num, a.Den)
		atomCol[idx] = col
		return col, nil
	}
	// Build lcm*poly - lcm*(capacity+1) >= 0.
	vec := presburger.NewVec(out.NCols())
	for _, t := range poly.Terms {
		coef := t.Coef.Mul(ints.RatInt(lcm))
		if !coef.IsInt() {
			return presburger.BasicSet{}, fmt.Errorf("core: non-integer scaled coefficient %v", coef)
		}
		col := 0
		count := 0
		for j, e := range t.Pow {
			if e > 0 {
				col = j
				count += e
			}
		}
		switch count {
		case 0:
			vec[0] += coef.Int()
		case 1:
			if col < poly.NVar {
				vec = vec.Resized(out.NCols())
				vec[1+col] += coef.Int()
			} else {
				dcol, err := ensureAtom(col - poly.NVar)
				if err != nil {
					return presburger.BasicSet{}, err
				}
				vec = vec.Resized(out.NCols())
				vec[dcol] += coef.Int()
			}
		default:
			return presburger.BasicSet{}, fmt.Errorf("core: non-affine term in affineMissSet")
		}
	}
	vec = vec.Resized(out.NCols())
	vec[0] -= lcm * (capacity + 1)
	return out.AddConstraint(presburger.Constraint{C: vec}), nil
}

// partialEnumeration enumerates the values of the non-affine dimensions and
// counts the remaining affine dimensions symbolically.
func (cc *capacityCounter) partialEnumeration(domain presburger.BasicSet, poly qpoly.QPoly, capacity int64) (int64, error) {
	enumDims := chooseEnumerationDims(poly)
	if len(enumDims) == 0 || len(enumDims) >= domain.NDim() {
		return 0, fmt.Errorf("core: no profitable partial enumeration split")
	}
	enumDomain, err := projectOnto(domain, enumDims)
	if err != nil {
		return 0, err
	}
	var total int64
	err = enumDomain.Scan(func(point []int64) error {
		cc.stats.PartialEnumerationPoints++
		boundDomain := domain
		boundPoly := poly
		for i, d := range enumDims {
			boundDomain = boundDomain.FixDim(d, point[i])
			boundPoly = boundPoly.BindVar(d, point[i])
		}
		n, err := cc.countPiece(boundDomain, boundPoly, capacity, false)
		if err != nil {
			return err
		}
		total += n
		return nil
	})
	if err != nil {
		return 0, err
	}
	return total, nil
}

// fullEnumeration walks every point of the piece and evaluates the
// polynomial (the last resort of Algorithm 1).
func (cc *capacityCounter) fullEnumeration(domain presburger.BasicSet, poly qpoly.QPoly, capacity int64) (int64, error) {
	cc.stats.CountedPieces++
	var total int64
	err := domain.Scan(func(point []int64) error {
		cc.stats.FullEnumerationPoints++
		if poly.Eval(point).Cmp(ints.RatInt(capacity)) > 0 {
			total++
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	return total, nil
}

// chooseEnumerationDims greedily selects the dimensions to enumerate: while
// the polynomial restricted to the remaining dimensions is non-affine, the
// dimension involved in the largest number of non-affine terms is added to
// the enumeration set.
func chooseEnumerationDims(poly qpoly.QPoly) []int {
	chosen := map[int]bool{}
	for {
		counts := make(map[int]int)
		nonAffine := false
		for _, t := range poly.Terms {
			deg := 0
			var varsInTerm []int
			for j, e := range t.Pow {
				if e == 0 {
					continue
				}
				vars := columnVars(poly, j)
				free := false
				for _, v := range vars {
					if !chosen[v] {
						free = true
					}
				}
				if free {
					deg += e
					for _, v := range vars {
						if !chosen[v] {
							varsInTerm = append(varsInTerm, v)
						}
					}
				}
			}
			if deg > 1 {
				nonAffine = true
				for _, v := range varsInTerm {
					counts[v]++
				}
			}
		}
		if !nonAffine {
			break
		}
		best, bestCount := -1, -1
		for v, c := range counts {
			if c > bestCount || (c == bestCount && v < best) {
				best, bestCount = v, c
			}
		}
		if best < 0 {
			break
		}
		chosen[best] = true
	}
	out := make([]int, 0, len(chosen))
	for v := range chosen {
		out = append(out, v)
	}
	sortInts(out)
	return out
}

// columnVars returns the variables a power column of the polynomial depends
// on: the variable itself for a variable column, the (transitive) variables
// of the atom argument for an atom column.
func columnVars(poly qpoly.QPoly, col int) []int {
	if col < poly.NVar {
		return []int{col}
	}
	var out []int
	for v := 0; v < poly.NVar; v++ {
		for _, idx := range poly.AtomsDependingOnVar(v) {
			if idx == col-poly.NVar {
				out = append(out, v)
				break
			}
		}
	}
	return out
}

// projectOnto projects the domain onto the selected dimensions (in order) by
// eliminating every other dimension.
func projectOnto(domain presburger.BasicSet, dims []int) (presburger.BasicSet, error) {
	keep := map[int]bool{}
	for _, d := range dims {
		keep[d] = true
	}
	out := domain
	// Eliminate from the highest index so earlier indices stay valid.
	for d := domain.NDim() - 1; d >= 0; d-- {
		if keep[d] {
			continue
		}
		var err error
		out, err = out.ProjectOut(d, 1)
		if err != nil {
			return presburger.BasicSet{}, err
		}
	}
	return out, nil
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
