package core

import (
	"fmt"
	"testing"
	"time"

	"haystack/internal/cachesim"
	"haystack/internal/polybench"
	"haystack/internal/scop"
)

// symbolicOverBudget lists the kernels whose symbolic analysis does not
// terminate within any reasonable per-package test budget on a single core
// today (the triangular solvers with deep dependence chains and the 3-D
// stencil). They are skipped in the symbolic conformance tier with an
// explicit reason — extending the symbolic fragment to cover them is an
// open ROADMAP item — but still cross-checked by TestSimulatorConformance,
// which validates the two independent exact engines against each other for
// every kernel.
var symbolicOverBudget = map[string]bool{
	"cholesky":    true,
	"correlation": true,
	"gramschmidt": true,
	"heat-3d":     true,
	"lu":          true,
	"ludcmp":      true,
	"nussinov":    true,
}

// symbolicMiniSeconds holds measured single-core Analyze durations at MINI
// (dev reference box), used as budget estimates so the suite degrades
// gracefully under small -timeout values instead of blowing the per-package
// deadline. Unlisted kernels default to 30 seconds.
var symbolicMiniSeconds = map[string]float64{
	"2mm": 3, "3mm": 7, "adi": 1, "atax": 1, "bicg": 1, "covariance": 7,
	"deriche": 2, "doitgen": 14, "durbin": 3, "fdtd-2d": 15,
	"floyd-warshall": 27, "gemm": 1, "gemver": 3, "gesummv": 1,
	"jacobi-1d": 2, "jacobi-2d": 14, "mvt": 1, "seidel-2d": 13, "symm": 6,
	"syr2k": 3, "syrk": 1, "trisolv": 12, "trmm": 1,
}

func miniEstimate(name string) time.Duration {
	if s, ok := symbolicMiniSeconds[name]; ok {
		return time.Duration(s * float64(time.Second))
	}
	return 30 * time.Second
}

// requireBudget skips the calling (sub)test when the remaining -timeout
// budget of the test binary is smaller than the estimated need. The
// expensive conformance tiers size themselves to the budget: the default
// 10-minute timeout covers the cheap tiers, the weekly CI full sweep runs
// with a multi-hour timeout and executes everything.
func requireBudget(t *testing.T, need time.Duration) {
	t.Helper()
	deadline, ok := t.Deadline()
	if !ok {
		return
	}
	remaining := time.Until(deadline) - 30*time.Second
	if remaining < need {
		t.Skipf("needs ~%v but only %v of the -timeout budget remains; raise -timeout to run (the weekly CI full sweep does)",
			need.Round(time.Second), remaining.Round(time.Second))
	}
}

// conformanceCheck runs Analyze on the kernel at the size and requires
// bit-identical counts against the exact reference simulation.
func conformanceCheck(t *testing.T, k polybench.Kernel, sz polybench.Size, cfg Config) {
	t.Helper()
	prog := k.Build(sz)
	res, err := Analyze(prog, cfg, DefaultOptions())
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	ref, err := SimulateReference(prog, cfg)
	if err != nil {
		t.Fatalf("SimulateReference: %v", err)
	}
	if res.UsedTraceFallback {
		t.Logf("symbolic pipeline fell back to trace profiling: %s", res.FallbackReason)
	}
	if res.TotalAccesses != ref.TotalAccesses {
		t.Errorf("total accesses: model %d, reference %d", res.TotalAccesses, ref.TotalAccesses)
	}
	if res.CompulsoryMisses != ref.CompulsoryMisses {
		t.Errorf("compulsory misses: model %d, reference %d", res.CompulsoryMisses, ref.CompulsoryMisses)
	}
	for l, lvl := range res.Levels {
		if lvl.TotalMisses != ref.TotalMisses[l] {
			t.Errorf("L%d total misses: model %d, reference %d", l+1, lvl.TotalMisses, ref.TotalMisses[l])
		}
	}
}

// TestPolyBenchConformance cross-checks the analytical model against the
// exact reference simulation for every registered PolyBench kernel: total
// accesses, compulsory misses, and the total misses of every cache level of
// the default hierarchy (fully associative LRU, the configuration the model
// is defined for) must be bit-identical.
//
// Tiers: MINI for every kernel; without -short the sweep extends to SMALL.
// Kernels in symbolicOverBudget are skipped with an explicit reason (they
// are covered by TestSimulatorConformance instead), and each subtest first
// checks the remaining -timeout budget so the suite adapts to the
// environment instead of dying at the per-package deadline.
func TestPolyBenchConformance(t *testing.T) {
	cfg := DefaultConfig()
	sizes := []polybench.Size{polybench.Mini}
	if !testing.Short() {
		sizes = append(sizes, polybench.Small)
	}
	for _, sz := range sizes {
		for _, k := range polybench.Kernels() {
			k, sz := k, sz
			t.Run(fmt.Sprintf("%s/%s", k.Name, sz), func(t *testing.T) {
				if symbolicOverBudget[k.Name] {
					t.Skipf("symbolic analysis of %s exceeds the test budget (open coverage item, see ROADMAP.md); covered by TestSimulatorConformance", k.Name)
				}
				// The 3x headroom keeps the suite safe under the race
				// detector's slowdown; SMALL costs a large multiple of MINI
				// for the slower kernels.
				est := 3 * miniEstimate(k.Name)
				if sz == polybench.Small {
					est = 25 * miniEstimate(k.Name)
				}
				requireBudget(t, est)
				conformanceCheck(t, k, sz, cfg)
			})
		}
	}
}

// TestSimulatorConformance cross-validates the two independent exact
// engines on every registered kernel: the stack distance profiler behind
// SimulateReference and the set-based trace-driven simulator
// (internal/cachesim) configured as a fully associative LRU cache over the
// same padded layout must report identical miss counts per capacity. This
// tier is cheap (trace replay), so it covers all kernels — including the
// ones whose symbolic analysis is still out of budget.
func TestSimulatorConformance(t *testing.T) {
	cfg := DefaultConfig()
	sizes := []polybench.Size{polybench.Mini}
	if !testing.Short() {
		sizes = append(sizes, polybench.Small)
	}
	for _, sz := range sizes {
		for _, k := range polybench.Kernels() {
			k, sz := k, sz
			t.Run(fmt.Sprintf("%s/%s", k.Name, sz), func(t *testing.T) {
				requireBudget(t, 20*time.Second)
				prog := k.Build(sz)
				ref, err := SimulateReference(prog, cfg)
				if err != nil {
					t.Fatalf("SimulateReference: %v", err)
				}
				layout := scop.NewLayout(prog, scop.LayoutPadded, cfg.LineSize)
				cp, err := scop.Compile(prog, layout)
				if err != nil {
					t.Fatalf("Compile: %v", err)
				}
				for l, size := range cfg.CacheSizes {
					// One fully associative LRU level observing the full
					// stream, matching the model's per-level semantics.
					simRes, err := cachesim.Simulate(cp, cachesim.Config{
						LineSize: cfg.LineSize,
						Levels:   []cachesim.LevelConfig{{Name: "L", SizeBytes: size, Ways: 0, Policy: cachesim.LRU}},
					})
					if err != nil {
						t.Fatalf("Simulate: %v", err)
					}
					if simRes.TotalAccesses != ref.TotalAccesses {
						t.Errorf("L%d: simulator saw %d accesses, profiler %d", l+1, simRes.TotalAccesses, ref.TotalAccesses)
					}
					if simRes.Levels[0].Misses != ref.TotalMisses[l] {
						t.Errorf("L%d: simulator misses %d, profiler %d", l+1, simRes.Levels[0].Misses, ref.TotalMisses[l])
					}
					if simRes.Levels[0].Compulsory != ref.CompulsoryMisses {
						t.Errorf("L%d: simulator compulsory %d, profiler %d", l+1, simRes.Levels[0].Compulsory, ref.CompulsoryMisses)
					}
				}
			})
		}
	}
}
