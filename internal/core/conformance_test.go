package core

import (
	"fmt"
	"testing"
	"time"

	"haystack/internal/budget"
	"haystack/internal/cachesim"
	"haystack/internal/polybench"
	"haystack/internal/scop"
)

// symbolicOverBudget lists the kernels whose symbolic analysis does not
// terminate within any reasonable per-package test budget on a single core.
// It is empty: the domain-partitioned lexmin, the fan-out-minimizing
// summation order of the counting engine, and the context simplification
// (gist) closed the last seven holdouts (the triangular solvers and the 3-D
// stencil). TestSymbolicCoverageComplete fails the build if an entry ever
// reappears, so a symbolic regression cannot silently hide behind a skip.
var symbolicOverBudget = map[string]bool{}

// symbolicMiniSeconds holds measured single-core Analyze durations at MINI
// (dev reference box), used as budget estimates so the suite degrades
// gracefully under small -timeout values instead of blowing the per-package
// deadline. Unlisted kernels default to 30 seconds.
var symbolicMiniSeconds = map[string]float64{
	"2mm": 1, "3mm": 1, "adi": 1, "atax": 1, "bicg": 1, "cholesky": 11,
	"correlation": 4, "covariance": 2, "deriche": 1, "doitgen": 3,
	"durbin": 2, "fdtd-2d": 3, "floyd-warshall": 9, "gemm": 1,
	"gemver": 1, "gesummv": 1, "gramschmidt": 1, "heat-3d": 18,
	"jacobi-1d": 1, "jacobi-2d": 4, "lu": 7, "ludcmp": 12, "mvt": 1,
	"nussinov": 6, "seidel-2d": 6, "symm": 3, "syr2k": 1, "syrk": 1,
	"trisolv": 1, "trmm": 1,
}

func miniEstimate(name string) time.Duration {
	if s, ok := symbolicMiniSeconds[name]; ok {
		return time.Duration(s * float64(time.Second))
	}
	return 30 * time.Second
}

// budgetSlack is the safety margin kept unspent when comparing an estimate
// against the remaining -timeout budget.
const budgetSlack = 30 * time.Second

// budgetAllows decides whether a test that needs roughly `need` of wall
// clock may start, given the binary's deadline as reported by t.Deadline().
// A test binary without a deadline (-timeout 0, or a caller that disabled
// it) grants every request — no budget means nothing to degrade against.
// The deadline arithmetic itself lives in budget.TimeAllows (shared with the
// analysis pipeline); this adapter reports the pre-step remaining budget for
// the skip message.
func budgetAllows(need time.Duration, deadline time.Time, hasDeadline bool, now time.Time) (time.Duration, bool) {
	left, ok := budget.TimeAllows(need, deadline, hasDeadline, now, budgetSlack)
	if !hasDeadline {
		return 0, ok
	}
	return left + need, ok
}

// requireBudget skips the calling (sub)test when the remaining -timeout
// budget of the test binary is smaller than the estimated need. The
// expensive conformance tiers size themselves to the budget: the default
// 10-minute timeout covers the cheap tiers, the weekly CI full sweep runs
// with a multi-hour timeout and executes everything. Without -timeout there
// is no deadline and nothing is skipped.
func requireBudget(t *testing.T, need time.Duration) {
	t.Helper()
	deadline, ok := t.Deadline()
	if remaining, allowed := budgetAllows(need, deadline, ok, time.Now()); !allowed {
		t.Skipf("needs ~%v but only %v of the -timeout budget remains; raise -timeout to run (the weekly CI full sweep does)",
			need.Round(time.Second), remaining.Round(time.Second))
	}
}

// TestSymbolicCoverageComplete is the regression guard for the headline
// coverage claim: every registered PolyBench kernel must run the symbolic
// tier. Growing symbolicOverBudget again — skipping a kernel — fails the
// build instead of quietly shrinking coverage.
func TestSymbolicCoverageComplete(t *testing.T) {
	if len(symbolicOverBudget) != 0 {
		names := make([]string, 0, len(symbolicOverBudget))
		for name := range symbolicOverBudget {
			names = append(names, name)
		}
		t.Fatalf("symbolicOverBudget must stay empty (30/30 symbolic coverage); found %v", names)
	}
}

// traceFallbackAllowed lists the kernels whose symbolic pipeline is known
// to leave the supported fragment and answer from the exact trace profile
// instead (results stay exact). Only adi does: its lexmin hits a projection
// the fragment cannot express. Every other kernel asserting fallback is a
// symbolic regression — counts would still match the reference, so without
// this assertion the 30/30 symbolic coverage claim could silently void.
var traceFallbackAllowed = map[string]bool{"adi": true}

// conformanceCheck runs Analyze on the kernel at the size and requires
// bit-identical counts against the exact reference simulation.
func conformanceCheck(t *testing.T, k polybench.Kernel, sz polybench.Size, cfg Config) {
	t.Helper()
	prog := k.Build(sz)
	res, err := Analyze(prog, cfg, DefaultOptions())
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	ref, err := SimulateReference(prog, cfg)
	if err != nil {
		t.Fatalf("SimulateReference: %v", err)
	}
	if res.UsedTraceFallback {
		if !traceFallbackAllowed[k.Name] {
			t.Errorf("symbolic pipeline regressed to trace fallback: %s", res.FallbackReason)
		} else {
			t.Logf("symbolic pipeline fell back to trace profiling: %s", res.FallbackReason)
		}
	}
	if res.TotalAccesses != ref.TotalAccesses {
		t.Errorf("total accesses: model %d, reference %d", res.TotalAccesses, ref.TotalAccesses)
	}
	if res.CompulsoryMisses != ref.CompulsoryMisses {
		t.Errorf("compulsory misses: model %d, reference %d", res.CompulsoryMisses, ref.CompulsoryMisses)
	}
	for l, lvl := range res.Levels {
		if lvl.TotalMisses != ref.TotalMisses[l] {
			t.Errorf("L%d total misses: model %d, reference %d", l+1, lvl.TotalMisses, ref.TotalMisses[l])
		}
	}
}

// TestPolyBenchConformance cross-checks the analytical model against the
// exact reference simulation for every registered PolyBench kernel: total
// accesses, compulsory misses, and the total misses of every cache level of
// the default hierarchy (fully associative LRU, the configuration the model
// is defined for) must be bit-identical.
//
// Tiers: MINI for every kernel; without -short the sweep extends to SMALL.
// Kernels in symbolicOverBudget are skipped with an explicit reason (they
// are covered by TestSimulatorConformance instead), and each subtest first
// checks the remaining -timeout budget so the suite adapts to the
// environment instead of dying at the per-package deadline.
func TestPolyBenchConformance(t *testing.T) {
	cfg := DefaultConfig()
	sizes := []polybench.Size{polybench.Mini}
	if !testing.Short() {
		sizes = append(sizes, polybench.Small)
	}
	for _, sz := range sizes {
		for _, k := range polybench.Kernels() {
			k, sz := k, sz
			t.Run(fmt.Sprintf("%s/%s", k.Name, sz), func(t *testing.T) {
				if symbolicOverBudget[k.Name] {
					t.Skipf("symbolic analysis of %s exceeds the test budget; covered by TestSimulatorConformance", k.Name)
				}
				// The 3x headroom keeps the suite safe under the race
				// detector's slowdown; SMALL costs a large multiple of MINI
				// for the slower kernels.
				est := 3 * miniEstimate(k.Name)
				if sz == polybench.Small {
					est = 25 * miniEstimate(k.Name)
				}
				requireBudget(t, est)
				conformanceCheck(t, k, sz, cfg)
			})
		}
	}
}

// TestSimulatorConformance cross-validates the two independent exact
// engines on every registered kernel: the stack distance profiler behind
// SimulateReference and the set-based trace-driven simulator
// (internal/cachesim) configured as a fully associative LRU cache over the
// same padded layout must report identical miss counts per capacity. This
// tier is cheap (trace replay), so it covers all kernels — including the
// ones whose symbolic analysis is still out of budget.
func TestSimulatorConformance(t *testing.T) {
	cfg := DefaultConfig()
	sizes := []polybench.Size{polybench.Mini}
	if !testing.Short() {
		sizes = append(sizes, polybench.Small)
	}
	for _, sz := range sizes {
		for _, k := range polybench.Kernels() {
			k, sz := k, sz
			t.Run(fmt.Sprintf("%s/%s", k.Name, sz), func(t *testing.T) {
				requireBudget(t, 20*time.Second)
				prog := k.Build(sz)
				ref, err := SimulateReference(prog, cfg)
				if err != nil {
					t.Fatalf("SimulateReference: %v", err)
				}
				layout := scop.NewLayout(prog, scop.LayoutPadded, cfg.LineSize)
				cp, err := scop.Compile(prog, layout)
				if err != nil {
					t.Fatalf("Compile: %v", err)
				}
				for l, size := range cfg.CacheSizes {
					// One fully associative LRU level observing the full
					// stream, matching the model's per-level semantics.
					simRes, err := cachesim.Simulate(cp, cachesim.Config{
						LineSize: cfg.LineSize,
						Levels:   []cachesim.LevelConfig{{Name: "L", SizeBytes: size, Ways: 0, Policy: cachesim.LRU}},
					})
					if err != nil {
						t.Fatalf("Simulate: %v", err)
					}
					if simRes.TotalAccesses != ref.TotalAccesses {
						t.Errorf("L%d: simulator saw %d accesses, profiler %d", l+1, simRes.TotalAccesses, ref.TotalAccesses)
					}
					if simRes.Levels[0].Misses != ref.TotalMisses[l] {
						t.Errorf("L%d: simulator misses %d, profiler %d", l+1, simRes.Levels[0].Misses, ref.TotalMisses[l])
					}
					if simRes.Levels[0].Compulsory != ref.CompulsoryMisses {
						t.Errorf("L%d: simulator compulsory %d, profiler %d", l+1, simRes.Levels[0].Compulsory, ref.CompulsoryMisses)
					}
				}
			})
		}
	}
}
