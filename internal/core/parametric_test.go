package core

import (
	"errors"
	"sync"
	"testing"
	"time"

	"haystack/internal/polybench"
	"haystack/internal/scop"
)

// Parametric models are expensive to build (minutes for jacobi-2d on one
// core), so the differential tests share one model per kernel.
var (
	pmCacheMu sync.Mutex
	pmCache   = map[string]*ParametricModel{}
)

func sharedParametricModel(t *testing.T, pk polybench.ParametricKernel, lineSize int64) *ParametricModel {
	t.Helper()
	pmCacheMu.Lock()
	defer pmCacheMu.Unlock()
	if pm, ok := pmCache[pk.Name]; ok && pm.LineSize == lineSize {
		return pm
	}
	pm, err := ComputeParametricModel(pk.Build(), lineSize, DefaultOptions())
	if err != nil {
		t.Fatalf("ComputeParametricModel(%s): %v", pk.Name, err)
	}
	pmCache[pk.Name] = pm
	return pm
}

// parametricBudget estimates the single-core cost of a kernel's
// differential run (model construction plus per-size concrete analyses),
// for requireBudget gating.
func parametricBudget(name string) time.Duration {
	switch name {
	case "jacobi-2d":
		// ~3 min model + minutes of concrete jacobi-2d analyses.
		return 15 * time.Minute
	default:
		return 2 * time.Minute
	}
}

// tinyParametric is a two-loop vector kernel with one symbolic size: small
// enough for exhaustive cross-checks at many parameter values.
func tinyParametric() *scop.Program {
	p := scop.NewProgram("tiny")
	n := p.NewParam("N")
	A := p.NewArrayP("A", scop.ElemFloat64, scop.X(n))
	i, j := scop.V("i"), scop.V("j")
	p.Add(
		scop.For(i, scop.C(0), scop.X(n),
			scop.Stmt("S0", scop.Read(A, scop.X(i)))),
		scop.For(j, scop.C(0), scop.X(n),
			scop.Stmt("S1", scop.Read(A, scop.X(j)))),
	)
	return p
}

// requireSameResult asserts that two analysis results agree on every modeled
// count (totals, compulsory, per-level misses, and the per-statement
// breakdowns where both sides have them).
func requireSameResult(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if got.TotalAccesses != want.TotalAccesses {
		t.Errorf("%s: total accesses %d, want %d", label, got.TotalAccesses, want.TotalAccesses)
	}
	if got.CompulsoryMisses != want.CompulsoryMisses {
		t.Errorf("%s: compulsory misses %d, want %d", label, got.CompulsoryMisses, want.CompulsoryMisses)
	}
	if len(got.Levels) != len(want.Levels) {
		t.Fatalf("%s: %d levels, want %d", label, len(got.Levels), len(want.Levels))
	}
	for l := range got.Levels {
		if got.Levels[l].CapacityMisses != want.Levels[l].CapacityMisses {
			t.Errorf("%s: L%d capacity misses %d, want %d", label, l+1, got.Levels[l].CapacityMisses, want.Levels[l].CapacityMisses)
		}
		if got.Levels[l].TotalMisses != want.Levels[l].TotalMisses {
			t.Errorf("%s: L%d total misses %d, want %d", label, l+1, got.Levels[l].TotalMisses, want.Levels[l].TotalMisses)
		}
		if got.Levels[l].PerStatementCapacity != nil && want.Levels[l].PerStatementCapacity != nil {
			for stmt, n := range want.Levels[l].PerStatementCapacity {
				if got.Levels[l].PerStatementCapacity[stmt] != n {
					t.Errorf("%s: L%d capacity misses of %s: %d, want %d",
						label, l+1, stmt, got.Levels[l].PerStatementCapacity[stmt], n)
				}
			}
		}
	}
	if got.PerStatementCompulsory != nil && want.PerStatementCompulsory != nil {
		for stmt, n := range want.PerStatementCompulsory {
			if got.PerStatementCompulsory[stmt] != n {
				t.Errorf("%s: compulsory misses of %s: %d, want %d", label, stmt, got.PerStatementCompulsory[stmt], n)
			}
		}
	}
}

// TestTinyParametricAgainstSimulation validates the full parametric pipeline
// on the tiny kernel against the exact reference simulation across many
// sizes, including degenerate ones.
func TestTinyParametricAgainstSimulation(t *testing.T) {
	prog := tinyParametric()
	pm, err := ComputeParametricModel(prog, 64, DefaultOptions())
	if err != nil {
		t.Fatalf("ComputeParametricModel: %v", err)
	}
	cfg := Config{LineSize: 64, CacheSizes: []int64{1024, 32 * 1024}}
	for _, n := range []int64{1, 2, 7, 8, 9, 63, 64, 65, 100, 1000} {
		bindings := map[string]int64{"N": n}
		res, err := pm.Eval(cfg, bindings)
		if err != nil {
			t.Fatalf("Eval N=%d: %v", n, err)
		}
		inst, err := prog.Instantiate(bindings)
		if err != nil {
			t.Fatalf("Instantiate N=%d: %v", n, err)
		}
		ref, err := SimulateReference(inst, cfg)
		if err != nil {
			t.Fatalf("SimulateReference N=%d: %v", n, err)
		}
		if res.TotalAccesses != ref.TotalAccesses || res.CompulsoryMisses != ref.CompulsoryMisses {
			t.Errorf("N=%d: accesses/compulsory %d/%d, reference %d/%d",
				n, res.TotalAccesses, res.CompulsoryMisses, ref.TotalAccesses, ref.CompulsoryMisses)
		}
		for l := range cfg.CacheSizes {
			if res.Levels[l].TotalMisses != ref.TotalMisses[l] {
				t.Errorf("N=%d L%d: total misses %d, reference %d", n, l+1, res.Levels[l].TotalMisses, ref.TotalMisses[l])
			}
		}
	}
}

// parametricKernelsUnderTest returns the parametric kernels the differential
// tests cover: the cheap ones in every mode, all of them when the -timeout
// budget allows (the jacobi-2d model alone takes minutes of symbolic
// analysis on one core; its subtests gate on requireBudget).
func parametricKernelsUnderTest(t *testing.T) []polybench.ParametricKernel {
	var out []polybench.ParametricKernel
	for _, pk := range polybench.ParametricKernels() {
		if testing.Short() && pk.Name == "jacobi-2d" {
			continue
		}
		out = append(out, pk)
	}
	if len(out) == 0 {
		t.Fatal("no parametric kernels registered")
	}
	return out
}

// TestParametricEvalMatchesAnalyze is the parametric differential suite: for
// every parametric PolyBench kernel, one ComputeParametricModel evaluated at
// the standard sizes must be bit-identical to a concrete Analyze of the
// registry kernel at that size. MINI and SMALL are covered in every mode
// (the parametric model is shared across the sizes, so the marginal cost per
// size is small).
func TestParametricEvalMatchesAnalyze(t *testing.T) {
	cfg := DefaultConfig()
	for _, pk := range parametricKernelsUnderTest(t) {
		pk := pk
		t.Run(pk.Name, func(t *testing.T) {
			requireBudget(t, parametricBudget(pk.Name))
			ck, ok := polybench.ByName(pk.Name)
			if !ok {
				t.Fatalf("no concrete kernel %s", pk.Name)
			}
			pm := sharedParametricModel(t, pk, cfg.LineSize)
			t.Logf("%d distance pieces: %d parametric, %d residual",
				pm.DistancePieces(), pm.ParametricPieces(), pm.ResidualPieces())
			for _, sz := range []polybench.Size{polybench.Mini, polybench.Small} {
				res, err := pm.Eval(cfg, pk.Bindings(sz))
				if err != nil {
					t.Fatalf("Eval %v: %v", sz, err)
				}
				want, err := Analyze(ck.Build(sz), cfg, DefaultOptions())
				if err != nil {
					t.Fatalf("Analyze %v: %v", sz, err)
				}
				if want.UsedTraceFallback {
					t.Fatalf("concrete analysis of %s fell back to tracing (%s); the differential is vacuous", pk.Name, want.FallbackReason)
				}
				requireSameResult(t, sz.String(), res, want)
			}
		})
	}
}

// TestParametricBindMatchesComputeDistances checks the second instantiation
// path: Bind must produce a DistanceModel whose CountMisses results are
// bit-identical to a fresh ComputeDistances of the instantiated program, for
// MINI and SMALL.
func TestParametricBindMatchesComputeDistances(t *testing.T) {
	cfg := DefaultConfig()
	for _, pk := range parametricKernelsUnderTest(t) {
		pk := pk
		t.Run(pk.Name, func(t *testing.T) {
			requireBudget(t, parametricBudget(pk.Name))
			prog := pk.Build()
			pm := sharedParametricModel(t, pk, cfg.LineSize)
			sizes := []polybench.Size{polybench.Mini}
			if !testing.Short() {
				sizes = append(sizes, polybench.Small)
			}
			for _, sz := range sizes {
				bindings := pk.Bindings(sz)
				dm, err := pm.Bind(bindings)
				if err != nil {
					t.Fatalf("Bind %v: %v", sz, err)
				}
				inst, err := prog.Instantiate(bindings)
				if err != nil {
					t.Fatalf("Instantiate %v: %v", sz, err)
				}
				want, err := ComputeDistances(inst, cfg.LineSize, DefaultOptions())
				if err != nil {
					t.Fatalf("ComputeDistances %v: %v", sz, err)
				}
				gotRes, err := dm.CountMisses(cfg)
				if err != nil {
					t.Fatalf("bound CountMisses %v: %v", sz, err)
				}
				wantRes, err := want.CountMisses(cfg)
				if err != nil {
					t.Fatalf("fresh CountMisses %v: %v", sz, err)
				}
				if wantRes.UsedTraceFallback || gotRes.UsedTraceFallback {
					t.Fatalf("trace fallback in differential (bound=%v fresh=%v)", gotRes.UsedTraceFallback, wantRes.UsedTraceFallback)
				}
				requireSameResult(t, sz.String(), gotRes, wantRes)
			}
		})
	}
}

// TestParametricModelValidation covers the error paths of the parametric
// entry points: missing/unknown parameters, context violations, line size
// mismatches, and the guard that keeps parametric programs out of the
// concrete pipeline.
func TestParametricModelValidation(t *testing.T) {
	prog := tinyParametric()
	if _, err := ComputeDistances(prog, 64, DefaultOptions()); err == nil {
		t.Error("ComputeDistances accepted a parametric program")
	}
	if _, err := Analyze(prog, DefaultConfig(), DefaultOptions()); err == nil {
		t.Error("Analyze accepted a parametric program")
	}
	pm, err := ComputeParametricModel(prog, 64, DefaultOptions())
	if err != nil {
		t.Fatalf("ComputeParametricModel: %v", err)
	}
	cfg := Config{LineSize: 64, CacheSizes: []int64{1024}}
	if _, err := pm.Eval(cfg, map[string]int64{}); err == nil {
		t.Error("Eval accepted an empty binding")
	}
	if _, err := pm.Eval(cfg, map[string]int64{"N": 4, "M": 1}); err == nil {
		t.Error("Eval accepted an unknown parameter")
	}
	if _, err := pm.Eval(cfg, map[string]int64{"N": 0}); err == nil {
		t.Error("Eval accepted a binding violating the context N >= 1")
	}
	if _, err := pm.Eval(Config{LineSize: 32, CacheSizes: []int64{1024}}, map[string]int64{"N": 4}); err == nil {
		t.Error("Eval accepted a mismatched line size")
	}
	if _, err := ComputeParametricModel(gemm(8), 64, DefaultOptions()); err == nil {
		t.Error("ComputeParametricModel accepted a non-parametric program")
	}
	// ErrNonParametric is a typed, wrappable error.
	if !errors.Is(nonParametric("stage", errors.New("boom")), ErrNonParametric) {
		t.Error("nonParametric does not wrap ErrNonParametric")
	}
}
