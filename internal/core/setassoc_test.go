package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"haystack/internal/polybench"
	"haystack/internal/scop"
)

// setAssocTestConfig is the small set-associative hierarchy the conformance
// tier runs: an 8-line L1 split 2 ways of 4 (2 sets) and a 32-line L2 split
// 4 ways of 8 (4 sets). Small set counts keep the per-set fan-out cheap
// while still exercising residue partitioning, per-set classification, and
// the set-order fold on every kernel.
func setAssocTestConfig() Config {
	return Config{LineSize: 64, CacheSizes: []int64{512, 2048}, Ways: []int{4, 8}}
}

// setAssocCheck requires the analytical set-associative counts to be
// bit-identical to the reference simulation (independent per-level LRU
// caches with the same geometry over the same padded layout).
func setAssocCheck(t *testing.T, prog *scop.Program, cfg Config, opts Options) *Result {
	t.Helper()
	res, err := Analyze(prog, cfg, opts)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	ref, err := SimulateSetAssocReference(prog, cfg)
	if err != nil {
		t.Fatalf("SimulateSetAssocReference: %v", err)
	}
	if res.TotalAccesses != ref.TotalAccesses {
		t.Errorf("total accesses: model %d, reference %d", res.TotalAccesses, ref.TotalAccesses)
	}
	if res.CompulsoryMisses != ref.CompulsoryMisses {
		t.Errorf("compulsory misses: model %d, reference %d", res.CompulsoryMisses, ref.CompulsoryMisses)
	}
	for l, lvl := range res.Levels {
		if lvl.TotalMisses != ref.TotalMisses[l] {
			t.Errorf("L%d total misses: model %d, reference %d", l+1, lvl.TotalMisses, ref.TotalMisses[l])
		}
	}
	return res
}

// saMiniSeconds holds measured single-core set-associative Analyze
// durations at MINI under setAssocTestConfig (dev reference box). The cost
// is NOT a multiple of the fully associative symbolic time: the per-set
// re-count scales with the residue-striped card bags, and the rasterized
// classification scales with instances x bag size, so instance-heavy
// kernels (floyd-warshall, heat-3d) dominate regardless of their symbolic
// cost. Unlisted kernels default to 120 seconds.
var saMiniSeconds = map[string]float64{
	"2mm": 3, "3mm": 5, "adi": 1, "atax": 1, "bicg": 1, "cholesky": 8,
	"correlation": 9, "covariance": 8, "deriche": 4, "doitgen": 8,
	"durbin": 3, "fdtd-2d": 12, "floyd-warshall": 101, "gemm": 2,
	"gemver": 3, "gesummv": 1, "gramschmidt": 3, "heat-3d": 161,
	"jacobi-1d": 2, "jacobi-2d": 20, "lu": 14, "ludcmp": 23, "mvt": 1,
	"nussinov": 13, "seidel-2d": 28, "symm": 7, "syr2k": 5, "syrk": 2,
	"trisolv": 1, "trmm": 2,
}

func saMiniEstimate(name string) time.Duration {
	if s, ok := saMiniSeconds[name]; ok {
		return time.Duration(s * float64(time.Second))
	}
	return 120 * time.Second
}

// TestSetAssocConformance cross-validates the set-associative analytical
// tier against the exact reference simulation for every registered
// PolyBench kernel at MINI: per-level total misses, compulsory misses, and
// total accesses must be bit-identical for a genuinely set-associative
// hierarchy. Kernels answer through the symbolic pipeline except the known
// trace-fallback holdout (adi), whose set-associative answers come from the
// simulation rung of the fallback and stay exact. The full sweep takes
// ~7.5 minutes single-core; each subtest sizes itself to the remaining
// -timeout budget, so short timeouts run the cheap kernels and skip the
// rest (the CI set-associative tier pins a fast subset, the full sweep
// runs with a generous timeout).
func TestSetAssocConformance(t *testing.T) {
	cfg := setAssocTestConfig()
	for _, k := range polybench.Kernels() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			// 3x the measured estimate keeps the suite safe under the race
			// detector's slowdown.
			requireBudget(t, 3*saMiniEstimate(k.Name))
			prog := k.Build(polybench.Mini)
			res := setAssocCheck(t, prog, cfg, DefaultOptions())
			if res.UsedTraceFallback && !traceFallbackAllowed[k.Name] {
				t.Errorf("symbolic pipeline regressed to trace fallback: %s", res.FallbackReason)
			}
			if !res.UsedTraceFallback {
				if len(res.Stats.SetAssoc) != 2 {
					t.Fatalf("Stats.SetAssoc has %d entries, want 2 (both levels are set-associative)", len(res.Stats.SetAssoc))
				}
				for i, want := range []int64{2, 4} {
					if sa := res.Stats.SetAssoc[i]; sa.Sets != want || len(sa.SetPieces) != int(want) {
						t.Errorf("Stats.SetAssoc[%d] = %+v, want %d sets with per-set piece counts", i, sa, want)
					}
				}
			}
		})
	}
}

// TestSetAssocDegenerateWaysEqualLines pins the degenerate geometry: when
// the way count equals the number of lines, a set-associative cache has one
// set and IS the fully associative cache, and the analytical pipeline must
// route through the classic counter and reproduce the fully associative
// result bit-for-bit — counts, per-statement breakdowns, and every
// deterministic Stats counter.
func TestSetAssocDegenerateWaysEqualLines(t *testing.T) {
	prog := gemm(12)
	cfg := Config{LineSize: 64, CacheSizes: []int64{512, 2048}}
	opts := DefaultOptions()
	opts.Parallelism = 2
	want, err := Analyze(prog, cfg, opts)
	if err != nil {
		t.Fatalf("fully associative analyze: %v", err)
	}
	cfgSA := cfg
	cfgSA.Ways = []int{8, 32} // == lines per level: one set each
	got, err := Analyze(prog, cfgSA, opts)
	if err != nil {
		t.Fatalf("ways==lines analyze: %v", err)
	}
	compareResults(t, "ways==lines", got, want)
	if len(got.Stats.SetAssoc) != 0 {
		t.Errorf("one-set levels must not report SetAssoc stats, got %+v", got.Stats.SetAssoc)
	}
}

// TestSetAssocZeroWaysIsFullyAssociative pins the compatibility contract:
// Ways of zero (or an absent Ways slice) means fully associative, and a
// config spelling that out explicitly must reproduce the existing result
// byte-for-byte, so pre-set-associativity golden counts stay valid.
func TestSetAssocZeroWaysIsFullyAssociative(t *testing.T) {
	prog := gemm(12)
	opts := DefaultOptions()
	want, err := Analyze(prog, Config{LineSize: 64, CacheSizes: []int64{512, 2048}}, opts)
	if err != nil {
		t.Fatalf("analyze without Ways: %v", err)
	}
	got, err := Analyze(prog, Config{LineSize: 64, CacheSizes: []int64{512, 2048}, Ways: []int{0, 0}}, opts)
	if err != nil {
		t.Fatalf("analyze with zero Ways: %v", err)
	}
	compareResults(t, "zero ways", got, want)
}

// compareResults requires two analysis results to be bit-identical up to
// the scheduling- and timing-dependent observability fields.
func compareResults(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if got.TotalAccesses != want.TotalAccesses || got.CompulsoryMisses != want.CompulsoryMisses {
		t.Errorf("%s: accesses/compulsory differ: got %d/%d, want %d/%d",
			label, got.TotalAccesses, got.CompulsoryMisses, want.TotalAccesses, want.CompulsoryMisses)
	}
	if !reflect.DeepEqual(got.Levels, want.Levels) {
		t.Errorf("%s: levels differ:\ngot  %+v\nwant %+v", label, got.Levels, want.Levels)
	}
	if !reflect.DeepEqual(counterStats(got.Stats), counterStats(want.Stats)) {
		t.Errorf("%s: deterministic stats differ:\ngot  %+v\nwant %+v",
			label, counterStats(got.Stats), counterStats(want.Stats))
	}
}

// randomAffineNest generates a small affine loop nest from the seeded
// source: one or two loops, one or two statements, mixed 1-D and 2-D
// accesses with small offsets, skewed and transposed subscripts. The shapes
// mirror the patterns that stress set partitioning — row-major walks,
// transposes (which stripe sets by row parity), and single-line hotspots.
func randomAffineNest(r *rand.Rand, id int) *scop.Program {
	n := 8 + r.Int63n(13) // 8..20
	p := scop.NewProgram(fmt.Sprintf("rand%d", id))
	a2 := p.NewArray("A", scop.ElemFloat64, n+2, n+2)
	b1 := p.NewArray("B", scop.ElemFloat64, 3*n+4)
	i, j := scop.V("i"), scop.V("j")
	xi, xj := scop.X(i), scop.X(j)
	// Subscripts stay unit-coefficient (the counting fragment's
	// Fourier-Motzkin eliminator): transposes, skews, and offsets.
	idx2 := []scop.Expr{xi, xj, xi.Plus(scop.C(1)), xj.Plus(scop.C(1))}
	idx1 := []scop.Expr{xi, xj, xi.Plus(xj), xj.Plus(scop.C(2)), xi.Plus(xj).Plus(scop.C(1))}
	// The statement after the inner loop sees only i in scope.
	idx2o := []scop.Expr{xi, xi.Plus(scop.C(1))}
	idx1o := []scop.Expr{xi, xi.Plus(scop.C(2))}
	pick := func(exprs []scop.Expr) scop.Expr { return exprs[r.Intn(len(exprs))] }
	stmt := func(name string, e2, e1 []scop.Expr) *scop.Statement {
		var accs []scop.Access
		for na := 1 + r.Intn(2); na > 0; na-- {
			if r.Intn(2) == 0 {
				accs = append(accs, scop.Read(a2, pick(e2), pick(e2)))
			} else {
				accs = append(accs, scop.Read(b1, pick(e1)))
			}
		}
		if r.Intn(2) == 0 {
			accs = append(accs, scop.Write(a2, pick(e2), pick(e2)))
		} else {
			accs = append(accs, scop.Write(b1, pick(e1)))
		}
		return scop.Stmt(name, accs...)
	}
	inner := scop.For(j, scop.C(0), scop.C(n), stmt("S0", idx2, idx1))
	if r.Intn(3) == 0 {
		p.Add(scop.For(i, scop.C(0), scop.C(n), inner, stmt("S1", idx2o, idx1o)))
	} else {
		p.Add(scop.For(i, scop.C(0), scop.C(n), inner))
	}
	return p
}

// TestSetAssocRandomizedDifferential fuzzes the set-associative analytical
// tier against the reference simulation: seeded random affine loop nests,
// swept across associativities 1, 2, 4, and 8 at a 32-byte line size with
// two- and four-set geometries. The seed is fixed, so a failure reproduces
// deterministically.
func TestSetAssocRandomizedDifferential(t *testing.T) {
	r := rand.New(rand.NewSource(20260809))
	programs := 8
	if testing.Short() {
		programs = 3
	}
	opts := DefaultOptions()
	opts.TraceFallback = false
	for id := 0; id < programs; id++ {
		prog := randomAffineNest(r, id)
		for _, ways := range []int{1, 2, 4, 8} {
			sets := int64(2)
			if ways <= 2 {
				sets = 4
			}
			cfg := Config{
				LineSize:   32,
				CacheSizes: []int64{32 * int64(ways) * sets},
				Ways:       []int{ways},
			}
			t.Run(fmt.Sprintf("%s/ways%d", prog.Name, ways), func(t *testing.T) {
				requireBudget(t, 20*time.Second)
				setAssocCheck(t, prog, cfg, opts)
			})
		}
	}
}

// TestSetAssocParallelismInvariance asserts the set-associative counts and
// every deterministic Stats counter — including the per-set piece counts of
// Stats.SetAssoc — are bit-identical across worker counts: the per-set
// results are folded in set order regardless of which worker counted which
// set.
func TestSetAssocParallelismInvariance(t *testing.T) {
	prog := gemm(12)
	cfg := Config{LineSize: 64, CacheSizes: []int64{512, 2048}, Ways: []int{4, 8}}
	opts := DefaultOptions()
	opts.TraceFallback = false
	opts.Parallelism = 1
	seq, err := Analyze(prog, cfg, opts)
	if err != nil {
		t.Fatalf("sequential analyze: %v", err)
	}
	if len(seq.Stats.SetAssoc) != 2 {
		t.Fatalf("Stats.SetAssoc has %d entries, want 2", len(seq.Stats.SetAssoc))
	}
	for _, par := range []int{2, 4} {
		opts.Parallelism = par
		got, err := Analyze(prog, cfg, opts)
		if err != nil {
			t.Fatalf("parallel analyze (%d workers): %v", par, err)
		}
		compareResults(t, fmt.Sprintf("parallelism %d", par), got, seq)
		if !reflect.DeepEqual(got.Stats.SetAssoc, seq.Stats.SetAssoc) {
			t.Errorf("parallelism %d: SetAssoc stats differ:\ngot  %+v\nwant %+v",
				par, got.Stats.SetAssoc, seq.Stats.SetAssoc)
		}
	}
}
