package explore

import (
	"reflect"
	"testing"

	"haystack/internal/core"
	"haystack/internal/scop"
	"haystack/internal/tiling"
)

func gemmKernel(n int64) *scop.Program {
	p := scop.NewProgram("gemm")
	a := p.NewArray("A", scop.ElemFloat64, n, n)
	b := p.NewArray("B", scop.ElemFloat64, n, n)
	c := p.NewArray("C", scop.ElemFloat64, n, n)
	i, j, k := scop.V("i"), scop.V("j"), scop.V("k")
	p.Add(scop.For(i, scop.C(0), scop.C(n),
		scop.For(j, scop.C(0), scop.C(n),
			scop.For(k, scop.C(0), scop.C(n),
				scop.Stmt("S0",
					scop.Read(a, scop.X(i), scop.X(k)),
					scop.Read(b, scop.X(k), scop.X(j)),
					scop.Read(c, scop.X(i), scop.X(j)),
					scop.Write(c, scop.X(i), scop.X(j)))))))
	return p
}

func transposeKernel(n int64) *scop.Program {
	p := scop.NewProgram("transpose")
	a := p.NewArray("A", scop.ElemFloat64, n, n)
	b := p.NewArray("B", scop.ElemFloat64, n, n)
	i, j := scop.V("i"), scop.V("j")
	p.Add(scop.For(i, scop.C(0), scop.C(n),
		scop.For(j, scop.C(0), scop.C(n),
			scop.Stmt("S0", scop.Read(a, scop.X(j), scop.X(i)), scop.Write(b, scop.X(i), scop.X(j))))))
	return p
}

// sweepTwiceKernel reads an array forward in one loop and backward in a
// second: two single loops, which the rectangular tiler leaves untouched.
func sweepTwiceKernel(n int64) *scop.Program {
	p := scop.NewProgram("sweep2x")
	a := p.NewArray("A", scop.ElemFloat64, n)
	b := p.NewArray("B", scop.ElemFloat64, n)
	i, j := scop.V("i"), scop.V("j")
	p.Add(
		scop.For(i, scop.C(0), scop.C(n),
			scop.Stmt("S0", scop.Read(a, scop.X(i)), scop.Write(b, scop.X(i)))),
		scop.For(j, scop.C(0), scop.C(n),
			scop.Stmt("S1", scop.Read(b, scop.C(n-1).Minus(scop.X(j))))))
	return p
}

func triangularKernel(n int64) *scop.Program {
	p := scop.NewProgram("triangular")
	l := p.NewArray("L", scop.ElemFloat64, n, n)
	x := p.NewArray("x", scop.ElemFloat64, n)
	i, j := scop.V("i"), scop.V("j")
	p.Add(scop.For(i, scop.C(0), scop.C(n),
		scop.For(j, scop.C(0), scop.X(i).Plus(scop.C(1)),
			scop.Stmt("S0", scop.Read(l, scop.X(i), scop.X(j)), scop.Read(x, scop.X(j))))))
	return p
}

func testHierarchies() []core.Config {
	return []core.Config{
		{LineSize: 64, CacheSizes: []int64{1024}},
		{LineSize: 64, CacheSizes: []int64{2048, 8192}},
		{LineSize: 64, CacheSizes: []int64{512, 4096, 16384}},
	}
}

// sameResult compares everything deterministic about two results: the miss
// counts, the per-statement attributions, and the additive statistics
// (timing and worker bookkeeping are scheduling dependent and excluded).
func sameResult(t *testing.T, label string, got, want *core.Result) {
	t.Helper()
	if got.TotalAccesses != want.TotalAccesses ||
		got.CompulsoryMisses != want.CompulsoryMisses ||
		got.UsedTraceFallback != want.UsedTraceFallback {
		t.Fatalf("%s: header mismatch: got %+v want %+v", label, got, want)
	}
	if !reflect.DeepEqual(got.PerStatementCompulsory, want.PerStatementCompulsory) {
		t.Fatalf("%s: compulsory attribution mismatch: %v vs %v",
			label, got.PerStatementCompulsory, want.PerStatementCompulsory)
	}
	if len(got.Levels) != len(want.Levels) {
		t.Fatalf("%s: level count mismatch: %d vs %d", label, len(got.Levels), len(want.Levels))
	}
	for i := range got.Levels {
		g, w := got.Levels[i], want.Levels[i]
		if g.CacheBytes != w.CacheBytes || g.CapacityMisses != w.CapacityMisses || g.TotalMisses != w.TotalMisses {
			t.Fatalf("%s: level %d mismatch: %+v vs %+v", label, i, g, w)
		}
		if !reflect.DeepEqual(g.PerStatementCapacity, w.PerStatementCapacity) {
			t.Fatalf("%s: level %d attribution mismatch: %v vs %v",
				label, i, g.PerStatementCapacity, w.PerStatementCapacity)
		}
	}
	gs, ws := got.Stats, want.Stats
	if gs.DistancePieces != ws.DistancePieces || gs.CountedPieces != ws.CountedPieces ||
		gs.AffinePieces != ws.AffinePieces || gs.NonAffinePieces != ws.NonAffinePieces ||
		gs.EqualizationSplits != ws.EqualizationSplits || gs.RasterizationSplits != ws.RasterizationSplits ||
		gs.PartialEnumerationPoints != ws.PartialEnumerationPoints || gs.FullEnumerationPoints != ws.FullEnumerationPoints ||
		!reflect.DeepEqual(gs.NonAffineByAffineDims, ws.NonAffineByAffineDims) {
		t.Fatalf("%s: stats mismatch:\ngot  %+v\nwant %+v", label, gs, ws)
	}
}

// TestSweepMatchesAnalyzeAtEveryParallelism asserts the headline determinism
// property: every grid point of a sweep is bit-identical to a standalone
// per-configuration core.Analyze call, at every parallelism level of the
// outer pool. (The kernels are chosen so the requested tile sizes collapse
// onto the untiled variant: the variant-dedup path is exercised without the
// cost of symbolically analyzing deep tiled nests; tiled variants are
// covered by TestSweepTiledProfile.)
func TestSweepMatchesAnalyzeAtEveryParallelism(t *testing.T) {
	grid := Grid{
		Kernels: []Kernel{
			{Name: "sweep2x", Program: sweepTwiceKernel(64)},
			{Name: "triangular", Program: triangularKernel(10)},
		},
		TileSizes:   []int64{1, 4},
		Hierarchies: testHierarchies(),
	}
	opts := DefaultOptions()

	// Reference: naive per-configuration Analyze calls.
	type key struct {
		kernel string
		tile   int64
		hier   int
	}
	want := map[key]*core.Result{}
	for _, k := range grid.Kernels {
		for _, tile := range grid.TileSizes {
			prog := k.Program
			if tile > 1 {
				if tiled, ok := tiling.Tile(k.Program, tile); ok {
					prog = tiled
				}
			}
			for hi, h := range grid.Hierarchies {
				res, err := core.Analyze(prog, h, opts.Analysis)
				if err != nil {
					t.Fatalf("Analyze(%s, tile %d, hier %d): %v", k.Name, tile, hi, err)
				}
				want[key{k.Name, tile, hi}] = res
			}
		}
	}

	for _, workers := range []int{1, 2, 7} {
		opts := opts
		opts.Parallelism = workers
		res, err := Sweep(grid, opts)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		wantEvals := len(grid.Kernels) * len(grid.TileSizes) * len(grid.Hierarchies)
		if len(res.Evaluations) != wantEvals {
			t.Fatalf("workers=%d: %d evaluations, want %d", workers, len(res.Evaluations), wantEvals)
		}
		hi := 0
		for _, e := range res.Evaluations {
			ref := want[key{e.Kernel, e.TileSize, hi}]
			sameResult(t, e.Kernel, e.Result, ref)
			hi = (hi + 1) % len(grid.Hierarchies)
		}
	}
}

// TestSweepSharesModelAcrossHierarchies: a multi-hierarchy sweep of one 3-D
// kernel computes its distance model exactly once and still matches the
// per-configuration Analyze calls.
func TestSweepSharesModelAcrossHierarchies(t *testing.T) {
	grid := Grid{
		Kernels:     []Kernel{{Name: "gemm", Program: gemmKernel(8)}},
		Hierarchies: testHierarchies(),
	}
	opts := DefaultOptions()
	res, err := Sweep(grid, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.DistanceComputations != 1 {
		t.Fatalf("expected 1 distance computation for 3 hierarchies, got %d", res.Stats.DistanceComputations)
	}
	for hi, h := range grid.Hierarchies {
		want, err := core.Analyze(grid.Kernels[0].Program, h, opts.Analysis)
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, "gemm", res.Evaluations[hi].Result, want)
	}
}

// TestSweepComputesDistancesOncePerVariant asserts the amortization claim
// on a grid with real tiled variants (built via the profile strategy so the
// test stays cheap): one model per variant, independent of the number of
// hierarchies.
func TestSweepComputesDistancesOncePerVariant(t *testing.T) {
	grid := Grid{
		Kernels:     []Kernel{{Name: "gemm", Program: gemmKernel(8)}},
		TileSizes:   []int64{1, 2, 4},
		Hierarchies: testHierarchies(),
	}
	opts := DefaultOptions()
	opts.Tiled = TiledProfile
	res, err := Sweep(grid, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Variants != 3 {
		t.Fatalf("expected 3 variants (untiled + 2 tiled), got %d", res.Stats.Variants)
	}
	if res.Stats.DistanceComputations != 3 {
		t.Fatalf("expected 3 distance computations (one per variant), got %d", res.Stats.DistanceComputations)
	}
	if res.Stats.Evaluations != 9 {
		t.Fatalf("expected 9 evaluations, got %d", res.Stats.Evaluations)
	}
}

// TestSweepCollapsesUntileableVariants: tile sizes that the rectangular
// tiler cannot apply must share the untiled variant's distance model rather
// than recomputing it.
func TestSweepCollapsesUntileableVariants(t *testing.T) {
	grid := Grid{
		Kernels:   []Kernel{{Name: "triangular", Program: triangularKernel(10)}},
		TileSizes: []int64{1, 4, 8},
		Hierarchies: []core.Config{
			{LineSize: 64, CacheSizes: []int64{512}},
			{LineSize: 64, CacheSizes: []int64{2048}},
		},
	}
	res, err := Sweep(grid, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Variants != 1 || res.Stats.DistanceComputations != 1 {
		t.Fatalf("triangular kernel must collapse to one variant/model, got %d/%d",
			res.Stats.Variants, res.Stats.DistanceComputations)
	}
	if res.Stats.Evaluations != 6 {
		t.Fatalf("expected 6 evaluations, got %d", res.Stats.Evaluations)
	}
	if res.Stats.CountingPasses != 2 {
		t.Fatalf("collapsed grid points must share counting passes: got %d, want 2",
			res.Stats.CountingPasses)
	}
	for _, e := range res.Evaluations {
		if e.Tiled {
			t.Fatalf("no evaluation of the triangular kernel may be marked tiled: %+v", e)
		}
	}
	// Collapsed grid points share the identical Result, not just equal
	// numbers: three tile sizes against two hierarchies yield two results.
	distinct := map[*core.Result]bool{}
	for _, e := range res.Evaluations {
		distinct[e.Result] = true
	}
	if len(distinct) != 2 {
		t.Fatalf("expected 2 distinct shared results, got %d", len(distinct))
	}
}

// TestSweepMixedLineSizes: hierarchies with different line sizes need
// separate distance models, one per (variant, line size) pair.
func TestSweepMixedLineSizes(t *testing.T) {
	grid := Grid{
		Kernels: []Kernel{{Name: "sweep2x", Program: sweepTwiceKernel(64)}},
		Hierarchies: []core.Config{
			{LineSize: 64, CacheSizes: []int64{1024}},
			{LineSize: 32, CacheSizes: []int64{1024}},
		},
	}
	res, err := Sweep(grid, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Variants != 1 {
		t.Fatalf("expected 1 variant, got %d", res.Stats.Variants)
	}
	if res.Stats.DistanceComputations != 2 {
		t.Fatalf("expected 2 distance computations (1 variant x 2 line sizes), got %d",
			res.Stats.DistanceComputations)
	}
}

// TestSweepTiledProfile covers tiled variants end to end with the profile
// strategy: the tiled grid points must be bit-identical to naive
// per-configuration profile models at every parallelism level, must agree
// with the exact trace reference (core.SimulateReference), and on the
// transposed-access kernel the tiled variant must win the L1 objective —
// the sweep's purpose demonstrated end to end.
func TestSweepTiledProfile(t *testing.T) {
	grid := Grid{
		Kernels:   []Kernel{{Name: "transpose", Program: transposeKernel(64)}},
		TileSizes: []int64{1, 8},
		Hierarchies: []core.Config{
			{LineSize: 64, CacheSizes: []int64{4 * 1024}},
			{LineSize: 64, CacheSizes: []int64{16 * 1024}},
		},
	}
	opts := DefaultOptions()
	opts.Tiled = TiledProfile

	tiledProg, ok := tiling.Tile(grid.Kernels[0].Program, 8)
	if !ok {
		t.Fatal("transpose must be tileable")
	}

	var first *Result
	for _, workers := range []int{1, 3} {
		opts := opts
		opts.Parallelism = workers
		res, err := Sweep(grid, opts)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if res.Stats.DistanceComputations != 2 {
			t.Fatalf("workers=%d: expected 2 distance computations, got %d",
				workers, res.Stats.DistanceComputations)
		}
		for _, e := range res.Evaluations {
			prog := grid.Kernels[0].Program
			if e.TileSize == 8 {
				if !e.Tiled || !e.Result.UsedTraceFallback {
					t.Fatalf("tiled evaluation must be marked tiled and profile-backed: %+v", e)
				}
				prog = tiledProg
				// Bit-identical to a naive per-configuration profile model.
				dm, err := core.ComputeDistancesByProfiling(prog, e.Hierarchy.LineSize)
				if err != nil {
					t.Fatal(err)
				}
				want, err := dm.CountMisses(e.Hierarchy)
				if err != nil {
					t.Fatal(err)
				}
				sameResult(t, "tiled-profile", e.Result, want)
			}
			// Exact against the trace ground truth, tiled and untiled alike.
			ref, err := core.SimulateReference(prog, e.Hierarchy)
			if err != nil {
				t.Fatal(err)
			}
			for li, lvl := range e.Result.Levels {
				if lvl.TotalMisses != ref.TotalMisses[li] {
					t.Fatalf("tile %d, caches %v, level %d: model %d != reference %d",
						e.TileSize, e.Hierarchy.CacheSizes, li, lvl.TotalMisses, ref.TotalMisses[li])
				}
			}
		}
		if first == nil {
			first = res
		}
	}

	best := res4k(first, t)
	if best.Evaluation.TileSize != 8 || !best.Evaluation.Tiled {
		t.Fatalf("tiling should win the transposed access in a 4 KiB cache: %+v", best)
	}
}

// res4k restricts the result to the 4 KiB hierarchy and ranks it.
func res4k(r *Result, t *testing.T) Best {
	t.Helper()
	restricted := &Result{}
	for _, e := range r.Evaluations {
		if e.Hierarchy.CacheSizes[0] == 4*1024 {
			restricted.Evaluations = append(restricted.Evaluations, e)
		}
	}
	best := restricted.BestPerKernel(MinL1Misses)
	if len(best) != 1 {
		t.Fatalf("expected one best entry, got %d", len(best))
	}
	return best[0]
}

func TestBestPerKernelTieBreaksEarlier(t *testing.T) {
	mk := func(misses int64) *core.Result {
		return &core.Result{Levels: []core.LevelResult{{TotalMisses: misses}}}
	}
	r := &Result{Evaluations: []Evaluation{
		{Kernel: "k", TileSize: 1, Result: mk(10)},
		{Kernel: "k", TileSize: 4, Result: mk(10)},
		{Kernel: "k", TileSize: 8, Result: mk(12)},
	}}
	best := r.BestPerKernel(MinL1Misses)
	if len(best) != 1 || best[0].Evaluation.TileSize != 1 || best[0].Score != 10 {
		t.Fatalf("tie must break towards the earlier grid point: %+v", best)
	}
}

func TestObjectives(t *testing.T) {
	res := &core.Result{Levels: []core.LevelResult{
		{TotalMisses: 100}, {TotalMisses: 30}, {TotalMisses: 7},
	}}
	e := Evaluation{Result: res}
	if MinL1Misses.Score(e) != 100 || MinLastLevelMisses.Score(e) != 7 || MinTotalMisses.Score(e) != 137 {
		t.Fatalf("objective scores wrong: %d %d %d",
			MinL1Misses.Score(e), MinLastLevelMisses.Score(e), MinTotalMisses.Score(e))
	}
	for _, o := range []Objective{MinL1Misses, MinLastLevelMisses, MinTotalMisses} {
		parsed, err := ParseObjective(o.String())
		if err != nil || parsed != o {
			t.Fatalf("objective %v does not round-trip: %v %v", o, parsed, err)
		}
	}
	if _, err := ParseObjective("bogus"); err == nil {
		t.Fatal("bogus objective must not parse")
	}
}

func TestSweepValidation(t *testing.T) {
	good := Grid{
		Kernels:     []Kernel{{Name: "sweep2x", Program: sweepTwiceKernel(16)}},
		TileSizes:   []int64{1},
		Hierarchies: testHierarchies(),
	}
	cases := []struct {
		name string
		mut  func(g *Grid)
	}{
		{"no kernels", func(g *Grid) { g.Kernels = nil }},
		{"no hierarchies", func(g *Grid) { g.Hierarchies = nil }},
		{"bad line size", func(g *Grid) { g.Hierarchies[0].LineSize = 0 }},
		{"no cache sizes", func(g *Grid) { g.Hierarchies[1].CacheSizes = nil }},
		{"nil program", func(g *Grid) { g.Kernels[0].Program = nil }},
	}
	for _, tc := range cases {
		g := good
		g.Kernels = append([]Kernel(nil), good.Kernels...)
		g.Hierarchies = append([]core.Config(nil), good.Hierarchies...)
		for i := range g.Hierarchies {
			g.Hierarchies[i].CacheSizes = append([]int64(nil), good.Hierarchies[i].CacheSizes...)
		}
		tc.mut(&g)
		if _, err := Sweep(g, DefaultOptions()); err == nil {
			t.Fatalf("%s: sweep must fail", tc.name)
		}
	}
}
