package explore

import (
	"encoding/json"
	"fmt"
	"os"
	"reflect"
	"runtime"
	"testing"
	"time"

	"haystack/internal/core"
	"haystack/internal/polybench"
)

// sweepBenchRun is one worker-count measurement of the multicore sweep
// benchmark.
type sweepBenchRun struct {
	Workers int     `json:"workers"`
	WallMS  float64 `json:"wall_ms"`
}

// sweepBenchReport is the BENCH_6.json schema: the wall time of the full
// PolyBench MINI sweep at 1/2/4 outer workers plus the allocation figures of
// the Presburger hot path.
type sweepBenchReport struct {
	Bench       string          `json:"bench"`
	Date        string          `json:"date"`
	GoVersion   string          `json:"go"`
	CPUs        int             `json:"cpus"`
	Kernels     int             `json:"kernels"`
	Evaluations int             `json:"evaluations"`
	Runs        []sweepBenchRun `json:"runs"`
	// Speedup4W is wall(1 worker) / wall(4 workers); meaningful only when
	// CPUs >= 4.
	Speedup4W float64 `json:"speedup_4w"`
	// AllocsPerEvaluation is the malloc count of the 1-worker sweep divided
	// by its grid points — the end-to-end allocation pressure the arena and
	// slab-clone work keeps down.
	AllocsPerEvaluation float64 `json:"allocs_per_evaluation"`
}

// evalKey collapses one sweep evaluation to its deterministic content:
// everything except timings and scheduling counters must be bit-identical
// across worker counts.
type evalKey struct {
	Kernel     string
	TileSize   int64
	Tier       core.Tier
	Compulsory int64
	Capacity   []int64
	Total      []int64
	PerStmt    map[string]int64
}

func deterministicEvals(res *Result) []evalKey {
	out := make([]evalKey, 0, len(res.Evaluations))
	for _, ev := range res.Evaluations {
		k := evalKey{
			Kernel:     ev.Kernel,
			TileSize:   ev.TileSize,
			Tier:       ev.Result.Tier,
			Compulsory: ev.Result.CompulsoryMisses,
			PerStmt:    ev.Result.PerStatementCompulsory,
		}
		for _, lvl := range ev.Result.Levels {
			k.Capacity = append(k.Capacity, lvl.CapacityMisses)
			k.Total = append(k.Total, lvl.TotalMisses)
		}
		out = append(out, k)
	}
	return out
}

// TestSweepMulticoreBenchmark runs every PolyBench kernel at MINI through
// the sweep with 1, 2, and 4 outer workers (inner analysis parallelism fixed
// at one so the outer pool is the only variable) and asserts the results are
// bit-identical at every worker count. On machines with at least four CPUs
// it additionally asserts the 4-worker wall time is at most 0.4x the
// 1-worker wall time. When HAYSTACK_BENCH_SWEEP names a file the
// measurements are written there as JSON (the BENCH_6.json CI artifact);
// without the variable the test is skipped, keeping the default suite fast.
func TestSweepMulticoreBenchmark(t *testing.T) {
	out := os.Getenv("HAYSTACK_BENCH_SWEEP")
	if out == "" {
		t.Skip("set HAYSTACK_BENCH_SWEEP=<file> to run the multicore sweep benchmark")
	}

	kernels := polybench.Kernels()
	grid := Grid{
		Hierarchies: []core.Config{{LineSize: 64, CacheSizes: []int64{32 * 1024, 1024 * 1024}}},
	}
	for _, k := range kernels {
		grid.Kernels = append(grid.Kernels, Kernel{Name: k.Name, Program: k.Build(polybench.Mini)})
	}

	opts := DefaultOptions()
	opts.Analysis.Parallelism = 1

	report := sweepBenchReport{
		Bench:     "polybench_mini_sweep",
		Date:      time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		CPUs:      runtime.NumCPU(),
		Kernels:   len(grid.Kernels),
	}

	var baseline []evalKey
	var wall [3]time.Duration
	for i, workers := range []int{1, 2, 4} {
		opts.Parallelism = workers

		var before, after runtime.MemStats
		if workers == 1 {
			runtime.GC()
			runtime.ReadMemStats(&before)
		}
		start := time.Now()
		res, err := Sweep(grid, opts)
		wall[i] = time.Since(start)
		if err != nil {
			t.Fatalf("sweep with %d workers: %v", workers, err)
		}
		if workers == 1 {
			runtime.ReadMemStats(&after)
			report.Evaluations = res.Stats.Evaluations
			report.AllocsPerEvaluation =
				float64(after.Mallocs-before.Mallocs) / float64(res.Stats.Evaluations)
		}

		keys := deterministicEvals(res)
		if baseline == nil {
			baseline = keys
		} else if !reflect.DeepEqual(keys, baseline) {
			for j := range keys {
				if !reflect.DeepEqual(keys[j], baseline[j]) {
					t.Fatalf("%d workers: evaluation %d differs from 1-worker run:\n%+v\nvs\n%+v",
						workers, j, keys[j], baseline[j])
				}
			}
			t.Fatalf("%d workers: results differ from 1-worker run", workers)
		}
		report.Runs = append(report.Runs, sweepBenchRun{
			Workers: workers,
			WallMS:  float64(wall[i]) / float64(time.Millisecond),
		})
		t.Logf("%d workers: %v (%d evaluations)", workers, wall[i].Round(time.Millisecond), res.Stats.Evaluations)
	}

	report.Speedup4W = float64(wall[0]) / float64(wall[2])
	if runtime.NumCPU() >= 4 {
		if ratio := float64(wall[2]) / float64(wall[0]); ratio > 0.4 {
			t.Errorf("4-worker sweep took %.2fx the 1-worker wall time, want <= 0.4x (%v vs %v)",
				ratio, wall[2].Round(time.Millisecond), wall[0].Round(time.Millisecond))
		}
	} else {
		t.Logf("only %d CPUs: skipping the 0.4x multicore assertion", runtime.NumCPU())
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	fmt.Printf("wrote %s: 1w=%v 2w=%v 4w=%v speedup(4w)=%.2fx\n",
		out, wall[0].Round(time.Millisecond), wall[1].Round(time.Millisecond),
		wall[2].Round(time.Millisecond), report.Speedup4W)
}
