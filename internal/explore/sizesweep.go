package explore

import (
	"fmt"
	"runtime"
	"time"

	"haystack/internal/core"
	"haystack/internal/parwork"
	"haystack/internal/scop"
)

// SizeEvaluation is the model result of one problem size of a size sweep.
type SizeEvaluation struct {
	// Bindings are the parameter values of this evaluation.
	Bindings map[string]int64
	// Result is the model outcome, bit-identical to a concrete core.Analyze
	// of the instantiated program.
	Result *core.Result
}

// SizeSweepStats describes the work a size sweep performed: the parametric
// model is computed exactly once, every size is an evaluation.
type SizeSweepStats struct {
	// Sizes is the number of evaluated parameter bindings.
	Sizes int
	// DistancePieces, ParametricPieces, and ResidualPieces describe the
	// shared model (see core.ParametricModel).
	DistancePieces   int
	ParametricPieces int
	ResidualPieces   int
	// ModelPhase is the wall-clock time of the one ComputeParametricModel
	// call; EvalPhase is the wall-clock time of evaluating all sizes.
	ModelPhase time.Duration
	EvalPhase  time.Duration
	TotalTime  time.Duration
}

// SizeSweepResult holds the evaluations of a size sweep in the order the
// bindings were given.
type SizeSweepResult struct {
	// Model is the shared parametric model (reusable for further Eval calls).
	Model       *core.ParametricModel
	Evaluations []SizeEvaluation
	Stats       SizeSweepStats
}

// SizeSweep evaluates a parametric program against one cache hierarchy at
// many problem sizes, sharing a single parametric analysis: the program is
// analyzed once symbolically in its parameters (core.ComputeParametricModel)
// and every size is an instantiation of the shared model. This is the
// problem-size analogue of Sweep's hierarchy sharing — where Sweep pays one
// distance phase for many hierarchies, SizeSweep pays one parametric
// analysis for many sizes.
//
// Evaluations fan out over the worker pool; results are bit-identical to a
// per-size core.Analyze at every parallelism level.
func SizeSweep(prog *scop.Program, cfg core.Config, sizes []map[string]int64, opts Options) (*SizeSweepResult, error) {
	start := time.Now()
	if !prog.IsParametric() {
		return nil, fmt.Errorf("explore: program %s has no parameters; use Sweep", prog.Name)
	}
	if len(sizes) == 0 {
		return nil, fmt.Errorf("explore: no sizes to evaluate")
	}
	tModel := time.Now()
	pm, err := core.ComputeParametricModel(prog, cfg.LineSize, opts.Analysis)
	if err != nil {
		return nil, fmt.Errorf("explore: parametric model of %s: %w", prog.Name, err)
	}
	modelPhase := time.Since(tModel)

	tEval := time.Now()
	workers := opts.Parallelism
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	evals := make([]SizeEvaluation, len(sizes))
	err = parwork.Run(len(sizes), workers, func(idx int) error {
		res, err := pm.Eval(cfg, sizes[idx])
		if err != nil {
			return fmt.Errorf("explore: evaluating %s at %v: %w", prog.Name, sizes[idx], err)
		}
		evals[idx] = SizeEvaluation{Bindings: sizes[idx], Result: res}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &SizeSweepResult{
		Model:       pm,
		Evaluations: evals,
		Stats: SizeSweepStats{
			Sizes:            len(sizes),
			DistancePieces:   pm.DistancePieces(),
			ParametricPieces: pm.ParametricPieces(),
			ResidualPieces:   pm.ResidualPieces(),
			ModelPhase:       modelPhase,
			EvalPhase:        time.Since(tEval),
			TotalTime:        time.Since(start),
		},
	}, nil
}
