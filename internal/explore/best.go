package explore

import (
	"fmt"
	"strings"
)

// Objective ranks evaluations of a sweep; lower scores are better.
type Objective int

const (
	// MinL1Misses minimizes the total misses of the innermost cache level,
	// the classic tile size selection objective.
	MinL1Misses Objective = iota
	// MinLastLevelMisses minimizes the total misses of the outermost level
	// (the traffic that reaches main memory).
	MinLastLevelMisses
	// MinTotalMisses minimizes the sum of total misses across all levels (a
	// proxy for the total traffic between adjacent hierarchy levels).
	MinTotalMisses
)

// String returns the flag spelling of the objective.
func (o Objective) String() string {
	switch o {
	case MinL1Misses:
		return "l1"
	case MinLastLevelMisses:
		return "llc"
	case MinTotalMisses:
		return "total"
	default:
		return fmt.Sprintf("Objective(%d)", int(o))
	}
}

// ParseObjective parses the flag spelling of an objective (l1, llc, total).
func ParseObjective(s string) (Objective, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "l1":
		return MinL1Misses, nil
	case "llc":
		return MinLastLevelMisses, nil
	case "total":
		return MinTotalMisses, nil
	}
	return 0, fmt.Errorf("explore: unknown objective %q (want l1, llc, or total)", s)
}

// Score returns the objective value of an evaluation (lower is better).
func (o Objective) Score(e Evaluation) int64 {
	levels := e.Result.Levels
	switch o {
	case MinL1Misses:
		return levels[0].TotalMisses
	case MinLastLevelMisses:
		return levels[len(levels)-1].TotalMisses
	default:
		var sum int64
		for _, l := range levels {
			sum += l.TotalMisses
		}
		return sum
	}
}

// Best pairs a kernel with its best grid point under an objective.
type Best struct {
	Kernel     string
	Evaluation Evaluation
	// Score is the objective value of the winning evaluation.
	Score int64
}

// BestPerKernel returns, for every kernel of the sweep in grid order, the
// evaluation with the smallest objective score. Ties break towards the
// earlier grid point (smaller tile size, earlier hierarchy), so the outcome
// is deterministic.
func (r *Result) BestPerKernel(obj Objective) []Best {
	var out []Best
	index := map[string]int{}
	for _, e := range r.Evaluations {
		score := obj.Score(e)
		i, seen := index[e.Kernel]
		if !seen {
			index[e.Kernel] = len(out)
			out = append(out, Best{Kernel: e.Kernel, Evaluation: e, Score: score})
			continue
		}
		if score < out[i].Score {
			out[i] = Best{Kernel: e.Kernel, Evaluation: e, Score: score}
		}
	}
	return out
}
