// Package explore implements design-space exploration with the analytical
// cache model: it evaluates a grid of (kernel × tile size × cache hierarchy)
// configurations and reports the best configuration per kernel, the use case
// the paper motivates the model with — sweeps that would take days with a
// trace-driven simulator finish interactively because the model's runtime is
// problem-size independent.
//
// The engine exploits the structure of the analysis to make sweeps cheap.
// The backward stack distance of every access is independent of the cache
// capacities, so the expensive symbolic phase (core.ComputeDistances) runs
// exactly once per tiled program variant and line size; every hierarchy of
// the grid then only pays the comparatively fast counting phase
// (core.DistanceModel.CountMisses). Tile sizes that leave a kernel
// unchanged (no rectangular band, or tiles covering the whole extent of an
// untileable band) collapse onto the untiled variant and share its distance
// model too. Both phases fan out over the shared parwork pool —
// configurations in the outer pool — and results are deterministic at every
// parallelism level: with the default TiledSymbolic strategy every result
// is bit-identical to a standalone core.Analyze call with the same options,
// while the TiledProfile strategy builds the models of tiled variants from
// an exact trace profile instead (still exact, much cheaper for the deep
// loop nests tiling produces, and equally shared across hierarchies).
package explore

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"haystack/internal/core"
	"haystack/internal/parwork"
	"haystack/internal/scop"
	"haystack/internal/tiling"
)

// Kernel is one program of the sweep.
type Kernel struct {
	// Name identifies the kernel in evaluations and reports.
	Name string
	// Program is the untiled program; tiled variants are derived from it.
	Program *scop.Program
}

// Grid spans the design space: every kernel is evaluated at every tile size
// against every cache hierarchy.
type Grid struct {
	Kernels []Kernel
	// TileSizes lists the tile sizes to evaluate; values of one or below
	// select the untiled program. An empty list evaluates only the untiled
	// program. Tiling uses the rectangular tiler of internal/tiling.
	TileSizes []int64
	// Hierarchies lists the cache configurations to evaluate. Hierarchies
	// may differ in line size; the engine builds one distance model per
	// (variant, line size) pair.
	Hierarchies []core.Config
}

// TiledAnalysis selects how the distance models of tiled program variants
// are built; untiled variants always use the symbolic pipeline.
type TiledAnalysis int

const (
	// TiledSymbolic runs the full symbolic pipeline on tiled variants, like
	// on untiled ones. Every result is bit-identical to a standalone
	// core.Analyze call. Tiling doubles the loop depth, but the coalescing
	// layer of internal/presburger keeps the deeper compositions tractable,
	// so this problem-size-independent strategy is the default.
	TiledSymbolic TiledAnalysis = iota
	// TiledProfile builds the models of tiled variants from an exact stack
	// distance profile of the trace (core.ComputeDistancesByProfiling).
	// Results are still exact and still shared across all hierarchies of
	// the grid, but the model construction costs one trace replay per tiled
	// variant instead of being problem-size independent. Results of tiled
	// grid points carry UsedTraceFallback.
	TiledProfile
)

// Options configures a sweep.
type Options struct {
	// Analysis holds the model options of every evaluation. A
	// non-positive Analysis.Parallelism is balanced against the outer pool
	// (see DefaultOptions); a positive value fixes the inner parallelism of
	// every analysis. Analysis.Mode selects the degradation ladder rung of
	// every grid point; ModeSim routes all variants (tiled and untiled)
	// through exact trace profiling, like AnalyzeContext does.
	Analysis core.Options
	// Parallelism is the worker count of the sweep's outer pool, which fans
	// out over configurations; zero or below selects the number of CPUs.
	Parallelism int
	// Tiled selects the analysis strategy of tiled variants (default
	// TiledSymbolic).
	Tiled TiledAnalysis
}

// DefaultOptions enables every model optimization and balances the two
// parallelism levels automatically: the outer pool fans out over
// configurations, and when the distance phase has fewer jobs than outer
// workers the spare cores go to the individual analyses instead. Leaving
// Analysis.Parallelism at zero requests this balancing; setting it
// explicitly fixes the inner parallelism of every analysis.
func DefaultOptions() Options {
	return Options{Analysis: core.DefaultOptions()}
}

// Evaluation is the model result of one grid point.
type Evaluation struct {
	Kernel string
	// TileSize is the requested tile size (one for the untiled program).
	TileSize int64
	// Tiled reports whether the tiler actually transformed the program; when
	// false the evaluation used the untiled variant (and its shared distance
	// model).
	Tiled     bool
	Hierarchy core.Config
	// Result is the model outcome of this grid point. Grid points whose
	// tile sizes collapsed onto the same variant share one Result; treat it
	// as read-only.
	Result *core.Result
}

// Stats describes the work a sweep performed.
type Stats struct {
	// Kernels, Variants, and Evaluations count the kernels of the grid, the
	// distinct tiled program variants derived from them, and the evaluated
	// grid points.
	Kernels     int
	Variants    int
	Evaluations int
	// DistanceComputations is the number of ComputeDistances calls the sweep
	// performed: exactly one per distinct (variant, line size) pair, no
	// matter how many hierarchies the grid spans.
	DistanceComputations int
	// CountingPasses is the number of distinct (variant, hierarchy)
	// counting passes; grid points whose tile size collapsed onto the same
	// variant share one pass (and one Result).
	CountingPasses int
	// DistancePhase and CountPhase are the wall-clock times of the two
	// pipeline phases; TotalTime is the wall-clock time of the whole sweep.
	DistancePhase time.Duration
	CountPhase    time.Duration
	TotalTime     time.Duration
}

// Result holds the evaluations of a sweep in deterministic grid order:
// kernel-major, then tile size, then hierarchy.
type Result struct {
	Evaluations []Evaluation
	Stats       Stats
}

// variant is one distinct tiled program derived from a kernel.
type variant struct {
	kernel  int
	tile    int64
	program *scop.Program
	tiled   bool
	// models maps a line size to the index of the distance model computed
	// for this variant at that line size.
	models map[int64]int
}

// modelJob identifies one ComputeDistances call of the sweep.
type modelJob struct {
	variant  int
	lineSize int64
	model    *core.DistanceModel
}

// Sweep evaluates the full grid. Tiled variants are derived first (the
// tiler is syntactic and cheap), then the distance models of all distinct
// (variant, line size) pairs are computed on the outer worker pool, and
// finally every (variant, hierarchy) grid point is counted on the same
// pool. Any failing grid point fails the sweep; with
// Options.Analysis.TraceFallback enabled, programs outside the symbolic
// fragment degrade to exact trace profiling instead of failing.
func Sweep(grid Grid, opts Options) (*Result, error) {
	return SweepContext(context.Background(), grid, opts)
}

// SweepContext is Sweep observing ctx: both worker pools stop claiming jobs
// promptly after cancellation, the analyses themselves observe the context,
// and the context error is returned.
func SweepContext(ctx context.Context, grid Grid, opts Options) (*Result, error) {
	start := time.Now()
	if len(grid.Kernels) == 0 {
		return nil, fmt.Errorf("explore: the grid has no kernels")
	}
	if len(grid.Hierarchies) == 0 {
		return nil, fmt.Errorf("explore: the grid has no cache hierarchies")
	}
	for i, h := range grid.Hierarchies {
		if h.LineSize <= 0 {
			return nil, fmt.Errorf("explore: hierarchy %d has non-positive line size %d", i, h.LineSize)
		}
		if len(h.CacheSizes) == 0 {
			return nil, fmt.Errorf("explore: hierarchy %d has no cache sizes", i)
		}
		if err := h.Validate(); err != nil {
			return nil, fmt.Errorf("explore: hierarchy %d: %w", i, err)
		}
	}
	for i, k := range grid.Kernels {
		if k.Program == nil {
			return nil, fmt.Errorf("explore: kernel %d (%s) has no program", i, k.Name)
		}
	}
	tiles := normalizeTiles(grid.TileSizes)
	lineSizes := uniqueLineSizes(grid.Hierarchies)

	// Derive the distinct tiled variants of every kernel. Tile sizes the
	// tiler cannot apply collapse onto the untiled variant, so their grid
	// points share its distance model instead of recomputing it.
	var variants []*variant
	variantOf := map[[2]int64]int{} // (kernel, tile) -> variant index
	for ki, k := range grid.Kernels {
		untiled := -1
		for _, tile := range tiles {
			prog, tiled := k.Program, false
			if tile > 1 {
				prog, tiled = tiling.Tile(k.Program, tile)
			}
			if !tiled {
				if untiled < 0 {
					variants = append(variants, &variant{kernel: ki, tile: 1, program: k.Program, models: map[int64]int{}})
					untiled = len(variants) - 1
				}
				variantOf[[2]int64{int64(ki), tile}] = untiled
				continue
			}
			variants = append(variants, &variant{kernel: ki, tile: tile, program: prog, tiled: true, models: map[int64]int{}})
			variantOf[[2]int64{int64(ki), tile}] = len(variants) - 1
		}
	}

	// Phase 1: one distance model per (variant, line size), fanned out over
	// the outer pool.
	tDist := time.Now()
	var jobs []*modelJob
	for vi, v := range variants {
		for _, ls := range lineSizes {
			v.models[ls] = len(jobs)
			jobs = append(jobs, &modelJob{variant: vi, lineSize: ls})
		}
	}
	workers := opts.Parallelism
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	// One pool serves the whole sweep: configurations fan out as outer
	// groups, and every analysis schedules its own splittable units (lexmax
	// basic maps, touched-line counts, capacity pieces) onto the same pool
	// through the worker driving it. Idle workers steal across jobs, so the
	// two phases need no static inner/outer core split; results are
	// bit-identical at every worker count.
	ex, releasePool := parwork.NewExec(workers)
	defer releasePool()
	analysis := opts.Analysis
	if analysis.Parallelism <= 0 {
		analysis.Parallelism = 1
	}
	err := ex.RunGroup(ctx, len(jobs), func(w *parwork.Worker, idx int) error {
		job := jobs[idx]
		v := variants[job.variant]
		var dm *core.DistanceModel
		var err error
		if analysis.Mode == core.ModeSim || (v.tiled && opts.Tiled == TiledProfile) {
			dm, err = core.ComputeDistancesByProfiling(v.program, job.lineSize)
		} else {
			// The analysis runs on this worker: Options.Exec is call scoped,
			// so the per-job copy hands the worker to exactly one call.
			jobOpts := analysis
			jobOpts.Exec = w
			dm, err = core.ComputeDistancesContext(ctx, v.program, job.lineSize, jobOpts)
		}
		if err != nil {
			return fmt.Errorf("explore: distances of %s (tile %d, line %d): %w",
				grid.Kernels[v.kernel].Name, v.tile, job.lineSize, err)
		}
		job.model = dm
		return nil
	})
	if err != nil {
		return nil, err
	}
	distPhase := time.Since(tDist)

	// Phase 2: count every grid point against its hierarchy, again on the
	// outer pool. Evaluations are index-addressed, so the grid order of the
	// result does not depend on scheduling.
	tCount := time.Now()
	evals := make([]Evaluation, 0, len(grid.Kernels)*len(tiles)*len(grid.Hierarchies))
	var evalVariant []int
	// Tile sizes that collapsed onto the same variant produce identical
	// grid points; they stay in the result (the grid shape is the caller's)
	// but are counted only once and share the Result.
	type evalKey struct {
		variant, hier int
	}
	firstEval := map[evalKey]int{}
	var uniqueEvals []int
	repOf := make(map[int]int)
	for ki := range grid.Kernels {
		for _, tile := range tiles {
			vi := variantOf[[2]int64{int64(ki), tile}]
			for hi, h := range grid.Hierarchies {
				idx := len(evals)
				evals = append(evals, Evaluation{
					Kernel:    grid.Kernels[ki].Name,
					TileSize:  tile,
					Tiled:     variants[vi].tiled,
					Hierarchy: h,
				})
				evalVariant = append(evalVariant, vi)
				key := evalKey{variant: vi, hier: hi}
				if rep, ok := firstEval[key]; ok {
					repOf[idx] = rep
				} else {
					firstEval[key] = idx
					uniqueEvals = append(uniqueEvals, idx)
				}
			}
		}
	}
	// The counting phase shares the same pool: each pass schedules its
	// capacity pieces through the worker that picked it up, and idle workers
	// steal pieces across passes, so no separate inner/outer balancing is
	// needed.
	err = ex.RunGroup(ctx, len(uniqueEvals), func(w *parwork.Worker, i int) error {
		e := &evals[uniqueEvals[i]]
		v := variants[evalVariant[uniqueEvals[i]]]
		dm := jobs[v.models[e.Hierarchy.LineSize]].model
		res, err := dm.CountMissesExec(ctx, e.Hierarchy, w)
		if err != nil {
			return fmt.Errorf("explore: counting %s (tile %d, caches %v): %w",
				e.Kernel, e.TileSize, e.Hierarchy.CacheSizes, err)
		}
		e.Result = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	for idx, rep := range repOf {
		evals[idx].Result = evals[rep].Result
	}

	return &Result{
		Evaluations: evals,
		Stats: Stats{
			Kernels:              len(grid.Kernels),
			Variants:             len(variants),
			Evaluations:          len(evals),
			DistanceComputations: len(jobs),
			CountingPasses:       len(uniqueEvals),
			DistancePhase:        distPhase,
			CountPhase:           time.Since(tCount),
			TotalTime:            time.Since(start),
		},
	}, nil
}

// normalizeTiles clamps tile sizes to at least one and removes duplicates,
// preserving the caller's order; an empty request means untiled only.
func normalizeTiles(tiles []int64) []int64 {
	if len(tiles) == 0 {
		return []int64{1}
	}
	seen := map[int64]bool{}
	var out []int64
	for _, t := range tiles {
		if t < 1 {
			t = 1
		}
		if seen[t] {
			continue
		}
		seen[t] = true
		out = append(out, t)
	}
	return out
}

// uniqueLineSizes collects the distinct line sizes of the hierarchies in
// order of appearance.
func uniqueLineSizes(hierarchies []core.Config) []int64 {
	seen := map[int64]bool{}
	var out []int64
	for _, h := range hierarchies {
		if seen[h.LineSize] {
			continue
		}
		seen[h.LineSize] = true
		out = append(out, h.LineSize)
	}
	return out
}
