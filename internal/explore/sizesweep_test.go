package explore

import (
	"testing"

	"haystack/internal/core"
	"haystack/internal/polybench"
	"haystack/internal/scop"
)

// sizeSweepProgram is a small parametric kernel (two passes over a vector)
// cheap enough to validate the sweep against per-size concrete analyses.
func sizeSweepProgram() *scop.Program {
	p := scop.NewProgram("sweep-vec")
	n := p.NewParam("N")
	A := p.NewArrayP("A", scop.ElemFloat64, scop.X(n))
	B := p.NewArrayP("B", scop.ElemFloat64, scop.X(n))
	i, j := scop.V("i"), scop.V("j")
	p.Add(
		scop.For(i, scop.C(0), scop.X(n),
			scop.Stmt("S0", scop.Read(A, scop.X(i)), scop.Write(B, scop.X(i)))),
		scop.For(j, scop.C(0), scop.X(n),
			scop.Stmt("S1", scop.Read(B, scop.X(j)), scop.Read(A, scop.X(j)))),
	)
	return p
}

// TestSizeSweepMatchesPerSizeAnalyze checks that one shared parametric model
// reproduces per-size concrete analyses bit-identically, at several
// parallelism levels.
func TestSizeSweepMatchesPerSizeAnalyze(t *testing.T) {
	prog := sizeSweepProgram()
	cfg := core.Config{LineSize: 64, CacheSizes: []int64{512, 8 * 1024}}
	var sizes []map[string]int64
	for _, n := range []int64{3, 8, 17, 64, 129, 500} {
		sizes = append(sizes, map[string]int64{"N": n})
	}
	var first *SizeSweepResult
	for _, par := range []int{1, 2, 7} {
		opts := DefaultOptions()
		opts.Parallelism = par
		res, err := SizeSweep(prog, cfg, sizes, opts)
		if err != nil {
			t.Fatalf("SizeSweep(parallelism=%d): %v", par, err)
		}
		if res.Stats.Sizes != len(sizes) || len(res.Evaluations) != len(sizes) {
			t.Fatalf("parallelism=%d: %d evaluations, want %d", par, len(res.Evaluations), len(sizes))
		}
		for i, ev := range res.Evaluations {
			inst, err := prog.Instantiate(sizes[i])
			if err != nil {
				t.Fatal(err)
			}
			want, err := core.Analyze(inst, cfg, core.DefaultOptions())
			if err != nil {
				t.Fatalf("Analyze N=%d: %v", sizes[i]["N"], err)
			}
			if ev.Result.TotalAccesses != want.TotalAccesses ||
				ev.Result.CompulsoryMisses != want.CompulsoryMisses {
				t.Errorf("parallelism=%d N=%d: accesses/compulsory %d/%d, want %d/%d", par, sizes[i]["N"],
					ev.Result.TotalAccesses, ev.Result.CompulsoryMisses, want.TotalAccesses, want.CompulsoryMisses)
			}
			for l := range cfg.CacheSizes {
				if ev.Result.Levels[l].TotalMisses != want.Levels[l].TotalMisses {
					t.Errorf("parallelism=%d N=%d L%d: misses %d, want %d", par, sizes[i]["N"], l+1,
						ev.Result.Levels[l].TotalMisses, want.Levels[l].TotalMisses)
				}
			}
			if first != nil && ev.Result.Levels[0].TotalMisses != first.Evaluations[i].Result.Levels[0].TotalMisses {
				t.Errorf("parallelism=%d N=%d: result differs from parallelism=1", par, sizes[i]["N"])
			}
		}
		if first == nil {
			first = res
		}
	}
}

// TestSizeSweepPolybenchGemm runs the sweep over the standard gemm sizes and
// checks the shared-model bookkeeping (one model, many sizes).
func TestSizeSweepPolybenchGemm(t *testing.T) {
	if testing.Short() {
		t.Skip("parametric gemm model is expensive on one core")
	}
	pk, ok := polybench.ParametricByName("gemm")
	if !ok {
		t.Fatal("no parametric gemm")
	}
	cfg := core.DefaultConfig()
	sizes := []map[string]int64{
		pk.Bindings(polybench.Mini),
		pk.Bindings(polybench.Small),
		pk.Bindings(polybench.Medium),
	}
	res, err := SizeSweep(pk.Build(), cfg, sizes, DefaultOptions())
	if err != nil {
		t.Fatalf("SizeSweep: %v", err)
	}
	if res.Model == nil || res.Stats.DistancePieces == 0 {
		t.Fatal("shared model missing from the result")
	}
	want, err := core.Analyze(mustBuild(t, "gemm", polybench.Small), cfg, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	got := res.Evaluations[1].Result
	for l := range cfg.CacheSizes {
		if got.Levels[l].TotalMisses != want.Levels[l].TotalMisses {
			t.Errorf("SMALL L%d: misses %d, want %d", l+1, got.Levels[l].TotalMisses, want.Levels[l].TotalMisses)
		}
	}
}

func mustBuild(t *testing.T, name string, sz polybench.Size) *scop.Program {
	t.Helper()
	k, ok := polybench.ByName(name)
	if !ok {
		t.Fatalf("no kernel %s", name)
	}
	return k.Build(sz)
}

// TestSizeSweepValidation covers the error paths.
func TestSizeSweepValidation(t *testing.T) {
	cfg := core.Config{LineSize: 64, CacheSizes: []int64{512}}
	if _, err := SizeSweep(sizeSweepProgram(), cfg, nil, DefaultOptions()); err == nil {
		t.Error("empty size list accepted")
	}
	concrete := scop.NewProgram("c")
	a := concrete.NewArray("A", scop.ElemFloat64, 8)
	concrete.Add(scop.For(scop.V("i"), scop.C(0), scop.C(8), scop.Stmt("S0", scop.Read(a, scop.X(scop.V("i"))))))
	if _, err := SizeSweep(concrete, cfg, []map[string]int64{{"N": 1}}, DefaultOptions()); err == nil {
		t.Error("non-parametric program accepted")
	}
}
