package presburger

import (
	"fmt"
	"sort"

	"haystack/internal/ints"
)

// ResidueClass records a congruence a basic set implies on its dimensions:
// expr ≡ R (mod m), where Key canonically encodes the pair (expr, m). The
// classes are a cheap separation signature for the piecewise folds of the
// counting pipeline: two basic sets whose signatures share a Key with
// different residues R are provably disjoint.
//
// The congruences come from the equality constraints. An equality
//
//	c0 + Σ aj·xj + Σ bk·ek = 0
//
// over integer div variables ek implies c0 + Σ aj·xj ≡ 0 (mod g) for
// g = gcd(|bk|) — regardless of how the divs are defined, because every ek
// takes integer values. Residue-striped domains (residue splits of the
// counting engine, cache-set partitions) carry exactly such equalities, and
// without this signature their overlap tests fall through to the expensive
// symbolic subtraction even though the stripes are trivially disjoint.
type ResidueClass struct {
	Key string
	R   int64
}

// ResidueClasses derives the canonical residue signature of the basic set,
// sorted by Key. Congruences are normalized (sign of the leading
// coefficient, common factor of coefficients and modulus divided out), so
// equal congruences produce equal keys across independently built sets.
func (bs BasicSet) ResidueClasses() []ResidueClass {
	ndim := bs.b.ndim
	seen := map[string]int64{}
	var out []ResidueClass
	for _, c := range bs.b.cons {
		if !c.Eq {
			continue
		}
		cc := c.C
		var g int64
		for j := 1 + ndim; j < len(cc); j++ {
			g = ints.GCD(g, cc[j])
		}
		if g <= 1 {
			continue
		}
		coeffs := make([]int64, ndim)
		nonZero := false
		for d := 0; d < ndim && 1+d < len(cc); d++ {
			coeffs[d] = cc[1+d]
			if coeffs[d] != 0 {
				nonZero = true
			}
		}
		if !nonZero {
			// A constant congruence carries no separation value: it is either
			// vacuous or makes the set empty, and emptiness is detected
			// elsewhere.
			continue
		}
		c0 := cc[0]
		// Divide out the common factor of the coefficients and the modulus:
		// d·expr ≡ r (mod d·m) is expr ≡ r/d (mod m), and classes with a
		// residue the factor does not divide are empty.
		f := g
		for _, a := range coeffs {
			f = ints.GCD(f, a)
		}
		r := ((-c0)%g + g) % g
		if f > 1 {
			if r%f != 0 {
				continue // empty set; no separation claim needed
			}
			for d := range coeffs {
				coeffs[d] /= f
			}
			g /= f
			r /= f
			if g <= 1 {
				continue
			}
		}
		// Canonical sign: make the leading nonzero coefficient positive
		// (negating the equality negates expr and c0 but keeps the class).
		for _, a := range coeffs {
			if a == 0 {
				continue
			}
			if a < 0 {
				for d := range coeffs {
					coeffs[d] = -coeffs[d]
				}
				r = (g - r) % g
			}
			break
		}
		key := fmt.Sprintf("%d|%v", g, coeffs)
		if _, ok := seen[key]; ok {
			// A second congruence on the same expression either repeats the
			// first or empties the set; keep the first for a stable signature.
			continue
		}
		seen[key] = r
		out = append(out, ResidueClass{Key: key, R: r})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// ResiduesSeparate reports whether two residue signatures (each sorted by
// Key, as ResidueClasses returns them) prove their basic sets disjoint: some
// congruence over the same expression and modulus holds with different
// residues in the two sets.
func ResiduesSeparate(a, b []ResidueClass) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].Key < b[j].Key:
			i++
		case a[i].Key > b[j].Key:
			j++
		default:
			if a[i].R != b[j].R {
				return true
			}
			i++
			j++
		}
	}
	return false
}
