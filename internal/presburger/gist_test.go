package presburger

import (
	"fmt"
	"math/rand"
	"testing"
)

func gistIneq(ncols int, c0 int64, coeffs ...int64) Constraint {
	c := Constraint{C: NewVec(ncols)}
	c.C[0] = c0
	for i, v := range coeffs {
		c.C[1+i] = v
	}
	return c
}

func TestGistDropsImpliedConstraints(t *testing.T) {
	sp := NewSpace("S", "i", "j")
	ctx := UniverseBasicSet(sp)
	w := ctx.NCols()
	ctx = ctx.AddConstraint(gistIneq(w, 0, 1, 0))  // i >= 0
	ctx = ctx.AddConstraint(gistIneq(w, 9, -1, 0)) // i <= 9
	ctx = ctx.AddConstraint(gistIneq(w, 0, 0, 1))  // j >= 0
	ctx = ctx.AddConstraint(gistIneq(w, 9, 0, -1)) // j <= 9
	bs := UniverseBasicSet(sp)
	bs = bs.AddConstraint(gistIneq(w, 0, 1, 0))    // i >= 0: implied by ctx
	bs = bs.AddConstraint(gistIneq(w, 20, -1, -1)) // i + j <= 20: implied by ctx
	bs = bs.AddConstraint(gistIneq(w, -1, -1, 1))  // j >= i+1: not implied
	g := bs.Gist(ctx)
	if got := len(g.Constraints()); got != 1 {
		t.Fatalf("gist kept %d constraints, want 1: %v", got, g)
	}
	// Within the context nothing changed.
	for i := int64(0); i < 10; i++ {
		for j := int64(0); j < 10; j++ {
			p := []int64{i, j}
			if bs.Contains(p) != g.Contains(p) {
				t.Fatalf("gist changed membership of %v inside the context", p)
			}
		}
	}
}

func TestGistKeepsUnimpliedConstraints(t *testing.T) {
	sp := NewSpace("S", "i")
	ctx := UniverseBasicSet(sp)
	w := ctx.NCols()
	ctx = ctx.AddConstraint(gistIneq(w, 0, 1)) // i >= 0
	bs := UniverseBasicSet(sp)
	bs = bs.AddConstraint(gistIneq(w, 5, -1)) // i <= 5: not implied
	g := bs.Gist(ctx)
	if got := len(g.Constraints()); got != 1 {
		t.Fatalf("gist dropped an unimplied constraint: %v", g)
	}
}

// TestGistRandomizedContextIdentity fuzzes the defining identity
// g ∩ ctx == b ∩ ctx over random systems with and without divs.
func TestGistRandomizedContextIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	sp := NewSpace("S", "x", "y")
	for trial := 0; trial < 80; trial++ {
		mk := func(n int) BasicSet {
			bs := UniverseBasicSet(sp)
			w := bs.NCols()
			bs = bs.AddConstraint(gistIneq(w, 0, 1, 0))
			bs = bs.AddConstraint(gistIneq(w, 7, -1, 0))
			bs = bs.AddConstraint(gistIneq(w, 0, 0, 1))
			bs = bs.AddConstraint(gistIneq(w, 7, 0, -1))
			for k := 0; k < n; k++ {
				bs = bs.AddConstraint(gistIneq(w, int64(rng.Intn(9)-2),
					int64(rng.Intn(3)-1), int64(rng.Intn(3)-1)))
			}
			if rng.Intn(3) == 0 {
				den := int64(2 + rng.Intn(3))
				var col int
				bs, col = bs.AddDiv(Vec{0, 1, 0}, den)
				c := NewVec(bs.NCols())
				c[1], c[col] = 1, -den
				bs = bs.AddConstraint(Constraint{C: c})
			}
			return bs
		}
		bs := mk(1 + rng.Intn(2))
		ctx := mk(rng.Intn(2))
		g := bs.Gist(ctx)
		for x := int64(0); x < 8; x++ {
			for y := int64(0); y < 8; y++ {
				p := []int64{x, y}
				if !ctx.Contains(p) {
					continue
				}
				if bs.Contains(p) != g.Contains(p) {
					t.Fatalf("trial %d: membership of %v differs inside context\nbs=%v\nctx=%v\ngist=%v",
						trial, p, bs, ctx, g)
				}
			}
		}
	}
}

// TestSubtractMatchesScanWithSharedContext exercises the gist path inside
// subtraction: operands share most constraints (the shape the pipeline
// produces), and the difference must stay exact.
func TestSubtractMatchesScanWithSharedContext(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	sp := NewSpace("S", "x", "y")
	for trial := 0; trial < 60; trial++ {
		base := UniverseBasicSet(sp)
		w := base.NCols()
		base = base.AddConstraint(gistIneq(w, 0, 1, 0))
		base = base.AddConstraint(gistIneq(w, 7, -1, 0))
		base = base.AddConstraint(gistIneq(w, 0, 0, 1))
		base = base.AddConstraint(gistIneq(w, 7, 0, -1))
		a := base.AddConstraint(gistIneq(w, int64(rng.Intn(7)), int64(rng.Intn(3)-1), 1))
		o := a
		for k := 0; k < 1+rng.Intn(2); k++ {
			o = o.AddConstraint(gistIneq(w, int64(rng.Intn(9)-2),
				int64(rng.Intn(3)-1), int64(rng.Intn(3)-1)))
		}
		diff := a.Subtract(o)
		for x := int64(0); x < 8; x++ {
			for y := int64(0); y < 8; y++ {
				p := []int64{x, y}
				want := a.Contains(p) && !o.Contains(p)
				if got := diff.Contains(p); got != want {
					t.Fatalf("trial %d: (a\\o).Contains(%v) = %v, want %v\na=%v\no=%v\ndiff=%v",
						trial, p, got, want, a, o, diff)
				}
			}
		}
	}
}

func ExampleBasicSet_Gist() {
	sp := NewSpace("S", "i")
	ctx := UniverseBasicSet(sp)
	ctx = ctx.AddConstraint(Constraint{C: Vec{0, 1}})  // i >= 0
	ctx = ctx.AddConstraint(Constraint{C: Vec{9, -1}}) // i <= 9
	bs := UniverseBasicSet(sp)
	bs = bs.AddConstraint(Constraint{C: Vec{0, 1}})  // i >= 0 (implied)
	bs = bs.AddConstraint(Constraint{C: Vec{5, -1}}) // i <= 5 (kept)
	fmt.Println(bs.Gist(ctx))
	// Output: { S(i) : 5 + -i >= 0 }
}
