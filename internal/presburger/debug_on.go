//go:build haystackdebug

package presburger

// debugInvariants is true under the haystackdebug build tag: the
// debugAssert* hooks at the mutation frontiers validate the IR invariants
// after every simplify, coalesce, gist, and projection, panicking with the
// offending set rendered. The dedicated CI job runs the short test suite in
// this mode.
const debugInvariants = true
