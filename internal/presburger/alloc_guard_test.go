package presburger

import "testing"

// TestSimplifyDedupAllocBudget pins the allocation count of the clone +
// simplify hot path that BenchmarkSimplifyDedup measures. The slab clone and
// the pooled simplify scratch brought it to ~24 allocs/op; the budget of 30
// leaves headroom for toolchain noise while failing loudly on a regression
// to per-vector allocation (hundreds per op). Skipped under the race
// detector and the haystackdebug invariant build, whose instrumentation
// allocates on its own.
func TestSimplifyDedupAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts differ under the race detector")
	}
	if debugInvariants {
		t.Skip("invariant assertions allocate; budget holds for normal builds only")
	}
	proto := benchmarkBasic(64)
	allocs := testing.AllocsPerRun(200, func() {
		cl := proto.clone()
		if !cl.simplify() {
			panic("benchmark basic should stay feasible")
		}
	})
	if allocs > 30 {
		t.Errorf("clone+simplify = %.1f allocs/op, budget is 30", allocs)
	}
}
