package presburger

import (
	"sync"
	"sync/atomic"
)

// The arena layer takes the Presburger hot paths off the allocator in two
// ways. First, basic.clone packs every coefficient vector of the copy into
// one slab allocation (see basic.go): capacity-clamped subslices keep the
// vectors independent — an append can only reallocate, never clobber a
// neighbour — and Vec.Resized always copies, so a slab-backed vector that
// changes width leaves the slab behind. Second, the transient scratch of
// the innermost loops (simplify's per-column bound tracking, point
// evaluation during enumeration) is recycled through free lists.
//
// Ownership rule: scratch obtained from a free list never escapes the call
// that got it — anything that must outlive the call is cloned into fresh
// memory first. Callers of the public API never see arena-backed memory.

// Process-wide free-list effectiveness counters, atomically maintained so
// concurrent workers can share the free lists. A hit is a buffer served
// from a free list; a miss is a fresh allocation (empty list or a buffer
// too small for the requested width).
var (
	arenaHits   atomic.Int64
	arenaMisses atomic.Int64
)

// ArenaCounters is a snapshot of the coefficient-vector free-list counters.
type ArenaCounters struct {
	Hits   int64 // scratch buffers served from a free list
	Misses int64 // scratch requests that had to allocate
}

// Sub returns the counter-wise difference c - o, for diffing two snapshots.
func (c ArenaCounters) Sub(o ArenaCounters) ArenaCounters {
	return ArenaCounters{Hits: c.Hits - o.Hits, Misses: c.Misses - o.Misses}
}

// ArenaCountersSnapshot returns the current process-wide arena counters.
// Like CoalesceCountersSnapshot it is monotonic; callers diff two snapshots
// to attribute activity to a phase (best-effort under concurrency).
func ArenaCountersSnapshot() ArenaCounters {
	return ArenaCounters{Hits: arenaHits.Load(), Misses: arenaMisses.Load()}
}

// boundsScratch is the per-column bound tracking used by
// hasConflictingBounds, recycled to avoid four map allocations per
// simplify. Slices are indexed by column and sized to the widest basic
// seen by the owning free-list slot.
type boundsScratch struct {
	lo, hi         []int64
	haveLo, haveHi []bool
}

var boundsPool = sync.Pool{New: func() any { return new(boundsScratch) }}

// getBounds returns cleared per-column bound scratch for n columns.
func getBounds(n int) *boundsScratch {
	s := boundsPool.Get().(*boundsScratch)
	if cap(s.haveLo) < n {
		arenaMisses.Add(1)
		s.lo = make([]int64, n)
		s.hi = make([]int64, n)
		s.haveLo = make([]bool, n)
		s.haveHi = make([]bool, n)
		return s
	}
	arenaHits.Add(1)
	s.lo = s.lo[:n]
	s.hi = s.hi[:n]
	s.haveLo = s.haveLo[:n]
	s.haveHi = s.haveHi[:n]
	for i := 0; i < n; i++ {
		s.haveLo[i] = false
		s.haveHi[i] = false
	}
	return s
}

func putBounds(s *boundsScratch) { boundsPool.Put(s) }

// colsPool recycles the column-vector buffers of point evaluation
// (evalColumnsInto) — the innermost loop of enumeration fallbacks.
var colsPool = sync.Pool{New: func() any { return new([]int64) }}

// getCols returns an uninitialized column buffer of length n.
func getCols(n int) *[]int64 {
	p := colsPool.Get().(*[]int64)
	if cap(*p) < n {
		arenaMisses.Add(1)
		*p = make([]int64, n)
	} else {
		arenaHits.Add(1)
		*p = (*p)[:n]
	}
	return p
}

func putCols(p *[]int64) { colsPool.Put(p) }
