package presburger

import (
	"sort"
	"strings"
)

// UnionSet is a collection of sets living in differently named spaces
// (e.g. the instances of several statements).
type UnionSet struct {
	sets map[string]Set
}

// NewUnionSet returns an empty union set.
func NewUnionSet() UnionSet { return UnionSet{sets: map[string]Set{}} }

// Add unions a set into the collection.
func (u UnionSet) Add(s Set) UnionSet {
	out := u.cloneShallow()
	if cur, ok := out.sets[s.space.Name]; ok {
		out.sets[s.space.Name] = cur.Union(s)
	} else {
		out.sets[s.space.Name] = s
	}
	return out
}

// Get returns the set in the named space.
func (u UnionSet) Get(name string) (Set, bool) {
	s, ok := u.sets[name]
	return s, ok
}

// Sets returns the member sets sorted by space name.
func (u UnionSet) Sets() []Set {
	names := make([]string, 0, len(u.sets))
	for n := range u.sets {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]Set, 0, len(names))
	for _, n := range names {
		out = append(out, u.sets[n])
	}
	return out
}

// Union returns the union of two union sets.
func (u UnionSet) Union(o UnionSet) UnionSet {
	out := u.cloneShallow()
	for _, s := range o.Sets() {
		out = out.Add(s)
	}
	return out
}

func (u UnionSet) cloneShallow() UnionSet {
	out := NewUnionSet()
	for k, v := range u.sets {
		out.sets[k] = v
	}
	return out
}

// String renders the union set.
func (u UnionSet) String() string {
	parts := make([]string, 0, len(u.sets))
	for _, s := range u.Sets() {
		parts = append(parts, s.String())
	}
	return strings.Join(parts, "; ")
}

type spacePair struct{ in, out string }

// UnionMap is a collection of maps between differently named spaces
// (e.g. a schedule mapping every statement into the schedule space, or an
// access map from statements to arrays).
type UnionMap struct {
	maps map[spacePair]Map
}

// NewUnionMap returns an empty union map.
func NewUnionMap() UnionMap { return UnionMap{maps: map[spacePair]Map{}} }

// Add unions a map into the collection.
func (u UnionMap) Add(m Map) UnionMap {
	out := u.cloneShallow()
	key := spacePair{m.in.Name, m.out.Name}
	if cur, ok := out.maps[key]; ok {
		out.maps[key] = cur.Union(m)
	} else {
		out.maps[key] = m
	}
	return out
}

// Maps returns the member maps in a deterministic order.
func (u UnionMap) Maps() []Map {
	keys := make([]spacePair, 0, len(u.maps))
	for k := range u.maps {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].in != keys[j].in {
			return keys[i].in < keys[j].in
		}
		return keys[i].out < keys[j].out
	})
	out := make([]Map, 0, len(keys))
	for _, k := range keys {
		out = append(out, u.maps[k])
	}
	return out
}

// Get returns the map between the named spaces.
func (u UnionMap) Get(in, out string) (Map, bool) {
	m, ok := u.maps[spacePair{in, out}]
	return m, ok
}

// Union returns the union of two union maps.
func (u UnionMap) Union(o UnionMap) UnionMap {
	out := u.cloneShallow()
	for _, m := range o.Maps() {
		out = out.Add(m)
	}
	return out
}

func (u UnionMap) cloneShallow() UnionMap {
	out := NewUnionMap()
	for k, v := range u.maps {
		out.maps[k] = v
	}
	return out
}

// Reverse swaps inputs and outputs of every member map.
func (u UnionMap) Reverse() UnionMap {
	out := NewUnionMap()
	for _, m := range u.Maps() {
		out = out.Add(m.Reverse())
	}
	return out
}

// Domain returns the union of the domains of the member maps.
func (u UnionMap) Domain() (UnionSet, error) {
	out := NewUnionSet()
	for _, m := range u.Maps() {
		d, err := m.Domain()
		if err != nil {
			return UnionSet{}, err
		}
		out = out.Add(d)
	}
	return out, nil
}

// Range returns the union of the ranges of the member maps.
func (u UnionMap) Range() (UnionSet, error) {
	out := NewUnionSet()
	for _, m := range u.Maps() {
		r, err := m.Range()
		if err != nil {
			return UnionSet{}, err
		}
		out = out.Add(r)
	}
	return out, nil
}

// ApplyRange composes u with o (o ∘ u) for every pair of member maps whose
// intermediate spaces match by name and arity.
func (u UnionMap) ApplyRange(o UnionMap) (UnionMap, error) {
	out := NewUnionMap()
	for _, a := range u.Maps() {
		for _, b := range o.Maps() {
			if !a.out.Equal(b.in) {
				continue
			}
			c, err := a.ApplyRange(b)
			if err != nil {
				return UnionMap{}, err
			}
			if len(c.basics) > 0 {
				out = out.Add(c)
			}
		}
	}
	return out, nil
}

// Intersect intersects two union maps: member maps between the same pair of
// spaces are intersected, all other members are dropped.
func (u UnionMap) Intersect(o UnionMap) UnionMap {
	out := NewUnionMap()
	for key, m := range u.maps {
		if om, ok := o.maps[key]; ok {
			r := m.Intersect(om)
			if len(r.basics) > 0 {
				out = out.Add(r)
			}
		}
	}
	return out
}

// IntersectDomain restricts every member map to inputs in the union set.
func (u UnionMap) IntersectDomain(s UnionSet) UnionMap {
	out := NewUnionMap()
	for _, m := range u.Maps() {
		if ds, ok := s.Get(m.in.Name); ok {
			r := m.IntersectDomain(ds)
			if len(r.basics) > 0 {
				out = out.Add(r)
			}
		}
	}
	return out
}

// IntersectRange restricts every member map to outputs in the union set.
func (u UnionMap) IntersectRange(s UnionSet) UnionMap {
	out := NewUnionMap()
	for _, m := range u.Maps() {
		if rs, ok := s.Get(m.out.Name); ok {
			r := m.IntersectRange(rs)
			if len(r.basics) > 0 {
				out = out.Add(r)
			}
		}
	}
	return out
}

// String renders the union map.
func (u UnionMap) String() string {
	parts := make([]string, 0, len(u.maps))
	for _, m := range u.Maps() {
		parts = append(parts, m.String())
	}
	return strings.Join(parts, "; ")
}
