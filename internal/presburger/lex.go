package presburger

// IdentityMap returns the identity relation on the space.
func IdentityMap(sp Space) Map {
	bm := UniverseBasicMap(sp, sp)
	n := sp.Dim()
	for i := 0; i < n; i++ {
		c := Constraint{C: NewVec(bm.NCols()), Eq: true}
		c.C[1+i] = -1
		c.C[1+n+i] = 1
		bm.b.addConstraint(c)
	}
	return MapFromBasic(bm)
}

// lexPrefix builds the basic map with x_0 == y_0, ..., x_{d-1} == y_{d-1}
// and y_d - x_d - 1 >= 0 (strict at depth d).
func lexPrefixStrict(sp Space, d int) BasicMap {
	bm := UniverseBasicMap(sp, sp)
	n := sp.Dim()
	for i := 0; i < d; i++ {
		c := Constraint{C: NewVec(bm.NCols()), Eq: true}
		c.C[1+i] = -1
		c.C[1+n+i] = 1
		bm.b.addConstraint(c)
	}
	c := Constraint{C: NewVec(bm.NCols())}
	c.C[1+d] = -1
	c.C[1+n+d] = 1
	c.C[0] = -1
	bm.b.addConstraint(c)
	return bm
}

// LexLT returns the relation { x -> y : x lexicographically smaller than y }
// on the space. Parameter dimensions (sp.NParam) are never ordered: the
// relation holds only between tuples with equal parameter values, and the
// first position that may differ is the first non-parameter dimension.
func LexLT(sp Space) Map {
	m := EmptyMap(sp, sp)
	for d := sp.NParam; d < sp.Dim(); d++ {
		m.basics = append(m.basics, lexPrefixStrict(sp, d))
	}
	return m
}

// LexLE returns the relation { x -> y : x lexicographically smaller than or
// equal to y } on the space.
func LexLE(sp Space) Map {
	return LexLT(sp).Union(IdentityMap(sp))
}

// LexGT returns { x -> y : x lexicographically greater than y }.
func LexGT(sp Space) Map { return LexLT(sp).Reverse() }

// LexGE returns { x -> y : x lexicographically greater than or equal to y }.
func LexGE(sp Space) Map { return LexLE(sp).Reverse() }
