package presburger

import (
	"sort"
	"sync/atomic"
)

// This file implements the simplification layer that keeps unions of basic
// sets and maps small through the compositions of the cache model: without
// it, ApplyRange/Intersect/Subtract chains grow the number of basic maps
// multiplicatively and the symbolic analysis of tiled loop nests becomes
// intractable. The layer mirrors the cheap cases of isl's set coalescing:
//
//   - structural dedup: syntactically identical basics appear once;
//   - subsumption: a basic whose points are all covered by a sibling is
//     dropped (detected syntactically by constraint-set inclusion, and
//     semantically by a budgeted rational implication check);
//   - adjacency: two basics that differ in a single cut constraint and its
//     integer complement merge into one (the slabs Subtract produces), and
//     an equality merges with the adjacent half-space into a closed one;
//   - redundancy elimination: constraints implied by the rest of a basic
//     are dropped (budgeted Fourier–Motzkin), which both shrinks the
//     constraint systems and makes the syntactic rules above fire.
//
// Every rule is exact: coalescing never changes the set of integer points,
// and it preserves pairwise disjointness of the input basics (merges cover
// exactly the union of the merged pair), so disjoint decompositions stay
// disjoint.

// Package-wide coalescing hit counters. They are atomics so the parallel
// pipeline stages can share them; totals are deterministic for a fixed
// workload because the set of coalesce calls does not depend on scheduling.
var (
	coalesceDedupHits     atomic.Int64
	coalesceSubsumedHits  atomic.Int64
	coalesceAdjacentHits  atomic.Int64
	coalesceRedundantHits atomic.Int64
)

// CoalesceCounters is a snapshot of the package-wide coalescing counters.
type CoalesceCounters struct {
	// Dedup counts basics dropped as syntactic duplicates of a sibling.
	Dedup int64
	// Subsumed counts basics dropped because a sibling contains them.
	Subsumed int64
	// Adjacent counts pair merges across a single cut constraint.
	Adjacent int64
	// RedundantConstraints counts constraints dropped as implied by the
	// remaining constraints of their basic.
	RedundantConstraints int64
}

// CoalesceCountersSnapshot returns the current values of the coalescing
// counters. Callers measure a pipeline stage by subtracting two snapshots.
func CoalesceCountersSnapshot() CoalesceCounters {
	return CoalesceCounters{
		Dedup:                coalesceDedupHits.Load(),
		Subsumed:             coalesceSubsumedHits.Load(),
		Adjacent:             coalesceAdjacentHits.Load(),
		RedundantConstraints: coalesceRedundantHits.Load(),
	}
}

// Sub returns the counter deltas c - o.
func (c CoalesceCounters) Sub(o CoalesceCounters) CoalesceCounters {
	return CoalesceCounters{
		Dedup:                c.Dedup - o.Dedup,
		Subsumed:             c.Subsumed - o.Subsumed,
		Adjacent:             c.Adjacent - o.Adjacent,
		RedundantConstraints: c.RedundantConstraints - o.RedundantConstraints,
	}
}

// Total returns the sum of all hit counters.
func (c CoalesceCounters) Total() int64 {
	return c.Dedup + c.Subsumed + c.Adjacent + c.RedundantConstraints
}

// Budget limits for the semantic (Fourier–Motzkin based) checks. The
// syntactic rules run unconditionally; the semantic rules bail out on
// systems larger than these bounds, which keeps coalescing strictly cheap
// relative to the compositions it protects. Bailing out only loses merges,
// never correctness.
const (
	redundancyMaxCons = 64
	redundancyMaxCols = 40
	implicationBudget = 256
)

// Coalesce returns a set covering exactly the same integer points with a
// (weakly) smaller number of basic sets. It runs the full rule stack,
// including the budgeted Fourier–Motzkin redundancy elimination and
// semantic subsumption checks; the cheaper syntactic subset of the rules
// runs automatically inside Subtract, Intersect, and ApplyRange.
func (s Set) Coalesce() Set { return s.coalesce(true) }

func (s Set) coalesce(full bool) Set {
	if len(s.basics) == 0 || (len(s.basics) == 1 && !full) {
		return s
	}
	bs := make([]*basic, len(s.basics))
	for i := range s.basics {
		bs[i] = &s.basics[i].b
	}
	merged := coalesceBasics(bs, full)
	out := Set{space: s.space, basics: make([]BasicSet, len(merged))}
	for i, b := range merged {
		b.debugAssert("coalesce", false)
		out.basics[i] = BasicSet{space: s.space, b: *b}
	}
	return out
}

// Coalesce returns a map covering exactly the same relation pairs with a
// (weakly) smaller number of basic maps. See Set.Coalesce for the
// full/quick rule split.
func (m Map) Coalesce() Map { return m.coalesce(true) }

// CoalesceQuick runs only the syntactic coalescing rules (dedup, subset
// subsumption, adjacency) — the subset cheap enough for hot inner loops.
func (m Map) CoalesceQuick() Map { return m.coalesce(false) }

func (m Map) coalesce(full bool) Map {
	if len(m.basics) == 0 || (len(m.basics) == 1 && !full) {
		return m
	}
	bs := make([]*basic, len(m.basics))
	for i := range m.basics {
		bs[i] = &m.basics[i].b
	}
	merged := coalesceBasics(bs, full)
	out := Map{in: m.in, out: m.out, basics: make([]BasicMap, len(merged))}
	for i, b := range merged {
		b.debugAssert("coalesce", false)
		out.basics[i] = BasicMap{in: m.in, out: m.out, b: *b}
	}
	return out
}

// coalEntry caches the canonical shape of one basic during coalescing.
type coalEntry struct {
	b *basic
	// divSig is a hash of the div list (definitions in order); two basics can
	// only be compared constraint-wise when their div lists are compatible.
	divSig uint64
	// hashes[i] is the hash of constraint i (computed once per entry; every
	// pairwise comparison reuses it).
	hashes []uint64
	// consHash maps a constraint hash to the constraint indices bearing it.
	consHash map[uint64][]int
	// sig is a hash of the whole basic (divs plus sorted constraint hashes).
	sig uint64
}

func newCoalEntry(b *basic) *coalEntry {
	e := &coalEntry{b: b, consHash: make(map[uint64][]int, len(b.cons))}
	e.divSig = hashDivs(b)
	e.hashes = make([]uint64, len(b.cons))
	sorted := make([]uint64, len(b.cons))
	for i, c := range b.cons {
		h := constraintHash(c)
		e.hashes[i] = h
		sorted[i] = h
		e.consHash[h] = append(e.consHash[h], i)
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	sig := e.divSig ^ 0x9e3779b97f4a7c15
	for _, h := range sorted {
		sig = fnvMix(sig, h)
	}
	sig = fnvMix(sig, uint64(b.ndim))
	e.sig = sig
	return e
}

// hasConstraintHashed reports whether the entry's basic contains a
// constraint structurally equal to c, whose hash the caller already knows.
func (e *coalEntry) hasConstraintHashed(h uint64, c Constraint) bool {
	for _, idx := range e.consHash[h] {
		if constraintsEqual(e.b.cons[idx], c) {
			return true
		}
	}
	return false
}

// coalesceMaxPasses bounds the pairwise fixpoint iteration; coalescing
// converges in two or three passes in practice.
const coalesceMaxPasses = 8

// coalesceBasics is the workhorse: it simplifies and canonicalizes every
// basic, drops duplicates and subsumed basics, and merges adjacent pairs
// until no rule fires (or the pass budget runs out). The input pointers are
// not modified; the result aliases freshly cloned basics. With full set,
// the budgeted Fourier–Motzkin rules (per-basic redundancy elimination and
// semantic subsumption) run too; without it only the syntactic rules do,
// which is cheap enough to run inside every set operation.
func coalesceBasics(in []*basic, full bool) []*basic {
	entries := make([]*coalEntry, 0, len(in))
	for _, b := range in {
		cl := b.clone()
		if !cl.simplify() {
			continue
		}
		cl.dropUnusedDivs()
		if full {
			cl.removeRedundantCons()
		}
		entries = append(entries, newCoalEntry(&cl))
	}
	entries = dedupEntries(entries)

	// Pairwise fixpoint: subsumption drops entries, adjacency merges pairs.
	// Removals are marked and compacted per pass so a pass stays a single
	// O(n²) sweep.
	for pass := 0; pass < coalesceMaxPasses; pass++ {
		changed := false
		removed := make([]bool, len(entries))
		for i := range entries {
			if removed[i] {
				continue
			}
			for j := range entries {
				if i == j || removed[j] || removed[i] {
					continue
				}
				a, b := entries[i], entries[j]
				// Subsumption: every constraint of b also constrains a, so a
				// is a subset of b (b's divs are a prefix of a's, hence
				// aligned columns). The syntactic inclusion is checked first;
				// the semantic check covers constraints a only implies.
				if divsCompatible(b.b, a.b) &&
					((len(b.b.cons) <= len(a.b.cons) && entryContainsAll(a, b)) ||
						(full && semanticallyContains(b, a, 2))) {
					coalesceSubsumedHits.Add(1)
					removed[i] = true
					changed = true
					break
				}
				if j > i {
					if merged, ok := tryMergePair(a, b, full); ok {
						coalesceAdjacentHits.Add(1)
						entries[i] = merged
						removed[j] = true
						changed = true
					}
				}
			}
		}
		if changed {
			out := entries[:0]
			for i, e := range entries {
				if !removed[i] {
					out = append(out, e)
				}
			}
			entries = out
		} else {
			break
		}
	}
	out := make([]*basic, len(entries))
	for i, e := range entries {
		out[i] = e.b
	}
	return out
}

// dedupEntries removes syntactic duplicates (same signature, verified
// structurally).
func dedupEntries(entries []*coalEntry) []*coalEntry {
	bySig := make(map[uint64][]*coalEntry, len(entries))
	out := entries[:0]
	for _, e := range entries {
		dup := false
		for _, prev := range bySig[e.sig] {
			if basicsEqual(prev.b, e.b) {
				dup = true
				break
			}
		}
		if dup {
			coalesceDedupHits.Add(1)
			continue
		}
		bySig[e.sig] = append(bySig[e.sig], e)
		out = append(out, e)
	}
	return out
}

// divsCompatible reports whether the divs of a are a prefix of the divs of
// b, so that every column of a's layout means the same thing in b's.
func divsCompatible(a, b *basic) bool {
	if a.ndim != b.ndim || len(a.divs) > len(b.divs) {
		return false
	}
	for i, d := range a.divs {
		o := b.divs[i]
		if d.Den != o.Den || !vecsEqualTrimmed(d.Num, o.Num) {
			return false
		}
	}
	return true
}

// entryContainsAll reports whether every constraint of b is structurally
// present in a.
func entryContainsAll(a, b *coalEntry) bool {
	for i, c := range b.b.cons {
		if !a.hasConstraintHashed(b.hashes[i], c) {
			return false
		}
	}
	return true
}

// semanticallyContains reports whether sub ⊆ sup can be shown by rational
// implication: for every constraint c of sup not already present in sub,
// sub ∧ ¬c must be rationally infeasible. sup's divs must be a prefix of
// sub's (checked by the caller), so sup's constraints read correctly over
// sub's columns. A false result makes no claim. The Fourier–Motzkin
// implication check is only worth its cost for near-identical pairs (the
// families Subtract and lexmin splitting produce); pairs with more than
// maxMissing differing constraints are filtered out before any implication
// check runs.
func semanticallyContains(sup, sub *coalEntry, maxMissing int) bool {
	if len(sub.b.cons) > redundancyMaxCons || sub.b.ncols() > redundancyMaxCols {
		return false
	}
	// Column-layout safety: sup's constraints are evaluated over sub's
	// columns, which is only meaningful when sup's divs are a prefix of
	// sub's. Simplification of a merge candidate can drop a middle div and
	// shift the following columns, so this must be re-checked here even
	// when the caller compared the original pair.
	if !divsCompatible(sup.b, sub.b) {
		return false
	}
	missingIdx, ok := entryExtras(sup, sub, maxMissing)
	if !ok {
		return false
	}
	if len(missingIdx) == 0 {
		return true // syntactic subset (caller usually caught this)
	}
	base := sub.b.materializedConstraints()
	ncols := sub.b.ncols()
	for _, idx := range missingIdx {
		if !impliedByRational(base, sup.b.cons[idx], ncols) {
			return false
		}
	}
	return true
}

// impliedByRational reports whether the constraint c is implied by the
// system cons over the rationals (with integer tightening of the negation):
// it checks that cons ∧ ¬c is infeasible within the elimination budget.
// Equalities are checked as two inequalities.
func impliedByRational(cons []Constraint, c Constraint, ncols int) bool {
	cc := c.C.Resized(ncols)
	if c.Eq {
		le := Constraint{C: cc}
		ge := Constraint{C: cc.Neg()}
		return impliedByRational(cons, le, ncols) && impliedByRational(cons, ge, ncols)
	}
	// ¬(e >= 0) over the integers is -e - 1 >= 0.
	neg := cc.Neg()
	neg[0]--
	test := make([]Constraint, 0, len(cons)+1)
	test = append(test, cons...)
	test = append(test, Constraint{C: neg})
	return budgetedInfeasible(test, ncols)
}

// budgetedInfeasible runs rational Fourier–Motzkin elimination over all
// non-constant columns and reports whether a constant contradiction was
// derived. If the intermediate system grows beyond the budget the check
// gives up and reports false (feasible), which is always safe for the
// callers (they simply skip a merge or keep a constraint).
func budgetedInfeasible(cons []Constraint, ncols int) bool {
	if hasDivisibilityContradiction(cons) {
		return true
	}
	for col := ncols - 1; col >= 1; col-- {
		cons = rationalEliminate(cons, col)
		if hasDivisibilityContradiction(cons) {
			return true
		}
		if len(cons) > implicationBudget {
			return false
		}
	}
	for _, c := range cons {
		if c.Eq && c.C[0] != 0 {
			return true
		}
		if !c.Eq && c.C[0] < 0 {
			return true
		}
	}
	return false
}

// entryExtras returns the indices of constraints of a that are not present
// in b, giving up (with ok=false) as soon as more than max are found.
func entryExtras(a, b *coalEntry, max int) ([]int, bool) {
	var out []int
	for i, c := range a.b.cons {
		if !b.hasConstraintHashed(a.hashes[i], c) {
			if len(out) == max {
				return nil, false
			}
			out = append(out, i)
		}
	}
	return out, true
}

// isComplement reports whether the inequality vectors u and v describe
// complementary integer half-spaces: v == -u with the constant shifted by
// one (u·x >= 0 vs u·x <= -1).
func isComplement(u, v Vec) bool {
	n := len(u)
	if len(v) > n {
		n = len(v)
	}
	at := func(w Vec, i int) int64 {
		if i < len(w) {
			return w[i]
		}
		return 0
	}
	if at(u, 0)+at(v, 0) != -1 {
		return false
	}
	for i := 1; i < n; i++ {
		if at(u, i)+at(v, i) != 0 {
			return false
		}
	}
	return true
}

// eqAdjacent checks whether the inequality ineq is exactly the open side of
// the equality eq (eq·x == 0 next to eq·x >= 1, or next to -eq·x >= 1). It
// returns the closed relaxation covering both (eq·x >= 0 resp. -eq·x >= 0).
func eqAdjacent(eq, ineq Vec) (Vec, bool) {
	n := len(eq)
	if len(ineq) > n {
		n = len(ineq)
	}
	at := func(w Vec, i int) int64 {
		if i < len(w) {
			return w[i]
		}
		return 0
	}
	matches := func(sign int64) bool {
		if at(ineq, 0) != sign*at(eq, 0)-1 {
			return false
		}
		for i := 1; i < n; i++ {
			if at(ineq, i) != sign*at(eq, i) {
				return false
			}
		}
		return true
	}
	for _, sign := range []int64{1, -1} {
		if matches(sign) {
			out := NewVec(n)
			for i := 0; i < n; i++ {
				out[i] = sign * at(eq, i)
			}
			return out, true
		}
	}
	return nil, false
}

// mergeMaxExtras bounds the number of differing constraints the verified
// (Fourier–Motzkin backed) merge rules will consider on either side.
const mergeMaxExtras = 3

// tryMergePair attempts to fuse two basics into one exact replacement. The
// pair's differing constraints are computed once here and shared by every
// rule: the syntactic adjacency fast path, the equality-extension rule
// (tried in both orientations), and the cut rule (symmetric in its inputs,
// so one direction suffices). All merges require identical div lists so the
// two constraint systems read over the same columns.
func tryMergePair(a, b *coalEntry, full bool) (*coalEntry, bool) {
	if a.b.ndim != b.b.ndim || len(a.b.divs) != len(b.b.divs) ||
		a.divSig != b.divSig || !divsCompatible(a.b, b.b) {
		return nil, false
	}
	extrasA, ok := entryExtras(a, b, mergeMaxExtras)
	if !ok {
		return nil, false
	}
	extrasB, ok := entryExtras(b, a, mergeMaxExtras)
	if !ok {
		return nil, false
	}
	if len(extrasA) == 1 && len(extrasB) == 1 {
		if merged, ok := tryAdjacentMerge(a, b, extrasA[0], extrasB[0]); ok {
			return merged, true
		}
	}
	if !full {
		return nil, false
	}
	if merged, ok := tryExtensionMerge(a, b, extrasA, extrasB); ok {
		return merged, true
	}
	if merged, ok := tryExtensionMerge(b, a, extrasB, extrasA); ok {
		return merged, true
	}
	return tryCutMergeFM(a, b, extrasA, extrasB)
}

// tryAdjacentMerge merges two basics that differ in exactly one constraint
// each (indices ai in a, bi in b), when those two constraints are the
// integer complement of each other (cut case: S∧(e>=0) ∪ S∧(e<=-1) == S) or
// an equality adjacent to a half-space (S∧(e==0) ∪ S∧(e>=1) == S∧(e>=0)).
// All other constraints are structurally equal, so no implication check is
// needed — this is the cheap path that also runs in quick mode.
func tryAdjacentMerge(a, b *coalEntry, ai, bi int) (*coalEntry, bool) {
	ca, cb := a.b.cons[ai], b.b.cons[bi]
	switch {
	case !ca.Eq && !cb.Eq && isComplement(ca.C, cb.C):
		// S∧(e>=0) ∪ S∧(-e-1>=0) covers every integer point of S.
		nb := a.b.clone()
		nb.cons = append(nb.cons[:ai], nb.cons[ai+1:]...)
		if !nb.simplify() {
			return nil, false
		}
		return newCoalEntry(&nb), true
	case ca.Eq != cb.Eq:
		// Orient: eqC is the equality, ineqC the inequality.
		eqC, ineqC := ca, cb
		host, drop := &b.b, bi
		if cb.Eq {
			eqC, ineqC = cb, ca
			host, drop = &a.b, ai
		}
		// S∧(e==0) ∪ S∧(e-1>=0)  == S∧(e>=0)
		// S∧(e==0) ∪ S∧(-e-1>=0) == S∧(-e>=0)
		if relaxed, ok := eqAdjacent(eqC.C, ineqC.C); ok {
			nb := (*host).clone()
			nb.cons[drop] = Constraint{C: relaxed.Resized(nb.ncols())}
			if !nb.simplify() {
				return nil, false
			}
			return newCoalEntry(&nb), true
		}
	}
	return nil, false
}

// tryExtensionMerge handles the "equality adjacent to an interval" family:
// among a's extra constraints over b is an equality e == 0 whose hyperplane
// touches the open boundary of b (an extra e - 1 >= 0 or -e - 1 >= 0). The
// candidate M joins both constraint systems, relaxes that boundary to
// include the hyperplane, and drops the equality; by construction
// M ∧ (e == 0) ⊆ a and M ∧ (boundary) ⊆ b, so M ⊆ a ∪ b. The reverse
// inclusions a ⊆ M and b ⊆ M are verified by budgeted rational implication.
// This is the shape lexmin's bound splitting and tiling's slab
// decompositions produce in bulk — e.g. d < i, d == i, d > i three-way
// splits fold back to their bounding box.
func tryExtensionMerge(a, b *coalEntry, extrasA, extrasB []int) (*coalEntry, bool) {
	for _, ai := range extrasA {
		eqc := a.b.cons[ai]
		if !eqc.Eq {
			continue
		}
		for _, bi := range extrasB {
			cb := b.b.cons[bi]
			if cb.Eq {
				continue
			}
			relaxed, adjacent := eqAdjacent(eqc.C, cb.C)
			if !adjacent {
				continue
			}
			cand := b.b.clone()
			cand.cons[bi] = Constraint{C: relaxed.Resized(cand.ncols())}
			for _, aj := range extrasA {
				if aj != ai {
					cand.addConstraint(a.b.cons[aj].Clone())
				}
			}
			if !cand.simplify() {
				continue
			}
			candE := newCoalEntry(&cand)
			// Verify a ⊆ M and b ⊆ M; M ⊆ a ∪ b holds by construction
			// (adding e == 0 back yields a superset of a's system, adding
			// the original boundary yields a superset of b's).
			if !semanticallyContains(candE, a, mergeMaxExtras+1) {
				continue
			}
			if !semanticallyContains(candE, b, mergeMaxExtras+1) {
				continue
			}
			return candE, true
		}
	}
	return nil, false
}

// tryCutMergeFM generalizes the syntactic cut rule: a and b carry a
// complementary constraint pair (c in a, ¬c in b) but may differ in further
// constraints (bounds one side carries explicitly and the other implies).
// The candidate M joins both constraint systems and drops the pair; by
// construction M ∧ c ⊆ a and M ∧ ¬c ⊆ b, so M ⊆ a ∪ b (every integer
// point satisfies c or ¬c). The reverse inclusions a ⊆ M and b ⊆ M are
// verified by budgeted rational implication. The construction is symmetric
// in a and b, so the caller only tries one orientation.
func tryCutMergeFM(a, b *coalEntry, extrasA, extrasB []int) (*coalEntry, bool) {
	for _, ai := range extrasA {
		ca := a.b.cons[ai]
		if ca.Eq {
			continue
		}
		for _, bi := range extrasB {
			cb := b.b.cons[bi]
			if cb.Eq || !isComplement(ca.C, cb.C) {
				continue
			}
			cand := a.b.clone()
			cand.cons = append(cand.cons[:ai], cand.cons[ai+1:]...)
			for _, bj := range extrasB {
				if bj != bi {
					cand.addConstraint(b.b.cons[bj].Clone())
				}
			}
			if !cand.simplify() {
				continue
			}
			candE := newCoalEntry(&cand)
			if !semanticallyContains(candE, a, mergeMaxExtras+1) {
				continue
			}
			if !semanticallyContains(candE, b, mergeMaxExtras+1) {
				continue
			}
			return candE, true
		}
	}
	return nil, false
}

// removeRedundantCons drops inequality constraints that are implied by the
// remaining constraints of the basic (budgeted rational implication).
// Equalities are kept: they carry structure later eliminations rely on.
func (b *basic) removeRedundantCons() {
	if len(b.cons) < 2 || len(b.cons) > redundancyMaxCons || b.ncols() > redundancyMaxCols {
		return
	}
	// Materialize div bounds once; the per-candidate system swaps in the
	// negated candidate and leaves the others.
	for i := len(b.cons) - 1; i >= 0; i-- {
		c := b.cons[i]
		if c.Eq {
			continue
		}
		rest := make([]Constraint, 0, len(b.cons)-1+2*len(b.divs))
		for j, o := range b.cons {
			if j != i {
				rest = append(rest, Constraint{C: o.C.Resized(b.ncols()), Eq: o.Eq})
			}
		}
		rest = append(rest, b.divBoundConstraints()...)
		if impliedByRational(rest, c, b.ncols()) {
			b.cons = append(b.cons[:i], b.cons[i+1:]...)
			coalesceRedundantHits.Add(1)
		}
	}
}

// divBoundConstraints returns the defining bounds of every div
// (den*d <= num <= den*d + den - 1) as constraints over b's columns.
func (b *basic) divBoundConstraints() []Constraint {
	out := make([]Constraint, 0, 2*len(b.divs))
	for i, d := range b.divs {
		num := d.Num.Resized(b.ncols())
		col := b.divCol(i)
		lower := num.Clone()
		lower[col] -= d.Den
		upper := num.Neg()
		upper[col] += d.Den
		upper[0] += d.Den - 1
		out = append(out, Constraint{C: lower}, Constraint{C: upper})
	}
	return out
}

// dropUnusedDivs removes div definitions no constraint or other div
// references, canonicalizing basics whose divs were inherited from
// compositions that no longer need them.
func (b *basic) dropUnusedDivs() {
	for i := len(b.divs) - 1; i >= 0; i-- {
		col := b.divCol(i)
		if !b.usesColumn(col) {
			b.dropColumn(col)
		}
	}
}

// basicsEqual reports structural equality of two basics: same dimensions,
// identical div lists, and the same multiset of constraints.
func basicsEqual(a, b *basic) bool {
	if a.ndim != b.ndim || len(a.divs) != len(b.divs) || len(a.cons) != len(b.cons) {
		return false
	}
	for i := range a.divs {
		if a.divs[i].Den != b.divs[i].Den || !vecsEqualTrimmed(a.divs[i].Num, b.divs[i].Num) {
			return false
		}
	}
	used := make([]bool, len(b.cons))
outer:
	for _, c := range a.cons {
		for j, o := range b.cons {
			if !used[j] && constraintsEqual(c, o) {
				used[j] = true
				continue outer
			}
		}
		return false
	}
	return true
}

// constraintsEqual compares two constraints ignoring trailing zero columns.
func constraintsEqual(a, b Constraint) bool {
	return a.Eq == b.Eq && vecsEqualTrimmed(a.C, b.C)
}

// vecsEqualTrimmed compares two vectors ignoring trailing zero columns.
func vecsEqualTrimmed(a, b Vec) bool {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		var x, y int64
		if i < len(a) {
			x = a[i]
		}
		if i < len(b) {
			y = b[i]
		}
		if x != y {
			return false
		}
	}
	return true
}

// fnv1a hashing over int64 columns; used for the structural signatures of
// constraints, divs, and whole basics. Lookups verify structurally, so a
// hash collision can cost a missed dedup but never a wrong merge.
const (
	fnvOffset = 0xcbf29ce484222325
	fnvPrime  = 0x100000001b3
)

// fnvMix folds one 64-bit word into the hash state with a single
// multiply-shift round (cheaper than byte-wise FNV; every lookup verifies
// structurally, so hash quality only affects the number of compares).
func fnvMix(h, x uint64) uint64 {
	x *= 0x9e3779b97f4a7c15
	x ^= x >> 29
	return (h ^ x) * fnvPrime
}

// constraintHash hashes a constraint ignoring trailing zero columns.
func constraintHash(c Constraint) uint64 {
	h := uint64(fnvOffset)
	if c.Eq {
		h = fnvMix(h, 1)
	} else {
		h = fnvMix(h, 2)
	}
	cc := c.C
	for len(cc) > 0 && cc[len(cc)-1] == 0 {
		cc = cc[:len(cc)-1]
	}
	for _, x := range cc {
		h = fnvMix(h, uint64(x))
	}
	return h
}

// hashDivs hashes the div list of a basic (definitions in order).
func hashDivs(b *basic) uint64 {
	h := uint64(fnvOffset)
	h = fnvMix(h, uint64(len(b.divs)))
	for _, d := range b.divs {
		h = fnvMix(h, uint64(d.Den))
		num := d.Num
		for len(num) > 0 && num[len(num)-1] == 0 {
			num = num[:len(num)-1]
		}
		for _, x := range num {
			h = fnvMix(h, uint64(x))
		}
	}
	return h
}
