package presburger_test

// Native Go fuzz targets for the set-algebra frontiers: simplify, coalesce
// and gist. Every target decodes bounded basic sets from the fuzz input,
// applies the operation, and asserts two properties that hold by
// construction: the result satisfies the IR invariants (CheckInvariants) and
// it covers exactly the same integer points as the input over the bounding
// box the decoder always imposes. The seed corpora are derived from
// PolyBench iteration domains (gemm and trmm at Mini size), plus a
// handcrafted seed exercising the div column.

import (
	"testing"

	"haystack/internal/polybench"
	"haystack/internal/presburger"
	"haystack/internal/scop"
)

const (
	fuzzBoxHi   = 5 // every decoded dim is constrained to [0, fuzzBoxHi]
	fuzzMaxCons = 6 // decoded constraints on top of the box
)

func fuzzSpace(ndim int) presburger.Space {
	names := []string{"d0", "d1", "d2"}
	return presburger.NewSpace("F", names[:ndim]...)
}

// fuzzCoeff maps a byte to a small signed coefficient in [-3, 3]; byte 3
// maps to zero.
func fuzzCoeff(b byte) int64 { return int64(b%7) - 3 }

// decodeDims reads the dimension count (1..3) from the first byte.
func decodeDims(data []byte) (int, []byte, bool) {
	if len(data) == 0 {
		return 0, nil, false
	}
	return 1 + int(data[0]%3), data[1:], true
}

// decodeBasicSet builds a basic set over ndim dims from the byte stream:
// an optional div floor((c + a·dims)/den) with den in 2..4, then up to
// fuzzMaxCons constraints [flag, const, coeffs...], and always the bounding
// box 0 <= d <= fuzzBoxHi per dim (so point enumeration over the box is
// exhaustive for the set).
func decodeBasicSet(ndim int, data []byte) presburger.BasicSet {
	pos := 0
	next := func() (byte, bool) {
		if pos < len(data) {
			b := data[pos]
			pos++
			return b, true
		}
		return 0, false
	}
	var divs []presburger.Div
	if b, ok := next(); ok && b&1 == 1 {
		den := int64(2 + (b>>1)%3)
		num := make(presburger.Vec, 1+ndim)
		for i := range num {
			v, ok := next()
			if !ok {
				break
			}
			num[i] = fuzzCoeff(v)
		}
		divs = append(divs, presburger.Div{Num: num, Den: den})
	}
	ncols := 1 + ndim + len(divs)
	var cons []presburger.Constraint
	for len(cons) < fuzzMaxCons {
		flag, ok := next()
		if !ok {
			break
		}
		cb, ok := next()
		if !ok {
			break
		}
		c := make(presburger.Vec, ncols)
		c[0] = int64(int8(cb))
		nonzero := false
		for j := 1; j < ncols; j++ {
			v, ok := next()
			if !ok {
				break
			}
			c[j] = fuzzCoeff(v)
			if c[j] != 0 {
				nonzero = true
			}
		}
		if !nonzero {
			continue
		}
		cons = append(cons, presburger.Constraint{C: c, Eq: flag&1 == 1})
	}
	for d := 0; d < ndim; d++ {
		lo := make(presburger.Vec, ncols)
		lo[1+d] = 1
		hi := make(presburger.Vec, ncols)
		hi[0], hi[1+d] = fuzzBoxHi, -1
		cons = append(cons, presburger.Constraint{C: lo}, presburger.Constraint{C: hi})
	}
	return presburger.NewBasicSet(fuzzSpace(ndim), divs, cons)
}

// forEachBoxPoint enumerates [0, fuzzBoxHi]^ndim.
func forEachBoxPoint(ndim int, fn func(p []int64)) {
	p := make([]int64, ndim)
	var walk func(d int)
	walk = func(d int) {
		if d == ndim {
			fn(p)
			return
		}
		for v := int64(0); v <= fuzzBoxHi; v++ {
			p[d] = v
			walk(d + 1)
		}
	}
	walk(0)
}

// polybenchSeeds encodes the iteration-domain basics of a PolyBench kernel
// at Mini size into the decoder's byte format. Constraints referencing dims
// beyond the first three, div columns, or coefficients outside the decoder's
// range are skipped; the constant must fit an int8.
func polybenchSeeds(tb testing.TB, kernel string) [][]byte {
	k, ok := polybench.ByName(kernel)
	if !ok {
		tb.Fatalf("unknown PolyBench kernel %q", kernel)
	}
	info, err := scop.BuildPoly(k.Build(polybench.Mini))
	if err != nil {
		tb.Fatalf("BuildPoly(%s): %v", kernel, err)
	}
	var seeds [][]byte
	for _, ps := range info.Statements {
		for _, bs := range ps.Domain.Basics() {
			ndim := bs.NDim()
			if ndim > 3 {
				ndim = 3
			}
			if ndim == 0 {
				continue
			}
			buf := []byte{byte(ndim - 1), 0} // dims header, no div
			n := 0
			for _, c := range bs.Constraints() {
				if n == fuzzMaxCons {
					break
				}
				if c.C[0] != int64(int8(c.C[0])) {
					continue
				}
				usable := true
				for j := 1; j < len(c.C); j++ {
					v := c.C[j]
					if j > ndim && v != 0 {
						usable = false
						break
					}
					if v < -3 || v > 3 {
						usable = false
						break
					}
				}
				if !usable {
					continue
				}
				flag := byte(0)
				if c.Eq {
					flag = 1
				}
				buf = append(buf, flag, byte(int8(c.C[0])))
				for j := 1; j <= ndim; j++ {
					var v int64
					if j < len(c.C) {
						v = c.C[j]
					}
					buf = append(buf, byte(v+3))
				}
				n++
			}
			if n > 0 {
				seeds = append(seeds, buf)
			}
		}
	}
	return seeds
}

// divSeed exercises the div column: one dim, div0 = floor(d0/2), and the
// parity constraint d0 - 2*div0 == 0.
func divSeed() []byte {
	return []byte{
		0,    // ndim = 1
		1,    // div present, den = 2
		3, 4, // div numerator: const 0, d0 coeff 1
		1, 0, 4, 1, // eq, const 0, d0 coeff 1, div coeff -2
	}
}

func addSetSeeds(f *testing.F) {
	for _, kernel := range []string{"gemm", "trmm"} {
		for _, s := range polybenchSeeds(f, kernel) {
			f.Add(s)
		}
	}
	f.Add(divSeed())
	f.Add([]byte{1, 0, 0, 2, 4, 2, 1}) // 2 dims, ineq d0 - d1 + 2 >= 0 fragment
}

func FuzzSimplify(f *testing.F) {
	addSetSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		ndim, rest, ok := decodeDims(data)
		if !ok {
			t.Skip()
		}
		bs := decodeBasicSet(ndim, rest)
		simp, nonempty := bs.Simplify()
		if nonempty {
			if err := simp.CheckInvariants(); err != nil {
				t.Fatalf("invariants violated after Simplify: %v\nin:  %v\nout: %v", err, bs, simp)
			}
		}
		forEachBoxPoint(ndim, func(p []int64) {
			in := bs.Contains(p)
			if !nonempty {
				if in {
					t.Fatalf("Simplify reported empty but %v is a point of %v", p, bs)
				}
				return
			}
			if got := simp.Contains(p); got != in {
				t.Fatalf("Simplify changed membership of %v: %v -> %v\nin:  %v\nout: %v", p, in, got, bs, simp)
			}
		})
	})
}

func FuzzCoalesce(f *testing.F) {
	seeds := polybenchSeeds(f, "gemm")
	for _, s := range seeds {
		f.Add(s, s)
	}
	f.Add(divSeed(), divSeed())
	f.Fuzz(func(t *testing.T, a, b []byte) {
		ndim, restA, ok := decodeDims(a)
		if !ok {
			t.Skip()
		}
		sa := decodeBasicSet(ndim, restA)
		sb := decodeBasicSet(ndim, b)
		union := presburger.SetFromBasics(sa, sb)
		coalesced := union.Coalesce()
		if err := coalesced.CheckInvariants(); err != nil {
			t.Fatalf("invariants violated after Coalesce: %v\nin:  %v\nout: %v", err, union, coalesced)
		}
		forEachBoxPoint(ndim, func(p []int64) {
			in := sa.Contains(p) || sb.Contains(p)
			if got := coalesced.Contains(p); got != in {
				t.Fatalf("Coalesce changed membership of %v: %v -> %v\nin:  %v\nout: %v", p, in, got, union, coalesced)
			}
		})
	})
}

func FuzzGist(f *testing.F) {
	seeds := polybenchSeeds(f, "trmm")
	for _, s := range seeds {
		f.Add(s, s)
	}
	f.Add(divSeed(), divSeed())
	f.Fuzz(func(t *testing.T, a, b []byte) {
		ndim, restA, ok := decodeDims(a)
		if !ok {
			t.Skip()
		}
		set := decodeBasicSet(ndim, restA)
		ctx := decodeBasicSet(ndim, b)
		g := set.Gist(ctx)
		if err := g.CheckInvariants(); err != nil {
			t.Fatalf("invariants violated after Gist: %v\nset: %v\nctx: %v\nout: %v", err, set, ctx, g)
		}
		// The gist identity: within the context nothing changes.
		forEachBoxPoint(ndim, func(p []int64) {
			if !ctx.Contains(p) {
				return
			}
			if got, want := g.Contains(p), set.Contains(p); got != want {
				t.Fatalf("Gist changed membership of %v within context: %v -> %v\nset: %v\nctx: %v\nout: %v", p, want, got, set, ctx, g)
			}
		})
	})
}
