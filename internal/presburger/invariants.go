package presburger

import (
	"fmt"

	"haystack/internal/ints"
)

// This file implements the IR invariant checker. The representation behind
// BasicSet/BasicMap has invariants the algorithms silently rely on — div
// definitions acyclic and well-ordered (a div numerator may only reference
// strictly earlier columns), vector widths consistent with the column
// layout, arities matching the Space — and silent violations are the
// costliest failure mode of the engine: the circular-div projection bug
// (fixed in the eliminate layer, guarded by substitutionBreaksDivs)
// produced plausible-looking sets whose point semantics had quietly
// changed.
//
// CheckInvariants is always compiled and public, so tests and external
// tooling can validate IR they construct. The debugAssert* helpers wired
// into the mutation frontiers (simplify, coalesce, gist, projection, lexmin
// combine) compile to no-ops unless the haystackdebug build tag is set; a
// tagged test run turns the whole suite into a self-checking harness.

// checkInvariants validates the structural invariants of the
// representation. It returns the first violation found, nil if none.
func (b *basic) checkInvariants() error {
	if b.ndim < 0 {
		return fmt.Errorf("presburger: negative dimension count %d", b.ndim)
	}
	ncols := b.ncols()
	// Vectors may be shorter than ncols (missing columns read as zero), but
	// a longer vector silently truncates under Resized: any non-zero
	// coefficient beyond ncols is latent corruption.
	checkWidth := func(v Vec, what string) error {
		for j := ncols; j < len(v); j++ {
			if v[j] != 0 {
				return fmt.Errorf("presburger: %s has non-zero coefficient %d at column %d beyond ncols %d", what, v[j], j, ncols)
			}
		}
		return nil
	}
	for i, d := range b.divs {
		if d.Den <= 0 {
			return fmt.Errorf("presburger: div %d has non-positive denominator %d", i, d.Den)
		}
		if err := checkWidth(d.Num, fmt.Sprintf("div %d numerator", i)); err != nil {
			return err
		}
		// Well-ordering: the numerator may reference constants, dimensions,
		// and strictly earlier divs only. A self reference makes the div
		// definition circular (the PR 3 projection bug class); a forward
		// reference breaks every evaluator that computes div values left to
		// right (divValue, evalColumns, the scanner).
		selfCol := b.divCol(i)
		for j := selfCol; j < len(d.Num) && j < ncols; j++ {
			if d.Num[j] != 0 {
				which := "later div"
				if j == selfCol {
					which = "itself"
				}
				return fmt.Errorf("presburger: div %d (column %d) references %s (column %d): div definitions must be acyclic and well-ordered", i, selfCol, which, j)
			}
		}
	}
	for i, c := range b.cons {
		if err := checkWidth(c.C, fmt.Sprintf("constraint %d", i)); err != nil {
			return err
		}
	}
	return nil
}

// checkCanonical validates the canonical-form properties simplify
// establishes when it returns ok: no constant constraints, every constraint
// normalized by the gcd of its coefficients, no duplicate or dominated
// parallel constraints, and no opposite inequality pair that pins a
// hyperplane (simplify turns those into an equality) or contradicts. It is
// meaningful only on the result of a successful simplify.
func (b *basic) checkCanonical() error {
	type seen struct {
		idx int
		c   Constraint
	}
	byHash := map[uint64][]seen{}
	for i, c := range b.cons {
		nonconst := false
		for _, x := range c.C[1:] {
			if x != 0 {
				nonconst = true
				break
			}
		}
		if !nonconst {
			return fmt.Errorf("presburger: constant constraint %d survived simplify", i)
		}
		var g int64
		for _, x := range c.C[1:] {
			g = ints.GCD(g, x)
		}
		if g > 1 {
			return fmt.Errorf("presburger: constraint %d not gcd-normalized (gcd %d)", i, g)
		}
		h := coeffHash(c.C, false)
		for _, s := range byHash[h] {
			if coeffsMatch(s.c.C, c.C, false) {
				return fmt.Errorf("presburger: constraints %d and %d are parallel with identical coefficients (duplicate or dominated pair survived simplify)", s.idx, i)
			}
		}
		nh := coeffHash(c.C, true)
		for _, s := range byHash[nh] {
			if !coeffsMatch(s.c.C, c.C, true) {
				continue
			}
			if s.c.Eq || c.Eq {
				return fmt.Errorf("presburger: constraints %d and %d are opposite-parallel with an equality (pinned pair survived simplify)", s.idx, i)
			}
			if s.c.C[0]+c.C[0] <= 0 {
				return fmt.Errorf("presburger: opposite inequalities %d and %d bound an empty or singleton interval (simplify should have detected it)", s.idx, i)
			}
		}
		byHash[h] = append(byHash[h], seen{idx: i, c: c})
	}
	return nil
}

// CheckInvariants validates the structural invariants of the basic set:
// arity consistent with its space, div definitions acyclic and well-ordered
// (numerators reference strictly earlier columns only, denominators
// positive), and vector widths consistent with the column layout.
func (bs BasicSet) CheckInvariants() error {
	if bs.b.ndim != bs.space.Dim() {
		return fmt.Errorf("presburger: basic set has %d dimensions, space %v has %d", bs.b.ndim, bs.space, bs.space.Dim())
	}
	return bs.b.checkInvariants()
}

// CheckInvariants validates the structural invariants of the basic map (see
// BasicSet.CheckInvariants); the dimension count must equal the sum of the
// input and output space arities.
func (bm BasicMap) CheckInvariants() error {
	if want := bm.in.Dim() + bm.out.Dim(); bm.b.ndim != want {
		return fmt.Errorf("presburger: basic map has %d dimensions, spaces %v -> %v have %d", bm.b.ndim, bm.in, bm.out, want)
	}
	return bm.b.checkInvariants()
}

// CheckInvariants validates every basic set of the union and that all of
// them live in the set's space.
func (s Set) CheckInvariants() error {
	for i, bs := range s.basics {
		if !bs.space.Equal(s.space) {
			return fmt.Errorf("presburger: basic set %d lives in %v, union in %v", i, bs.space, s.space)
		}
		if err := bs.CheckInvariants(); err != nil {
			return fmt.Errorf("basic set %d: %w", i, err)
		}
	}
	return nil
}

// CheckInvariants validates every basic map of the union and that all of
// them share the map's spaces.
func (m Map) CheckInvariants() error {
	for i, bm := range m.basics {
		if !bm.in.Equal(m.in) || !bm.out.Equal(m.out) {
			return fmt.Errorf("presburger: basic map %d relates %v -> %v, union %v -> %v", i, bm.in, bm.out, m.in, m.out)
		}
		if err := bm.CheckInvariants(); err != nil {
			return fmt.Errorf("basic map %d: %w", i, err)
		}
	}
	return nil
}

// DebugInvariantsEnabled reports whether the build carries the
// haystackdebug tag, i.e. whether the debugAssert* hooks at the mutation
// frontiers actually check.
func DebugInvariantsEnabled() bool { return debugInvariants }

// debugAssert panics if the basic violates its structural invariants;
// canonical additionally requires the canonical form simplify establishes.
// Compiled away (debugInvariants is a build-tag constant) in normal builds.
func (b *basic) debugAssert(context string, canonical bool) {
	if !debugInvariants {
		return
	}
	if err := b.checkInvariants(); err != nil {
		panic(fmt.Sprintf("presburger: invariant violation after %s: %v\n%s", context, err, b.render(nil)))
	}
	if canonical {
		if err := b.checkCanonical(); err != nil {
			panic(fmt.Sprintf("presburger: canonical-form violation after %s: %v\n%s", context, err, b.render(nil)))
		}
	}
}

// DebugAssertBasicSet panics on invariant violations when the haystackdebug
// build tag is set, and is a no-op otherwise. Exported so other layers
// (lexmin, counting, qpoly) can assert at their own mutation frontiers.
func DebugAssertBasicSet(bs BasicSet, context string) {
	if !debugInvariants {
		return
	}
	if err := bs.CheckInvariants(); err != nil {
		panic(fmt.Sprintf("presburger: invariant violation after %s: %v\n%s", context, err, bs))
	}
}

// DebugAssertBasicMap is DebugAssertBasicSet for basic maps.
func DebugAssertBasicMap(bm BasicMap, context string) {
	if !debugInvariants {
		return
	}
	if err := bm.CheckInvariants(); err != nil {
		panic(fmt.Sprintf("presburger: invariant violation after %s: %v\n%s", context, err, bm))
	}
}

// DebugAssertSet is DebugAssertBasicSet for unions of basic sets.
func DebugAssertSet(s Set, context string) {
	if !debugInvariants {
		return
	}
	if err := s.CheckInvariants(); err != nil {
		panic(fmt.Sprintf("presburger: invariant violation after %s: %v\n%s", context, err, s))
	}
}

// DebugAssertMap is DebugAssertBasicSet for unions of basic maps.
func DebugAssertMap(m Map, context string) {
	if !debugInvariants {
		return
	}
	if err := m.CheckInvariants(); err != nil {
		panic(fmt.Sprintf("presburger: invariant violation after %s: %v\n%s", context, err, m))
	}
}
