package presburger

// This file implements "gist" — simplification in context. gist(b, ctx)
// drops constraints of b that are implied by the context (budgeted rational
// implication with integer tightening of the negation, the same engine the
// coalescer uses). The result g is generally a superset of b, but within the
// context nothing changes: g ∩ ctx == b ∩ ctx. That identity is what makes
// gist safe at the pipeline frontiers where an operand is only ever
// evaluated inside a known context — most importantly subtraction, where
// a \ o == a \ gist(o, a) and every dropped constraint is one fewer piece in
// the difference and one fewer inherited constraint in all pieces after it.

// Budget limits for the per-constraint implication checks. Beyond these the
// gist gives up and keeps constraints, which is always sound.
const (
	gistMaxCons = 96
	gistMaxCols = 48
)

// Gist returns a basic set g with g ∩ ctx == bs ∩ ctx, obtained by dropping
// constraints of bs implied by ctx together with the constraints of bs kept
// so far. Both operands must share a space. Typical use: simplify a set
// before an operation that will re-impose the context anyway.
func (bs BasicSet) Gist(ctx BasicSet) BasicSet {
	if !bs.space.Equal(ctx.space) {
		panic("presburger: gist space mismatch")
	}
	out := bs.clone()
	gistBasic(&out.b, &ctx.b)
	out.b.debugAssert("gist", false)
	return out
}

// Gist returns a basic map g with g ∩ ctx == bm ∩ ctx (see BasicSet.Gist).
func (bm BasicMap) Gist(ctx BasicMap) BasicMap {
	if !bm.in.Equal(ctx.in) || !bm.out.Equal(ctx.out) {
		panic("presburger: gist space mismatch")
	}
	out := bm.clone()
	gistBasic(&out.b, &ctx.b)
	out.b.debugAssert("gist", false)
	return out
}

// gistBasic drops constraints of b implied by ctx ∧ (constraints of b kept
// so far), in place. The two basics must have the same dimension count; the
// context is embedded into b's column space (divs dedup against b's).
func gistBasic(b, ctx *basic) {
	if len(b.cons) == 0 {
		return
	}
	// Build the combined system: b's layout extended with ctx's divs, and
	// the implication base of ctx constraints plus every div's defining
	// bounds.
	work := b.clone()
	nOwn := len(work.cons)
	work.embed(ctx, identityDimMap(ctx.ndim))
	if len(work.cons) > gistMaxCons || work.ncols() > gistMaxCols {
		return
	}
	base := make([]Constraint, 0, len(work.cons)-nOwn+2*len(work.divs))
	for _, c := range work.cons[nOwn:] {
		base = append(base, Constraint{C: c.C.Resized(work.ncols()), Eq: c.Eq})
	}
	base = append(base, work.divBoundConstraints()...)
	ncols := work.ncols()
	cands := make([]Constraint, nOwn)
	for i, c := range b.cons {
		cands[i] = Constraint{C: work.cons[i].C.Resized(ncols), Eq: c.Eq}
	}
	keep := gistFilter(base, ncols, cands)
	kept := b.cons[:0]
	for i, c := range b.cons {
		if keep[i] {
			kept = append(kept, c)
		}
	}
	b.cons = kept
}

// gistFilter is the incremental core shared by gistBasic and subtraction:
// it reports, per candidate constraint, whether it must be kept because the
// base system does not imply it (budgeted rational implication with integer
// tightening). Kept candidates join the base as they are accepted, so a
// later candidate implied only by an earlier kept one is still dropped.
// All vectors must read over the same ncols-wide column space.
func gistFilter(base []Constraint, ncols int, cands []Constraint) []bool {
	keep := make([]bool, len(cands))
	for i, c := range cands {
		if impliedByRational(base, c, ncols) {
			continue
		}
		keep[i] = true
		base = append(base, c)
	}
	return keep
}
