package presburger

import (
	"fmt"
	"math/big"
	"sort"
	"strings"

	"haystack/internal/ints"
)

// Div is a local variable defined as floor(Num·cols / Den) with Den > 0.
// Num is a full-width vector over the columns of the owning basic set or
// map; the coefficient of the div itself and of later divs must be zero.
type Div struct {
	Num Vec
	Den int64
}

// Clone returns a deep copy of the div.
func (d Div) Clone() Div { return Div{Num: d.Num.Clone(), Den: d.Den} }

// Constraint is an affine constraint C·cols >= 0, or C·cols == 0 when Eq is
// set, over the columns of the owning basic set or map.
type Constraint struct {
	C  Vec
	Eq bool
}

// Clone returns a deep copy of the constraint.
func (c Constraint) Clone() Constraint { return Constraint{C: c.C.Clone(), Eq: c.Eq} }

// basic is the shared representation behind BasicSet and BasicMap: ndim real
// tuple dimensions (for a map, input dims followed by output dims), a list
// of local div variables, and a conjunction of constraints. The column
// layout of every Vec is [const, dim_0..dim_{ndim-1}, div_0..div_{k-1}].
type basic struct {
	ndim int
	divs []Div
	cons []Constraint
}

func newBasic(ndim int) basic { return basic{ndim: ndim} }

// ncols returns the number of columns of vectors in b.
func (b *basic) ncols() int { return 1 + b.ndim + len(b.divs) }

// divCol returns the column index of div i.
func (b *basic) divCol(i int) int { return 1 + b.ndim + i }

// dimCol returns the column index of dim i.
func (b *basic) dimCol(i int) int { return 1 + i }

// clone deep-copies b. All coefficient vectors of the copy are packed into
// a single slab allocation: the subslices are capacity-clamped, so a
// later append or Resized on any of them reallocates instead of growing
// into a neighbour, and in-place coefficient writes stay within the
// vector's own window. This keeps clone at O(1) allocations instead of one
// per constraint and div — by far the dominant allocation site of the
// simplify/coalesce/gist pipeline.
func (b *basic) clone() basic {
	nb := basic{ndim: b.ndim}
	total := 0
	for i := range b.divs {
		total += len(b.divs[i].Num)
	}
	for i := range b.cons {
		total += len(b.cons[i].C)
	}
	slab := make([]int64, total)
	off := 0
	sub := func(v Vec) Vec {
		n := len(v)
		dst := slab[off : off+n : off+n]
		copy(dst, v)
		off += n
		return dst
	}
	if len(b.divs) > 0 {
		nb.divs = make([]Div, len(b.divs))
		for i, d := range b.divs {
			nb.divs[i] = Div{Num: sub(d.Num), Den: d.Den}
		}
	}
	if len(b.cons) > 0 {
		nb.cons = make([]Constraint, len(b.cons))
		for i, c := range b.cons {
			nb.cons[i] = Constraint{C: sub(c.C), Eq: c.Eq}
		}
	}
	return nb
}

// resize pads every vector in b to the current ncols (after divs changed).
func (b *basic) resize() {
	n := b.ncols()
	for i := range b.cons {
		if len(b.cons[i].C) != n {
			b.cons[i].C = b.cons[i].C.Resized(n)
		}
	}
	for i := range b.divs {
		if len(b.divs[i].Num) != n {
			b.divs[i].Num = b.divs[i].Num.Resized(n)
		}
	}
}

// addConstraint appends a constraint, padding it to the current width.
func (b *basic) addConstraint(c Constraint) {
	c.C = c.C.Resized(b.ncols())
	b.cons = append(b.cons, c)
}

// addDiv appends a div with the given numerator (any width; padded or
// truncated checked) and denominator, returning its column index. If an
// identical div already exists its column is returned instead.
func (b *basic) addDiv(num Vec, den int64) int {
	if den <= 0 {
		panic("presburger: div with non-positive denominator")
	}
	num = num.Resized(b.ncols())
	// Normalize by gcd of numerator and denominator? Keep literal: floor
	// semantics change under scaling only if all terms share a factor with
	// the denominator; normalize when gcd divides everything exactly.
	for i, d := range b.divs {
		if d.Den != den {
			continue
		}
		same := true
		dn := d.Num.Resized(b.ncols())
		for j := range num {
			if dn[j] != num[j] {
				same = false
				break
			}
		}
		if same {
			return b.divCol(i)
		}
	}
	b.divs = append(b.divs, Div{Num: num, Den: den})
	b.resize()
	return b.divCol(len(b.divs) - 1)
}

// divValue evaluates div i given values for every column before it.
// vals must have length >= divCol(i).
func (b *basic) divValue(i int, vals []int64) int64 {
	d := b.divs[i]
	var s int64
	for j := 0; j < b.divCol(i) && j < len(d.Num); j++ {
		s += d.Num[j] * vals[j]
	}
	return ints.FloorDiv(s, d.Den)
}

// evalColumns computes the full column vector [1, point..., divs...] for a
// point with the given dimension values.
func (b *basic) evalColumns(point []int64) []int64 {
	vals := make([]int64, b.ncols())
	b.evalColumnsInto(point, vals)
	return vals
}

// evalColumnsInto is evalColumns writing into a caller-owned buffer of
// length ncols, for loops that evaluate many points.
func (b *basic) evalColumnsInto(point, vals []int64) {
	if len(point) != b.ndim {
		panic("presburger: point arity mismatch")
	}
	vals[0] = 1
	copy(vals[1:], point)
	for i := range b.divs {
		vals[b.divCol(i)] = b.divValue(i, vals)
	}
}

// contains reports whether the point satisfies all constraints of b.
// Evaluation is overflow-checked: when any product or sum would wrap int64
// (huge parameter values meeting huge coefficients), validation falls back
// to arbitrary-precision arithmetic instead of returning a wrapped verdict.
func (b *basic) contains(point []int64) bool {
	buf := getCols(b.ncols())
	defer putCols(buf)
	vals := *buf
	if !b.evalColumnsIntoTry(point, vals) {
		return b.containsBig(point)
	}
	for _, c := range b.cons {
		v, ok := dotTry(c.C, vals)
		if !ok {
			return b.containsBig(point)
		}
		if c.Eq && v != 0 {
			return false
		}
		if !c.Eq && v < 0 {
			return false
		}
	}
	return true
}

// dotTry computes c·vals with overflow checking.
func dotTry(c Vec, vals []int64) (int64, bool) {
	var s int64
	for i, x := range c {
		if x == 0 || vals[i] == 0 {
			continue
		}
		p, ok := mulNoWrap(x, vals[i])
		if !ok {
			return 0, false
		}
		s, ok = ints.TryAdd(s, p)
		if !ok {
			return 0, false
		}
	}
	return s, true
}

// evalColumnsIntoTry is evalColumnsInto with overflow checking on the div
// numerator sums. ok=false means some div value cannot be represented with
// 64-bit intermediates and the caller must re-evaluate exactly.
func (b *basic) evalColumnsIntoTry(point, vals []int64) bool {
	if len(point) != b.ndim {
		panic("presburger: point arity mismatch")
	}
	vals[0] = 1
	copy(vals[1:], point)
	for i := range b.divs {
		d := b.divs[i]
		s, ok := dotTry(d.Num[:min(b.divCol(i), len(d.Num))], vals)
		if !ok {
			return false
		}
		vals[b.divCol(i)] = ints.FloorDiv(s, d.Den)
	}
	return true
}

// containsBig validates a point with arbitrary-precision arithmetic. It is
// the cold path of contains, reached only when 64-bit evaluation would
// overflow.
func (b *basic) containsBig(point []int64) bool {
	vals := make([]*big.Int, b.ncols())
	vals[0] = big.NewInt(1)
	for i, p := range point {
		vals[1+i] = big.NewInt(p)
	}
	t := new(big.Int)
	for i := range b.divs {
		d := b.divs[i]
		s := new(big.Int)
		for j := 0; j < b.divCol(i) && j < len(d.Num); j++ {
			if d.Num[j] == 0 {
				continue
			}
			s.Add(s, t.Mul(big.NewInt(d.Num[j]), vals[j]))
		}
		// DivMod is Euclidean division; with Den > 0 the quotient matches
		// floor division.
		q, m := new(big.Int), new(big.Int)
		q.DivMod(s, big.NewInt(d.Den), m)
		vals[b.divCol(i)] = q
	}
	s := new(big.Int)
	for _, c := range b.cons {
		s.SetInt64(0)
		for j, x := range c.C {
			if x == 0 {
				continue
			}
			s.Add(s, t.Mul(big.NewInt(x), vals[j]))
		}
		if c.Eq && s.Sign() != 0 {
			return false
		}
		if !c.Eq && s.Sign() < 0 {
			return false
		}
	}
	return true
}

// normalizeConstraint divides a constraint by the gcd of its non-constant
// coefficients and tightens the constant term of inequalities.
func normalizeConstraint(c Constraint) Constraint {
	var g int64
	for _, x := range c.C[1:] {
		g = ints.GCD(g, x)
	}
	if g == 0 {
		return c
	}
	if g > 1 {
		out := c.Clone()
		for i := 1; i < len(out.C); i++ {
			out.C[i] /= g
		}
		if c.Eq {
			// g must divide the constant for solutions to exist; if it does
			// not, leave the constraint unscaled (it will make the basic
			// set empty, which simplify detects elsewhere).
			if c.C[0]%g != 0 {
				return c
			}
			out.C[0] = c.C[0] / g
		} else {
			out.C[0] = ints.FloorDiv(c.C[0], g)
		}
		return out
	}
	return c
}

// normalizeDivs simplifies div definitions: common factors between the
// denominator and the non-constant numerator coefficients are divided out
// (floor((8i+c)/64) becomes floor((i+floor(c/8))/8)), and divs whose
// denominator divides every non-constant coefficient are resolved into
// affine expressions and removed (floor(8i/8) becomes i).
func (b *basic) normalizeDivs() {
	for i := 0; i < len(b.divs); i++ {
		d := &b.divs[i]
		num := d.Num.Resized(b.ncols())
		// Greatest common divisor of the denominator and the non-constant
		// coefficients.
		g := d.Den
		for j := 1; j < len(num); j++ {
			g = ints.GCD(g, num[j])
		}
		if g > 1 {
			for j := 1; j < len(num); j++ {
				num[j] /= g
			}
			num[0] = ints.FloorDiv(num[0], g)
			d.Num = num
			d.Den = d.Den / g
		}
		if d.Den == 1 {
			// The div equals its numerator: substitute it away if the
			// numerator does not reference the div itself or later divs
			// (always true by construction) and drop the column.
			col := b.divCol(i)
			expr := d.Num.Resized(b.ncols()).Clone()
			if expr[col] == 0 && !referencesLaterDiv(expr, b, i) {
				b.substituteDivColumn(col, expr)
				b.dropColumn(col)
				i--
			}
		}
	}
}

func referencesLaterDiv(v Vec, b *basic, i int) bool {
	for j := i; j < len(b.divs); j++ {
		if v[b.divCol(j)] != 0 {
			return true
		}
	}
	return false
}

// substituteDivColumn replaces every reference to the div column col by the
// affine expression expr (which must not reference col or any later div).
func (b *basic) substituteDivColumn(col int, expr Vec) {
	expr = expr.Resized(b.ncols())
	apply := func(v Vec) Vec {
		v = v.Resized(b.ncols())
		k := v[col]
		if k == 0 {
			return v
		}
		out := v.Clone()
		for j := range out {
			out[j] += k * expr[j]
		}
		out[col] = 0
		return out
	}
	for i := range b.cons {
		b.cons[i].C = apply(b.cons[i].C)
	}
	for i := range b.divs {
		b.divs[i].Num = apply(b.divs[i].Num)
	}
}

// simplify performs cheap normalization: constraint normalization, removal
// of duplicate, dominated, and trivially satisfied constraints, div
// normalization, and detection of a trivially false constant constraint.
// Constraints are deduplicated by FNV hash of their coefficient vector
// (verified structurally, so collisions cannot merge distinct constraints);
// parallel inequalities keep only the tightest constant, and inequalities
// pinned by a parallel equality are dropped (or detected infeasible). It
// returns false if the basic set/map is detected to be empty.
func (b *basic) simplify() bool {
	b.normalizeDivs()
	// eqByCoeff and ineqByCoeff index the constraints kept so far (by
	// position in out) under the hash of their non-constant coefficients.
	var eqByCoeff, ineqByCoeff map[uint64][]int
	lookup := func(m map[uint64][]int, h uint64) []int {
		if m == nil {
			return nil
		}
		return m[h]
	}
	insert := func(m *map[uint64][]int, h uint64, idx int) {
		if *m == nil {
			*m = make(map[uint64][]int, len(b.cons))
		}
		(*m)[h] = append((*m)[h], idx)
	}
	out := b.cons[:0]
	for _, c := range b.cons {
		c = normalizeConstraint(c)
		nonconst := false
		for _, x := range c.C[1:] {
			if x != 0 {
				nonconst = true
				break
			}
		}
		if !nonconst {
			// Constant constraint.
			if c.Eq && c.C[0] != 0 {
				return false
			}
			if !c.Eq && c.C[0] < 0 {
				return false
			}
			continue
		}
		if c.Eq {
			// Integer divisibility: g*f + c0 == 0 with g not dividing c0 has
			// no integer solution (normalizeConstraint left the constraint
			// unscaled exactly in this case). Rational feasibility cannot see
			// this, and residue splitting in the counting layer produces such
			// systems wholesale.
			var g int64
			for _, x := range c.C[1:] {
				g = ints.GCD(g, x)
			}
			if g > 1 && c.C[0]%g != 0 {
				return false
			}
		}
		h := coeffHash(c.C, false)
		// The negated-coefficient hash is only needed to compare against
		// stored equalities; computing it lazily keeps the common
		// inequality-only path at one hash per constraint.
		nh := uint64(0)
		haveNH := false
		negHash := func() uint64 {
			if !haveNH {
				nh = coeffHash(c.C, true)
				haveNH = true
			}
			return nh
		}
		if c.Eq {
			dup := false
			for _, idx := range lookup(eqByCoeff, h) {
				if coeffsMatch(out[idx].C, c.C, false) {
					// Parallel equalities: identical or contradictory.
					if out[idx].C[0] != c.C[0] {
						return false
					}
					dup = true
					break
				}
			}
			if !dup && eqByCoeff != nil {
				for _, idx := range lookup(eqByCoeff, negHash()) {
					if coeffsMatch(out[idx].C, c.C, true) {
						// f+k0 == 0 stored and -f+k == 0 incoming: equal
						// exactly when k == -k0.
						if out[idx].C[0] != -c.C[0] {
							return false
						}
						dup = true
						break
					}
				}
			}
			if dup {
				continue
			}
			out = append(out, c)
			insert(&eqByCoeff, h, len(out)-1)
			continue
		}
		// Inequality f + k >= 0: an equality on f (either sign) pins it.
		pinned := false
		for _, idx := range lookup(eqByCoeff, h) {
			if coeffsMatch(out[idx].C, c.C, false) {
				// f == -k0, so f + k >= 0 iff k >= k0.
				if c.C[0] < out[idx].C[0] {
					return false
				}
				pinned = true
				break
			}
		}
		if !pinned && eqByCoeff != nil {
			for _, idx := range lookup(eqByCoeff, negHash()) {
				if coeffsMatch(out[idx].C, c.C, true) {
					// -f + k0 == 0, so f == k0 and f + k >= 0 iff k0 + k >= 0.
					if c.C[0]+out[idx].C[0] < 0 {
						return false
					}
					pinned = true
					break
				}
			}
		}
		if pinned {
			continue
		}
		// Opposite parallel inequality: f+k >= 0 against -f+k0 >= 0 bounds
		// f to [-k, k0]. An empty interval is infeasible; a singleton turns
		// the stored constraint into an equality (canonicalizing the
		// two-inequality encoding of a hyperplane, which the coalescer's
		// adjacency rules rely on).
		closed := false
		if ineqByCoeff != nil {
			for pos, idx := range lookup(ineqByCoeff, negHash()) {
				if coeffsMatch(out[idx].C, c.C, true) {
					if c.C[0]+out[idx].C[0] < 0 {
						return false
					}
					if c.C[0]+out[idx].C[0] == 0 {
						out[idx].Eq = true
						lst := ineqByCoeff[nh]
						ineqByCoeff[nh] = append(lst[:pos], lst[pos+1:]...)
						insert(&eqByCoeff, nh, idx)
						closed = true
					}
					break
				}
			}
		}
		if closed {
			continue
		}
		// Parallel inequalities: keep the tighter (smaller) constant.
		dominated := false
		for _, idx := range lookup(ineqByCoeff, h) {
			if coeffsMatch(out[idx].C, c.C, false) {
				if c.C[0] < out[idx].C[0] {
					out[idx].C[0] = c.C[0]
				}
				dominated = true
				break
			}
		}
		if dominated {
			continue
		}
		out = append(out, c)
		insert(&ineqByCoeff, h, len(out)-1)
	}
	// The forward pass cannot drop an inequality stored before a parallel
	// equality arrived (the pinned check only looks backwards). Sweep such
	// inequalities out now so pinned-by-equality holds regardless of the
	// order constraints were added in.
	if eqByCoeff != nil && ineqByCoeff != nil {
		eqIdx := make(map[uint64][]Constraint, len(eqByCoeff))
		for _, c := range out {
			if c.Eq {
				h := coeffHash(c.C, false)
				eqIdx[h] = append(eqIdx[h], c)
			}
		}
		kept := out[:0]
		for _, c := range out {
			if !c.Eq {
				pinned := false
				for _, e := range eqIdx[coeffHash(c.C, false)] {
					if coeffsMatch(e.C, c.C, false) {
						// f == -k0 and f + k >= 0: feasible iff k >= k0.
						if c.C[0] < e.C[0] {
							return false
						}
						pinned = true
						break
					}
				}
				if !pinned {
					for _, e := range eqIdx[coeffHash(c.C, true)] {
						if coeffsMatch(e.C, c.C, true) {
							// -f + k0 == 0 and f + k >= 0: f == k0, so
							// feasible iff k0 + k >= 0.
							if c.C[0]+e.C[0] < 0 {
								return false
							}
							pinned = true
							break
						}
					}
				}
				if pinned {
					continue
				}
			}
			kept = append(kept, c)
		}
		out = kept
	}
	b.cons = out
	if b.hasConflictingBounds() {
		return false
	}
	b.debugAssert("simplify", true)
	return true
}

// coeffHash hashes the non-constant coefficients of a constraint vector
// (optionally negated), ignoring trailing zero columns.
func coeffHash(v Vec, neg bool) uint64 {
	vv := v[1:]
	for len(vv) > 0 && vv[len(vv)-1] == 0 {
		vv = vv[:len(vv)-1]
	}
	h := uint64(fnvOffset)
	for _, x := range vv {
		if neg {
			x = -x
		}
		h = fnvMix(h, uint64(x))
	}
	return h
}

// coeffsMatch compares the non-constant coefficients of two constraint
// vectors (b optionally negated), ignoring trailing zero columns.
func coeffsMatch(a, b Vec, neg bool) bool {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	for i := 1; i < n; i++ {
		var x, y int64
		if i < len(a) {
			x = a[i]
		}
		if i < len(b) {
			y = b[i]
		}
		if neg {
			y = -y
		}
		if x != y {
			return false
		}
	}
	return true
}

// hasConflictingBounds detects single-variable contradictions such as
// x >= 3 together with x <= 2 (over the same single column), a cheap but
// effective emptiness filter. The per-column bound tracking comes from the
// arena free list — four map allocations per simplify otherwise.
func (b *basic) hasConflictingBounds() bool {
	s := getBounds(b.ncols())
	defer putBounds(s)
	lo, hi, haveLo, haveHi := s.lo, s.hi, s.haveLo, s.haveHi
	for _, c := range b.cons {
		col, cnt := -1, 0
		for j := 1; j < len(c.C); j++ {
			if c.C[j] != 0 {
				col = j
				cnt++
			}
		}
		if cnt != 1 {
			continue
		}
		a := c.C[col]
		k := c.C[0]
		if c.Eq {
			// a*x + k == 0
			if k%a != 0 {
				return true
			}
			v := -k / a
			if haveLo[col] && v < lo[col] {
				return true
			}
			if haveHi[col] && v > hi[col] {
				return true
			}
			lo[col], hi[col] = v, v
			haveLo[col], haveHi[col] = true, true
			continue
		}
		if a > 0 {
			v := ints.CeilDiv(-k, a)
			if !haveLo[col] || v > lo[col] {
				lo[col] = v
				haveLo[col] = true
			}
		} else {
			v := ints.FloorDiv(k, -a)
			if !haveHi[col] || v < hi[col] {
				hi[col] = v
				haveHi[col] = true
			}
		}
		if haveLo[col] && haveHi[col] && lo[col] > hi[col] {
			return true
		}
	}
	return false
}

// embed copies the divs and constraints of src into b, mapping src dimension
// i to b dimension dimMap[i]. Div definitions are deduplicated against
// existing divs of b. This is the workhorse behind intersection and
// composition.
func (b *basic) embed(src *basic, dimMap []int) {
	if len(dimMap) != src.ndim {
		panic("presburger: embed dimension map arity mismatch")
	}
	// colMap maps src columns to b columns; div columns are filled as divs
	// are transferred.
	colMap := make([]int, src.ncols())
	colMap[0] = 0
	for i := 0; i < src.ndim; i++ {
		colMap[src.dimCol(i)] = b.dimCol(dimMap[i])
	}
	remap := func(v Vec) Vec {
		out := NewVec(b.ncols())
		for j, x := range v {
			if x == 0 {
				continue
			}
			out[colMap[j]] += x
		}
		return out
	}
	for i := range src.divs {
		num := remap(src.divs[i].Num.Resized(src.ncols()))
		col := b.addDiv(num, src.divs[i].Den)
		colMap[src.divCol(i)] = col
	}
	for _, c := range src.cons {
		b.addConstraint(Constraint{C: remap(c.C), Eq: c.Eq})
	}
}

// substituteColumn replaces every occurrence of column col by the affine
// expression expr/den (den > 0, exact integer value), i.e. it rewrites the
// system under the assumption col*den == expr·cols. Constraints are scaled
// by den (sign-preserving); div numerators that reference col are rewritten
// to a*expr + den*rest with their denominator scaled by den, which preserves
// floor semantics. expr must not reference col itself, and col must be a
// tuple dimension column (not a div column).
func (b *basic) substituteColumn(col int, expr Vec, den int64) {
	if den <= 0 {
		panic("presburger: substituteColumn with non-positive denominator")
	}
	expr = expr.Resized(b.ncols())
	if expr[col] != 0 {
		panic("presburger: substitution expression references substituted column")
	}
	for i := range b.cons {
		v := b.cons[i].C
		a := v[col]
		if a == 0 {
			continue
		}
		out := NewVec(len(v))
		for j := range v {
			out[j] = den*v[j] + a*expr[j]
		}
		out[col] = 0
		b.cons[i].C = out
	}
	for i := range b.divs {
		v := b.divs[i].Num.Resized(b.ncols())
		a := v[col]
		if a == 0 {
			b.divs[i].Num = v
			continue
		}
		out := NewVec(len(v))
		for j := range v {
			out[j] = den*v[j] + a*expr[j]
		}
		out[col] = 0
		b.divs[i].Num = out
		b.divs[i].Den = ints.MulChecked(b.divs[i].Den, den)
	}
}

// dropColumn removes a column (which must be unused: zero coefficient in all
// constraints and div numerators) and renumbers the remaining columns.
// If the column is a div column the div definition is removed as well.
func (b *basic) dropColumn(col int) {
	remove := func(v Vec) Vec {
		out := make(Vec, 0, len(v)-1)
		out = append(out, v[:col]...)
		out = append(out, v[col+1:]...)
		return out
	}
	for i := range b.cons {
		if b.cons[i].C[col] != 0 {
			panic("presburger: dropColumn of used column")
		}
		b.cons[i].C = remove(b.cons[i].C)
	}
	for i := range b.divs {
		if b.divs[i].Num.Resized(b.ncols())[col] != 0 {
			panic("presburger: dropColumn referenced by div")
		}
		b.divs[i].Num = remove(b.divs[i].Num.Resized(b.ncols()))
	}
	if col <= b.ndim {
		b.ndim--
	} else {
		di := col - b.ndim - 1
		b.divs = append(b.divs[:di], b.divs[di+1:]...)
	}
}

// usesColumn reports whether any constraint or div numerator has a non-zero
// coefficient at col.
func (b *basic) usesColumn(col int) bool {
	for _, c := range b.cons {
		if col < len(c.C) && c.C[col] != 0 {
			return true
		}
	}
	for _, d := range b.divs {
		n := d.Num.Resized(b.ncols())
		if n[col] != 0 {
			return true
		}
	}
	return false
}

// divUsesColumn reports whether any div numerator references col.
func (b *basic) divUsesColumn(col int) bool {
	for _, d := range b.divs {
		n := d.Num.Resized(b.ncols())
		if n[col] != 0 {
			return true
		}
	}
	return false
}

// String renders the basic set/map constraints for debugging.
func (b *basic) render(dimNames []string) string {
	names := make([]string, b.ncols())
	names[0] = "1"
	for i := 0; i < b.ndim; i++ {
		if i < len(dimNames) {
			names[1+i] = dimNames[i]
		} else {
			names[1+i] = fmt.Sprintf("d%d", i)
		}
	}
	for i := range b.divs {
		names[b.divCol(i)] = fmt.Sprintf("e%d", i)
	}
	var parts []string
	for i, d := range b.divs {
		parts = append(parts, fmt.Sprintf("%s = floor((%s)/%d)", names[b.divCol(i)], renderExpr(d.Num, names), d.Den))
	}
	for _, c := range b.cons {
		op := ">="
		if c.Eq {
			op = "="
		}
		parts = append(parts, fmt.Sprintf("%s %s 0", renderExpr(c.C, names), op))
	}
	sort.Strings(parts[len(b.divs):])
	return strings.Join(parts, " and ")
}

func renderExpr(v Vec, names []string) string {
	var terms []string
	for i, c := range v {
		if c == 0 {
			continue
		}
		switch {
		case i == 0:
			terms = append(terms, fmt.Sprintf("%d", c))
		case c == 1:
			terms = append(terms, names[i])
		case c == -1:
			terms = append(terms, "-"+names[i])
		default:
			terms = append(terms, fmt.Sprintf("%d%s", c, names[i]))
		}
	}
	if len(terms) == 0 {
		return "0"
	}
	return strings.Join(terms, " + ")
}
