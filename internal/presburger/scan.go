package presburger

import (
	"errors"
	"fmt"
	"math"

	"haystack/internal/ints"
)

// ErrUnbounded reports an attempt to enumerate a set with an unbounded
// dimension.
var ErrUnbounded = errors.New("presburger: cannot enumerate unbounded set")

// ErrStopScan can be returned by a scan callback to stop enumeration early
// without reporting an error to the caller of Scan.
var ErrStopScan = errors.New("presburger: stop scan")

// scanner enumerates the integer points of a basic set/map. Per-dimension
// bound constraints are precomputed once by rational projection; every
// candidate leaf point is validated against the exact constraints, so the
// enumeration is exact whenever every dimension is bounded.
type scanner struct {
	b *basic
	// levels[d] holds the constraints (over columns 0..dimCol(d)) that bound
	// dimension d once dimensions 0..d-1 are fixed.
	levels [][]Constraint
}

func newScanner(b *basic) *scanner {
	s := &scanner{b: b}
	cons := b.materializedConstraints()
	// Eliminate from the innermost column outwards, recording the systems.
	s.levels = make([][]Constraint, b.ndim)
	col := b.ncols() - 1
	for ; col > b.dimCol(b.ndim-1) && b.ndim > 0; col-- {
		cons = rationalEliminate(cons, col)
	}
	for d := b.ndim - 1; d >= 0; d-- {
		var lvl []Constraint
		for _, c := range cons {
			if c.C[b.dimCol(d)] != 0 {
				lvl = append(lvl, c)
			}
		}
		s.levels[d] = lvl
		cons = rationalEliminate(cons, b.dimCol(d))
	}
	return s
}

// bounds returns the integer bounds of dimension d given the fixed prefix.
func (s *scanner) bounds(d int, prefix []int64) (lo, hi int64, bounded bool) {
	col := s.b.dimCol(d)
	haveLo, haveHi := false, false
	for _, c := range s.levels[d] {
		a := c.C[col]
		if a == math.MinInt64 {
			return 0, 0, false
		}
		rest, ok := evalRest(c.C, s.b, d, prefix)
		if !ok {
			// Evaluating the bound would wrap int64. Reporting the dimension
			// unbounded turns that into a typed ErrUnbounded from scanLevel;
			// a wrapped bound could silently enumerate nothing (lo > hi) and
			// certify a non-empty set as empty.
			return 0, 0, false
		}
		if c.Eq {
			if rest%a != 0 {
				return 0, -1, true
			}
			v := -rest / a
			if !haveLo || v > lo {
				lo = v
			}
			if !haveHi || v < hi {
				hi = v
			}
			haveLo, haveHi = true, true
			continue
		}
		if a > 0 {
			v := ints.CeilDiv(-rest, a)
			if !haveLo || v > lo {
				lo = v
				haveLo = true
			}
		} else {
			v := ints.FloorDiv(rest, -a)
			if !haveHi || v < hi {
				hi = v
				haveHi = true
			}
		}
	}
	return lo, hi, haveLo && haveHi
}

func (s *scanner) scanLevel(d int, point []int64, fn func(point []int64) error) error {
	if d == s.b.ndim {
		if s.b.contains(point) {
			return fn(point)
		}
		return nil
	}
	lo, hi, bounded := s.bounds(d, point[:d])
	if !bounded {
		return fmt.Errorf("%w: dimension %d", ErrUnbounded, d)
	}
	for v := lo; v <= hi; v++ {
		point[d] = v
		if err := s.scanLevel(d+1, point, fn); err != nil {
			return err
		}
	}
	return nil
}

// scanPoints enumerates every integer point of the basic set/map in
// lexicographic order of its dimensions and calls fn with the point (the
// slice is reused between calls).
func (b *basic) scanPoints(fn func(point []int64) error) error {
	if b.ndim == 0 {
		// All divs depend on constants only, so containment is decidable
		// by direct evaluation.
		if b.contains(nil) {
			return fn(nil)
		}
		return nil
	}
	s := newScanner(b)
	point := make([]int64, b.ndim)
	err := s.scanLevel(0, point, fn)
	if errors.Is(err, ErrStopScan) {
		return err
	}
	return err
}

// countPoints counts the integer points of the basic set/map by
// enumeration.
func (b *basic) countPoints() (int64, error) {
	var n int64
	err := b.scanPoints(func([]int64) error {
		n++
		return nil
	})
	return n, err
}

// samplePoint returns one integer point of the basic set/map, or ok=false
// when the set is empty (or enumeration fails).
func (b *basic) samplePoint() (point []int64, ok bool) {
	var found []int64
	err := b.scanPoints(func(p []int64) error {
		found = append([]int64(nil), p...)
		return ErrStopScan
	})
	if err != nil && !errors.Is(err, ErrStopScan) {
		return nil, false
	}
	return found, found != nil
}
