package presburger

import "testing"

// parityStripe builds { x : 0 <= x < n, x ≡ r (mod m) } as a basic set with
// one div and one modulo equality — the shape the set-associative residue
// partition produces for every array space.
func parityStripe(n, m, r int64) BasicSet {
	sp := NewSpace("S", "x")
	bs := UniverseBasicSet(sp)
	bs = bs.AddConstraint(Constraint{C: Vec{0, 1}})
	bs = bs.AddConstraint(Constraint{C: Vec{n - 1, -1}})
	bs, u := bs.AddDiv(Vec{0, 1}, m)
	c := Constraint{C: NewVec(bs.NCols()), Eq: true}
	c.C[0] = -r
	c.C[1] = 1
	c.C[u] = -m
	return bs.AddConstraint(c)
}

// TestResidueClassesSeparateStripes checks the congruence signature on the
// residue stripes it exists for: two stripes of the same modulus with
// different residues are provably disjoint, while the same residue (even
// over a different box) is not.
func TestResidueClassesSeparateStripes(t *testing.T) {
	even := parityStripe(20, 2, 0).ResidueClasses()
	odd := parityStripe(20, 2, 1).ResidueClasses()
	evenAgain := parityStripe(12, 2, 0).ResidueClasses()
	if len(even) == 0 || len(odd) == 0 {
		t.Fatalf("stripes yield no residue classes: even=%v odd=%v", even, odd)
	}
	if !ResiduesSeparate(even, odd) {
		t.Errorf("x≡0 and x≡1 (mod 2) must be separate: %v vs %v", even, odd)
	}
	if ResiduesSeparate(even, evenAgain) {
		t.Errorf("two x≡0 (mod 2) stripes must not be separate: %v vs %v", even, evenAgain)
	}
	if ResiduesSeparate(even, even) {
		t.Error("a signature must not be separate from itself")
	}
}

// TestResidueClassesSoundOnStripes cross-checks the signature pointwise:
// when ResiduesSeparate says two stripes cannot overlap, their intersection
// must scan empty for every residue pair of moduli 2, 3, and 4.
func TestResidueClassesSoundOnStripes(t *testing.T) {
	for _, m := range []int64{2, 3, 4} {
		for r1 := int64(0); r1 < m; r1++ {
			for r2 := int64(0); r2 < m; r2++ {
				a := parityStripe(24, m, r1)
				b := parityStripe(24, m, r2)
				if !ResiduesSeparate(a.ResidueClasses(), b.ResidueClasses()) {
					continue
				}
				n, err := SetFromBasic(a).Intersect(SetFromBasic(b)).CountByScan()
				if err != nil {
					t.Fatalf("m=%d r1=%d r2=%d: %v", m, r1, r2, err)
				}
				if n != 0 {
					t.Errorf("m=%d: signature separates r=%d and r=%d but stripes share %d points", m, r1, r2, n)
				}
			}
		}
	}
}

// TestResidueClassesIgnoreDivFreeEqualities asserts a plain equality without
// div variables contributes no residue class: x = 5 pins a value, not a
// congruence, and a spurious class would wrongly separate overlapping sets.
func TestResidueClassesIgnoreDivFreeEqualities(t *testing.T) {
	sp := NewSpace("S", "x")
	bs := UniverseBasicSet(sp)
	c := Constraint{C: Vec{-5, 1}, Eq: true}
	if got := bs.AddConstraint(c).ResidueClasses(); len(got) != 0 {
		t.Errorf("div-free equality produced residue classes: %v", got)
	}
}
