package presburger

// transferDivs copies the div definitions of src into b (mapping src
// dimension i to b dimension dimMap[i]) and returns the column map from src
// columns to b columns so the caller can remap constraint vectors itself.
func (b *basic) transferDivs(src *basic, dimMap []int) []int {
	colMap := make([]int, src.ncols())
	colMap[0] = 0
	for i := 0; i < src.ndim; i++ {
		colMap[src.dimCol(i)] = b.dimCol(dimMap[i])
	}
	for i := range src.divs {
		num := NewVec(b.ncols())
		for j, x := range src.divs[i].Num.Resized(src.ncols()) {
			if x == 0 {
				continue
			}
			num[colMap[j]] += x
		}
		col := b.addDiv(num, src.divs[i].Den)
		colMap[src.divCol(i)] = col
	}
	return colMap
}

// subtractBasic computes a \ o as a union of disjoint basics: the i-th piece
// keeps o's constraints 0..i-1 and negates constraint i. Negating an
// equality produces two pieces. The divs of o are well defined functions of
// the dimensions, so copying their definitions into each piece preserves
// exactness.
//
// Constraints of o implied by a (and the pieces kept so far) are gisted
// away: a \ o == a \ gist(o, a), and every dropped constraint is one piece
// fewer in the difference plus one inherited constraint fewer in all later
// pieces — subtraction chains are the worst basic-count amplifier of the
// pipeline, so this is where simplification in context pays the most.
func subtractBasic(a, o *basic) []basic {
	simplified := o.clone()
	if !simplified.simplify() {
		// o is empty: a \ o == a.
		return []basic{a.clone()}
	}
	var pieces []basic
	prefix := a.clone()
	colMap := prefix.transferDivs(&simplified, identityDimMap(simplified.ndim))
	remap := func(dst *basic, v Vec) Vec {
		out := NewVec(dst.ncols())
		for j, x := range v {
			if x == 0 {
				continue
			}
			out[colMap[j]] += x
		}
		return out
	}
	keep := make([]bool, len(simplified.cons))
	for i := range keep {
		keep[i] = true
	}
	if gistCols := prefix.ncols(); len(prefix.cons)+len(simplified.cons) <= gistMaxCons && gistCols <= gistMaxCols {
		cands := make([]Constraint, len(simplified.cons))
		for i, c := range simplified.cons {
			cands[i] = Constraint{C: remap(&prefix, c.C), Eq: c.Eq}
		}
		keep = gistFilter(prefix.materializedConstraints(), gistCols, cands)
	}
	for ci, c := range simplified.cons {
		if !keep[ci] {
			continue // holds everywhere in a ∧ kept prefix: empty piece
		}
		if c.Eq {
			// piece with e >= 1 and piece with -e >= 1
			p1 := prefix.clone()
			cv := remap(&p1, c.C)
			cv[0]--
			p1.addConstraint(Constraint{C: cv})
			pieces = append(pieces, p1)

			p2 := prefix.clone()
			cv2 := remap(&p2, c.C).Neg()
			cv2[0]--
			p2.addConstraint(Constraint{C: cv2})
			pieces = append(pieces, p2)
		} else {
			// piece with -e - 1 >= 0
			p := prefix.clone()
			cv := remap(&p, c.C).Neg()
			cv[0]--
			p.addConstraint(Constraint{C: cv})
			pieces = append(pieces, p)
		}
		// Keep the (non-negated) constraint for subsequent pieces so the
		// pieces stay disjoint.
		prefix.addConstraint(Constraint{C: remap(&prefix, c.C), Eq: c.Eq})
	}
	// Filter detectably empty pieces.
	out := pieces[:0]
	for _, p := range pieces {
		cl := p.clone()
		if !cl.simplify() {
			continue
		}
		if !cl.rationalFeasible() {
			continue
		}
		out = append(out, cl)
	}
	return out
}

// Subtract returns the basic set difference bs \ o as a set.
func (bs BasicSet) Subtract(o BasicSet) Set {
	if !bs.space.Equal(o.space) {
		panic("presburger: subtract space mismatch")
	}
	pieces := subtractBasic(&bs.b, &o.b)
	out := EmptySet(bs.space)
	for _, p := range pieces {
		out.basics = append(out.basics, BasicSet{space: bs.space, b: p})
	}
	return out
}

// Subtract returns the set difference s \ o. The accumulating union is
// coalesced after every subtrahend: subtraction is the worst basic-count
// amplifier of the pipeline (each step can multiply the piece count by the
// subtrahend's constraint count), and the slabs it produces are exactly the
// adjacent/subsumed shapes the coalescer folds back together.
func (s Set) Subtract(o Set) Set {
	if !s.space.Equal(o.space) {
		panic("presburger: subtract space mismatch")
	}
	cur := s
	for _, ob := range o.basics {
		next := EmptySet(s.space)
		for _, ab := range cur.basics {
			// Disjoint operands subtract to the minuend unchanged; checking
			// this first avoids the piece explosion of the general algorithm
			// in the common case.
			if ab.Intersect(ob).DefinitelyEmpty() {
				next.basics = append(next.basics, ab)
				continue
			}
			next = next.Union(ab.Subtract(ob))
		}
		cur = next.coalesce(false)
	}
	return cur
}

// Subtract returns the map difference bm \ o as a map.
func (bm BasicMap) Subtract(o BasicMap) Map {
	if !bm.in.Equal(o.in) || !bm.out.Equal(o.out) {
		panic("presburger: subtract space mismatch")
	}
	pieces := subtractBasic(&bm.b, &o.b)
	out := EmptyMap(bm.in, bm.out)
	for _, p := range pieces {
		out.basics = append(out.basics, BasicMap{in: bm.in, out: bm.out, b: p})
	}
	return out
}

// Subtract returns the map difference m \ o.
func (m Map) Subtract(o Map) Map {
	if !m.in.Equal(o.in) || !m.out.Equal(o.out) {
		panic("presburger: subtract space mismatch")
	}
	cur := m
	for _, ob := range o.basics {
		next := EmptyMap(m.in, m.out)
		for _, ab := range cur.basics {
			if ab.Intersect(ob).DefinitelyEmpty() {
				next.basics = append(next.basics, ab)
				continue
			}
			next = next.Union(ab.Subtract(ob))
		}
		cur = next.coalesce(false)
	}
	return cur
}
