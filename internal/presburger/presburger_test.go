package presburger

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// boxSet builds the basic set 0 <= d_i < bounds[i] for each dimension.
func boxSet(name string, bounds ...int64) BasicSet {
	dims := make([]string, len(bounds))
	for i := range dims {
		dims[i] = fmt.Sprintf("i%d", i)
	}
	bs := UniverseBasicSet(NewSpace(name, dims...))
	for i, b := range bounds {
		lo := Constraint{C: NewVec(bs.NCols())}
		lo.C[1+i] = 1
		bs = bs.AddConstraint(lo)
		hi := Constraint{C: NewVec(bs.NCols())}
		hi.C[1+i] = -1
		hi.C[0] = b - 1
		bs = bs.AddConstraint(hi)
	}
	return bs
}

// ineq builds an inequality constraint c0 + sum(coeffs[i]*dim_i) >= 0 over
// ncols columns.
func ineq(ncols int, c0 int64, coeffs ...int64) Constraint {
	c := Constraint{C: NewVec(ncols)}
	c.C[0] = c0
	for i, v := range coeffs {
		c.C[1+i] = v
	}
	return c
}

// eq builds an equality constraint.
func eq(ncols int, c0 int64, coeffs ...int64) Constraint {
	c := ineq(ncols, c0, coeffs...)
	c.Eq = true
	return c
}

func collectPoints(t *testing.T, scan func(func([]int64) error) error) map[string]bool {
	t.Helper()
	out := map[string]bool{}
	err := scan(func(p []int64) error {
		out[fmt.Sprint(p)] = true
		return nil
	})
	if err != nil {
		t.Fatalf("scan failed: %v", err)
	}
	return out
}

func TestBoxScanCount(t *testing.T) {
	bs := boxSet("S", 3, 4)
	n, err := bs.CountByScan()
	if err != nil {
		t.Fatal(err)
	}
	if n != 12 {
		t.Fatalf("count = %d, want 12", n)
	}
	pts := collectPoints(t, bs.Scan)
	if len(pts) != 12 {
		t.Fatalf("scan found %d points, want 12", len(pts))
	}
	if !bs.Contains([]int64{2, 3}) || bs.Contains([]int64{3, 0}) {
		t.Fatal("containment wrong")
	}
}

func TestTriangleCount(t *testing.T) {
	// { (i,j) : 0 <= i < 10, 0 <= j <= i }  has 55 points.
	bs := boxSet("S", 10, 10)
	bs = bs.AddConstraint(ineq(bs.NCols(), 0, 1, -1)) // i - j >= 0
	n, err := bs.CountByScan()
	if err != nil {
		t.Fatal(err)
	}
	if n != 55 {
		t.Fatalf("triangle count = %d, want 55", n)
	}
}

func TestEmptyDetection(t *testing.T) {
	bs := boxSet("S", 4)
	bs = bs.AddConstraint(ineq(bs.NCols(), -10, 1)) // i >= 10, contradiction
	if !bs.DefinitelyEmpty() {
		t.Fatal("expected definite emptiness")
	}
	n, err := bs.CountByScan()
	if err != nil || n != 0 {
		t.Fatalf("count = %d, err=%v", n, err)
	}
}

func TestFixDimAndSimplify(t *testing.T) {
	bs := boxSet("S", 5, 5).FixDim(0, 2)
	n, _ := bs.CountByScan()
	if n != 5 {
		t.Fatalf("fixed count = %d, want 5", n)
	}
	_, ok := bs.FixDim(0, 7).Simplify()
	if ok {
		t.Fatal("contradictory fix should simplify to empty")
	}
}

func TestDivConstraintScan(t *testing.T) {
	// { i : 0 <= i < 16 and i = 4*floor(i/4) }  -> multiples of 4.
	bs := boxSet("S", 16)
	bs, col := bs.AddDiv(Vec{0, 1}, 4) // floor(i/4)
	c := Constraint{C: NewVec(bs.NCols()), Eq: true}
	c.C[1] = 1
	c.C[col] = -4
	bs = bs.AddConstraint(c)
	pts := collectPoints(t, bs.Scan)
	want := map[string]bool{"[0]": true, "[4]": true, "[8]": true, "[12]": true}
	if len(pts) != len(want) {
		t.Fatalf("points = %v", pts)
	}
	for k := range want {
		if !pts[k] {
			t.Fatalf("missing point %s in %v", k, pts)
		}
	}
}

func TestSetUnionIntersectSubtract(t *testing.T) {
	a := SetFromBasic(boxSet("S", 6, 6).AddConstraint(ineq(boxSet("S", 6, 6).NCols(), 0, 1, -1))) // j <= i
	b := SetFromBasic(boxSet("S", 6, 6).AddConstraint(ineq(boxSet("S", 6, 6).NCols(), -2, 1, 0))) // i >= 2
	uni := a.Union(b)
	inter := a.Intersect(b)
	diff := a.Subtract(b)

	box := boxSet("S", 6, 6)
	brute := func(pred func(i, j int64) bool) map[string]bool {
		out := map[string]bool{}
		_ = box.Scan(func(p []int64) error {
			if pred(p[0], p[1]) {
				out[fmt.Sprint(p)] = true
			}
			return nil
		})
		return out
	}
	inA := func(i, j int64) bool { return j <= i }
	inB := func(i, j int64) bool { return i >= 2 }

	checks := []struct {
		name string
		got  map[string]bool
		want map[string]bool
	}{
		{"union", collectPoints(t, uni.Scan), brute(func(i, j int64) bool { return inA(i, j) || inB(i, j) })},
		{"intersect", collectPoints(t, inter.Scan), brute(func(i, j int64) bool { return inA(i, j) && inB(i, j) })},
		{"subtract", collectPoints(t, diff.Scan), brute(func(i, j int64) bool { return inA(i, j) && !inB(i, j) })},
	}
	for _, c := range checks {
		if len(c.got) != len(c.want) {
			t.Errorf("%s: got %d points, want %d", c.name, len(c.got), len(c.want))
			continue
		}
		for k := range c.want {
			if !c.got[k] {
				t.Errorf("%s: missing %s", c.name, k)
			}
		}
	}
}

func TestRandomSetAlgebra(t *testing.T) {
	// Randomized comparison of set algebra against brute force over a box.
	rng := rand.New(rand.NewSource(42))
	const trials = 60
	for trial := 0; trial < trials; trial++ {
		mk := func() (BasicSet, func(i, j int64) bool) {
			base := boxSet("S", 7, 7)
			type lc struct{ c0, a, b int64 }
			var cs []lc
			n := 1 + rng.Intn(2)
			for k := 0; k < n; k++ {
				c := lc{int64(rng.Intn(9) - 4), int64(rng.Intn(5) - 2), int64(rng.Intn(5) - 2)}
				cs = append(cs, c)
				base = base.AddConstraint(ineq(base.NCols(), c.c0, c.a, c.b))
			}
			pred := func(i, j int64) bool {
				if i < 0 || i >= 7 || j < 0 || j >= 7 {
					return false
				}
				for _, c := range cs {
					if c.c0+c.a*i+c.b*j < 0 {
						return false
					}
				}
				return true
			}
			return base, pred
		}
		a, predA := mk()
		b, predB := mk()
		sa, sb := SetFromBasic(a), SetFromBasic(b)

		ops := []struct {
			name string
			set  Set
			pred func(i, j int64) bool
		}{
			{"union", sa.Union(sb), func(i, j int64) bool { return predA(i, j) || predB(i, j) }},
			{"intersect", sa.Intersect(sb), func(i, j int64) bool { return predA(i, j) && predB(i, j) }},
			{"subtract", sa.Subtract(sb), func(i, j int64) bool { return predA(i, j) && !predB(i, j) }},
		}
		for _, op := range ops {
			got := map[string]bool{}
			if err := op.set.Scan(func(p []int64) error {
				got[fmt.Sprintf("%d,%d", p[0], p[1])] = true
				return nil
			}); err != nil {
				t.Fatalf("trial %d %s: scan error %v", trial, op.name, err)
			}
			for i := int64(0); i < 7; i++ {
				for j := int64(0); j < 7; j++ {
					want := op.pred(i, j)
					if got[fmt.Sprintf("%d,%d", i, j)] != want {
						t.Fatalf("trial %d %s: mismatch at (%d,%d): got %v want %v\nA=%v\nB=%v",
							trial, op.name, i, j, !want, want, sa, sb)
					}
				}
			}
		}
	}
}

func TestBasicMapReverseDomainRange(t *testing.T) {
	// { S(i) -> M(j) : j = 3 - i, 0 <= i < 4 }
	s := NewSpace("S", "i")
	m := NewSpace("M", "j")
	bm := UniverseBasicMap(s, m)
	bm = bm.AddConstraint(eq(bm.NCols(), -3, 1, 1)) // i + j - 3 == 0
	bm = bm.AddConstraint(ineq(bm.NCols(), 0, 1, 0))
	bm = bm.AddConstraint(ineq(bm.NCols(), 3, -1, 0))

	if n, _ := bm.CountByScan(); n != 4 {
		t.Fatalf("relation size = %d, want 4", n)
	}
	rev := bm.Reverse()
	if !rev.Contains([]int64{3, 0}) || rev.Contains([]int64{0, 0}) {
		t.Fatal("reverse wrong")
	}
	dom, err := bm.Domain()
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := dom.CountByScan(); n != 4 {
		t.Fatalf("domain size = %d, want 4", n)
	}
	rng, err := bm.Range()
	if err != nil {
		t.Fatal(err)
	}
	pts := collectPoints(t, rng.Scan)
	for j := int64(0); j < 4; j++ {
		if !pts[fmt.Sprint([]int64{j})] {
			t.Fatalf("range missing %d: %v", j, pts)
		}
	}
}

func TestApplyRangeComposition(t *testing.T) {
	// A: S(i) -> M(i) on 0 <= i < 8 ; B: M(j) -> T(j+1).
	s := NewSpace("S", "i")
	m := NewSpace("M", "j")
	tt := NewSpace("T", "k")
	a := UniverseBasicMap(s, m)
	a = a.AddConstraint(eq(a.NCols(), 0, 1, -1))
	a = a.AddConstraint(ineq(a.NCols(), 0, 1, 0))
	a = a.AddConstraint(ineq(a.NCols(), 7, -1, 0))
	b := UniverseBasicMap(m, tt)
	b = b.AddConstraint(eq(b.NCols(), 1, 1, -1)) // k = j + 1

	c, err := a.ApplyRange(b)
	if err != nil {
		t.Fatal(err)
	}
	if c.InSpace().Name != "S" || c.OutSpace().Name != "T" {
		t.Fatalf("composed spaces: %v -> %v", c.InSpace(), c.OutSpace())
	}
	n, err := c.CountByScan()
	if err != nil {
		t.Fatal(err)
	}
	if n != 8 {
		t.Fatalf("composition size = %d, want 8", n)
	}
	if !c.Contains([]int64{3, 4}) || c.Contains([]int64{3, 3}) {
		t.Fatal("composition relation wrong")
	}
}

func TestApplyRangeWithCacheLineFloor(t *testing.T) {
	// Access map S(i) -> L(c) with c = floor(i/4), 0 <= i < 16, composed with
	// its reverse: relates i to i' iff both share a cache line.
	s := NewSpace("S", "i")
	l := NewSpace("L", "c")
	acc := UniverseBasicMap(s, l)
	// 4c <= i <= 4c + 3
	acc = acc.AddConstraint(ineq(acc.NCols(), 0, 1, -4))
	acc = acc.AddConstraint(ineq(acc.NCols(), 3, -1, 4))
	acc = acc.AddConstraint(ineq(acc.NCols(), 0, 1, 0))
	acc = acc.AddConstraint(ineq(acc.NCols(), 15, -1, 0))

	same, err := acc.ApplyRange(acc.Reverse())
	if err != nil {
		t.Fatal(err)
	}
	count, err := MapFromBasic(same).CountByScan()
	if err != nil {
		t.Fatal(err)
	}
	// 4 lines x 4x4 pairs = 64 pairs.
	if count != 64 {
		t.Fatalf("same-line pairs = %d, want 64", count)
	}
	if !same.Contains([]int64{5, 6}) || same.Contains([]int64{3, 4}) {
		t.Fatal("same-line relation wrong")
	}
}

func TestLexMaps(t *testing.T) {
	sp := NewSpace("S", "i", "j")
	box := SetFromBasic(boxSet("S", 3, 3))
	lt := LexLT(sp)
	le := LexLE(sp)

	ltRestricted := lt.IntersectDomain(box).IntersectRange(box)
	n, err := ltRestricted.CountByScan()
	if err != nil {
		t.Fatal(err)
	}
	// 9 points -> 9*8/2 = 36 strictly ordered pairs.
	if n != 36 {
		t.Fatalf("lexLT pairs = %d, want 36", n)
	}
	leRestricted := le.IntersectDomain(box).IntersectRange(box)
	n, err = leRestricted.CountByScan()
	if err != nil {
		t.Fatal(err)
	}
	if n != 45 {
		t.Fatalf("lexLE pairs = %d, want 45", n)
	}
	if !lt.Contains([]int64{1, 2, 2, 0}) || lt.Contains([]int64{2, 0, 1, 2}) {
		t.Fatal("lex order wrong")
	}
}

func TestIdentityMap(t *testing.T) {
	sp := NewSpace("S", "i", "j")
	id := IdentityMap(sp)
	if !id.Contains([]int64{2, 5, 2, 5}) || id.Contains([]int64{2, 5, 2, 4}) {
		t.Fatal("identity map wrong")
	}
}

func TestProjectOut(t *testing.T) {
	// { (i,j) : 0<=i<5, 0<=j<=i } projected onto i is 0<=i<5;
	// projected onto j is 0<=j<5.
	bs := boxSet("S", 5, 5).AddConstraint(ineq(boxSet("S", 5, 5).NCols(), 0, 1, -1))
	onI, err := bs.ProjectOut(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := onI.CountByScan(); n != 5 {
		t.Fatalf("projection onto i has %d points, want 5", n)
	}
	onJ, err := bs.ProjectOut(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := onJ.CountByScan(); n != 5 {
		t.Fatalf("projection onto j has %d points, want 5", n)
	}
}

func TestMapSubtract(t *testing.T) {
	sp := NewSpace("S", "i")
	all := UniverseBasicMap(sp, sp)
	all = all.AddConstraint(ineq(all.NCols(), 0, 1, 0))
	all = all.AddConstraint(ineq(all.NCols(), 4, -1, 0))
	all = all.AddConstraint(ineq(all.NCols(), 0, 0, 1))
	all = all.AddConstraint(ineq(all.NCols(), 4, 0, -1))
	// subtract the identity
	diff := MapFromBasic(all).Subtract(IdentityMap(sp))
	err := diff.Scan(func(p []int64) error {
		if p[0] == p[1] {
			return fmt.Errorf("identity pair %v not removed", p)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestUnionMapCompose(t *testing.T) {
	// Schedule-like composition across differently named spaces.
	s0 := NewSpace("S0", "i")
	s1 := NewSpace("S1", "j")
	sched := NewSpace("t", "t0", "t1")

	mkSched := func(stmt Space, leading int64, n int64) Map {
		bm := UniverseBasicMap(stmt, sched)
		bm = bm.AddConstraint(eq(bm.NCols(), -leading, 0, 1, 0)) // t0 = leading
		bm = bm.AddConstraint(eq(bm.NCols(), 0, 1, 0, -1))       // t1 = i
		bm = bm.AddConstraint(ineq(bm.NCols(), 0, 1, 0, 0))
		bm = bm.AddConstraint(ineq(bm.NCols(), n-1, -1, 0, 0))
		return MapFromBasic(bm)
	}
	schedule := NewUnionMap().Add(mkSched(s0, 0, 4)).Add(mkSched(s1, 1, 4))

	arr := NewSpace("M", "a")
	access := NewUnionMap()
	{
		bm := UniverseBasicMap(s0, arr)
		bm = bm.AddConstraint(eq(bm.NCols(), 0, 1, -1)) // M[i]
		access = access.Add(MapFromBasic(bm))
	}
	{
		bm := UniverseBasicMap(s1, arr)
		bm = bm.AddConstraint(eq(bm.NCols(), -3, 1, 1)) // M[3-j]
		access = access.Add(MapFromBasic(bm))
	}

	schedToElem, err := schedule.Reverse().ApplyRange(access)
	if err != nil {
		t.Fatal(err)
	}
	maps := schedToElem.Maps()
	if len(maps) != 1 {
		t.Fatalf("expected one map in the union, got %d", len(maps))
	}
	pairs := collectPoints(t, maps[0].Scan)
	// S0: (0,i) -> M(i); S1: (1,j) -> M(3-j)  -> 8 pairs.
	if len(pairs) != 8 {
		t.Fatalf("sched->elem pairs = %d, want 8: %v", len(pairs), pairs)
	}
	if !pairs[fmt.Sprint([]int64{1, 1, 2})] {
		t.Fatalf("missing S1 access pair: %v", pairs)
	}

	// equal map: sched -> sched values touching the same element.
	equal, err := schedToElem.ApplyRange(schedToElem.Reverse())
	if err != nil {
		t.Fatal(err)
	}
	eqMaps := equal.Maps()
	if len(eqMaps) != 1 {
		t.Fatalf("expected one equal map, got %d", len(eqMaps))
	}
	eqPairs := collectPoints(t, eqMaps[0].Scan)
	// Every schedule value relates to itself and to the one other access of
	// the same element: 8 self + 8 cross = 16.
	if len(eqPairs) != 16 {
		t.Fatalf("equal map pairs = %d, want 16: %v", len(eqPairs), sortedKeys(eqPairs))
	}
	if !eqPairs[fmt.Sprint([]int64{0, 1, 1, 2})] {
		t.Fatalf("equal map misses (0,1)->(1,2): %v", sortedKeys(eqPairs))
	}
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func TestDefinitelyEmptyOnFeasible(t *testing.T) {
	bs := boxSet("S", 3, 3)
	if bs.DefinitelyEmpty() {
		t.Fatal("non-empty box reported empty")
	}
}

func TestAddDivDeduplicates(t *testing.T) {
	bs := boxSet("S", 8)
	a, colA := bs.AddDiv(Vec{0, 1}, 2)
	b, colB := a.AddDiv(Vec{0, 1}, 2)
	if colA != colB {
		t.Fatalf("identical divs got different columns %d vs %d", colA, colB)
	}
	if len(b.Divs()) != 1 {
		t.Fatalf("expected a single div, got %d", len(b.Divs()))
	}
}
