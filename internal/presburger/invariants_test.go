package presburger_test

// Regression tests for the IR invariant checker, centered on the
// circular-div bug class: a projection that substituted a dimension into a
// div numerator could produce a div referencing its own column, silently
// changing the point semantics of the set. CheckInvariants must reject such
// IR no matter how it was constructed.

import (
	"strings"
	"testing"

	"haystack/internal/presburger"
)

// circularDivMap constructs, directly from divs and constraints, a basic map
// whose single div references its own column: with layout
// [const, i, j, div0], the numerator {0, 1, 0, 1} reads i + div0, so the
// definition div0 = floor((i + div0)/2) is circular.
func circularDivMap() presburger.BasicMap {
	in := presburger.NewSpace("S", "i")
	out := presburger.NewSpace("T", "j")
	divs := []presburger.Div{
		{Num: presburger.Vec{0, 1, 0, 1}, Den: 2},
	}
	cons := []presburger.Constraint{
		{C: presburger.Vec{0, 0, -1, 1}, Eq: true}, // j == div0
		{C: presburger.Vec{0, 1, 0, 0}},            // i >= 0
		{C: presburger.Vec{7, -1, 0, 0}},           // i <= 7
	}
	return presburger.NewBasicMap(in, out, divs, cons)
}

func TestCheckInvariantsCircularDiv(t *testing.T) {
	bm := circularDivMap()
	err := bm.CheckInvariants()
	if err == nil {
		t.Fatalf("CheckInvariants accepted a basic map with a self-referential div: %v", bm)
	}
	if !strings.Contains(err.Error(), "itself") {
		t.Fatalf("CheckInvariants = %q, want a self-reference diagnostic", err)
	}
}

func TestCheckInvariantsForwardDivReference(t *testing.T) {
	// Layout [const, i, div0, div1]: div0's numerator references div1,
	// breaking the left-to-right evaluation order every evaluator assumes.
	sp := presburger.NewSpace("S", "i")
	divs := []presburger.Div{
		{Num: presburger.Vec{0, 1, 0, 1}, Den: 2}, // div0 = floor((i + div1)/2)
		{Num: presburger.Vec{0, 1, 0, 0}, Den: 3}, // div1 = floor(i/3)
	}
	bs := presburger.NewBasicSet(sp, divs, nil)
	err := bs.CheckInvariants()
	if err == nil {
		t.Fatalf("CheckInvariants accepted a forward div reference: %v", bs)
	}
	if !strings.Contains(err.Error(), "later div") {
		t.Fatalf("CheckInvariants = %q, want a forward-reference diagnostic", err)
	}
}

func TestCheckInvariantsNonPositiveDenominator(t *testing.T) {
	sp := presburger.NewSpace("S", "i")
	divs := []presburger.Div{
		{Num: presburger.Vec{0, 1, 0}, Den: 0},
	}
	bs := presburger.NewBasicSet(sp, divs, nil)
	if err := bs.CheckInvariants(); err == nil {
		t.Fatalf("CheckInvariants accepted a div with denominator 0: %v", bs)
	}
}

func TestCheckInvariantsAcceptsWellFormedDiv(t *testing.T) {
	// div0 = floor(i/2) with 0 <= i <= 7 and i - 2*div0 == 0 (even i only)
	// is a perfectly ordinary use of a local div.
	sp := presburger.NewSpace("S", "i")
	divs := []presburger.Div{
		{Num: presburger.Vec{0, 1, 0}, Den: 2},
	}
	cons := []presburger.Constraint{
		{C: presburger.Vec{0, 1, 0}},            // i >= 0
		{C: presburger.Vec{7, -1, 0}},           // i <= 7
		{C: presburger.Vec{0, 1, -2}, Eq: true}, // i == 2*div0
	}
	bs := presburger.NewBasicSet(sp, divs, cons)
	if err := bs.CheckInvariants(); err != nil {
		t.Fatalf("CheckInvariants rejected a well-formed div: %v", err)
	}
	s := presburger.SetFromBasic(bs)
	if err := s.CheckInvariants(); err != nil {
		t.Fatalf("Set.CheckInvariants rejected a well-formed div: %v", err)
	}
}

// TestDebugAssertMatchesBuildTag exercises the mutation-frontier hook both
// ways: in a plain build the assert must be a no-op even on corrupt IR; in a
// haystackdebug build it must panic on the circular div.
func TestDebugAssertMatchesBuildTag(t *testing.T) {
	bm := circularDivMap()
	panicked := func() (p bool) {
		defer func() {
			if recover() != nil {
				p = true
			}
		}()
		presburger.DebugAssertBasicMap(bm, "test")
		return false
	}()
	if want := presburger.DebugInvariantsEnabled(); panicked != want {
		t.Fatalf("DebugAssertBasicMap panicked=%v with DebugInvariantsEnabled=%v", panicked, want)
	}
}
