package presburger

import "fmt"

// This file holds the residue-class (modulo) constraint helpers the
// set-associative cache model builds its set-index maps from: the set of a
// cache line is set(line) = line mod numSets, an affine relation once the
// quotient floor(line/numSets) is introduced as a local div.

// ModEq returns the basic set constrained to expr ≡ residue (mod m): it
// introduces the local div q = floor(expr/m) and adds the equality
// expr - m*q == residue. expr is a coefficient vector over the columns of bs
// (shorter vectors are zero-extended); it may reference existing divs, which
// keeps the div list acyclic and well ordered. m must be positive and
// residue in [0, m).
func (bs BasicSet) ModEq(expr Vec, m, residue int64) BasicSet {
	if m <= 0 {
		panic(fmt.Sprintf("presburger: ModEq modulus must be positive, got %d", m))
	}
	if residue < 0 || residue >= m {
		panic(fmt.Sprintf("presburger: ModEq residue %d outside [0, %d)", residue, m))
	}
	out, col := bs.AddDiv(expr.Resized(bs.NCols()), m)
	c := Constraint{C: expr.Resized(out.NCols()), Eq: true}
	c.C[0] -= residue
	c.C[col] -= m
	return out.AddConstraint(c)
}

// ResidueSet returns the subset of the universe of sp whose value of expr is
// congruent to residue modulo m. expr is a coefficient vector over
// [const, dims...] of sp. The residue classes 0..m-1 partition the universe,
// which is exactly how the cache model splits an array's lines among the
// cache sets.
func ResidueSet(sp Space, expr Vec, m, residue int64) Set {
	return SetFromBasic(UniverseBasicSet(sp).ModEq(expr, m, residue))
}
