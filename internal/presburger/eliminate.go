package presburger

import (
	"fmt"

	"haystack/internal/ints"
)

// eliminateDimCol existentially projects out the tuple dimension at column
// col. The strategies, in order, are:
//
//  1. the column is unused: drop it;
//  2. an equality constraint determines the column with coefficient ±1:
//     substitute;
//  3. an equality c*x == e with |c| > 1 determines the column up to
//     divisibility: introduce the div d = floor(e/c), require e == c*d, and
//     substitute x := d;
//  4. a pair of inequalities c*x <= e and c*x >= e-c+1 pins x to floor(e/c):
//     introduce the div and substitute;
//  5. exact Fourier–Motzkin elimination, which is valid over the integers
//     when every lower/upper bound pair has a unit coefficient on at least
//     one side.
//
// The function reports ErrUnsupported when none of the strategies apply
// exactly. After a successful return the column has been removed and later
// columns have shifted down by one.
func (b *basic) eliminateDimCol(col int) error {
	if col <= 0 || col > b.ndim {
		panic("presburger: eliminateDimCol of non-dimension column")
	}
	// Normalize constraints first so that shared factors (for example the
	// element size in cache line constraints) do not obscure unit
	// coefficients.
	for i := range b.cons {
		b.cons[i] = normalizeConstraint(b.cons[i])
	}
	if !b.usesColumn(col) {
		b.dropColumn(col)
		return nil
	}
	if b.tryEqualitySubstitution(col) {
		b.clearColumn(col)
		b.dropColumn(col)
		return nil
	}
	if b.tryFloorSubstitution(col) {
		b.clearColumn(col)
		b.dropColumn(col)
		return nil
	}
	if b.divUsesColumn(col) {
		return fmt.Errorf("%w: cannot Fourier-Motzkin eliminate a dimension referenced by a div", ErrUnsupported)
	}
	if err := b.fourierMotzkin(col); err != nil {
		return err
	}
	b.dropColumn(col)
	return nil
}

// clearColumn removes leftover constraints that still mention col (the
// defining constraints that substitution turned into tautologies keep a
// reference through rounding; they are sound to drop because the column is
// existential at this point only if they are implied). It only drops
// constraints that reduce to the defining pattern of the introduced div.
func (b *basic) clearColumn(col int) {
	out := b.cons[:0]
	for _, c := range b.cons {
		if c.C[col] != 0 {
			// A defining constraint became, e.g., 0 >= 0 after substitution
			// would have a zero coefficient; anything still mentioning the
			// column after an exact substitution is unexpected.
			panic("presburger: column still referenced after substitution")
		}
		out = append(out, c)
	}
	b.cons = out
}

// tryEqualitySubstitution looks for an equality that determines col with a
// unit coefficient and substitutes it. Equalities whose substitution would
// corrupt a div definition (see substitutionBreaksDivs) are skipped.
func (b *basic) tryEqualitySubstitution(col int) bool {
	for i, c := range b.cons {
		if !c.Eq || c.C[col] == 0 {
			continue
		}
		a := c.C[col]
		if a != 1 && a != -1 {
			continue
		}
		// a*x + rest == 0  =>  x == -rest/a == -a*rest (a = ±1).
		expr := NewVec(b.ncols())
		for j := range c.C {
			if j == col {
				continue
			}
			expr[j] = -a * c.C[j]
		}
		if b.substitutionBreaksDivs(col, expr) {
			continue
		}
		// Remove the defining constraint, substitute elsewhere.
		b.cons = append(b.cons[:i], b.cons[i+1:]...)
		b.substituteColumn(col, expr, 1)
		return true
	}
	return false
}

// substitutionBreaksDivs reports whether substituting col by expr would make
// a div numerator reference the div itself or a later div: a div numerator
// may only use columns defined before it, so an expression carrying a div
// column d can be substituted only into divs defined after d. The equality
// k == 8*floor(k/8) (an aligned loop bound) is the canonical trap —
// substituting k into floor(k/8)'s own numerator makes the definition
// circular and silently evaluates wrong.
func (b *basic) substitutionBreaksDivs(col int, expr Vec) bool {
	maxDivCol := -1
	for j := 1 + b.ndim; j < len(expr); j++ {
		if expr[j] != 0 && j > maxDivCol {
			maxDivCol = j
		}
	}
	if maxDivCol < 0 {
		return false
	}
	for i := range b.divs {
		num := b.divs[i].Num.Resized(b.ncols())
		if num[col] != 0 && b.divCol(i) <= maxDivCol {
			return true
		}
	}
	return false
}

// tryDivisibilityEquality handles c*x == e with |c| > 1 by introducing the
// div d = floor(e/c), the divisibility constraint e == c*d, and substituting
// x := d.
func (b *basic) tryDivisibilityEquality(col int) bool {
	if b.divUsesColumn(col) {
		// The substitution below replaces col by a freshly added div, which
		// existing div numerators referencing col must not point at (their
		// definitions may only use earlier columns).
		return false
	}
	for i, c := range b.cons {
		if !c.Eq || c.C[col] == 0 {
			continue
		}
		a := c.C[col]
		// a*x + rest == 0 => x = -rest/a.
		den := ints.Abs(a)
		e := NewVec(b.ncols())
		for j := range c.C {
			if j == col {
				continue
			}
			if a > 0 {
				e[j] = -c.C[j]
			} else {
				e[j] = c.C[j]
			}
		}
		b.cons = append(b.cons[:i], b.cons[i+1:]...)
		dcol := b.addDiv(e, den)
		// divisibility: e - den*d == 0
		div := NewVec(b.ncols())
		copy(div, e.Resized(b.ncols()))
		div[dcol] -= den
		b.addConstraint(Constraint{C: div, Eq: true})
		// x := d
		expr := NewVec(b.ncols())
		expr[dcol] = 1
		b.substituteColumn(col, expr, 1)
		return true
	}
	return false
}

// tryFloorSubstitution detects the pattern c*x <= e together with
// c*x >= e - c + 1 (which pins x to floor(e/c)) and substitutes the div.
// It also handles the divisibility-equality case as a special form.
func (b *basic) tryFloorSubstitution(col int) bool {
	if b.tryDivisibilityEquality(col) {
		return true
	}
	if b.divUsesColumn(col) {
		// Same restriction as in tryDivisibilityEquality: the pattern below
		// substitutes col by a new (last) div column.
		return false
	}
	// Look for matching upper/lower pairs.
	for i, up := range b.cons {
		if up.Eq {
			continue
		}
		a := up.C[col]
		if a >= 0 {
			continue
		}
		c := -a // up: e - c*x >= 0  =>  c*x <= e
		if c == 1 {
			continue // handled by FM cheaply; no div needed
		}
		e := up.C.Clone()
		e[col] = 0
		for j, lo := range b.cons {
			if j == i || lo.Eq || lo.C[col] != c {
				continue
			}
			// lo: c*x + f >= 0  =>  c*x >= -f. Pattern needs -f == e - c + 1,
			// i.e. f + e == c - 1 componentwise on the constant and equal
			// elsewhere with opposite signs.
			match := true
			for k := range lo.C {
				want := -e[k]
				if k == 0 {
					want = -(e[0] - c + 1)
				}
				if k == col {
					continue
				}
				if lo.C[k] != want {
					match = false
					break
				}
			}
			if !match {
				continue
			}
			// x = floor(e/c).
			// Remove both defining constraints (higher index first).
			hi, lo2 := i, j
			if hi < lo2 {
				hi, lo2 = lo2, hi
			}
			b.cons = append(b.cons[:hi], b.cons[hi+1:]...)
			b.cons = append(b.cons[:lo2], b.cons[lo2+1:]...)
			dcol := b.addDiv(e, c)
			expr := NewVec(b.ncols())
			expr[dcol] = 1
			b.substituteColumn(col, expr, 1)
			return true
		}
	}
	return false
}

// fourierMotzkin eliminates col by combining lower and upper bounds. It is
// exact over the integers only if each combined pair has a unit coefficient
// on at least one side; otherwise ErrUnsupported is returned and the basic
// set is left unchanged.
func (b *basic) fourierMotzkin(col int) error {
	var lowers, uppers, rest []Constraint
	for _, c := range b.cons {
		a := c.C[col]
		switch {
		case a == 0:
			rest = append(rest, c)
		case c.Eq:
			// An equality with non-unit coefficient should have been handled
			// by tryDivisibilityEquality; with unit coefficient by
			// tryEqualitySubstitution.
			return fmt.Errorf("%w: unexpected equality during Fourier-Motzkin", ErrUnsupported)
		case a > 0:
			lowers = append(lowers, c)
		default:
			uppers = append(uppers, c)
		}
	}
	for _, lo := range lowers {
		for _, up := range uppers {
			a := lo.C[col]   // > 0:  a*x >= -lo_rest
			bb := -up.C[col] // > 0:  bb*x <= up_rest
			if a != 1 && bb != 1 {
				return fmt.Errorf("%w: non-unit coefficients %d and %d in Fourier-Motzkin", ErrUnsupported, a, bb)
			}
			// a*up + bb*lo has zero coefficient at col.
			nc := NewVec(b.ncols())
			for j := range nc {
				nc[j] = a*up.C[j] + bb*lo.C[j]
			}
			nc[col] = 0
			rest = append(rest, Constraint{C: nc})
		}
	}
	b.cons = rest
	return nil
}

// eliminateDimCols eliminates several dimension columns (given as current
// column indices, which must be sorted ascending). Columns are processed
// from the highest index down so earlier indices stay valid.
func (b *basic) eliminateDimCols(cols []int) error {
	for i := len(cols) - 1; i >= 0; i-- {
		if err := b.eliminateDimCol(cols[i]); err != nil {
			return err
		}
	}
	b.debugAssert("projection", false)
	return nil
}

// eliminateDimColApprox projects out the column like eliminateDimCol, but
// never fails: when the exact strategies do not apply, the projection is
// over-approximated — divs that (transitively) reference the column are
// dropped together with every constraint mentioning them, and the remaining
// bounds on the column are combined by rational Fourier–Motzkin without the
// integrality side conditions. Every point of the exact projection satisfies
// the result, so the result is a superset. Callers that only need candidate
// values to test against the exact set (enumeration) stay exact.
func (b *basic) eliminateDimColApprox(col int) {
	if err := b.eliminateDimCol(col); err == nil {
		return
	}
	// Drop divs that transitively reference the column.
	removed := make([]bool, len(b.divs))
	for {
		changed := false
		for i := range b.divs {
			if removed[i] {
				continue
			}
			num := b.divs[i].Num.Resized(b.ncols())
			if num[col] != 0 {
				removed[i], changed = true, true
				continue
			}
			for j := range b.divs {
				if removed[j] && num[b.divCol(j)] != 0 {
					removed[i], changed = true, true
					break
				}
			}
		}
		if !changed {
			break
		}
	}
	keep := b.cons[:0]
	for _, c := range b.cons {
		cc := c.C.Resized(b.ncols())
		drop := false
		for i := range b.divs {
			if removed[i] && cc[b.divCol(i)] != 0 {
				drop = true
				break
			}
		}
		if !drop {
			keep = append(keep, Constraint{C: cc, Eq: c.Eq})
		}
	}
	b.cons = keep
	for i := len(b.divs) - 1; i >= 0; i-- {
		if removed[i] {
			// Unreferenced now: constraints mentioning it were dropped and
			// surviving divs cannot reference a removed div by construction.
			b.divs[i].Num = NewVec(b.ncols())
			b.dropColumn(b.divCol(i))
		}
	}
	// With the offending divs gone the exact strategies may apply again.
	if err := b.eliminateDimCol(col); err == nil {
		return
	}
	// Rational Fourier–Motzkin: equalities referencing the column act as a
	// lower and an upper bound at once.
	var lowers, uppers, rest []Constraint
	for _, c := range b.cons {
		a := c.C[col]
		switch {
		case a == 0:
			rest = append(rest, c)
		case c.Eq:
			lowers = append(lowers, Constraint{C: c.C.Clone()})
			uppers = append(uppers, Constraint{C: c.C.Neg()})
		case a > 0:
			lowers = append(lowers, c)
		default:
			uppers = append(uppers, c)
		}
	}
	// Re-normalize signs: after the equality split a "lower" may still have a
	// negative coefficient.
	fix := func(cs []Constraint, wantPos bool) []Constraint {
		out := cs[:0]
		for _, c := range cs {
			if (c.C[col] > 0) == wantPos {
				out = append(out, c)
			} else {
				out = append(out, Constraint{C: c.C.Neg()})
			}
		}
		return out
	}
	lowers = fix(lowers, true)
	uppers = fix(uppers, false)
	for _, lo := range lowers {
		for _, up := range uppers {
			a := lo.C[col]
			bb := -up.C[col]
			nc := NewVec(b.ncols())
			for j := range nc {
				nc[j] = a*up.C[j] + bb*lo.C[j]
			}
			nc[col] = 0
			rest = append(rest, Constraint{C: nc})
		}
	}
	b.cons = rest
	b.dropColumn(col)
}
