//go:build !haystackdebug

package presburger

// debugInvariants gates the invariant assertions at the mutation frontiers.
// In normal builds it is a false constant, so the hooks compile away; build
// with -tags haystackdebug to turn every simplify/coalesce/gist/projection
// into a self-checking operation.
const debugInvariants = false
