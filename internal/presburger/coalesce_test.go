package presburger

import (
	"fmt"
	"math/rand"
	"testing"
)

// cineq builds an inequality constraint from the given columns.
func cineq(cols ...int64) Constraint { return Constraint{C: Vec(cols)} }

// ceq builds an equality constraint from the given columns.
func ceq(cols ...int64) Constraint { return Constraint{C: Vec(cols), Eq: true} }

func setFromCons(sp Space, conss ...[]Constraint) Set {
	out := EmptySet(sp)
	for _, cons := range conss {
		out = out.Union(SetFromBasic(NewBasicSet(sp, nil, cons)))
	}
	return out
}

// pointsOf enumerates the set's points over a bounding box and returns them
// keyed by their string form. Membership is checked by direct evaluation
// (Contains), so the result does not depend on any of the machinery
// coalescing uses.
func pointsOf(s Set, lo, hi int64) map[string]bool {
	out := map[string]bool{}
	n := s.Space().Dim()
	point := make([]int64, n)
	var walk func(d int)
	walk = func(d int) {
		if d == n {
			if s.Contains(point) {
				out[fmt.Sprint(point)] = true
			}
			return
		}
		for v := lo; v <= hi; v++ {
			point[d] = v
			walk(d + 1)
		}
	}
	walk(0)
	return out
}

func assertSamePoints(t *testing.T, before, after Set, lo, hi int64) {
	t.Helper()
	pb := pointsOf(before, lo, hi)
	pa := pointsOf(after, lo, hi)
	for p := range pb {
		if !pa[p] {
			t.Fatalf("point %s lost by coalescing\nbefore: %s\nafter:  %s", p, before, after)
		}
	}
	for p := range pa {
		if !pb[p] {
			t.Fatalf("point %s gained by coalescing\nbefore: %s\nafter:  %s", p, before, after)
		}
	}
}

func TestCoalesceDedup(t *testing.T) {
	sp := NewSpace("S", "x")
	// Identical basics (one with permuted constraints) collapse to one.
	s := setFromCons(sp,
		[]Constraint{cineq(0, 1), cineq(9, -1)},
		[]Constraint{cineq(9, -1), cineq(0, 1)},
	)
	c := s.Coalesce()
	if len(c.Basics()) != 1 {
		t.Fatalf("dedup failed: %d basics", len(c.Basics()))
	}
	assertSamePoints(t, s, c, -3, 12)
}

func TestCoalesceSubsumption(t *testing.T) {
	sp := NewSpace("S", "x")
	// [2,5] is inside [0,10]; the constraint-superset rule drops it.
	s := setFromCons(sp,
		[]Constraint{cineq(0, 1), cineq(10, -1), cineq(-2, 1), cineq(5, -1)},
		[]Constraint{cineq(0, 1), cineq(10, -1)},
	)
	c := s.Coalesce()
	if len(c.Basics()) != 1 {
		t.Fatalf("subsumption failed: %d basics: %s", len(c.Basics()), c)
	}
	assertSamePoints(t, s, c, -3, 13)
}

func TestCoalesceAdjacentCut(t *testing.T) {
	sp := NewSpace("S", "x", "y")
	// Same rectangle split by x <= 4 | x >= 5 merges back.
	shared := []Constraint{cineq(0, 0, 1), cineq(7, 0, -1), cineq(0, 1, 0), cineq(9, -1, 0)}
	left := append(append([]Constraint(nil), shared...), cineq(4, -1, 0))
	right := append(append([]Constraint(nil), shared...), cineq(-5, 1, 0))
	s := setFromCons(sp, left, right)
	c := s.Coalesce()
	if len(c.Basics()) != 1 {
		t.Fatalf("adjacent cut merge failed: %d basics: %s", len(c.Basics()), c)
	}
	assertSamePoints(t, s, c, -2, 11)
}

func TestCoalesceEqAdjacent(t *testing.T) {
	sp := NewSpace("S", "x")
	// {x == 0} next to {1 <= x <= 7} merges to {0 <= x <= 7}.
	s := setFromCons(sp,
		[]Constraint{ceq(0, 1)},
		[]Constraint{cineq(-1, 1), cineq(7, -1)},
	)
	c := s.Coalesce()
	if len(c.Basics()) != 1 {
		t.Fatalf("eq-adjacent merge failed: %d basics: %s", len(c.Basics()), c)
	}
	assertSamePoints(t, s, c, -3, 10)
}

func TestCoalesceExtensionMerge(t *testing.T) {
	sp := NewSpace("S", "x", "d")
	// The d == x hyperplane slab (with bounds implied by the equality)
	// next to the d <= x-1 wedge: merges to d <= x.
	slab := []Constraint{ceq(0, -1, 1), cineq(0, 1, 0), cineq(9, -1, 0)}
	wedge := []Constraint{cineq(-1, 1, -1), cineq(0, 0, 1), cineq(0, 1, 0), cineq(9, -1, 0)}
	s := setFromCons(sp, slab, wedge)
	c := s.Coalesce()
	if len(c.Basics()) != 1 {
		t.Fatalf("extension merge failed: %d basics: %s", len(c.Basics()), c)
	}
	assertSamePoints(t, s, c, -2, 11)
}

func TestCoalesceThreeWaySplit(t *testing.T) {
	sp := NewSpace("S", "x", "d")
	// d < x, d == x, d > x over a box: the union is the whole box and
	// should coalesce to a single basic set (extension then cut).
	box := []Constraint{cineq(0, 1, 0), cineq(9, -1, 0), cineq(0, 0, 1), cineq(9, 0, -1)}
	below := append(append([]Constraint(nil), box...), cineq(-1, 1, -1))
	on := append(append([]Constraint(nil), box...), ceq(0, -1, 1))
	above := append(append([]Constraint(nil), box...), cineq(-1, -1, 1))
	s := setFromCons(sp, below, on, above)
	c := s.Coalesce()
	if len(c.Basics()) != 1 {
		t.Fatalf("three-way split did not collapse: %d basics: %s", len(c.Basics()), c)
	}
	assertSamePoints(t, s, c, -2, 11)
}

func TestCoalesceRedundancyElimination(t *testing.T) {
	sp := NewSpace("S", "x", "y")
	// x >= 2 makes x >= 0 redundant; x+y >= 1 is implied by x >= 2, y >= 0.
	bs := NewBasicSet(sp, nil, []Constraint{
		cineq(-2, 1, 0), cineq(0, 1, 0), cineq(0, 0, 1), cineq(-1, 1, 1), cineq(9, -1, 0), cineq(9, 0, -1),
	})
	c := SetFromBasic(bs).Coalesce()
	if len(c.Basics()) != 1 {
		t.Fatalf("unexpected basics: %d", len(c.Basics()))
	}
	if got := len(c.Basics()[0].Constraints()); got != 4 {
		t.Fatalf("redundant constraints kept: %d constraints in %s", got, c)
	}
	assertSamePoints(t, SetFromBasic(bs), c, -2, 11)
}

func TestSimplifyOppositePairBecomesEquality(t *testing.T) {
	sp := NewSpace("S", "x", "y")
	// x - y >= 0 and y - x >= 0 pin x == y.
	bs := NewBasicSet(sp, nil, []Constraint{cineq(0, 1, -1), cineq(0, -1, 1), cineq(0, 1, 0), cineq(5, -1, 0)})
	sim, ok := bs.Simplify()
	if !ok {
		t.Fatal("set is non-empty")
	}
	foundEq := false
	for _, c := range sim.Constraints() {
		if c.Eq {
			foundEq = true
		}
	}
	if !foundEq {
		t.Fatalf("opposite inequalities not canonicalized to an equality: %s", sim)
	}
	// And an infeasible pair is detected.
	bad := NewBasicSet(sp, nil, []Constraint{cineq(-1, 1, -1), cineq(0, -1, 1)})
	if _, ok := bad.Simplify(); ok {
		t.Fatal("x-y>=1 with y>=x should be empty")
	}
}

// TestCoalesceRandomSets fuzzes the full rule stack: random unions of boxes,
// wedges, hyperplanes, and div-constrained basics are coalesced and the
// result compared point by point over a bounding box (membership by direct
// evaluation, independent of the coalescing machinery).
func TestCoalesceRandomSets(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	sp := NewSpace("S", "x", "y")
	const rounds = 300
	for round := 0; round < rounds; round++ {
		nb := 1 + rng.Intn(4)
		s := EmptySet(sp)
		for i := 0; i < nb; i++ {
			var cons []Constraint
			// A bounding box, sometimes degenerate.
			x0, y0 := int64(rng.Intn(7)-2), int64(rng.Intn(7)-2)
			w, h := int64(rng.Intn(6)), int64(rng.Intn(6))
			cons = append(cons,
				cineq(-x0, 1, 0), cineq(x0+w, -1, 0),
				cineq(-y0, 0, 1), cineq(y0+h, 0, -1))
			// Occasionally a diagonal cut or an equality.
			switch rng.Intn(4) {
			case 0:
				cons = append(cons, cineq(int64(rng.Intn(3)-1), 1, -1))
			case 1:
				cons = append(cons, ceq(int64(rng.Intn(3)-1), 1, -1))
			}
			bs := NewBasicSet(sp, nil, cons)
			if rng.Intn(3) == 0 {
				// Add a div constraint: x == 2*floor(x/2) (even x).
				var col int
				bs, col = bs.AddDiv(Vec{0, 1, 0}, 2)
				cc := NewVec(bs.NCols())
				cc[1] = 1
				cc[col] = -2
				bs = bs.AddConstraint(Constraint{C: cc, Eq: true})
			}
			s = s.Union(SetFromBasic(bs))
		}
		c := s.Coalesce()
		if len(c.Basics()) > len(s.Basics()) {
			t.Fatalf("round %d: coalescing grew the union: %d -> %d", round, len(s.Basics()), len(c.Basics()))
		}
		assertSamePoints(t, s, c, -4, 9)
	}
}

// TestCoalesceRandomSubtract checks the double-subtraction identity on
// random set pairs: (a \ b) ∪ (a ∩ b) must equal a, and the coalesced
// forms of both sides must agree point by point.
func TestCoalesceRandomSubtract(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	sp := NewSpace("S", "x", "y")
	mkbox := func() Set {
		x0, y0 := int64(rng.Intn(7)-2), int64(rng.Intn(7)-2)
		w, h := int64(rng.Intn(7)), int64(rng.Intn(7))
		return SetFromBasic(NewBasicSet(sp, nil, []Constraint{
			cineq(-x0, 1, 0), cineq(x0+w, -1, 0),
			cineq(-y0, 0, 1), cineq(y0+h, 0, -1),
		}))
	}
	for round := 0; round < 200; round++ {
		a := mkbox().Union(mkbox())
		b := mkbox()
		rebuilt := a.Subtract(b).Union(a.Intersect(b)).Coalesce()
		assertSamePoints(t, a, rebuilt, -4, 10)
		// Double subtraction: both differences of a and its coalesced form
		// must be empty.
		ac := a.Coalesce()
		if d := a.Subtract(ac); !d.DefinitelyEmpty() && len(pointsOf(d, -4, 10)) > 0 {
			t.Fatalf("round %d: a \\ coalesce(a) non-empty: %s", round, d)
		}
		if d := ac.Subtract(a); !d.DefinitelyEmpty() && len(pointsOf(d, -4, 10)) > 0 {
			t.Fatalf("round %d: coalesce(a) \\ a non-empty: %s", round, d)
		}
	}
}

// TestCoalesceRandomSlabFamilies fuzzes the verified merge rules with the
// shapes the tiled pipeline produces: three dimensions, a shared div, slab
// decompositions around hyperplanes (d < x, d == x, d > x), and basics
// whose implied bounds have been partially dropped. Membership is compared
// point by point, independent of the coalescing machinery.
func TestCoalesceRandomSlabFamilies(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	sp := NewSpace("S", "x", "y", "d")
	const rounds = 200
	for round := 0; round < rounds; round++ {
		nb := 2 + rng.Intn(3)
		s := EmptySet(sp)
		for i := 0; i < nb; i++ {
			var cons []Constraint
			// Random subset of box bounds (some implied bounds missing, as
			// after redundancy elimination).
			if rng.Intn(4) != 0 {
				cons = append(cons, cineq(0, 1, 0, 0))
			}
			if rng.Intn(4) != 0 {
				cons = append(cons, cineq(7, -1, 0, 0))
			}
			cons = append(cons, cineq(0, 0, 1, 0), cineq(6, 0, -1, 0))
			if rng.Intn(4) != 0 {
				cons = append(cons, cineq(0, 0, 0, 1))
			}
			if rng.Intn(4) != 0 {
				cons = append(cons, cineq(7, 0, 0, -1))
			}
			// A slab relation between d and x: below, on, or above, with a
			// random offset.
			off := int64(rng.Intn(3) - 1)
			switch rng.Intn(4) {
			case 0:
				cons = append(cons, cineq(-1+off, 1, 0, -1)) // d <= x+off-1
			case 1:
				cons = append(cons, ceq(off, -1, 0, 1)) // d == x-off
			case 2:
				cons = append(cons, cineq(-1-off, -1, 0, 1)) // d >= x+off+1
			}
			bs := NewBasicSet(sp, nil, cons)
			if rng.Intn(3) == 0 {
				// Tile slab via a div: y in [2t, 2t+1] for t = floor(y/2),
				// possibly pinned to the lower lane (y == 2t).
				var col int
				bs, col = bs.AddDiv(Vec{0, 0, 1, 0}, 2)
				cc := NewVec(bs.NCols())
				cc[2] = 1
				cc[col] = -2
				if rng.Intn(2) == 0 {
					bs = bs.AddConstraint(Constraint{C: cc, Eq: true})
				} else {
					cc[0] = -1
					bs = bs.AddConstraint(Constraint{C: cc}) // y >= 2t+1
				}
			}
			s = s.Union(SetFromBasic(bs))
		}
		c := s.Coalesce()
		assertSamePoints(t, s, c, -3, 8)
		// Subtract a random box and re-check (exercises the coalescing
		// wired inside Subtract).
		x0 := int64(rng.Intn(5) - 1)
		cut := SetFromBasic(NewBasicSet(sp, nil, []Constraint{
			cineq(-x0, 1, 0, 0), cineq(x0+2, -1, 0, 0), cineq(5, 0, -1, 0),
		}))
		diff := s.Subtract(cut)
		pd := pointsOf(diff, -3, 8)
		ps := pointsOf(s, -3, 8)
		pc := pointsOf(cut, -3, 8)
		for p := range ps {
			if !pc[p] && !pd[p] {
				t.Fatalf("round %d: point %s lost by subtract", round, p)
			}
		}
		for p := range pd {
			if !ps[p] || pc[p] {
				t.Fatalf("round %d: point %s wrong in subtract result", round, p)
			}
		}
	}
}

// TestProjectOutAlignedDivEquality guards against the circular-div trap: a
// set carrying the aligned-bound equality k == 8*floor(k/8) must not let
// ProjectOut(k) substitute k into floor(k/8)'s own numerator (the resulting
// self-referential div silently evaluates wrong). The projection may refuse
// (ErrUnsupported) but must never return a wrong set.
func TestProjectOutAlignedDivEquality(t *testing.T) {
	sp := NewSpace("S", "jt", "k")
	bs := UniverseBasicSet(sp)
	var e0 int
	bs, e0 = bs.AddDiv(Vec{0, 0, 1}, 8) // e0 = floor(k/8)
	cc := NewVec(bs.NCols())
	cc[2] = 1
	cc[e0] = -8
	bs = bs.AddConstraint(Constraint{C: cc, Eq: true}) // k == 8*e0
	lo := NewVec(bs.NCols())
	lo[0] = -8
	lo[2] = 1
	bs = bs.AddConstraint(Constraint{C: lo}) // k >= 8
	hi := NewVec(bs.NCols())
	hi[0] = 24
	hi[2] = -1
	bs = bs.AddConstraint(Constraint{C: hi})            // k <= 24
	bs = bs.AddConstraint(Constraint{C: Vec{0, 1, 0}})  // jt >= 0
	bs = bs.AddConstraint(Constraint{C: Vec{3, -1, 0}}) // jt <= 3

	want := map[string]bool{}
	if err := bs.Scan(func(p []int64) error {
		want[fmt.Sprint(p[0])] = true
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(want) != 4 {
		t.Fatalf("setup wrong: expected jt in [0,3], got %v", want)
	}
	proj, err := bs.ProjectOut(1, 1)
	if err != nil {
		t.Skipf("projection refused (acceptable): %v", err)
	}
	got := map[string]bool{}
	if err := proj.Scan(func(p []int64) error {
		got[fmt.Sprint(p[0])] = true
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for k := range want {
		if !got[k] {
			t.Fatalf("projection lost jt=%s: %s", k, proj)
		}
	}
	for k := range got {
		if !want[k] {
			t.Fatalf("projection gained jt=%s: %s", k, proj)
		}
	}
}
