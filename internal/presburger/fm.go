package presburger

import (
	"math"

	"haystack/internal/ints"
)

// maxFMConstraints bounds the number of constraints kept per elimination
// step during rational Fourier–Motzkin. Exceeding the bound drops the widest
// constraints, which weakens the system; both users of the rational
// projection (feasibility pruning and scan bounds) remain correct under
// weakening.
const maxFMConstraints = 512

// materializedConstraints returns a copy of b's constraints together with
// the defining constraints of every div (den*d <= num <= den*d + den - 1),
// so that divs can be treated as ordinary rational variables.
func (b *basic) materializedConstraints() []Constraint {
	out := make([]Constraint, 0, len(b.cons)+2*len(b.divs))
	for _, c := range b.cons {
		out = append(out, Constraint{C: c.C.Resized(b.ncols()), Eq: c.Eq})
	}
	for i, d := range b.divs {
		num := d.Num.Resized(b.ncols())
		col := b.divCol(i)
		lower := num.Clone() // num - den*d >= 0
		lower[col] -= d.Den
		upper := num.Neg() // den*d + den - 1 - num >= 0
		upper[col] += d.Den
		upper[0] += d.Den - 1
		out = append(out, Constraint{C: lower}, Constraint{C: upper})
	}
	return out
}

// rationalEliminate removes the given column from the constraint system by
// rational Gaussian/Fourier–Motzkin elimination. The result is implied by
// the input (it is the rational shadow), so it is sound for pruning and for
// bound computation but not necessarily exact over the integers.
func rationalEliminate(cons []Constraint, col int) []Constraint {
	// Prefer an equality pivot.
	for i, c := range cons {
		if c.Eq && c.C[col] != 0 && c.C[col] != math.MinInt64 {
			pivot := c
			out := make([]Constraint, 0, len(cons)-1)
			for j, o := range cons {
				if j == i {
					continue
				}
				a := o.C[col]
				if a == 0 {
					out = append(out, o)
					continue
				}
				p := pivot.C[col]
				// p*o - a*pivot eliminates col; multiply so the inequality
				// direction is preserved (scale o by |p|).
				scale := ints.Abs(p)
				f := -a
				if p < 0 {
					f = a
				}
				if a == math.MinInt64 {
					// Negating a would wrap; drop the combination (weakening).
					continue
				}
				nc, ok := combineChecked(scale, o.C, f, pivot.C)
				if !ok {
					// The combination wraps int64. Dropping it weakens the
					// projection, which every caller tolerates (like the
					// maxFMConstraints cap); keeping a wrapped constraint
					// would silently corrupt bounds.
					continue
				}
				nc[col] = 0
				out = append(out, normalizeConstraint(Constraint{C: nc, Eq: o.Eq}))
			}
			return out
		}
	}
	var lowers, uppers, rest []Constraint
	for _, c := range cons {
		a := c.C[col]
		switch {
		case a == 0:
			rest = append(rest, c)
		case a > 0:
			lowers = append(lowers, c)
		default:
			uppers = append(uppers, c)
		}
	}
	for _, lo := range lowers {
		for _, up := range uppers {
			a := lo.C[col]
			if up.C[col] == math.MinInt64 {
				continue
			}
			bb := -up.C[col]
			nc, ok := combineChecked(a, up.C, bb, lo.C)
			if !ok {
				// See the equality-pivot path: an overflowing combination is
				// dropped rather than kept wrapped.
				continue
			}
			nc[col] = 0
			rest = append(rest, normalizeConstraint(Constraint{C: nc}))
		}
	}
	if len(rest) > maxFMConstraints {
		rest = rest[:maxFMConstraints]
	}
	return rest
}

// mulNoWrap is TryMul without the quotient check on the common case: two
// factors below 2^31 in magnitude cannot wrap, so the Fourier–Motzkin and
// evaluation hot loops pay two comparisons instead of a division.
func mulNoWrap(a, b int64) (int64, bool) {
	const lim = 1 << 31
	if a > -lim && a < lim && b > -lim && b < lim {
		return a * b, true
	}
	return ints.TryMul(a, b)
}

// combineChecked computes s*x + f*y with overflow checking, returning
// ok=false (and no vector) if any component would wrap int64.
func combineChecked(s int64, x Vec, f int64, y Vec) (Vec, bool) {
	nc := NewVec(len(x))
	for k := range nc {
		v1, ok := mulNoWrap(s, x[k])
		if !ok {
			return nil, false
		}
		v2, ok := mulNoWrap(f, y[k])
		if !ok {
			return nil, false
		}
		sum, ok := ints.TryAdd(v1, v2)
		if !ok {
			return nil, false
		}
		nc[k] = sum
	}
	return nc, true
}

// rationalFeasible reports whether the basic set/map has a rational
// solution. A false result guarantees integer emptiness; a true result makes
// no integer claim beyond the divisibility rule below.
//
// Every column (dimension or div) holds an integer, so a derived equality
// g·f + c == 0 whose non-constant coefficients share a factor g that does
// not divide c is an integer contradiction even when rationally satisfiable.
// Checking it per elimination round catches the residue-class clashes
// (x ≡ r₁ and x ≡ r₂ mod m through two different floor divs) that the
// residue-splitting counting engine and subtraction chains produce by the
// thousands; purely rational reasoning keeps those pieces alive forever.
func (b *basic) rationalFeasible() bool {
	cons := b.materializedConstraints()
	if hasDivisibilityContradiction(cons) {
		return false
	}
	for col := b.ncols() - 1; col >= 1; col-- {
		cons = rationalEliminate(cons, col)
		if hasDivisibilityContradiction(cons) {
			return false
		}
	}
	for _, c := range cons {
		if c.Eq && c.C[0] != 0 {
			return false
		}
		if !c.Eq && c.C[0] < 0 {
			return false
		}
	}
	return true
}

// hasDivisibilityContradiction scans for an equality whose non-constant
// coefficients share a factor that does not divide the constant term — an
// integer infeasibility certificate (all columns are integer-valued).
func hasDivisibilityContradiction(cons []Constraint) bool {
	for _, c := range cons {
		if !c.Eq {
			continue
		}
		var g int64
		for _, x := range c.C[1:] {
			g = ints.GCD(g, x)
		}
		if g > 1 && c.C[0]%g != 0 {
			return true
		}
	}
	return false
}

// isObviouslyEmpty combines the cheap simplification checks with rational
// feasibility. It may return false for sets that are in fact empty over the
// integers; callers use it for pruning only.
func (b *basic) isObviouslyEmpty() bool {
	cl := b.clone()
	if !cl.simplify() {
		return true
	}
	return !cl.rationalFeasible()
}

// dimBounds computes conservative integer bounds for dimension dim given
// fixed values for dimensions 0..dim-1. Later dimensions and all divs are
// eliminated rationally first. The second return value reports whether both
// bounds exist (the dimension is bounded).
func (b *basic) dimBounds(dim int, prefix []int64) (lo, hi int64, bounded bool) {
	cons := b.materializedConstraints()
	// Eliminate div columns and later dimension columns.
	for col := b.ncols() - 1; col > b.dimCol(dim); col-- {
		cons = rationalEliminate(cons, col)
	}
	col := b.dimCol(dim)
	haveLo, haveHi := false, false
	for _, c := range cons {
		a := c.C[col]
		if a == 0 {
			continue
		}
		if a == math.MinInt64 {
			// -a below would wrap; treat the dimension as unbounded rather
			// than derive a wrapped bound.
			return 0, 0, false
		}
		// Evaluate the rest of the constraint on the prefix.
		rest, restOK := evalRest(c.C, b, dim, prefix)
		if !restOK {
			return 0, 0, false
		}
		// a*x + rest >= 0 (or == 0).
		if c.Eq {
			if rest%a != 0 {
				return 0, -1, true // no integer solution
			}
			v := -rest / a
			if !haveLo || v > lo {
				lo = v
			}
			if !haveHi || v < hi {
				hi = v
			}
			haveLo, haveHi = true, true
			continue
		}
		if a > 0 {
			v := ints.CeilDiv(-rest, a)
			if !haveLo || v > lo {
				lo = v
				haveLo = true
			}
		} else {
			v := ints.FloorDiv(rest, -a)
			if !haveHi || v < hi {
				hi = v
				haveHi = true
			}
		}
	}
	return lo, hi, haveLo && haveHi
}

// evalRest evaluates the constant and prefix terms of a bound constraint
// (c[0] + sum of c[dimCol(j)]*prefix[j] for j < dim) with overflow checking.
// ok=false means the evaluation wrapped int64; callers must then treat the
// dimension as unbounded instead of using a corrupted bound. The result is
// additionally rejected when it equals MinInt64, because every caller
// negates it.
func evalRest(c Vec, b *basic, dim int, prefix []int64) (int64, bool) {
	rest := c[0]
	for j := 0; j < dim; j++ {
		p, ok := mulNoWrap(c[b.dimCol(j)], prefix[j])
		if !ok {
			return 0, false
		}
		rest, ok = ints.TryAdd(rest, p)
		if !ok {
			return 0, false
		}
	}
	if rest == math.MinInt64 {
		return 0, false
	}
	return rest, true
}
