package presburger

import (
	"haystack/internal/ints"
)

// maxFMConstraints bounds the number of constraints kept per elimination
// step during rational Fourier–Motzkin. Exceeding the bound drops the widest
// constraints, which weakens the system; both users of the rational
// projection (feasibility pruning and scan bounds) remain correct under
// weakening.
const maxFMConstraints = 512

// materializedConstraints returns a copy of b's constraints together with
// the defining constraints of every div (den*d <= num <= den*d + den - 1),
// so that divs can be treated as ordinary rational variables.
func (b *basic) materializedConstraints() []Constraint {
	out := make([]Constraint, 0, len(b.cons)+2*len(b.divs))
	for _, c := range b.cons {
		out = append(out, Constraint{C: c.C.Resized(b.ncols()), Eq: c.Eq})
	}
	for i, d := range b.divs {
		num := d.Num.Resized(b.ncols())
		col := b.divCol(i)
		lower := num.Clone() // num - den*d >= 0
		lower[col] -= d.Den
		upper := num.Neg() // den*d + den - 1 - num >= 0
		upper[col] += d.Den
		upper[0] += d.Den - 1
		out = append(out, Constraint{C: lower}, Constraint{C: upper})
	}
	return out
}

// rationalEliminate removes the given column from the constraint system by
// rational Gaussian/Fourier–Motzkin elimination. The result is implied by
// the input (it is the rational shadow), so it is sound for pruning and for
// bound computation but not necessarily exact over the integers.
func rationalEliminate(cons []Constraint, col int) []Constraint {
	// Prefer an equality pivot.
	for i, c := range cons {
		if c.Eq && c.C[col] != 0 {
			pivot := c
			out := make([]Constraint, 0, len(cons)-1)
			for j, o := range cons {
				if j == i {
					continue
				}
				a := o.C[col]
				if a == 0 {
					out = append(out, o)
					continue
				}
				p := pivot.C[col]
				// p*o - a*pivot eliminates col; multiply so the inequality
				// direction is preserved (scale o by |p|).
				scale := ints.Abs(p)
				f := -a
				if p < 0 {
					f = a
				}
				nc := NewVec(len(o.C))
				for k := range nc {
					nc[k] = scale*o.C[k] + f*pivot.C[k]
				}
				nc[col] = 0
				out = append(out, normalizeConstraint(Constraint{C: nc, Eq: o.Eq}))
			}
			return out
		}
	}
	var lowers, uppers, rest []Constraint
	for _, c := range cons {
		a := c.C[col]
		switch {
		case a == 0:
			rest = append(rest, c)
		case a > 0:
			lowers = append(lowers, c)
		default:
			uppers = append(uppers, c)
		}
	}
	for _, lo := range lowers {
		for _, up := range uppers {
			a := lo.C[col]
			bb := -up.C[col]
			nc := NewVec(len(lo.C))
			for k := range nc {
				nc[k] = a*up.C[k] + bb*lo.C[k]
			}
			nc[col] = 0
			rest = append(rest, normalizeConstraint(Constraint{C: nc}))
		}
	}
	if len(rest) > maxFMConstraints {
		rest = rest[:maxFMConstraints]
	}
	return rest
}

// rationalFeasible reports whether the basic set/map has a rational
// solution. A false result guarantees integer emptiness; a true result makes
// no integer claim beyond the divisibility rule below.
//
// Every column (dimension or div) holds an integer, so a derived equality
// g·f + c == 0 whose non-constant coefficients share a factor g that does
// not divide c is an integer contradiction even when rationally satisfiable.
// Checking it per elimination round catches the residue-class clashes
// (x ≡ r₁ and x ≡ r₂ mod m through two different floor divs) that the
// residue-splitting counting engine and subtraction chains produce by the
// thousands; purely rational reasoning keeps those pieces alive forever.
func (b *basic) rationalFeasible() bool {
	cons := b.materializedConstraints()
	if hasDivisibilityContradiction(cons) {
		return false
	}
	for col := b.ncols() - 1; col >= 1; col-- {
		cons = rationalEliminate(cons, col)
		if hasDivisibilityContradiction(cons) {
			return false
		}
	}
	for _, c := range cons {
		if c.Eq && c.C[0] != 0 {
			return false
		}
		if !c.Eq && c.C[0] < 0 {
			return false
		}
	}
	return true
}

// hasDivisibilityContradiction scans for an equality whose non-constant
// coefficients share a factor that does not divide the constant term — an
// integer infeasibility certificate (all columns are integer-valued).
func hasDivisibilityContradiction(cons []Constraint) bool {
	for _, c := range cons {
		if !c.Eq {
			continue
		}
		var g int64
		for _, x := range c.C[1:] {
			g = ints.GCD(g, x)
		}
		if g > 1 && c.C[0]%g != 0 {
			return true
		}
	}
	return false
}

// isObviouslyEmpty combines the cheap simplification checks with rational
// feasibility. It may return false for sets that are in fact empty over the
// integers; callers use it for pruning only.
func (b *basic) isObviouslyEmpty() bool {
	cl := b.clone()
	if !cl.simplify() {
		return true
	}
	return !cl.rationalFeasible()
}

// dimBounds computes conservative integer bounds for dimension dim given
// fixed values for dimensions 0..dim-1. Later dimensions and all divs are
// eliminated rationally first. The second return value reports whether both
// bounds exist (the dimension is bounded).
func (b *basic) dimBounds(dim int, prefix []int64) (lo, hi int64, bounded bool) {
	cons := b.materializedConstraints()
	// Eliminate div columns and later dimension columns.
	for col := b.ncols() - 1; col > b.dimCol(dim); col-- {
		cons = rationalEliminate(cons, col)
	}
	col := b.dimCol(dim)
	haveLo, haveHi := false, false
	for _, c := range cons {
		a := c.C[col]
		if a == 0 {
			continue
		}
		// Evaluate the rest of the constraint on the prefix.
		rest := c.C[0]
		for j := 0; j < dim; j++ {
			rest += c.C[b.dimCol(j)] * prefix[j]
		}
		// a*x + rest >= 0 (or == 0).
		if c.Eq {
			if rest%a != 0 {
				return 0, -1, true // no integer solution
			}
			v := -rest / a
			if !haveLo || v > lo {
				lo = v
			}
			if !haveHi || v < hi {
				hi = v
			}
			haveLo, haveHi = true, true
			continue
		}
		if a > 0 {
			v := ints.CeilDiv(-rest, a)
			if !haveLo || v > lo {
				lo = v
				haveLo = true
			}
		} else {
			v := ints.FloorDiv(rest, -a)
			if !haveHi || v < hi {
				hi = v
				haveHi = true
			}
		}
	}
	return lo, hi, haveLo && haveHi
}
