package presburger

import (
	"fmt"
	"strings"
)

// BasicMap is a conjunction of quasi-affine constraints relating the
// dimensions of an input space to the dimensions of an output space. The
// column layout of constraint vectors is [const, in..., out..., divs...].
type BasicMap struct {
	in, out Space
	b       basic
}

// UniverseBasicMap returns the unconstrained relation between two spaces.
func UniverseBasicMap(in, out Space) BasicMap {
	return BasicMap{in: in, out: out, b: newBasic(in.Dim() + out.Dim())}
}

// NewBasicMap builds a basic map from explicit divs and constraints with
// column layout [const, in..., out..., divs...].
func NewBasicMap(in, out Space, divs []Div, cons []Constraint) BasicMap {
	bm := UniverseBasicMap(in, out)
	for _, d := range divs {
		bm.b.divs = append(bm.b.divs, d.Clone())
	}
	bm.b.resize()
	for _, c := range cons {
		bm.b.addConstraint(c.Clone())
	}
	return bm
}

// InSpace returns the input space.
func (bm BasicMap) InSpace() Space { return bm.in }

// OutSpace returns the output space.
func (bm BasicMap) OutSpace() Space { return bm.out }

// NIn returns the number of input dimensions.
func (bm BasicMap) NIn() int { return bm.in.Dim() }

// NOut returns the number of output dimensions.
func (bm BasicMap) NOut() int { return bm.out.Dim() }

// Divs returns a copy of the div definitions.
func (bm BasicMap) Divs() []Div {
	out := make([]Div, len(bm.b.divs))
	for i, d := range bm.b.divs {
		out[i] = d.Clone()
	}
	return out
}

// Constraints returns a copy of the constraints.
func (bm BasicMap) Constraints() []Constraint {
	out := make([]Constraint, len(bm.b.cons))
	for i, c := range bm.b.cons {
		out[i] = c.Clone()
	}
	return out
}

// NCols returns the constraint vector width: 1 + NIn + NOut + number of divs.
func (bm BasicMap) NCols() int { return bm.b.ncols() }

func (bm BasicMap) clone() BasicMap {
	return BasicMap{in: bm.in, out: bm.out, b: bm.b.clone()}
}

// AddConstraint returns the basic map with an additional constraint.
func (bm BasicMap) AddConstraint(c Constraint) BasicMap {
	out := bm.clone()
	out.b.addConstraint(c.Clone())
	return out
}

// AddDiv returns the basic map extended with the div floor(num/den) and the
// column index of the new (or existing identical) div.
func (bm BasicMap) AddDiv(num Vec, den int64) (BasicMap, int) {
	out := bm.clone()
	col := out.b.addDiv(num.Clone(), den)
	return out, col
}

// Intersect returns the intersection with another basic map between the same
// spaces.
func (bm BasicMap) Intersect(o BasicMap) BasicMap {
	if !bm.in.Equal(o.in) || !bm.out.Equal(o.out) {
		panic(fmt.Sprintf("presburger: intersect of %v->%v and %v->%v", bm.in, bm.out, o.in, o.out))
	}
	out := bm.clone()
	out.b.embed(&o.b, identityDimMap(o.b.ndim))
	return out
}

// Reverse swaps input and output dimensions.
func (bm BasicMap) Reverse() BasicMap {
	nIn, nOut := bm.NIn(), bm.NOut()
	out := UniverseBasicMap(bm.out, bm.in)
	dimMap := make([]int, nIn+nOut)
	for i := 0; i < nIn; i++ {
		dimMap[i] = nOut + i // old input dims become outputs
	}
	for j := 0; j < nOut; j++ {
		dimMap[nIn+j] = j // old output dims become inputs
	}
	out.b.embed(&bm.b, dimMap)
	return out
}

// IntersectDomain restricts the relation to inputs in the given set.
func (bm BasicMap) IntersectDomain(s BasicSet) BasicMap {
	if !bm.in.Equal(s.space) {
		panic(fmt.Sprintf("presburger: domain space mismatch %v vs %v", bm.in, s.space))
	}
	out := bm.clone()
	dimMap := make([]int, s.b.ndim)
	for i := range dimMap {
		dimMap[i] = i
	}
	out.b.embed(&s.b, dimMap)
	return out
}

// IntersectRange restricts the relation to outputs in the given set.
func (bm BasicMap) IntersectRange(s BasicSet) BasicMap {
	if !bm.out.Equal(s.space) {
		panic(fmt.Sprintf("presburger: range space mismatch %v vs %v", bm.out, s.space))
	}
	out := bm.clone()
	dimMap := make([]int, s.b.ndim)
	for i := range dimMap {
		dimMap[i] = bm.NIn() + i
	}
	out.b.embed(&s.b, dimMap)
	return out
}

// Domain projects the relation onto its input dimensions.
func (bm BasicMap) Domain() (BasicSet, error) {
	cl := bm.b.clone()
	cols := make([]int, bm.NOut())
	for i := range cols {
		cols[i] = cl.dimCol(bm.NIn() + i)
	}
	if err := cl.eliminateDimCols(cols); err != nil {
		return BasicSet{}, err
	}
	return BasicSet{space: bm.in, b: cl}, nil
}

// Range projects the relation onto its output dimensions.
func (bm BasicMap) Range() (BasicSet, error) {
	cl := bm.b.clone()
	cols := make([]int, bm.NIn())
	for i := range cols {
		cols[i] = cl.dimCol(i)
	}
	if err := cl.eliminateDimCols(cols); err != nil {
		return BasicSet{}, err
	}
	return BasicSet{space: bm.out, b: cl}, nil
}

// ApplyRange composes bm with o: the result relates x to z whenever bm
// relates x to some y and o relates y to z (i.e. o ∘ bm).
func (bm BasicMap) ApplyRange(o BasicMap) (BasicMap, error) {
	if !bm.out.Equal(o.in) {
		panic(fmt.Sprintf("presburger: compose range %v with domain %v", bm.out, o.in))
	}
	nIn, nMid, nOut := bm.NIn(), bm.NOut(), o.NOut()
	// Build a basic with dims [in, out, mid] so the mid columns are last and
	// can be eliminated without disturbing the result layout.
	res := basic{ndim: nIn + nOut + nMid}
	dimMapA := make([]int, nIn+nMid)
	for i := 0; i < nIn; i++ {
		dimMapA[i] = i
	}
	for i := 0; i < nMid; i++ {
		dimMapA[nIn+i] = nIn + nOut + i
	}
	res.embed(&bm.b, dimMapA)
	dimMapB := make([]int, nMid+nOut)
	for i := 0; i < nMid; i++ {
		dimMapB[i] = nIn + nOut + i
	}
	for i := 0; i < nOut; i++ {
		dimMapB[nMid+i] = nIn + i
	}
	res.embed(&o.b, dimMapB)
	cols := make([]int, nMid)
	for i := range cols {
		cols[i] = res.dimCol(nIn + nOut + i)
	}
	if err := res.eliminateDimCols(cols); err != nil {
		return BasicMap{}, err
	}
	return BasicMap{in: bm.in, out: o.out, b: res}, nil
}

// FixInputDim returns the basic map with input dimension dim fixed to value.
func (bm BasicMap) FixInputDim(dim int, value int64) BasicMap {
	c := Constraint{C: NewVec(bm.b.ncols()), Eq: true}
	c.C[0] = -value
	c.C[1+dim] = 1
	return bm.AddConstraint(c)
}

// FixOutputDim returns the basic map with output dimension dim fixed to
// value.
func (bm BasicMap) FixOutputDim(dim int, value int64) BasicMap {
	c := Constraint{C: NewVec(bm.b.ncols()), Eq: true}
	c.C[0] = -value
	c.C[1+bm.NIn()+dim] = 1
	return bm.AddConstraint(c)
}

// PinnedInputDims returns, per input dimension, whether an equality
// constraint pins it to a single constant, together with that constant
// (see BasicSet.PinnedDims). Two basic maps pinning the same input
// dimension to different constants have disjoint domains.
func (bm BasicMap) PinnedInputDims() (pinned []bool, vals []int64) {
	return pinnedFromCons(bm.b.cons, bm.NIn())
}

// DefinitelyEmpty reports whether the basic map can cheaply be shown empty.
func (bm BasicMap) DefinitelyEmpty() bool { return bm.b.isObviouslyEmpty() }

// Simplify normalizes constraints and reports emptiness detected on the way.
func (bm BasicMap) Simplify() (BasicMap, bool) {
	out := bm.clone()
	ok := out.b.simplify()
	return out, ok
}

// Contains reports whether the concatenated point (in dims then out dims)
// satisfies the relation.
func (bm BasicMap) Contains(point []int64) bool { return bm.b.contains(point) }

// Scan enumerates the integer points (input dims followed by output dims).
func (bm BasicMap) Scan(fn func(point []int64) error) error { return bm.b.scanPoints(fn) }

// CountByScan counts the relation pairs by enumeration.
func (bm BasicMap) CountByScan() (int64, error) { return bm.b.countPoints() }

// AsSet reinterprets the basic map as a basic set over the concatenated
// input and output dimensions (a "wrapped" relation).
func (bm BasicMap) AsSet() BasicSet {
	dims := append(append([]string(nil), bm.in.Dims...), bm.out.Dims...)
	sp := Space{Name: bm.in.Name + "->" + bm.out.Name, Dims: dims}
	return BasicSet{space: sp, b: bm.b.clone()}
}

// String renders the basic map.
func (bm BasicMap) String() string {
	names := append(append([]string(nil), bm.in.Dims...), bm.out.Dims...)
	return fmt.Sprintf("{ %s -> %s : %s }", bm.in, bm.out, bm.b.render(names))
}

// Map is a union of basic maps between the same pair of spaces.
type Map struct {
	in, out Space
	basics  []BasicMap
}

// EmptyMap returns the empty relation between two spaces.
func EmptyMap(in, out Space) Map { return Map{in: in, out: out} }

// MapFromBasic returns the map containing exactly the given basic map.
func MapFromBasic(bm BasicMap) Map {
	return Map{in: bm.in, out: bm.out, basics: []BasicMap{bm}}
}

// MapFromBasics returns the union of the given basic maps, which must share
// spaces.
func MapFromBasics(bms ...BasicMap) Map {
	if len(bms) == 0 {
		panic("presburger: MapFromBasics needs at least one basic map")
	}
	m := Map{in: bms[0].in, out: bms[0].out}
	for _, bm := range bms {
		if !bm.in.Equal(m.in) || !bm.out.Equal(m.out) {
			panic("presburger: MapFromBasics space mismatch")
		}
		m.basics = append(m.basics, bm)
	}
	return m
}

// InSpace returns the input space.
func (m Map) InSpace() Space { return m.in }

// OutSpace returns the output space.
func (m Map) OutSpace() Space { return m.out }

// Basics returns the basic maps whose union is m.
func (m Map) Basics() []BasicMap { return append([]BasicMap(nil), m.basics...) }

// IsEmptyUnion reports whether the map has no basic maps at all (it may also
// be empty if every basic map is empty; see DefinitelyEmpty).
func (m Map) IsEmptyUnion() bool { return len(m.basics) == 0 }

// DefinitelyEmpty reports whether every basic map is detectably empty.
func (m Map) DefinitelyEmpty() bool {
	for _, b := range m.basics {
		if !b.DefinitelyEmpty() {
			return false
		}
	}
	return true
}

// Union returns the union with another map between the same spaces.
func (m Map) Union(o Map) Map {
	if !m.in.Equal(o.in) || !m.out.Equal(o.out) {
		panic("presburger: map union space mismatch")
	}
	return Map{in: m.in, out: m.out, basics: append(append([]BasicMap(nil), m.basics...), o.basics...)}
}

// Intersect returns the intersection with another map between the same
// spaces.
func (m Map) Intersect(o Map) Map {
	out := Map{in: m.in, out: m.out}
	for _, a := range m.basics {
		for _, b := range o.basics {
			bm := a.Intersect(b)
			if !bm.DefinitelyEmpty() {
				out.basics = append(out.basics, bm)
			}
		}
	}
	return out.coalesce(false)
}

// Reverse swaps inputs and outputs.
func (m Map) Reverse() Map {
	out := Map{in: m.out, out: m.in}
	for _, b := range m.basics {
		out.basics = append(out.basics, b.Reverse())
	}
	return out
}

// IntersectDomain restricts the relation to inputs in the given set.
func (m Map) IntersectDomain(s Set) Map {
	out := Map{in: m.in, out: m.out}
	for _, b := range m.basics {
		for _, bs := range s.basics {
			bm := b.IntersectDomain(bs)
			if !bm.DefinitelyEmpty() {
				out.basics = append(out.basics, bm)
			}
		}
	}
	return out.coalesce(false)
}

// IntersectRange restricts the relation to outputs in the given set.
func (m Map) IntersectRange(s Set) Map {
	out := Map{in: m.in, out: m.out}
	for _, b := range m.basics {
		for _, bs := range s.basics {
			bm := b.IntersectRange(bs)
			if !bm.DefinitelyEmpty() {
				out.basics = append(out.basics, bm)
			}
		}
	}
	return out.coalesce(false)
}

// Domain projects the relation onto its input space.
func (m Map) Domain() (Set, error) {
	out := EmptySet(m.in)
	for _, b := range m.basics {
		d, err := b.Domain()
		if err != nil {
			return Set{}, err
		}
		if !d.DefinitelyEmpty() {
			out.basics = append(out.basics, d)
		}
	}
	return out, nil
}

// Range projects the relation onto its output space.
func (m Map) Range() (Set, error) {
	out := EmptySet(m.out)
	for _, b := range m.basics {
		r, err := b.Range()
		if err != nil {
			return Set{}, err
		}
		if !r.DefinitelyEmpty() {
			out.basics = append(out.basics, r)
		}
	}
	return out, nil
}

// ApplyRange composes m with o (o ∘ m): x relates to z when m relates x to
// some y and o relates y to z. The pairwise composition multiplies the
// basic-map counts, so the result is coalesced before it is returned.
func (m Map) ApplyRange(o Map) (Map, error) {
	out := Map{in: m.in, out: o.out}
	for _, a := range m.basics {
		for _, b := range o.basics {
			bm, err := a.ApplyRange(b)
			if err != nil {
				return Map{}, err
			}
			if !bm.DefinitelyEmpty() {
				out.basics = append(out.basics, bm)
			}
		}
	}
	return out.coalesce(false), nil
}

// Contains reports whether the concatenated point satisfies the relation.
func (m Map) Contains(point []int64) bool {
	for _, b := range m.basics {
		if b.Contains(point) {
			return true
		}
	}
	return false
}

// Scan enumerates the distinct relation pairs (deduplicated across basic
// maps).
func (m Map) Scan(fn func(point []int64) error) error {
	if len(m.basics) == 1 {
		return m.basics[0].Scan(fn)
	}
	seen := make(map[string]bool)
	for _, b := range m.basics {
		err := b.Scan(func(p []int64) error {
			key := pointKey(p)
			if seen[key] {
				return nil
			}
			seen[key] = true
			return fn(p)
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// CountByScan counts the distinct relation pairs by enumeration.
func (m Map) CountByScan() (int64, error) {
	var n int64
	err := m.Scan(func([]int64) error { n++; return nil })
	return n, err
}

// String renders the map.
func (m Map) String() string {
	if len(m.basics) == 0 {
		return fmt.Sprintf("{ %s -> %s : false }", m.in, m.out)
	}
	parts := make([]string, len(m.basics))
	for i, b := range m.basics {
		parts[i] = b.String()
	}
	return strings.Join(parts, " union ")
}
