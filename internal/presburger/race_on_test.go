//go:build race

package presburger

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = true
