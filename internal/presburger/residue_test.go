package presburger

import "testing"

// TestModEqPointwise checks the residue constraint against the direct modulo
// computation on a scanned box: for every modulus and residue, the
// constrained set must contain exactly the points whose expression value is
// congruent.
func TestModEqPointwise(t *testing.T) {
	sp := NewSpace("box", "x", "y")
	box := UniverseBasicSet(sp)
	// 0 <= x < 12, -5 <= y < 7 (negative values exercise floor semantics).
	box = box.AddConstraint(Constraint{C: Vec{0, 1, 0}})
	box = box.AddConstraint(Constraint{C: Vec{11, -1, 0}})
	box = box.AddConstraint(Constraint{C: Vec{5, 0, 1}})
	box = box.AddConstraint(Constraint{C: Vec{6, 0, -1}})
	// expr = 3 + 2x + y
	expr := Vec{3, 2, 1}
	for _, m := range []int64{1, 2, 3, 4, 8} {
		for r := int64(0); r < m; r++ {
			got := box.ModEq(expr, m, r)
			err := box.Scan(func(p []int64) error {
				v := expr[0] + expr[1]*p[0] + expr[2]*p[1]
				want := ((v % m) + m) % m
				if got.Contains(p) != (want == r) {
					t.Errorf("m=%d r=%d point %v: Contains=%v, value %d mod %d = %d",
						m, r, p, got.Contains(p), v, m, want)
				}
				return nil
			})
			if err != nil {
				t.Fatalf("scan: %v", err)
			}
		}
	}
}

// TestResidueSetPartitions asserts that the m residue classes of an
// expression partition the universe: their cardinalities sum to the box
// cardinality and no point is in two classes.
func TestResidueSetPartitions(t *testing.T) {
	sp := NewSpace("box", "x")
	box := UniverseBasicSet(sp)
	box = box.AddConstraint(Constraint{C: Vec{0, 1}})
	box = box.AddConstraint(Constraint{C: Vec{19, -1}})
	const m = 4
	var total int64
	for r := int64(0); r < m; r++ {
		cls := ResidueSet(sp, Vec{0, 1}, m, r).Intersect(SetFromBasic(box))
		n, err := cls.CountByScan()
		if err != nil {
			t.Fatalf("residue %d: %v", r, err)
		}
		if n != 5 {
			t.Errorf("residue %d: %d points, want 5", r, n)
		}
		total += n
	}
	if total != 20 {
		t.Errorf("classes cover %d points, want 20", total)
	}
}
