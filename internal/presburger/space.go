// Package presburger implements the integer set and map machinery the cache
// model is built on: named affine integer sets and maps ("isl-lite").
//
// A basic set is a conjunction of affine equality and inequality constraints
// over a tuple of integer dimensions plus local "div" variables, each of
// which is defined as the floor of an affine expression divided by a
// positive constant. A set is a finite union of basic sets in the same
// space; union sets and union maps group sets/maps across differently named
// spaces (statements, arrays, the schedule space).
//
// The operations mirror the subset of isl used by the HayStack model:
// intersection, union, subtraction, composition, inverse, domain/range
// projection, lexicographic order maps, fixing and projecting dimensions,
// point scanning, and emptiness checks. Operations are exact on the
// quasi-affine fragment produced by the model; an operation that would
// require general integer quantifier elimination returns ErrUnsupported so
// that callers can fall back to enumeration.
package presburger

import (
	"errors"
	"fmt"
	"strings"
)

// ErrUnsupported reports that an operation left the exactly-supported
// quasi-affine fragment. Callers fall back to enumeration.
var ErrUnsupported = errors.New("presburger: operation outside supported fragment")

// Space names a tuple of integer dimensions, e.g. the instances of statement
// "S0" with dimensions i and j, or the elements of array "A".
//
// The first NParam dimensions may be marked as symbolic program parameters:
// fixed-but-unknown values shared by every tuple of an execution rather than
// real tuple coordinates. Parameter dimensions take part in all set and map
// operations like ordinary dimensions (intersection, composition,
// subtraction, and coalescing carry them through unchanged), with one
// semantic difference: the lexicographic order maps (LexLT and friends)
// relate only tuples with equal parameter values and order the remaining
// dimensions, so lexmin/lexmax treat parameters as outermost fixed inputs.
type Space struct {
	Name string
	Dims []string
	// NParam is the number of leading dimensions that are symbolic program
	// parameters. It is carried metadata and does not affect space identity
	// (Equal compares name and arity only).
	NParam int
}

// NewSpace returns a space with the given tuple name and dimension names.
func NewSpace(name string, dims ...string) Space {
	return Space{Name: name, Dims: append([]string(nil), dims...)}
}

// NewParamSpace returns a space whose first nParam dimensions are symbolic
// parameters.
func NewParamSpace(name string, nParam int, dims ...string) Space {
	if nParam < 0 || nParam > len(dims) {
		panic("presburger: parameter count out of range")
	}
	return Space{Name: name, Dims: append([]string(nil), dims...), NParam: nParam}
}

// Dim returns the number of dimensions of the space.
func (s Space) Dim() int { return len(s.Dims) }

// Equal reports whether two spaces have the same name and arity.
// Dimension names are documentation only and do not affect identity.
func (s Space) Equal(o Space) bool {
	return s.Name == o.Name && len(s.Dims) == len(o.Dims)
}

func (s Space) String() string {
	return fmt.Sprintf("%s(%s)", s.Name, strings.Join(s.Dims, ","))
}

// AnonymousSpace returns an unnamed space with n dimensions named d0..dn-1.
func AnonymousSpace(n int) Space {
	dims := make([]string, n)
	for i := range dims {
		dims[i] = fmt.Sprintf("d%d", i)
	}
	return Space{Name: "", Dims: dims}
}

// Vec is an affine row vector over the column layout of a basic set or map:
// column 0 is the constant term, columns 1..ndim are the tuple dimensions,
// and the remaining columns are the local div variables.
type Vec []int64

// NewVec returns a zero vector with n columns.
func NewVec(n int) Vec { return make(Vec, n) }

// Clone returns a copy of v.
func (v Vec) Clone() Vec { return append(Vec(nil), v...) }

// Resized returns a copy of v with n columns; new columns are zero.
func (v Vec) Resized(n int) Vec {
	w := make(Vec, n)
	copy(w, v)
	return w
}

// IsZero reports whether every entry of v is zero.
func (v Vec) IsZero() bool {
	for _, x := range v {
		if x != 0 {
			return false
		}
	}
	return true
}

// Neg returns -v.
func (v Vec) Neg() Vec {
	w := v.Clone()
	for i := range w {
		w[i] = -w[i]
	}
	return w
}

// AddScaled returns v + f*w. The vectors must have the same length.
func (v Vec) AddScaled(w Vec, f int64) Vec {
	if len(v) != len(w) {
		panic("presburger: vector length mismatch")
	}
	r := v.Clone()
	for i := range r {
		r[i] += f * w[i]
	}
	return r
}

// Dot evaluates v at the column values in vals (same length).
func (v Vec) Dot(vals []int64) int64 {
	if len(v) != len(vals) {
		panic("presburger: vector length mismatch in Dot")
	}
	var s int64
	for i, c := range v {
		s += c * vals[i]
	}
	return s
}
