package presburger

// GroupDisjoint partitions the indices 0..n-1 into chambers such that
// members of different chambers provably cannot interact: indices i and j
// land in the same chamber exactly when they are connected through pairs
// for which mayOverlap returned true. mayOverlap must be conservative (true
// when in doubt) and is only consulted once per unordered pair. Chambers
// are ordered by their smallest member and preserve index order — the
// deterministic shape the domain-partitioned folds of the pipeline rely on.
func GroupDisjoint(n int, mayOverlap func(i, j int) bool) [][]int {
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if find(i) != find(j) && mayOverlap(i, j) {
				parent[find(j)] = find(i)
			}
		}
	}
	order := make(map[int]int, n)
	var groups [][]int
	for i := 0; i < n; i++ {
		r := find(i)
		gi, ok := order[r]
		if !ok {
			gi = len(groups)
			order[r] = gi
			groups = append(groups, nil)
		}
		groups[gi] = append(groups[gi], i)
	}
	return groups
}

// pinnedFromCons extracts, from a constraint list, the dimensions (columns
// 1..maxCol) that a single-column equality pins to a constant. It is the
// shared scan behind BasicSet.PinnedDims and BasicMap.PinnedInputDims.
func pinnedFromCons(cons []Constraint, maxCol int) (pinned []bool, vals []int64) {
	pinned = make([]bool, maxCol)
	vals = make([]int64, maxCol)
	for _, c := range cons {
		if !c.Eq {
			continue
		}
		col, cnt := -1, 0
		for j := 1; j < len(c.C); j++ {
			if c.C[j] != 0 {
				col = j
				cnt++
			}
		}
		if cnt != 1 || col > maxCol {
			continue
		}
		a := c.C[col]
		if c.C[0]%a != 0 {
			continue // no integer solution; emptiness is detected elsewhere
		}
		pinned[col-1] = true
		vals[col-1] = -c.C[0] / a
	}
	return pinned, vals
}

// PinsSeparate reports whether two pin signatures disagree on a dimension
// both pin — the sufficient disjointness condition used by the partitioned
// folds.
func PinsSeparate(aPinned []bool, aVals []int64, bPinned []bool, bVals []int64) bool {
	n := len(aPinned)
	if len(bPinned) < n {
		n = len(bPinned)
	}
	for d := 0; d < n; d++ {
		if aPinned[d] && bPinned[d] && aVals[d] != bVals[d] {
			return true
		}
	}
	return false
}
