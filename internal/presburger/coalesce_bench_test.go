package presburger

import (
	"testing"
)

// benchmarkBasic builds a basic set shaped like the constraint systems the
// pipeline's composition frontiers produce: many constraints over a dozen
// columns, with duplicates and parallel (dominated) pairs mixed in.
func benchmarkBasic(ncons int) *basic {
	bb := newBasic(12)
	b := &bb
	for i := 0; i < ncons; i++ {
		c := Constraint{C: NewVec(b.ncols())}
		c.C[0] = int64(i % 7)
		for j := 1; j < b.ncols(); j++ {
			c.C[j] = int64((i*j)%5 - 2)
		}
		if i%3 == 0 {
			// Repeat an earlier constraint exactly (the duplicate case).
			c.C[0] = 0
		}
		b.cons = append(b.cons, c)
	}
	return b
}

// BenchmarkSimplifyDedup measures the constraint dedup hot path of
// basic.simplify, which runs at every composition frontier of the model
// (previously keyed on per-constraint strings; now on FNV hashes with
// structural verification).
func BenchmarkSimplifyDedup(b *testing.B) {
	proto := benchmarkBasic(64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cl := proto.clone()
		if !cl.simplify() {
			b.Fatal("benchmark basic should stay feasible")
		}
	}
}
