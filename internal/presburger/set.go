package presburger

import (
	"fmt"
	"strconv"
	"strings"

	"haystack/internal/ints"
)

// BasicSet is a conjunction of quasi-affine constraints over the dimensions
// of a named space.
type BasicSet struct {
	space Space
	b     basic
}

// UniverseBasicSet returns the unconstrained basic set of the space.
func UniverseBasicSet(sp Space) BasicSet {
	return BasicSet{space: sp, b: newBasic(sp.Dim())}
}

// NewBasicSet builds a basic set from explicit divs and constraints. The
// column layout of the vectors is [const, dims..., divs...].
func NewBasicSet(sp Space, divs []Div, cons []Constraint) BasicSet {
	bs := UniverseBasicSet(sp)
	for _, d := range divs {
		bs.b.divs = append(bs.b.divs, d.Clone())
	}
	bs.b.resize()
	for _, c := range cons {
		bs.b.addConstraint(c.Clone())
	}
	return bs
}

// Space returns the space of the basic set.
func (bs BasicSet) Space() Space { return bs.space }

// NDim returns the number of dimensions.
func (bs BasicSet) NDim() int { return bs.b.ndim }

// Divs returns a copy of the div definitions.
func (bs BasicSet) Divs() []Div {
	out := make([]Div, len(bs.b.divs))
	for i, d := range bs.b.divs {
		out[i] = d.Clone()
	}
	return out
}

// Constraints returns a copy of the constraints.
func (bs BasicSet) Constraints() []Constraint {
	out := make([]Constraint, len(bs.b.cons))
	for i, c := range bs.b.cons {
		out[i] = c.Clone()
	}
	return out
}

// NCols returns the width of constraint vectors: 1 + NDim + number of divs.
func (bs BasicSet) NCols() int { return bs.b.ncols() }

func (bs BasicSet) clone() BasicSet {
	return BasicSet{space: bs.space, b: bs.b.clone()}
}

// AddConstraint returns the basic set with an additional constraint. The
// constraint vector may be shorter than NCols; missing columns are zero.
func (bs BasicSet) AddConstraint(c Constraint) BasicSet {
	out := bs.clone()
	out.b.addConstraint(c.Clone())
	return out
}

// AddDiv returns the basic set extended with the div floor(num/den) and the
// column index of the new (or existing identical) div.
func (bs BasicSet) AddDiv(num Vec, den int64) (BasicSet, int) {
	out := bs.clone()
	col := out.b.addDiv(num.Clone(), den)
	return out, col
}

// Intersect returns the intersection with another basic set in the same
// space.
func (bs BasicSet) Intersect(o BasicSet) BasicSet {
	if !bs.space.Equal(o.space) {
		panic(fmt.Sprintf("presburger: intersect of %v and %v", bs.space, o.space))
	}
	out := bs.clone()
	out.b.embed(&o.b, identityDimMap(o.b.ndim))
	return out
}

// FixDim returns the basic set with dimension dim fixed to value.
func (bs BasicSet) FixDim(dim int, value int64) BasicSet {
	c := Constraint{C: NewVec(bs.b.ncols()), Eq: true}
	c.C[0] = -value
	c.C[1+dim] = 1
	return bs.AddConstraint(c)
}

// ProjectOut returns the basic set with dimensions [first, first+n)
// existentially projected out. The space of the result is anonymous with
// the surviving dimension names.
func (bs BasicSet) ProjectOut(first, n int) (BasicSet, error) {
	out := bs.clone()
	cols := make([]int, n)
	for i := 0; i < n; i++ {
		cols[i] = out.b.dimCol(first + i)
	}
	if err := out.b.eliminateDimCols(cols); err != nil {
		return BasicSet{}, err
	}
	dims := append(append([]string(nil), bs.space.Dims[:first]...), bs.space.Dims[first+n:]...)
	out.space = Space{Name: bs.space.Name, Dims: dims}
	return out, nil
}

// RemoveRedundancies normalizes the basic set and drops inequality
// constraints implied by the remaining ones (budgeted rational implication,
// the same rule the coalescer applies per basic). Fewer bounds per dimension
// directly shrink the fan-out of parametric counting, which splits on every
// (lower, upper) bound pair. Returns ok=false when the set is detected
// empty.
func (bs BasicSet) RemoveRedundancies() (BasicSet, bool) {
	out := bs.clone()
	if !out.b.simplify() {
		return out, false
	}
	out.b.removeRedundantCons()
	// Dropped constraints can orphan div definitions; unused divs are not
	// harmless for counting, which residue-splits every dimension any div
	// references.
	out.b.dropUnusedDivs()
	return out, true
}

// SubstituteLeadingDims fixes the first len(vals) dimensions to the given
// constants and removes them: every constraint and div numerator folds the
// bound columns into its constant term. Unlike FixDim+ProjectOut this is a
// single O(size) pass with no elimination machinery — the specialization
// used to instantiate parametric piece domains at one parameter point.
// Returns ok=false when the result is detectably empty.
func (bs BasicSet) SubstituteLeadingDims(vals []int64) (BasicSet, bool) {
	n := len(vals)
	if n == 0 {
		return bs, !bs.DefinitelyEmpty()
	}
	if n > bs.NDim() {
		panic("presburger: substituting more dimensions than the set has")
	}
	oldCols := bs.b.ncols()
	fold := func(v Vec) Vec {
		v = v.Resized(oldCols)
		out := make(Vec, 0, oldCols-n)
		c0 := v[0]
		for i := 0; i < n; i++ {
			c0 += v[1+i] * vals[i]
		}
		out = append(out, c0)
		out = append(out, v[1+n:]...)
		return out
	}
	nb := newBasic(bs.b.ndim - n)
	for _, d := range bs.b.divs {
		nb.divs = append(nb.divs, Div{Num: fold(d.Num), Den: d.Den})
	}
	for _, c := range bs.b.cons {
		nb.cons = append(nb.cons, Constraint{C: fold(c.C), Eq: c.Eq})
	}
	ok := nb.simplify()
	out := BasicSet{space: Space{Name: bs.space.Name, Dims: append([]string(nil), bs.space.Dims[n:]...)}, b: nb}
	return out, ok
}

// ProjectOutApprox is ProjectOut without a failure mode: dimensions the
// exact strategies cannot eliminate are projected by dropping the div
// definitions that reference them and combining the remaining bounds with
// rational Fourier–Motzkin. The result is a superset of the exact
// projection, suitable for generating candidate points that are validated
// against the exact set afterwards (partial enumeration).
func (bs BasicSet) ProjectOutApprox(first, n int) BasicSet {
	out := bs.clone()
	for i := n - 1; i >= 0; i-- {
		out.b.eliminateDimColApprox(out.b.dimCol(first + i))
	}
	dims := append(append([]string(nil), bs.space.Dims[:first]...), bs.space.Dims[first+n:]...)
	out.space = Space{Name: bs.space.Name, Dims: dims}
	return out
}

// StructurallyEqual reports whether the two basic sets have identical
// dimension counts, div lists, and constraint multisets. Structural equality
// implies set equality; the converse does not hold.
func (bs BasicSet) StructurallyEqual(o BasicSet) bool {
	return basicsEqual(&bs.b, &o.b)
}

// PinnedDims returns, per dimension, whether an equality constraint pins it
// to a single constant, together with that constant. Two basic sets that pin
// the same dimension to different constants are disjoint — the cheap
// separation test behind the domain-partitioned folds of the pipeline.
func (bs BasicSet) PinnedDims() (pinned []bool, vals []int64) {
	return pinnedFromCons(bs.b.cons, bs.b.ndim)
}

// ConstBounds returns, per dimension, the tightest constant lower and upper
// bounds derivable from single-dimension constraints (equalities pin both
// sides). Dimensions without such a bound report has=false. Two basic sets
// whose constant intervals on some dimension do not intersect are disjoint —
// a free separation test for the piecewise folds.
func (bs BasicSet) ConstBounds() (lo, hi []int64, hasLo, hasHi []bool) {
	n := bs.b.ndim
	lo, hi = make([]int64, n), make([]int64, n)
	hasLo, hasHi = make([]bool, n), make([]bool, n)
	for _, c := range bs.b.cons {
		col, cnt := -1, 0
		for j := 1; j < len(c.C); j++ {
			if c.C[j] != 0 {
				col = j
				cnt++
			}
		}
		if cnt != 1 || col > n {
			continue
		}
		d := col - 1
		a, k := c.C[col], c.C[0]
		if c.Eq {
			if k%a != 0 {
				continue // infeasible; emptiness is detected elsewhere
			}
			v := -k / a
			if !hasLo[d] || v > lo[d] {
				lo[d], hasLo[d] = v, true
			}
			if !hasHi[d] || v < hi[d] {
				hi[d], hasHi[d] = v, true
			}
			continue
		}
		if a > 0 {
			v := ints.CeilDiv(-k, a)
			if !hasLo[d] || v > lo[d] {
				lo[d], hasLo[d] = v, true
			}
		} else {
			v := ints.FloorDiv(k, -a)
			if !hasHi[d] || v < hi[d] {
				hi[d], hasHi[d] = v, true
			}
		}
	}
	return lo, hi, hasLo, hasHi
}

// Simplify normalizes constraints and returns ok=false when the basic set is
// detected to be empty.
func (bs BasicSet) Simplify() (BasicSet, bool) {
	out := bs.clone()
	ok := out.b.simplify()
	return out, ok
}

// DefinitelyEmpty reports whether the basic set can cheaply be shown empty
// (constant contradiction or rational infeasibility). A false result does
// not guarantee the set contains an integer point.
func (bs BasicSet) DefinitelyEmpty() bool { return bs.b.isObviouslyEmpty() }

// Contains reports whether the point lies in the basic set.
func (bs BasicSet) Contains(point []int64) bool { return bs.b.contains(point) }

// Scan enumerates the integer points of the basic set in lexicographic
// order; the point slice passed to fn is reused between calls.
func (bs BasicSet) Scan(fn func(point []int64) error) error { return bs.b.scanPoints(fn) }

// CountByScan counts the integer points by enumeration.
func (bs BasicSet) CountByScan() (int64, error) { return bs.b.countPoints() }

// Sample returns a point of the basic set, or ok=false when it is empty.
func (bs BasicSet) Sample() ([]int64, bool) { return bs.b.samplePoint() }

// String renders the basic set.
func (bs BasicSet) String() string {
	return fmt.Sprintf("{ %s : %s }", bs.space, bs.b.render(bs.space.Dims))
}

// Set is a union of basic sets in the same space. The zero value is not
// valid; use EmptySet or UniverseSet.
type Set struct {
	space  Space
	basics []BasicSet
}

// EmptySet returns the empty set of the space.
func EmptySet(sp Space) Set { return Set{space: sp} }

// UniverseSet returns the unconstrained set of the space.
func UniverseSet(sp Space) Set {
	return Set{space: sp, basics: []BasicSet{UniverseBasicSet(sp)}}
}

// SetFromBasic returns the set containing exactly the given basic set.
func SetFromBasic(bs BasicSet) Set {
	return Set{space: bs.space, basics: []BasicSet{bs}}
}

// SetFromBasics returns the union of the given basic sets, which must share
// a space.
func SetFromBasics(bss ...BasicSet) Set {
	if len(bss) == 0 {
		panic("presburger: SetFromBasics needs at least one basic set")
	}
	s := Set{space: bss[0].space}
	for _, bs := range bss {
		if !bs.space.Equal(s.space) {
			panic("presburger: SetFromBasics space mismatch")
		}
		s.basics = append(s.basics, bs)
	}
	return s
}

// Space returns the space of the set.
func (s Set) Space() Space { return s.space }

// Basics returns the basic sets whose union is s.
func (s Set) Basics() []BasicSet { return append([]BasicSet(nil), s.basics...) }

// Union returns the union with another set in the same space.
func (s Set) Union(o Set) Set {
	if !s.space.Equal(o.space) {
		panic(fmt.Sprintf("presburger: union of %v and %v", s.space, o.space))
	}
	return Set{space: s.space, basics: append(append([]BasicSet(nil), s.basics...), o.basics...)}
}

// Intersect returns the intersection with another set in the same space.
func (s Set) Intersect(o Set) Set {
	out := Set{space: s.space}
	for _, a := range s.basics {
		for _, b := range o.basics {
			bs := a.Intersect(b)
			if !bs.DefinitelyEmpty() {
				out.basics = append(out.basics, bs)
			}
		}
	}
	return out.coalesce(false)
}

// AddConstraintAll adds a constraint to every basic set of s. The constraint
// vector is interpreted over [const, dims...]; div columns must not be
// referenced.
func (s Set) AddConstraintAll(c Constraint) Set {
	out := Set{space: s.space}
	for _, b := range s.basics {
		nb := b.AddConstraint(c)
		if !nb.DefinitelyEmpty() {
			out.basics = append(out.basics, nb)
		}
	}
	return out
}

// DefinitelyEmpty reports whether every basic set is detectably empty.
func (s Set) DefinitelyEmpty() bool {
	for _, b := range s.basics {
		if !b.DefinitelyEmpty() {
			return false
		}
	}
	return true
}

// Contains reports whether the point lies in any basic set.
func (s Set) Contains(point []int64) bool {
	for _, b := range s.basics {
		if b.Contains(point) {
			return true
		}
	}
	return false
}

// Scan enumerates the distinct integer points of the set (union semantics:
// points in several basic sets are reported once). Enumeration order is the
// lexicographic order within each basic set, deduplicated globally.
func (s Set) Scan(fn func(point []int64) error) error {
	if len(s.basics) == 1 {
		return s.basics[0].Scan(fn)
	}
	seen := make(map[string]bool)
	for i, b := range s.basics {
		i := i
		err := b.Scan(func(p []int64) error {
			if i > 0 || len(s.basics) > 1 {
				key := pointKey(p)
				if seen[key] {
					return nil
				}
				seen[key] = true
			}
			return fn(p)
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// CountByScan counts the distinct integer points of the set by enumeration.
func (s Set) CountByScan() (int64, error) {
	var n int64
	err := s.Scan(func([]int64) error { n++; return nil })
	return n, err
}

// String renders the set.
func (s Set) String() string {
	if len(s.basics) == 0 {
		return fmt.Sprintf("{ %s : false }", s.space)
	}
	parts := make([]string, len(s.basics))
	for i, b := range s.basics {
		parts[i] = b.String()
	}
	return strings.Join(parts, " union ")
}

func pointKey(p []int64) string {
	buf := make([]byte, 0, 8*len(p))
	for _, v := range p {
		buf = strconv.AppendInt(buf, v, 10)
		buf = append(buf, ',')
	}
	return string(buf)
}

func identityDimMap(n int) []int {
	m := make([]int, n)
	for i := range m {
		m[i] = i
	}
	return m
}
