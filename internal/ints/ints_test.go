package ints

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFloorCeilDiv(t *testing.T) {
	cases := []struct {
		a, b, floor, ceil int64
	}{
		{7, 2, 3, 4},
		{-7, 2, -4, -3},
		{7, -2, -4, -3},
		{-7, -2, 3, 4},
		{6, 3, 2, 2},
		{-6, 3, -2, -2},
		{0, 5, 0, 0},
	}
	for _, c := range cases {
		if got := FloorDiv(c.a, c.b); got != c.floor {
			t.Errorf("FloorDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.floor)
		}
		if got := CeilDiv(c.a, c.b); got != c.ceil {
			t.Errorf("CeilDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.ceil)
		}
	}
}

func TestFloorDivProperty(t *testing.T) {
	f := func(a int32, b int32) bool {
		if b == 0 {
			return true
		}
		q := FloorDiv(int64(a), int64(b))
		r := int64(a) - q*int64(b)
		// remainder has the sign of b and |r| < |b|
		if b > 0 {
			return r >= 0 && r < int64(b)
		}
		return r <= 0 && r > int64(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCeilDivProperty(t *testing.T) {
	f := func(a int32, b int32) bool {
		if b == 0 {
			return true
		}
		return CeilDiv(int64(a), int64(b)) == -FloorDiv(-int64(a), int64(b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestModProperty(t *testing.T) {
	f := func(a int32, b int32) bool {
		if b == 0 {
			return true
		}
		m := Mod(int64(a), int64(b))
		return m >= 0 && m < Abs(int64(b)) && (int64(a)-m)%int64(b) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGCDLCM(t *testing.T) {
	if GCD(0, 0) != 0 {
		t.Errorf("GCD(0,0) = %d", GCD(0, 0))
	}
	if GCD(12, 18) != 6 {
		t.Errorf("GCD(12,18) = %d", GCD(12, 18))
	}
	if GCD(-12, 18) != 6 {
		t.Errorf("GCD(-12,18) = %d", GCD(-12, 18))
	}
	if LCM(4, 6) != 12 {
		t.Errorf("LCM(4,6) = %d", LCM(4, 6))
	}
	if LCM(0, 5) != 0 {
		t.Errorf("LCM(0,5) = %d", LCM(0, 5))
	}
}

func TestGCDProperty(t *testing.T) {
	f := func(a, b int16) bool {
		g := GCD(int64(a), int64(b))
		if g == 0 {
			return a == 0 && b == 0
		}
		return int64(a)%g == 0 && int64(b)%g == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCheckedArithmetic(t *testing.T) {
	if AddChecked(2, 3) != 5 || SubChecked(2, 3) != -1 || MulChecked(6, 7) != 42 {
		t.Fatal("basic checked arithmetic wrong")
	}
	assertPanics(t, func() { AddChecked(math.MaxInt64, 1) })
	assertPanics(t, func() { SubChecked(math.MinInt64, 1) })
	assertPanics(t, func() { MulChecked(math.MaxInt64, 2) })
	assertPanics(t, func() { FloorDiv(1, 0) })
	assertPanics(t, func() { CeilDiv(1, 0) })
	assertPanics(t, func() { Mod(1, 0) })
}

func assertPanics(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic")
		}
	}()
	f()
}

func TestMinMaxSignAbs(t *testing.T) {
	if Min(3, -2) != -2 || Max(3, -2) != 3 {
		t.Fatal("Min/Max wrong")
	}
	if Sign(-5) != -1 || Sign(0) != 0 || Sign(9) != 1 {
		t.Fatal("Sign wrong")
	}
	if Abs(-7) != 7 || Abs(7) != 7 {
		t.Fatal("Abs wrong")
	}
}

func TestTryHelpers(t *testing.T) {
	cases := []struct {
		a, b int64
		add  bool // expect TryAdd ok
		mul  bool // expect TryMul ok
	}{
		{0, 0, true, true},
		{3, 4, true, true},
		{-3, 4, true, true},
		{math.MaxInt64, 1, false, true},
		{math.MinInt64, -1, false, false},
		{math.MaxInt64, 0, true, true},
		{math.MaxInt64, 2, false, false},
		{1 << 32, 1 << 32, true, false},
		{-(1 << 32), 1 << 32, true, false},
	}
	for _, c := range cases {
		if s, ok := TryAdd(c.a, c.b); ok != c.add {
			t.Errorf("TryAdd(%d,%d) ok=%v, want %v", c.a, c.b, ok, c.add)
		} else if ok && s != c.a+c.b {
			t.Errorf("TryAdd(%d,%d) = %d", c.a, c.b, s)
		}
		if p, ok := TryMul(c.a, c.b); ok != c.mul {
			t.Errorf("TryMul(%d,%d) ok=%v, want %v", c.a, c.b, ok, c.mul)
		} else if ok && p != c.a*c.b {
			t.Errorf("TryMul(%d,%d) = %d", c.a, c.b, p)
		}
	}
	if _, ok := TrySub(math.MinInt64, 1); ok {
		t.Error("TrySub(MinInt64, 1) should overflow")
	}
	if d, ok := TrySub(10, 4); !ok || d != 6 {
		t.Errorf("TrySub(10,4) = %d, %v", d, ok)
	}
	// The Try helpers must agree with the panicking ones wherever those
	// succeed.
	if v, ok := TryMul(1<<20, 1<<20); !ok || v != MulChecked(1<<20, 1<<20) {
		t.Error("TryMul disagrees with MulChecked")
	}
}
