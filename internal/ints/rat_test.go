package ints

import (
	"testing"
	"testing/quick"
)

func TestRatBasics(t *testing.T) {
	r := NewRat(6, 4)
	if r.Num() != 3 || r.Den() != 2 {
		t.Fatalf("NewRat(6,4) = %v, want 3/2", r)
	}
	if NewRat(3, -6).String() != "-1/2" {
		t.Fatalf("NewRat(3,-6) = %v", NewRat(3, -6))
	}
	if !RatInt(4).IsInt() || RatInt(4).Int() != 4 {
		t.Fatal("RatInt wrong")
	}
	if NewRat(7, 2).Floor() != 3 || NewRat(7, 2).Ceil() != 4 {
		t.Fatal("Floor/Ceil wrong")
	}
	if NewRat(-7, 2).Floor() != -4 || NewRat(-7, 2).Ceil() != -3 {
		t.Fatal("negative Floor/Ceil wrong")
	}
	var zero Rat
	if !zero.IsZero() || zero.Den() != 1 {
		t.Fatal("zero value of Rat is not 0/1")
	}
	if zero.Add(RatInt(3)).Cmp(RatInt(3)) != 0 {
		t.Fatal("zero value addition wrong")
	}
}

func TestRatArithmetic(t *testing.T) {
	a := NewRat(1, 3)
	b := NewRat(1, 6)
	if a.Add(b).Cmp(NewRat(1, 2)) != 0 {
		t.Errorf("1/3 + 1/6 = %v", a.Add(b))
	}
	if a.Sub(b).Cmp(NewRat(1, 6)) != 0 {
		t.Errorf("1/3 - 1/6 = %v", a.Sub(b))
	}
	if a.Mul(b).Cmp(NewRat(1, 18)) != 0 {
		t.Errorf("1/3 * 1/6 = %v", a.Mul(b))
	}
	if a.Div(b).Cmp(RatInt(2)) != 0 {
		t.Errorf("1/3 / 1/6 = %v", a.Div(b))
	}
	if a.Neg().Add(a).Cmp(Rat{}) != 0 {
		t.Errorf("a + (-a) != 0")
	}
}

func TestRatProperties(t *testing.T) {
	mk := func(n, d int16) Rat {
		if d == 0 {
			d = 1
		}
		return NewRat(int64(n), int64(d))
	}
	// Commutativity and associativity of addition.
	add := func(an, ad, bn, bd, cn, cd int16) bool {
		a, b, c := mk(an, ad), mk(bn, bd), mk(cn, cd)
		if a.Add(b).Cmp(b.Add(a)) != 0 {
			return false
		}
		return a.Add(b).Add(c).Cmp(a.Add(b.Add(c))) == 0
	}
	if err := quick.Check(add, nil); err != nil {
		t.Fatal(err)
	}
	// Distributivity.
	dist := func(an, ad, bn, bd, cn, cd int16) bool {
		a, b, c := mk(an, ad), mk(bn, bd), mk(cn, cd)
		return a.Mul(b.Add(c)).Cmp(a.Mul(b).Add(a.Mul(c))) == 0
	}
	if err := quick.Check(dist, nil); err != nil {
		t.Fatal(err)
	}
	// Floor is consistent with FloorDiv.
	floor := func(n int16, d int16) bool {
		if d == 0 {
			return true
		}
		r := NewRat(int64(n), int64(d))
		return r.Floor() == FloorDiv(int64(n), int64(d)) || int64(d) < 0 && r.Floor() == FloorDiv(-int64(n), -int64(d))
	}
	if err := quick.Check(floor, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRatDivByZeroPanics(t *testing.T) {
	assertPanics(t, func() { RatInt(1).Div(Rat{}) })
	assertPanics(t, func() { NewRat(1, 0) })
	assertPanics(t, func() { NewRat(1, 2).Int() })
}
