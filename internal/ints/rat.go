package ints

import "fmt"

// Rat is an exact rational number with int64 numerator and positive int64
// denominator, always stored in lowest terms. The zero value is 0/1.
type Rat struct {
	num int64
	den int64 // > 0; 0 means the zero value and is treated as 1
}

// NewRat returns the rational num/den in lowest terms. den must be non-zero.
func NewRat(num, den int64) Rat {
	if den == 0 {
		panic("ints: rational with zero denominator")
	}
	if den < 0 {
		num, den = -num, -den
	}
	if num == 0 {
		return Rat{0, 1}
	}
	g := GCD(num, den)
	return Rat{num / g, den / g}
}

// RatInt returns the rational n/1.
func RatInt(n int64) Rat { return Rat{n, 1} }

func (r Rat) norm() (int64, int64) {
	if r.den == 0 {
		return r.num, 1
	}
	return r.num, r.den
}

// Num returns the numerator of r in lowest terms.
func (r Rat) Num() int64 { n, _ := r.norm(); return n }

// Den returns the (positive) denominator of r in lowest terms.
func (r Rat) Den() int64 { _, d := r.norm(); return d }

// IsZero reports whether r is zero.
func (r Rat) IsZero() bool { return r.Num() == 0 }

// IsInt reports whether r is an integer.
func (r Rat) IsInt() bool { return r.Den() == 1 }

// Int returns the integer value of r and panics if r is not an integer.
func (r Rat) Int() int64 {
	if !r.IsInt() {
		panic(fmt.Sprintf("ints: %v is not an integer", r))
	}
	return r.Num()
}

// Add returns r + s.
func (r Rat) Add(s Rat) Rat {
	rn, rd := r.norm()
	sn, sd := s.norm()
	g := GCD(rd, sd)
	// r.num*(sd/g) + s.num*(rd/g) over lcm
	num := AddChecked(MulChecked(rn, sd/g), MulChecked(sn, rd/g))
	den := MulChecked(rd/g, sd)
	return NewRat(num, den)
}

// Sub returns r - s.
func (r Rat) Sub(s Rat) Rat { return r.Add(s.Neg()) }

// Neg returns -r.
func (r Rat) Neg() Rat { n, d := r.norm(); return Rat{-n, d} }

// Mul returns r * s.
func (r Rat) Mul(s Rat) Rat {
	rn, rd := r.norm()
	sn, sd := s.norm()
	// Cross-reduce before multiplying to keep intermediates small.
	g1 := GCD(Abs(rn), sd)
	g2 := GCD(Abs(sn), rd)
	if g1 == 0 {
		g1 = 1
	}
	if g2 == 0 {
		g2 = 1
	}
	num := MulChecked(rn/g1, sn/g2)
	den := MulChecked(rd/g2, sd/g1)
	return NewRat(num, den)
}

// Div returns r / s. s must be non-zero.
func (r Rat) Div(s Rat) Rat {
	if s.IsZero() {
		panic("ints: rational division by zero")
	}
	sn, sd := s.norm()
	return r.Mul(Rat{sd, Abs(sn)}.scaleSign(Sign(sn)))
}

func (r Rat) scaleSign(s int) Rat {
	if s < 0 {
		return r.Neg()
	}
	return r
}

// Cmp compares r and s and returns -1, 0, or 1.
func (r Rat) Cmp(s Rat) int {
	d := r.Sub(s)
	return Sign(d.Num())
}

// Floor returns the largest integer <= r.
func (r Rat) Floor() int64 { n, d := r.norm(); return FloorDiv(n, d) }

// Ceil returns the smallest integer >= r.
func (r Rat) Ceil() int64 { n, d := r.norm(); return CeilDiv(n, d) }

// Float returns a float64 approximation of r (for reporting only).
func (r Rat) Float() float64 { n, d := r.norm(); return float64(n) / float64(d) }

// String renders r as "n" or "n/d".
func (r Rat) String() string {
	n, d := r.norm()
	if d == 1 {
		return fmt.Sprintf("%d", n)
	}
	return fmt.Sprintf("%d/%d", n, d)
}
