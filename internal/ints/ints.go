// Package ints provides exact integer helpers used throughout the
// polyhedral machinery: floor/ceil division, gcd/lcm, and a small exact
// rational type over int64.
//
// All arithmetic is checked: results that would overflow int64 panic with a
// descriptive message. The model operates on loop bounds and miss counts far
// below 2^63, so an overflow always indicates a programming error rather
// than a legitimate large value.
package ints

import "fmt"

// AddChecked returns a+b and panics on overflow.
func AddChecked(a, b int64) int64 {
	s := a + b
	if (a > 0 && b > 0 && s < 0) || (a < 0 && b < 0 && s >= 0) {
		panic(fmt.Sprintf("ints: overflow in %d + %d", a, b))
	}
	return s
}

// SubChecked returns a-b and panics on overflow.
func SubChecked(a, b int64) int64 {
	d := a - b
	if (b < 0 && a > 0 && d < 0) || (b > 0 && a < 0 && d > 0) {
		panic(fmt.Sprintf("ints: overflow in %d - %d", a, b))
	}
	return d
}

// MulChecked returns a*b and panics on overflow.
func MulChecked(a, b int64) int64 {
	p, ok := TryMul(a, b)
	if !ok {
		panic(fmt.Sprintf("ints: overflow in %d * %d", a, b))
	}
	return p
}

// TryAdd returns a+b, reporting false on overflow instead of panicking.
// Use it where an overflow is a legitimate large value that the caller
// degrades on (bounded tier, unsupported-form fallback) rather than a
// programming error.
func TryAdd(a, b int64) (int64, bool) {
	s := a + b
	if (a > 0 && b > 0 && s < 0) || (a < 0 && b < 0 && s >= 0) {
		return 0, false
	}
	return s, true
}

// TrySub returns a-b, reporting false on overflow instead of panicking.
func TrySub(a, b int64) (int64, bool) {
	d := a - b
	if (b < 0 && a > 0 && d < 0) || (b > 0 && a < 0 && d > 0) {
		return 0, false
	}
	return d, true
}

// TryMul returns a*b, reporting false on overflow instead of panicking.
func TryMul(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	p := a * b
	// The quotient check misses exactly one wrap: MinInt64 * -1 wraps to
	// MinInt64, and Go defines MinInt64 / -1 as MinInt64, so p/b == a.
	if p/b != a || (a == minInt64 && b == -1) {
		return 0, false
	}
	return p, true
}

const minInt64 = -1 << 63

// Abs returns the absolute value of a.
func Abs(a int64) int64 {
	if a < 0 {
		return -a
	}
	return a
}

// Sign returns -1, 0, or 1 depending on the sign of a.
func Sign(a int64) int {
	switch {
	case a < 0:
		return -1
	case a > 0:
		return 1
	default:
		return 0
	}
}

// GCD returns the non-negative greatest common divisor of a and b.
// GCD(0, 0) is 0.
func GCD(a, b int64) int64 {
	a, b = Abs(a), Abs(b)
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// LCM returns the least common multiple of a and b. LCM(0, x) is 0.
func LCM(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	g := GCD(a, b)
	return MulChecked(Abs(a)/g, Abs(b))
}

// FloorDiv returns floor(a/b). b must be non-zero.
func FloorDiv(a, b int64) int64 {
	if b == 0 {
		panic("ints: FloorDiv by zero")
	}
	q := a / b
	if (a%b != 0) && ((a < 0) != (b < 0)) {
		q--
	}
	return q
}

// CeilDiv returns ceil(a/b). b must be non-zero.
func CeilDiv(a, b int64) int64 {
	if b == 0 {
		panic("ints: CeilDiv by zero")
	}
	q := a / b
	if (a%b != 0) && ((a < 0) == (b < 0)) {
		q++
	}
	return q
}

// Mod returns the mathematical modulus a mod b, always in [0, |b|).
func Mod(a, b int64) int64 {
	if b == 0 {
		panic("ints: Mod by zero")
	}
	m := a % b
	if m < 0 {
		m += Abs(b)
	}
	return m
}

// Min returns the smaller of a and b.
func Min(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// Max returns the larger of a and b.
func Max(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
