package haystack_test

import (
	"testing"

	"haystack"
	"haystack/internal/core"
	"haystack/internal/polybench"
	"haystack/internal/tiling"
)

// TestTiledSymbolicMatchesReference is the end-to-end validation of the
// coalescing layer: the fully symbolic analysis of the 2D-tiled PolyBench
// gemm (SMALL, tile 16) must terminate quickly enough to run as a test at
// all (pre-coalescing it did not finish within 38 minutes) and its miss
// counts must be bit-identical to the exact trace-profile reference on the
// tiled program. The coalescing statistics must show the mechanism, not
// just the outcome: a bounded peak basic-map count and non-zero rule hits.
func TestTiledSymbolicMatchesReference(t *testing.T) {
	if testing.Short() {
		t.Skip("symbolic analysis of the tiled kernel takes tens of seconds")
	}
	k, ok := polybench.ByName("gemm")
	if !ok {
		t.Fatal("gemm kernel missing")
	}
	tiled, didTile := tiling.Tile(k.Build(polybench.Small), 16)
	if !didTile {
		t.Fatal("gemm should have a rectangular tiling")
	}
	opts := haystack.DefaultOptions()
	opts.TraceFallback = false // fail loudly if the symbolic pipeline gives up
	cfg := haystack.Config{LineSize: 64, CacheSizes: []int64{32 * 1024, 1024 * 1024}}

	dm, err := core.ComputeDistances(tiled, cfg.LineSize, opts)
	if err != nil {
		t.Fatalf("symbolic ComputeDistances on tiled gemm: %v", err)
	}
	res, err := dm.CountMisses(cfg)
	if err != nil {
		t.Fatalf("CountMisses: %v", err)
	}
	if res.UsedTraceFallback {
		t.Fatal("analysis fell back to trace profiling")
	}

	ref, err := core.SimulateReference(tiled, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalAccesses != ref.TotalAccesses {
		t.Errorf("accesses: model %d, reference %d", res.TotalAccesses, ref.TotalAccesses)
	}
	if res.CompulsoryMisses != ref.CompulsoryMisses {
		t.Errorf("compulsory: model %d, reference %d", res.CompulsoryMisses, ref.CompulsoryMisses)
	}
	for i := range cfg.CacheSizes {
		if res.Levels[i].TotalMisses != ref.TotalMisses[i] {
			t.Errorf("L%d misses: model %d, reference %d", i+1, res.Levels[i].TotalMisses, ref.TotalMisses[i])
		}
	}

	// One-shot Analyze on the same program must agree too (it is the same
	// pipeline; this guards the wiring of the two-phase API).
	full, err := core.Analyze(tiled, cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cfg.CacheSizes {
		if res.Levels[i].TotalMisses != full.Levels[i].TotalMisses {
			t.Errorf("L%d misses: two-phase %d, Analyze %d", i+1, res.Levels[i].TotalMisses, full.Levels[i].TotalMisses)
		}
	}

	s := res.Stats
	if s.PeakBasicMaps <= 0 || s.PeakBasicMaps > 400 {
		t.Errorf("peak basic maps out of the expected range: %d", s.PeakBasicMaps)
	}
	if s.CoalesceAdjacent == 0 || s.CoalesceRedundantCons == 0 || s.CoalesceDedup == 0 {
		t.Errorf("coalescing counters do not show the mechanism: %+v",
			core.Stats{CoalesceDedup: s.CoalesceDedup, CoalesceSubsumed: s.CoalesceSubsumed,
				CoalesceAdjacent: s.CoalesceAdjacent, CoalesceRedundantCons: s.CoalesceRedundantCons})
	}
	if s.BasicMapsBeforeCoalesce <= s.BasicMapsAfterCoalesce {
		t.Errorf("coalescing did not shrink the frontiers: %d -> %d",
			s.BasicMapsBeforeCoalesce, s.BasicMapsAfterCoalesce)
	}
}
