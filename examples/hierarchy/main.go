// Cache hierarchy exploration with the two-phase API. The stack distances
// of the kernel are computed once (haystack.ComputeDistances) and shared by
// every query that follows:
//
//   - a capacity sweep over eleven hypothetical cache sizes, passed as ONE
//     multi-level Config so the counting engine classifies every distance
//     piece against all capacities in a single pass;
//   - a later what-if hierarchy, answered by another CountMisses call on
//     the same model without recomputing the distances.
//
// Because the distances are independent of the cache capacities (section
// 4.3 of the paper), both queries only pay the counting phase, which makes
// sweeps over cache designs practical.
package main

import (
	"fmt"
	"log"

	"haystack"
)

func main() {
	k, ok := haystack.PolyBenchByName("gemm")
	if !ok {
		log.Fatal("gemm kernel missing")
	}
	prog := k.Build(haystack.Small)

	// Phase 1: the expensive, cache-independent stack distance model.
	dm, err := haystack.ComputeDistances(prog, 64, haystack.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("gemm (SMALL): %d accesses, %d compulsory misses, %d distance pieces (computed once in %v)\n\n",
		dm.TotalAccesses, dm.CompulsoryMisses, dm.DistancePieces(), dm.ComputeTime().Round(1000000))

	// Phase 2a: sweep hypothetical capacities — every power of two from
	// 4 KiB to 4 MiB — as ONE multi-level configuration: the counting
	// engine splits every distance piece once and classifies it against all
	// eleven capacities together.
	var sizes []int64
	for s := int64(4 * 1024); s <= 4*1024*1024; s *= 2 {
		sizes = append(sizes, s)
	}
	res, err := dm.CountMisses(haystack.Config{LineSize: 64, CacheSizes: sizes})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%12s  %12s  %10s\n", "cache size", "misses", "miss ratio")
	for _, lvl := range res.Levels {
		fmt.Printf("%9d KiB  %12d  %9.3f%%\n", lvl.CacheBytes/1024, lvl.TotalMisses,
			100*float64(lvl.TotalMisses)/float64(res.TotalAccesses))
	}
	fmt.Printf("\nsweep counting time: %v (%d pieces counted once for all %d capacities)\n",
		res.Stats.CapacityTime.Round(1000000), res.Stats.CountedPieces, len(sizes))

	// Phase 2b: a what-if question arriving later — a conventional two
	// level hierarchy — reuses the same distance model: only the counting
	// phase runs again.
	whatIf, err := dm.CountMisses(haystack.Config{LineSize: 64, CacheSizes: []int64{32 * 1024, 1024 * 1024}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwhat-if 32 KiB L1 + 1 MiB L2: %d / %d misses (counted in %v, distances reused)\n",
		whatIf.Levels[0].TotalMisses, whatIf.Levels[1].TotalMisses,
		whatIf.Stats.CapacityTime.Round(1000000))
}
