// Cache hierarchy exploration: model the same kernel against several cache
// hierarchies at once. Because the stack distances are reused across cache
// sizes (section 4.3 of the paper), adding levels is nearly free, which
// makes sweeps over hypothetical cache configurations practical.
package main

import (
	"fmt"
	"log"

	"haystack"
)

func main() {
	k, ok := haystack.PolyBenchByName("gemm")
	if !ok {
		log.Fatal("gemm kernel missing")
	}
	prog := k.Build(haystack.Small)

	// Model a full hierarchy sweep: every power of two from 4 KiB to 4 MiB.
	var sizes []int64
	for s := int64(4 * 1024); s <= 4*1024*1024; s *= 2 {
		sizes = append(sizes, s)
	}
	cfg := haystack.Config{LineSize: 64, CacheSizes: sizes}

	res, err := haystack.Analyze(prog, cfg, haystack.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("gemm (SMALL): %d accesses, %d compulsory misses\n\n", res.TotalAccesses, res.CompulsoryMisses)
	fmt.Printf("%12s  %12s  %10s\n", "cache size", "misses", "miss ratio")
	for _, lvl := range res.Levels {
		fmt.Printf("%9d KiB  %12d  %9.3f%%\n", lvl.CacheBytes/1024, lvl.TotalMisses,
			100*float64(lvl.TotalMisses)/float64(res.TotalAccesses))
	}
	fmt.Printf("\nmodel time: %v (stack distances computed once, %d pieces)\n",
		res.Stats.TotalTime.Round(1000000), res.Stats.CountedPieces)
}
