// Quickstart: declare a small static control program with the public API,
// run the analytical cache model, and compare the prediction against the
// exact trace-based reference.
package main

import (
	"fmt"
	"log"

	"haystack"
)

func main() {
	// The example program of the paper (Figure 2):
	//
	//	for (i = 0; i < 4; i++) M[i] = i;
	//	for (j = 0; j < 4; j++) sum += M[3-j];
	p := haystack.NewProgram("example")
	m := p.NewArray("M", haystack.ElemFloat64, 4)
	i, j := haystack.V("i"), haystack.V("j")
	p.Add(
		haystack.For(i, haystack.C(0), haystack.C(4),
			haystack.Stmt("S0", haystack.Write(m, haystack.X(i)))),
		haystack.For(j, haystack.C(0), haystack.C(4),
			haystack.Stmt("S1", haystack.Read(m, haystack.C(3).Minus(haystack.X(j))))),
	)

	// A toy cache with two 8-byte lines, like the worked example of the
	// paper, plus one with four lines.
	cfg := haystack.Config{LineSize: 8, CacheSizes: []int64{16, 32}}

	res, err := haystack.Analyze(p, cfg, haystack.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d memory accesses, %d compulsory misses\n", res.TotalAccesses, res.CompulsoryMisses)
	for _, lvl := range res.Levels {
		fmt.Printf("cache of %2d bytes: %d capacity misses, %d total misses\n",
			lvl.CacheBytes, lvl.CapacityMisses, lvl.TotalMisses)
	}

	// The analytical result matches an exact replay of the trace.
	ref, err := haystack.SimulateReference(p, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reference (trace replay): misses %v, compulsory %d\n", ref.TotalMisses, ref.CompulsoryMisses)
}
