// Loop fusion decision: the model quantifies the locality benefit of fusing
// two sweeps over the same array, one of the design questions the paper's
// introduction motivates ("deciding which loop fusion choice is optimal is
// far less intuitive").
package main

import (
	"fmt"
	"log"

	"haystack"
)

const n = 4096

// separate builds: B[i] = f(A[i]) in one loop, C[i] = g(B[i]) in a second.
func separate() *haystack.Program {
	p := haystack.NewProgram("separate")
	a := p.NewArray("A", haystack.ElemFloat64, n)
	b := p.NewArray("B", haystack.ElemFloat64, n)
	cArr := p.NewArray("C", haystack.ElemFloat64, n)
	i, j := haystack.V("i"), haystack.V("j")
	p.Add(
		haystack.For(i, haystack.C(0), haystack.C(n),
			haystack.Stmt("S0", haystack.Read(a, haystack.X(i)), haystack.Write(b, haystack.X(i)))),
		haystack.For(j, haystack.C(0), haystack.C(n),
			haystack.Stmt("S1", haystack.Read(b, haystack.X(j)), haystack.Write(cArr, haystack.X(j)))),
	)
	return p
}

// fused builds both assignments in a single loop.
func fused() *haystack.Program {
	p := haystack.NewProgram("fused")
	a := p.NewArray("A", haystack.ElemFloat64, n)
	b := p.NewArray("B", haystack.ElemFloat64, n)
	cArr := p.NewArray("C", haystack.ElemFloat64, n)
	i := haystack.V("i")
	p.Add(
		haystack.For(i, haystack.C(0), haystack.C(n),
			haystack.Stmt("S0", haystack.Read(a, haystack.X(i)), haystack.Write(b, haystack.X(i))),
			haystack.Stmt("S1", haystack.Read(b, haystack.X(i)), haystack.Write(cArr, haystack.X(i)))),
	)
	return p
}

func main() {
	// A 16 KiB L1: each array is 32 KiB, so the separate version cannot keep
	// B resident between the two sweeps while the fused version reuses B[i]
	// immediately.
	cfg := haystack.Config{LineSize: 64, CacheSizes: []int64{16 * 1024}}
	for _, prog := range []*haystack.Program{separate(), fused()} {
		res, err := haystack.Analyze(prog, cfg, haystack.DefaultOptions())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9s: %7d accesses, %6d misses (%.2f%% miss ratio)\n",
			prog.Name, res.TotalAccesses, res.Levels[0].TotalMisses,
			100*float64(res.Levels[0].TotalMisses)/float64(res.TotalAccesses))
	}
	fmt.Println("\nfusing the loops removes the capacity misses on B: the model")
	fmt.Println("quantifies the benefit without running either variant.")
}
