// Tile size selection: the motivating use case of the paper. The example
// builds tiled variants of matrix multiplication with different tile sizes
// and uses the cache model to pick the tile size with the fewest predicted
// L1 misses — without ever running the kernel on hardware.
//
// All variants go through the symbolic pipeline (haystack.ComputeDistances)
// by default: the coalescing layer of the Presburger engine keeps the
// basic-map unions of the five-deep tiled nests small, so the symbolic,
// problem-size-independent analysis finishes in seconds. Pass
// -strategy profile to build the tiled models from an exact trace profile
// instead (haystack.ComputeDistancesByProfiling) — equally exact, with cost
// proportional to the trace length; useful as a cross-check or for programs
// outside the symbolic fragment. Either way, each variant's distance model
// is built once and could be reused across any number of cache hierarchies
// (see examples/hierarchy).
package main

import (
	"flag"
	"fmt"
	"log"

	"haystack"
)

// tiledGemm builds a gemm kernel with an n x n x n iteration space tiled by
// t in the j and k dimensions (a simple register/cache blocking scheme).
func tiledGemm(n, t int64) *haystack.Program {
	p := haystack.NewProgram(fmt.Sprintf("gemm-tile-%d", t))
	a := p.NewArray("A", haystack.ElemFloat64, n, n)
	b := p.NewArray("B", haystack.ElemFloat64, n, n)
	cArr := p.NewArray("C", haystack.ElemFloat64, n, n)
	i, j, k := haystack.V("i"), haystack.V("j"), haystack.V("k")
	jt, kt := haystack.V("jt"), haystack.V("kt")
	c, x := haystack.C, haystack.X

	body := haystack.Stmt("S0",
		haystack.Read(a, x(i), x(k)),
		haystack.Read(b, x(k), x(j)),
		haystack.Read(cArr, x(i), x(j)),
		haystack.Write(cArr, x(i), x(j)))

	if t >= n {
		p.Add(haystack.For(i, c(0), c(n),
			haystack.For(j, c(0), c(n),
				haystack.For(k, c(0), c(n), body))))
		return p
	}
	// for jt, kt tile loops; i, j, k point loops (j, k bounded by their tile).
	p.Add(
		haystack.For(jt, c(0), c(n/t),
			haystack.For(kt, c(0), c(n/t),
				haystack.For(i, c(0), c(n),
					haystack.For(j, x(jt).Scale(t), x(jt).Scale(t).Plus(c(t)),
						haystack.For(k, x(kt).Scale(t), x(kt).Scale(t).Plus(c(t)), body))))))
	return p
}

func main() {
	strategy := flag.String("strategy", "symbolic",
		"model for tiled variants: 'symbolic' (default; problem-size-independent) or 'profile' (exact trace profile)")
	flag.Parse()
	if *strategy != "symbolic" && *strategy != "profile" {
		log.Fatalf("unknown -strategy %q (want symbolic or profile)", *strategy)
	}

	const n = 32
	cfg := haystack.Config{LineSize: 64, CacheSizes: []int64{8 * 1024}}

	fmt.Printf("gemm %dx%dx%d, 8 KiB fully associative L1\n\n", n, n, n)
	fmt.Printf("%8s  %12s  %12s  %10s\n", "tile", "accesses", "L1 misses", "miss ratio")
	bestTile, bestMisses := int64(0), int64(-1)
	for _, t := range []int64{4, 8, 16, 32} {
		prog := tiledGemm(n, t)
		var dm *haystack.DistanceModel
		var err error
		if *strategy == "profile" && t < n {
			dm, err = haystack.ComputeDistancesByProfiling(prog, cfg.LineSize)
		} else {
			dm, err = haystack.ComputeDistances(prog, cfg.LineSize, haystack.DefaultOptions())
		}
		if err != nil {
			log.Fatalf("tile %d: %v", t, err)
		}
		res, err := dm.CountMisses(cfg)
		if err != nil {
			log.Fatalf("tile %d: %v", t, err)
		}
		misses := res.Levels[0].TotalMisses
		fmt.Printf("%8d  %12d  %12d  %9.2f%%\n", t, res.TotalAccesses, misses,
			100*float64(misses)/float64(res.TotalAccesses))
		if bestMisses < 0 || misses < bestMisses {
			bestMisses, bestTile = misses, t
		}
	}
	fmt.Printf("\npredicted best tile size: %d\n", bestTile)
}
