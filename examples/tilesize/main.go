// Tile size selection: the motivating use case of the paper. The example
// builds tiled variants of matrix multiplication with different tile sizes
// and uses the cache model to pick the tile size with the fewest predicted
// L1 misses — without ever running the kernel on hardware.
//
// The untiled baseline goes through the symbolic pipeline
// (haystack.ComputeDistances); the tiled variants use the exact
// trace-profile model (haystack.ComputeDistancesByProfiling), because the
// deep loop nests tiling produces are very expensive to analyze
// symbolically while the profile is exact and fast at this problem size.
// Either way, each variant's distance model is built once and could be
// reused across any number of cache hierarchies (see examples/hierarchy).
package main

import (
	"fmt"
	"log"

	"haystack"
)

// tiledGemm builds a gemm kernel with an n x n x n iteration space tiled by
// t in the j and k dimensions (a simple register/cache blocking scheme).
func tiledGemm(n, t int64) *haystack.Program {
	p := haystack.NewProgram(fmt.Sprintf("gemm-tile-%d", t))
	a := p.NewArray("A", haystack.ElemFloat64, n, n)
	b := p.NewArray("B", haystack.ElemFloat64, n, n)
	cArr := p.NewArray("C", haystack.ElemFloat64, n, n)
	i, j, k := haystack.V("i"), haystack.V("j"), haystack.V("k")
	jt, kt := haystack.V("jt"), haystack.V("kt")
	c, x := haystack.C, haystack.X

	body := haystack.Stmt("S0",
		haystack.Read(a, x(i), x(k)),
		haystack.Read(b, x(k), x(j)),
		haystack.Read(cArr, x(i), x(j)),
		haystack.Write(cArr, x(i), x(j)))

	if t >= n {
		p.Add(haystack.For(i, c(0), c(n),
			haystack.For(j, c(0), c(n),
				haystack.For(k, c(0), c(n), body))))
		return p
	}
	// for jt, kt tile loops; i, j, k point loops (j, k bounded by their tile).
	p.Add(
		haystack.For(jt, c(0), c(n/t),
			haystack.For(kt, c(0), c(n/t),
				haystack.For(i, c(0), c(n),
					haystack.For(j, x(jt).Scale(t), x(jt).Scale(t).Plus(c(t)),
						haystack.For(k, x(kt).Scale(t), x(kt).Scale(t).Plus(c(t)), body))))))
	return p
}

func main() {
	const n = 64
	cfg := haystack.Config{LineSize: 64, CacheSizes: []int64{8 * 1024}}

	fmt.Printf("gemm %dx%dx%d, 8 KiB fully associative L1\n\n", n, n, n)
	fmt.Printf("%8s  %12s  %12s  %10s\n", "tile", "accesses", "L1 misses", "miss ratio")
	bestTile, bestMisses := int64(0), int64(-1)
	for _, t := range []int64{8, 16, 32, 64} {
		prog := tiledGemm(n, t)
		var dm *haystack.DistanceModel
		var err error
		if t >= n {
			// The untiled baseline is a shallow affine nest: the symbolic,
			// problem-size-independent pipeline is the right tool.
			dm, err = haystack.ComputeDistances(prog, cfg.LineSize, haystack.DefaultOptions())
		} else {
			// Tiled variants are five-deep nests with floor-heavy previous
			// access relations: the exact trace profile is far cheaper.
			dm, err = haystack.ComputeDistancesByProfiling(prog, cfg.LineSize)
		}
		if err != nil {
			log.Fatalf("tile %d: %v", t, err)
		}
		res, err := dm.CountMisses(cfg)
		if err != nil {
			log.Fatalf("tile %d: %v", t, err)
		}
		misses := res.Levels[0].TotalMisses
		fmt.Printf("%8d  %12d  %12d  %9.2f%%\n", t, res.TotalAccesses, misses,
			100*float64(misses)/float64(res.TotalAccesses))
		if bestMisses < 0 || misses < bestMisses {
			bestMisses, bestTile = misses, t
		}
	}
	fmt.Printf("\npredicted best tile size: %d\n", bestTile)
}
